GO ?= go

.PHONY: build vet test race verify bench

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Tier-1 verification: everything must compile, pass vet, and pass the
# full test suite under the race detector (the concurrency layer is
# only considered correct when -race is clean).
verify: build vet race

bench:
	$(GO) run ./cmd/archis-bench

bench-parallel:
	$(GO) run ./cmd/archis-bench -parallel

GO ?= go

.PHONY: build vet test race parallel-stress bench-smoke trace-smoke planner-smoke crash-matrix fuzz-smoke columnar-smoke mvcc-smoke serve-smoke bitemporal-smoke verify lint bench bench-parallel bench-json

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Focused stress of the morsel-parallel executor: the randomized
# serial-vs-parallel differential tests, under the race detector.
parallel-stress:
	$(GO) test -race -run Parallel ./...

# One-iteration benchmark smoke: the scan benchmarks must still
# compile and run (allocation regressions show up here first).
bench-smoke:
	$(GO) test -bench='Scan(Copy|Borrow)' -benchtime=1x -run '^$$' ./internal/relstore/

# Observability smoke: run the Q1-Q6 suite under the execution tracer
# on the clustered and compressed layouts; the bench re-parses every
# emitted JSON trace and exits non-zero on a malformed or empty tree.
# The nil-tracer overhead benchmark rides along (1 iteration: must
# compile and run; the <2% budget is asserted numerically in
# internal/obs tests).
trace-smoke:
	$(GO) run ./cmd/archis-bench -employees 120 -years 4 -trace > /dev/null
	$(GO) test -bench='NilSpan' -benchtime=1x -run '^$$' ./internal/obs/

# Planner smoke: the adversarial-selectivity benchmark (fails unless
# the cost model scans at 50% selectivity, probes when selective, and
# the chosen scan beats the forced index probe), plus the EXPLAIN
# golden suite and every planner decision/differential test.
planner-smoke:
	$(GO) run ./cmd/archis-bench -adversarial /tmp/archis-planner-adversarial.json
	$(GO) test -count=1 -run 'TestExplain|TestPlanner|TestIndexProbe' ./internal/bench/ ./internal/sqlengine/

# Columnar smoke: the columnar-vs-rowblob gate at scale 32 (the 10x
# dataset): cold Q2/Q4/Q6 on the compressed layout must run vectorized,
# beat the legacy row-in-blob encoding by >= 2x min latency over
# interleaved pairs, return identical answers, and take no more disk.
# JSON evidence lands in /tmp. The columnar codec/differential tests
# ride along.
columnar-smoke:
	$(GO) run ./cmd/archis-bench -scale 32 -columnargate /tmp/archis-columnar-gate.json
	$(GO) test -count=1 -run 'Columnar' ./internal/blockzip/ ./internal/bench/ ./internal/relstore/

# MVCC smoke: the mixed workload (concurrent ingest + Q1-Q6 readers +
# background compaction) must complete with zero reader errors and a
# running compactor on both layouts (the bench exits non-zero
# otherwise), and the snapshot-consistency differential — every
# pinned-reader and ReadAsOf answer equal to the serial answer at its
# LSN, all layouts, serial and morsel-parallel, columnar on and off —
# plus the maintenance early-exit and concurrent-crash tests run under
# the race detector.
mvcc-smoke:
	$(GO) run ./cmd/archis-bench -mixed -mixeddur 1s -employees 200 -years 6 -json /tmp/archis-mvcc-mixed.json
	$(GO) test -race -count=1 -run 'TestSnapshotConsistencyDifferential|TestCrashUnderConcurrentReaders' ./internal/bench/
	$(GO) test -race -count=1 -run 'TestCompactEarlyExit|TestCompressFrozenEarlyExit|TestReadAsOfRejects' ./internal/core/

# Served-path smoke: the network front end over a live system. The
# -serve bench measures the handler span against a bare in-process
# loop on warm Q1 and the client round trip under concurrent load;
# the replication differential (follower byte-equals primary on all
# three layouts under live ingest), the fault-injection suite, and
# the server admission/timeout tests ride along under -race.
serve-smoke:
	$(GO) run ./cmd/archis-bench -serve -employees 120 -years 2 -serveclients 4 -servereqs 50 -json /tmp/archis-serve.json
	$(GO) test -race -count=1 ./internal/server/ ./internal/repl/
	$(GO) test -race -count=1 -run 'TestRecoverAsOf|TestApplyReplicated' ./internal/core/

# Bitemporal smoke: the -bitemporal bench (write overhead and the four
# read shapes of DESIGN.md §16 on all three layouts), then the
# randomized ledger differential, the end-to-end valid-time path, the
# legacy-archive compat test, and the interval-algebra property tests,
# under the race detector.
bitemporal-smoke:
	$(GO) run ./cmd/archis-bench -bitemporal -bitempentities 80 -bitempversions 6 -json /tmp/archis-bitemporal.json
	$(GO) test -race -count=1 -run 'TestBitemporal|TestLegacyArchiveCompat|TestSlowQueryRecordRuneBoundary|TestServeErrorPathsDrainPinnedReaders' ./internal/core/ ./internal/htable/ ./internal/server/
	$(GO) test -race -count=1 -run 'TestInterval|TestApplyAssertions|TestCoalesce' ./internal/temporal/

# Durability stress: kill the durable system at every fsync boundary
# (with and without torn tail bytes) and require every survivor to
# recover to an acknowledged-consistent state, under the race detector.
crash-matrix:
	$(GO) test -race -count=1 -run 'TestCrashMatrix|TestRecoveredEqualsContinuous' ./internal/bench/
	$(GO) test -race -count=1 -run 'Crash|Torn|Recover' ./internal/wal/ ./internal/core/

# Short fuzzing pass over every parser/decoder boundary: WAL replay,
# the two query language parsers, and BlockZIP codecs. Each fuzzer gets
# a few seconds — enough to catch regressions in the seed corpus
# neighborhood without stalling CI.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzWALReplay -fuzztime 10s ./internal/wal/
	$(GO) test -run '^$$' -fuzz FuzzParse -fuzztime 5s ./internal/xquery/
	$(GO) test -run '^$$' -fuzz FuzzParse -fuzztime 5s ./internal/sqlengine/
	$(GO) test -run '^$$' -fuzz FuzzDecompress -fuzztime 5s ./internal/blockzip/
	$(GO) test -run '^$$' -fuzz FuzzColumnarRoundTrip -fuzztime 10s ./internal/blockzip/

# Tier-1 verification: everything must compile, pass vet, and pass the
# full test suite under the race detector (the concurrency layer is
# only considered correct when -race is clean), plus the parallel
# differential stress and the benchmark smoke run. The crash matrix
# runs as part of `race` (it lives in the normal test suite).
verify: build vet race parallel-stress bench-smoke

# Optional linters: run when installed, skip quietly otherwise (the
# build environment is offline; nothing is downloaded).
lint:
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; else echo "lint: staticcheck not installed, skipping"; fi
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck ./...; else echo "lint: govulncheck not installed, skipping"; fi

bench:
	$(GO) run ./cmd/archis-bench

bench-parallel:
	$(GO) run ./cmd/archis-bench -parallel

# Machine-readable Q1-Q6 timing records (serial vs parallel) for
# cross-commit regression diffing.
bench-json:
	$(GO) run ./cmd/archis-bench -json BENCH_$(shell date +%Y%m%dT%H%M%S).json

module archis

go 1.22

// Benchmark harness regenerating the paper's evaluation (Section 7–8):
// one benchmark per table/figure. Absolute numbers differ from the
// paper's 2005 testbed; the shapes — who wins, by what rough factor,
// where the crossovers fall — are the reproduction targets (see
// EXPERIMENTS.md).
//
// Every query iteration runs cold (caches dropped first), following
// the paper's unmount/restart methodology.
package archis_test

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"

	"archis/internal/bench"
	"archis/internal/core"
	"archis/internal/dataset"
	"archis/internal/htable"
	"archis/internal/translator"
	"archis/internal/xquery"
)

// benchEmployees scales the workload (ARCHIS_BENCH_EMPLOYEES overrides).
func benchEmployees() int {
	if s := os.Getenv("ARCHIS_BENCH_EMPLOYEES"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 800
}

// scaleFactor is the Figure 10 data-set multiplier (paper: 7×).
func scaleFactor() int {
	if s := os.Getenv("ARCHIS_BENCH_SCALE"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 1 {
			return n
		}
	}
	return 4
}

func benchCfg(scale int) dataset.Config {
	cfg := dataset.DefaultConfig()
	cfg.Employees = benchEmployees() * scale
	return cfg
}

// ---- lazily built, shared environments ----

type envKey string

var (
	envMu    sync.Mutex
	envCache = map[envKey]*bench.Env{}
	xdbCache = map[envKey]*bench.XMLEnv{}
)

func getEnv(tb testing.TB, key envKey, build func() (*bench.Env, error)) *bench.Env {
	tb.Helper()
	envMu.Lock()
	defer envMu.Unlock()
	if e, ok := envCache[key]; ok {
		return e
	}
	e, err := build()
	if err != nil {
		tb.Fatal(err)
	}
	envCache[key] = e
	return e
}

func clusteredEnv(tb testing.TB, scale int) *bench.Env {
	return getEnv(tb, envKey(fmt.Sprintf("clustered/%d", scale)), func() (*bench.Env, error) {
		return bench.Build(benchCfg(scale), bench.Options{Layout: core.LayoutClustered})
	})
}

func plainEnv(tb testing.TB, scale int) *bench.Env {
	return getEnv(tb, envKey(fmt.Sprintf("plain/%d", scale)), func() (*bench.Env, error) {
		return bench.Build(benchCfg(scale), bench.Options{Layout: core.LayoutPlain})
	})
}

func compressedEnv(tb testing.TB, scale int) *bench.Env {
	return getEnv(tb, envKey(fmt.Sprintf("compressed/%d", scale)), func() (*bench.Env, error) {
		return bench.Build(benchCfg(scale), bench.Options{Layout: core.LayoutCompressed, Compress: true})
	})
}

func xmldbEnv(tb testing.TB, scale int) *bench.XMLEnv {
	tb.Helper()
	src := plainEnv(tb, scale)
	envMu.Lock()
	defer envMu.Unlock()
	key := envKey(fmt.Sprintf("xmldb/%d", scale))
	if x, ok := xdbCache[key]; ok {
		return x
	}
	x, err := bench.BuildXMLBaseline(src, true)
	if err != nil {
		tb.Fatal(err)
	}
	xdbCache[key] = x
	return x
}

// ---- §7.1: translation cost (< 0.1 ms per query in the paper) ----

func BenchmarkTranslationCost(b *testing.B) {
	cat := translator.MapCatalog{
		"employees.xml": {
			DocName: "employees.xml", RootName: "employees", EntityName: "employee",
			KeyTable: "employee_id", KeyLeaf: "id", KeyColumn: "id",
			AttrTables: map[string]string{
				"name": "employee_name", "salary": "employee_salary",
				"title": "employee_title", "deptno": "employee_deptno",
			},
		},
	}
	tr := &translator.Translator{Catalog: cat}
	q := `element title_history{
	  for $t in doc("employees.xml")/employees/employee[name="Bob"]/title
	  return $t }`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Translate(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkXQueryParse(b *testing.B) {
	q := `for $e in doc("employees.xml")/employees/employee[toverlaps(.,
	        telement(xs:date("1994-05-06"), xs:date("1995-05-06")))]
	      return $e/name`
	for i := 0; i < b.N; i++ {
		if _, err := xquery.Parse(q); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Table 3 / Figure 8: ArchIS (clustered) vs native XML DB ----

func runArchISQuery(b *testing.B, e *bench.Env, q bench.QueryID) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		e.Cold()
		if _, err := e.Run(q); err != nil {
			b.Fatal(err)
		}
	}
}

func runXMLQuery(b *testing.B, x *bench.XMLEnv, q bench.QueryID) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		x.Cold()
		if _, err := x.Run(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8_ArchIS(b *testing.B) {
	e := clusteredEnv(b, 1)
	for _, q := range bench.AllQueries {
		b.Run(fmt.Sprintf("Q%d", q), func(b *testing.B) { runArchISQuery(b, e, q) })
	}
}

func BenchmarkFig8_XMLDB(b *testing.B) {
	x := xmldbEnv(b, 1)
	for _, q := range bench.AllQueries {
		b.Run(fmt.Sprintf("Q%d", q), func(b *testing.B) { runXMLQuery(b, x, q) })
	}
}

// ---- Figure 9: with vs without segment clustering ----

func BenchmarkFig9_Clustered(b *testing.B) {
	e := clusteredEnv(b, 1)
	for _, q := range bench.AllQueries {
		b.Run(fmt.Sprintf("Q%d", q), func(b *testing.B) { runArchISQuery(b, e, q) })
	}
}

func BenchmarkFig9_NoClustering(b *testing.B) {
	e := plainEnv(b, 1)
	for _, q := range bench.AllQueries {
		b.Run(fmt.Sprintf("Q%d", q), func(b *testing.B) { runArchISQuery(b, e, q) })
	}
}

// ---- §7.1: snapshot on the archive vs the current database ----

func BenchmarkSnapshotVsCurrent(b *testing.B) {
	e := clusteredEnv(b, 1)
	b.Run("Archive_Q2", func(b *testing.B) { runArchISQuery(b, e, bench.Q2) })
	b.Run("CurrentDB", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e.Cold()
			if _, err := e.Sys.Exec(`select avg(salary) from employee`); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---- Figure 10: scalability (S vs scaleFactor()·S) ----

func BenchmarkFig10_S1(b *testing.B) {
	e := clusteredEnv(b, 1)
	for _, q := range bench.AllQueries {
		b.Run(fmt.Sprintf("Q%d", q), func(b *testing.B) { runArchISQuery(b, e, q) })
	}
}

func BenchmarkFig10_Scaled(b *testing.B) {
	e := clusteredEnv(b, scaleFactor())
	for _, q := range bench.AllQueries {
		b.Run(fmt.Sprintf("Q%d", q), func(b *testing.B) { runArchISQuery(b, e, q) })
	}
}

// ---- Figure 14: query performance with compression ----

func BenchmarkFig14_ArchISCompressed(b *testing.B) {
	e := compressedEnv(b, 1)
	for _, q := range bench.AllQueries {
		b.Run(fmt.Sprintf("Q%d", q), func(b *testing.B) { runArchISQuery(b, e, q) })
	}
}

// (Fig 14's uncompressed ArchIS series is BenchmarkFig9_Clustered and
// its XML-DB series is BenchmarkFig8_XMLDB, which stores compressed
// documents as Tamino does.)

// ---- §8.4: update performance ----

func BenchmarkUpdate_ArchISTrigger_Single(b *testing.B) {
	e := getEnv(b, "upd-trigger", func() (*bench.Env, error) {
		return bench.Build(benchCfg(1), bench.Options{Layout: core.LayoutClustered, Capture: htable.CaptureTrigger})
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.UpdateOne(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUpdate_ArchISLog_Single(b *testing.B) {
	e := getEnv(b, "upd-log", func() (*bench.Env, error) {
		return bench.Build(benchCfg(1), bench.Options{Layout: core.LayoutClustered, Capture: htable.CaptureLog})
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.UpdateOne(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := e.Sys.FlushLog(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkUpdate_ArchIS_DailyBatch(b *testing.B) {
	e := getEnv(b, "upd-daily", func() (*bench.Env, error) {
		return bench.Build(benchCfg(1), bench.Options{Layout: core.LayoutClustered})
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.DailyBatch(20); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUpdate_XMLDB_Single(b *testing.B) {
	x := xmldbEnv(b, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := x.XMLUpdateOne(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Ablations (DESIGN.md Section 6) ----

// Block-granular vs whole-segment compression: the point-query cost of
// coarse decompression units.
func BenchmarkAblation_BlockZip_Q1(b *testing.B) {
	e := compressedEnv(b, 1)
	runArchISQuery(b, e, bench.Q1)
}

func BenchmarkAblation_WholeSegmentZip_Q1(b *testing.B) {
	e := getEnv(b, "whole-zip", func() (*bench.Env, error) {
		return bench.Build(benchCfg(1), bench.Options{Layout: core.LayoutCompressed, Compress: true, WholeSegments: true})
	})
	runArchISQuery(b, e, bench.Q1)
}

// Grouped vs ungrouped representation: attribute-history queries on
// the ungrouped layout pay coalescing (Section 3's motivation).
func BenchmarkAblation_Ungrouped_TitleHistory(b *testing.B) {
	e := plainEnv(b, 1)
	getEnv(b, "ungrouped-built", func() (*bench.Env, error) {
		if _, err := bench.BuildUngrouped(e); err != nil {
			return nil, err
		}
		return e, nil
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Cold()
		if _, err := bench.UngroupedTitleHistory(e, e.SingleID); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_Grouped_TitleHistory(b *testing.B) {
	e := plainEnv(b, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Cold()
		if _, err := bench.GroupedTitleHistory(e, e.SingleID); err != nil {
			b.Fatal(err)
		}
	}
}

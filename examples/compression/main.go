// Compression example: generates a multi-year employee history,
// watches usefulness-based clustering freeze segments as updates
// accumulate, compresses the frozen segments with BlockZIP, and shows
// that snapshot queries still run — decompressing only the blocks they
// touch — while storage shrinks.
package main

import (
	"fmt"
	"log"

	"archis"
	"archis/internal/dataset"
)

func main() {
	sys, err := archis.New(archis.Options{
		Layout:         archis.LayoutCompressed,
		Umin:           0.4,
		MinSegmentRows: 512,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Register(dataset.EmployeeSpec()); err != nil {
		log.Fatal(err)
	}
	if err := sys.Register(dataset.DeptSpec()); err != nil {
		log.Fatal(err)
	}

	cfg := dataset.DefaultConfig()
	cfg.Employees = 300
	cfg.Years = 10
	fmt.Printf("generating %d employees over %d years...\n", cfg.Employees, cfg.Years)
	st, err := dataset.Generate(sys.Archive, cfg)
	if err != nil {
		log.Fatal(err)
	}
	sys.Publish()
	fmt.Printf("history: %d inserts, %d updates, %d deletes\n\n", st.Inserts, st.Updates, st.Deletes)

	seg, _ := sys.SegmentStore("employee_salary")
	segs, _ := seg.Segments()
	fmt.Printf("employee_salary: %d frozen segments + 1 live (usefulness %.2f)\n",
		len(segs), seg.Usefulness())
	for _, sg := range segs {
		fmt.Printf("  segment %d covers [%s, %s]\n", sg.SegNo, sg.Start, sg.End)
	}

	before := sys.StorageBytes()
	if err := sys.CompressFrozen(); err != nil {
		log.Fatal(err)
	}
	after := sys.StorageBytes()
	fmt.Printf("\nstorage: %d KiB -> %d KiB after BlockZIP (ratio %.2f)\n",
		before/1024, after/1024, float64(after)/float64(before))

	cs, _ := sys.CompressedStore("employee_salary")
	blocks, _ := cs.BlockCount()
	fmt.Printf("employee_salary blocks: %d\n\n", blocks)

	// A snapshot query over compressed history.
	mid := cfg.Start
	if mid == 0 {
		mid = archis.MustDate("1985-01-01")
	}
	day := mid.AddDays(5 * 365)
	q := fmt.Sprintf(`for $s in doc("employees.xml")/employees/employee/salary
	  [tstart(.) <= xs:date(%q) and tend(.) >= xs:date(%q)]
	return $s`, day, day)
	cs.Decompressions = 0
	res, err := sys.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshot at %s: %d salaries, %d blocks decompressed\n",
		day, len(res.Items), cs.Decompressions)
	fmt.Printf("translated SQL/XML: %s\n", res.SQL)

	// A single-object history query: block pruning via the sid ranges.
	cs.Decompressions = 0
	res, err = sys.Query(`for $s in doc("employees.xml")/employees/employee[id=100007]/salary return $s`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhistory of employee 100007: %d versions, %d blocks decompressed\n",
		len(res.Items), cs.Decompressions)
}

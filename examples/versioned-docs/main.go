// Versioned-documents example — the extension sketched in the paper's
// Section 9: the temporally grouped model also archives multi-version
// structured documents (standards, catalogs), supporting evolution
// queries such as "when was this section first introduced?" and "what
// did the document say on a given date?".
//
// A document is modeled as a table of sections keyed by section id,
// with the text and editor as attributes; every revision is an UPDATE
// and ArchIS keeps the full revision history queryable.
package main

import (
	"fmt"
	"log"

	"archis"
)

func main() {
	sys, err := archis.New(archis.Options{Layout: archis.LayoutClustered})
	if err != nil {
		log.Fatal(err)
	}
	err = sys.Register(archis.TableSpec{
		Name: "section",
		Columns: []archis.Column{
			archis.IntCol("id"),
			archis.StringCol("heading"),
			archis.StringCol("body"),
			archis.StringCol("editor"),
		},
		Key: []string{"id"},
	})
	if err != nil {
		log.Fatal(err)
	}

	revisions := []struct {
		day string
		sql string
	}{
		{"2000-06-01", `insert into section values (1, 'Introduction', 'XLink v0.9 draft text', 'deRose')`},
		{"2000-06-01", `insert into section values (2, 'Link Types', 'simple links only', 'deRose')`},
		{"2000-12-15", `update section set body = 'simple and extended links', editor = 'maler' where id = 2`},
		{"2001-03-02", `insert into section values (3, 'Conformance', 'initial conformance rules', 'orchard')`},
		{"2001-06-27", `update section set body = 'XLink 1.0 recommendation text' where id = 1`},
		{"2005-01-10", `update section set body = 'extended links with arcs', editor = 'walsh' where id = 2`},
		{"2006-05-20", `delete from section where id = 3`},
	}
	for _, r := range revisions {
		sys.SetClock(archis.MustDate(r.day))
		if _, err := sys.Exec(r.sql); err != nil {
			log.Fatal(err)
		}
	}
	sys.SetClock(archis.MustDate("2006-07-01"))

	// Evolution query 1: when was each section first introduced?
	res, err := sys.QueryXML(`
for $s in doc("sections.xml")/sections/section
return <introduced heading="{string($s/heading[1])}" on="{tstart($s)}"/>`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("when was each section introduced?")
	for _, it := range res {
		fmt.Println("  " + it.String())
	}

	// Evolution query 2: the document as of 2001-01-01 (a snapshot).
	res, err = sys.QueryXML(`
for $b in doc("sections.xml")/sections/section/body
    [tstart(.) <= xs:date("2001-01-01") and tend(.) >= xs:date("2001-01-01")]
return $b`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nbody text as of 2001-01-01:")
	for _, it := range res {
		fmt.Println("  " + it.String())
	}

	// Evolution query 3: how many revisions did section 2 go through,
	// and who edited it? (translated to SQL/XML)
	q := `for $b in doc("sections.xml")/sections/section[id=2]/body return $b`
	out, err := sys.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsection 2 went through %d revisions [path: %s]\n", len(out.Items), out.Path)

	editors, err := sys.QueryXML(`
for $e in doc("sections.xml")/sections/section[id=2]/editor
return concat(string($e), " [", tstart($e), " .. ", tend($e), "]")`)
	if err != nil {
		log.Fatal(err)
	}
	for _, it := range editors {
		fmt.Println("  edited by " + it.String())
	}

	// Evolution query 4: sections no longer part of the document.
	gone, err := sys.QueryXML(`
for $s in doc("sections.xml")/sections/section
where tend($s) != current-date()
return string($s/heading[1])`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nretired sections: %s\n", gone.Serialize())
}

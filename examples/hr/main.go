// HR example: loads the exact history of the paper's Tables 1 and 2
// and runs all eight example queries of Sections 4 and 4.1 — temporal
// projection, snapshot, slicing, join, aggregation, restructuring,
// since, and period containment. Each query reports which execution
// path answered it: the XQuery→SQL/XML translator or direct
// evaluation on the XML view.
package main

import (
	"fmt"
	"log"

	"archis"
	"archis/internal/dataset"
)

var queries = []struct {
	title string
	query string
}{
	{"QUERY 1 — Temporal projection: Bob's title history", `
element title_history{
  for $t in doc("employees.xml")/employees/employee[name="Bob"]/title
  return $t }`},

	{"QUERY 2 — Temporal snapshot: managers on 1994-05-06", `
for $m in doc("depts.xml")/depts/dept/mgrno
    [tstart(.)<=xs:date("1994-05-06") and tend(.) >= xs:date("1994-05-06")]
return $m`},

	{"QUERY 3 — Temporal slicing: employees between 1994-05-06 and 1995-05-06", `
for $e in doc("employees.xml")/employees
    /employee[ toverlaps(., telement( xs:date("1994-05-06"), xs:date("1995-05-06") ) ) ]
return $e/name`},

	{"QUERY 4 — Temporal join: the history of employees each manager manages", `
element manages{
  for $d in doc("depts.xml")/depts/dept
  for $m in $d/mgrno
  return
    element manage {$d/deptno, $m,
      element employees {
        for $e in doc("employees.xml")/employees/employee
        where $e/deptno = $d/deptno and
              not(empty(overlapinterval($e, $m) ) )
        return($e/name, overlapinterval($e,$m)) }}}`},

	{"QUERY 5 — Temporal aggregate: the history of the average salary", `
let $s := document("emp.xml")/employees/employee/salary
return tavg($s)`},

	{"QUERY 6 — Restructuring: Bob's longest stretch without changing title or department", `
for $e in doc("emp.xml")/employees/employee[name="Bob"]
let $d := $e/deptno
let $t := $e/title
let $overlaps := restructure($d, $t)
return max($overlaps)`},

	{"QUERY 7 — A since B: current Sr Engineers in d01 since joining the dept", `
for $e in doc("employees.xml")/employees/employee
let $m := $e/title[.="Sr Engineer" and tend(.)=current-date()]
let $d := $e/deptno[.="d01" and tcontains($m, .)]
where not(empty($d)) and not(empty($m))
return <employee>{$e/id, $e/name}</employee>`},

	{"QUERY 8 — Period containment: employees with exactly Bob's employment history", `
for $e1 in doc("employees.xml")/employees/employee[name = "Bob"]
for $e2 in doc("employees.xml")/employees/employee[name != "Bob"]
where every $d1 in $e1/deptno satisfies
        some $d2 in $e2/deptno satisfies
          (string($d1)=string($d2) and tequals($d2,$d1))
  and every $d2 in $e2/deptno satisfies
        some $d1 in $e1/deptno satisfies
          (string($d2)=string( $d1) and tequals($d1,$d2))
return <employee>{$e2/name}</employee>`},
}

func main() {
	sys, err := archis.New(archis.Options{Layout: archis.LayoutClustered})
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Register(dataset.EmployeeSpec()); err != nil {
		log.Fatal(err)
	}
	if err := sys.Register(dataset.DeptSpec()); err != nil {
		log.Fatal(err)
	}
	if err := sys.AliasDoc("emp.xml", "employee"); err != nil {
		log.Fatal(err)
	}
	if err := dataset.LoadMicro(sys.Archive); err != nil {
		log.Fatal(err)
	}
	sys.Publish()

	fmt.Println("ArchIS HR example — the paper's Tables 1-2 history, queries 1-8")
	fmt.Println()
	for _, q := range queries {
		res, err := sys.Query(q.query)
		if err != nil {
			log.Fatalf("%s: %v", q.title, err)
		}
		fmt.Printf("%s  [path: %s]\n", q.title, res.Path)
		if res.SQL != "" {
			fmt.Printf("  SQL/XML: %s\n", res.SQL)
		}
		out := res.Items.Serialize()
		if out == "" {
			out = "(empty)"
		}
		fmt.Printf("  result: %s\n\n", out)
	}
}

// Quickstart: archive a table, change it over time, and ask temporal
// questions — both through the XQuery→SQL/XML translator and directly
// on the XML view of the history.
package main

import (
	"fmt"
	"log"

	"archis"
)

func main() {
	sys, err := archis.New(archis.Options{Layout: archis.LayoutClustered})
	if err != nil {
		log.Fatal(err)
	}

	// Register the table to archive. From now on every change to it is
	// captured into H-tables with transaction-time intervals.
	err = sys.Register(archis.TableSpec{
		Name: "employee",
		Columns: []archis.Column{
			archis.IntCol("id"),
			archis.StringCol("name"),
			archis.IntCol("salary"),
			archis.StringCol("title"),
		},
		Key: []string{"id"},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Drive the current database through some history.
	steps := []struct {
		day string
		sql string
	}{
		{"1995-01-01", `insert into employee values (1001, 'Bob', 60000, 'Engineer')`},
		{"1995-06-01", `update employee set salary = 70000 where id = 1001`},
		{"1995-10-01", `update employee set title = 'Sr Engineer' where id = 1001`},
		{"1996-02-01", `update employee set title = 'TechLeader' where id = 1001`},
	}
	for _, s := range steps {
		sys.SetClock(archis.MustDate(s.day))
		if _, err := sys.Exec(s.sql); err != nil {
			log.Fatal(err)
		}
	}

	// 1. Temporal projection: Bob's full title history, already
	// coalesced thanks to the temporally grouped representation.
	q1 := `element title_history {
	  for $t in doc("employees.xml")/employees/employee[name="Bob"]/title
	  return $t }`
	res, err := sys.Query(q1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("title history (via %s):\n  %s\n\n", res.Path, res.Items.Serialize())
	fmt.Printf("translated SQL/XML:\n  %s\n\n", res.SQL)

	// 2. Snapshot: what was Bob's salary on 1995-03-15?
	q2 := `for $s in doc("employees.xml")/employees/employee[name="Bob"]/salary
	        [tstart(.) <= xs:date("1995-03-15") and tend(.) >= xs:date("1995-03-15")]
	       return string($s)`
	res, err = sys.Query(q2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("salary on 1995-03-15: %s\n\n", res.Items.Serialize())

	// 3. The raw XML view (H-document) of the history.
	doc, err := sys.PublishHDoc("employee")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("the H-document:")
	fmt.Println(archis.PrettyXML(doc))
}

// Package archis is a transaction-time temporal database system built
// on an embedded relational engine, reproducing "Using XML to Build
// Efficient Transaction-Time Temporal Database Systems on Relational
// Databases" (Wang, Zhou, Zaniolo — TimeCenter TR-81 / ICDE 2006).
//
// ArchIS tracks every change to registered tables and exposes each
// table's full history as a temporally grouped XML view (an
// H-document) that can be queried with an XQuery subset, including the
// paper's temporal function library (tstart, tend, toverlaps,
// overlapinterval, coalesce, restructure, tavg, …). Queries are
// translated to SQL/XML over internal H-tables when possible and
// evaluated directly over the XML view otherwise. Attribute histories
// can be clustered into temporal segments by usefulness and compressed
// with block-granular zlib (BlockZIP) while remaining queryable.
//
// Quick start:
//
//	sys, _ := archis.New(archis.Options{Layout: archis.LayoutClustered})
//	sys.Register(archis.TableSpec{
//	    Name:    "employee",
//	    Columns: []archis.Column{archis.IntCol("id"), archis.StringCol("name"), archis.IntCol("salary")},
//	    Key:     []string{"id"},
//	})
//	sys.Exec(`insert into employee values (1, 'Bob', 60000)`)
//	sys.SetClock(archis.MustDate("1995-06-01"))
//	sys.Exec(`update employee set salary = 70000 where id = 1`)
//	res, _ := sys.Query(`for $s in doc("employees.xml")/employees/employee[name="Bob"]/salary return $s`)
//	fmt.Println(res.Items.Serialize())
package archis

import (
	"archis/internal/core"
	"archis/internal/htable"
	"archis/internal/relstore"
	"archis/internal/sqlengine"
	"archis/internal/temporal"
	"archis/internal/wal"
	"archis/internal/xmltree"
)

// XMLNode is a node of an H-document (the XML view of a table's
// history) or of a query result.
type XMLNode = xmltree.Node

// PrettyXML renders a node with indentation.
func PrettyXML(n *XMLNode) string { return xmltree.Pretty(n) }

// XMLString renders a node compactly.
func XMLString(n *XMLNode) string { return xmltree.String(n) }

// System is the assembled ArchIS instance; see internal/core for the
// full method set (Register, Exec, Query, QueryXML, Translate,
// CompressFrozen, PublishHDoc, SetClock, …).
type System = core.System

// Options configure a System.
type Options = core.Options

// Layout selects the physical layout of attribute-history tables.
type Layout = core.Layout

// Physical layouts.
const (
	LayoutPlain      = core.LayoutPlain
	LayoutClustered  = core.LayoutClustered
	LayoutCompressed = core.LayoutCompressed
)

// PlannerMode toggles cost-based query planning (DESIGN.md §12).
type PlannerMode = core.PlannerMode

// Planner modes.
const (
	PlannerOn  = core.PlannerOn
	PlannerOff = core.PlannerOff
)

// ColumnarMode toggles columnar frozen blocks and vectorized
// execution on the compressed layout (DESIGN.md §13).
type ColumnarMode = core.ColumnarMode

// Columnar modes.
const (
	ColumnarOn  = core.ColumnarOn
	ColumnarOff = core.ColumnarOff
)

// Capture modes.
const (
	CaptureTrigger = htable.CaptureTrigger
	CaptureLog     = htable.CaptureLog
)

// ExecutionPath values for QueryResult.Path.
const (
	PathSQL = core.PathSQL
	PathXML = core.PathXML
)

// QueryResult is the unified result of a temporal query.
type QueryResult = core.QueryResult

// Result is a SQL statement result (rows, columns, rows affected).
type Result = sqlengine.Result

// ParallelResult is the outcome of one query in a System.RunParallel
// batch: ArchIS serves read-mostly archives, so batches of temporal
// queries (XQuery or SQL SELECT) can be fanned out across a worker
// pool while sharing one page cache and one set of H-tables.
//
//	results := sys.RunParallel([]string{q1, q2, q3}, 0) // 0 → GOMAXPROCS
//	for _, r := range results {
//	    if r.Err != nil { ... }
//	}
type ParallelResult = core.ParallelResult

// TableSpec declares a table to archive.
type TableSpec = htable.TableSpec

// Column describes one table attribute.
type Column = relstore.Column

// Date is a day-granularity timestamp.
type Date = temporal.Date

// Interval is an inclusive [start, end] time interval.
type Interval = temporal.Interval

// ExecOpt modifies one Exec/ExecDurable call (bitemporal scoping,
// DESIGN.md §16).
type ExecOpt = core.ExecOpt

// WithValidTime asserts the valid interval a mutation records
// (default [clock, Forever]).
func WithValidTime(iv Interval) ExecOpt { return core.WithValidTime(iv) }

// AsOfValidTime scopes a SELECT/EXPLAIN to versions valid at d.
func AsOfValidTime(d Date) ExecOpt { return core.AsOfValidTime(d) }

// AsOfTransactionTime scopes a SELECT/EXPLAIN to the retained MVCC
// version published at the given LSN.
func AsOfTransactionTime(lsn uint64) ExecOpt { return core.AsOfTransactionTime(lsn) }

// Forever is the internal encoding of "now" (9999-12-31).
var Forever = temporal.Forever

// New builds a System.
func New(opts Options) (*System, error) { return core.New(opts) }

// Open reconstructs a System from a file written by System.SaveFile —
// or, when path is the directory of a durable system (Options.WALDir),
// recovers it: the latest checkpoint snapshot is loaded and the
// write-ahead log tail replayed, tolerating a torn final record.
func Open(path string) (*System, error) { return core.Open(path) }

// RecoverOptions tune recovery of a durable directory: snapshot
// metadata supplies the defaults, non-zero fields win (a non-nil Sync
// changes the WAL commit policy of the reopened system).
type RecoverOptions = core.RecoverOptions

// Recover is Open for a durable directory with explicit overrides.
func Recover(dir string, opts RecoverOptions) (*System, error) {
	return core.RecoverWithOptions(dir, opts)
}

// SyncMode selects the WAL commit durability policy
// (Options.WALSync).
type SyncMode = wal.SyncMode

// WAL commit policies: every commit fsyncs (grouped), commits coalesce
// in a batch window, or durability waits for checkpoint/close.
const (
	SyncAlways = wal.SyncAlways
	SyncBatch  = wal.SyncBatch
	SyncNone   = wal.SyncNone
)

// Stats combines storage-engine and durability counters
// (System.Stats).
type Stats = core.Stats

// MustDate parses an ISO date ("2006-01-02"), panicking on bad input.
func MustDate(s string) Date { return temporal.MustParseDate(s) }

// ParseDate parses an ISO date.
func ParseDate(s string) (Date, error) { return temporal.ParseDate(s) }

// IntCol, FloatCol, StringCol and DateCol build column specs.
func IntCol(name string) Column    { return relstore.Col(name, relstore.TypeInt) }
func FloatCol(name string) Column  { return relstore.Col(name, relstore.TypeFloat) }
func StringCol(name string) Column { return relstore.Col(name, relstore.TypeString) }
func DateCol(name string) Column   { return relstore.Col(name, relstore.TypeDate) }

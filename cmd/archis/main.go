// archis is an interactive shell for the ArchIS temporal database: it
// loads a demo or generated employee history and accepts XQuery
// (against the H-views) and SQL (against current tables and H-tables)
// on stdin.
//
// Usage:
//
//	archis [-layout plain|clustered|compressed] [-employees N] [-years Y] [-demo]
//	archis [-wal DIR] [-sync always|batch|none]   durable mode: log every change
//	archis [-sync MODE] recover DIR               recover a durable system, then shell
//	archis wal-stats DIR                          recover and print durability counters
//
// Reopening an existing durable directory (-wal or recover) keeps the
// commit policy recorded in its snapshot unless -sync is passed
// explicitly, which overrides it from this run on.
//
// Commands inside the shell:
//
//	xquery <query>     run a temporal XQuery (translated when possible)
//	sql <statement>    run SQL directly (durable mode: acked after fsync)
//	translate <query>  show the SQL/XML translation only
//	doc <table>        print the H-document of a table
//	clock [date]       show or set the archive clock
//	stats              physical counters and storage (and WAL counters)
//	metrics            JSON dump of every counter, gauge and histogram
//	checkpoint         snapshot a durable system and truncate its log
//	help, quit
//
// With -trace, every xquery also prints its execution trace tree; -slow
// DURATION logs queries at least that slow to stderr. SQL EXPLAIN
// [ANALYZE] SELECT ... works through the sql command.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"archis"
	"archis/internal/dataset"
)

var (
	layout    = flag.String("layout", "clustered", "attribute-table layout: plain, clustered or compressed")
	employees = flag.Int("employees", 0, "generate a synthetic history with this many employees")
	yearsN    = flag.Int("years", 10, "years of synthetic history")
	demo      = flag.Bool("demo", true, "load the paper's Tables 1-2 micro history")
	dbPath    = flag.String("db", "", "open an existing system file (and save back on 'save')")
	workers   = flag.Int("workers", 0, "intra-query scan workers (0 = GOMAXPROCS, 1 = serial)")
	walDir    = flag.String("wal", "", "run durably: write-ahead log and snapshots in this directory")
	syncMode  = flag.String("sync", "always", "WAL commit policy: always, batch or none")
	plannerOn = flag.Bool("planner", true, "cost-based query planning (false = legacy fixed access heuristics)")
	columnar  = flag.Bool("columnar", true, "columnar frozen blocks + vectorized execution on the compressed layout (false = legacy row-in-blob)")
	traceOn   = flag.Bool("trace", false, "print the execution trace tree after every xquery")
	slowQ     = flag.Duration("slow", 0, "log queries at least this slow to stderr (0 = off)")
	asOfLSN   = flag.Uint64("as-of-lsn", 0, "recover: stop replay at this LSN (read-only point-in-time system)")
)

func main() {
	flag.Parse()
	switch flag.Arg(0) {
	case "recover":
		dir := flag.Arg(1)
		if dir == "" {
			fmt.Fprintln(os.Stderr, "usage: archis recover DIR")
			os.Exit(2)
		}
		sys := recoverDir(dir)
		repl(sys)
		check(sys.Close())
		return
	case "wal-stats":
		dir := flag.Arg(1)
		if dir == "" {
			fmt.Fprintln(os.Stderr, "usage: archis wal-stats DIR")
			os.Exit(2)
		}
		sys := recoverDir(dir)
		printWALStats(sys)
		check(sys.Close())
		return
	}
	if *dbPath != "" {
		if _, err := os.Stat(*dbPath); err == nil {
			sys, err := archis.Open(*dbPath)
			check(err)
			fmt.Println("opened", *dbPath)
			repl(sys)
			return
		}
	}
	var lay archis.Layout
	switch *layout {
	case "plain":
		lay = archis.LayoutPlain
	case "clustered":
		lay = archis.LayoutClustered
	case "compressed":
		lay = archis.LayoutCompressed
	default:
		fmt.Fprintln(os.Stderr, "unknown layout", *layout)
		os.Exit(2)
	}
	sync := parseSyncMode(*syncMode)
	if *walDir != "" {
		if _, err := os.Stat(*walDir); err == nil {
			// An existing durable directory is recovered, not reloaded.
			sys := recoverDir(*walDir)
			repl(sys)
			check(sys.Close())
			return
		}
	}
	planner := archis.PlannerOn
	if !*plannerOn {
		planner = archis.PlannerOff
	}
	colMode := archis.ColumnarOn
	if !*columnar {
		colMode = archis.ColumnarOff
	}
	sys, err := archis.New(archis.Options{Layout: lay, Workers: *workers,
		Planner: planner, Columnar: colMode,
		WALDir:  *walDir, WALSync: sync,
		SlowQueryThreshold: *slowQ,
		SlowQueryLog:       func(rec string) { fmt.Fprintln(os.Stderr, rec) }})
	check(err)
	check(sys.Register(dataset.EmployeeSpec()))
	check(sys.Register(dataset.DeptSpec()))
	check(sys.AliasDoc("emp.xml", "employee"))

	switch {
	case *employees > 0:
		cfg := dataset.DefaultConfig()
		cfg.Employees = *employees
		cfg.Years = *yearsN
		fmt.Printf("generating %d employees over %d years...\n", cfg.Employees, cfg.Years)
		st, err := dataset.Generate(sys.Archive, cfg)
		check(err)
		sys.Publish()
		fmt.Printf("loaded: %d inserts, %d updates, %d deletes\n", st.Inserts, st.Updates, st.Deletes)
	case *demo:
		check(dataset.LoadMicro(sys.Archive))
		sys.Publish()
		fmt.Println("loaded the paper's Tables 1-2 micro history (employees Bob, Alice, Carol; depts d01-d03)")
	}
	if lay == archis.LayoutCompressed {
		check(sys.CompressFrozen())
	}
	if sys.Durable() {
		// The generated history was loaded through the fast path; make
		// it durable in one fsync before handing over the prompt.
		check(sys.SyncWAL())
		fmt.Printf("durable: logging to %s (sync=%s)\n", *walDir, *syncMode)
	}
	repl(sys)
	check(sys.Close())
}

func parseSyncMode(s string) archis.SyncMode {
	switch s {
	case "always":
		return archis.SyncAlways
	case "batch":
		return archis.SyncBatch
	case "none":
		return archis.SyncNone
	}
	fmt.Fprintln(os.Stderr, "unknown sync mode", s)
	os.Exit(2)
	return 0
}

// explicitSyncFlag returns the -sync mode only when the flag was
// passed on the command line, nil otherwise.
func explicitSyncFlag() *archis.SyncMode {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "sync" {
			set = true
		}
	})
	if !set {
		return nil
	}
	m := parseSyncMode(*syncMode)
	return &m
}

// recoverDir rebuilds a durable system from its directory and reports
// what recovery did. An explicitly passed -sync flag overrides the
// commit policy recorded in the snapshot; otherwise the recorded
// policy sticks.
func recoverDir(dir string) *archis.System {
	start := time.Now()
	sys, err := archis.Recover(dir, archis.RecoverOptions{Sync: explicitSyncFlag(), MaxLSN: *asOfLSN})
	check(err)
	st := sys.Stats()
	fmt.Printf("recovered %s in %s: replayed %d records, log at lsn %d (%d segments)\n",
		dir, time.Since(start).Round(time.Microsecond), st.WALReplayedRecords,
		st.WALAppendedLSN, st.WALSegments)
	if reason := sys.ReadOnlyReason(); reason != "" {
		fmt.Printf("read-only: %s\n", reason)
	}
	return sys
}

func printWALStats(sys *archis.System) {
	st := sys.Stats()
	fmt.Printf("appends:          %d\n", st.WALAppends)
	fmt.Printf("fsyncs:           %d\n", st.WALFsyncs)
	fmt.Printf("grouped commits:  %d\n", st.WALGroupedCommits)
	fmt.Printf("replayed records: %d\n", st.WALReplayedRecords)
	fmt.Printf("segments:         %d\n", st.WALSegments)
	fmt.Printf("appended lsn:     %d\n", st.WALAppendedLSN)
	fmt.Printf("durable lsn:      %d\n", st.WALDurableLSN)
}

func repl(sys *archis.System) {
	fmt.Println(`type "help" for commands`)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("archis> ")
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		cmd, rest, _ := strings.Cut(line, " ")
		rest = strings.TrimSpace(rest)
		switch strings.ToLower(cmd) {
		case "quit", "exit":
			return
		case "help":
			fmt.Println("  xquery <q>  | sql <stmt> | translate <q> | doc <table> | clock [date] | stats | metrics | checkpoint | save <path> | quit")
			fmt.Println("  vsql <date> <select>           run a SELECT over versions valid at <date>")
			fmt.Println("  vwrite <vstart> <vend> <stmt>  run a write asserting valid interval [vstart, vend]")
		case "save":
			if rest == "" && *dbPath != "" {
				rest = *dbPath
			}
			if rest == "" {
				fmt.Println("usage: save <path>")
				continue
			}
			if err := sys.SaveFile(rest); err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Println("saved to", rest)
		case "xquery":
			if *traceOn {
				res, trace, err := sys.QueryTraced(rest)
				if err != nil {
					fmt.Println("error:", err)
					continue
				}
				fmt.Printf("[path: %s]\n", res.Path)
				if res.SQL != "" {
					fmt.Println("sql:", res.SQL)
				}
				fmt.Println(res.Items.Serialize())
				fmt.Print(trace.Tree())
				continue
			}
			res, err := sys.Query(rest)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Printf("[path: %s]\n", res.Path)
			if res.SQL != "" {
				fmt.Println("sql:", res.SQL)
			}
			fmt.Println(res.Items.Serialize())
		case "sql":
			// Durable systems acknowledge writes only after their log
			// records are fsynced.
			res, err := sys.ExecDurable(rest)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			printResult(res)
		case "vsql":
			// vsql <date> <select>: bitemporal read — the SELECT sees only
			// versions whose valid interval covers the date.
			dateStr, stmt, _ := strings.Cut(rest, " ")
			d, err := archis.ParseDate(dateStr)
			if err != nil || strings.TrimSpace(stmt) == "" {
				fmt.Println("usage: vsql <yyyy-mm-dd> <select>")
				continue
			}
			res, err := sys.Exec(strings.TrimSpace(stmt), archis.AsOfValidTime(d))
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			printResult(res)
		case "vwrite":
			// vwrite <vstart> <vend> <stmt>: the mutation asserts its
			// value holds over [vstart, vend] in the modeled world.
			vsStr, rest2, _ := strings.Cut(rest, " ")
			veStr, stmt, _ := strings.Cut(strings.TrimSpace(rest2), " ")
			vs, err1 := archis.ParseDate(vsStr)
			ve, err2 := archis.ParseDate(veStr)
			if err1 != nil || err2 != nil || strings.TrimSpace(stmt) == "" {
				fmt.Println("usage: vwrite <vstart> <vend> <stmt>")
				continue
			}
			res, err := sys.ExecDurable(strings.TrimSpace(stmt),
				archis.WithValidTime(archis.Interval{Start: vs, End: ve}))
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			printResult(res)
		case "translate":
			sql, err := sys.Translate(rest)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Println(sql)
		case "doc":
			doc, err := sys.PublishHDoc(rest)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Println(archis.PrettyXML(doc))
		case "clock":
			if rest == "" {
				fmt.Println(sys.Clock())
				continue
			}
			d, err := archis.ParseDate(rest)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			sys.SetClock(d)
			fmt.Println("clock set to", d)
		case "stats":
			st := sys.DB.Stats()
			fmt.Printf("block reads: %d  cache hits: %d  pages skipped: %d\n",
				st.BlockReads, st.CacheHits, st.PagesSkipped)
			fmt.Printf("morsels: %d  rows borrowed: %d  rows copied: %d\n",
				st.Morsels, st.RowsBorrowed, st.RowsCopied)
			fmt.Printf("history storage: %d KiB\n", sys.StorageBytes()/1024)
			if sys.Durable() {
				printWALStats(sys)
			}
		case "metrics":
			os.Stdout.Write(sys.MetricsJSON())
			fmt.Println()
		case "checkpoint":
			if err := sys.Checkpoint(); err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Println("checkpoint written; log truncated")
		default:
			fmt.Println("unknown command; type help")
		}
	}
}

func printResult(res *archis.Result) {
	if len(res.Columns) > 0 {
		fmt.Println(strings.Join(res.Columns, " | "))
	}
	for _, row := range res.Rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = v.Text()
		}
		fmt.Println(strings.Join(parts, " | "))
	}
	if res.RowsAffected > 0 {
		fmt.Printf("%d rows affected\n", res.RowsAffected)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "archis:", err)
		os.Exit(1)
	}
}

// archis-bench regenerates the paper's evaluation tables and figures
// (Sections 7–8) on the synthetic temporal employee workload and
// prints paper-shaped rows: per-query times for each system
// configuration, storage ratios for the Umin sweep and for
// compression, scalability factors, and update costs.
//
// Usage:
//
//	archis-bench [-employees N] [-years Y] [-scale K] [-runs R] [-fig LIST]
//
// where LIST is a comma-separated subset of
// fig7,fig8,fig9,fig10,fig11,fig13,fig14,upd,trans,dur (default all).
// dur is the durability experiment: single-row insert throughput with
// the write-ahead log under each commit policy (fsync-per-commit,
// group commit across concurrent writers, batched, none) plus the time
// to recover the resulting directory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"archis/internal/bench"
	"archis/internal/core"
	"archis/internal/dataset"
	"archis/internal/htable"
	"archis/internal/obs"
	"archis/internal/relstore"
	"archis/internal/segment"
	"archis/internal/temporal"
	"archis/internal/wal"
	"archis/internal/xmltree"
)

var (
	employees = flag.Int("employees", 800, "steady-state employee population (S=1)")
	years     = flag.Int("years", 17, "years of history")
	scale     = flag.Int("scale", 4, "figure 10 scale factor (paper: 7)")
	runs      = flag.Int("runs", 3, "cold runs per query; the average is reported")
	figs      = flag.String("fig", "all", "comma-separated figures to run")
	parallel  = flag.Bool("parallel", false, "run the Q1-Q6 suite and multi-snapshot workloads across goroutines and report serial vs parallel throughput")
	workers   = flag.Int("workers", 0, "worker count for -parallel batches and -json intra-query runs (0 = GOMAXPROCS)")
	rounds    = flag.Int("rounds", 8, "suite repetitions per -parallel batch")
	jsonOut   = flag.String("json", "", "time the Q1-Q6 suite at Workers=1 and Workers=-workers on the scaled dataset and write JSON records to this path")
	warm      = flag.Int("warm", 0, "also time N warm runs per query (caches kept between runs) in -json mode; 0 = cold only")
	traceRun  = flag.Bool("trace", false, "run the Q1-Q6 suite traced on the clustered and compressed layouts, print each execution trace as JSON and fail on malformed traces")
	plannerOn = flag.Bool("planner", true, "cost-based planning (false = legacy fixed access heuristics)")
	advOut    = flag.String("adversarial", "", "run the adversarial-selectivity planner benchmark and write JSON records to this path")
	advRows   = flag.Int("advrows", 120000, "table size for the -adversarial benchmark")
	columnar  = flag.Bool("columnar", true, "columnar frozen blocks + vectorized execution on the compressed layout (false = legacy row-in-blob)")
	colGate   = flag.String("columnargate", "", "run the columnar-vs-rowblob gate (cold Q2/Q4/Q6 on the scaled compressed layout), write JSON records to this path and fail unless columnar wins >= the -colmin factor with no storage regression")
	colMin    = flag.Float64("colmin", 2.0, "minimum columnar/rowblob min-latency speedup the -columnargate asserts")
)

// plannerMode maps the -planner flag onto the engine option.
func plannerMode() core.PlannerMode {
	if *plannerOn {
		return core.PlannerOn
	}
	return core.PlannerOff
}

// columnarMode maps the -columnar flag onto the storage/engine option.
func columnarMode() core.ColumnarMode {
	if *columnar {
		return core.ColumnarOn
	}
	return core.ColumnarOff
}

// encoding names the frozen-block encoding a compressed-layout cell
// ran with, for -json records.
func encoding() string {
	if *columnar {
		return "columnar"
	}
	return "rowblob"
}

// benchBlockCacheBytes is the decoded-block cache budget used for the
// compressed layout in -json runs. Cold records are unaffected: Cold()
// drops the block cache along with the page cache.
const benchBlockCacheBytes = 64 << 20

func main() {
	flag.Parse()
	want := map[string]bool{}
	for _, f := range strings.Split(*figs, ",") {
		want[strings.TrimSpace(f)] = true
	}
	all := want["all"]

	h := &harness{}
	fmt.Printf("ArchIS evaluation harness — %d employees, %d years (S=1)\n\n", *employees, *years)

	if *traceRun {
		h.traceSuite()
		return
	}
	if *advOut != "" {
		h.adversarial(*advOut)
		return
	}
	if *colGate != "" {
		h.columnarGate(*colGate)
		return
	}
	if *mixedRun {
		h.mixedWorkload(*jsonOut)
		return
	}
	if *bitempRun {
		h.bitemporal(*jsonOut)
		return
	}
	if *serveRun {
		h.serveBench(*jsonOut)
		return
	}
	if *jsonOut != "" {
		h.benchJSON(*jsonOut)
		return
	}
	if *parallel {
		h.parallelSuite()
		return
	}
	if all || want["trans"] {
		h.translationCost()
	}
	if all || want["fig7"] {
		h.fig7()
	}
	if all || want["fig8"] {
		h.fig8()
	}
	if all || want["fig9"] {
		h.fig9()
	}
	if all || want["fig10"] {
		h.fig10()
	}
	if all || want["fig11"] {
		h.fig11()
	}
	if all || want["fig13"] {
		h.fig13()
	}
	if all || want["fig14"] {
		h.fig14()
	}
	if all || want["upd"] {
		h.updates()
	}
	if all || want["dur"] {
		h.durability()
	}
}

type harness struct {
	plain      *bench.Env
	clustered  *bench.Env
	compressed *bench.Env
	xdb        *bench.XMLEnv
}

func cfg1() dataset.Config {
	cfg := dataset.DefaultConfig()
	cfg.Employees = *employees
	cfg.Years = *years
	return cfg
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "archis-bench:", err)
		os.Exit(1)
	}
}

func (h *harness) getPlain() *bench.Env {
	if h.plain == nil {
		e, err := bench.Build(cfg1(), bench.Options{Layout: core.LayoutPlain, Planner: plannerMode()})
		die(err)
		h.plain = e
	}
	return h.plain
}

func (h *harness) getClustered() *bench.Env {
	if h.clustered == nil {
		e, err := bench.Build(cfg1(), bench.Options{Layout: core.LayoutClustered, Planner: plannerMode()})
		die(err)
		h.clustered = e
	}
	return h.clustered
}

func (h *harness) getCompressed() *bench.Env {
	if h.compressed == nil {
		e, err := bench.Build(cfg1(), bench.Options{Layout: core.LayoutCompressed, Compress: true,
			Planner: plannerMode()})
		die(err)
		h.compressed = e
	}
	return h.compressed
}

func (h *harness) getXDB() *bench.XMLEnv {
	if h.xdb == nil {
		x, err := bench.BuildXMLBaseline(h.getPlain(), true)
		die(err)
		h.xdb = x
	}
	return h.xdb
}

// timeQuery returns the average cold latency of one query. One
// untimed warm-up run absorbs lazy-initialization noise; every timed
// run is still cold (caches dropped).
func timeQuery(cold func(), run func() error) time.Duration {
	cold()
	die(run())
	var total time.Duration
	for i := 0; i < *runs; i++ {
		cold()
		start := time.Now()
		die(run())
		total += time.Since(start)
	}
	return total / time.Duration(*runs)
}

func (h *harness) archisTimes(e *bench.Env) map[bench.QueryID]time.Duration {
	out := map[bench.QueryID]time.Duration{}
	for _, q := range bench.AllQueries {
		q := q
		out[q] = timeQuery(e.Cold, func() error { _, err := e.Run(q); return err })
	}
	return out
}

func (h *harness) xmlTimes(x *bench.XMLEnv) map[bench.QueryID]time.Duration {
	out := map[bench.QueryID]time.Duration{}
	for _, q := range bench.AllQueries {
		q := q
		out[q] = timeQuery(x.Cold, func() error { _, err := x.Run(q); return err })
	}
	return out
}

func ms(d time.Duration) string { return fmt.Sprintf("%8.2f", float64(d.Microseconds())/1000) }

func printQueryTable(headers []string, cols []map[bench.QueryID]time.Duration) {
	fmt.Printf("  %-6s", "query")
	for _, hd := range headers {
		fmt.Printf("  %10s", hd)
	}
	fmt.Println("   (ms)")
	for _, q := range bench.AllQueries {
		fmt.Printf("  Q%-5d", q)
		for _, c := range cols {
			fmt.Printf("  %10s", ms(c[q]))
		}
		fmt.Println()
	}
	fmt.Println()
}

// parallelSuite runs the Q1–Q6 suite and a multi-snapshot workload
// through System.RunParallel, once with one worker (serial mode) and
// once with the configured pool, verifying that both modes return
// identical results and reporting aggregate throughput.
func (h *harness) parallelSuite() {
	w := *workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	fmt.Printf("== parallel query execution — %d workers ==\n", w)

	run := func(label string, e *bench.Env, queries []string) {
		// Pin intra-query parallelism off so the speedup measured here
		// is purely the batch-level worker pool's.
		e.Sys.Engine.Workers = 1
		// Warm-up pass so both modes start from the same cache state.
		e.Cold()
		if _, _, err := e.RunBatch(queries, 1); err != nil {
			die(err)
		}
		serialT, serialR, err := e.RunBatch(queries, 1)
		die(err)
		parT, parR, err := e.RunBatch(queries, w)
		die(err)
		if !bench.SameAnswers(serialR, parR) {
			die(fmt.Errorf("%s: parallel results differ from serial results", label))
		}
		qps := func(d time.Duration) float64 {
			return float64(len(queries)) / d.Seconds()
		}
		fmt.Printf("  %-28s %4d queries   serial %8.1f q/s   parallel %8.1f q/s   speedup %.2fx (identical results)\n",
			label, len(queries), qps(serialT), qps(parT), float64(serialT)/float64(parT))
	}

	e := h.getClustered()
	run("Q1-Q6 suite (clustered)", e, e.SuiteQueries(*rounds))
	run("multi-snapshot (clustered)", e, e.SnapshotQueries(8**rounds))
	c := h.getCompressed()
	run("Q1-Q6 suite (compressed)", c, c.SuiteQueries(*rounds))
	fmt.Println()
}

// traceSuite runs the Q1-Q6 suite under the execution tracer on the
// clustered and compressed layouts and prints one JSON trace per
// query. Each trace is re-parsed and structurally checked before
// printing, so `make trace-smoke` fails when the tracer emits a
// malformed or empty tree.
func (h *harness) traceSuite() {
	checked := 0
	for _, lay := range []struct {
		name string
		env  *bench.Env
	}{
		{"clustered", h.getClustered()},
		{"compressed", h.getCompressed()},
	} {
		e := lay.env
		e.Cold()
		for _, q := range bench.AllQueries {
			sql := e.SQL(q)
			tr := obs.NewTracer("query")
			res, err := e.Sys.Engine.ExecTraced(sql, tr.Root())
			die(err)
			tr.Root().SetAttr("layout", lay.name)
			tr.Root().AddRows(0, int64(len(res.Rows)))
			qt := tr.Finish(sql)
			data := qt.JSON()
			die(validateTrace(data))
			fmt.Printf("-- %s Q%d --\n%s\n", lay.name, q, data)
			checked++
		}
	}
	fmt.Printf("validated %d traces\n", checked)
}

// validateTrace asserts a trace JSON document is well-formed: it must
// parse back, carry the query, and hold a root span with a name and at
// least one child (every suite query at least parses and scans).
func validateTrace(data []byte) error {
	var doc struct {
		Query string `json:"query"`
		Root  *struct {
			Name     string            `json:"name"`
			DurNS    int64             `json:"dur_ns"`
			Children []json.RawMessage `json:"children"`
		} `json:"root"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("trace does not parse: %w", err)
	}
	switch {
	case doc.Query == "":
		return fmt.Errorf("trace lacks its query text")
	case doc.Root == nil || doc.Root.Name == "":
		return fmt.Errorf("trace lacks a named root span")
	case doc.Root.DurNS < 0:
		return fmt.Errorf("trace root has negative duration %d", doc.Root.DurNS)
	case len(doc.Root.Children) == 0:
		return fmt.Errorf("trace root has no child spans")
	}
	return nil
}

// benchRecord is one (layout, workers, mode, query) timing cell of a
// -json run.
type benchRecord struct {
	Query   string `json:"query"`
	Path    string `json:"path"` // physical layout the query ran on
	// Encoding is the frozen-block encoding on the compressed layout
	// ("columnar" or "rowblob", per the -columnar flag); empty on
	// layouts without BlockZIP blocks.
	Encoding string `json:"encoding,omitempty"`
	Workers  int    `json:"workers"`
	Mode     string `json:"mode"`             // "cold" (caches dropped per run) or "warm"
	Access   string `json:"access,omitempty"` // planner access path ("scan", "colscan" or "index")
	MeanNS  int64  `json:"mean_ns"`
	MinNS   int64  `json:"min_ns"`
	Rows    int    `json:"rows"`

	// Decoded-block cache activity across the timed runs of this cell,
	// measured as per-iteration counter deltas (Stats.Sub), so warm
	// series report the hit rate of their own runs — the counters are
	// cumulative for the process and used to leak earlier cells'
	// activity into later ratios. Zero on layouts without a block
	// cache.
	BlockCacheHits   int64   `json:"block_cache_hits,omitempty"`
	BlockCacheMisses int64   `json:"block_cache_misses,omitempty"`
	BlockCacheRate   float64 `json:"block_cache_hit_rate,omitempty"`
}

// hostInfo makes single-core caveats machine-readable in committed
// BENCH_*.json files.
type hostInfo struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// benchReport is the top-level -json document: dataset and host
// parameters plus one record per (layout, workers, mode, query).
type benchReport struct {
	Timestamp       string        `json:"timestamp"`
	Host            hostInfo      `json:"host"`
	Employees       int           `json:"employees"`
	Years           int           `json:"years"`
	Scale           int           `json:"scale"`
	Runs            int           `json:"runs"`
	WarmRuns        int           `json:"warm_runs,omitempty"`
	BlockCacheBytes int           `json:"block_cache_bytes,omitempty"`
	Records         []benchRecord `json:"records"`
	Durability      []durRecord   `json:"durability,omitempty"`
}

// benchJSON times the Q1-Q6 suite on the scaled dataset — clustered
// and compressed layouts, Workers=1 (serial) and Workers=-workers
// (parallel) — and writes the machine-readable record file regression
// tooling diffs across commits. With -warm N, each cell also gets a
// warm series: caches dropped once, then N timed runs that keep the
// page and decoded-block caches hot.
func (h *harness) benchJSON(path string) {
	w := *workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	cfgS := cfg1().Scaled(*scale)
	fmt.Printf("== JSON bench: Q1-Q6, S=%d (%d employees), workers 1 vs %d ==\n", *scale, cfgS.Employees, w)
	rep := benchReport{
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Host: hostInfo{
			GoVersion:  runtime.Version(),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			NumCPU:     runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
		},
		Employees: cfgS.Employees,
		Years:     cfgS.Years,
		Scale:     *scale,
		Runs:      *runs,
		WarmRuns:  *warm,
	}
	if *warm > 0 {
		rep.BlockCacheBytes = benchBlockCacheBytes
	}

	levels := []int{1}
	if w > 1 {
		levels = append(levels, w)
	}
	layouts := []struct {
		name     string
		encoding string
		opts     bench.Options
	}{
		{"clustered", "", bench.Options{Layout: core.LayoutClustered, Workers: 1, Planner: plannerMode()}},
		{"compressed", encoding(), bench.Options{Layout: core.LayoutCompressed, Compress: true, Workers: 1,
			Planner: plannerMode(), Columnar: columnarMode(), BlockCacheBytes: benchBlockCacheBytes}},
	}
	measure := func(e *bench.Env, q bench.QueryID, n int, cold bool) (time.Duration, time.Duration, int, relstore.Stats) {
		e.Cold() // untimed warm-up absorbs lazy initialization (and, warm mode, fills caches)
		res, err := e.Run(q)
		die(err)
		var total, min time.Duration
		var cacheDelta relstore.Stats
		prev := e.Sys.DB.Stats()
		for i := 0; i < n; i++ {
			if cold {
				e.Cold()
				prev = e.Sys.DB.Stats()
			}
			start := time.Now()
			_, err := e.Run(q)
			die(err)
			d := time.Since(start)
			total += d
			if i == 0 || d < min {
				min = d
			}
			// Per-iteration delta: re-snapshot each pass so the cell's
			// numbers cover exactly its own timed runs, never the
			// process-cumulative counters.
			cur := e.Sys.DB.Stats()
			it := cur.Sub(prev)
			prev = cur
			cacheDelta.BlockCacheHits += it.BlockCacheHits
			cacheDelta.BlockCacheMisses += it.BlockCacheMisses
		}
		return total / time.Duration(n), min, res.Rows, cacheDelta
	}
	for _, lay := range layouts {
		e, err := bench.Build(cfgS, lay.opts)
		die(err)
		for _, lvl := range levels {
			e.Sys.Engine.Workers = lvl
			for _, q := range bench.AllQueries {
				modes := []struct {
					name string
					n    int
					cold bool
				}{{"cold", *runs, true}}
				if *warm > 0 {
					modes = append(modes, struct {
						name string
						n    int
						cold bool
					}{"warm", *warm, false})
				}
				access, err := bench.AccessPath(e.Sys.Engine, e.SQL(q))
				die(err)
				for _, m := range modes {
					mean, min, rows, cache := measure(e, q, m.n, m.cold)
					rec := benchRecord{
						Query:            fmt.Sprintf("Q%d", q),
						Path:             lay.name,
						Encoding:         lay.encoding,
						Workers:          lvl,
						Mode:             m.name,
						Access:           access,
						MeanNS:           mean.Nanoseconds(),
						MinNS:            min.Nanoseconds(),
						Rows:             rows,
						BlockCacheHits:   cache.BlockCacheHits,
						BlockCacheMisses: cache.BlockCacheMisses,
					}
					cacheNote := ""
					if lookups := cache.BlockCacheHits + cache.BlockCacheMisses; lookups > 0 {
						rec.BlockCacheRate = float64(cache.BlockCacheHits) / float64(lookups)
						cacheNote = fmt.Sprintf("  blkcache %.0f%%", rec.BlockCacheRate*100)
					}
					rep.Records = append(rep.Records, rec)
					fmt.Printf("  %-10s Q%-2d workers=%-2d %-4s  mean %s ms  min %s ms  rows %d%s\n",
						lay.name, q, lvl, m.name, strings.TrimSpace(ms(mean)), strings.TrimSpace(ms(min)), rows, cacheNote)
				}
			}
		}
	}
	rep.Durability = durabilityExperiments()
	for _, r := range rep.Durability {
		fmt.Printf("  durable-ingest %-14s writers=%d  %8.0f ops/s  recover %.2f ms (%d records)\n",
			r.Mode, r.Writers, r.OpsPerSec, float64(r.RecoverNS)/1e6, r.ReplayedRecords)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	die(err)
	die(os.WriteFile(path, append(data, '\n'), 0o644))
	fmt.Printf("wrote %d records to %s\n", len(rep.Records), path)
}

// plannerReport is the -adversarial output document: the planner's
// access-path decisions and timings on the adversarial-selectivity
// workload, planner on vs off.
type plannerReport struct {
	Timestamp string                `json:"timestamp"`
	Host      hostInfo              `json:"host"`
	TableRows int                   `json:"table_rows"`
	Runs      int                   `json:"runs"`
	Records   []bench.PlannerRecord `json:"records"`
}

// adversarial runs the adversarial-selectivity planner benchmark and
// fails unless the cost model makes the right calls: scan at 50%
// selectivity (and faster than the forced index probe), index probe
// when the predicate is selective.
func (h *harness) adversarial(path string) {
	// Min-of-pairs needs enough interleaved samples to find a quiet
	// window on a shared machine; 20 pairs is ~1s of query time.
	pairs := *runs
	if pairs < 20 {
		pairs = 20
	}
	fmt.Printf("== adversarial selectivity: planner vs forced index, %d rows, %d interleaved pairs ==\n",
		*advRows, pairs)
	recs, err := bench.PlannerAdversarial(*advRows, pairs)
	die(err)
	cell := map[string]bench.PlannerRecord{}
	for _, r := range recs {
		key := r.Case + "/off"
		if r.Planner {
			key = r.Case + "/on"
		}
		cell[key] = r
		fmt.Printf("  %-14s planner=%-5v access=%-5s  mean %8.2f ms  min %8.2f ms  rows %d\n",
			r.Case, r.Planner, r.Access, float64(r.MeanNS)/1e6, float64(r.MinNS)/1e6, r.Rows)
	}
	on, off := cell["permissive-eq/on"], cell["permissive-eq/off"]
	if on.Access != "scan" {
		die(fmt.Errorf("planner chose %q for the permissive predicate, want scan", on.Access))
	}
	if off.Access != "index" {
		die(fmt.Errorf("legacy heuristic chose %q for the permissive predicate, want index", off.Access))
	}
	if sel := cell["selective-eq/on"]; sel.Access != "index" {
		die(fmt.Errorf("planner chose %q for the selective predicate, want index", sel.Access))
	}
	// Compare min latencies: the noise floor of a shared CI machine
	// lands on means, while min approximates the true cost of each path.
	if on.MinNS >= off.MinNS {
		die(fmt.Errorf("planner scan (min %.2f ms) did not beat the forced index probe (min %.2f ms)",
			float64(on.MinNS)/1e6, float64(off.MinNS)/1e6))
	}
	fmt.Printf("  planner scan beats forced index probe by %.2fx on the permissive predicate (min latency)\n",
		float64(off.MinNS)/float64(on.MinNS))
	rep := plannerReport{
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Host: hostInfo{
			GoVersion:  runtime.Version(),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			NumCPU:     runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
		},
		TableRows: *advRows,
		Runs:      *runs,
		Records:   recs,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	die(err)
	die(os.WriteFile(path, append(data, '\n'), 0o644))
	fmt.Printf("wrote %d records to %s\n", len(recs), path)
}

// columnarReport is the -columnargate output document: cold scan-query
// timings on the compressed layout, columnar encoding vs legacy
// row-in-blob, on the scaled dataset.
type columnarReport struct {
	Timestamp string                 `json:"timestamp"`
	Host      hostInfo               `json:"host"`
	Employees int                    `json:"employees"`
	Years     int                    `json:"years"`
	Scale     int                    `json:"scale"`
	Pairs     int                    `json:"pairs"`
	MinFactor float64                `json:"min_factor"`
	Records   []bench.ColumnarRecord `json:"records"`
}

// columnarGate builds the scaled compressed dataset twice — columnar
// frozen blocks vs legacy row blobs — and times the scan-heavy queries
// (Q2 snapshot-avg, Q4 full count, Q6 UDA join) cold in interleaved
// pairs. It fails unless every query's columnar min latency beats the
// row-blob one by the -colmin factor, the answers agree, and the
// columnar footprint is no larger.
func (h *harness) columnarGate(path string) {
	pairs := *runs
	if pairs < 7 {
		pairs = 7
	}
	cfgS := cfg1().Scaled(*scale)
	fmt.Printf("== columnar gate: S=%d (%d employees, %d years), cold Q2/Q4/Q6, %d interleaved pairs ==\n",
		*scale, cfgS.Employees, cfgS.Years, pairs)
	on, off, err := bench.BuildColumnarPair(cfgS, bench.Options{Workers: 1, Planner: plannerMode()})
	die(err)
	fmt.Printf("  storage: columnar %d bytes, rowblob %d bytes (%.3fx)\n",
		on.Sys.StorageBytes(), off.Sys.StorageBytes(),
		float64(on.Sys.StorageBytes())/float64(off.Sys.StorageBytes()))
	queries := []bench.QueryID{bench.Q2, bench.Q4, bench.Q6}
	recs, err := bench.ColumnarCompare(on, off, queries, pairs)
	die(err)
	cell := map[string]bench.ColumnarRecord{}
	for _, r := range recs {
		cell[r.Query+"/"+r.Encoding] = r
		fmt.Printf("  %-3s %-8s access=%-8s  mean %8.2f ms  min %8.2f ms  rows %-7d batches %d\n",
			r.Query, r.Encoding, r.Access, float64(r.MeanNS)/1e6, float64(r.MinNS)/1e6, r.Rows, r.ColBatches)
	}
	for _, q := range queries {
		name := fmt.Sprintf("Q%d", q)
		col, blob := cell[name+"/columnar"], cell[name+"/rowblob"]
		if col.Access != "colscan" {
			die(fmt.Errorf("%s did not run vectorized (access=%q, want colscan)", name, col.Access))
		}
		if col.ColBatches == 0 {
			die(fmt.Errorf("%s consumed no column batches on the columnar side", name))
		}
		// Min over interleaved pairs approximates each path's true cost
		// on a shared machine (same argument as the planner gate).
		speedup := float64(blob.MinNS) / float64(col.MinNS)
		if speedup < *colMin {
			die(fmt.Errorf("%s columnar speedup %.2fx below the %.1fx gate (columnar min %.2f ms, rowblob min %.2f ms)",
				name, speedup, *colMin, float64(col.MinNS)/1e6, float64(blob.MinNS)/1e6))
		}
		fmt.Printf("  %s: columnar beats rowblob by %.2fx (min latency)\n", name, speedup)
	}
	if onB, offB := on.Sys.StorageBytes(), off.Sys.StorageBytes(); onB > offB {
		die(fmt.Errorf("columnar storage regressed: %d bytes vs %d row-blob bytes", onB, offB))
	}
	rep := columnarReport{
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Host: hostInfo{
			GoVersion:  runtime.Version(),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			NumCPU:     runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
		},
		Employees: cfgS.Employees,
		Years:     cfgS.Years,
		Scale:     *scale,
		Pairs:     pairs,
		MinFactor: *colMin,
		Records:   recs,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	die(err)
	die(os.WriteFile(path, append(data, '\n'), 0o644))
	fmt.Printf("wrote %d records to %s\n", len(recs), path)
}

func (h *harness) translationCost() {
	fmt.Println("== §7.1 query translation cost (paper: < 0.1 ms per query) ==")
	e := h.getClustered()
	q := `element title_history{
	  for $t in doc("employees.xml")/employees/employee[name="Bob"]/title
	  return $t }`
	n := 2000
	start := time.Now()
	for i := 0; i < n; i++ {
		_, err := e.Sys.Translate(q)
		die(err)
	}
	per := time.Since(start) / time.Duration(n)
	fmt.Printf("  QUERY 1 translation: %.4f ms per query\n\n", float64(per.Microseconds())/1000)
}

func (h *harness) fig7() {
	fmt.Println("== Figure 7: storage size vs Umin (segment redundancy) ==")
	plainRows := 0
	{
		e := h.getPlain()
		if t, ok := e.Sys.DB.Table("employee_salary"); ok {
			plainRows = t.LiveRows()
		}
	}
	fmt.Printf("  %-6s  %-9s  %-10s  %-14s  %-12s\n", "Umin", "segments", "tuples", "ratio(meas.)", "bound(Eq.3)")
	for _, umin := range []float64{0.20, 0.26, 0.36, 0.40} {
		e, err := bench.Build(cfg1(), bench.Options{Layout: core.LayoutClustered, Umin: umin})
		die(err)
		st, _ := e.Sys.SegmentStore("employee_salary")
		segs, _ := st.SegmentCount()
		rows := st.Table().LiveRows()
		fmt.Printf("  %-6.2f  %-9d  %-10d  %-14.3f  %-12.3f\n",
			umin, segs, rows, float64(rows)/float64(plainRows), segment.StorageBound(umin))
	}
	fmt.Println()
}

func (h *harness) fig8() {
	fmt.Println("== Table 3 / Figure 8: ArchIS (clustered) vs native XML DB, cold runs ==")
	at := h.archisTimes(h.getClustered())
	xt := h.xmlTimes(h.getXDB())
	printQueryTable([]string{"ArchIS", "XML-DB"}, []map[bench.QueryID]time.Duration{at, xt})
	for _, q := range bench.AllQueries {
		fmt.Printf("  Q%d speedup over XML DB: %.1fx\n", q, float64(xt[q])/float64(at[q]))
	}
	fmt.Println()
}

func (h *harness) fig9() {
	fmt.Println("== Figure 9: with vs without segment clustering ==")
	ct := h.archisTimes(h.getClustered())
	pt := h.archisTimes(h.getPlain())
	printQueryTable([]string{"clustered", "plain"}, []map[bench.QueryID]time.Duration{ct, pt})

	// §7.1 snapshot-vs-current comparison.
	e := h.getClustered()
	cur := timeQuery(e.Cold, func() error {
		_, err := e.Sys.Exec(`select avg(salary) from employee`)
		return err
	})
	fmt.Printf("  snapshot on archive (Q2) vs current DB: %s ms vs %s ms (paper: ~27%% slower)\n\n",
		strings.TrimSpace(ms(ct[bench.Q2])), strings.TrimSpace(ms(cur)))
}

func (h *harness) fig10() {
	fmt.Printf("== Figure 10: scalability, S=1 vs S=%d ==\n", *scale)
	t1 := h.archisTimes(h.getClustered())
	cfgS := cfg1().Scaled(*scale)
	eS, err := bench.Build(cfgS, bench.Options{Layout: core.LayoutClustered})
	die(err)
	tS := h.archisTimes(eS)
	printQueryTable(
		[]string{"S=1", fmt.Sprintf("S=%d", *scale)},
		[]map[bench.QueryID]time.Duration{t1, tS})
	for _, q := range bench.AllQueries {
		fmt.Printf("  Q%d growth: %.1fx (data grew %dx)\n", q, float64(tS[q])/float64(t1[q]), *scale)
	}
	fmt.Println()
}

// hdocBytes measures the uncompressed H-document size — the paper's
// denominator for compression ratios.
func (h *harness) hdocBytes(e *bench.Env) int {
	total := 0
	for _, table := range []string{"employee", "dept"} {
		doc, err := e.Sys.PublishHDoc(table)
		die(err)
		total += len(xmltree.String(doc))
	}
	return total
}

func (h *harness) fig11() {
	fmt.Println("== Figure 11: storage ratios without BlockZIP (vs H-document size) ==")
	base := h.hdocBytes(h.getPlain())
	xdbPlain, err := bench.BuildXMLBaseline(h.getPlain(), false)
	die(err)
	fmt.Printf("  H-documents (uncompressed):    %8d KiB  ratio 1.00\n", base/1024)
	fmt.Printf("  XML DB, compressed (Tamino):   %8d KiB  ratio %.2f\n",
		h.getXDB().DB.StorageBytes()/1024, float64(h.getXDB().DB.StorageBytes())/float64(base))
	fmt.Printf("  XML DB, uncompressed:          %8d KiB  ratio %.2f\n",
		xdbPlain.DB.StorageBytes()/1024, float64(xdbPlain.DB.StorageBytes())/float64(base))
	fmt.Printf("  ArchIS H-tables, plain:        %8d KiB  ratio %.2f\n",
		h.getPlain().Sys.StorageBytes()/1024, float64(h.getPlain().Sys.StorageBytes())/float64(base))
	fmt.Printf("  ArchIS H-tables, clustered:    %8d KiB  ratio %.2f\n",
		h.getClustered().Sys.StorageBytes()/1024, float64(h.getClustered().Sys.StorageBytes())/float64(base))
	fmt.Println()
}

func (h *harness) fig13() {
	fmt.Println("== Figure 13: storage ratios with BlockZIP ==")
	base := h.hdocBytes(h.getPlain())
	fmt.Printf("  XML DB, compressed (Tamino):   %8d KiB  ratio %.2f\n",
		h.getXDB().DB.StorageBytes()/1024, float64(h.getXDB().DB.StorageBytes())/float64(base))
	fmt.Printf("  ArchIS clustered+BlockZIP:     %8d KiB  ratio %.2f\n",
		h.getCompressed().Sys.StorageBytes()/1024, float64(h.getCompressed().Sys.StorageBytes())/float64(base))
	fmt.Println()
}

func (h *harness) fig14() {
	fmt.Println("== Figure 14: query performance with compression ==")
	comp := h.archisTimes(h.getCompressed())
	uncomp := h.archisTimes(h.getClustered())
	xt := h.xmlTimes(h.getXDB())
	printQueryTable(
		[]string{"ArchIS+zip", "ArchIS", "XML-DB"},
		[]map[bench.QueryID]time.Duration{comp, uncomp, xt})
}

func (h *harness) updates() {
	fmt.Println("== §8.4 update performance ==")
	trig, err := bench.Build(cfg1(), bench.Options{Layout: core.LayoutClustered, Capture: htable.CaptureTrigger})
	die(err)
	logd, err := bench.Build(cfg1(), bench.Options{Layout: core.LayoutClustered, Capture: htable.CaptureLog})
	die(err)

	one := func(e *bench.Env) time.Duration {
		start := time.Now()
		die(e.UpdateOne())
		return time.Since(start)
	}
	batch := func(e *bench.Env) time.Duration {
		start := time.Now()
		die(e.DailyBatch(50))
		return time.Since(start)
	}
	fmt.Printf("  single update, trigger capture: %s ms\n", strings.TrimSpace(ms(one(trig))))
	fmt.Printf("  single update, log capture:     %s ms\n", strings.TrimSpace(ms(one(logd))))
	fmt.Printf("  daily batch (50), trigger:      %s ms\n", strings.TrimSpace(ms(batch(trig))))

	x := h.getXDB()
	start := time.Now()
	die(x.XMLUpdateOne())
	fmt.Printf("  single update, XML DB (rewrite+recompress doc): %s ms\n", strings.TrimSpace(ms(time.Since(start))))

	// Segment-archive event cost (the occasional expensive operation).
	st, ok := trig.Sys.SegmentStore("employee_salary")
	if ok {
		start = time.Now()
		die(st.ArchiveNow())
		fmt.Printf("  forced segment archive of employee_salary: %s ms (happens once per segment)\n",
			strings.TrimSpace(ms(time.Since(start))))
	}
	fmt.Println()

	// Keep output deterministic in field order for the log.
	_ = sort.Strings
}

// durRecord is one cell of the durability experiment: an ingest run
// under one WAL commit policy, then a recovery of the directory it
// produced.
type durRecord struct {
	Mode            string  `json:"mode"` // commit policy
	Writers         int     `json:"writers"`
	Ops             int     `json:"ops"`
	OpsPerSec       float64 `json:"ops_per_sec"`
	Fsyncs          int64   `json:"fsyncs"`
	GroupedCommits  int64   `json:"grouped_commits"`
	RecoverNS       int64   `json:"recover_ns"`
	ReplayedRecords int64   `json:"replayed_records"`
}

// runDurableIngest measures single-row insert throughput through
// ExecDurable — every insert acknowledged only per the commit policy —
// then times a full recovery of the directory.
func runDurableIngest(name string, syncMode wal.SyncMode, writers, ops int) durRecord {
	dir, err := os.MkdirTemp("", "archis-dur-*")
	die(err)
	defer os.RemoveAll(dir)
	sys, err := core.New(core.Options{
		Layout:  core.LayoutClustered,
		WALDir:  dir,
		WALSync: syncMode,
	})
	die(err)
	die(sys.Register(dataset.EmployeeSpec()))
	sys.SetClock(temporal.MustParseDate("1995-01-01"))

	perWriter := ops / writers
	errs := make(chan error, writers)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				id := 500000 + w*perWriter + i
				_, err := sys.ExecDurable(fmt.Sprintf(
					"insert into employee values (%d, 'w%d', %d, 'Engineer', 'd01')",
					id, w, 50000+i))
				if err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errs:
		die(err)
	default:
	}
	die(sys.SyncWAL())
	st := sys.Stats()
	die(sys.Close())

	rstart := time.Now()
	rec, err := core.Recover(dir, nil)
	die(err)
	recoverTime := time.Since(rstart)
	replayed := rec.Stats().WALReplayedRecords
	die(rec.Close())

	done := writers * perWriter
	return durRecord{
		Mode:            name,
		Writers:         writers,
		Ops:             done,
		OpsPerSec:       float64(done) / elapsed.Seconds(),
		Fsyncs:          st.WALFsyncs,
		GroupedCommits:  st.WALGroupedCommits,
		RecoverNS:       recoverTime.Nanoseconds(),
		ReplayedRecords: replayed,
	}
}

// durabilityExperiments runs the ingest + recovery matrix: fsync per
// commit (serial, then concurrent writers sharing fsyncs), the batched
// window, and no-sync as the upper bound.
func durabilityExperiments() []durRecord {
	return []durRecord{
		runDurableIngest("always", wal.SyncAlways, 1, 400),
		runDurableIngest("always-group", wal.SyncAlways, 8, 1600),
		runDurableIngest("batch", wal.SyncBatch, 8, 1600),
		runDurableIngest("none", wal.SyncNone, 1, 1600),
	}
}

func (h *harness) durability() {
	fmt.Println("== durability: WAL ingest throughput and recovery time ==")
	fmt.Printf("  %-14s %8s %8s %12s %8s %9s %12s %9s\n",
		"mode", "writers", "ops", "ops/s", "fsyncs", "grouped", "recover(ms)", "replayed")
	for _, r := range durabilityExperiments() {
		fmt.Printf("  %-14s %8d %8d %12.0f %8d %9d %12.2f %9d\n",
			r.Mode, r.Writers, r.Ops, r.OpsPerSec, r.Fsyncs, r.GroupedCommits,
			float64(r.RecoverNS)/1e6, r.ReplayedRecords)
	}
	fmt.Println()
}

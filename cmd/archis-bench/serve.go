// The -serve experiment: what the network front end costs over the
// in-process engine. N client goroutines hammer /query with the warm
// Q1 point lookup over keep-alive connections; the report carries the
// client-observed round-trip percentiles, the admission-queue wait,
// and the served-vs-in-process overhead row — the server-side handler
// mean (admission slot held, context wired, result rendered) against
// a bare Sys.Exec loop on the same warm query.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"archis/internal/bench"
	"archis/internal/core"
	"archis/internal/server"
)

var (
	serveRun     = flag.Bool("serve", false, "benchmark the HTTP served path against in-process execution on warm Q1; -json writes the report")
	serveClients = flag.Int("serveclients", 8, "client goroutines for -serve")
	serveReqs    = flag.Int("servereqs", 300, "requests per client in -serve")
)

// serveReport is the top-level -serve -json document.
type serveReport struct {
	Timestamp         string   `json:"timestamp"`
	Host              hostInfo `json:"host"`
	Employees         int      `json:"employees"`
	Years             int      `json:"years"`
	Clients           int      `json:"clients"`
	RequestsPerClient int      `json:"requests_per_client"`
	Query             string   `json:"query"`

	// The overhead row: in-process mean vs the server-side handler
	// mean for the same warm Q1, both measured serially (single
	// client) so the row isolates the serving code path — routing,
	// cancellation wiring, result shaping — from load effects. The
	// handler span excludes the HTTP transport, which is reported
	// separately as RTT under the full client fleet.
	InprocMeanNS  int64   `json:"inproc_mean_ns"`
	HandlerMeanNS int64   `json:"handler_mean_ns"`
	OverheadFrac  float64 `json:"overhead_frac"`

	// Client-observed round trip over loopback keep-alive connections.
	RTTMeanNS int64 `json:"rtt_mean_ns"`
	RTTP50NS  int64 `json:"rtt_p50_ns"`
	RTTP99NS  int64 `json:"rtt_p99_ns"`

	// Admission pressure during the run.
	QueueWaitP50NS int64 `json:"queue_wait_p50_ns,omitempty"`
	QueueWaitP99NS int64 `json:"queue_wait_p99_ns,omitempty"`
	Rejected       int64 `json:"rejected"`
}

func (h *harness) serveBench(path string) {
	fmt.Printf("== served path: warm Q1, %d clients x %d requests ==\n", *serveClients, *serveReqs)
	e := h.getClustered()
	sql := e.SQL(bench.Q1)

	// Warm the caches, then the in-process baseline.
	for i := 0; i < 32; i++ {
		if _, err := e.Sys.Exec(sql); err != nil {
			die(err)
		}
	}
	const calibRuns = 2000
	start := time.Now()
	for i := 0; i < calibRuns; i++ {
		if _, err := e.Sys.Exec(sql); err != nil {
			die(err)
		}
	}
	inprocMean := time.Since(start).Nanoseconds() / calibRuns

	// The served side: a real Server over the same system, loopback
	// HTTP, keep-alive client shared by all goroutines.
	srv := server.New(e.Sys, nil, server.Config{MaxInFlight: runtime.GOMAXPROCS(0)})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: *serveClients}}
	body, err := json.Marshal(map[string]string{"sql": sql})
	die(err)

	// Drain one request per client first so connection setup is not
	// billed to the measured runs.
	oneShot := func() error {
		resp, err := client.Post(hs.URL+"/query", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("served Q1: status %d", resp.StatusCode)
		}
		return nil
	}
	for i := 0; i < *serveClients; i++ {
		die(oneShot())
	}

	// Calibration: drive the handler directly (no sockets), serially,
	// so the handler span isolates what the serving code path adds —
	// routing, admission, cancellation wiring, result shaping — from
	// the network stack, whose cost shows up honestly in the RTT
	// percentiles below.
	handler := srv.Handler()
	handlerBase := e.Sys.Metrics().Histogram("server.query_ns").Snapshot()
	for i := 0; i < calibRuns; i++ {
		r := httptest.NewRequest(http.MethodPost, "/query", bytes.NewReader(body))
		w := httptest.NewRecorder()
		handler.ServeHTTP(w, r)
		if w.Code != http.StatusOK {
			die(fmt.Errorf("calibration Q1: status %d: %s", w.Code, w.Body.String()))
		}
	}
	calib := e.Sys.Metrics().Histogram("server.query_ns").Snapshot()
	handlerMean := int64(0)
	if n := calib.Count - handlerBase.Count; n > 0 {
		handlerMean = (calib.SumNS - handlerBase.SumNS) / n
	}

	// Load phase: N concurrent clients, client-observed round trips.
	lat := make([][]int64, *serveClients)
	var wg sync.WaitGroup
	errs := make(chan error, *serveClients)
	for c := 0; c < *serveClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			mine := make([]int64, 0, *serveReqs)
			for i := 0; i < *serveReqs; i++ {
				t0 := time.Now()
				if err := oneShot(); err != nil {
					errs <- err
					return
				}
				mine = append(mine, time.Since(t0).Nanoseconds())
			}
			lat[c] = mine
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		die(err)
	}

	var all []int64
	for _, m := range lat {
		all = append(all, m...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	var sum int64
	for _, v := range all {
		sum += v
	}
	pct := func(p float64) int64 {
		if len(all) == 0 {
			return 0
		}
		i := int(p * float64(len(all)-1))
		return all[i]
	}

	qwait := e.Sys.Metrics().Histogram("server.queue_wait_ns").Snapshot()

	rep := serveReport{
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Host: hostInfo{
			GoVersion:  runtime.Version(),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			NumCPU:     runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
		},
		Employees:         *employees,
		Years:             *years,
		Clients:           *serveClients,
		RequestsPerClient: *serveReqs,
		Query:             sql,
		InprocMeanNS:      inprocMean,
		HandlerMeanNS:     handlerMean,
		RTTMeanNS:         sum / int64(len(all)),
		RTTP50NS:          pct(0.50),
		RTTP99NS:          pct(0.99),
		QueueWaitP50NS:    qwait.P50NS,
		QueueWaitP99NS:    qwait.P99NS,
		Rejected:          serveRejected(e.Sys),
	}
	if inprocMean > 0 {
		rep.OverheadFrac = float64(handlerMean)/float64(inprocMean) - 1
	}

	fmt.Printf("  in-process mean  %s ms\n", ms(time.Duration(inprocMean)))
	fmt.Printf("  handler mean     %s ms  (overhead %+.1f%%)\n", ms(time.Duration(handlerMean)), rep.OverheadFrac*100)
	fmt.Printf("  rtt p50/p99/mean %s / %s / %s ms\n",
		ms(time.Duration(rep.RTTP50NS)), ms(time.Duration(rep.RTTP99NS)), ms(time.Duration(rep.RTTMeanNS)))
	fmt.Printf("  queue wait p50/p99 %s / %s ms  rejected %d\n",
		ms(time.Duration(rep.QueueWaitP50NS)), ms(time.Duration(rep.QueueWaitP99NS)), rep.Rejected)

	if path != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		die(err)
		die(os.WriteFile(path, append(data, '\n'), 0o644))
		fmt.Printf("wrote %s\n", path)
	}
}

// serveRejected reads the server.rejected counter back from the
// metrics snapshot (the counter itself lives inside the Server).
func serveRejected(sys *core.System) int64 {
	return sys.MetricsSnapshot().Counters["server.rejected"]
}

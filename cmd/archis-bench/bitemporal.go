// The -bitemporal experiment: cost of the second timeline. Each
// layout ingests a randomized bitemporal history into a durable
// system — half the updates assert an explicit retroactive valid
// interval — then times the read shapes of DESIGN.md §16: the
// transaction-time history scan (baseline), the same scan under
// AsOfValidTime (valid predicate pushed into the scan), the composed
// bitemporal read (pinned MVCC version × valid predicate), and the
// nonsequenced SnapshotValid reconstruction. Write-side overhead is
// reported as default-valid vs WithValidTime update latency.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"archis/internal/core"
	"archis/internal/htable"
	"archis/internal/relstore"
	"archis/internal/temporal"
	"archis/internal/wal"
)

var (
	bitempRun  = flag.Bool("bitemporal", false, "run the bitemporal workload (valid time × transaction time) on all three layouts; -json writes the report")
	bitempEnts = flag.Int("bitempentities", 120, "entity count for the -bitemporal workload")
	bitempVers = flag.Int("bitempversions", 8, "update rounds per entity for the -bitemporal workload")
)

// bitempRecord is one (layout, operation) cell of the -bitemporal
// report.
type bitempRecord struct {
	Layout string `json:"layout"`
	Op     string `json:"op"`
	MeanNS int64  `json:"mean_ns"`
	MinNS  int64  `json:"min_ns"`
	Rows   int    `json:"rows,omitempty"`
	Runs   int    `json:"runs"`
}

// bitempReport is the top-level -bitemporal -json document.
type bitempReport struct {
	Timestamp string         `json:"timestamp"`
	Host      hostInfo       `json:"host"`
	Entities  int            `json:"entities"`
	Versions  int            `json:"versions"`
	Records   []bitempRecord `json:"records"`
}

func (h *harness) bitemporal(path string) {
	fmt.Printf("== bitemporal workload: %d entities x %d update rounds, half with explicit valid intervals ==\n",
		*bitempEnts, *bitempVers)
	rep := bitempReport{
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Host: hostInfo{
			GoVersion:  runtime.Version(),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			NumCPU:     runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
		},
		Entities: *bitempEnts,
		Versions: *bitempVers,
	}

	layouts := []struct {
		name string
		opts core.Options
	}{
		{"plain", core.Options{}},
		{"clustered", core.Options{Layout: core.LayoutClustered, MinSegmentRows: 64}},
		{"compressed", core.Options{Layout: core.LayoutCompressed, MinSegmentRows: 64}},
	}
	for _, lay := range layouts {
		recs := h.bitemporalLayout(lay.name, lay.opts)
		rep.Records = append(rep.Records, recs...)
	}

	if path != "" {
		b, err := json.MarshalIndent(rep, "", "  ")
		die(err)
		die(os.WriteFile(path, append(b, '\n'), 0o644))
		fmt.Printf("\nwrote %s\n", path)
	}
}

func (h *harness) bitemporalLayout(name string, opts core.Options) []bitempRecord {
	dir, err := os.MkdirTemp("", "archis-bitemp-*")
	die(err)
	defer os.RemoveAll(dir)
	opts.WALDir = dir
	opts.WALFS = wal.OSFS{}
	opts.WALSync = wal.SyncNone // measure the engine, not fsync
	sys, err := core.New(opts)
	die(err)
	defer sys.Close()

	spec := htable.TableSpec{
		Name: "emp",
		Columns: []relstore.Column{
			relstore.Col("id", relstore.TypeInt),
			relstore.Col("salary", relstore.TypeInt),
		},
		Key: []string{"id"},
	}
	die(sys.Register(spec))

	rng := rand.New(rand.NewSource(42))
	base := temporal.MustParseDate("1995-01-01")
	clock := base
	sys.SetClock(clock)
	for id := 1; id <= *bitempEnts; id++ {
		_, err := sys.ExecDurable(fmt.Sprintf(`insert into emp values (%d, %d)`, id, 40000+id))
		die(err)
	}

	// Randomized update rounds; half the writes assert a retroactive
	// valid interval. Per-class write latency is part of the report.
	var defTotal, valTotal time.Duration
	var defN, valN int
	var lastLSN uint64
	for round := 0; round < *bitempVers; round++ {
		clock = clock.AddDays(1 + rng.Intn(5))
		sys.SetClock(clock)
		for id := 1; id <= *bitempEnts; id++ {
			stmt := fmt.Sprintf(`update emp set salary = %d where id = %d`, 40000+id+round*137, id)
			if id%2 == 0 {
				vs := base.AddDays(rng.Intn(600))
				iv := temporal.Interval{Start: vs, End: vs.AddDays(1 + rng.Intn(300))}
				start := time.Now()
				_, err := sys.ExecDurable(stmt, core.WithValidTime(iv))
				die(err)
				valTotal += time.Since(start)
				valN++
			} else {
				start := time.Now()
				_, err := sys.ExecDurable(stmt)
				die(err)
				defTotal += time.Since(start)
				defN++
			}
		}
		if name != "plain" && round%3 == 2 {
			_, err := sys.Compact()
			die(err)
			if name == "compressed" {
				die(sys.CompressFrozen())
			}
		}
	}
	lastLSN = sys.Stats().WALAppendedLSN
	if name != "plain" {
		_, err := sys.Compact()
		die(err)
		if name == "compressed" {
			die(sys.CompressFrozen())
		}
	}

	mid := base.AddDays(300)
	reads := []struct {
		op  string
		run func() (int, error)
	}{
		{"scan-history", func() (int, error) {
			res, err := sys.Exec(`select count(*) from emp_salary`)
			if err != nil {
				return 0, err
			}
			n, _ := res.Rows[0][0].AsInt()
			return int(n), nil
		}},
		{"valid-slice", func() (int, error) {
			res, err := sys.Exec(`select count(*) from emp_salary`, core.AsOfValidTime(mid))
			if err != nil {
				return 0, err
			}
			n, _ := res.Rows[0][0].AsInt()
			return int(n), nil
		}},
		{"bitemporal", func() (int, error) {
			res, err := sys.Exec(`select count(*) from emp_salary`,
				core.AsOfTransactionTime(lastLSN), core.AsOfValidTime(mid))
			if err != nil {
				return 0, err
			}
			n, _ := res.Rows[0][0].AsInt()
			return int(n), nil
		}},
		{"snapshot-valid", func() (int, error) {
			rows, err := sys.Archive.SnapshotValid("emp", mid)
			return len(rows), err
		}},
	}

	out := []bitempRecord{
		{Layout: name, Op: "write-default", MeanNS: int64(defTotal) / int64(defN), MinNS: int64(defTotal) / int64(defN), Runs: defN},
		{Layout: name, Op: "write-valid", MeanNS: int64(valTotal) / int64(valN), MinNS: int64(valTotal) / int64(valN), Runs: valN},
	}
	fmt.Printf("\n-- %s --\n", name)
	fmt.Printf("%-16s mean %10s  (%d writes)\n", "write-default", time.Duration(out[0].MeanNS), defN)
	fmt.Printf("%-16s mean %10s  (%d writes)\n", "write-valid", time.Duration(out[1].MeanNS), valN)
	for _, r := range reads {
		// One untimed warm-up absorbs lazy initialization.
		rows, err := r.run()
		die(err)
		var total, min time.Duration
		for i := 0; i < *runs; i++ {
			start := time.Now()
			_, err := r.run()
			die(err)
			d := time.Since(start)
			total += d
			if i == 0 || d < min {
				min = d
			}
		}
		mean := total / time.Duration(*runs)
		fmt.Printf("%-16s mean %10s  min %10s  rows %d\n", r.op, mean, min, rows)
		out = append(out, bitempRecord{
			Layout: name, Op: r.op,
			MeanNS: int64(mean), MinNS: int64(min), Rows: rows, Runs: *runs,
		})
	}
	return out
}

// The -mixed experiment: MVCC snapshot reads under write traffic.
// Each layout runs three phases on one shared environment — a
// read-only baseline, concurrent ingest, and concurrent ingest with a
// background compactor — and reports per-query latency percentiles,
// writer throughput, and the snapshot-version churn (epochs published,
// versions reclaimed). Reader errors are fatal: under snapshot
// isolation a reader must never observe a torn write or fail because a
// writer was mid-statement.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"archis/internal/bench"
	"archis/internal/core"
)

var (
	mixedRun = flag.Bool("mixed", false, "run the mixed-workload MVCC experiment (readers vs concurrent ingest and background compaction) on the clustered and compressed layouts; -json writes the report")
	mixedDur = flag.Duration("mixeddur", 2*time.Second, "duration of each -mixed phase")
	mixedRdr = flag.Int("mixedreaders", 4, "reader goroutines per -mixed phase")
	mixedExc = flag.Bool("mixedexclusive", false, "emulate the pre-MVCC exclusive-writer rule: every statement runs under one mutex (produces the 'before' side of the before/after pair)")
)

// mixedRecord is one (layout, phase) cell of the -mixed report.
type mixedRecord struct {
	Layout string `json:"layout"`
	Phase  string `json:"phase"` // readonly | ingest | ingest+compact
	bench.MixedResult
	// Snapshot-version churn over the phase (Stats deltas): versions
	// published and retired copies reclaimed while readers ran.
	SnapshotEpochs    int64 `json:"snapshot_epochs"`
	ReclaimedVersions int64 `json:"reclaimed_versions"`
}

// mixedReport is the top-level -mixed -json document.
type mixedReport struct {
	Timestamp string        `json:"timestamp"`
	Host      hostInfo      `json:"host"`
	Employees int           `json:"employees"`
	Years     int           `json:"years"`
	Readers   int           `json:"readers"`
	PhaseNS   int64         `json:"phase_ns"`
	Records   []mixedRecord `json:"records"`
}

func (h *harness) mixedWorkload(path string) {
	mode := "mvcc snapshot reads"
	if *mixedExc {
		mode = "exclusive-writer emulation"
	}
	fmt.Printf("== mixed workload (%s): %d readers, %s per phase ==\n", mode, *mixedRdr, *mixedDur)
	rep := mixedReport{
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Host: hostInfo{
			GoVersion:  runtime.Version(),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			NumCPU:     runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
		},
		Employees: *employees,
		Years:     *years,
		Readers:   *mixedRdr,
		PhaseNS:   int64(*mixedDur),
	}

	layouts := []struct {
		name string
		opts bench.Options
	}{
		// Workers=1: each reader runs its query serially so inter-query
		// concurrency comes only from the reader pool — fanning every
		// query across GOMAXPROCS morsel workers on top of N readers
		// oversubscribes the host and the scheduler noise drowns the
		// writer-interference signal this experiment isolates.
		{"clustered", bench.Options{Layout: core.LayoutClustered, Workers: 1, Planner: plannerMode()}},
		{"compressed", bench.Options{Layout: core.LayoutCompressed, Compress: true, Workers: 1,
			Planner: plannerMode(), Columnar: columnarMode(), BlockCacheBytes: benchBlockCacheBytes}},
	}
	phases := []struct {
		name string
		opts bench.MixedOptions
	}{
		{"readonly", bench.MixedOptions{}},
		{"ingest", bench.MixedOptions{Ingest: true}},
		{"ingest+compact", bench.MixedOptions{Ingest: true, Compact: true}},
	}

	for _, lay := range layouts {
		e, err := bench.Build(cfg1(), lay.opts)
		die(err)
		baseline := map[string]bench.MixedQueryStats{}
		for _, ph := range phases {
			opts := ph.opts
			opts.Duration = *mixedDur
			opts.Readers = *mixedRdr
			opts.Exclusive = *mixedExc
			before := e.Sys.DB.Stats()
			res, err := e.RunMixed(opts)
			die(err)
			after := e.Sys.DB.Stats()
			if res.ReaderErrors > 0 {
				die(fmt.Errorf("%s/%s: %d reader errors under snapshot isolation", lay.name, ph.name, res.ReaderErrors))
			}
			if opts.Compact && res.Compactions == 0 {
				die(fmt.Errorf("%s/%s: background compactor never archived a segment", lay.name, ph.name))
			}
			delta := after.Sub(before)
			rep.Records = append(rep.Records, mixedRecord{
				Layout:            lay.name,
				Phase:             ph.name,
				MixedResult:       res,
				SnapshotEpochs:    delta.Epoch,
				ReclaimedVersions: delta.ReclaimedVersions,
			})
			if ph.name == "readonly" {
				for _, qs := range res.Queries {
					baseline[qs.Query] = qs
				}
			}
			fmt.Printf("  %-10s %-15s  readers %d ops (%d err)  writer %6.0f ops/s  compact %d  epochs %d  reclaimed %d\n",
				lay.name, ph.name, res.ReaderOps, res.ReaderErrors, res.WriterOpsPerSec,
				res.Compactions, delta.Epoch, delta.ReclaimedVersions)
			for _, qs := range res.Queries {
				ratio := ""
				if b, ok := baseline[qs.Query]; ok && ph.name != "readonly" && b.P99NS > 0 {
					ratio = fmt.Sprintf("  p99 vs baseline %.2fx", float64(qs.P99NS)/float64(b.P99NS))
				}
				fmt.Printf("    %-3s  p50 %s ms  p99 %s ms  min %s ms  n=%d%s\n",
					qs.Query, strings.TrimSpace(ms(time.Duration(qs.P50NS))),
					strings.TrimSpace(ms(time.Duration(qs.P99NS))),
					strings.TrimSpace(ms(time.Duration(qs.MinNS))), qs.Ops, ratio)
			}
		}
	}

	if path != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		die(err)
		die(os.WriteFile(path, append(data, '\n'), 0o644))
		fmt.Printf("wrote %d records to %s\n", len(rep.Records), path)
	}
}

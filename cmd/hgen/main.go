// hgen generates the synthetic temporal employee workload (the
// stand-in for the TimeCenter employee data set) and writes either the
// resulting H-documents as XML or summary statistics.
//
// Usage:
//
//	hgen [-employees N] [-years Y] [-seed S] [-out DIR]
//
// With -out, employees.xml and depts.xml are written to DIR; without
// it, only statistics are printed.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"archis"
	"archis/internal/dataset"
)

var (
	employees = flag.Int("employees", 400, "steady-state employee population")
	yearsN    = flag.Int("years", 17, "years of history")
	seed      = flag.Int64("seed", 1, "generator seed")
	out       = flag.String("out", "", "directory to write employees.xml and depts.xml")
)

func main() {
	flag.Parse()
	sys, err := archis.New(archis.Options{Layout: archis.LayoutPlain})
	check(err)
	check(sys.Register(dataset.EmployeeSpec()))
	check(sys.Register(dataset.DeptSpec()))

	cfg := dataset.DefaultConfig()
	cfg.Employees = *employees
	cfg.Years = *yearsN
	cfg.Seed = *seed
	st, err := dataset.Generate(sys.Archive, cfg)
	check(err)
	sys.Publish()

	fmt.Printf("generated %d inserts, %d updates, %d deletes over %d years (last day %s)\n",
		st.Inserts, st.Updates, st.Deletes, cfg.Years, st.LastDay)
	for _, table := range []string{"employee", "dept"} {
		doc, err := sys.PublishHDoc(table)
		check(err)
		xml := archis.PrettyXML(doc)
		spec, _ := sys.Archive.Spec(table)
		fmt.Printf("%s: %d KiB of H-document\n", spec.DocName(), len(xml)/1024)
		if *out != "" {
			check(os.MkdirAll(*out, 0o755))
			path := filepath.Join(*out, spec.DocName())
			check(os.WriteFile(path, []byte(xml), 0o644))
			fmt.Println("wrote", path)
		}
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "hgen:", err)
		os.Exit(1)
	}
}

// archis-serve runs an ArchIS system behind the HTTP/JSON front end
// (internal/server), as a durable primary that also ships its WAL to
// followers, or — with -follow — as a read-only follower replaying a
// primary's log.
//
// Usage:
//
//	archis-serve -dir DIR [-addr :8080] [-layout L] [-sync M] [-demo]
//	archis-serve -dir DIR -follow http://primary:8080 [-addr :8081]
//
// A fresh -dir starts a new durable system (registering the employee
// and dept schemas; -demo also loads the paper's micro history); an
// existing one is recovered. A follower bootstraps from the primary's
// snapshot into -dir and keeps applying shipped records until killed;
// it serves every read-only endpoint and rejects DML with 403.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"archis/internal/core"
	"archis/internal/dataset"
	"archis/internal/repl"
	"archis/internal/server"
	"archis/internal/wal"
)

var (
	addr      = flag.String("addr", ":8080", "listen address")
	dir       = flag.String("dir", "", "durable directory (WAL + snapshots); required")
	layout    = flag.String("layout", "clustered", "layout for a fresh primary: plain, clustered or compressed")
	syncMode  = flag.String("sync", "always", "WAL commit policy: always, batch or none")
	demo      = flag.Bool("demo", false, "load the paper's micro history into a fresh primary")
	follow    = flag.String("follow", "", "run as a follower of this primary base URL")
	inflight  = flag.Int("inflight", 0, "max concurrently executing queries (0 = GOMAXPROCS)")
	queueLen  = flag.Int("queue", 0, "max queued requests beyond inflight (0 = 4x inflight)")
	queueWait = flag.Duration("queue-wait", time.Second, "max time a request waits for a slot")
	timeout   = flag.Duration("timeout", 0, "default per-query timeout (0 = unbounded)")
	slowQ     = flag.Duration("slow", 0, "log served queries at least this slow to stderr (0 = off)")
)

func main() {
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "archis-serve: -dir is required")
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := server.Config{
		MaxInFlight:    *inflight,
		MaxQueue:       *queueLen,
		QueueWait:      *queueWait,
		DefaultTimeout: *timeout,
	}
	mux := http.NewServeMux()
	var sys *core.System
	var fol *repl.Follower

	if *follow != "" {
		var err error
		fol, err = repl.Bootstrap(*follow, *dir, repl.FollowerOptions{
			Recover: core.RecoverOptions{Sync: syncFlag()},
		})
		check(err)
		sys = fol.Sys
		go func() {
			if err := fol.Run(ctx); err != nil {
				fmt.Fprintln(os.Stderr, "archis-serve: replication stopped:", err)
			}
		}()
		fmt.Printf("following %s from lsn %d\n", *follow, sys.AppliedLSN())
	} else {
		sys = openPrimary()
		p, err := repl.NewPrimary(sys)
		check(err)
		p.Attach(mux)
	}
	if *slowQ > 0 {
		sys.SetSlowQueryLog(*slowQ, func(rec string) { fmt.Fprintln(os.Stderr, rec) })
	}
	server.New(sys, fol, cfg).Attach(mux)

	httpSrv := &http.Server{Addr: *addr, Handler: mux}
	go func() {
		<-ctx.Done()
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		httpSrv.Shutdown(sctx)
	}()
	role := "primary"
	if fol != nil {
		role = "follower"
	}
	fmt.Printf("archis-serve: %s on %s (dir %s)\n", role, *addr, *dir)
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		check(err)
	}
	check(sys.Close())
}

// openPrimary recovers an existing durable directory or starts a
// fresh one with the employee/dept schemas registered.
func openPrimary() *core.System {
	if _, err := os.Stat(filepath.Join(*dir, core.SnapshotFile)); err == nil {
		start := time.Now()
		sys, err := core.RecoverWithOptions(*dir, core.RecoverOptions{Sync: syncFlag()})
		check(err)
		st := sys.Stats()
		fmt.Printf("recovered %s in %s: replayed %d records, log at lsn %d\n",
			*dir, time.Since(start).Round(time.Microsecond), st.WALReplayedRecords, st.WALAppendedLSN)
		return sys
	}
	var lay core.Layout
	switch *layout {
	case "plain":
		lay = core.LayoutPlain
	case "clustered":
		lay = core.LayoutClustered
	case "compressed":
		lay = core.LayoutCompressed
	default:
		fmt.Fprintln(os.Stderr, "archis-serve: unknown layout", *layout)
		os.Exit(2)
	}
	sys, err := core.New(core.Options{Layout: lay, WALDir: *dir, WALSync: parseSync(*syncMode)})
	check(err)
	check(sys.Register(dataset.EmployeeSpec()))
	check(sys.Register(dataset.DeptSpec()))
	check(sys.AliasDoc("emp.xml", "employee"))
	if *demo {
		check(dataset.LoadMicro(sys.Archive))
		sys.Publish()
		check(sys.SyncWAL())
		fmt.Println("loaded the paper's Tables 1-2 micro history")
	}
	return sys
}

func parseSync(s string) wal.SyncMode {
	switch s {
	case "always":
		return wal.SyncAlways
	case "batch":
		return wal.SyncBatch
	case "none":
		return wal.SyncNone
	}
	fmt.Fprintln(os.Stderr, "archis-serve: unknown sync mode", s)
	os.Exit(2)
	return 0
}

// syncFlag returns the -sync mode only when passed explicitly, so
// recovery otherwise keeps the policy recorded in the snapshot.
func syncFlag() *wal.SyncMode {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "sync" {
			set = true
		}
	})
	if !set {
		return nil
	}
	m := parseSync(*syncMode)
	return &m
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "archis-serve:", err)
		os.Exit(1)
	}
}

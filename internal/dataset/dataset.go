// Package dataset provides the workloads of the paper's evaluation:
// the micro-dataset of Tables 1–2 (Bob's employee history and the
// department history) and a synthetic generator modeled on the
// TimeCenter temporal employee data set — N employees evolving over
// ~17 years through salary raises, title changes, department moves,
// hires and terminations — with a scale factor for the paper's 7×
// scalability experiment.
package dataset

import (
	"fmt"
	"math/rand"

	"archis/internal/htable"
	"archis/internal/relstore"
	"archis/internal/temporal"
)

// EmployeeSpec is the employee table of the paper (Table 1).
func EmployeeSpec() htable.TableSpec {
	return htable.TableSpec{
		Name: "employee",
		Columns: []relstore.Column{
			relstore.Col("id", relstore.TypeInt),
			relstore.Col("name", relstore.TypeString),
			relstore.Col("salary", relstore.TypeInt),
			relstore.Col("title", relstore.TypeString),
			relstore.Col("deptno", relstore.TypeString),
		},
		Key: []string{"id"},
	}
}

// DeptSpec is the department table of the paper (Table 2).
func DeptSpec() htable.TableSpec {
	return htable.TableSpec{
		Name: "dept",
		Columns: []relstore.Column{
			relstore.Col("deptno", relstore.TypeString),
			relstore.Col("deptname", relstore.TypeString),
			relstore.Col("mgrno", relstore.TypeInt),
		},
		Key: []string{"deptno"},
	}
}

// RegisterPaperTables registers both specs on an archive.
func RegisterPaperTables(a *htable.Archive) error {
	if err := a.Register(EmployeeSpec()); err != nil {
		return err
	}
	return a.Register(DeptSpec())
}

// LoadMicro drives the archive through the exact history of the
// paper's Tables 1 and 2 (plus two extra employees so joins and
// aggregates have material), leaving the clock at 1997-01-01.
func LoadMicro(a *htable.Archive) error {
	en := a.Engine
	step := func(day string, sqls ...string) error {
		a.SetClock(temporal.MustParseDate(day))
		for _, s := range sqls {
			if _, err := en.Exec(s); err != nil {
				return fmt.Errorf("dataset: at %s: %q: %w", day, s, err)
			}
		}
		return nil
	}
	type stepDef struct {
		day  string
		sqls []string
	}
	steps := []stepDef{
		{"1992-01-01", []string{`insert into dept values ('d02', 'RD', 3402)`}},
		{"1993-01-01", []string{`insert into dept values ('d03', 'Sales', 4748)`}},
		{"1994-01-01", []string{`insert into dept values ('d01', 'QA', 2501)`}},
		{"1995-01-01", []string{
			`insert into employee values (1001, 'Bob', 60000, 'Engineer', 'd01')`,
			`insert into employee values (1003, 'Carol', 55000, 'Engineer', 'd01')`,
		}},
		{"1995-03-01", []string{`insert into employee values (1002, 'Alice', 50000, 'Engineer', 'd01')`}},
		{"1995-06-01", []string{`update employee set salary = 70000 where id = 1001`}},
		{"1995-10-01", []string{
			`update employee set title = 'Sr Engineer', deptno = 'd02' where id = 1001`,
			`update employee set deptno = 'd02' where id = 1003`,
		}},
		{"1996-01-01", []string{`update employee set salary = 65000 where id = 1002`}},
		{"1996-02-01", []string{`update employee set title = 'TechLeader' where id = 1001`}},
		{"1996-07-01", []string{`update employee set title = 'Sr Engineer' where id = 1002`}},
		{"1997-01-01", []string{
			`delete from employee where id = 1001`,
			`delete from employee where id = 1003`,
			`update dept set mgrno = 1009 where deptno = 'd02'`,
		}},
	}
	for _, s := range steps {
		if err := step(s.day, s.sqls...); err != nil {
			return err
		}
	}
	return nil
}

// Config tunes the synthetic employee-history generator.
type Config struct {
	// Employees is the steady-state employee population.
	Employees int
	// Years of simulated history (the paper's data set covers 17).
	Years int
	// Departments in the company.
	Departments int
	// Seed makes generation deterministic.
	Seed int64
	// Start is the first hire date; defaults to 1985-01-01.
	Start temporal.Date
	// MonthlyUpdateFrac is the fraction of employees receiving a
	// salary/title/dept change each month (drives usefulness decay).
	MonthlyUpdateFrac float64
	// TurnoverFrac is the monthly fraction of employees replaced
	// (terminated + hired).
	TurnoverFrac float64
}

// DefaultConfig returns the S=1 workload used by the benchmarks.
func DefaultConfig() Config {
	return Config{
		Employees:         400,
		Years:             17,
		Departments:       9,
		Seed:              1,
		MonthlyUpdateFrac: 0.08,
		TurnoverFrac:      0.004,
	}
}

// Scaled multiplies the employee population (the paper's 7× data set
// is Scaled(7)).
func (c Config) Scaled(factor int) Config {
	c.Employees *= factor
	return c
}

// Stats summarizes a generated history.
type Stats struct {
	Inserts, Updates, Deletes int
	FinalEmployees            int
	LastDay                   temporal.Date
}

var titles = []string{"Engineer", "Sr Engineer", "TechLeader", "Manager", "Architect", "Principal"}

// Generate drives the archive's current database through the synthetic
// history. The employee and dept tables must be registered and the
// generator assumes an index on employee(id) exists for update speed
// (it creates one if missing).
func Generate(a *htable.Archive, cfg Config) (Stats, error) {
	if cfg.Start == 0 {
		cfg.Start = temporal.MustParseDate("1985-01-01")
	}
	if cfg.Employees <= 0 || cfg.Years <= 0 || cfg.Departments <= 0 {
		return Stats{}, fmt.Errorf("dataset: bad config %+v", cfg)
	}
	en := a.Engine
	if tbl, ok := en.DB.Table("employee"); ok && tbl.IndexOn(0) == nil {
		if _, err := en.DB.CreateIndex("ix_employee_current_id", "employee", "id"); err != nil {
			return Stats{}, err
		}
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	st := Stats{}
	day := cfg.Start
	a.SetClock(day)

	// Departments first.
	for d := 0; d < cfg.Departments; d++ {
		sql := fmt.Sprintf(`insert into dept values ('d%02d', 'Dept%02d', %d)`, d+1, d+1, 9000+d)
		if _, err := en.Exec(sql); err != nil {
			return st, err
		}
		st.Inserts++
	}

	nextID := int64(100001)
	type emp struct {
		id     int64
		salary int64
		title  int
		dept   int
	}
	var liveList []*emp

	hire := func() error {
		e := &emp{id: nextID, salary: 38000 + int64(r.Intn(30000)), title: 0, dept: r.Intn(cfg.Departments)}
		nextID++
		sql := fmt.Sprintf(`insert into employee values (%d, 'Emp%d', %d, '%s', 'd%02d')`,
			e.id, e.id, e.salary, titles[e.title], e.dept+1)
		if _, err := en.Exec(sql); err != nil {
			return err
		}
		liveList = append(liveList, e)
		st.Inserts++
		return nil
	}

	// Initial population.
	for i := 0; i < cfg.Employees; i++ {
		if err := hire(); err != nil {
			return st, err
		}
	}

	months := cfg.Years * 12
	var updAcc, churnAcc float64
	for m := 1; m <= months; m++ {
		day = cfg.Start.AddDays(m*30 + r.Intn(3))
		a.SetClock(day)

		// Updates: raises, promotions, transfers. Fractional parts
		// accumulate so small populations still see activity.
		updAcc += float64(len(liveList)) * cfg.MonthlyUpdateFrac
		updates := int(updAcc)
		updAcc -= float64(updates)
		for u := 0; u < updates; u++ {
			e := liveList[r.Intn(len(liveList))]
			switch r.Intn(10) {
			case 0, 1: // promotion (title + raise)
				if e.title < len(titles)-1 {
					e.title++
				}
				e.salary += int64(2000 + r.Intn(6000))
				sql := fmt.Sprintf(`update employee set title = '%s', salary = %d where id = %d`,
					titles[e.title], e.salary, e.id)
				if _, err := en.Exec(sql); err != nil {
					return st, err
				}
			case 2: // transfer
				e.dept = r.Intn(cfg.Departments)
				sql := fmt.Sprintf(`update employee set deptno = 'd%02d' where id = %d`, e.dept+1, e.id)
				if _, err := en.Exec(sql); err != nil {
					return st, err
				}
			default: // raise
				e.salary += int64(500 + r.Intn(4000))
				sql := fmt.Sprintf(`update employee set salary = %d where id = %d`, e.salary, e.id)
				if _, err := en.Exec(sql); err != nil {
					return st, err
				}
			}
			st.Updates++
		}

		// Turnover.
		churnAcc += float64(len(liveList)) * cfg.TurnoverFrac
		churn := int(churnAcc)
		churnAcc -= float64(churn)
		for c := 0; c < churn; c++ {
			i := r.Intn(len(liveList))
			e := liveList[i]
			if _, err := en.Exec(fmt.Sprintf(`delete from employee where id = %d`, e.id)); err != nil {
				return st, err
			}
			liveList[i] = liveList[len(liveList)-1]
			liveList = liveList[:len(liveList)-1]
			st.Deletes++
			if err := hire(); err != nil {
				return st, err
			}
		}

		// Occasional department manager changes.
		if m%24 == 0 {
			d := r.Intn(cfg.Departments)
			sql := fmt.Sprintf(`update dept set mgrno = %d where deptno = 'd%02d'`, 9100+m+d, d+1)
			if _, err := en.Exec(sql); err != nil {
				return st, err
			}
			st.Updates++
		}
	}
	st.FinalEmployees = len(liveList)
	st.LastDay = day
	return st, nil
}

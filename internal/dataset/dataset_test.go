package dataset

import (
	"testing"

	"archis/internal/htable"
	"archis/internal/relstore"
	"archis/internal/sqlengine"
	"archis/internal/temporal"
)

func newArchive(t *testing.T) *htable.Archive {
	t.Helper()
	en := sqlengine.New(relstore.NewDatabase())
	a, err := htable.New(en, htable.CaptureTrigger)
	if err != nil {
		t.Fatal(err)
	}
	if err := RegisterPaperTables(a); err != nil {
		t.Fatal(err)
	}
	return a
}

func TestLoadMicroMatchesTable1(t *testing.T) {
	a := newArchive(t)
	if err := LoadMicro(a); err != nil {
		t.Fatal(err)
	}
	res := a.Engine.MustExec(`select salary, tstart, tend from employee_salary where id = 1001 order by tstart`)
	if len(res.Rows) != 2 {
		t.Fatalf("bob salary versions = %d", len(res.Rows))
	}
	if res.Rows[0][0].Text() != "60000" || res.Rows[0][2].Text() != "1995-05-31" {
		t.Errorf("first salary = %v", res.Rows[0])
	}
	res = a.Engine.MustExec(`select title from employee_title where id = 1001 order by tstart`)
	if len(res.Rows) != 3 || res.Rows[2][0].Text() != "TechLeader" {
		t.Errorf("titles = %v", res.Rows)
	}
	// Table 2: d02 has two manager versions.
	res = a.Engine.MustExec(`select mgrno from dept_mgrno order by tstart`)
	if len(res.Rows) != 4 {
		t.Errorf("mgr versions = %d", len(res.Rows))
	}
	// Alice remains current.
	res = a.Engine.MustExec(`select count(*) from employee`)
	if res.Rows[0][0].I != 1 {
		t.Errorf("current employees = %v", res.Rows[0][0])
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Employees = 40
	cfg.Years = 3
	a1, a2 := newArchive(t), newArchive(t)
	st1, err := Generate(a1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := Generate(a2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st1 != st2 {
		t.Errorf("non-deterministic: %+v vs %+v", st1, st2)
	}
	r1 := a1.Engine.MustExec(`select count(*) from employee_salary`)
	r2 := a2.Engine.MustExec(`select count(*) from employee_salary`)
	if r1.Rows[0][0].I != r2.Rows[0][0].I {
		t.Errorf("history sizes differ: %v vs %v", r1.Rows[0][0], r2.Rows[0][0])
	}
}

func TestGenerateShape(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Employees = 60
	cfg.Years = 4
	a := newArchive(t)
	st, err := Generate(a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Updates == 0 || st.Deletes == 0 || st.Inserts <= 60 {
		t.Errorf("workload too thin: %+v", st)
	}
	if st.FinalEmployees != 60 {
		t.Errorf("population drifted: %d", st.FinalEmployees)
	}
	// History grows beyond the initial population.
	res := a.Engine.MustExec(`select count(*) from employee_salary`)
	if res.Rows[0][0].I < int64(60+st.Updates/2) {
		t.Errorf("salary history rows = %v for %d updates", res.Rows[0][0], st.Updates)
	}
	// Snapshot at the end agrees with the current table.
	snap, err := a.Snapshot("employee", a.Clock())
	if err != nil {
		t.Fatal(err)
	}
	cur := a.Engine.MustExec(`select count(*) from employee`)
	if int64(len(snap)) != cur.Rows[0][0].I {
		t.Errorf("snapshot %d vs current %v", len(snap), cur.Rows[0][0])
	}
	// Intervals in history are well-formed.
	res = a.Engine.MustExec(`select count(*) from employee_salary where tstart > tend`)
	if res.Rows[0][0].I != 0 {
		t.Errorf("inverted intervals: %v", res.Rows[0][0])
	}
}

func TestScaledConfig(t *testing.T) {
	cfg := DefaultConfig().Scaled(7)
	if cfg.Employees != DefaultConfig().Employees*7 {
		t.Errorf("Scaled = %+v", cfg)
	}
}

func TestGenerateValidatesConfig(t *testing.T) {
	a := newArchive(t)
	if _, err := Generate(a, Config{}); err == nil {
		t.Error("zero config accepted")
	}
}

func TestGenerateWithLogCaptureAndFlush(t *testing.T) {
	en := sqlengine.New(relstore.NewDatabase())
	a, err := htable.New(en, htable.CaptureLog)
	if err != nil {
		t.Fatal(err)
	}
	if err := RegisterPaperTables(a); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Employees = 30
	cfg.Years = 2
	if _, err := Generate(a, cfg); err != nil {
		t.Fatal(err)
	}
	if a.PendingLogRecords() == 0 {
		t.Fatal("log mode captured nothing")
	}
	if err := a.FlushLog(); err != nil {
		t.Fatal(err)
	}
	res := en.MustExec(`select count(*) from employee_salary`)
	if res.Rows[0][0].I == 0 {
		t.Error("flush produced no history")
	}
	_ = temporal.Forever
}

package wal

import (
	"testing"
)

// The replication retention floor: TruncateThrough must never delete
// a segment holding records a registered follower has not pulled,
// however far the checkpoint has advanced. The floor caps the
// truncation LSN, not the segment choice — a segment survives as long
// as it holds any record past the minimum follower ack.

func TestRetentionFloorBlocksPrematureTruncate(t *testing.T) {
	fs := NewFaultFS()
	// Tiny segments so 30 records spread across many files.
	l, err := Open("/w", Options{FS: fs, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	const n = 30
	for i := 1; i <= n; i++ {
		mustAppend(t, l, payload(i))
	}
	if err := l.Commit(n); err != nil {
		t.Fatal(err)
	}

	// A follower registered after pulling through LSN 5.
	floor := uint64(5)
	l.SetRetention(func() uint64 { return floor })

	// Checkpoint wants everything gone; the floor must cap it.
	if err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := l.TruncateThrough(n); err != nil {
		t.Fatal(err)
	}
	got := collect(t, l, 1)
	for i := floor + 1; i <= n; i++ {
		if got[i] != string(payload(int(i))) {
			t.Fatalf("record %d lost by truncation with retention floor %d", i, floor)
		}
	}

	// The follower catches up; truncation is unconstrained again and
	// only the tail segment (which always stays) may survive.
	floor = n
	if err := l.TruncateThrough(n); err != nil {
		t.Fatal(err)
	}
	if len(l.segs) != 1 {
		t.Fatalf("%d segments survived truncation after the follower acked everything, want 1 (the tail)", len(l.segs))
	}

	// Removing the floor restores unconstrained truncation.
	l.SetRetention(nil)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFirstLSNContinuesFromSnapshot(t *testing.T) {
	fs := NewFaultFS()
	l, err := Open("/f", Options{FS: fs, FirstLSN: 101})
	if err != nil {
		t.Fatal(err)
	}
	if lsn := mustAppend(t, l, payload(101)); lsn != 101 {
		t.Fatalf("first append got lsn %d, want 101", lsn)
	}
	mustAppend(t, l, payload(102))
	if err := l.Commit(102); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the scan takes over from the on-disk records and
	// FirstLSN is ignored.
	re, err := Open("/f", Options{FS: fs, FirstLSN: 9999})
	if err != nil {
		t.Fatal(err)
	}
	if lsn := mustAppend(t, re, payload(103)); lsn != 103 {
		t.Fatalf("append after reopen got lsn %d, want 103", lsn)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFrameCodecRoundTrip(t *testing.T) {
	var buf []byte
	for i := 1; i <= 5; i++ {
		buf = EncodeFrame(buf, uint64(i), payload(i))
	}
	next := uint64(1)
	for len(buf) > 0 {
		lsn, p, adv, ok := DecodeFrame(buf)
		if !ok {
			t.Fatalf("frame %d failed to decode", next)
		}
		if lsn != next || string(p) != string(payload(int(next))) {
			t.Fatalf("frame %d decoded as lsn %d payload %q", next, lsn, p)
		}
		buf = buf[adv:]
		next++
	}
	if next != 6 {
		t.Fatalf("decoded %d frames, want 5", next-1)
	}

	// A corrupted byte must fail the CRC, not yield a wrong payload.
	bad := EncodeFrame(nil, 7, payload(7))
	bad[len(bad)-1] ^= 0x40
	if _, _, _, ok := DecodeFrame(bad); ok {
		t.Fatal("corrupted frame decoded successfully")
	}
}

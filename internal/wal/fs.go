package wal

import (
	"io"
	"os"
	"path/filepath"
	"runtime"
)

// File is the write side of one log segment. Sync must not return
// until previously written bytes are durable.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// FS abstracts every file operation the log performs. It exists so the
// durability logic can be driven against a deterministic in-memory
// implementation with injected faults (FaultFS) as well as the real
// operating system (OSFS). All names are full paths; the log keeps its
// segments inside a single directory.
type FS interface {
	// MkdirAll ensures the directory exists.
	MkdirAll(dir string) error
	// Create opens name for writing, truncating any existing content.
	Create(name string) (File, error)
	// OpenAppend opens an existing file (creating it if missing) for
	// appending.
	OpenAppend(name string) (File, error)
	// ReadFile returns the entire content of name.
	ReadFile(name string) ([]byte, error)
	// Truncate cuts name down to size bytes.
	Truncate(name string, size int64) error
	// Remove deletes name.
	Remove(name string) error
	// List returns the base names of the entries in dir. A missing
	// directory lists as empty.
	List(dir string) ([]string, error)
	// SyncDir makes directory metadata (created/renamed/removed
	// entries) durable.
	SyncDir(dir string) error
}

// OSFS is the real file system.
type OSFS struct{}

func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (OSFS) Create(name string) (File, error) { return os.Create(name) }

func (OSFS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

func (OSFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (OSFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

func (OSFS) Remove(name string) error { return os.Remove(name) }

func (OSFS) List(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if !e.IsDir() {
			out = append(out, e.Name())
		}
	}
	return out, nil
}

func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && runtime.GOOS != "windows" {
		return err
	}
	return nil
}

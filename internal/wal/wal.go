// Package wal is a segmented, append-only, CRC-framed write-ahead log
// of opaque logical records. It is the durability subsystem of ArchIS:
// the archive's captured update-log records (the paper's ArchIS-ATLaS
// change capture, Section 3) are appended here before they mutate the
// H-tables, so a crash between whole-file snapshots loses nothing that
// was acknowledged.
//
// Records are framed as
//
//	u32 payloadLen | u32 crc32c(lsn‖payload) | u64 lsn | payload
//
// inside segment files named wal-<firstLSN:016x>.log, each starting
// with an 8-byte magic and the u64 LSN of its first record. LSNs are
// assigned densely from 1. A torn or corrupt frame ends a segment's
// valid prefix: Open truncates the tail back to the last whole record,
// fsyncs the cut, and keeps later segments only when their first LSN
// continues the valid prefix exactly (segments that would leave an LSN
// gap are discarded), so recovery always replays a valid prefix and
// appending can resume safely.
//
// Commit implements group commit: concurrent committers coalesce onto
// one fsync — the first waiter becomes the leader, syncs the segment,
// and releases everyone whose records the sync covered. SyncBatch adds
// a small coalescing window before the leader syncs; SyncNone never
// syncs on commit (rotation and Close still do).
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"archis/internal/obs"
)

// SyncMode selects the durability policy of Commit.
type SyncMode uint8

const (
	// SyncAlways makes Commit wait until the record is fsynced;
	// concurrent commits share one fsync (group commit).
	SyncAlways SyncMode = iota
	// SyncBatch is SyncAlways with a coalescing window: the fsync
	// leader waits BatchWindow before syncing so more committers can
	// ride the same fsync. Higher throughput, same guarantee, higher
	// commit latency.
	SyncBatch
	// SyncNone never fsyncs on Commit: durability is best-effort
	// until the next rotation, checkpoint or Close.
	SyncNone
)

func (m SyncMode) String() string {
	switch m {
	case SyncAlways:
		return "always"
	case SyncBatch:
		return "batch"
	case SyncNone:
		return "none"
	}
	return fmt.Sprintf("SyncMode(%d)", uint8(m))
}

// Options configure a Log.
type Options struct {
	// FS is the file layer; nil means the real file system.
	FS FS
	// SegmentBytes is the roll threshold (DefaultSegmentBytes if 0).
	SegmentBytes int
	// Sync is the Commit durability policy.
	Sync SyncMode
	// BatchWindow is the SyncBatch coalescing window
	// (DefaultBatchWindow if 0).
	BatchWindow time.Duration
	// Metrics, when set, receives append/fsync/commit latency
	// histograms (wal.append_ns, wal.fsync_ns, wal.commit_ns). Nil
	// disables latency measurement entirely.
	Metrics *obs.Registry
	// FirstLSN makes an empty log assign LSNs from this value instead
	// of 1. Replication followers bootstrap from a primary snapshot at
	// LSN S and need their local log to continue at S+1 so shipped
	// records keep their primary LSNs. Ignored when the directory
	// already holds records.
	FirstLSN uint64
}

// Defaults.
const (
	DefaultSegmentBytes = 4 << 20
	DefaultBatchWindow  = 2 * time.Millisecond
	// MaxRecordBytes bounds one payload; larger appends are rejected
	// and larger framed lengths are treated as corruption.
	MaxRecordBytes = 1 << 26
)

const (
	segMagic     = "AWAL0001"
	segHeaderLen = len(segMagic) + 8 // magic + firstLSN
	frameHdrLen  = 4 + 4 + 8         // len + crc + lsn
	segPrefix    = "wal-"
	segSuffix    = ".log"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Stats are the log's activity counters.
type Stats struct {
	Appends        int64 // records appended
	Fsyncs         int64 // physical syncs issued (commit, rotation, close)
	GroupedCommits int64 // commits that rode another committer's fsync
	Segments       int   // segment files currently on disk
	AppendedLSN    uint64
	DurableLSN     uint64
}

type segmentInfo struct {
	name  string
	first uint64
}

// Log is an open write-ahead log. All methods are safe for concurrent
// use.
type Log struct {
	dir  string
	fs   FS
	opts Options

	mu      sync.Mutex
	cond    *sync.Cond
	f       File // open tail segment, nil until the first append
	segSize int64
	segs    []segmentInfo // sorted by first LSN; last is the tail

	nextLSN uint64 // next LSN to assign
	written uint64 // highest LSN written to the OS
	durable uint64 // highest LSN covered by a successful fsync
	syncing bool   // an fsync is in flight (leader elected)
	closed  bool
	err     error // sticky failure: the log refuses writes after one

	appends, fsyncs, grouped int64

	// retention, when set, caps TruncateThrough: segments holding
	// records above the returned LSN survive checkpoints. Replication
	// registers the minimum follower-acknowledged LSN here so the
	// primary never deletes a segment a follower still needs to pull.
	retention func() uint64

	// Latency histograms; nil unless Options.Metrics was set. Observe
	// on the nil histograms is a no-op, but the time.Now() calls are
	// guarded too so unconfigured logs pay nothing.
	appendHist, fsyncHist, commitHist *obs.Histogram
}

func segName(first uint64) string {
	return fmt.Sprintf("%s%016x%s", segPrefix, first, segSuffix)
}

func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
	if len(hex) != 16 {
		return 0, false
	}
	v, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// Open opens (or creates) the log in dir, scanning existing segments,
// durably truncating a torn tail back to the last whole record and
// dropping any segments beyond the first LSN discontinuity, so the log
// is always left append-ready at the end of its valid prefix.
func Open(dir string, opts Options) (*Log, error) {
	if opts.FS == nil {
		opts.FS = OSFS{}
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.BatchWindow <= 0 {
		opts.BatchWindow = DefaultBatchWindow
	}
	if err := opts.FS.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("wal: mkdir %s: %w", dir, err)
	}
	l := &Log{dir: dir, fs: opts.FS, opts: opts, nextLSN: 1}
	l.cond = sync.NewCond(&l.mu)
	if opts.Metrics != nil {
		l.appendHist = opts.Metrics.Histogram("wal.append_ns")
		l.fsyncHist = opts.Metrics.Histogram("wal.fsync_ns")
		l.commitHist = opts.Metrics.Histogram("wal.commit_ns")
	}
	if err := l.scan(); err != nil {
		return nil, err
	}
	if len(l.segs) == 0 && opts.FirstLSN > 1 {
		l.nextLSN = opts.FirstLSN
		l.written = opts.FirstLSN - 1
		l.durable = opts.FirstLSN - 1
	}
	return l, nil
}

// scan discovers existing segments and establishes the valid prefix.
func (l *Log) scan() error {
	names, err := l.fs.List(l.dir)
	if err != nil {
		return fmt.Errorf("wal: list %s: %w", l.dir, err)
	}
	var segs []segmentInfo
	for _, n := range names {
		if first, ok := parseSegName(n); ok {
			segs = append(segs, segmentInfo{name: n, first: first})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })

	next := uint64(1)
	lastSize := int64(0)
	for i, seg := range segs {
		data, err := l.fs.ReadFile(filepath.Join(l.dir, seg.name))
		if err != nil {
			return fmt.Errorf("wal: read %s: %w", seg.name, err)
		}
		// Continuity: a later segment must begin exactly where the
		// previous one ended; the first kept segment sets the floor
		// (earlier ones were removed by checkpoints).
		expect := seg.first
		if i > 0 {
			expect = next
		}
		last, validLen, ok := scanSegment(data, seg.first)
		if !ok || seg.first != expect {
			// Unusable header or an LSN gap: everything from here on
			// is beyond the valid prefix.
			return l.dropFrom(segs, i)
		}
		l.segs = append(l.segs, seg)
		next = last + 1
		l.nextLSN = next
		l.written = last
		l.durable = last
		lastSize = int64(validLen)
		if validLen < len(data) {
			// Torn tail: cut back to the last whole record and make
			// the cut durable before any new appends. Without the
			// fsync a later crash could revive the torn bytes, and
			// the recovery after that would see the tear again and
			// mistake durable, acknowledged successor segments for
			// garbage. Later segments are NOT dropped here: one whose
			// first LSN continues the valid prefix exactly holds
			// records acked after an earlier torn-tail recovery and
			// must survive; the continuity check above drops real
			// gaps.
			path := filepath.Join(l.dir, seg.name)
			if err := l.fs.Truncate(path, int64(validLen)); err != nil {
				return fmt.Errorf("wal: truncate torn tail of %s: %w", seg.name, err)
			}
			if err := l.syncSegment(path); err != nil {
				return fmt.Errorf("wal: sync truncated tail of %s: %w", seg.name, err)
			}
		}
	}
	l.segSize = lastSize
	return nil
}

// timedSync fsyncs f, observing the latency when metrics are
// configured. Callers account l.fsyncs themselves.
func (l *Log) timedSync(f File) error {
	if l.fsyncHist == nil {
		return f.Sync()
	}
	start := time.Now()
	err := f.Sync()
	l.fsyncHist.Observe(time.Since(start))
	return err
}

// syncSegment fsyncs one segment file by path. Truncations must reach
// disk before appends resume, or a crash could revive the cut bytes.
func (l *Log) syncSegment(path string) error {
	f, err := l.fs.OpenAppend(path)
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// dropFrom removes segments[i:] — they lie beyond the valid prefix.
func (l *Log) dropFrom(segs []segmentInfo, i int) error {
	for _, seg := range segs[i:] {
		if err := l.fs.Remove(filepath.Join(l.dir, seg.name)); err != nil {
			return fmt.Errorf("wal: drop invalid segment %s: %w", seg.name, err)
		}
	}
	if i < len(segs) {
		if err := l.fs.SyncDir(l.dir); err != nil {
			return err
		}
	}
	if n := len(l.segs); n > 0 {
		data, err := l.fs.ReadFile(filepath.Join(l.dir, l.segs[n-1].name))
		if err != nil {
			return err
		}
		l.segSize = int64(len(data))
	}
	return nil
}

// scanSegment validates header and frames, returning the last valid
// LSN (first-1 when the segment holds no whole record), the byte
// length of the valid prefix, and whether the header itself is usable.
func scanSegment(data []byte, wantFirst uint64) (last uint64, validLen int, ok bool) {
	if len(data) < segHeaderLen || string(data[:len(segMagic)]) != segMagic {
		return 0, 0, false
	}
	first := binary.LittleEndian.Uint64(data[len(segMagic):segHeaderLen])
	if first != wantFirst {
		return 0, 0, false
	}
	pos := segHeaderLen
	expect := first
	for {
		n, lsn, _, adv, frameOK := readFrame(data[pos:])
		if !frameOK || lsn != expect {
			return expect - 1, pos, true
		}
		_ = n
		pos += adv
		expect++
	}
}

// readFrame parses one frame from buf, returning payload length, lsn,
// payload, total bytes consumed and validity.
func readFrame(buf []byte) (n int, lsn uint64, payload []byte, adv int, ok bool) {
	if len(buf) < frameHdrLen {
		return 0, 0, nil, 0, false
	}
	n = int(binary.LittleEndian.Uint32(buf[0:4]))
	if n < 0 || n > MaxRecordBytes || len(buf) < frameHdrLen+n {
		return 0, 0, nil, 0, false
	}
	crc := binary.LittleEndian.Uint32(buf[4:8])
	lsn = binary.LittleEndian.Uint64(buf[8:16])
	payload = buf[frameHdrLen : frameHdrLen+n]
	if crc32.Checksum(buf[8:16+n], castagnoli) != crc {
		return 0, 0, nil, 0, false
	}
	return n, lsn, payload, frameHdrLen + n, true
}

// EncodeFrame appends one wire frame — the on-disk segment framing,
// u32 len | u32 crc32c(lsn‖payload) | u64 lsn | payload — to dst. The
// replication shipper reuses the segment codec as its wire format so
// followers validate shipped records with the same CRC the recovery
// scan uses.
func EncodeFrame(dst []byte, lsn uint64, payload []byte) []byte {
	return appendFrame(dst, lsn, payload)
}

// DecodeFrame parses one wire frame from buf, returning the LSN, the
// payload (aliasing buf), the total bytes consumed, and validity. A
// short, oversized or corrupt frame returns ok=false.
func DecodeFrame(buf []byte) (lsn uint64, payload []byte, adv int, ok bool) {
	_, lsn, payload, adv, ok = readFrame(buf)
	return lsn, payload, adv, ok
}

// appendFrame encodes one frame into dst.
func appendFrame(dst []byte, lsn uint64, payload []byte) []byte {
	var hdr [frameHdrLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint64(hdr[8:16], lsn)
	crc := crc32.Checksum(hdr[8:16], castagnoli)
	crc = crc32.Update(crc, castagnoli, payload)
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// Append writes one record and returns its LSN. The record is handed
// to the OS but not yet durable; call Commit to wait for durability.
func (l *Log) Append(payload []byte) (uint64, error) {
	if l.appendHist != nil {
		start := time.Now()
		defer func() { l.appendHist.Observe(time.Since(start)) }()
	}
	if len(payload) > MaxRecordBytes {
		return 0, fmt.Errorf("wal: record of %d bytes exceeds limit", len(payload))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.usableLocked(); err != nil {
		return 0, err
	}
	if l.f == nil || l.segSize >= int64(l.opts.SegmentBytes) {
		if err := l.rotateLocked(); err != nil {
			return 0, err
		}
	}
	lsn := l.nextLSN
	frame := appendFrame(make([]byte, 0, frameHdrLen+len(payload)), lsn, payload)
	if _, err := l.f.Write(frame); err != nil {
		// A partial frame may now sit at the tail; recovery tolerates
		// it, but this log instance can no longer guarantee framing.
		l.err = fmt.Errorf("wal: append lsn %d: %w", lsn, err)
		return 0, l.err
	}
	l.segSize += int64(len(frame))
	l.nextLSN++
	l.written = lsn
	l.appends++
	return lsn, nil
}

func (l *Log) usableLocked() error {
	if l.closed {
		return fmt.Errorf("wal: log is closed")
	}
	return l.err
}

// rotateLocked seals the open segment (fsync + close) and arranges for
// the next append to start a fresh one. Callers hold l.mu.
func (l *Log) rotateLocked() error {
	if l.f != nil {
		for l.syncing {
			l.cond.Wait()
		}
		if err := l.err; err != nil {
			return err
		}
		l.fsyncs++
		if err := l.timedSync(l.f); err != nil {
			l.err = fmt.Errorf("wal: seal segment: %w", err)
			return l.err
		}
		l.durable = l.written
		if err := l.f.Close(); err != nil {
			l.err = fmt.Errorf("wal: close segment: %w", err)
			return l.err
		}
		l.f = nil
		l.cond.Broadcast()
	}
	name := segName(l.nextLSN)
	// A reopened log whose tail held no whole record recreates the
	// same file; drop the stale entry so segs stays duplicate-free.
	if n := len(l.segs); n > 0 && l.segs[n-1].name == name {
		l.segs = l.segs[:n-1]
	}
	f, err := l.fs.Create(filepath.Join(l.dir, name))
	if err != nil {
		l.err = fmt.Errorf("wal: create segment %s: %w", name, err)
		return l.err
	}
	var hdr [segHeaderLen]byte
	copy(hdr[:], segMagic)
	binary.LittleEndian.PutUint64(hdr[len(segMagic):], l.nextLSN)
	if _, err := f.Write(hdr[:]); err != nil {
		l.err = fmt.Errorf("wal: write segment header: %w", err)
		return l.err
	}
	if err := l.fs.SyncDir(l.dir); err != nil {
		l.err = err
		return l.err
	}
	l.f = f
	l.segSize = int64(segHeaderLen)
	l.segs = append(l.segs, segmentInfo{name: name, first: l.nextLSN})
	return nil
}

// Rotate seals the open segment so that subsequent appends start a new
// one. Checkpoints rotate before truncating so the snapshot boundary
// coincides with a segment boundary.
func (l *Log) Rotate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.usableLocked(); err != nil {
		return err
	}
	if l.f == nil {
		return nil
	}
	for l.syncing {
		l.cond.Wait()
	}
	if l.err != nil {
		return l.err
	}
	l.fsyncs++
	if err := l.timedSync(l.f); err != nil {
		l.err = fmt.Errorf("wal: seal segment: %w", err)
		return l.err
	}
	l.durable = l.written
	if err := l.f.Close(); err != nil {
		l.err = fmt.Errorf("wal: close segment: %w", err)
		return l.err
	}
	l.f = nil
	l.segSize = 0
	l.cond.Broadcast()
	return nil
}

// Commit blocks until the record at lsn is durable under the
// configured sync policy. Concurrent commits coalesce: one caller
// leads the fsync, everyone covered by it returns without issuing
// another.
func (l *Log) Commit(lsn uint64) error {
	if l.commitHist != nil {
		start := time.Now()
		defer func() { l.commitHist.Observe(time.Since(start)) }()
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if lsn > l.written {
		return fmt.Errorf("wal: commit of unwritten lsn %d", lsn)
	}
	if l.opts.Sync == SyncNone {
		return l.err
	}
	led := false  // issued an fsync of its own
	rode := false // waited on another committer's in-flight fsync
	for l.durable < lsn && l.err == nil && !l.closed {
		if l.syncing {
			rode = true
			l.cond.Wait()
			continue
		}
		// Become the fsync leader for everyone queued so far.
		l.syncing = true
		led = true
		if l.opts.Sync == SyncBatch {
			w := l.opts.BatchWindow
			l.mu.Unlock()
			time.Sleep(w)
			l.mu.Lock()
		}
		target := l.written
		f := l.f
		l.fsyncs++
		l.mu.Unlock()
		err := l.timedSync(f)
		l.mu.Lock()
		l.syncing = false
		if err != nil {
			l.err = fmt.Errorf("wal: fsync: %w", err)
		} else if target > l.durable {
			l.durable = target
		}
		l.cond.Broadcast()
	}
	if l.closed && l.durable < lsn && l.err == nil {
		return fmt.Errorf("wal: log closed before lsn %d became durable", lsn)
	}
	// Count as grouped only commits that actually shared someone
	// else's fsync — not ones whose LSN was already durable at entry
	// (after a rotation or an earlier leader's sync), where no fsync
	// was saved.
	if !led && rode && l.err == nil {
		l.grouped++
	}
	return l.err
}

// Sync fsyncs the open tail segment unconditionally, regardless of the
// commit policy — SyncNone systems use it to force durability at
// shutdown or before handing the directory to another process.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.usableLocked(); err != nil {
		return err
	}
	for l.syncing {
		l.cond.Wait()
	}
	if l.err != nil || l.f == nil || l.durable >= l.written {
		return l.err
	}
	target := l.written
	f := l.f
	l.syncing = true
	l.fsyncs++
	l.mu.Unlock()
	err := l.timedSync(f)
	l.mu.Lock()
	l.syncing = false
	if err != nil {
		l.err = fmt.Errorf("wal: fsync: %w", err)
	} else if target > l.durable {
		l.durable = target
	}
	l.cond.Broadcast()
	return l.err
}

// SetRetention installs a retention floor: TruncateThrough will keep
// every segment holding records above the LSN fn returns, regardless
// of the requested truncation point. fn is called with l.mu held and
// must not call back into the log. A nil fn removes the floor.
func (l *Log) SetRetention(fn func() uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.retention = fn
}

// TruncateThrough removes sealed segments whose every record has LSN
// <= lsn — the checkpoint already covers them. The open tail segment
// is never removed, and a retention floor (SetRetention) further caps
// the cut so registered followers never lose unpulled records.
func (l *Log) TruncateThrough(lsn uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: log is closed")
	}
	if l.retention != nil {
		if floor := l.retention(); floor < lsn {
			lsn = floor
		}
	}
	removed := false
	kept := make([]segmentInfo, 0, len(l.segs))
	for i, seg := range l.segs {
		// A segment's records end where the next segment begins; the
		// last segment is the (possibly open) tail and always stays.
		if i+1 < len(l.segs) && l.segs[i+1].first <= lsn+1 {
			if err := l.fs.Remove(filepath.Join(l.dir, seg.name)); err != nil {
				// Keep segs consistent with disk: the removals that
				// succeeded are gone, this one and the rest remain.
				l.segs = append(kept, l.segs[i:]...)
				return fmt.Errorf("wal: truncate: %w", err)
			}
			removed = true
			continue
		}
		kept = append(kept, seg)
	}
	l.segs = kept
	if removed {
		return l.fs.SyncDir(l.dir)
	}
	return nil
}

// Range replays the payloads of all records with LSN >= from, in
// order, reading the segment files back. It stops silently at the end
// of the valid prefix (a torn or corrupt frame), so it never fails on
// tail damage; fn errors abort the walk.
func (l *Log) Range(from uint64, fn func(lsn uint64, payload []byte) error) error {
	l.mu.Lock()
	segs := append([]segmentInfo(nil), l.segs...)
	l.mu.Unlock()
	expect := uint64(0)
	for _, seg := range segs {
		data, err := l.fs.ReadFile(filepath.Join(l.dir, seg.name))
		if err != nil {
			return fmt.Errorf("wal: range: read %s: %w", seg.name, err)
		}
		if len(data) < segHeaderLen || string(data[:len(segMagic)]) != segMagic {
			return nil
		}
		first := binary.LittleEndian.Uint64(data[len(segMagic):segHeaderLen])
		if first != seg.first || (expect != 0 && first != expect) {
			return nil
		}
		pos := segHeaderLen
		lsn := first
		for {
			_, gotLSN, payload, adv, ok := readFrame(data[pos:])
			if !ok || gotLSN != lsn {
				break
			}
			if gotLSN >= from {
				if err := fn(gotLSN, payload); err != nil {
					return err
				}
			}
			pos += adv
			lsn++
		}
		expect = lsn
	}
	return nil
}

// AppendedLSN returns the highest LSN handed to the OS (0 when empty).
func (l *Log) AppendedLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.written
}

// DurableLSN returns the highest LSN covered by a successful fsync.
func (l *Log) DurableLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.durable
}

// Stats returns a snapshot of the counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{
		Appends:        l.appends,
		Fsyncs:         l.fsyncs,
		GroupedCommits: l.grouped,
		Segments:       len(l.segs),
		AppendedLSN:    l.written,
		DurableLSN:     l.durable,
	}
}

// Err returns the sticky failure, if any.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Close fsyncs and closes the tail segment. Further operations fail.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	for l.syncing {
		l.cond.Wait()
	}
	l.closed = true
	l.cond.Broadcast()
	if l.f == nil {
		return l.err
	}
	f := l.f
	l.f = nil
	var err error
	if l.err == nil {
		l.fsyncs++
		if err = l.timedSync(f); err == nil {
			l.durable = l.written
		}
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if l.err == nil {
		l.err = fmt.Errorf("wal: log is closed")
	}
	return err
}

package wal

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
)

// ErrCrashed is returned by every mutating FaultFS operation once an
// injected crash point has been reached.
var ErrCrashed = errors.New("wal: simulated crash")

// ErrInjected is the failure returned by injected short writes and
// failed syncs.
var ErrInjected = errors.New("wal: injected fault")

// FaultFS is a deterministic in-memory FS for crash and fault
// testing. It tracks, per file, the durable image established by the
// last Sync, so Survivor can reconstruct exactly what a machine would
// see after losing power: the last-synced bytes of every file plus at
// most TornTailBytes of whatever the OS happened to have pushed down
// on its own. Truncate (and Create over an existing file) only changes
// the live bytes — like a real file system, the shrink is not durable
// until the file is fsynced again, so a crash can revive the cut tail.
//
// Fault knobs (all optional, all counted from 1):
//
//   - StopAfterSyncs=n: the n-th successful sync (file or directory)
//     completes, then the process "crashes" — every later mutating
//     operation fails with ErrCrashed.
//   - FailSyncAt=n: the n-th sync attempt fails with ErrInjected
//     without making anything durable (and does not count as a
//     successful sync).
//   - ShortWriteAt=n: the n-th Write persists only half its bytes and
//     returns ErrInjected.
//   - TornTailBytes: how many unsynced tail bytes per file survive
//     into Survivor, modelling a partially flushed OS buffer.
//
// All methods are safe for concurrent use.
type FaultFS struct {
	StopAfterSyncs int
	FailSyncAt     int
	ShortWriteAt   int
	TornTailBytes  int

	mu      sync.Mutex
	files   map[string]*memFile
	dirs    map[string]bool
	syncs   int // successful syncs (file + dir)
	syncTry int // sync attempts
	writes  int // write attempts
	crashed bool
}

type memFile struct {
	data   []byte // live bytes (what ReadFile sees)
	stable []byte // durable image as of the last Sync
}

// NewFaultFS returns an empty fault-injection file system.
func NewFaultFS() *FaultFS {
	return &FaultFS{files: map[string]*memFile{}, dirs: map[string]bool{}}
}

// SyncCount returns the number of successful syncs so far.
func (fs *FaultFS) SyncCount() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.syncs
}

// Crashed reports whether an injected crash point has been reached.
func (fs *FaultFS) Crashed() bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.crashed
}

// Corrupt XORs the byte at off in name with xor, modelling silent
// media corruption. It panics if the file or offset does not exist —
// corruption tests address real bytes.
func (fs *FaultFS) Corrupt(name string, off int, xor byte) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[filepath.Clean(name)]
	if !ok || off < 0 || off >= len(f.data) {
		panic(fmt.Sprintf("wal: corrupt %s at %d: no such byte", name, off))
	}
	f.data[off] ^= xor
	// Media corruption damages the durable image too.
	if off < len(f.stable) {
		f.stable[off] ^= xor
	}
}

// FileSize returns the current length of name, or -1 if absent.
func (fs *FaultFS) FileSize(name string) int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[filepath.Clean(name)]
	if !ok {
		return -1
	}
	return len(f.data)
}

// Survivor returns a fresh, fault-free FaultFS holding what would be
// on disk after a crash right now: every file reverts to its durable
// image, plus at most TornTailBytes of unsynced tail when the live
// bytes extend that image. An unsynced Truncate is therefore undone —
// the cut tail comes back, exactly as a real crash can revive it.
func (fs *FaultFS) Survivor() *FaultFS {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	out := NewFaultFS()
	for d := range fs.dirs {
		out.dirs[d] = true
	}
	for name, f := range fs.files {
		keep := f.stable
		if len(f.data) > len(f.stable) && bytes.Equal(f.data[:len(f.stable)], f.stable) {
			extra := fs.TornTailBytes
			if torn := len(f.data) - len(f.stable); extra > torn {
				extra = torn
			}
			keep = f.data[:len(f.stable)+extra]
		}
		survived := append([]byte(nil), keep...)
		out.files[name] = &memFile{
			data:   survived,
			stable: append([]byte(nil), survived...),
		}
	}
	return out
}

func (fs *FaultFS) checkMutateLocked() error {
	if fs.crashed {
		return ErrCrashed
	}
	return nil
}

// syncLocked runs the shared sync bookkeeping for files and dirs. The
// caller commits durability only when it returns nil.
func (fs *FaultFS) syncLocked() error {
	if fs.crashed {
		return ErrCrashed
	}
	fs.syncTry++
	if fs.FailSyncAt > 0 && fs.syncTry == fs.FailSyncAt {
		return ErrInjected
	}
	fs.syncs++
	if fs.StopAfterSyncs > 0 && fs.syncs >= fs.StopAfterSyncs {
		fs.crashed = true
	}
	return nil
}

// MkdirAll implements FS.
func (fs *FaultFS) MkdirAll(dir string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.checkMutateLocked(); err != nil {
		return err
	}
	fs.dirs[filepath.Clean(dir)] = true
	return nil
}

// Create implements FS.
func (fs *FaultFS) Create(name string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.checkMutateLocked(); err != nil {
		return nil, err
	}
	name = filepath.Clean(name)
	mf := &memFile{}
	if old, ok := fs.files[name]; ok {
		// O_TRUNC of an existing file is a metadata change like
		// Truncate: the old durable image survives a crash until the
		// recreated file is fsynced.
		mf.stable = old.stable
	}
	fs.files[name] = mf
	return &faultFile{fs: fs, name: name}, nil
}

// OpenAppend implements FS.
func (fs *FaultFS) OpenAppend(name string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.checkMutateLocked(); err != nil {
		return nil, err
	}
	name = filepath.Clean(name)
	if _, ok := fs.files[name]; !ok {
		fs.files[name] = &memFile{}
	}
	return &faultFile{fs: fs, name: name}, nil
}

// ReadFile implements FS. Reads keep working after a crash so the
// survivor's contents can be inspected.
func (fs *FaultFS) ReadFile(name string) ([]byte, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[filepath.Clean(name)]
	if !ok {
		return nil, fmt.Errorf("wal: faultfs: %s: no such file", name)
	}
	return append([]byte(nil), f.data...), nil
}

// Truncate implements FS.
func (fs *FaultFS) Truncate(name string, size int64) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.checkMutateLocked(); err != nil {
		return err
	}
	f, ok := fs.files[filepath.Clean(name)]
	if !ok {
		return fmt.Errorf("wal: faultfs: truncate %s: no such file", name)
	}
	if size < 0 || size > int64(len(f.data)) {
		return fmt.Errorf("wal: faultfs: truncate %s to %d: out of range", name, size)
	}
	// Only the live bytes shrink; the durable image (stable) is
	// untouched until the next Sync, so a crash revives the tail.
	f.data = f.data[:size]
	return nil
}

// Remove implements FS.
func (fs *FaultFS) Remove(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.checkMutateLocked(); err != nil {
		return err
	}
	name = filepath.Clean(name)
	if _, ok := fs.files[name]; !ok {
		return fmt.Errorf("wal: faultfs: remove %s: no such file", name)
	}
	delete(fs.files, name)
	return nil
}

// List implements FS.
func (fs *FaultFS) List(dir string) ([]string, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	dir = filepath.Clean(dir)
	var out []string
	for name := range fs.files {
		if filepath.Dir(name) == dir {
			out = append(out, filepath.Base(name))
		}
	}
	sort.Strings(out)
	return out, nil
}

// SyncDir implements FS. Directory metadata in this model is durable
// at mutation time, but the sync still counts as a crash boundary.
func (fs *FaultFS) SyncDir(string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.syncLocked()
}

type faultFile struct {
	fs     *FaultFS
	name   string
	closed bool
}

func (f *faultFile) Write(p []byte) (int, error) {
	fs := f.fs
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if f.closed {
		return 0, fmt.Errorf("wal: faultfs: write to closed file %s", f.name)
	}
	if err := fs.checkMutateLocked(); err != nil {
		return 0, err
	}
	mf, ok := fs.files[f.name]
	if !ok {
		return 0, fmt.Errorf("wal: faultfs: write %s: no such file", f.name)
	}
	fs.writes++
	if fs.ShortWriteAt > 0 && fs.writes == fs.ShortWriteAt {
		half := len(p) / 2
		mf.data = append(mf.data, p[:half]...)
		return half, ErrInjected
	}
	mf.data = append(mf.data, p...)
	return len(p), nil
}

func (f *faultFile) Sync() error {
	fs := f.fs
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if f.closed {
		return fmt.Errorf("wal: faultfs: sync of closed file %s", f.name)
	}
	mf, ok := fs.files[f.name]
	if !ok {
		return fmt.Errorf("wal: faultfs: sync %s: no such file", f.name)
	}
	if err := fs.syncLocked(); err != nil {
		return err
	}
	mf.stable = append([]byte(nil), mf.data...)
	return nil
}

func (f *faultFile) Close() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	f.closed = true
	return nil
}

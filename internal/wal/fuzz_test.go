package wal

import (
	"bytes"
	"path/filepath"
	"testing"
)

// buildSeedLog writes a small real log and returns its first segment's
// bytes — the fuzz corpus starts from genuine on-disk material.
func buildSeedLog(t testing.TB, n int, segBytes int) [][]byte {
	t.Helper()
	fs := NewFaultFS()
	l, err := Open("/seed", Options{FS: fs, SegmentBytes: segBytes})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= n; i++ {
		if _, err := l.Append(payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	names, _ := fs.List("/seed")
	var out [][]byte
	for _, name := range names {
		data, err := fs.ReadFile(filepath.Join("/seed", name))
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, data)
	}
	return out
}

// FuzzWALReplay feeds arbitrary bytes to the log as the content of its
// first segment. The contract under test: Open never panics and never
// errors on content damage (only on I/O failure), and whatever it
// recovers is a valid record prefix — replayable, contiguous LSNs from
// 1, every payload intact, and append-ready at the end.
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(segMagic))
	for _, seg := range buildSeedLog(f, 12, 256) {
		f.Add(seg)
		// Truncation and bit-flip variants of real segments.
		f.Add(seg[:len(seg)/2])
		flip := append([]byte(nil), seg...)
		flip[len(flip)/3] ^= 0x10
		f.Add(flip)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		fs := NewFaultFS()
		fs.files[filepath.Clean("/w/"+segName(1))] = &memFile{
			data:   append([]byte(nil), data...),
			stable: append([]byte(nil), data...),
		}
		l, err := Open("/w", Options{FS: fs})
		if err != nil {
			t.Fatalf("Open must tolerate arbitrary content, got %v", err)
		}
		defer l.Close()
		// The recovered portion must be a contiguous prefix 1..N whose
		// payloads replay without error.
		last := l.AppendedLSN()
		var seen uint64
		if err := l.Range(1, func(lsn uint64, p []byte) error {
			seen++
			if lsn != seen {
				t.Fatalf("replay lsn %d, want contiguous %d", lsn, seen)
			}
			return nil
		}); err != nil {
			t.Fatalf("replay after recovery: %v", err)
		}
		if seen != last {
			t.Fatalf("replayed %d records but AppendedLSN is %d", seen, last)
		}
		// And the log must accept appends exactly at the cut.
		lsn, err := l.Append([]byte("post-recovery"))
		if err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if lsn != last+1 {
			t.Fatalf("append assigned lsn %d, want %d", lsn, last+1)
		}
		if err := l.Commit(lsn); err != nil {
			t.Fatalf("commit after recovery: %v", err)
		}
		found := false
		if err := l.Range(lsn, func(got uint64, p []byte) error {
			if got == lsn && bytes.Equal(p, []byte("post-recovery")) {
				found = true
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if !found {
			t.Fatal("appended record not replayable")
		}
	})
}

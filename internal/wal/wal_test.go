package wal

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func payload(i int) []byte { return []byte(fmt.Sprintf("record-%04d", i)) }

func mustAppend(t *testing.T, l *Log, p []byte) uint64 {
	t.Helper()
	lsn, err := l.Append(p)
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	return lsn
}

func collect(t *testing.T, l *Log, from uint64) map[uint64]string {
	t.Helper()
	out := map[uint64]string{}
	if err := l.Range(from, func(lsn uint64, p []byte) error {
		if _, dup := out[lsn]; dup {
			t.Fatalf("range yielded lsn %d twice", lsn)
		}
		out[lsn] = string(p)
		return nil
	}); err != nil {
		t.Fatalf("range: %v", err)
	}
	return out
}

func TestAppendCommitReopen(t *testing.T) {
	fs := NewFaultFS()
	l, err := Open("/w", Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 1; i <= n; i++ {
		lsn := mustAppend(t, l, payload(i))
		if lsn != uint64(i) {
			t.Fatalf("lsn = %d, want %d", lsn, i)
		}
	}
	if err := l.Commit(n); err != nil {
		t.Fatal(err)
	}
	if got := l.DurableLSN(); got != n {
		t.Fatalf("durable = %d, want %d", got, n)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open("/w", Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.AppendedLSN(); got != n {
		t.Fatalf("reopened appended = %d, want %d", got, n)
	}
	recs := collect(t, re, 1)
	if len(recs) != n {
		t.Fatalf("replayed %d records, want %d", len(recs), n)
	}
	for i := 1; i <= n; i++ {
		if recs[uint64(i)] != string(payload(i)) {
			t.Fatalf("lsn %d: payload %q", i, recs[uint64(i)])
		}
	}
	// Appending after reopen continues the LSN sequence.
	if lsn := mustAppend(t, re, payload(n+1)); lsn != n+1 {
		t.Fatalf("post-reopen lsn = %d, want %d", lsn, n+1)
	}
}

func TestSegmentRotationAndTruncate(t *testing.T) {
	fs := NewFaultFS()
	l, err := Open("/w", Options{FS: fs, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	for i := 1; i <= n; i++ {
		mustAppend(t, l, payload(i))
	}
	if err := l.Commit(n); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Segments < 3 {
		t.Fatalf("expected rotation to produce several segments, got %d", st.Segments)
	}
	recs := collect(t, l, 1)
	if len(recs) != n {
		t.Fatalf("replayed %d records across segments, want %d", len(recs), n)
	}

	// Truncating through a mid-log LSN removes only fully covered
	// sealed segments; every record after the cut must survive.
	cut := uint64(n / 2)
	if err := l.TruncateThrough(cut); err != nil {
		t.Fatal(err)
	}
	after := l.Stats()
	if after.Segments >= st.Segments {
		t.Fatalf("truncate removed nothing: %d -> %d segments", st.Segments, after.Segments)
	}
	recs = collect(t, l, cut+1)
	for i := cut + 1; i <= n; i++ {
		if recs[i] != string(payload(int(i))) {
			t.Fatalf("lsn %d lost by truncate", i)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen after truncation: first kept segment sets the floor.
	re, err := Open("/w", Options{FS: fs, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.AppendedLSN(); got != n {
		t.Fatalf("appended after reopen = %d, want %d", got, n)
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	fs := NewFaultFS()
	l, err := Open("/w", Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		mustAppend(t, l, payload(i))
	}
	if err := l.Commit(10); err != nil {
		t.Fatal(err)
	}
	// Crash with a half-written 11th record in the OS buffer.
	fs.TornTailBytes = 9
	mustAppend(t, l, payload(11))
	surv := fs.Survivor()

	re, err := Open("/w", Options{FS: surv})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.AppendedLSN(); got != 10 {
		t.Fatalf("appended = %d after torn tail, want 10", got)
	}
	recs := collect(t, re, 1)
	if len(recs) != 10 {
		t.Fatalf("replayed %d, want 10", len(recs))
	}
	// The torn bytes are gone; new appends continue cleanly.
	if lsn := mustAppend(t, re, payload(11)); lsn != 11 {
		t.Fatalf("lsn = %d, want 11", lsn)
	}
	if err := re.Commit(11); err != nil {
		t.Fatal(err)
	}
	recs = collect(t, re, 1)
	if recs[11] != string(payload(11)) {
		t.Fatalf("lsn 11 = %q", recs[11])
	}
}

// TestTornTailDoubleCrashKeepsAckedSegments is the double-crash
// regression: crash 1 leaves a torn tail in segment A; recovery
// truncates it and acked records then go into a fresh segment B. If
// the truncation of A is not fsynced, crash 2 can revive A's torn
// bytes — and a recovery that drops everything after a tear would then
// delete B, losing records that were durable and acknowledged.
func TestTornTailDoubleCrashKeepsAckedSegments(t *testing.T) {
	fs := NewFaultFS()
	l, err := Open("/w", Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		mustAppend(t, l, payload(i))
	}
	if err := l.Commit(10); err != nil {
		t.Fatal(err)
	}
	// Crash 1: a half-written 11th record survives in the OS buffer.
	fs.TornTailBytes = 9
	mustAppend(t, l, payload(11))
	surv := fs.Survivor()
	surv.TornTailBytes = 9 // the next crash also leaves torn bytes

	// First recovery truncates the torn tail; new acked records land
	// in a fresh segment starting at LSN 11.
	re, err := Open("/w", Options{FS: surv})
	if err != nil {
		t.Fatal(err)
	}
	for i := 11; i <= 20; i++ {
		mustAppend(t, re, payload(i))
	}
	if err := re.Commit(20); err != nil {
		t.Fatal(err)
	}

	// Crash 2 without closing; records 11..20 were fsynced and acked.
	re2, err := Open("/w", Options{FS: surv.Survivor()})
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if got := re2.AppendedLSN(); got != 20 {
		t.Fatalf("appended = %d after double crash, want 20", got)
	}
	recs := collect(t, re2, 1)
	for i := uint64(1); i <= 20; i++ {
		if recs[i] != string(payload(int(i))) {
			t.Fatalf("lsn %d lost or corrupted after double crash: %q", i, recs[i])
		}
	}
}

// A commit whose LSN is already durable at entry (after a rotation or
// an explicit Sync) shares nothing; it must not count as grouped.
func TestCommitAlreadyDurableNotGrouped(t *testing.T) {
	fs := NewFaultFS()
	l, err := Open("/w", Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 1; i <= 5; i++ {
		lsn := mustAppend(t, l, payload(i))
		if err := l.Commit(lsn); err != nil {
			t.Fatal(err)
		}
	}
	lsn := mustAppend(t, l, payload(6))
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(lsn); err != nil { // already durable
		t.Fatal(err)
	}
	if g := l.Stats().GroupedCommits; g != 0 {
		t.Fatalf("serial workload counted %d grouped commits, want 0", g)
	}
}

// removeFailFS fails the n-th Remove, modelling a checkpoint that dies
// halfway through deleting covered segments.
type removeFailFS struct {
	*FaultFS
	failAt  int
	removes int
}

func (fs *removeFailFS) Remove(name string) error {
	fs.removes++
	if fs.removes == fs.failAt {
		return ErrInjected
	}
	return fs.FaultFS.Remove(name)
}

func TestTruncateThroughPartialFailureStaysConsistent(t *testing.T) {
	fs := &removeFailFS{FaultFS: NewFaultFS(), failAt: 2}
	l, err := Open("/w", Options{FS: fs, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const n = 40
	for i := 1; i <= n; i++ {
		mustAppend(t, l, payload(i))
	}
	if err := l.Commit(n); err != nil {
		t.Fatal(err)
	}
	if segs := l.Stats().Segments; segs < 4 {
		t.Fatalf("want >=4 segments, got %d", segs)
	}
	// The second Remove fails: one segment is gone, the rest remain.
	if err := l.TruncateThrough(n - 5); err == nil {
		t.Fatal("TruncateThrough should surface the injected Remove failure")
	}
	// The in-memory segment list must match disk: replay reads every
	// listed segment, so a stale entry would error on the deleted file.
	recs := collect(t, l, 1)
	for lsn := range recs {
		if recs[lsn] != string(payload(int(lsn))) {
			t.Fatalf("lsn %d corrupted after failed truncate: %q", lsn, recs[lsn])
		}
	}
	st := l.Stats()
	names, _ := fs.List("/w")
	if len(names) != st.Segments {
		t.Fatalf("segment list out of sync with disk: stats say %d, disk has %d", st.Segments, len(names))
	}
	// The surviving suffix is still contiguous up to the tail.
	if _, ok := recs[uint64(n)]; !ok {
		t.Fatalf("tail record %d lost by failed truncate", n)
	}
}

func TestCorruptMidLogCutsPrefix(t *testing.T) {
	fs := NewFaultFS()
	l, err := Open("/w", Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 20; i++ {
		mustAppend(t, l, payload(i))
	}
	if err := l.Commit(20); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Flip one payload byte somewhere in the middle of the segment.
	name := filepath.Join("/w", segName(1))
	fs.Corrupt(name, segHeaderLen+(frameHdrLen+len(payload(1)))*10+frameHdrLen+3, 0x40)

	re, err := Open("/w", Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.AppendedLSN(); got != 10 {
		t.Fatalf("appended = %d after mid-log corruption, want 10", got)
	}
	recs := collect(t, re, 1)
	if len(recs) != 10 {
		t.Fatalf("replayed %d, want the 10-record valid prefix", len(recs))
	}
}

func TestCorruptEarlySegmentDropsLaterOnes(t *testing.T) {
	fs := NewFaultFS()
	l, err := Open("/w", Options{FS: fs, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 40; i++ {
		mustAppend(t, l, payload(i))
	}
	if err := l.Commit(40); err != nil {
		t.Fatal(err)
	}
	segs := l.Stats().Segments
	if segs < 3 {
		t.Fatalf("want >=3 segments, got %d", segs)
	}
	l.Close()

	// Corrupt the first record of the second segment: everything from
	// there on is beyond the valid prefix.
	var second segmentInfo
	names, _ := fs.List("/w")
	var infos []segmentInfo
	for _, n := range names {
		first, ok := parseSegName(n)
		if !ok {
			t.Fatalf("bad segment name %s", n)
		}
		infos = append(infos, segmentInfo{name: n, first: first})
	}
	if len(infos) != segs {
		t.Fatalf("listed %d segments, stats said %d", len(infos), segs)
	}
	second = infos[1]
	fs.Corrupt(filepath.Join("/w", second.name), segHeaderLen+frameHdrLen+2, 0xff)

	re, err := Open("/w", Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	want := second.first - 1
	if got := re.AppendedLSN(); got != want {
		t.Fatalf("appended = %d, want %d", got, want)
	}
	// The corrupted segment survives only as an empty truncated tail;
	// everything after it is gone.
	if got := re.Stats().Segments; got > 2 {
		t.Fatalf("segments = %d after dropping invalid tail, want <= 2", got)
	}
	// The log must be append-ready exactly where the prefix ends.
	if lsn := mustAppend(t, re, payload(int(want)+1)); lsn != want+1 {
		t.Fatalf("append after drop: lsn = %d, want %d", lsn, want+1)
	}
}

func TestGroupCommitCoalesces(t *testing.T) {
	fs := NewFaultFS()
	l, err := Open("/w", Options{FS: fs, Sync: SyncBatch, BatchWindow: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const workers = 8
	const perWorker = 5
	var wg sync.WaitGroup
	errs := make(chan error, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				lsn, err := l.Append([]byte(fmt.Sprintf("w%d-%d", w, i)))
				if err != nil {
					errs <- err
					return
				}
				if err := l.Commit(lsn); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Appends != workers*perWorker {
		t.Fatalf("appends = %d", st.Appends)
	}
	if st.DurableLSN != uint64(workers*perWorker) {
		t.Fatalf("durable = %d", st.DurableLSN)
	}
	// With a batch window, many committers must have shared an fsync.
	if st.GroupedCommits == 0 {
		t.Fatalf("no grouped commits across %d concurrent committers (fsyncs=%d)", workers*perWorker, st.Fsyncs)
	}
	if st.Fsyncs >= st.Appends {
		t.Fatalf("fsyncs (%d) not coalesced below appends (%d)", st.Fsyncs, st.Appends)
	}
}

func TestSyncNoneNeverFsyncsOnCommit(t *testing.T) {
	fs := NewFaultFS()
	l, err := Open("/w", Options{FS: fs, Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	lsn := mustAppend(t, l, payload(1))
	if err := l.Commit(lsn); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.Fsyncs != 0 {
		t.Fatalf("SyncNone commit issued %d fsyncs", st.Fsyncs)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if st := fs.SyncCount(); st == 0 {
		t.Fatal("close did not sync")
	}
}

func TestFailedSyncIsSticky(t *testing.T) {
	fs := NewFaultFS()
	// Sync attempt 1 is the directory sync when the first segment is
	// created; attempt 2 is the commit fsync we want to fail.
	fs.FailSyncAt = 2
	l, err := Open("/w", Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	lsn := mustAppend(t, l, payload(1))
	if err := l.Commit(lsn); err == nil {
		t.Fatal("commit after failed fsync should error")
	}
	if _, err := l.Append(payload(2)); err == nil {
		t.Fatal("append after failed fsync should be rejected (sticky error)")
	}
}

func TestShortWriteRecoversValidPrefix(t *testing.T) {
	fs := NewFaultFS()
	l, err := Open("/w", Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		mustAppend(t, l, payload(i))
	}
	if err := l.Commit(5); err != nil {
		t.Fatal(err)
	}
	// Writes so far: segment header + 5 frames = 6. Tear the 7th.
	fs.ShortWriteAt = 7
	if _, err := l.Append(payload(6)); err == nil {
		t.Fatal("short write should surface as an append error")
	}
	// The half-written frame is on "disk"; a reopen (same bytes, no
	// crash needed) must cut back to record 5.
	re, err := Open("/w", Options{FS: fs.Survivor()})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.AppendedLSN(); got != 5 {
		t.Fatalf("appended = %d after short write, want 5", got)
	}
}

func TestCrashAtEverySyncBoundary(t *testing.T) {
	// Reference run: count total syncs for a fixed workload.
	run := func(fs *FaultFS) (acked uint64) {
		l, err := Open("/w", Options{FS: fs, SegmentBytes: 160})
		if err != nil {
			return 0
		}
		defer l.Close()
		for i := 1; i <= 30; i++ {
			lsn, err := l.Append(payload(i))
			if err != nil {
				return acked
			}
			if err := l.Commit(lsn); err != nil {
				return acked
			}
			acked = lsn
		}
		return acked
	}
	ref := NewFaultFS()
	refAcked := run(ref)
	if refAcked != 30 {
		t.Fatalf("reference run acked %d", refAcked)
	}
	total := ref.SyncCount()
	if total < 5 {
		t.Fatalf("reference run produced only %d syncs", total)
	}
	for k := 1; k <= total; k++ {
		for _, torn := range []int{0, 7} {
			fs := NewFaultFS()
			fs.StopAfterSyncs = k
			fs.TornTailBytes = torn
			acked := run(fs)
			re, err := Open("/w", Options{FS: fs.Survivor()})
			if err != nil {
				t.Fatalf("k=%d torn=%d: recovery open: %v", k, torn, err)
			}
			recovered := re.AppendedLSN()
			if recovered < acked {
				t.Fatalf("k=%d torn=%d: lost acked records: recovered %d < acked %d", k, torn, recovered, acked)
			}
			recs := collect(t, re, 1)
			if uint64(len(recs)) != recovered {
				t.Fatalf("k=%d torn=%d: replayed %d records, appended says %d", k, torn, len(recs), recovered)
			}
			for i := uint64(1); i <= recovered; i++ {
				if recs[i] != string(payload(int(i))) {
					t.Fatalf("k=%d torn=%d: lsn %d corrupted: %q", k, torn, i, recs[i])
				}
			}
			re.Close()
		}
	}
}

func TestOSFSRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		mustAppend(t, l, payload(i))
	}
	if err := l.Commit(10); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := len(collect(t, re, 1)); got != 10 {
		t.Fatalf("replayed %d records from disk, want 10", got)
	}
}

package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTree(t *testing.T) {
	tr := NewTracer("query")
	root := tr.Root()
	root.SetAttr("sql", "SELECT 1")
	scan := root.Child("scan")
	scan.SetAttr("table", "emp")
	scan.AddRows(100, 40)
	scan.End()
	join := root.Child("join:hash")
	join.AddRows(40, 12)
	join.End()
	qt := tr.Finish("q1")

	if qt.Query != "q1" {
		t.Fatalf("query = %q", qt.Query)
	}
	if got := qt.Find("scan"); got == nil || got.RowsIn != 100 || got.RowsOut != 40 {
		t.Fatalf("scan node = %+v", got)
	}
	if got := qt.Find("scan").Attr("table"); got != "emp" {
		t.Fatalf("table attr = %q", got)
	}
	if qt.Find("join:hash") == nil || qt.Find("missing") != nil {
		t.Fatal("find mismatch")
	}
	if len(qt.Root.Children) != 2 {
		t.Fatalf("children = %d", len(qt.Root.Children))
	}

	tree := qt.Tree()
	if !strings.Contains(tree, "scan") || !strings.Contains(tree, "rows=40") || !strings.Contains(tree, "table=emp") {
		t.Fatalf("tree output:\n%s", tree)
	}

	var back QueryTrace
	if err := json.Unmarshal(qt.JSON(), &back); err != nil {
		t.Fatalf("trace JSON round-trip: %v", err)
	}
	if back.Root.Name != "query" {
		t.Fatalf("round-trip root = %q", back.Root.Name)
	}
}

func TestNilSpanSafe(t *testing.T) {
	var s *Span
	c := s.Child("x")
	if c != nil {
		t.Fatal("nil.Child must return nil")
	}
	s.End()
	s.SetAttr("k", "v")
	s.SetInt("n", 1)
	s.AddRows(1, 2)
	var tr *Tracer
	if tr.Root() != nil {
		t.Fatal("nil tracer root must be nil")
	}
	if tr.Finish("q") != nil {
		t.Fatal("nil tracer finish must be nil")
	}
}

// The disabled-tracing contract: every hook on a nil span or histogram
// is one pointer check and zero allocations.
func TestNilPathZeroAlloc(t *testing.T) {
	var s *Span
	var h *Histogram
	if n := testing.AllocsPerRun(1000, func() {
		c := s.Child("scan")
		c.AddRows(1, 1)
		c.SetInt("k", 2)
		c.End()
		h.Observe(time.Microsecond)
	}); n != 0 {
		t.Fatalf("nil-path allocs = %v, want 0", n)
	}
}

func TestSpanConcurrent(t *testing.T) {
	tr := NewTracer("q")
	root := tr.Root()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c := root.Child("morsel")
				c.AddRows(1, 1)
				c.End()
				root.AddRows(0, 1)
			}
		}()
	}
	wg.Wait()
	qt := tr.Finish("")
	if len(qt.Root.Children) != 800 {
		t.Fatalf("children = %d, want 800", len(qt.Root.Children))
	}
	if qt.Root.RowsOut != 800 {
		t.Fatalf("rows out = %d, want 800", qt.Root.RowsOut)
	}
}

func TestUnclosedSpanRendered(t *testing.T) {
	tr := NewTracer("q")
	tr.Root().Child("open") // never ended
	qt := tr.Finish("")
	n := qt.Find("open")
	if n == nil || n.DurNS < 0 {
		t.Fatalf("unclosed span node = %+v", n)
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(time.Microsecond) // 1000ns → bucket upper 1024
	}
	h.Observe(time.Second)
	s := h.Snapshot()
	if s.Count != 101 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.MaxNS != time.Second.Nanoseconds() {
		t.Fatalf("max = %d", s.MaxNS)
	}
	if s.P50NS != 1024 {
		t.Fatalf("p50 = %d, want 1024", s.P50NS)
	}
	if s.P99NS != 1024 {
		t.Fatalf("p99 = %d, want 1024", s.P99NS)
	}
	if s.MeanNS <= 0 {
		t.Fatalf("mean = %d", s.MeanNS)
	}
	if len(s.Buckets) != 2 {
		t.Fatalf("buckets = %+v", s.Buckets)
	}
}

func TestHistogramEdges(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(-time.Second) // clamped to 0
	h.Observe(time.Duration(1<<62 + 1<<61))
	s := h.Snapshot()
	if s.Count != 3 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Buckets[0].UpperNS != 1 || s.Buckets[0].Count != 2 {
		t.Fatalf("zero bucket = %+v", s.Buckets[0])
	}
	var empty *Histogram
	empty.Observe(time.Second)
	if empty.Snapshot().Count != 0 {
		t.Fatal("nil histogram must be empty")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(time.Duration(k+1) * time.Microsecond)
				_ = h.Snapshot()
			}
		}(i)
	}
	wg.Wait()
	if got := h.Snapshot().Count; got != 8000 {
		t.Fatalf("count = %d, want 8000", got)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	var n int64 = 7
	r.CounterFunc("relstore.block_reads", func() int64 { return n })
	r.GaugeFunc("relstore.block_cache_bytes", func() int64 { return 42 })
	r.Histogram("wal.fsync_ns").Observe(3 * time.Millisecond)
	if h1, h2 := r.Histogram("wal.fsync_ns"), r.Histogram("wal.fsync_ns"); h1 != h2 {
		t.Fatal("Histogram must return the same instance per name")
	}

	s := r.Snapshot()
	if s.Counters["relstore.block_reads"] != 7 {
		t.Fatalf("counter = %d", s.Counters["relstore.block_reads"])
	}
	if s.Gauges["relstore.block_cache_bytes"] != 42 {
		t.Fatalf("gauge = %d", s.Gauges["relstore.block_cache_bytes"])
	}
	if s.Histograms["wal.fsync_ns"].Count != 1 {
		t.Fatalf("hist = %+v", s.Histograms["wal.fsync_ns"])
	}

	var back Snapshot
	if err := json.Unmarshal(s.JSON(), &back); err != nil {
		t.Fatalf("snapshot JSON: %v", err)
	}
	if back.Counters["relstore.block_reads"] != 7 {
		t.Fatal("JSON round-trip lost counter")
	}

	want := []string{"relstore.block_cache_bytes", "relstore.block_reads", "wal.fsync_ns"}
	got := r.Names()
	if len(got) != len(want) {
		t.Fatalf("names = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("names = %v, want %v", got, want)
		}
	}
}

func TestNilRegistry(t *testing.T) {
	var r *Registry
	r.CounterFunc("x", func() int64 { return 1 })
	r.GaugeFunc("y", func() int64 { return 1 })
	r.Histogram("z").Observe(time.Second)
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatalf("nil registry snapshot = %+v", s)
	}
	if r.Names() != nil {
		t.Fatal("nil registry names must be nil")
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				r.Histogram("h").Observe(time.Microsecond)
				r.CounterFunc("c", func() int64 { return 1 })
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := r.Snapshot().Histograms["h"].Count; got != 1600 {
		t.Fatalf("count = %d, want 1600", got)
	}
}

func TestFormatDuration(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{1500 * time.Nanosecond, "1.5µs"},
		{2500 * time.Microsecond, "2.50ms"},
		{1200 * time.Millisecond, "1.200s"},
	}
	for _, c := range cases {
		if got := FormatDuration(c.d); got != c.want {
			t.Fatalf("FormatDuration(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}

// The overhead benchmarks below model a BenchmarkScanBorrow-class hot
// loop: per-scan span bookkeeping (one Child/AddRows/End around the
// loop — the granularity the engine instruments at; span methods are
// never called per row) over 20k rows of per-row arithmetic. The
// acceptance budget is <2% added latency with tracing disabled.

var benchSink int64

func scanLoopRows() []int64 {
	rows := make([]int64, 20000)
	for i := range rows {
		rows[i] = int64(i * 7)
	}
	return rows
}

func BenchmarkScanLoopBare(b *testing.B) {
	rows := scanLoopRows()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sum int64
		for _, v := range rows {
			sum += v
		}
		benchSink = sum
	}
}

func BenchmarkScanLoopNilSpan(b *testing.B) {
	rows := scanLoopRows()
	var sp *Span // disabled tracing: every call is a nil check
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := sp.Child("scan")
		var sum int64
		for _, v := range rows {
			sum += v
		}
		s.AddRows(0, int64(len(rows)))
		s.End()
		benchSink = sum
	}
}

// TestNilTracerOverhead measures the two loops with testing.Benchmark
// and fails when the disabled-tracer loop costs noticeably more than
// the bare loop. The pass bound is deliberately looser than the 2%
// budget — shared CI machines jitter more than that — but it still
// catches a nil path that grew an allocation, a lock, or a time.Now
// call. The measured ratio is logged for the record.
func TestNilTracerOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison; skipped in -short")
	}
	rows := scanLoopRows()
	bareIter := func() {
		var sum int64
		for _, v := range rows {
			sum += v
		}
		benchSink = sum
	}
	var sp *Span
	nilIter := func() {
		s := sp.Child("scan")
		var sum int64
		for _, v := range rows {
			sum += v
		}
		s.AddRows(0, int64(len(rows)))
		s.End()
		benchSink = sum
	}
	// Interleaved best-of-batches: the two loops alternate inside the
	// same time window so CPU frequency drift hits both, and scheduling
	// noise only ever slows a batch down, so each side's minimum is its
	// stable cost estimate.
	const batch, warmup, measured = 200, 2, 20
	timeBatch := func(f func()) time.Duration {
		start := time.Now()
		for i := 0; i < batch; i++ {
			f()
		}
		return time.Since(start)
	}
	var bareBest, nilBest time.Duration
	for r := 0; r < warmup+measured; r++ {
		db, dn := timeBatch(bareIter), timeBatch(nilIter)
		if r < warmup {
			continue
		}
		if bareBest == 0 || db < bareBest {
			bareBest = db
		}
		if nilBest == 0 || dn < nilBest {
			nilBest = dn
		}
	}
	if n := testing.AllocsPerRun(100, nilIter); n != 0 {
		t.Fatalf("nil-span scan loop allocates: %v allocs/op", n)
	}
	ratio := float64(nilBest) / float64(bareBest)
	t.Logf("bare %v/batch, nil-span %v/batch, overhead %+.2f%%",
		bareBest, nilBest, (ratio-1)*100)
	if ratio > 1.25 {
		t.Fatalf("nil-tracer overhead %.2fx exceeds the backstop bound 1.25x", ratio)
	}
}

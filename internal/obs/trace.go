// Package obs is the observability layer of ArchIS: per-query
// execution tracing (span trees with monotonic timings and row
// cardinalities) and a process-wide metrics registry (counters, gauges
// and fixed-bucket lock-free latency histograms) that every execution
// layer — sqlengine, xquery, translator, relstore, wal — reports into.
//
// The design constraint is that observability must cost nothing when
// it is off: every Span method is nil-safe, so instrumented code
// threads a possibly-nil *Span and pays exactly one pointer check per
// hook when tracing is disabled (the DESIGN.md §11 overhead budget).
// Histograms are single atomic-add on the hot path and nil-safe too.
package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key/value annotation on a span (emitted SQL, table
// names, worker counts, storage-counter deltas, ...).
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one timed node of a query trace. Spans form a tree; child
// spans are created with Child and closed with End. All methods are
// safe on a nil receiver (the disabled-tracing fast path) and safe for
// concurrent use: parallel workers may add rows to a shared span or
// open sibling children concurrently.
type Span struct {
	tracer *Tracer

	name    string
	start   time.Duration // offset from the tracer's epoch
	end     time.Duration // 0 until End (rendered as "unclosed")
	ended   bool
	rowsIn  atomic.Int64
	rowsOut atomic.Int64

	mu       sync.Mutex
	attrs    []Attr
	children []*Span
}

// Tracer owns one query's span tree. Create with NewTracer, pass the
// root span down the execution layers, then Finish to obtain the
// immutable QueryTrace.
type Tracer struct {
	epoch time.Time
	root  *Span
}

// NewTracer starts a trace whose root span has the given name.
func NewTracer(name string) *Tracer {
	t := &Tracer{epoch: time.Now()}
	t.root = &Span{tracer: t, name: name}
	return t
}

// Root returns the root span (nil on a nil tracer, preserving the
// disabled fast path for code that holds a *Tracer).
func (t *Tracer) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

func (t *Tracer) since() time.Duration { return time.Since(t.epoch) }

// Child opens a sub-span. Returns nil when s is nil, so disabled
// tracing costs one pointer check and no allocation.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{tracer: s.tracer, name: name, start: s.tracer.since()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End closes the span, fixing its duration. Idempotent.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.end = s.tracer.since()
}

// SetAttr attaches a string annotation.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// SetInt attaches an integer annotation.
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.SetAttr(key, fmt.Sprintf("%d", v))
}

// AddRows accumulates row cardinalities (atomic; parallel morsel
// workers feed the same span).
func (s *Span) AddRows(in, out int64) {
	if s == nil {
		return
	}
	if in != 0 {
		s.rowsIn.Add(in)
	}
	if out != 0 {
		s.rowsOut.Add(out)
	}
}

// TraceNode is one immutable node of a finished trace.
type TraceNode struct {
	Name     string       `json:"name"`
	StartNS  int64        `json:"start_ns"`
	DurNS    int64        `json:"dur_ns"`
	RowsIn   int64        `json:"rows_in,omitempty"`
	RowsOut  int64        `json:"rows_out,omitempty"`
	Attrs    []Attr       `json:"attrs,omitempty"`
	Children []*TraceNode `json:"children,omitempty"`
}

// QueryTrace is the finished, immutable trace of one query.
type QueryTrace struct {
	Query string     `json:"query,omitempty"`
	Root  *TraceNode `json:"root"`
}

// Finish closes the root span (if still open) and renders the
// immutable trace. Returns nil on a nil tracer.
func (t *Tracer) Finish(query string) *QueryTrace {
	if t == nil {
		return nil
	}
	t.root.End()
	return &QueryTrace{Query: query, Root: render(t.root)}
}

func render(s *Span) *TraceNode {
	s.mu.Lock()
	defer s.mu.Unlock()
	end := s.end
	if !s.ended {
		end = s.tracer.since()
	}
	n := &TraceNode{
		Name:    s.name,
		StartNS: s.start.Nanoseconds(),
		DurNS:   (end - s.start).Nanoseconds(),
		RowsIn:  s.rowsIn.Load(),
		RowsOut: s.rowsOut.Load(),
		Attrs:   append([]Attr(nil), s.attrs...),
	}
	for _, c := range s.children {
		n.Children = append(n.Children, render(c))
	}
	return n
}

// JSON renders the trace as indented JSON (the archis-bench -trace
// record format).
func (qt *QueryTrace) JSON() []byte {
	b, err := json.MarshalIndent(qt, "", "  ")
	if err != nil { // unreachable: the types are marshalable
		return []byte(fmt.Sprintf("{%q:%q}", "error", err.Error()))
	}
	return b
}

// Tree renders the trace as an indented text tree with per-node
// timings, cardinalities and attributes — the EXPLAIN ANALYZE and
// `archis -trace` output.
func (qt *QueryTrace) Tree() string {
	var b strings.Builder
	writeNode(&b, qt.Root, 0)
	return b.String()
}

func writeNode(b *strings.Builder, n *TraceNode, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(n.Name)
	fmt.Fprintf(b, "  [%s]", FormatDuration(time.Duration(n.DurNS)))
	if n.RowsIn > 0 || n.RowsOut > 0 {
		fmt.Fprintf(b, " rows=%d", n.RowsOut)
		if n.RowsIn > 0 {
			fmt.Fprintf(b, " rows_in=%d", n.RowsIn)
		}
	}
	for _, a := range n.Attrs {
		fmt.Fprintf(b, " %s=%s", a.Key, a.Value)
	}
	b.WriteByte('\n')
	for _, c := range n.Children {
		writeNode(b, c, depth+1)
	}
}

// FormatDuration renders a duration rounded for humans; a fixed
// µs/ms/s ladder keeps trace output width stable.
func FormatDuration(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	}
	return fmt.Sprintf("%.3fs", d.Seconds())
}

// Find returns the first node with the given name in pre-order, or
// nil — test helper for asserting on specific plan stages.
func (qt *QueryTrace) Find(name string) *TraceNode {
	if qt == nil {
		return nil
	}
	return findNode(qt.Root, name)
}

func findNode(n *TraceNode, name string) *TraceNode {
	if n == nil {
		return nil
	}
	if n.Name == name {
		return n
	}
	for _, c := range n.Children {
		if hit := findNode(c, name); hit != nil {
			return hit
		}
	}
	return nil
}

// Attr returns the value of the named attribute ("" when absent).
func (n *TraceNode) Attr(key string) string {
	if n == nil {
		return ""
	}
	for _, a := range n.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// SortAttrs is used by tests that need deterministic attr order after
// concurrent SetAttr calls.
func (n *TraceNode) SortAttrs() {
	sort.Slice(n.Attrs, func(i, j int) bool { return n.Attrs[i].Key < n.Attrs[j].Key })
}

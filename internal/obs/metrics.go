package obs

import (
	"encoding/json"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter. Nil-safe.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Load returns the current value (0 on nil).
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous atomic value.
type Gauge struct{ v atomic.Int64 }

// Set stores the value. Nil-safe.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Load returns the current value (0 on nil).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the fixed bucket count of a Histogram: bucket i
// counts observations whose nanosecond value has bit length i, i.e.
// values in [2^(i-1), 2^i). 63 buckets cover every positive int64
// duration — sub-microsecond fsyncs up to multi-hour stalls — with no
// configuration and no locking.
const histBuckets = 63

// Histogram is a fixed-bucket, lock-free latency histogram. Observe is
// one atomic add per call and safe from any number of goroutines;
// Snapshot is wait-free and may be slightly torn (counts and sum are
// read independently), which is acceptable for monitoring output.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	max     atomic.Int64 // nanoseconds (monotonic high-water mark)
}

func bucketOf(ns int64) int {
	if ns < 0 {
		ns = 0
	}
	b := bits.Len64(uint64(ns))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// Observe records one duration. Nil-safe (the disabled path is one
// pointer check).
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := d.Nanoseconds()
	h.buckets[bucketOf(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// HistogramBucket is one non-empty bucket of a snapshot: Count
// observations with duration < UpperNS (and >= the previous bucket's
// bound).
type HistogramBucket struct {
	UpperNS int64 `json:"upper_ns"`
	Count   int64 `json:"count"`
}

// HistogramSnapshot is a point-in-time view of a histogram.
type HistogramSnapshot struct {
	Count   int64             `json:"count"`
	SumNS   int64             `json:"sum_ns"`
	MaxNS   int64             `json:"max_ns"`
	MeanNS  int64             `json:"mean_ns"`
	P50NS   int64             `json:"p50_ns"`
	P99NS   int64             `json:"p99_ns"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// Snapshot captures the histogram. Quantiles are bucket-upper-bound
// estimates (within 2× of the true value by construction).
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{Count: h.count.Load(), SumNS: h.sum.Load(), MaxNS: h.max.Load()}
	if s.Count > 0 {
		s.MeanNS = s.SumNS / s.Count
	}
	var cum int64
	p50, p99 := (s.Count+1)/2, (s.Count*99+99)/100
	for i := 0; i < histBuckets; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		upper := int64(1) << uint(i)
		s.Buckets = append(s.Buckets, HistogramBucket{UpperNS: upper, Count: n})
		prev := cum
		cum += n
		if prev < p50 && cum >= p50 {
			s.P50NS = upper
		}
		if prev < p99 && cum >= p99 {
			s.P99NS = upper
		}
	}
	return s
}

// Registry is a named collection of metrics. Counters and gauges may
// be registered as callbacks (Func variants) so existing atomic
// counters — relstore.Stats, wal.Stats — surface in the same snapshot
// without double accounting; histograms are owned by the registry.
// All methods are nil-safe so an unconfigured subsystem costs nothing.
type Registry struct {
	mu     sync.Mutex
	funcs  map[string]func() int64
	gauges map[string]func() int64
	hists  map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		funcs:  map[string]func() int64{},
		gauges: map[string]func() int64{},
		hists:  map[string]*Histogram{},
	}
}

// CounterFunc registers a monotonic counter read through fn.
func (r *Registry) CounterFunc(name string, fn func() int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.funcs[name] = fn
	r.mu.Unlock()
}

// GaugeFunc registers an instantaneous value read through fn.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.gauges[name] = fn
	r.mu.Unlock()
}

// Histogram returns the named histogram, creating it on first use.
// Returns nil on a nil registry, and the nil histogram swallows
// observations — subsystems need no configuration check.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot is one consistent-path view of every registered metric.
// (Individual callbacks read atomics, so the snapshot is per-metric
// atomic, not globally transactional — the standard monitoring
// contract.)
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every metric in the registry.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	funcs := make(map[string]func() int64, len(r.funcs))
	for k, v := range r.funcs {
		funcs[k] = v
	}
	gauges := make(map[string]func() int64, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()
	for k, fn := range funcs {
		s.Counters[k] = fn()
	}
	for k, fn := range gauges {
		s.Gauges[k] = fn()
	}
	for k, h := range hists {
		s.Histograms[k] = h.Snapshot()
	}
	return s
}

// JSON renders the snapshot as an expvar-style indented JSON document
// with deterministic key order (maps marshal sorted in encoding/json).
func (s Snapshot) JSON() []byte {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil { // unreachable
		return []byte("{}")
	}
	return b
}

// Names lists every registered metric name, sorted — test and
// discovery helper.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []string
	for k := range r.funcs {
		out = append(out, k)
	}
	for k := range r.gauges {
		out = append(out, k)
	}
	for k := range r.hists {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

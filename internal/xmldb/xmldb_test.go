package xmldb

import (
	"strings"
	"testing"

	"archis/internal/temporal"
	"archis/internal/xmltree"
)

const doc = `<employees tstart="1995-01-01" tend="9999-12-31">
<employee tstart="1995-01-01" tend="1996-12-31">
<id tstart="1995-01-01" tend="1996-12-31">1001</id>
<name tstart="1995-01-01" tend="1996-12-31">Bob</name>
<salary tstart="1995-01-01" tend="1995-05-31">60000</salary>
<salary tstart="1995-06-01" tend="1996-12-31">70000</salary>
</employee>
</employees>`

func storeDoc(t *testing.T, opts Options) *DB {
	t.Helper()
	db := New(opts)
	db.Now = temporal.MustParseDate("1997-01-01")
	if err := db.Store("employees.xml", xmltree.MustParseString(doc)); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestStoreAndQuery(t *testing.T) {
	for _, opts := range []Options{{}, {Compress: true}, {Compress: true, CacheParsed: true}} {
		db := storeDoc(t, opts)
		got, err := db.Query(`doc("employees.xml")/employees/employee[name="Bob"]/salary[2]`)
		if err != nil {
			t.Fatalf("opts %+v: %v", opts, err)
		}
		if len(got) != 1 || !strings.Contains(got.Serialize(), "70000") {
			t.Errorf("opts %+v: got %s", opts, got.Serialize())
		}
	}
}

func TestCompressionShrinksDocs(t *testing.T) {
	plain := storeDoc(t, Options{})
	comp := storeDoc(t, Options{Compress: true})
	if comp.StorageBytes() >= plain.StorageBytes() {
		t.Errorf("compressed %d >= plain %d", comp.StorageBytes(), plain.StorageBytes())
	}
}

func TestColdQueriesReloadAndDecompress(t *testing.T) {
	db := storeDoc(t, Options{Compress: true})
	_, _ = db.Query(`doc("employees.xml")/employees/employee`)
	_, _ = db.Query(`doc("employees.xml")/employees/employee`)
	st := db.Stats()
	// No cache: each query decompresses and parses again.
	if st.DocLoads != 2 || st.Decompressions != 2 {
		t.Errorf("cold stats = %+v", st)
	}
	db2 := storeDoc(t, Options{Compress: true, CacheParsed: true})
	_, _ = db2.Query(`doc("employees.xml")/employees/employee`)
	_, _ = db2.Query(`doc("employees.xml")/employees/employee`)
	if db2.Stats().DocLoads != 1 {
		t.Errorf("warm stats = %+v", db2.Stats())
	}
	db2.DropCaches()
	_, _ = db2.Query(`doc("employees.xml")/employees/employee`)
	if db2.Stats().DocLoads != 2 {
		t.Errorf("post-drop stats = %+v", db2.Stats())
	}
}

func TestMissingDocument(t *testing.T) {
	db := New(Options{})
	if _, err := db.Query(`doc("nosuch.xml")`); err == nil {
		t.Error("missing document accepted")
	}
}

func TestValueIndex(t *testing.T) {
	db := storeDoc(t, Options{CacheParsed: true})
	if err := db.BuildIndex("employees.xml", "employees/employee/name"); err != nil {
		t.Fatal(err)
	}
	nodes, ok := db.LookupValue("employees.xml", "employees/employee/name", "Bob")
	if !ok || len(nodes) != 1 {
		t.Fatalf("lookup = %v, %v", nodes, ok)
	}
	if nodes[0].Parent.Name != "employee" {
		t.Errorf("indexed node parent = %s", nodes[0].Parent.Name)
	}
	if _, ok := db.LookupValue("employees.xml", "not/indexed", "x"); ok {
		t.Error("unindexed path reported ok")
	}
	if nodes, _ := db.LookupValue("employees.xml", "employees/employee/name", "Nobody"); len(nodes) != 0 {
		t.Error("phantom match")
	}
}

func TestStoreReplacesAndInvalidates(t *testing.T) {
	db := storeDoc(t, Options{CacheParsed: true})
	_ = db.BuildIndex("employees.xml", "employees/employee/name")
	newDoc := xmltree.MustParseString(`<employees><employee><name>Zed</name></employee></employees>`)
	if err := db.Store("employees.xml", newDoc); err != nil {
		t.Fatal(err)
	}
	got, err := db.Query(`doc("employees.xml")/employees/employee/name`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(got.Serialize(), "Zed") {
		t.Errorf("stale document served: %s", got.Serialize())
	}
	if _, ok := db.LookupValue("employees.xml", "employees/employee/name", "Bob"); ok {
		t.Error("stale index served")
	}
}

// Package xmldb is the native XML DBMS baseline of the paper's
// evaluation (the Tamino stand-in): H-documents are stored whole —
// optionally zlib-compressed, as Tamino compresses documents with a
// gzip-like algorithm — and queried by direct XQuery evaluation over
// the parsed tree.
//
// The baseline reproduces the cost structure the paper measures
// against: every cold query pays whole-document decompression and
// parsing, there is no temporal clustering, and query evaluation is a
// tree walk. Path value-indexes (the paper built indexes "for all
// nodes/attributes which have values selected") accelerate exact-match
// lookups via LookupValue, but the general XQuery path still walks the
// tree, matching the behaviour the paper observed.
package xmldb

import (
	"bytes"
	"compress/zlib"
	"fmt"
	"io"
	"strings"
	"time"

	"archis/internal/temporal"
	"archis/internal/xmltree"
	"archis/internal/xquery"
)

// Options configure the store.
type Options struct {
	// Compress stores documents zlib-compressed (Tamino's default).
	Compress bool
	// CacheParsed keeps parsed trees in memory between queries. Cold
	// benchmark runs disable it (or call DropCaches).
	CacheParsed bool
}

// Stats counts the physical work the baseline performs.
type Stats struct {
	DocLoads       int64 // parse operations
	Decompressions int64
	BytesLoaded    int64
}

// DB is a document store with XQuery querying.
type DB struct {
	opts   Options
	docs   map[string][]byte
	parsed map[string]*xmltree.Node
	index  map[string]map[string]map[string][]*xmltree.Node // doc → path → value → nodes
	stats  Stats
	Now    temporal.Date
}

// New creates an empty store.
func New(opts Options) *DB {
	return &DB{
		opts:   opts,
		docs:   map[string][]byte{},
		parsed: map[string]*xmltree.Node{},
		index:  map[string]map[string]map[string][]*xmltree.Node{},
		Now:    temporal.FromTime(time.Now()),
	}
}

// Store serializes (and optionally compresses) a document under name.
func (db *DB) Store(name string, root *xmltree.Node) error {
	raw := []byte(xmltree.String(root))
	if db.opts.Compress {
		var buf bytes.Buffer
		zw := zlib.NewWriter(&buf)
		if _, err := zw.Write(raw); err != nil {
			return fmt.Errorf("xmldb: %w", err)
		}
		if err := zw.Close(); err != nil {
			return fmt.Errorf("xmldb: %w", err)
		}
		db.docs[name] = buf.Bytes()
	} else {
		db.docs[name] = raw
	}
	delete(db.parsed, name)
	delete(db.index, name)
	return nil
}

// Names lists stored documents.
func (db *DB) Names() []string {
	out := make([]string, 0, len(db.docs))
	for n := range db.docs {
		out = append(out, n)
	}
	return out
}

// StorageBytes is the physical footprint of the stored documents.
func (db *DB) StorageBytes() int {
	n := 0
	for _, d := range db.docs {
		n += len(d)
	}
	return n
}

// Stats returns the counters.
func (db *DB) Stats() Stats { return db.stats }

// ResetStats zeroes the counters.
func (db *DB) ResetStats() { db.stats = Stats{} }

// DropCaches forgets parsed trees and indexes — the cold-query state
// of the paper's methodology.
func (db *DB) DropCaches() {
	db.parsed = map[string]*xmltree.Node{}
	db.index = map[string]map[string]map[string][]*xmltree.Node{}
}

// load decompresses and parses a document (through the cache when
// enabled).
func (db *DB) load(name string) (*xmltree.Node, error) {
	if root, ok := db.parsed[name]; ok {
		return root, nil
	}
	data, ok := db.docs[name]
	if !ok {
		return nil, fmt.Errorf("xmldb: no document %q", name)
	}
	raw := data
	if db.opts.Compress {
		zr, err := zlib.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("xmldb: %w", err)
		}
		raw, err = io.ReadAll(zr)
		if err != nil {
			return nil, fmt.Errorf("xmldb: %w", err)
		}
		_ = zr.Close()
		db.stats.Decompressions++
	}
	root, err := xmltree.Parse(bytes.NewReader(raw))
	if err != nil {
		return nil, err
	}
	db.stats.DocLoads++
	db.stats.BytesLoaded += int64(len(raw))
	if db.opts.CacheParsed {
		db.parsed[name] = root
	}
	return root, nil
}

// Evaluator returns an XQuery evaluator whose doc() resolves against
// this store.
func (db *DB) Evaluator() *xquery.Evaluator {
	ev := xquery.NewEvaluator(db.load)
	ev.Now = db.Now
	return ev
}

// Query parses and evaluates an XQuery against the store.
func (db *DB) Query(q string) (xquery.Seq, error) {
	return db.Evaluator().Eval(q)
}

// BuildIndex builds a value index for a path (e.g.
// "employees/employee/name"): exact text matches resolve to the
// elements' parents' path nodes without a full tree walk.
func (db *DB) BuildIndex(doc, path string) error {
	root, err := db.load(doc)
	if err != nil {
		return err
	}
	steps := strings.Split(path, "/")
	nodes := []*xmltree.Node{root}
	if len(steps) > 0 && steps[0] == root.Name {
		steps = steps[1:]
	}
	for _, st := range steps {
		var next []*xmltree.Node
		for _, n := range nodes {
			next = append(next, n.ChildElements(st)...)
		}
		nodes = next
	}
	byValue := map[string][]*xmltree.Node{}
	for _, n := range nodes {
		byValue[n.TextContent()] = append(byValue[n.TextContent()], n)
	}
	if db.index[doc] == nil {
		db.index[doc] = map[string]map[string][]*xmltree.Node{}
	}
	db.index[doc][path] = byValue
	return nil
}

// LookupValue returns indexed nodes whose text equals value; ok is
// false when no index exists for the path.
func (db *DB) LookupValue(doc, path, value string) ([]*xmltree.Node, bool) {
	p, ok := db.index[doc]
	if !ok {
		return nil, false
	}
	byValue, ok := p[path]
	if !ok {
		return nil, false
	}
	return byValue[value], true
}

package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"archis/internal/core"
	"archis/internal/dataset"
	"archis/internal/repl"
	"archis/internal/temporal"
)

func newServedSystem(t *testing.T, cfg Config, rows int) (*core.System, *Server, *httptest.Server) {
	t.Helper()
	sys, err := core.New(core.Options{WALDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	if err := sys.Register(dataset.EmployeeSpec()); err != nil {
		t.Fatal(err)
	}
	if err := sys.AliasDoc("emp.xml", "employee"); err != nil {
		t.Fatal(err)
	}
	clock := temporal.MustParseDate("1995-01-01")
	for i := 0; i < rows; i++ {
		sys.SetClock(clock.AddDays(i))
		if _, err := sys.ExecDurable(fmt.Sprintf(
			"insert into employee values (%d, 'e%d', %d, 'Engineer', 'd01')", 1000+i, i, 40000+i)); err != nil {
			t.Fatal(err)
		}
	}
	s := New(sys, nil, cfg)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return sys, s, srv
}

func post(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	b, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func TestServeQueryExecRoundTrip(t *testing.T) {
	_, _, srv := newServedSystem(t, Config{}, 3)

	// A durable write through /exec.
	code, body := post(t, srv.URL+"/exec", request{SQL: "insert into employee values (2000, 'net', 70000, 'Architect', 'd01')"})
	if code != http.StatusOK {
		t.Fatalf("/exec: status %d (%s)", code, body)
	}
	var er response
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.LSN == 0 {
		t.Error("/exec response carries no LSN")
	}

	// Read it back over GET (interactive form).
	code, body = get(t, srv.URL+"/query?sql="+
		"select+id,+name,+salary+from+employee+where+id+=+2000")
	if code != http.StatusOK {
		t.Fatalf("/query: status %d (%s)", code, body)
	}
	var qr response
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Rows) != 1 || qr.Rows[0][1] != "net" || qr.Rows[0][2] != float64(70000) {
		t.Errorf("/query rows = %v, want one row (2000, net, 70000)", qr.Rows)
	}
	if len(qr.Columns) != 3 {
		t.Errorf("/query columns = %v", qr.Columns)
	}

	// Point-in-time read before the insert sees the old state.
	code, body = get(t, srv.URL+fmt.Sprintf(
		"/query?as_of_lsn=%d&sql=select+count(*)+from+employee", er.LSN-1))
	if code != http.StatusOK {
		t.Fatalf("/query as-of: status %d (%s)", code, body)
	}
	var ar response
	json.Unmarshal(body, &ar)
	if len(ar.Rows) != 1 || ar.Rows[0][0] != float64(3) {
		t.Errorf("as-of count = %v, want 3 (pre-insert)", ar.Rows)
	}

	// A temporal XQuery routes through the H-views.
	code, body = post(t, srv.URL+"/query", request{
		SQL: `for $e in doc("emp.xml")/employees/employee[id=2000] return $e/name`})
	if code != http.StatusOK {
		t.Fatalf("/query xquery: status %d (%s)", code, body)
	}
	var xr response
	json.Unmarshal(body, &xr)
	if len(xr.Items) != 1 || !strings.Contains(xr.Items[0], "net") {
		t.Errorf("xquery items = %v", xr.Items)
	}
}

func TestServeQueryRejectsDML(t *testing.T) {
	_, _, srv := newServedSystem(t, Config{}, 1)
	code, body := post(t, srv.URL+"/query", request{SQL: "update employee set salary = 1 where id = 1000"})
	if code != http.StatusBadRequest || !strings.Contains(string(body), "/exec") {
		t.Fatalf("/query DML: status %d (%s), want 400 pointing at /exec", code, body)
	}
}

func TestServeAdmissionControl(t *testing.T) {
	_, s, srv := newServedSystem(t, Config{MaxInFlight: 1, MaxQueue: 1, QueueWait: 30 * time.Millisecond}, 1)

	// Occupy the only execution slot.
	s.sem <- struct{}{}
	defer func() { <-s.sem }()

	// One request fits in the queue and times out waiting: 503 after
	// ~QueueWait.
	start := time.Now()
	code, body := get(t, srv.URL+"/query?sql=select+count(*)+from+employee")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("queued request: status %d (%s), want 503", code, body)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Errorf("queue-wait rejection came after %s, want ~30ms of waiting", d)
	}

	// With the queue already full, the next request is rejected
	// immediately.
	done := make(chan struct{})
	go func() {
		defer close(done)
		get(t, srv.URL+"/query?sql=select+count(*)+from+employee")
	}()
	deadline := time.Now().Add(time.Second)
	for s.queued.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("queued request never showed up")
		}
		time.Sleep(time.Millisecond)
	}
	start = time.Now()
	code, body = get(t, srv.URL+"/query?sql=select+count(*)+from+employee")
	if code != http.StatusServiceUnavailable || !strings.Contains(string(body), "queue full") {
		t.Fatalf("over-queue request: status %d (%s), want immediate 503 queue full", code, body)
	}
	if d := time.Since(start); d > 20*time.Millisecond {
		t.Errorf("queue-full rejection took %s, want immediate", d)
	}
	<-done

	if s.rejected.Load() < 2 {
		t.Errorf("rejected counter = %d, want >= 2", s.rejected.Load())
	}
}

// TestServeErrorPathsDrainPinnedReaders drives every /query failure
// mode that can have a version pinned when it aborts — parse errors,
// unknown tables, bad bitemporal parameters, statement-class
// rejections, and a deadline firing mid-join under both as_of_lsn and
// valid_as_of — then asserts the pinned-reader gauge is back at zero:
// no error return may leak a snapshot handle.
func TestServeErrorPathsDrainPinnedReaders(t *testing.T) {
	sys, _, srv := newServedSystem(t, Config{}, 120)
	lsn := sys.Stats().WALAppendedLSN

	for _, c := range []struct {
		name string
		url  string
		req  request
		want int
	}{
		{"parse error", "/query", request{SQL: "select from from employee"}, http.StatusBadRequest},
		{"unknown table", "/query", request{SQL: "select * from nope"}, http.StatusBadRequest},
		{"unknown table as-of", "/query", request{SQL: "select * from nope", AsOfLSN: lsn}, http.StatusBadRequest},
		{"bad valid_as_of", "/query", request{SQL: "select * from employee", ValidAsOf: "not-a-date"}, http.StatusBadRequest},
		{"as_of_lsn on DML", "/query", request{SQL: "update employee set salary = 1", AsOfLSN: lsn}, http.StatusBadRequest},
		{"DML on /query", "/query", request{SQL: "delete from employee"}, http.StatusBadRequest},
		{"valid_as_of on xquery", "/query", request{SQL: `for $e in doc("emp.xml")/employees/employee return $e`, ValidAsOf: "1995-01-01"}, http.StatusBadRequest},
		{"timeout mid-join", "/query", request{
			SQL: "select count(*) from employee a, employee b, employee c" +
				" where a.salary + b.salary + c.salary = 1",
			AsOfLSN:   lsn,
			ValidAsOf: "1995-01-01",
			TimeoutMS: 20,
		}, http.StatusGatewayTimeout},
	} {
		code, body := post(t, srv.URL+c.url, c.req)
		if code != c.want {
			t.Errorf("%s: status %d (%s), want %d", c.name, code, body, c.want)
		}
	}

	if n := sys.DB.Stats().PinnedReaders; n != 0 {
		t.Errorf("pinned_readers = %d after error sweep, want 0 (leaked snapshot handle)", n)
	}

	// The archive still serves good queries after the abuse.
	code, body := get(t, srv.URL+"/query?sql=select+count(*)+from+employee&valid_as_of=1995-02-01")
	if code != http.StatusOK {
		t.Fatalf("post-sweep query: status %d (%s)", code, body)
	}
}

func TestServeQueryTimeout(t *testing.T) {
	_, _, srv := newServedSystem(t, Config{}, 250)
	// A 15M-triple nested-loop join, cut off after 30ms: the engine's
	// cancellation probes must surface context.DeadlineExceeded as 504.
	code, body := post(t, srv.URL+"/query", request{
		SQL: "select count(*) from employee a, employee b, employee c" +
			" where a.salary + b.salary + c.salary = 1",
		TimeoutMS: 30,
	})
	if code != http.StatusGatewayTimeout {
		t.Fatalf("timed-out query: status %d (%s), want 504", code, body)
	}
}

func TestServeFollowerForbidsWritesAndReportsLag(t *testing.T) {
	prim, _, _ := newServedSystem(t, Config{}, 4)
	if err := prim.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	p, err := repl.NewPrimary(prim)
	if err != nil {
		t.Fatal(err)
	}
	pmux := http.NewServeMux()
	p.Attach(pmux)
	psrv := httptest.NewServer(pmux)
	defer psrv.Close()

	f, err := repl.Bootstrap(psrv.URL, t.TempDir(), repl.FollowerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Sys.Close()
	fs := New(f.Sys, f, Config{})
	fsrv := httptest.NewServer(fs.Handler())
	defer fsrv.Close()

	// Writes are rejected by the replica system itself: 403.
	code, body := post(t, fsrv.URL+"/exec", request{SQL: "insert into employee values (1, 'x', 1, 't', 'd01')"})
	if code != http.StatusForbidden {
		t.Fatalf("follower /exec: status %d (%s), want 403", code, body)
	}

	// Reads work.
	if _, err := f.PullOnce(t.Context()); err != nil {
		t.Fatal(err)
	}
	code, body = get(t, fsrv.URL+"/query?sql=select+count(*)+from+employee")
	if code != http.StatusOK {
		t.Fatalf("follower /query: status %d (%s)", code, body)
	}

	// healthz reports the follower role and lag fields.
	code, body = get(t, fsrv.URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz: status %d", code)
	}
	var h health
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Role != "follower" || h.Status != "ok" {
		t.Errorf("healthz = %+v, want follower/ok", h)
	}
	if h.AppliedLSN == 0 {
		t.Error("healthz applied_lsn = 0 on a caught-up follower")
	}

	// The metrics surface includes replication lag and admission gauges.
	_, body = get(t, fsrv.URL+"/metrics")
	for _, key := range []string{"repl.lag_lsns", "repl.lag_ns", "server.in_flight", "server.query_ns"} {
		if !strings.Contains(string(body), key) {
			t.Errorf("/metrics missing %q", key)
		}
	}
}

// Package server is the network front end over a core.System: an
// HTTP/JSON API serving SQL, temporal XQuery, point-in-time reads and
// the observability surfaces, with connection admission (a bounded
// in-flight pool plus a bounded-wait queue) and per-query timeouts
// wired into the engine's cancellation probes so a cancelled query
// stops mid-scan, releases its pinned snapshot and frees its slot
// (DESIGN.md §15.1).
//
// Endpoints:
//
//	POST /query    {"sql", "as_of_lsn", "timeout_ms"} → rows (read-only)
//	POST /exec     {"sql", "timeout_ms"}              → rows (durable write path)
//	GET  /healthz                                     → role, LSNs, lag
//	GET  /metrics                                     → full metrics JSON
//
// /query also accepts GET with ?sql=&as_of_lsn= for interactive use.
// Statements route by first keyword: SELECT/EXPLAIN run on the SQL
// engine, DML/DDL through /query is rejected (use /exec), anything
// else is evaluated as a temporal XQuery over the H-views. On a
// follower every write is rejected with 403 by the system itself.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"archis/internal/core"
	"archis/internal/obs"
	"archis/internal/relstore"
	"archis/internal/repl"
	"archis/internal/sqlengine"
	"archis/internal/temporal"
)

// Config tunes admission control and timeouts.
type Config struct {
	// MaxInFlight caps concurrently executing queries (GOMAXPROCS if
	// zero).
	MaxInFlight int
	// MaxQueue bounds how many requests may wait for a slot beyond
	// MaxInFlight (4×MaxInFlight if zero); requests past it get 503
	// immediately.
	MaxQueue int
	// QueueWait bounds how long a queued request waits for a slot
	// before 503 (1s if zero).
	QueueWait time.Duration
	// DefaultTimeout applies to queries that do not set timeout_ms
	// (0 = unbounded).
	DefaultTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4 * c.MaxInFlight
	}
	if c.QueueWait <= 0 {
		c.QueueWait = time.Second
	}
	return c
}

// Server serves one System. Follower is non-nil when the system is a
// replica fed by that follower (healthz then reports its lag).
type Server struct {
	sys *core.System
	fol *repl.Follower
	cfg Config

	sem      chan struct{}
	queued   atomic.Int64
	rejected atomic.Int64 // queue full or queue wait exceeded

	hServe *obs.Histogram // server.query_ns: served-path latency
	hQueue *obs.Histogram // server.queue_wait_ns: time spent waiting for a slot
}

// New builds a Server and registers its admission metrics on the
// system's registry.
func New(sys *core.System, fol *repl.Follower, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		sys: sys,
		fol: fol,
		cfg: cfg,
		sem: make(chan struct{}, cfg.MaxInFlight),
	}
	r := sys.Metrics()
	s.hServe = r.Histogram("server.query_ns")
	s.hQueue = r.Histogram("server.queue_wait_ns")
	r.GaugeFunc("server.in_flight", func() int64 { return int64(len(s.sem)) })
	r.GaugeFunc("server.queued", func() int64 { return s.queued.Load() })
	r.CounterFunc("server.rejected", func() int64 { return s.rejected.Load() })
	return s
}

// Attach registers the serving endpoints on mux.
func (s *Server) Attach(mux *http.ServeMux) {
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/exec", s.handleExec)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
}

// Handler returns a mux with the server's endpoints attached.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	s.Attach(mux)
	return mux
}

// request is the /query and /exec body.
type request struct {
	SQL     string `json:"sql"`
	AsOfLSN uint64 `json:"as_of_lsn,omitempty"`
	// ValidAsOf ("yyyy-mm-dd") scopes a SELECT/EXPLAIN to versions
	// valid at that date; composes with as_of_lsn for bitemporal reads.
	ValidAsOf string `json:"valid_as_of,omitempty"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
}

// response carries a SQL result or an XQuery item sequence.
type response struct {
	Columns      []string `json:"columns,omitempty"`
	Rows         [][]any  `json:"rows,omitempty"`
	RowsAffected int      `json:"rows_affected,omitempty"`
	Items        []string `json:"items,omitempty"`
	Path         string   `json:"path,omitempty"`
	LSN          uint64   `json:"lsn"`
}

var (
	errQueueFull = errors.New("server: admission queue full")
	errQueueWait = errors.New("server: timed out waiting for an execution slot")
)

// admit acquires an execution slot: immediately when one is free,
// otherwise by waiting in the bounded queue up to QueueWait. The
// returned release must be called exactly once.
func (s *Server) admit(ctx context.Context) (release func(), err error) {
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, nil
	default:
	}
	if s.queued.Add(1) > int64(s.cfg.MaxQueue) {
		s.queued.Add(-1)
		s.rejected.Add(1)
		return nil, errQueueFull
	}
	defer s.queued.Add(-1)
	start := time.Now()
	t := time.NewTimer(s.cfg.QueueWait)
	defer t.Stop()
	select {
	case s.sem <- struct{}{}:
		s.hQueue.Observe(time.Since(start))
		return func() { <-s.sem }, nil
	case <-t.C:
		s.rejected.Add(1)
		return nil, errQueueWait
	case <-ctx.Done():
		return nil, context.Cause(ctx)
	}
}

// parseRequest accepts a JSON POST body or GET query parameters.
func parseRequest(r *http.Request) (request, error) {
	var req request
	if r.Method == http.MethodGet {
		q := r.URL.Query()
		req.SQL = q.Get("sql")
		if v, err := strconv.ParseUint(q.Get("as_of_lsn"), 10, 64); err == nil {
			req.AsOfLSN = v
		}
		req.ValidAsOf = q.Get("valid_as_of")
		if v, err := strconv.ParseInt(q.Get("timeout_ms"), 10, 64); err == nil {
			req.TimeoutMS = v
		}
	} else if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return req, fmt.Errorf("bad request body: %w", err)
	}
	if req.SQL == "" {
		return req, errors.New("missing sql")
	}
	return req, nil
}

// queryCtx derives the statement context: the request's own context
// (cancelled on client disconnect) bounded by the requested or
// default timeout.
func (s *Server) queryCtx(r *http.Request, req request) (context.Context, context.CancelFunc) {
	ctx := r.Context()
	d := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		d = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if d > 0 {
		return context.WithTimeout(ctx, d)
	}
	return context.WithCancel(ctx)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	req, err := parseRequest(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	release, err := s.admit(r.Context())
	if err != nil {
		writeErr(w, err)
		return
	}
	defer release()
	ctx, cancel := s.queryCtx(r, req)
	defer cancel()

	start := time.Now()
	var opts []core.ExecOpt
	if req.AsOfLSN > 0 {
		opts = append(opts, core.AsOfTransactionTime(req.AsOfLSN))
	}
	if req.ValidAsOf != "" {
		d, perr := temporal.ParseDate(req.ValidAsOf)
		if perr != nil {
			http.Error(w, "bad valid_as_of: "+perr.Error(), http.StatusBadRequest)
			return
		}
		opts = append(opts, core.AsOfValidTime(d))
	}
	var resp *response
	switch kw := core.FirstKeyword(req.SQL); {
	case kw == "select" || kw == "explain":
		// Transaction-time and valid-time scoping both ride the option
		// list; AsOfLSN alone is the classic ReadAsOf path.
		var res *sqlengine.Result
		res, err = s.sys.ExecCtx(ctx, req.SQL, opts...)
		resp = sqlResponse(res)
	case req.AsOfLSN > 0:
		err = fmt.Errorf("server: as_of_lsn applies to SELECT/EXPLAIN only")
	case kw == "insert" || kw == "update" || kw == "delete" || kw == "create" || kw == "drop":
		err = fmt.Errorf("server: /query is read-only; send %s to /exec", kw)
	case req.ValidAsOf != "":
		// The XQuery path has its own valid-time library (vsnapshot,
		// vslice); a request-level date would silently not apply.
		err = fmt.Errorf("server: valid_as_of applies to SELECT/EXPLAIN; use vsnapshot()/vslice() in XQuery")
	default:
		// Temporal XQuery over the H-views.
		var qr *core.QueryResult
		qr, err = s.sys.QueryCtx(ctx, req.SQL)
		if err == nil {
			resp = &response{Path: string(qr.Path)}
			for _, it := range qr.Items {
				resp.Items = append(resp.Items, it.StringValue())
			}
		}
	}
	rows := 0
	if resp != nil {
		rows = len(resp.Rows) + len(resp.Items)
	}
	s.sys.ServeObserve(s.hServe, "served", req.SQL, time.Since(start), rows, err)
	if err != nil {
		writeErr(w, err)
		return
	}
	resp.LSN = s.sys.AppliedLSN()
	writeJSON(w, resp)
}

func (s *Server) handleExec(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	req, err := parseRequest(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	release, err := s.admit(r.Context())
	if err != nil {
		writeErr(w, err)
		return
	}
	defer release()
	ctx, cancel := s.queryCtx(r, req)
	defer cancel()

	start := time.Now()
	res, err := s.sys.ExecDurableCtx(ctx, req.SQL)
	rows := 0
	if res != nil {
		rows = len(res.Rows)
	}
	s.sys.ServeObserve(s.hServe, "served", req.SQL, time.Since(start), rows, err)
	if err != nil {
		writeErr(w, err)
		return
	}
	resp := sqlResponse(res)
	resp.LSN = s.sys.AppliedLSN()
	writeJSON(w, resp)
}

// health is the /healthz body.
type health struct {
	Status     string  `json:"status"`
	Role       string  `json:"role"`
	AppliedLSN uint64  `json:"applied_lsn"`
	DurableLSN uint64  `json:"durable_lsn"`
	LagLSNs    uint64  `json:"lag_lsns"`
	LagSeconds float64 `json:"lag_seconds"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := health{Status: "ok", Role: "primary"}
	ws := s.sys.WALStats()
	h.AppliedLSN = ws.AppendedLSN
	h.DurableLSN = ws.DurableLSN
	if s.sys.Replica() {
		h.Role = "follower"
	}
	if s.fol != nil {
		lsns, behind := s.fol.Lag()
		h.LagLSNs = lsns
		h.LagSeconds = behind.Seconds()
		if err := s.fol.Err(); err != nil {
			h.Status = "replication stopped: " + err.Error()
		}
	}
	writeJSON(w, h)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.Write(s.sys.MetricsJSON())
}

// sqlResponse converts an engine result to the wire shape.
func sqlResponse(res *sqlengine.Result) *response {
	if res == nil {
		return &response{}
	}
	out := &response{Columns: res.Columns, RowsAffected: res.RowsAffected}
	out.Rows = make([][]any, len(res.Rows))
	for i, row := range res.Rows {
		vals := make([]any, len(row))
		for j, v := range row {
			vals[j] = renderValue(v)
		}
		out.Rows[i] = vals
	}
	return out
}

// renderValue maps a storage value to its JSON form: numbers stay
// numbers, booleans stay booleans, NULL is null, and dates, strings,
// bytes and XML fragments serialize through their text form.
func renderValue(v relstore.Value) any {
	switch v.Kind {
	case relstore.TypeNull:
		return nil
	case relstore.TypeInt:
		return v.I
	case relstore.TypeFloat:
		return v.F
	case relstore.TypeBool:
		return v.AsBool()
	default:
		return v.Text()
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// writeErr maps an execution error to a status: read-only rejections
// are 403, admission pressure 503, timeouts 504, everything else 400.
func writeErr(w http.ResponseWriter, err error) {
	code := http.StatusBadRequest
	switch {
	case errors.Is(err, core.ErrReadOnly):
		code = http.StatusForbidden
	case errors.Is(err, errQueueFull) || errors.Is(err, errQueueWait):
		code = http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		code = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		code = http.StatusServiceUnavailable
	}
	http.Error(w, err.Error(), code)
}

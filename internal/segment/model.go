package segment

// Analytic models from Section 6.2 of the paper.

// StorageBound returns the worst-case ratio Nseg/Nnoseg of tuples
// stored with segmentation versus without (Equation 3):
//
//	Nseg/Nnoseg ≤ 1 / (1 - Umin)
func StorageBound(umin float64) float64 {
	return 1 / (1 - umin)
}

// SegmentLength estimates the length (in time units) of a segment from
// the update mix (Equation 4):
//
//	Tseg = N0(1-Umin) / (Umin·Rupd - (1-Umin)·Rins + Rdel)
//
// where N0 is the live-tuple count at segment start and Rins/Rdel/Rupd
// are per-time-unit rates. A non-positive denominator means the
// segment never fills (usefulness never drops below Umin) and -1 is
// returned.
func SegmentLength(n0 float64, umin, rIns, rDel, rUpd float64) float64 {
	den := umin*rUpd - (1-umin)*rIns + rDel
	if den <= 0 {
		return -1
	}
	return n0 * (1 - umin) / den
}

// Package segment implements the paper's usefulness-based temporal
// clustering (Section 6): each attribute-history table is partitioned
// into temporal segments. Updates hit the live segment; when its
// usefulness U = Nlive/Nall drops below Umin, all of its tuples are
// archived into a frozen segment sorted by id, live tuples are carried
// into a fresh live segment, and the old live segment is dropped.
//
// Frozen segments give (a) global temporal clustering — a snapshot
// query touches exactly one segment, pruned physically via the zone
// maps on the segno column — and (b) immutable units that BlockZIP can
// compress.
package segment

import (
	"fmt"
	"sort"
	"sync"

	"archis/internal/htable"
	"archis/internal/relstore"
	"archis/internal/sqlengine"
	"archis/internal/temporal"
)

// DefaultMinSegmentRows is the minimum live-segment population before
// usefulness triggers archiving (prevents degenerate tiny segments).
const DefaultMinSegmentRows = 1024

// Config tunes a clustered store.
type Config struct {
	// Umin is the minimum tolerable usefulness (paper Section 6.1).
	Umin float64
	// MinSegmentRows gates archiving; DefaultMinSegmentRows if zero.
	MinSegmentRows int
	// Clock supplies the archive timestamp for segment boundaries.
	Clock func() temporal.Date
}

// Store is a usefulness-clustered attribute store. It satisfies
// htable.AttrStore.
//
// Reads (Scan, ScanHistory, Segments, SegmentsFor, Usefulness, …) may
// run concurrently; mu makes their view of the segment metadata
// consistent. Writes (Append, Close, Rewrite, ArchiveNow,
// RebuildLiveMap) take the write lock and additionally require that no
// other goroutine touches the underlying tables, per the relstore
// writer-exclusivity rule.
type Store struct {
	table *relstore.Table // (segno, id, value, tstart, tend[, vstart, vend])
	dir   *relstore.Table // (segno, segstart, segend)
	cfg   Config

	// hasValid reports whether the attribute table carries the
	// bitemporal vstart/vend pair; legacy tables opened without it
	// accept only default valid intervals and synthesize them on scans.
	hasValid bool

	mu        sync.RWMutex
	liveSeg   int64
	liveStart temporal.Date
	nall      int
	nlive     int
	live      map[int64]relstore.RID // id → live row in live segment

	archives int // count of archive operations, for tests/benches
}

// DirTableName names the segment directory for an attribute table.
func DirTableName(attrTable string) string { return attrTable + "_seg" }

// NewFactory returns an htable.StoreFactory producing clustered
// stores.
func NewFactory(cfg Config) htable.StoreFactory {
	return func(db *relstore.Database, schema relstore.Schema) (htable.AttrStore, error) {
		return NewStore(db, schema, cfg)
	}
}

// NewStore creates the segmented attribute table
// (segno, id, value, tstart, tend) plus its segment directory.
func NewStore(db *relstore.Database, schema relstore.Schema, cfg Config) (*Store, error) {
	if cfg.Umin <= 0 || cfg.Umin >= 1 {
		return nil, fmt.Errorf("segment: Umin must be in (0,1), got %v", cfg.Umin)
	}
	if cfg.Clock == nil {
		return nil, fmt.Errorf("segment: Config.Clock is required")
	}
	if cfg.MinSegmentRows == 0 {
		cfg.MinSegmentRows = DefaultMinSegmentRows
	}
	cols := append([]relstore.Column{relstore.Col("segno", relstore.TypeInt)}, schema.Columns...)
	t, err := db.CreateTable(relstore.NewSchema(schema.Name, cols...))
	if err != nil {
		return nil, err
	}
	hasValid := schema.ColumnIndex("vstart") >= 0 && schema.ColumnIndex("vend") >= 0
	dir, err := db.CreateTable(relstore.NewSchema(DirTableName(schema.Name),
		relstore.Col("segno", relstore.TypeInt),
		relstore.Col("segstart", relstore.TypeDate),
		relstore.Col("segend", relstore.TypeDate)))
	if err != nil {
		return nil, err
	}
	return &Store{
		table:     t,
		dir:       dir,
		cfg:       cfg,
		hasValid:  hasValid,
		liveSeg:   1,
		liveStart: cfg.Clock(),
		live:      map[int64]relstore.RID{},
	}, nil
}

// TableName returns the attribute table name.
func (s *Store) TableName() string { return s.table.Name() }

// Table exposes the underlying relational table (for compression and
// benchmarks).
func (s *Store) Table() *relstore.Table { return s.table }

// LiveSegment returns the live segment number.
func (s *Store) LiveSegment() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.liveSeg
}

// Archives returns how many archive operations have run.
func (s *Store) Archives() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.archives
}

// ArchivableRows reports how many dead (closed) rows the live segment
// holds — the rows an archive operation would move out of the live
// path. 0 means the live segment is all current versions (usefulness
// 1.0) and archiving would only churn carried copies: the early-exit
// probe core.Compact uses to skip the write path entirely.
func (s *Store) ArchivableRows() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.nall - s.nlive
}

// Usefulness returns the live segment's current U = Nlive/Nall.
func (s *Store) Usefulness() float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.usefulness()
}

func (s *Store) usefulness() float64 {
	if s.nall == 0 {
		return 1
	}
	return float64(s.nlive) / float64(s.nall)
}

// Append implements htable.AttrStore.
func (s *Store) Append(id int64, value relstore.Value, start temporal.Date, valid temporal.Interval) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.live[id]; exists {
		return fmt.Errorf("segment: %s: id %d already live", s.table.Name(), id)
	}
	// Until the first archive the segment interval must start at the
	// earliest data time, not at store-creation time — archives may be
	// loaded with a clock set in the past.
	if s.archives == 0 && start < s.liveStart {
		s.liveStart = start
	}
	row := relstore.Row{
		relstore.Int(s.liveSeg), relstore.Int(id), value,
		relstore.DateV(start), relstore.DateV(temporal.Forever)}
	if s.hasValid {
		row = append(row, relstore.DateV(valid.Start), relstore.DateV(valid.End))
	} else if valid != htable.DefaultValid(start) {
		return fmt.Errorf("segment: %s: legacy table has no valid-time columns; only the default valid interval is supported", s.table.Name())
	}
	rid, err := s.table.Insert(row)
	if err != nil {
		return err
	}
	s.live[id] = rid
	s.nall++
	s.nlive++
	return nil
}

// Close implements htable.AttrStore.
func (s *Store) Close(id int64, end temporal.Date) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	rid, ok := s.live[id]
	if !ok {
		return nil
	}
	row, liveRow, err := s.table.Get(rid)
	if err != nil {
		return err
	}
	if !liveRow {
		return fmt.Errorf("segment: %s: live map points at dead row for id %d", s.table.Name(), id)
	}
	updated := row.Clone()
	if end < updated[3].Date() {
		end = updated[3].Date()
	}
	updated[4] = relstore.DateV(end)
	if err := s.table.Update(rid, updated); err != nil {
		return err
	}
	delete(s.live, id)
	s.nlive--
	return s.maybeArchive()
}

// Rewrite implements htable.AttrStore.
func (s *Store) Rewrite(id int64, value relstore.Value, valid temporal.Interval) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	rid, ok := s.live[id]
	if !ok {
		return fmt.Errorf("segment: %s: no live version for id %d", s.table.Name(), id)
	}
	row, _, err := s.table.Get(rid)
	if err != nil {
		return err
	}
	updated := row.Clone()
	updated[2] = value
	if s.hasValid {
		updated[5] = relstore.DateV(valid.Start)
		updated[6] = relstore.DateV(valid.End)
	} else if valid != htable.DefaultValid(row[3].Date()) {
		return fmt.Errorf("segment: %s: legacy table has no valid-time columns; only the default valid interval is supported", s.table.Name())
	}
	return s.table.Update(rid, updated)
}

func (s *Store) maybeArchive() error {
	if s.nall < s.cfg.MinSegmentRows || s.usefulness() >= s.cfg.Umin {
		return nil
	}
	return s.archiveNow()
}

// ArchiveNow performs the Section 6.1 archive operation immediately:
// the live segment's tuples are frozen (sorted by id), live tuples are
// copied into a fresh live segment, and the old live segment is
// dropped.
func (s *Store) ArchiveNow() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.archiveNow()
}

// archiveNow is ArchiveNow with s.mu already held.
func (s *Store) archiveNow() error {
	now := s.cfg.Clock()

	// Collect the live segment.
	var all []relstore.Row
	err := s.table.ScanBorrow(
		[]relstore.ZoneBound{{Col: 0, Op: "=", Bound: s.liveSeg}},
		func(_ relstore.RID, row relstore.Row) bool {
			if row[0].I == s.liveSeg {
				all = append(all, row.Clone())
			}
			return true
		})
	if err != nil {
		return err
	}

	// Steps 1-2: allocate the frozen segment (it keeps the live
	// segment's number) and record its interval.
	if _, err := s.dir.Insert(relstore.Row{
		relstore.Int(s.liveSeg), relstore.DateV(s.liveStart), relstore.DateV(now)}); err != nil {
		return err
	}

	// Step 3: freeze all tuples sorted by id.
	sort.SliceStable(all, func(i, j int) bool { return all[i][1].I < all[j][1].I })

	// Drop the old live rows, then re-insert frozen + new live copies.
	oldLive := s.liveSeg
	newLive := s.liveSeg + 1
	for id := range s.live {
		delete(s.live, id)
	}
	// Tombstone every old live-segment row.
	var rids []relstore.RID
	err = s.table.ScanBorrow(
		[]relstore.ZoneBound{{Col: 0, Op: "=", Bound: oldLive}},
		func(rid relstore.RID, row relstore.Row) bool {
			if row[0].I == oldLive {
				rids = append(rids, rid)
			}
			return true
		})
	if err != nil {
		return err
	}
	for _, rid := range rids {
		if err := s.table.Delete(rid); err != nil {
			return err
		}
	}
	for _, row := range all {
		frozen := row.Clone()
		frozen[0] = relstore.Int(oldLive)
		if _, err := s.table.Insert(frozen); err != nil {
			return err
		}
	}
	// Step 4: carry live tuples into the new live segment.
	s.nall, s.nlive = 0, 0
	for _, row := range all {
		if !row[4].Date().IsForever() {
			continue
		}
		carried := row.Clone()
		carried[0] = relstore.Int(newLive)
		rid, err := s.table.Insert(carried)
		if err != nil {
			return err
		}
		s.live[row[1].I] = rid
		s.nall++
		s.nlive++
	}
	s.liveSeg = newLive
	s.liveStart = now.AddDays(1)
	s.archives++

	// Reclaim the dropped segment's space and re-cluster physically;
	// RIDs change, so rebuild the live map.
	if err := s.table.Compact(); err != nil {
		return err
	}
	s.live = map[int64]relstore.RID{}
	return s.table.ScanBorrow(
		[]relstore.ZoneBound{{Col: 0, Op: "=", Bound: s.liveSeg}},
		func(rid relstore.RID, row relstore.Row) bool {
			if row[0].I == s.liveSeg && row[4].Date().IsForever() {
				s.live[row[1].I] = rid
			}
			return true
		})
}

// RebuildLiveMap re-scans the live segment to refresh the id→RID map
// after an external pass (e.g. compression) compacted the table.
func (s *Store) RebuildLiveMap() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.live = map[int64]relstore.RID{}
	return s.table.ScanBorrow(
		[]relstore.ZoneBound{{Col: 0, Op: "=", Bound: s.liveSeg}},
		func(rid relstore.RID, row relstore.Row) bool {
			if row[0].I == s.liveSeg && row[4].Date().IsForever() {
				s.live[row[1].I] = rid
			}
			return true
		})
}

// ScanHistory implements htable.AttrStore: logical versions are
// deduplicated across segment copies, preferring the most recent
// segment (whose tend is authoritative).
func (s *Store) ScanHistory(fn func(id int64, value relstore.Value, start, end temporal.Date, valid temporal.Interval) bool) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	type rec struct {
		segno int64
		id    int64
		value relstore.Value
		start temporal.Date
		end   temporal.Date
		valid temporal.Interval
	}
	var all []rec
	err := s.table.ScanBorrow(nil, func(_ relstore.RID, row relstore.Row) bool {
		valid := htable.DefaultValid(row[3].Date())
		if len(row) >= 7 {
			valid = temporal.Interval{Start: row[5].Date(), End: row[6].Date()}
		}
		all = append(all, rec{row[0].I, row[1].I, row[2], row[3].Date(), row[4].Date(), valid})
		return true
	})
	if err != nil {
		return err
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].segno > all[j].segno })
	type vkey struct {
		id    int64
		start temporal.Date
	}
	seen := map[vkey]bool{}
	for _, r := range all {
		k := vkey{r.id, r.start}
		if seen[k] {
			continue
		}
		seen[k] = true
		if !fn(r.id, r.value, r.start, r.end, r.valid) {
			return nil
		}
	}
	return nil
}

// SegmentInterval describes one frozen segment.
type SegmentInterval struct {
	SegNo int64
	Start temporal.Date
	End   temporal.Date
}

// Segments lists the frozen segments in order.
func (s *Store) Segments() ([]SegmentInterval, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.segments()
}

// segments is Segments with s.mu already held (read or write).
func (s *Store) segments() ([]SegmentInterval, error) {
	var out []SegmentInterval
	err := s.dir.ScanBorrow(nil, func(_ relstore.RID, row relstore.Row) bool {
		out = append(out, SegmentInterval{SegNo: row[0].I, Start: row[1].Date(), End: row[2].Date()})
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].SegNo < out[j].SegNo })
	return out, err
}

// SegmentsFor returns the segment numbers a query over [lo, hi] must
// touch — the Section 6.3 query-mapping step. The live segment is
// included when the range reaches past the last frozen segment.
func (s *Store) SegmentsFor(lo, hi temporal.Date) ([]int64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	segs, err := s.segments()
	if err != nil {
		return nil, err
	}
	var out []int64
	for _, sg := range segs {
		if lo <= sg.End && sg.Start <= hi {
			out = append(out, sg.SegNo)
		}
	}
	if hi >= s.liveStart || len(segs) == 0 {
		out = append(out, s.liveSeg)
	}
	return out, nil
}

// Schema implements sqlengine.VirtualTable.
func (s *Store) Schema() relstore.Schema { return s.table.Schema() }

// EstimateScan implements the sqlengine planner's ScanEstimator: the
// pushed-down segment range is rewritten into zone bounds exactly as
// Scan does, then the base table's zone-map estimate answers. Costs
// O(pages), no page decode.
func (s *Store) EstimateScan(bounds []relstore.ZoneBound) relstore.ScanEstimate {
	s.mu.RLock()
	defer s.mu.RUnlock()
	lo, hi := int64(1), s.liveSeg
	for _, zb := range bounds {
		switch {
		case zb.Col == 0 && zb.Op == "=":
			lo, hi = zb.Bound, zb.Bound
		case zb.Col == 0 && zb.Op == ">=" && zb.Bound > lo:
			lo = zb.Bound
		case zb.Col == 0 && zb.Op == "<=" && zb.Bound < hi:
			hi = zb.Bound
		}
	}
	segBounds := bounds
	if lo > 1 || hi < s.liveSeg {
		segBounds = append([]relstore.ZoneBound{
			{Col: 0, Op: ">=", Bound: lo},
			{Col: 0, Op: "<=", Bound: hi},
		}, bounds...)
	}
	return s.table.EstimateScan(segBounds)
}

// Scan implements sqlengine.VirtualTable with logical-version
// semantics: segments are scanned newest-first and redundant copies of
// a version (same id and tstart, carried across archive operations)
// are suppressed, so the newest copy — whose tend is authoritative —
// wins. Pushed-down bounds on segno (col 0) restrict the segment range
// (Section 6.3 query mapping); an id equality bound (col 1) uses the
// base table's id index when one exists.
func (s *Store) Scan(bounds []relstore.ZoneBound, fn func(relstore.Row) bool) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	lo, hi := int64(1), s.liveSeg
	var idEq *int64
	for _, zb := range bounds {
		switch {
		case zb.Col == 0 && zb.Op == "=":
			lo, hi = zb.Bound, zb.Bound
		case zb.Col == 0 && (zb.Op == ">=") && zb.Bound > lo:
			lo = zb.Bound
		case zb.Col == 0 && (zb.Op == "<=") && zb.Bound < hi:
			hi = zb.Bound
		case zb.Col == 1 && zb.Op == "=":
			v := zb.Bound
			idEq = &v
		}
	}
	// Deduplication rule (exact for the contiguous segment ranges this
	// store produces): a tuple that was live at archive time is copied
	// into the next segment, keeping tend = forever in the frozen one.
	// So within a scanned range [lo, hi], a forever-tend row in any
	// segment below hi is a stale copy whose authoritative version is
	// in a later scanned segment — skip it. No hashing needed.
	isStale := func(row relstore.Row) bool {
		return row[0].I < hi && row[4].Date().IsForever()
	}

	// Index fast path for single-object queries (the Q1/Q3 shape).
	// Rows are borrowed (VirtualTable contract), so the probe loop
	// allocates nothing per row.
	if idEq != nil {
		if ix := s.table.IndexOn(1); ix != nil {
			var rows []relstore.Row
			for _, rid := range ix.Lookup([]relstore.Value{relstore.Int(*idEq)}) {
				row, live, err := s.table.GetBorrow(rid)
				if err != nil {
					return err
				}
				if !live || row[0].I < lo || row[0].I > hi || isStale(row) {
					continue
				}
				rows = append(rows, row)
			}
			sort.SliceStable(rows, func(i, j int) bool { return rows[i][0].I > rows[j][0].I })
			for _, row := range rows {
				if !fn(row) {
					return nil
				}
			}
			return nil
		}
	}

	segBounds := bounds
	if lo > 1 || hi < s.liveSeg {
		segBounds = append([]relstore.ZoneBound{
			{Col: 0, Op: ">=", Bound: lo},
			{Col: 0, Op: "<=", Bound: hi},
		}, bounds...)
	}
	stopped := false
	err := s.table.ScanBorrow(segBounds, func(_ relstore.RID, row relstore.Row) bool {
		if row[0].I < lo || row[0].I > hi || isStale(row) {
			return true
		}
		if idEq != nil && row[1].I != *idEq {
			return true
		}
		if !fn(row) {
			stopped = true
			return false
		}
		return true
	})
	if err != nil {
		return err
	}
	_ = stopped
	return nil
}

// ScanMorsels implements relstore.MorselSource with the same
// logical-version semantics as Scan: the segment range, id equality
// and staleness rule are captured under the read lock, then the base
// table's page morsels are wrapped with that filter, so a clustered
// table parallelizes across its archived segments. The morsels run
// after this call returns, which is safe under the
// readers-concurrent / writers-exclusive model: no writer may change
// the segment metadata while a query executes.
func (s *Store) ScanMorsels(bounds []relstore.ZoneBound) ([]relstore.MorselFunc, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	lo, hi := int64(1), s.liveSeg
	var idEq *int64
	for _, zb := range bounds {
		switch {
		case zb.Col == 0 && zb.Op == "=":
			lo, hi = zb.Bound, zb.Bound
		case zb.Col == 0 && (zb.Op == ">=") && zb.Bound > lo:
			lo = zb.Bound
		case zb.Col == 0 && (zb.Op == "<=") && zb.Bound < hi:
			hi = zb.Bound
		case zb.Col == 1 && zb.Op == "=":
			v := zb.Bound
			idEq = &v
		}
	}
	isStale := func(row relstore.Row) bool {
		return row[0].I < hi && row[4].Date().IsForever()
	}

	// Single-object shape: one morsel running the index probe — no
	// point fanning out a handful of versions.
	if idEq != nil {
		if ix := s.table.IndexOn(1); ix != nil {
			table := s.table
			id := *idEq
			return []relstore.MorselFunc{func(borrow bool, fn func(relstore.Row) bool) (bool, error) {
				var rows []relstore.Row
				for _, rid := range ix.Lookup([]relstore.Value{relstore.Int(id)}) {
					row, live, err := table.Get(rid)
					if err != nil {
						return false, err
					}
					if !live || row[0].I < lo || row[0].I > hi || isStale(row) {
						continue
					}
					rows = append(rows, row)
				}
				sort.SliceStable(rows, func(i, j int) bool { return rows[i][0].I > rows[j][0].I })
				for _, row := range rows {
					if !fn(row) {
						return true, nil
					}
				}
				return false, nil
			}}, nil
		}
	}

	segBounds := bounds
	if lo > 1 || hi < s.liveSeg {
		segBounds = append([]relstore.ZoneBound{
			{Col: 0, Op: ">=", Bound: lo},
			{Col: 0, Op: "<=", Bound: hi},
		}, bounds...)
	}
	base, err := s.table.ScanMorsels(segBounds)
	if err != nil {
		return nil, err
	}
	out := make([]relstore.MorselFunc, len(base))
	for i, m := range base {
		m := m
		out[i] = func(borrow bool, fn func(relstore.Row) bool) (bool, error) {
			return m(borrow, func(row relstore.Row) bool {
				if row[0].I < lo || row[0].I > hi || isStale(row) {
					return true
				}
				if idEq != nil && row[1].I != *idEq {
					return true
				}
				return fn(row)
			})
		}
	}
	return out, nil
}

// BindSnapshot implements sqlengine.SnapshotBinder: it returns a
// read-only view of this store over a pinned relstore snapshot. The
// view scans the snapshot's frozen copies of the attribute table and
// segment directory; the live-segment metadata is re-derived from the
// frozen directory (archiveNow keeps directory and live counter in
// lockstep inside one critical section, so the derivation is exact for
// any published version). Reader methods never consult the live map,
// which stays nil in the view.
func (s *Store) BindSnapshot(sn *relstore.Snapshot) sqlengine.VirtualTable {
	t, okT := sn.Table(s.table.Name())
	dir, okD := sn.Table(s.dir.Name())
	if !okT || !okD {
		// Tables created after the pinned version; the caller's query
		// would fail either way, so serve the live view.
		return s
	}
	b := &Store{table: t, dir: dir, cfg: s.cfg, hasValid: s.hasValid, liveSeg: 1}
	if segs, err := b.segments(); err == nil && len(segs) > 0 {
		last := segs[len(segs)-1]
		b.liveSeg = last.SegNo + 1
		b.liveStart = last.End.AddDays(1)
	}
	return b
}

// SegmentCount returns frozen segments + the live one.
func (s *Store) SegmentCount() (int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	segs, err := s.segments()
	if err != nil {
		return 0, err
	}
	return len(segs) + 1, nil
}

package segment

import (
	"math"
	"testing"

	"archis/internal/htable"
	"archis/internal/relstore"
	"archis/internal/temporal"
)

func attrSchema() relstore.Schema {
	return relstore.NewSchema("employee_salary",
		relstore.Col("id", relstore.TypeInt),
		relstore.Col("salary", relstore.TypeInt),
		relstore.Col("tstart", relstore.TypeDate),
		relstore.Col("tend", relstore.TypeDate))
}

type testClock struct{ d temporal.Date }

func (c *testClock) now() temporal.Date { return c.d }

func newTestStore(t *testing.T, umin float64, minRows int) (*Store, *testClock, *relstore.Database) {
	t.Helper()
	db := relstore.NewDatabase()
	clock := &testClock{d: temporal.MustParseDate("1990-01-01")}
	s, err := NewStore(db, attrSchema(), Config{Umin: umin, MinSegmentRows: minRows, Clock: clock.now})
	if err != nil {
		t.Fatal(err)
	}
	return s, clock, db
}

func TestConfigValidation(t *testing.T) {
	db := relstore.NewDatabase()
	if _, err := NewStore(db, attrSchema(), Config{Umin: 0, Clock: func() temporal.Date { return 0 }}); err == nil {
		t.Error("Umin=0 accepted")
	}
	if _, err := NewStore(db, attrSchema(), Config{Umin: 1.5, Clock: func() temporal.Date { return 0 }}); err == nil {
		t.Error("Umin>1 accepted")
	}
	if _, err := NewStore(db, attrSchema(), Config{Umin: 0.4}); err == nil {
		t.Error("missing clock accepted")
	}
}

func TestAppendCloseBasics(t *testing.T) {
	s, clock, _ := newTestStore(t, 0.4, 100000)
	for i := int64(0); i < 10; i++ {
		if err := s.Append(i, relstore.Int(100+i), clock.d, htable.DefaultValid(clock.d)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Usefulness() != 1 {
		t.Errorf("U = %v", s.Usefulness())
	}
	clock.d = clock.d.AddDays(30)
	if err := s.Close(3, clock.d); err != nil {
		t.Fatal(err)
	}
	if got := s.Usefulness(); math.Abs(got-0.9) > 1e-9 {
		t.Errorf("U after close = %v", got)
	}
	// Closing an id with no live version is a no-op.
	if err := s.Close(999, clock.d); err != nil {
		t.Fatal(err)
	}
	// Re-append after close works.
	if err := s.Append(3, relstore.Int(200), clock.d.AddDays(1), htable.DefaultValid(clock.d.AddDays(1))); err != nil {
		t.Fatal(err)
	}
	// Duplicate live append fails.
	if err := s.Append(3, relstore.Int(300), clock.d, htable.DefaultValid(clock.d)); err == nil {
		t.Error("duplicate live append accepted")
	}
}

// simulateUpdates runs rounds of salary changes over n employees and
// returns the store.
func simulateUpdates(t *testing.T, s *Store, clock *testClock, n, rounds int) {
	t.Helper()
	day := clock.d
	for i := int64(0); i < int64(n); i++ {
		if err := s.Append(i, relstore.Int(1000), day, htable.DefaultValid(day)); err != nil {
			t.Fatal(err)
		}
	}
	for r := 0; r < rounds; r++ {
		day = day.AddDays(30)
		clock.d = day
		for i := int64(0); i < int64(n); i++ {
			if err := s.Close(i, day.AddDays(-1)); err != nil {
				t.Fatal(err)
			}
			if err := s.Append(i, relstore.Int(int64(1000+r)), day, htable.DefaultValid(day)); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestUsefulnessTriggersArchive(t *testing.T) {
	s, clock, _ := newTestStore(t, 0.4, 100)
	simulateUpdates(t, s, clock, 100, 5)
	if s.Archives() == 0 {
		t.Fatal("no archive operations happened")
	}
	segs, err := s.Segments()
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != s.Archives() {
		t.Errorf("directory has %d segments, %d archives", len(segs), s.Archives())
	}
	// Segment intervals are ordered and non-overlapping.
	for i := 1; i < len(segs); i++ {
		if segs[i].Start <= segs[i-1].End {
			t.Errorf("segments overlap: %v then %v", segs[i-1], segs[i])
		}
	}
	// Archiving keeps the live segment's usefulness at or above Umin.
	if s.Usefulness() < 0.4 {
		t.Errorf("post-archive U = %v, below Umin", s.Usefulness())
	}
}

func TestHistoryPreservedAcrossArchives(t *testing.T) {
	s, clock, _ := newTestStore(t, 0.4, 50)
	n, rounds := 50, 6
	simulateUpdates(t, s, clock, n, rounds)
	if s.Archives() == 0 {
		t.Fatal("expected archives")
	}
	// Every employee must have exactly rounds+1 logical versions with
	// contiguous intervals.
	versions := map[int64][]temporal.Interval{}
	vals := map[int64][]int64{}
	err := s.ScanHistory(func(id int64, v relstore.Value, start, end temporal.Date, _ temporal.Interval) bool {
		versions[id] = append(versions[id], temporal.Interval{Start: start, End: end})
		vals[id] = append(vals[id], v.I)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(versions) != n {
		t.Fatalf("ids = %d", len(versions))
	}
	for id, ivs := range versions {
		if len(ivs) != rounds+1 {
			t.Fatalf("id %d has %d versions, want %d", id, len(ivs), rounds+1)
		}
		merged := temporal.CoalesceIntervals(ivs)
		if len(merged) != 1 {
			t.Errorf("id %d history not contiguous: %v", id, ivs)
		}
		if !merged[0].IsCurrent() {
			t.Errorf("id %d lost its live version", id)
		}
	}
	_ = vals
}

func TestSnapshotCorrectAfterArchive(t *testing.T) {
	s, clock, _ := newTestStore(t, 0.4, 50)
	simulateUpdates(t, s, clock, 50, 6)
	// Snapshot in the middle of round 3 (day 30*3+10): salary should
	// be 1000+2 for everyone.
	at := temporal.MustParseDate("1990-01-01").AddDays(30*3 + 10)
	segs, err := s.SegmentsFor(at, at)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("snapshot should touch one segment, got %v", segs)
	}
	count := 0
	err = s.Table().Scan(
		[]relstore.ZoneBound{{Col: 0, Op: "=", Bound: segs[0]}},
		func(_ relstore.RID, row relstore.Row) bool {
			if row[0].I == segs[0] && row[3].Date() <= at && at <= row[4].Date() {
				if row[2].I != 1002 {
					t.Fatalf("wrong salary at snapshot: %v", row)
				}
				count++
			}
			return true
		})
	if err != nil {
		t.Fatal(err)
	}
	if count != 50 {
		t.Errorf("snapshot rows = %d", count)
	}
}

func TestSegmentPruningSavesReads(t *testing.T) {
	s, clock, db := newTestStore(t, 0.4, 200)
	simulateUpdates(t, s, clock, 200, 10)
	if s.Archives() < 2 {
		t.Fatalf("want >=2 archives, got %d", s.Archives())
	}
	at := temporal.MustParseDate("1990-02-15")
	segs, _ := s.SegmentsFor(at, at)
	db.DropCaches()
	db.ResetStats()
	_ = s.Table().Scan(
		[]relstore.ZoneBound{{Col: 0, Op: "=", Bound: segs[0]}},
		func(_ relstore.RID, _ relstore.Row) bool { return true })
	pruned := db.Stats()
	db.DropCaches()
	db.ResetStats()
	_ = s.Table().Scan(nil, func(_ relstore.RID, _ relstore.Row) bool { return true })
	full := db.Stats()
	if pruned.BlockReads >= full.BlockReads {
		t.Errorf("pruned scan read %d blocks, full scan %d", pruned.BlockReads, full.BlockReads)
	}
	if pruned.PagesSkipped == 0 {
		t.Error("no pages skipped")
	}
}

func TestStorageBoundHolds(t *testing.T) {
	for _, umin := range []float64{0.2, 0.26, 0.36, 0.4} {
		s, clock, _ := newTestStore(t, umin, 100)
		n, rounds := 100, 12
		simulateUpdates(t, s, clock, n, rounds)
		noSeg := n * (rounds + 1) // logical version count
		total := s.Table().LiveRows()
		ratio := float64(total) / float64(noSeg)
		bound := StorageBound(umin)
		// Equation 3 bounds the ratio of archived-segment tuples; the
		// carried live copies add at most one extra copy of the live
		// set, so allow that slack.
		slack := float64(n) / float64(noSeg)
		if ratio > bound+slack+1e-9 {
			t.Errorf("Umin=%v: ratio %.3f exceeds bound %.3f (+%.3f)", umin, ratio, bound, slack)
		}
		// Lower Umin must not produce more segments than higher Umin
		// under the same workload (checked loosely via count).
	}
}

func TestMoreSegmentsWithHigherUmin(t *testing.T) {
	counts := map[float64]int{}
	for _, umin := range []float64{0.2, 0.4} {
		s, clock, _ := newTestStore(t, umin, 100)
		simulateUpdates(t, s, clock, 100, 12)
		counts[umin] = s.Archives()
	}
	if counts[0.4] <= counts[0.2] {
		t.Errorf("expected more segments at Umin=0.4: %v", counts)
	}
}

func TestEquationModels(t *testing.T) {
	if got := StorageBound(0.4); math.Abs(got-1/0.6) > 1e-12 {
		t.Errorf("StorageBound(0.4) = %v", got)
	}
	// Pure updates: Tseg = N0(1-U)/(U·Rupd).
	got := SegmentLength(1000, 0.4, 0, 0, 10)
	want := 1000 * 0.6 / (0.4 * 10)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("SegmentLength = %v, want %v", got, want)
	}
	// Higher usefulness threshold → shorter segments.
	if SegmentLength(1000, 0.6, 0, 0, 10) >= got {
		t.Error("higher Umin should shorten segments")
	}
	// Higher insertion rate → longer segments.
	if SegmentLength(1000, 0.4, 5, 0, 10) <= got {
		t.Error("insertions should lengthen segments")
	}
	// Insert-dominated workloads never fill a segment.
	if SegmentLength(1000, 0.4, 100, 0, 1) != -1 {
		t.Error("non-positive denominator should return -1")
	}
}

func TestSegmentsForLiveOnly(t *testing.T) {
	s, clock, _ := newTestStore(t, 0.4, 1000000)
	_ = s.Append(1, relstore.Int(1), clock.d, htable.DefaultValid(clock.d))
	segs, err := s.SegmentsFor(clock.d, clock.d)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 || segs[0] != s.LiveSegment() {
		t.Errorf("live-only = %v", segs)
	}
}

package segment

import (
	"fmt"

	"archis/internal/relstore"
	"archis/internal/temporal"
)

// OpenStore attaches a Store to an existing segmented attribute table
// and its directory (a reopened persistent system), reconstructing the
// live-segment number, its interval start, the usefulness counters and
// the live-row map from the stored data.
func OpenStore(db *relstore.Database, attrTable string, cfg Config) (*Store, error) {
	if cfg.Umin <= 0 || cfg.Umin >= 1 {
		return nil, fmt.Errorf("segment: Umin must be in (0,1), got %v", cfg.Umin)
	}
	if cfg.Clock == nil {
		return nil, fmt.Errorf("segment: Config.Clock is required")
	}
	if cfg.MinSegmentRows == 0 {
		cfg.MinSegmentRows = DefaultMinSegmentRows
	}
	t, ok := db.Table(attrTable)
	if !ok {
		return nil, fmt.Errorf("segment: open: table %s missing", attrTable)
	}
	dir, ok := db.Table(DirTableName(attrTable))
	if !ok {
		return nil, fmt.Errorf("segment: open: directory %s missing", DirTableName(attrTable))
	}
	s := &Store{
		table: t,
		dir:   dir,
		cfg:   cfg,
		live:  map[int64]relstore.RID{},
		// Legacy tables without the valid-time pair reopen at their
		// true width and keep default-valid semantics.
		hasValid: t.Schema().ColumnIndex("vstart") >= 0 && t.Schema().ColumnIndex("vend") >= 0,
	}

	// The live segment is one past the last frozen segment.
	lastFrozen := int64(0)
	lastEnd := temporal.Date(0)
	err := dir.Scan(nil, func(_ relstore.RID, row relstore.Row) bool {
		s.archives++
		if row[0].I > lastFrozen {
			lastFrozen = row[0].I
			lastEnd = row[2].Date()
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	s.liveSeg = lastFrozen + 1
	if s.archives > 0 {
		s.liveStart = lastEnd.AddDays(1)
	} else {
		s.liveStart = cfg.Clock()
	}

	// Counters and live map from the live segment; with no frozen
	// segments yet the earliest tstart fixes the segment start.
	minStart := temporal.Forever
	err = t.Scan(
		[]relstore.ZoneBound{{Col: 0, Op: "=", Bound: s.liveSeg}},
		func(rid relstore.RID, row relstore.Row) bool {
			if row[0].I != s.liveSeg {
				return true
			}
			s.nall++
			if row[4].Date().IsForever() {
				s.nlive++
				s.live[row[1].I] = rid
			}
			if s.archives == 0 && row[3].Date() < minStart {
				minStart = row[3].Date()
			}
			return true
		})
	if err != nil {
		return nil, err
	}
	if s.archives == 0 && minStart < s.liveStart {
		s.liveStart = minStart
	}
	return s, nil
}

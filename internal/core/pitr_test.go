package core

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Point-in-time recovery and the replica apply path (DESIGN.md §15).
// Both reuse the recovery replay loop, so the contract under test is
// the same in both directions: state(lsn) on the copy equals
// state(lsn) on the original, for every statement-boundary LSN.

func stateAt(t *testing.T, s *System) string {
	t.Helper()
	res, err := s.Exec("SELECT id, name, salary FROM emp ORDER BY id")
	if err != nil {
		t.Fatalf("select: %v", err)
	}
	return fmt.Sprintf("%v", res.Rows)
}

// TestRecoverAsOfLSN: recovering with MaxLSN=N reproduces exactly the
// state after the statement that ended at LSN N, for every statement
// boundary, and the result is read-only.
func TestRecoverAsOfLSN(t *testing.T) {
	dir := t.TempDir()
	s := buildDurable(t, dir, nil, 0)
	type point struct {
		lsn   uint64
		state string
	}
	var points []point
	stmts := []string{
		"INSERT INTO emp VALUES (1, 'n1', 100)",
		"INSERT INTO emp VALUES (2, 'n2', 200)",
		"UPDATE emp SET salary = 150 WHERE id = 1",
		"INSERT INTO emp VALUES (3, 'n3', 300)",
		"DELETE FROM emp WHERE id = 2",
		"UPDATE emp SET salary = 999 WHERE id = 3",
	}
	clock := day("1995-01-01")
	for i, q := range stmts {
		s.SetClock(clock.AddDays(30 * i))
		if _, err := s.ExecDurable(q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		points = append(points, point{s.Stats().WALAppendedLSN, stateAt(t, s)})
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	for i, p := range points {
		re, err := RecoverWithOptions(dir, RecoverOptions{MaxLSN: p.lsn})
		if err != nil {
			t.Fatalf("recover as of lsn %d: %v", p.lsn, err)
		}
		if got := stateAt(t, re); got != p.state {
			t.Errorf("statement %d: state as of lsn %d = %s, want %s", i, p.lsn, got, p.state)
		}
		if _, err := re.Exec("INSERT INTO emp VALUES (9, 'x', 1)"); !errors.Is(err, ErrReadOnly) {
			t.Errorf("point-in-time system accepted DML: %v", err)
		}
		if err := re.Checkpoint(); !errors.Is(err, ErrReadOnly) {
			t.Errorf("point-in-time system accepted a checkpoint: %v", err)
		}
		if err := re.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// A full recovery must still see the final state (the bounded
	// replays above must not have damaged the log).
	re, err := Recover(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := stateAt(t, re); got != points[len(points)-1].state {
		t.Errorf("full recovery after PITR opens diverged: %s", got)
	}
	re.Close()
}

// TestRecoverAsOfBeforeSnapshotFails: state before the checkpointed
// snapshot is gone; asking for it must error, not silently return the
// snapshot state.
func TestRecoverAsOfBeforeSnapshotFails(t *testing.T) {
	dir := t.TempDir()
	s := buildDurable(t, dir, nil, 0)
	if _, err := s.ExecDurable("INSERT INTO emp VALUES (1, 'n1', 100)"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ExecDurable("INSERT INTO emp VALUES (2, 'n2', 200)"); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	covered := s.Stats().WALAppendedLSN
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	_, err := RecoverWithOptions(dir, RecoverOptions{MaxLSN: covered - 1})
	if err == nil || !strings.Contains(err.Error(), "snapshot covers") {
		t.Fatalf("recovering before the snapshot LSN: err = %v, want snapshot-coverage error", err)
	}
}

// TestApplyReplicatedMatchesPrimary drives the replica apply path
// without the HTTP transport: a follower bootstrapped from the
// primary's snapshot and fed its WAL records record-by-record tracks
// the primary exactly, rejects DML, detects sequence gaps, and
// answers ReadAsOf at statement boundaries identically.
func TestApplyReplicatedMatchesPrimary(t *testing.T) {
	pdir, fdir := t.TempDir(), t.TempDir()
	p := buildDurable(t, pdir, nil, 0)
	defer p.Close()

	// Snapshot-at-birth bootstrap: copy the primary's snapshot before
	// any statements run.
	snap, err := os.ReadFile(filepath.Join(pdir, SnapshotFile))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(fdir, SnapshotFile), snap, 0o644); err != nil {
		t.Fatal(err)
	}

	var lsns []uint64
	var states []string
	clock := day("1995-01-01")
	for i, q := range []string{
		"INSERT INTO emp VALUES (1, 'n1', 100)",
		"INSERT INTO emp VALUES (2, 'n2', 200)",
		"UPDATE emp SET salary = 175 WHERE id = 2",
		"DELETE FROM emp WHERE id = 1",
	} {
		p.SetClock(clock.AddDays(30 * i))
		if _, err := p.ExecDurable(q); err != nil {
			t.Fatalf("stmt %d: %v", i, err)
		}
		lsns = append(lsns, p.Stats().WALAppendedLSN)
		states = append(states, stateAt(t, p))
	}

	f, err := RecoverWithOptions(fdir, RecoverOptions{Replica: true})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if !f.Replica() {
		t.Fatal("follower system does not report Replica()")
	}
	if _, err := f.Exec("INSERT INTO emp VALUES (9, 'x', 1)"); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("replica accepted DML: %v", err)
	}

	// Ship every primary record in order.
	snapLSN := f.AppliedLSN()
	if err := p.WAL().Range(snapLSN+1, func(lsn uint64, payload []byte) error {
		return f.ApplyReplicated(lsn, append([]byte(nil), payload...))
	}); err != nil {
		t.Fatal(err)
	}
	if got, want := f.AppliedLSN(), p.Stats().WALAppendedLSN; got != want {
		t.Fatalf("follower applied through %d, primary at %d", got, want)
	}
	if got := stateAt(t, f); got != states[len(states)-1] {
		t.Errorf("follower state = %s, want %s", got, states[len(states)-1])
	}
	// Point-in-time parity at every statement boundary.
	for i, lsn := range lsns {
		pres, perr := p.ReadAsOf(lsn, "SELECT id, name, salary FROM emp ORDER BY id")
		fres, ferr := f.ReadAsOf(lsn, "SELECT id, name, salary FROM emp ORDER BY id")
		if perr != nil || ferr != nil {
			t.Fatalf("ReadAsOf(%d): primary err %v, follower err %v", lsn, perr, ferr)
		}
		if pg, fg := fmt.Sprintf("%v", pres.Rows), fmt.Sprintf("%v", fres.Rows); pg != fg {
			t.Errorf("statement %d: ReadAsOf(%d) diverged: primary %s, follower %s", i, lsn, pg, fg)
		}
	}

	// A gap in the stream (skipped record) must be rejected, not
	// silently applied at the wrong position.
	if err := f.ApplyReplicated(f.AppliedLSN()+2, []byte("bogus")); err == nil ||
		!strings.Contains(err.Error(), "out of sequence") {
		t.Errorf("gap in the shipped stream not detected: %v", err)
	}
}

package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
	"unicode/utf8"

	"archis/internal/htable"
)

// TestStatsRace hammers the read-side observability surfaces —
// Stats(), WALStats(), MetricsSnapshot(), MetricsJSON() — while
// durable writers run. Under -race this pins down the old bug where
// Stats() read s.replayed without synchronization against Recover and
// assembled WAL counters while ExecDurable advanced them.
func TestStatsRace(t *testing.T) {
	dir := t.TempDir()
	s := buildDurable(t, dir, nil, htable.CaptureTrigger)
	s.SetClock(day("1995-01-01"))

	const writers, inserts = 4, 25
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = s.Stats()
				_ = s.WALStats()
				_ = s.MetricsSnapshot()
				_ = s.MetricsJSON()
			}
		}()
	}
	var writersWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			for i := 0; i < inserts; i++ {
				id := w*inserts + i + 1
				stmt := fmt.Sprintf("INSERT INTO emp VALUES (%d, 'w%d', %d)", id, w, 100+id)
				if _, err := s.ExecDurable(stmt); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	writersWG.Wait()
	close(stop)
	readers.Wait()

	st := s.Stats()
	if st.WALAppends == 0 {
		t.Fatal("no WAL appends recorded after durable writes")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Recover the directory and read Stats concurrently with replay-
	// adjacent state: the replayed counter must come through atomically.
	s2, err := Recover(dir, nil)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer s2.Close()
	if got := s2.Stats().WALReplayedRecords; got == 0 {
		t.Fatal("recovery replayed nothing; expected a log tail past the birth checkpoint")
	}
}

// TestMetricsSnapshotWAL asserts the acceptance criterion that a
// durable system's MetricsSnapshot exposes the WAL latency histograms
// and counters.
func TestMetricsSnapshotWAL(t *testing.T) {
	dir := t.TempDir()
	s := buildDurable(t, dir, nil, htable.CaptureTrigger)
	defer s.Close()
	runWorkload(t, s)

	snap := s.MetricsSnapshot()
	for _, name := range []string{"wal.append_ns", "wal.fsync_ns", "wal.commit_ns"} {
		h, ok := snap.Histograms[name]
		if !ok {
			t.Fatalf("snapshot is missing histogram %s; have %v", name, snap.Histograms)
		}
		if h.Count == 0 {
			t.Errorf("histogram %s recorded nothing after a durable workload", name)
		}
		if h.SumNS <= 0 || h.P99NS < h.P50NS {
			t.Errorf("histogram %s has implausible shape: %+v", name, h)
		}
	}
	if snap.Counters["wal.appends"] == 0 {
		t.Error("wal.appends counter is zero after durable writes")
	}
	if snap.Counters["wal.fsyncs"] == 0 {
		t.Error("wal.fsyncs counter is zero after durable writes")
	}
	if snap.Gauges["wal.appended_lsn"] == 0 {
		t.Error("wal.appended_lsn gauge is zero after durable writes")
	}
	if snap.Counters["relstore.rows_borrowed"] == 0 && snap.Counters["relstore.rows_copied"] == 0 {
		t.Error("no relstore row counters moved during the workload")
	}
	b := s.MetricsJSON()
	if !strings.Contains(string(b), `"wal.fsync_ns"`) {
		t.Error("MetricsJSON does not mention wal.fsync_ns")
	}
}

// TestQueryTraced checks the span tree of a translated temporal query:
// translation and execution spans present, storage deltas attributed
// on the root.
func TestQueryTraced(t *testing.T) {
	s := newLoadedSystem(t, Options{})

	q := `for $s in doc("employees.xml")/employees/employee[name="Bob"]/salary return $s`
	res, trace, err := s.QueryTraced(q)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if res.Path != PathSQL {
		t.Fatalf("path = %s, want sql/xml", res.Path)
	}
	plain, err := s.Query(q)
	if err != nil {
		t.Fatalf("untraced query: %v", err)
	}
	if fmt.Sprintf("%v", plain.Items) != fmt.Sprintf("%v", res.Items) {
		t.Fatalf("traced and untraced results differ:\n%v\n%v", plain.Items, res.Items)
	}
	if trace.Root == nil || trace.Query != q {
		t.Fatalf("trace lacks root or query: %+v", trace)
	}
	if trace.Find("translate") == nil {
		t.Errorf("trace has no translate span:\n%s", trace.Tree())
	}
	if trace.Find("scan") == nil {
		t.Errorf("trace has no scan span:\n%s", trace.Tree())
	}
	if trace.Root.Attr("path") != "sql/xml" {
		t.Errorf("root path attr = %q, want sql/xml", trace.Root.Attr("path"))
	}

	// The XML fallback path must carry xquery spans instead.
	xq := `for $e in doc("emp.xml")/employees/employee[name="Bob"]
let $overlaps := restructure($e/deptno, $e/title)
return max($overlaps)`
	xres, xtrace, err := s.QueryTraced(xq)
	if err != nil {
		t.Fatalf("xml query: %v", err)
	}
	if xres.Path != PathXML {
		t.Fatalf("path = %s, want xml", xres.Path)
	}
	if xtrace.Find("xquery:eval") == nil {
		t.Errorf("xml trace has no xquery:eval span:\n%s", xtrace.Tree())
	}
}

// TestSlowQueryLog drives the threshold to one nanosecond so every
// query logs, and checks the structured record shape.
func TestSlowQueryLog(t *testing.T) {
	var mu sync.Mutex
	var records []string
	s := newLoadedSystem(t, Options{
		SlowQueryThreshold: time.Nanosecond,
		SlowQueryLog: func(rec string) {
			mu.Lock()
			records = append(records, rec)
			mu.Unlock()
		},
	})
	if _, err := s.Exec("SELECT name\nFROM employee\nORDER BY name"); err != nil {
		t.Fatalf("select: %v", err)
	}
	if _, err := s.Query(`for $s in doc("employees.xml")/employees/employee[name="Bob"]/salary return $s`); err != nil {
		t.Fatalf("query: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(records) < 2 {
		t.Fatalf("expected records for both queries, got %v", records)
	}
	for _, rec := range records {
		if !strings.HasPrefix(rec, "slow_query path=") {
			t.Errorf("record %q lacks the slow_query prefix", rec)
		}
		if strings.Contains(rec, "\n") {
			t.Errorf("record %q contains a newline; queries must be collapsed", rec)
		}
		for _, field := range []string{" dur=", " rows=", " status=", " query="} {
			if !strings.Contains(rec, field) {
				t.Errorf("record %q lacks %s field", rec, field)
			}
		}
	}
}

// TestSlowQueryRecordRuneBoundary: truncation of an over-long query
// must never split a multibyte rune — the log line stays valid UTF-8
// no matter where the 200-byte cap lands.
func TestSlowQueryRecordRuneBoundary(t *testing.T) {
	// Each э is two bytes, so for some prefix lengths the byte cap
	// lands mid-rune; shifting a one-byte prefix sweeps every phase.
	for pad := 0; pad < 4; pad++ {
		q := strings.Repeat("x", pad) + strings.Repeat("э", 200)
		rec := slowQueryRecord("sql", q, time.Millisecond, 0, nil)
		if !utf8.ValidString(rec) {
			t.Errorf("pad %d: truncated record is not valid UTF-8: %q", pad, rec)
		}
		if !strings.Contains(rec, `...`) {
			t.Errorf("pad %d: long query was not truncated: %q", pad, rec)
		}
	}
	// Short queries pass through untouched.
	rec := slowQueryRecord("sql", "select 1", time.Millisecond, 1, nil)
	if strings.Contains(rec, "...") {
		t.Errorf("short query was truncated: %q", rec)
	}
}

// TestRunParallelExplain checks that EXPLAIN statements route through
// the read-only SQL path instead of falling through to XQuery.
func TestRunParallelExplain(t *testing.T) {
	s, err := New(Options{Capture: htable.CaptureTrigger})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	if err := s.Register(empSpec); err != nil {
		t.Fatalf("register: %v", err)
	}
	s.SetClock(day("1995-01-01"))
	if _, err := s.Exec("INSERT INTO emp VALUES (1, 'n1', 100)"); err != nil {
		t.Fatalf("insert: %v", err)
	}
	out := s.RunParallel([]string{
		"EXPLAIN SELECT id FROM emp",
		"explain analyze select id from emp",
	}, 2)
	for i, pr := range out {
		if pr.Err != nil {
			t.Fatalf("query %d: %v", i, pr.Err)
		}
		if len(pr.Result.Items) == 0 {
			t.Fatalf("query %d returned an empty plan", i)
		}
	}
}

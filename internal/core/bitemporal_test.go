package core

import (
	"fmt"
	"strings"
	"testing"

	"archis/internal/temporal"
	"archis/internal/wal"
)

// salaryHistory renders the salary values visible to one optioned read
// over the attribute-history table, in tstart order.
func salaryHistory(t *testing.T, s *System, opts ...ExecOpt) string {
	t.Helper()
	res, err := s.Exec("SELECT salary FROM emp_salary WHERE id = 1 ORDER BY tstart", opts...)
	if err != nil {
		t.Fatalf("history read: %v", err)
	}
	parts := make([]string, 0, len(res.Rows))
	for _, r := range res.Rows {
		parts = append(parts, r[0].Text())
	}
	return strings.Join(parts, ",")
}

// TestBitemporalEndToEnd drives the full valid-time path: an explicit
// WithValidTime assertion rides a durable write into the WAL, composes
// with transaction-time snapshots on reads, shows up in EXPLAIN, and
// survives crash recovery.
func TestBitemporalEndToEnd(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Options{WALDir: dir, WALFS: wal.OSFS{}})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Register(empSpec); err != nil {
		t.Fatal(err)
	}

	s.SetClock(day("1995-01-01"))
	if _, err := s.ExecDurable(`insert into emp values (1, 'n1', 100)`); err != nil {
		t.Fatal(err)
	}

	// Retroactive assertion: the raise took effect 1995-03-01 and is
	// known to lapse at year end, recorded during a June transaction.
	s.SetClock(day("1995-06-01"))
	iv, err := temporal.NewInterval(day("1995-03-01"), day("1995-12-31"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ExecDurable(`update emp set salary = 200 where id = 1`, WithValidTime(iv)); err != nil {
		t.Fatal(err)
	}
	lsnAfterRaise := s.Stats().WALAppendedLSN

	s.SetClock(day("1996-01-01"))
	if _, err := s.ExecDurable(`update emp set salary = 300 where id = 1`); err != nil {
		t.Fatal(err)
	}

	// Valid-time slices of the full history: the explicit interval
	// excludes the 200 version outside [1995-03-01, 1995-12-31];
	// default versions are valid from their own tstart onward.
	cases := []struct {
		at   string
		want string
	}{
		{"1995-02-01", "100"},
		{"1995-07-01", "100,200"},
		{"1997-01-01", "100,300"},
	}
	for _, c := range cases {
		if got := salaryHistory(t, s, AsOfValidTime(day(c.at))); got != c.want {
			t.Errorf("AsOfValidTime(%s) = %q, want %q", c.at, got, c.want)
		}
	}
	if got := salaryHistory(t, s); got != "100,200,300" {
		t.Errorf("unscoped history = %q, want all three versions", got)
	}

	// Bitemporal composition: at the transaction-time snapshot taken
	// before the 1996 write, the database did not yet believe any value
	// held at valid date 1997 except the open-ended initial one.
	got := salaryHistory(t, s, AsOfTransactionTime(lsnAfterRaise), AsOfValidTime(day("1997-01-01")))
	if got != "100" {
		t.Errorf("bitemporal read = %q, want %q", got, "100")
	}
	got = salaryHistory(t, s, AsOfTransactionTime(lsnAfterRaise), AsOfValidTime(day("1995-07-01")))
	if got != "100,200" {
		t.Errorf("bitemporal read at 1995-07-01 = %q, want %q", got, "100,200")
	}

	// EXPLAIN surfaces the injected predicate.
	res, err := s.Exec("EXPLAIN SELECT salary FROM emp_salary WHERE id = 1", AsOfValidTime(day("1995-07-01")))
	if err != nil {
		t.Fatal(err)
	}
	plan := fmt.Sprintf("%v", res.Rows)
	if !strings.Contains(plan, "valid_pred=vstart<=1995-07-01<=vend") {
		t.Errorf("EXPLAIN under AsOfValidTime missing valid_pred line:\n%s", plan)
	}

	// Option/statement-class validation.
	if _, err := s.Exec("SELECT salary FROM emp_salary", WithValidTime(iv)); err == nil {
		t.Error("WithValidTime on a SELECT did not error")
	}
	if _, err := s.ExecDurable(`update emp set salary = 0 where id = 1`, AsOfValidTime(day("1995-07-01"))); err == nil {
		t.Error("AsOfValidTime on a mutation did not error")
	}

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery replays the WAL: the explicit valid interval must come
	// back exactly, not degrade to the default.
	re, err := Open(dir)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer re.Close()
	if got := salaryHistory(t, re, AsOfValidTime(day("1995-07-01"))); got != "100,200" {
		t.Errorf("after recovery AsOfValidTime(1995-07-01) = %q, want %q", got, "100,200")
	}
	if got := salaryHistory(t, re, AsOfValidTime(day("1997-01-01"))); got != "100,300" {
		t.Errorf("after recovery AsOfValidTime(1997-01-01) = %q, want %q", got, "100,300")
	}
}

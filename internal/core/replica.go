package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"archis/internal/obs"
	"archis/internal/sqlengine"
	"archis/internal/wal"
)

// WAL-shipping replication, system side (DESIGN.md §15). A follower is
// a System recovered with RecoverOptions.Replica from a primary
// snapshot: its local log continues at the snapshot LSN, shipped
// records are applied through ApplyReplicated — the same replay path
// recovery uses — and every applied record publishes an MVCC version
// stamped with its primary LSN, so ReadAsOf answers on the follower
// exactly as on the primary for any LSN both retain. The transport
// lives in internal/repl; this file is the system contract it drives.

// ErrReadOnly marks mutations rejected by a replica or point-in-time
// system. Front ends match it with errors.Is to map the rejection to
// a protocol-level "not writable here" response.
var ErrReadOnly = errors.New("read-only system")

func (s *System) readOnlyErr() error {
	return fmt.Errorf("core: %s: %w", s.readOnly, ErrReadOnly)
}

// Replica reports whether the system is a WAL-shipping follower.
func (s *System) Replica() bool { return s.replica }

// FirstKeyword exposes the statement classifier to front ends, which
// route SELECT/EXPLAIN, DML and XQuery to different entry points.
func FirstKeyword(q string) string { return firstKeyword(q) }

// ReadOnlyReason returns why mutations are rejected ("" when the
// system is writable).
func (s *System) ReadOnlyReason() string { return s.readOnly }

// ApplyReplicated applies one shipped WAL record to a follower: the
// record is appended to the local log (which must assign it exactly
// the shipped LSN — a mismatch means records were dropped, reordered
// or double-applied, and the follower must stop rather than diverge),
// replayed through the recovery path, and published as an MVCC
// version at its LSN. Durability of the local copy follows the
// follower's own sync policy; the primary already holds the record
// durably, so the follower may lag on fsync without risking the
// record's survival.
func (s *System) ApplyReplicated(lsn uint64, payload []byte) error {
	if !s.replica {
		return fmt.Errorf("core: ApplyReplicated on a non-replica system")
	}
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	got, err := s.wal.Append(payload)
	if err != nil {
		return fmt.Errorf("core: replica apply lsn %d: %w", lsn, err)
	}
	if got != lsn {
		return fmt.Errorf("core: replication stream out of sequence: shipped lsn %d, local log assigned %d", lsn, got)
	}
	rec, err := decodeWALRecord(payload)
	if err != nil {
		return fmt.Errorf("core: replica apply lsn %d: %w", lsn, err)
	}
	if err := s.replay(rec); err != nil {
		return fmt.Errorf("core: replica apply lsn %d: %w", lsn, err)
	}
	s.DB.Publish(lsn)
	return nil
}

// AppliedLSN is the highest LSN the follower has applied (on a
// primary, the highest appended LSN).
func (s *System) AppliedLSN() uint64 {
	if s.wal == nil {
		return 0
	}
	return s.wal.AppendedLSN()
}

// WAL exposes the log for the replication transport: the shipper
// reads records with Range/DurableLSN, the retention hook pins
// segments followers still need. Nil on a non-durable system.
func (s *System) WAL() *wal.Log { return s.wal }

// WALDirPath returns the durable directory ("" when non-durable); the
// snapshot served to bootstrapping followers lives there.
func (s *System) WALDirPath() string { return s.opts.WALDir }

// CheckpointLSN returns the LSN covered by the latest checkpoint
// snapshot — the position a follower registering right now would
// bootstrap from, so the shipper pins retention there until the
// follower's first ack.
func (s *System) CheckpointLSN() uint64 {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	return s.walLSN
}

// SetWALRetention installs the replication retention floor: fn
// returns the minimum LSN any registered follower still needs, and
// TruncateThrough never deletes past it. nil removes the floor. A
// no-op on non-durable systems.
func (s *System) SetWALRetention(fn func() uint64) {
	if s.wal == nil {
		return
	}
	s.wal.SetRetention(fn)
}

// ReadAsOfCtx is ReadAsOf under a context: the scan stops early when
// the context fires.
func (s *System) ReadAsOfCtx(ctx context.Context, lsn uint64, sql string) (*sqlengine.Result, error) {
	switch firstKeyword(sql) {
	case "select", "explain":
	default:
		return nil, fmt.Errorf("core: ReadAsOf is read-only; got %q", firstKeyword(sql))
	}
	sn, err := s.DB.SnapshotAt(lsn)
	if err != nil {
		return nil, err
	}
	defer sn.Release()
	return s.Engine.ExecTracedAtCtx(ctx, sql, nil, sn)
}

// ServeObserve records one served query in the given histogram and
// the slow-query log — the front end's hook into the system's
// observability pipeline (same record format as the in-process
// paths).
func (s *System) ServeObserve(h *obs.Histogram, path, query string, d time.Duration, rows int, err error) {
	s.observeQuery(h, path, query, d, rows, err)
}

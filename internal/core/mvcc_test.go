package core

import (
	"strings"
	"testing"

	"archis/internal/temporal"
)

// Compact and CompressFrozen are online background writers; when there
// is nothing to do they must not enter the write path at all — pinned
// by the snapshot-epoch counter: a no-op maintenance pass publishes no
// new version.

func TestCompactEarlyExitKeepsEpoch(t *testing.T) {
	s := newLoadedSystem(t, Options{Layout: LayoutClustered, MinSegmentRows: 4})
	day := temporal.MustParseDate("1997-02-01")
	for i := 0; i < 6; i++ {
		s.SetClock(day.AddDays(i))
		if _, err := s.Exec(`update employee set salary = salary + 1 where id = 1002`); err != nil {
			t.Fatal(err)
		}
	}

	n, err := s.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("Compact archived nothing despite live rows")
	}
	epoch := s.DB.Stats().Epoch

	// Quiescent system: nothing to archive, so no version may be
	// published.
	n, err = s.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("second Compact archived %d stores on a quiescent system", n)
	}
	if got := s.DB.Stats().Epoch; got != epoch {
		t.Errorf("no-op Compact bumped the snapshot epoch: %d -> %d", epoch, got)
	}
}

func TestCompressFrozenEarlyExitKeepsEpoch(t *testing.T) {
	s := newLoadedSystem(t, Options{Layout: LayoutCompressed, MinSegmentRows: 4})
	day := temporal.MustParseDate("1997-02-01")
	for i := 0; i < 6; i++ {
		s.SetClock(day.AddDays(i))
		if _, err := s.Exec(`update employee set salary = salary + 1 where id = 1002`); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}

	if err := s.CompressFrozen(); err != nil {
		t.Fatal(err)
	}
	epoch := s.DB.Stats().Epoch
	if epoch == 0 {
		t.Fatal("compressing published no version")
	}

	// Everything frozen is already compressed: the second pass must
	// probe and leave without publishing.
	if err := s.CompressFrozen(); err != nil {
		t.Fatal(err)
	}
	if got := s.DB.Stats().Epoch; got != epoch {
		t.Errorf("no-op CompressFrozen bumped the snapshot epoch: %d -> %d", epoch, got)
	}
}

func TestReadAsOfRejectsWrites(t *testing.T) {
	s := newLoadedSystem(t, Options{})
	if _, err := s.ReadAsOf(0, `update employee set salary = 1 where id = 1001`); err == nil ||
		!strings.Contains(err.Error(), "read-only") {
		t.Errorf("ReadAsOf accepted an UPDATE: %v", err)
	}
}

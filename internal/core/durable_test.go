package core

import (
	"fmt"
	"path/filepath"
	"testing"

	"archis/internal/htable"
	"archis/internal/relstore"
	"archis/internal/temporal"
	"archis/internal/wal"
	"archis/internal/xmltree"
)

var empSpec = htable.TableSpec{
	Name: "emp",
	Columns: []relstore.Column{
		relstore.Col("id", relstore.TypeInt),
		relstore.Col("name", relstore.TypeString),
		relstore.Col("salary", relstore.TypeInt),
	},
	Key: []string{"id"},
}

func day(s string) temporal.Date { return temporal.MustParseDate(s) }

// queryFingerprint captures everything the tests compare across a
// crash: the current table, the H-doc and a temporal query.
func queryFingerprint(t *testing.T, s *System) string {
	t.Helper()
	if err := s.FlushLog(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	res, err := s.Exec("SELECT id, name, salary FROM emp ORDER BY id")
	if err != nil {
		t.Fatalf("select: %v", err)
	}
	out := fmt.Sprintf("%v", res.Rows)
	doc, err := s.PublishHDoc("emp")
	if err != nil {
		t.Fatalf("publish: %v", err)
	}
	out += "\n" + xmltree.String(doc)
	q, err := s.Query(`for $e in doc("emp.xml")/employees/emp[name="n1"] return $e/salary`)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	return out + fmt.Sprintf("\n%v", q.Items)
}

func buildDurable(t *testing.T, dir string, fsys wal.FS, capture htable.CaptureMode) *System {
	t.Helper()
	s, err := New(Options{Capture: capture, WALDir: dir, WALFS: fsys})
	if err != nil {
		t.Fatalf("new durable: %v", err)
	}
	if err := s.Register(empSpec); err != nil {
		t.Fatalf("register: %v", err)
	}
	if err := s.AliasDoc("emp.xml", "emp"); err != nil {
		t.Fatalf("alias: %v", err)
	}
	return s
}

func runWorkload(t *testing.T, s *System) {
	t.Helper()
	stmts := []string{
		"INSERT INTO emp VALUES (1, 'n1', 100)",
		"INSERT INTO emp VALUES (2, 'n2', 200)",
		"UPDATE emp SET salary = 150 WHERE id = 1",
		"DELETE FROM emp WHERE id = 2",
		"INSERT INTO emp VALUES (3, 'n3', 300)",
		"UPDATE emp SET salary = 175 WHERE id = 1",
	}
	clock := day("1995-01-01")
	for i, stmt := range stmts {
		s.SetClock(clock.AddDays(30 * i))
		if _, err := s.ExecDurable(stmt); err != nil {
			t.Fatalf("stmt %d (%s): %v", i, stmt, err)
		}
	}
}

func TestDurableRecoverEqualsLive(t *testing.T) {
	for _, capture := range []htable.CaptureMode{htable.CaptureTrigger, htable.CaptureLog} {
		t.Run(fmt.Sprintf("capture=%d", capture), func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "sys")
			fsys := wal.NewFaultFS()
			live := buildDurable(t, dir, fsys, capture)
			runWorkload(t, live)
			want := queryFingerprint(t, live)
			if err := live.SyncWAL(); err != nil {
				t.Fatal(err)
			}

			rec, err := Recover(dir, fsys.Survivor())
			if err != nil {
				t.Fatalf("recover: %v", err)
			}
			defer rec.Close()
			if got := queryFingerprint(t, rec); got != want {
				t.Fatalf("recovered state differs\nlive:\n%s\nrecovered:\n%s", want, got)
			}
			if rec.Stats().WALReplayedRecords == 0 {
				t.Fatal("recovery replayed nothing")
			}
		})
	}
}

func TestCheckpointTruncatesAndRecovers(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "sys")
	fsys := wal.NewFaultFS()
	s, err := New(Options{WALDir: dir, WALFS: fsys, WALSegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Register(empSpec); err != nil {
		t.Fatal(err)
	}
	if err := s.AliasDoc("emp.xml", "emp"); err != nil {
		t.Fatal(err)
	}
	runWorkload(t, s)
	if err := s.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	// More writes after the checkpoint land in the log tail.
	s.SetClock(day("1996-01-01"))
	if _, err := s.ExecDurable("INSERT INTO emp VALUES (4, 'n4', 400)"); err != nil {
		t.Fatal(err)
	}
	want := queryFingerprint(t, s)

	rec, err := Recover(dir, fsys.Survivor())
	if err != nil {
		t.Fatalf("recover after checkpoint: %v", err)
	}
	defer rec.Close()
	if got := queryFingerprint(t, rec); got != want {
		t.Fatalf("recovered state differs after checkpoint\nlive:\n%s\nrecovered:\n%s", want, got)
	}
	// Only the post-checkpoint records should have replayed.
	if n := rec.Stats().WALReplayedRecords; n == 0 || n > 3 {
		t.Fatalf("replayed %d records, want just the post-checkpoint tail", n)
	}
}

// Registering a table while a concurrent writer hammers it must keep
// log order equal to apply order: the registration record has to land
// before the table's first op record, or replay fails with an unknown
// table and the directory is unrecoverable.
func TestConcurrentRegisterAndWriteRecovers(t *testing.T) {
	for round := 0; round < 12; round++ {
		dir := filepath.Join(t.TempDir(), "sys")
		fsys := wal.NewFaultFS()
		s, err := New(Options{WALDir: dir, WALFS: fsys})
		if err != nil {
			t.Fatal(err)
		}
		s.SetClock(day("1995-01-01"))
		done := make(chan error, 1)
		go func() { done <- s.Register(empSpec) }()
		// Spin until an insert lands — the table appears mid-race, so
		// the first success is as close to the registration as the
		// scheduler allows.
		for {
			if _, err := s.ExecDurable("INSERT INTO emp VALUES (1, 'n1', 100)"); err == nil {
				break
			}
		}
		if err := <-done; err != nil {
			t.Fatalf("round %d: register: %v", round, err)
		}
		if err := s.SyncWAL(); err != nil {
			t.Fatal(err)
		}
		rec, err := Recover(dir, fsys.Survivor())
		if err != nil {
			t.Fatalf("round %d: recover: %v", round, err)
		}
		if _, ok := rec.Archive.Spec("emp"); !ok {
			t.Fatalf("round %d: recovered system lost the registration", round)
		}
		rec.Close()
		s.Close()
	}
}

// Recovery takes the commit policy from the snapshot metadata by
// default, but an explicit RecoverOptions override must win — and a
// zero-value option set must not.
func TestRecoverSyncPolicyOverride(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "sys")
	fsys := wal.NewFaultFS()
	s := buildDurable(t, dir, fsys, htable.CaptureTrigger) // SyncAlways recorded
	runWorkload(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Default: the recorded SyncAlways policy sticks; commits fsync.
	rec, err := Recover(dir, fsys)
	if err != nil {
		t.Fatal(err)
	}
	before := rec.WALStats().Fsyncs
	rec.SetClock(day("1996-01-01"))
	if _, err := rec.ExecDurable("INSERT INTO emp VALUES (7, 'n7', 700)"); err != nil {
		t.Fatal(err)
	}
	if got := rec.WALStats().Fsyncs; got == before {
		t.Fatal("recorded SyncAlways policy not honoured: commit issued no fsync")
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	// Override: SyncNone wins over the recorded policy.
	none := wal.SyncNone
	rec2, err := RecoverWithOptions(dir, RecoverOptions{FS: fsys, Sync: &none})
	if err != nil {
		t.Fatal(err)
	}
	defer rec2.Close()
	before = rec2.WALStats().Fsyncs
	rec2.SetClock(day("1996-02-01"))
	if _, err := rec2.ExecDurable("INSERT INTO emp VALUES (8, 'n8', 800)"); err != nil {
		t.Fatal(err)
	}
	if got := rec2.WALStats().Fsyncs; got != before {
		t.Fatalf("SyncNone override ignored: commit issued %d fsyncs", got-before)
	}
}

func TestOpenDispatchesToRecover(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "sys")
	s := buildDurable(t, dir, nil, htable.CaptureTrigger) // real OS files
	runWorkload(t, s)
	want := queryFingerprint(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := Open(dir)
	if err != nil {
		t.Fatalf("open dir: %v", err)
	}
	defer rec.Close()
	if !rec.Durable() {
		t.Fatal("recovered system is not durable")
	}
	if got := queryFingerprint(t, rec); got != want {
		t.Fatalf("Open(dir) state differs\nlive:\n%s\ngot:\n%s", want, got)
	}
}

func TestNewRefusesExistingDurableDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "sys")
	s := buildDurable(t, dir, nil, htable.CaptureTrigger)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Options{WALDir: dir}); err == nil {
		t.Fatal("New on an existing durable dir must fail")
	}
}

func TestWriteMetaKeepsTables(t *testing.T) {
	s, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Register(empSpec); err != nil {
		t.Fatal(err)
	}
	if err := s.writeMeta(); err != nil {
		t.Fatal(err)
	}
	before, ok := s.DB.Table(metaTable)
	if !ok {
		t.Fatal("no meta table")
	}
	// Repeated saves must update in place, not drop+create.
	if err := s.writeMeta(); err != nil {
		t.Fatal(err)
	}
	after, _ := s.DB.Table(metaTable)
	if before != after {
		t.Fatal("writeMeta recreated the meta table instead of updating in place")
	}
	s.SetClock(day("1999-06-01"))
	if err := s.writeMeta(); err != nil {
		t.Fatal(err)
	}
	meta, err := readMeta(s.DB)
	if err != nil {
		t.Fatal(err)
	}
	if meta["clock"] != "1999-06-01" {
		t.Fatalf("clock not upserted: %q", meta["clock"])
	}
}

package core

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"archis/internal/blockzip"
	"archis/internal/htable"
	"archis/internal/relstore"
	"archis/internal/segment"
	"archis/internal/temporal"
)

// System persistence: the relational state (current tables, H-tables,
// segment directories, block tables, indexes) is serialized by
// internal/relstore; this file adds the metadata tables that let Open
// reconstruct the System itself — options, clock, table specs and doc
// aliases — and the attach logic that rebuilds the in-memory layers.

const (
	metaTable  = "archis_meta"
	specsTable = "archis_specs"
	aliasTable = "archis_aliases"
)

// SaveFile persists the whole system to one file.
func (s *System) SaveFile(path string) error {
	if err := s.writeMeta(); err != nil {
		return err
	}
	return s.DB.SaveFile(path)
}

// ensureMetaTable returns the named metadata table, creating it only
// the first time. Earlier versions dropped and recreated all three
// tables on every save, rewriting catalog pages on each checkpoint;
// now the tables persist and their contents are updated in place.
func (s *System) ensureMetaTable(name string, cols ...relstore.Column) (*relstore.Table, error) {
	if t, ok := s.DB.Table(name); ok {
		return t, nil
	}
	return s.DB.CreateTable(relstore.NewSchema(name, cols...))
}

// syncMetaRows makes table's contents equal desired: unchanged tables
// are left untouched (row order ignored); otherwise the table is
// truncated and refilled.
func syncMetaRows(table *relstore.Table, desired []relstore.Row) error {
	keyOf := func(r relstore.Row) string { return string(relstore.EncodeRow(nil, r, true)) }
	want := make([]string, len(desired))
	for i, r := range desired {
		want[i] = keyOf(r)
	}
	sort.Strings(want)
	var have []string
	if err := table.Scan(nil, func(_ relstore.RID, row relstore.Row) bool {
		have = append(have, keyOf(row))
		return true
	}); err != nil {
		return err
	}
	sort.Strings(have)
	if len(have) == len(want) {
		same := true
		for i := range have {
			if have[i] != want[i] {
				same = false
				break
			}
		}
		if same {
			return nil
		}
	}
	table.Truncate()
	for _, r := range desired {
		if _, err := table.Insert(r); err != nil {
			return err
		}
	}
	return nil
}

func (s *System) writeMeta() error {
	meta, err := s.ensureMetaTable(metaTable,
		relstore.Col("k", relstore.TypeString), relstore.Col("v", relstore.TypeString))
	if err != nil {
		return err
	}
	pairs := [][2]string{
		{"version", "1"},
		{"layout", strconv.Itoa(int(s.opts.Layout))},
		{"capture", strconv.Itoa(int(s.Archive.Mode()))},
		{"umin", strconv.FormatFloat(s.opts.Umin, 'g', -1, 64)},
		{"minsegmentrows", strconv.Itoa(s.opts.MinSegmentRows)},
		{"blocksize", strconv.Itoa(s.opts.BlockSize)},
		{"wholesegments", strconv.FormatBool(s.opts.WholeSegmentCompression)},
		{"clock", s.Clock().String()},
	}
	if s.wal != nil {
		pairs = append(pairs,
			[2]string{"wal_lsn", strconv.FormatUint(s.walLSN, 10)},
			[2]string{"walsync", strconv.Itoa(int(s.opts.WALSync))},
			[2]string{"walbatchns", strconv.FormatInt(int64(s.opts.WALBatchWindow), 10)},
			[2]string{"walsegbytes", strconv.Itoa(s.opts.WALSegmentBytes)})
	}
	// Upsert key/value pairs in place: only changed values touch pages.
	existing := map[string]relstore.RID{}
	current := map[string]string{}
	if err := meta.Scan(nil, func(rid relstore.RID, row relstore.Row) bool {
		existing[row[0].Text()] = rid
		current[row[0].Text()] = row[1].Text()
		return true
	}); err != nil {
		return err
	}
	desired := map[string]bool{}
	for _, p := range pairs {
		desired[p[0]] = true
		rid, ok := existing[p[0]]
		switch {
		case !ok:
			if _, err := meta.Insert(relstore.Row{relstore.String_(p[0]), relstore.String_(p[1])}); err != nil {
				return err
			}
		case current[p[0]] != p[1]:
			if err := meta.Update(rid, relstore.Row{relstore.String_(p[0]), relstore.String_(p[1])}); err != nil {
				return err
			}
		}
	}
	for k, rid := range existing {
		if !desired[k] {
			if err := meta.Delete(rid); err != nil {
				return err
			}
		}
	}

	specs, err := s.ensureMetaTable(specsTable,
		relstore.Col("tablename", relstore.TypeString),
		relstore.Col("colname", relstore.TypeString),
		relstore.Col("coltype", relstore.TypeInt),
		relstore.Col("iskey", relstore.TypeInt),
		relstore.Col("pos", relstore.TypeInt))
	if err != nil {
		return err
	}
	var specRows []relstore.Row
	for _, name := range s.Archive.Tables() {
		spec, _ := s.Archive.Spec(name)
		keySet := map[string]bool{}
		for _, k := range spec.Key {
			keySet[strings.ToLower(k)] = true
		}
		for i, c := range spec.Columns {
			isKey := int64(0)
			if keySet[strings.ToLower(c.Name)] {
				isKey = 1
			}
			specRows = append(specRows, relstore.Row{
				relstore.String_(spec.Name), relstore.String_(c.Name),
				relstore.Int(int64(c.Type)), relstore.Int(isKey), relstore.Int(int64(i))})
		}
	}
	if err := syncMetaRows(specs, specRows); err != nil {
		return err
	}

	aliases, err := s.ensureMetaTable(aliasTable,
		relstore.Col("alias", relstore.TypeString),
		relstore.Col("tablename", relstore.TypeString))
	if err != nil {
		return err
	}
	var aliasRows []relstore.Row
	for alias, view := range s.catalog.items() {
		if alias == view.DocName {
			continue // canonical entry, rebuilt by finishRegister
		}
		aliasRows = append(aliasRows, relstore.Row{
			relstore.String_(alias), relstore.String_(view.EntityName)})
	}
	return syncMetaRows(aliases, aliasRows)
}

// Open reconstructs a System from a file written by SaveFile, or — if
// path is a directory — recovers a durable system from its snapshot
// plus WAL tail (see Recover).
func Open(path string) (*System, error) {
	if fi, err := os.Stat(path); err == nil && fi.IsDir() {
		return Recover(path, nil)
	}
	db, err := relstore.LoadFile(path)
	if err != nil {
		return nil, err
	}
	s, _, err := openSnapshotDB(db)
	return s, err
}

// openSnapshotDB rebuilds a System over an already-loaded snapshot
// database and returns the metadata pairs for the caller (Recover
// reads the WAL position from them).
func openSnapshotDB(db *relstore.Database) (*System, map[string]string, error) {
	meta, err := readMeta(db)
	if err != nil {
		return nil, nil, err
	}
	opts := Options{}
	if v, err := strconv.Atoi(meta["layout"]); err == nil {
		opts.Layout = Layout(v)
	}
	if v, err := strconv.Atoi(meta["capture"]); err == nil {
		opts.Capture = htable.CaptureMode(v)
	}
	if v, err := strconv.ParseFloat(meta["umin"], 64); err == nil {
		opts.Umin = v
	}
	if v, err := strconv.Atoi(meta["minsegmentrows"]); err == nil {
		opts.MinSegmentRows = v
	}
	if v, err := strconv.Atoi(meta["blocksize"]); err == nil {
		opts.BlockSize = v
	}
	opts.WholeSegmentCompression = meta["wholesegments"] == "true"

	s, err := newWithDB(db, opts)
	if err != nil {
		return nil, nil, err
	}
	if clock, err := temporal.ParseDate(meta["clock"]); err == nil {
		s.SetClock(clock)
	}

	specs, err := readSpecs(db)
	if err != nil {
		return nil, nil, err
	}
	for _, spec := range specs {
		if err := s.attach(spec); err != nil {
			return nil, nil, err
		}
	}

	if aliases, ok := db.Table(aliasTable); ok {
		var aliasErr error
		_ = aliases.Scan(nil, func(_ relstore.RID, row relstore.Row) bool {
			if err := s.AliasDoc(row[0].Text(), row[1].Text()); err != nil {
				aliasErr = err
				return false
			}
			return true
		})
		if aliasErr != nil {
			return nil, nil, aliasErr
		}
	}
	return s, meta, nil
}

func readMeta(db *relstore.Database) (map[string]string, error) {
	t, ok := db.Table(metaTable)
	if !ok {
		return nil, fmt.Errorf("core: not an ArchIS system file (no %s table)", metaTable)
	}
	out := map[string]string{}
	err := t.Scan(nil, func(_ relstore.RID, row relstore.Row) bool {
		out[row[0].Text()] = row[1].Text()
		return true
	})
	if out["version"] != "1" {
		return nil, fmt.Errorf("core: unsupported system file version %q", out["version"])
	}
	return out, err
}

func readSpecs(db *relstore.Database) ([]htable.TableSpec, error) {
	t, ok := db.Table(specsTable)
	if !ok {
		return nil, fmt.Errorf("core: system file has no %s table", specsTable)
	}
	type colRec struct {
		col   relstore.Column
		isKey bool
		pos   int64
	}
	byTable := map[string][]colRec{}
	var order []string
	err := t.Scan(nil, func(_ relstore.RID, row relstore.Row) bool {
		name := row[0].Text()
		if _, seen := byTable[name]; !seen {
			order = append(order, name)
		}
		byTable[name] = append(byTable[name], colRec{
			col:   relstore.Col(row[1].Text(), relstore.Type(row[2].I)),
			isKey: row[3].I == 1,
			pos:   row[4].I,
		})
		return true
	})
	if err != nil {
		return nil, err
	}
	var out []htable.TableSpec
	for _, name := range order {
		recs := byTable[name]
		spec := htable.TableSpec{Name: name}
		cols := make([]relstore.Column, len(recs))
		for _, r := range recs {
			if int(r.pos) >= len(cols) {
				return nil, fmt.Errorf("core: corrupt spec for %s", name)
			}
			cols[r.pos] = r.col
			if r.isKey {
				spec.Key = append(spec.Key, r.col.Name)
			}
		}
		spec.Columns = cols
		out = append(out, spec)
	}
	return out, nil
}

// attach rebuilds the store/catalog layers over existing tables.
func (s *System) attach(spec htable.TableSpec) error {
	err := s.Archive.Attach(spec, func(db *relstore.Database, schema relstore.Schema) (htable.AttrStore, error) {
		switch s.opts.Layout {
		case LayoutPlain:
			t, ok := db.Table(schema.Name)
			if !ok {
				return nil, fmt.Errorf("core: attach: table %s missing", schema.Name)
			}
			return htable.OpenPlainStore(t)
		case LayoutClustered, LayoutCompressed:
			seg, err := segment.OpenStore(db, schema.Name, segment.Config{
				Umin:           s.opts.Umin,
				MinSegmentRows: s.opts.MinSegmentRows,
				Clock:          func() temporal.Date { return s.Engine.Now() },
			})
			if err != nil {
				return nil, err
			}
			s.segStores[strings.ToLower(schema.Name)] = seg
			if s.opts.Layout == LayoutClustered {
				s.Engine.RegisterVirtual(schema.Name, seg)
				return seg, nil
			}
			cs, err := blockzip.OpenCompressedStore(db, seg, blockzip.Options{
				BlockSize:     s.opts.BlockSize,
				WholeSegments: s.opts.WholeSegmentCompression,
				Columnar:      s.opts.Columnar == ColumnarOn,
			})
			if err != nil {
				return nil, err
			}
			s.compStores[strings.ToLower(schema.Name)] = cs
			s.Engine.RegisterVirtual(schema.Name, cs)
			return cs, nil
		}
		return nil, fmt.Errorf("core: unknown layout %d", s.opts.Layout)
	})
	if err != nil {
		return err
	}
	return s.finishRegister(spec)
}

package core

import (
	"fmt"
	"strings"
	"time"
	"unicode/utf8"

	"archis/internal/obs"
)

// Observability surfaces (DESIGN.md §11). The registry is callback
// based: the storage and WAL counters below already exist as atomics
// in their own packages, so a snapshot reads them in place — there is
// no second accounting path to drift from the first.

// Metrics returns the system's metrics registry (never nil). The WAL
// latency histograms (wal.append_ns, wal.fsync_ns, wal.commit_ns) land
// here too — walOptions passes the registry to the log.
func (s *System) Metrics() *obs.Registry { return s.metrics }

// MetricsSnapshot returns a point-in-time snapshot of every counter,
// gauge and histogram.
func (s *System) MetricsSnapshot() obs.Snapshot { return s.metrics.Snapshot() }

// MetricsJSON renders the snapshot as indented JSON — the expvar-style
// dump served by the CLIs.
func (s *System) MetricsJSON() []byte { return s.MetricsSnapshot().JSON() }

// registerMetrics wires the pre-existing atomic counters into the
// registry. WAL callbacks guard on s.wal themselves (via WALStats), so
// registration happens once at construction regardless of durability.
func (s *System) registerMetrics() {
	r := s.metrics
	r.CounterFunc("relstore.block_reads", func() int64 { return s.DB.Stats().BlockReads })
	r.CounterFunc("relstore.bytes_read", func() int64 { return s.DB.Stats().BytesRead })
	r.CounterFunc("relstore.cache_hits", func() int64 { return s.DB.Stats().CacheHits })
	r.CounterFunc("relstore.pages_skipped", func() int64 { return s.DB.Stats().PagesSkipped })
	r.CounterFunc("relstore.morsels", func() int64 { return s.DB.Stats().Morsels })
	r.CounterFunc("relstore.rows_borrowed", func() int64 { return s.DB.Stats().RowsBorrowed })
	r.CounterFunc("relstore.rows_copied", func() int64 { return s.DB.Stats().RowsCopied })
	r.CounterFunc("relstore.block_cache_hits", func() int64 { return s.DB.Stats().BlockCacheHits })
	r.CounterFunc("relstore.block_cache_misses", func() int64 { return s.DB.Stats().BlockCacheMisses })
	r.GaugeFunc("relstore.block_cache_bytes", func() int64 { return s.DB.Stats().BlockCacheBytes })
	r.CounterFunc("relstore.join_rows_borrowed", func() int64 { return s.DB.Stats().JoinRowsBorrowed })
	r.CounterFunc("relstore.join_rows_copied", func() int64 { return s.DB.Stats().JoinRowsCopied })
	r.GaugeFunc("relstore.snapshot_epoch", func() int64 { return s.DB.Stats().Epoch })
	r.GaugeFunc("relstore.pinned_readers", func() int64 { return s.DB.Stats().PinnedReaders })
	r.CounterFunc("relstore.reclaimed_versions", func() int64 { return s.DB.Stats().ReclaimedVersions })

	r.CounterFunc("wal.appends", func() int64 { return s.WALStats().Appends })
	r.CounterFunc("wal.fsyncs", func() int64 { return s.WALStats().Fsyncs })
	r.CounterFunc("wal.grouped_commits", func() int64 { return s.WALStats().GroupedCommits })
	r.GaugeFunc("wal.segments", func() int64 { return int64(s.WALStats().Segments) })
	r.GaugeFunc("wal.appended_lsn", func() int64 { return int64(s.WALStats().AppendedLSN) })
	r.GaugeFunc("wal.durable_lsn", func() int64 { return int64(s.WALStats().DurableLSN) })
	r.CounterFunc("core.wal_replayed_records", func() int64 { return s.replayed.Load() })
}

// SetSlowQueryLog configures the slow-query threshold and sink at
// runtime. Recovery does not persist the logging options, so served
// systems wire their logger here after Recover — before serving
// starts, which is what makes the unsynchronized write safe.
func (s *System) SetSlowQueryLog(threshold time.Duration, fn func(record string)) {
	s.opts.SlowQueryThreshold = threshold
	s.opts.SlowQueryLog = fn
}

// observeQuery records one finished query: its latency in the path's
// histogram and, past the configured threshold, one structured line in
// the slow-query log.
func (s *System) observeQuery(h *obs.Histogram, path, query string, d time.Duration, rows int, err error) {
	h.Observe(d)
	if s.opts.SlowQueryThreshold <= 0 || d < s.opts.SlowQueryThreshold || s.opts.SlowQueryLog == nil {
		return
	}
	s.opts.SlowQueryLog(slowQueryRecord(path, query, d, rows, err))
}

// slowQueryRecord formats one slow-query log line: space-separated
// key=value fields with the query last, quoted, newlines collapsed and
// truncated so a pathological statement cannot flood the log.
func slowQueryRecord(path, query string, d time.Duration, rows int, err error) string {
	const maxQuery = 200
	q := strings.Join(strings.Fields(query), " ")
	if len(q) > maxQuery {
		// Back off to a rune boundary: cutting inside a multibyte
		// sequence would emit invalid UTF-8 into the log line.
		cut := maxQuery
		for cut > 0 && !utf8.RuneStart(q[cut]) {
			cut--
		}
		q = q[:cut] + "..."
	}
	status := "ok"
	if err != nil {
		status = "error"
	}
	return fmt.Sprintf("slow_query path=%s dur=%s rows=%d status=%s query=%q",
		path, obs.FormatDuration(d), rows, status, q)
}

package core

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"archis/internal/htable"
	"archis/internal/relstore"
	"archis/internal/sqlengine"
	"archis/internal/temporal"
	"archis/internal/wal"
)

// Durability: when Options.WALDir is set, the system keeps a segmented
// write-ahead log of every captured op, clock tick and DDL statement in
// that directory, next to whole-system snapshots written by Checkpoint.
// ExecDurable acknowledges a statement only after its log records are
// fsynced (group commit); Recover — reached through Open on a
// directory — loads the latest snapshot and replays the log tail.
// DESIGN.md §10 states the full contract.

// SnapshotFile is the name of the checkpoint snapshot inside a durable
// system's directory.
const SnapshotFile = "snapshot.archis"

// Stats combines the storage-engine counters with the durability
// subsystem's.
type Stats struct {
	relstore.Stats
	WALAppends         int64  // records appended to the log
	WALFsyncs          int64  // physical fsyncs issued by the log
	WALGroupedCommits  int64  // commits that shared another's fsync
	WALReplayedRecords int64  // records replayed by the last recovery
	WALSegments        int    // log segment files on disk
	WALAppendedLSN     uint64 // highest LSN written
	WALDurableLSN      uint64 // highest LSN fsynced
}

// Stats returns the system's counters, including the WAL's when one is
// configured. Every field is assembled from atomic loads, so Stats is
// safe to call concurrently with writers (see TestStatsRace).
func (s *System) Stats() Stats {
	st := Stats{Stats: s.DB.Stats(), WALReplayedRecords: s.replayed.Load()}
	if s.wal != nil {
		ws := s.wal.Stats()
		st.WALAppends = ws.Appends
		st.WALFsyncs = ws.Fsyncs
		st.WALGroupedCommits = ws.GroupedCommits
		st.WALSegments = ws.Segments
		st.WALAppendedLSN = ws.AppendedLSN
		st.WALDurableLSN = ws.DurableLSN
	}
	return st
}

// WALStats returns the raw log counters (zero when no WAL).
func (s *System) WALStats() wal.Stats {
	if s.wal == nil {
		return wal.Stats{}
	}
	return s.wal.Stats()
}

// Durable reports whether the system runs with a WAL.
func (s *System) Durable() bool { return s.wal != nil }

// walOptions maps the system knobs onto the log's.
func (s *System) walOptions(fsys wal.FS) wal.Options {
	return wal.Options{
		FS:           fsys,
		SegmentBytes: s.opts.WALSegmentBytes,
		Sync:         s.opts.WALSync,
		BatchWindow:  s.opts.WALBatchWindow,
		Metrics:      s.metrics,
	}
}

// initWAL starts a fresh durable system in opts.WALDir: the directory
// must not already hold one (Open recovers those). It ends with a
// birth checkpoint so recovery always finds a snapshot.
func (s *System) initWAL() error {
	dir := s.opts.WALDir
	fsys := s.opts.WALFS
	if fsys == nil {
		fsys = wal.OSFS{}
	}
	// Snapshots are written through the OS regardless of the log's
	// file layer, so the directory must exist for real too.
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("core: wal dir: %w", err)
	}
	if _, err := os.Stat(filepath.Join(dir, SnapshotFile)); err == nil {
		return fmt.Errorf("core: %s already holds a durable system; use Open to recover it", dir)
	}
	w, err := wal.Open(dir, s.walOptions(fsys))
	if err != nil {
		return err
	}
	if w.AppendedLSN() != 0 {
		w.Close()
		return fmt.Errorf("core: %s holds WAL records but no snapshot; refusing to start fresh", dir)
	}
	s.wal = w
	s.walFS = fsys
	s.attachWALSink()
	return s.checkpointLocked()
}

// attachWALSink routes every captured op into the log. The op record
// is appended before the archive buffers or applies it; durability is
// established by the Commit in ExecDurable. A failed append leaves the
// in-memory state ahead of the log — the log turns sticky-failed, so
// no later statement can be acknowledged past the divergence.
func (s *System) attachWALSink() {
	s.Archive.SetOpSink(func(op htable.Op) error {
		_, err := s.wal.Append(encodeOpRecord(op))
		return err
	})
	s.Archive.SetClockSink(func(d temporal.Date) {
		// An append failure turns the log sticky-failed; the next
		// commit surfaces it.
		_, _ = s.wal.Append(encodeClockRecord(d))
	})
}

// appendDDLLocked appends a DDL record while the caller holds writeMu,
// matching the op-sink guarantee that log order equals apply order: a
// concurrent ExecDurable against the just-registered table cannot slot
// its op record ahead of the registration. Returns 0 on a non-durable
// system.
func (s *System) appendDDLLocked(payload []byte) (uint64, error) {
	if s.wal == nil {
		return 0, nil
	}
	return s.wal.Append(payload)
}

// commitDDL waits for a DDL record's durability outside writeMu (DDL
// is rare; there is nothing to group with). lsn 0 means nothing was
// logged.
func (s *System) commitDDL(lsn uint64) error {
	if s.wal == nil || lsn == 0 {
		return nil
	}
	return s.wal.Commit(lsn)
}

// ExecDurable runs one SQL statement and, when a WAL is configured,
// returns only after the statement's log records are durable under the
// configured sync policy. Statements serialize on the write lock
// (writers require exclusive engine access) but their final fsyncs
// overlap, so concurrent committers coalesce into shared fsyncs.
func (s *System) ExecDurable(sql string, opts ...ExecOpt) (*sqlengine.Result, error) {
	return s.ExecDurableCtx(context.Background(), sql, opts...)
}

// ExecDurableCtx is ExecDurable under a context. A context that fired
// before the statement started rejects it; a running mutation is
// never interrupted (no rollback below this layer), and SELECTs fall
// through to the cancellable read path.
func (s *System) ExecDurableCtx(ctx context.Context, sql string, opts ...ExecOpt) (*sqlengine.Result, error) {
	if s.readOnly != "" {
		switch firstKeyword(sql) {
		case "select", "explain":
		default:
			return nil, s.readOnlyErr()
		}
	}
	if s.wal == nil {
		return s.ExecCtx(ctx, sql, opts...)
	}
	switch firstKeyword(sql) {
	case "select", "explain":
		return s.ExecCtx(ctx, sql, opts...)
	}
	o, oerr := resolveExecOpts(opts, false)
	if oerr != nil {
		return nil, oerr
	}
	s.writeMu.Lock()
	res, err := s.withPendingValid(o, func() (*sqlengine.Result, error) {
		return s.Engine.ExecCtx(ctx, sql)
	})
	lsn := s.wal.AppendedLSN()
	// Publish before releasing the lock, stamped with the statement's
	// final WAL position: the version becomes visible to lock-free
	// readers exactly once, whole, and ReadAsOf(lsn) later resolves to
	// it. Visibility precedes durability (the Commit below) — an acked
	// statement is always durable, an unacked one may be visible, which
	// the crash matrix pins as "acked-or-later prefix".
	s.DB.Publish(lsn)
	s.writeMu.Unlock()
	if err != nil {
		return nil, err
	}
	if lsn > 0 {
		if err := s.wal.Commit(lsn); err != nil {
			return nil, fmt.Errorf("core: statement executed but not durable: %w", err)
		}
	}
	return res, nil
}

// SyncWAL forces everything appended so far to disk, regardless of the
// sync policy.
func (s *System) SyncWAL() error {
	if s.wal == nil {
		return nil
	}
	return s.wal.Sync()
}

// Checkpoint makes the entire system state durable as one snapshot and
// discards the log segments it covers: pending log-captured changes
// are flushed to the H-tables, the log is sealed, the snapshot written
// (fsynced, atomically renamed), and fully-covered segments removed.
func (s *System) Checkpoint() error {
	if s.wal == nil {
		return fmt.Errorf("core: Checkpoint requires a WAL (Options.WALDir)")
	}
	// Replicas may checkpoint (snapshotting applied state bounds their
	// local log); point-in-time systems must not truncate the log they
	// were carved from.
	if s.readOnly != "" && !s.replica {
		return s.readOnlyErr()
	}
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	return s.checkpointLocked()
}

func (s *System) checkpointLocked() error {
	// Flush pending log-capture ops first: the snapshot then contains
	// their H-table effects, so truncating their records can't lose
	// them.
	if err := s.Archive.FlushLog(); err != nil {
		return err
	}
	lsn := s.wal.AppendedLSN()
	if err := s.wal.Rotate(); err != nil {
		return err
	}
	s.walLSN = lsn
	if err := s.SaveFile(filepath.Join(s.opts.WALDir, SnapshotFile)); err != nil {
		return err
	}
	if err := s.wal.TruncateThrough(lsn); err != nil {
		return err
	}
	// Flushed log-capture ops and metadata upserts become reader-visible
	// with the checkpoint.
	s.publishLocked()
	return nil
}

// Close syncs and closes the WAL (a no-op for non-durable systems).
func (s *System) Close() error {
	if s.wal == nil {
		return nil
	}
	return s.wal.Close()
}

// RecoverOptions tune Recover beyond its defaults. The zero value
// recovers with the real file system and the policies recorded in the
// snapshot metadata.
type RecoverOptions struct {
	// FS overrides the log's file layer (fault-injection tests); nil
	// uses the real file system.
	FS wal.FS
	// Sync, when non-nil, overrides the WAL commit policy recorded in
	// the snapshot metadata, letting a caller (e.g. the archis CLI's
	// -sync flag) change the durability policy of an existing
	// directory on reopen. The override is persisted by the next
	// checkpoint.
	Sync *wal.SyncMode
	// BatchWindow, when positive, overrides the recorded SyncBatch
	// coalescing window.
	BatchWindow time.Duration
	// SegmentBytes, when positive, overrides the recorded log segment
	// roll threshold.
	SegmentBytes int
	// MaxLSN, when non-zero, bounds replay at that LSN: records past
	// it are not applied, and the result is a read-only point-in-time
	// system (DESIGN.md §15.4). Recovery fails when the snapshot
	// already covers a higher LSN — the state before MaxLSN is gone.
	MaxLSN uint64
	// Replica opens the directory as a WAL-shipping follower: the
	// system rejects DML, does not route captured ops into the log
	// (records arrive pre-encoded via ApplyReplicated), and an empty
	// log continues LSN assignment from the snapshot's position so
	// shipped records keep their primary LSNs.
	Replica bool
}

// Recover rebuilds a durable system from its directory: load the
// snapshot, then replay every log record past the snapshot's LSN. A
// torn final record (the write the crash interrupted) is silently
// dropped — the log layer replays exactly the valid prefix. fsys
// overrides the log's file layer (fault-injection tests); nil uses the
// real file system. Use RecoverWithOptions to also override the
// recorded commit policy.
func Recover(dir string, fsys wal.FS) (*System, error) {
	return RecoverWithOptions(dir, RecoverOptions{FS: fsys})
}

// RecoverWithOptions is Recover with explicit overrides: snapshot
// metadata supplies defaults, non-zero fields in ropts win.
func RecoverWithOptions(dir string, ropts RecoverOptions) (*System, error) {
	fsys := ropts.FS
	if fsys == nil {
		fsys = wal.OSFS{}
	}
	db, err := relstore.LoadFile(filepath.Join(dir, SnapshotFile))
	if err != nil {
		return nil, fmt.Errorf("core: recover %s: %w", dir, err)
	}
	s, meta, err := openSnapshotDB(db)
	if err != nil {
		return nil, err
	}
	snapLSN, _ := strconv.ParseUint(meta["wal_lsn"], 10, 64)
	if v, err := strconv.Atoi(meta["walsync"]); err == nil {
		s.opts.WALSync = wal.SyncMode(v)
	}
	if v, err := strconv.ParseInt(meta["walbatchns"], 10, 64); err == nil {
		s.opts.WALBatchWindow = time.Duration(v)
	}
	if v, err := strconv.Atoi(meta["walsegbytes"]); err == nil {
		s.opts.WALSegmentBytes = v
	}
	if ropts.Sync != nil {
		s.opts.WALSync = *ropts.Sync
	}
	if ropts.BatchWindow > 0 {
		s.opts.WALBatchWindow = ropts.BatchWindow
	}
	if ropts.SegmentBytes > 0 {
		s.opts.WALSegmentBytes = ropts.SegmentBytes
	}
	if ropts.MaxLSN > 0 && snapLSN > ropts.MaxLSN {
		return nil, fmt.Errorf("core: recover %s: snapshot covers lsn %d, past the requested as-of lsn %d (no earlier state retained)", dir, snapLSN, ropts.MaxLSN)
	}
	wo := s.walOptions(fsys)
	if ropts.Replica {
		// A fresh follower log continues from the snapshot position so
		// ApplyReplicated's appends land at the shipped primary LSNs.
		wo.FirstLSN = snapLSN + 1
	}
	w, err := wal.Open(dir, wo)
	if err != nil {
		return nil, err
	}
	// Replay before attaching the log to the system: replayed DDL and
	// ops must not append fresh records to the log being replayed.
	var replayed int64
	errReplayBound := errors.New("replay bound reached")
	rerr := w.Range(snapLSN+1, func(lsn uint64, payload []byte) error {
		if ropts.MaxLSN > 0 && lsn > ropts.MaxLSN {
			return errReplayBound
		}
		rec, err := decodeWALRecord(payload)
		if err != nil {
			return fmt.Errorf("core: recover %s: lsn %d: %w", dir, lsn, err)
		}
		if err := s.replay(rec); err != nil {
			return fmt.Errorf("core: recover %s: replay lsn %d: %w", dir, lsn, err)
		}
		// Publish per replayed record: the retained-version ring then
		// holds the most recent checkpointed LSNs, so ReadAsOf works
		// immediately after recovery for any of them.
		s.DB.Publish(lsn)
		replayed++
		return nil
	})
	if errors.Is(rerr, errReplayBound) {
		rerr = nil
	}
	if rerr != nil {
		w.Close()
		return nil, rerr
	}
	s.opts.WALDir = dir
	s.opts.WALFS = fsys
	s.wal = w
	s.walFS = fsys
	s.walLSN = snapLSN
	s.replayed.Store(replayed)
	switch {
	case ropts.MaxLSN > 0:
		// Point-in-time system: the log holds records past the replayed
		// prefix; any write or checkpoint would corrupt it.
		s.readOnly = fmt.Sprintf("opened as of lsn %d (point-in-time recovery)", ropts.MaxLSN)
	case ropts.Replica:
		// Follower: ops arrive pre-encoded through ApplyReplicated,
		// which appends them itself — no capture sink.
		s.replica = true
		s.readOnly = "replica follower (writes belong on the primary)"
	default:
		s.attachWALSink()
	}
	return s, nil
}

// replay applies one decoded WAL record to a recovering system.
func (s *System) replay(rec walRecord) error {
	switch rec.kind {
	case recClock:
		s.Archive.SetClock(rec.clock)
		return nil
	case recRegister:
		return s.registerInternal(rec.spec)
	case recAlias:
		return s.aliasInternal(rec.alias, rec.table)
	case recOp:
		// Restore the logical time of the change first: machinery
		// below the stores (segment boundaries) reads the clock.
		s.Archive.SetClock(rec.op.At)
		if err := s.applyToCurrent(rec.op); err != nil {
			return err
		}
		if err := s.Archive.Ingest(rec.op); err != nil {
			return err
		}
		s.markDirty(rec.op.Table)
		return nil
	}
	return fmt.Errorf("core: replay: unknown record kind %d", rec.kind)
}

// applyToCurrent redoes one op on the current table. Replay works at
// the storage layer, below the engine, so no triggers fire — the
// H-table side is replayed explicitly by Archive.Ingest.
func (s *System) applyToCurrent(op htable.Op) error {
	t, ok := s.DB.Table(op.Table)
	if !ok {
		return fmt.Errorf("core: replay: unknown table %s", op.Table)
	}
	switch op.Type {
	case sqlengine.ChangeInsert:
		_, err := t.Insert(op.New)
		return err
	case sqlengine.ChangeUpdate, sqlengine.ChangeDelete:
		rid, err := s.findCurrentRow(t, op.Table, op.Old)
		if err != nil {
			return err
		}
		if op.Type == sqlengine.ChangeUpdate {
			return t.Update(rid, op.New)
		}
		return t.Delete(rid)
	}
	return fmt.Errorf("core: replay: unknown op type %v", op.Type)
}

// findCurrentRow locates the live current-table row matching op.Old on
// the table's key columns (keys are unique among live rows).
func (s *System) findCurrentRow(t *relstore.Table, table string, old relstore.Row) (relstore.RID, error) {
	var zero relstore.RID
	spec, ok := s.Archive.Spec(table)
	if !ok {
		return zero, fmt.Errorf("core: replay: no spec for %s", table)
	}
	keyIdx, err := keyIndexes(spec)
	if err != nil {
		return zero, err
	}
	var found relstore.RID
	hit := false
	scanErr := t.Scan(nil, func(rid relstore.RID, row relstore.Row) bool {
		for _, i := range keyIdx {
			if relstore.Compare(row[i], old[i]) != 0 {
				return true
			}
		}
		found, hit = rid, true
		return false
	})
	if scanErr != nil {
		return zero, scanErr
	}
	if !hit {
		return zero, fmt.Errorf("core: replay: no current row in %s matches logged key", table)
	}
	return found, nil
}

// keyIndexes returns the positions of the key columns in the spec.
func keyIndexes(spec htable.TableSpec) ([]int, error) {
	out := make([]int, 0, len(spec.Key))
	for _, k := range spec.Key {
		idx := -1
		for i, c := range spec.Columns {
			if strings.EqualFold(c.Name, k) {
				idx = i
				break
			}
		}
		if idx < 0 {
			return nil, fmt.Errorf("core: replay: key column %s missing from spec %s", k, spec.Name)
		}
		out = append(out, idx)
	}
	return out, nil
}

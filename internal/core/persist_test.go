package core

import (
	"path/filepath"
	"testing"

	"archis/internal/dataset"
	"archis/internal/temporal"
)

func saveLoad(t *testing.T, s *System) *System {
	t.Helper()
	path := filepath.Join(t.TempDir(), "sys.db")
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	return s2
}

func queriesAgree(t *testing.T, a, b *System, queries []string) {
	t.Helper()
	for _, q := range queries {
		ra, err := a.Query(q)
		if err != nil {
			t.Fatalf("original: %s: %v", q, err)
		}
		rb, err := b.Query(q)
		if err != nil {
			t.Fatalf("reopened: %s: %v", q, err)
		}
		if sortedItems(ra.Items) != sortedItems(rb.Items) {
			t.Errorf("results differ after reopen for %s:\n%s\nvs\n%s",
				q, sortedItems(ra.Items), sortedItems(rb.Items))
		}
	}
}

var persistQueries = []string{
	`for $s in doc("employees.xml")/employees/employee[name="Bob"]/salary return $s`,
	`for $m in doc("depts.xml")/depts/dept/mgrno[tstart(.)<=xs:date("1994-05-06") and tend(.)>=xs:date("1994-05-06")] return $m`,
	`for $e in doc("emp.xml")/employees/employee[toverlaps(., telement(xs:date("1994-05-06"), xs:date("1995-05-06")))] return $e/name`,
}

func TestSaveOpenPlain(t *testing.T) {
	s := newLoadedSystem(t, Options{Layout: LayoutPlain})
	s2 := saveLoad(t, s)
	queriesAgree(t, s, s2, persistQueries)
	if s2.Clock() != s.Clock() {
		t.Errorf("clock %s vs %s", s2.Clock(), s.Clock())
	}
	// The reopened system keeps archiving correctly.
	s2.SetClock(temporal.MustParseDate("1997-06-01"))
	if _, err := s2.Exec(`update employee set salary = 70001 where id = 1002`); err != nil {
		t.Fatal(err)
	}
	res, err := s2.Query(`for $s in doc("employees.xml")/employees/employee[name="Alice"]/salary return $s`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 3 {
		t.Errorf("alice versions after reopened update = %d", len(res.Items))
	}
}

func TestSaveOpenClustered(t *testing.T) {
	s := newLoadedSystem(t, Options{Layout: LayoutClustered, MinSegmentRows: 2, Umin: 0.4})
	// Force archiving so segment state must survive the round trip.
	day := temporal.MustParseDate("1997-02-01")
	for i := 0; i < 40; i++ {
		s.SetClock(day.AddDays(i * 10))
		if _, err := s.Exec(`update employee set salary = salary + 100 where id = 1002`); err != nil {
			t.Fatal(err)
		}
	}
	st, _ := s.SegmentStore("employee_salary")
	if st.Archives() == 0 {
		t.Fatal("no archives before save")
	}
	s2 := saveLoad(t, s)
	queriesAgree(t, s, s2, persistQueries)

	st2, ok := s2.SegmentStore("employee_salary")
	if !ok {
		t.Fatal("segment store missing after reopen")
	}
	if st2.LiveSegment() != st.LiveSegment() {
		t.Errorf("live segment %d vs %d", st2.LiveSegment(), st.LiveSegment())
	}
	segs1, _ := st.Segments()
	segs2, _ := st2.Segments()
	if len(segs1) != len(segs2) {
		t.Errorf("segments %d vs %d", len(segs2), len(segs1))
	}
	// Updates keep working and can trigger further archives.
	for i := 0; i < 40; i++ {
		s2.SetClock(s2.Clock().AddDays(10))
		if _, err := s2.Exec(`update employee set salary = salary + 1 where id = 1002`); err != nil {
			t.Fatal(err)
		}
	}
	if st2.Archives() == 0 {
		t.Error("reopened store never archives")
	}
}

func TestSaveOpenCompressed(t *testing.T) {
	s := newLoadedSystem(t, Options{Layout: LayoutCompressed, MinSegmentRows: 2, Umin: 0.4})
	day := temporal.MustParseDate("1997-02-01")
	for i := 0; i < 40; i++ {
		s.SetClock(day.AddDays(i * 10))
		if _, err := s.Exec(`update employee set salary = salary + 100 where id = 1002`); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.CompressFrozen(); err != nil {
		t.Fatal(err)
	}
	cs, _ := s.CompressedStore("employee_salary")
	blocks, _ := cs.BlockCount()
	if blocks == 0 {
		t.Fatal("nothing compressed before save")
	}
	s2 := saveLoad(t, s)
	queriesAgree(t, s, s2, persistQueries)
	cs2, ok := s2.CompressedStore("employee_salary")
	if !ok {
		t.Fatal("compressed store missing after reopen")
	}
	blocks2, _ := cs2.BlockCount()
	if blocks2 != blocks {
		t.Errorf("blocks %d vs %d", blocks2, blocks)
	}
	// Alice's full history is still visible through the blocks.
	res, err := s2.Query(`for $s in doc("employees.xml")/employees/employee[name="Alice"]/salary return $s`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 42 {
		t.Errorf("versions = %d, want 42", len(res.Items))
	}
	// CompressFrozen after reopen does not redo compressed segments.
	if err := s2.CompressFrozen(); err != nil {
		t.Fatal(err)
	}
	blocks3, _ := cs2.BlockCount()
	if blocks3 != blocks {
		t.Errorf("recompression duplicated blocks: %d vs %d", blocks3, blocks)
	}
}

func TestOpenErrors(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "missing.db")); err == nil {
		t.Error("missing file accepted")
	}
	// A bare relstore file without metadata is rejected.
	s := newLoadedSystem(t, Options{})
	path := filepath.Join(t.TempDir(), "bare.db")
	if err := s.DB.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Error("file without ArchIS metadata accepted")
	}
}

func TestDoubleSaveIsStable(t *testing.T) {
	s := newLoadedSystem(t, Options{})
	dir := t.TempDir()
	p1 := filepath.Join(dir, "a.db")
	p2 := filepath.Join(dir, "b.db")
	if err := s.SaveFile(p1); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveFile(p2); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(p2)
	if err != nil {
		t.Fatal(err)
	}
	queriesAgree(t, s, s2, persistQueries)
	_ = dataset.DefaultConfig()
}

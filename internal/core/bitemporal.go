package core

import (
	"context"
	"fmt"

	"archis/internal/sqlengine"
	"archis/internal/temporal"
)

// Bitemporal execution options (DESIGN.md §16). ArchIS stores two
// orthogonal timelines per attribute version: transaction time
// (tstart/tend, system-assigned, queried by LSN through the MVCC
// retained-version ring) and valid time (vstart/vend, application-
// asserted at write time, immutable, defaulting to [now, Forever]).
// The options below thread both through the existing Exec entry
// points without changing any call site that doesn't care.

// ExecOpt modifies one Exec/ExecCtx/ExecDurable/ExecDurableCtx call.
type ExecOpt func(*execOptions)

type execOptions struct {
	valid     *temporal.Interval // write: assert this valid interval
	validAsOf *temporal.Date     // read: valid-time point predicate
	asOfLSN   uint64             // read: transaction-time snapshot
}

// WithValidTime asserts the valid interval recorded for every
// attribute version the statement creates: the mutation states "this
// value holds in the modeled world over iv", independent of when the
// database learned it. Write statements only; without this option
// writes record the default [clock, Forever]. The assertion rides the
// captured op into the WAL, so replay, replicas and point-in-time
// recovery reproduce it exactly.
func WithValidTime(iv temporal.Interval) ExecOpt {
	return func(o *execOptions) { o.valid = &iv }
}

// AsOfValidTime restricts a SELECT/EXPLAIN to versions whose valid
// interval covers d: the query answers from what the database
// currently believes was true at valid date d. Composes with
// AsOfTransactionTime for full bitemporal reads ("what did we believe
// at LSN n about valid date d").
func AsOfValidTime(d temporal.Date) ExecOpt {
	return func(o *execOptions) { o.validAsOf = &d }
}

// AsOfTransactionTime runs a SELECT/EXPLAIN on the retained MVCC
// version published at the given LSN (the same snapshot ReadAsOf
// serves), pinned for the duration of the statement.
func AsOfTransactionTime(lsn uint64) ExecOpt {
	return func(o *execOptions) { o.asOfLSN = lsn }
}

// resolveExecOpts folds the option list and validates the combination
// against the statement class (isRead = select/explain).
func resolveExecOpts(opts []ExecOpt, isRead bool) (execOptions, error) {
	var o execOptions
	for _, opt := range opts {
		opt(&o)
	}
	if o.valid != nil {
		if isRead {
			return o, fmt.Errorf("core: WithValidTime applies to mutations; use AsOfValidTime to query")
		}
		if !o.valid.Valid() {
			return o, fmt.Errorf("core: WithValidTime: empty interval %s", *o.valid)
		}
	}
	if !isRead && (o.validAsOf != nil || o.asOfLSN != 0) {
		return o, fmt.Errorf("core: AsOfValidTime/AsOfTransactionTime apply to SELECT/EXPLAIN only")
	}
	return o, nil
}

// readCtx threads the valid-time predicate to the engine, which pushes
// vstart<=d AND vend>=d into every scan of a valid-capable source.
func (o execOptions) readCtx(ctx context.Context) context.Context {
	if o.validAsOf != nil {
		return sqlengine.WithValidAsOf(ctx, *o.validAsOf)
	}
	return ctx
}

// execRead runs the SELECT/EXPLAIN side of an optioned Exec call:
// transaction-time option pins a retained version, valid-time option
// rides the context into the scan layer.
func (s *System) execRead(ctx context.Context, sql string, o execOptions) (*sqlengine.Result, error) {
	ctx = o.readCtx(ctx)
	if o.asOfLSN != 0 {
		sn, err := s.DB.SnapshotAt(o.asOfLSN)
		if err != nil {
			return nil, err
		}
		defer sn.Release()
		return s.Engine.ExecTracedAtCtx(ctx, sql, nil, sn)
	}
	return s.Engine.ExecCtx(ctx, sql)
}

// withPendingValid installs the write-side valid interval on the
// archive for the duration of fn. Caller holds writeMu — the pending
// interval is writer state, never seen by lock-free readers.
func (s *System) withPendingValid(o execOptions, fn func() (*sqlengine.Result, error)) (*sqlengine.Result, error) {
	if o.valid != nil {
		s.Archive.SetPendingValid(o.valid)
		defer s.Archive.SetPendingValid(nil)
	}
	return fn()
}

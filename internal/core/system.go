// Package core assembles the ArchIS system (paper Figure 5): a
// relational engine with SQL/XML publishing functions, the H-table
// archival layer with trigger- or log-based change capture, XML
// H-views published from the H-tables, the XQuery→SQL/XML translator
// with segment-restriction rewriting, usefulness-based clustering and
// optional BlockZIP compression of frozen segments.
package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"archis/internal/blockzip"
	"archis/internal/htable"
	"archis/internal/obs"
	"archis/internal/relstore"
	"archis/internal/segment"
	"archis/internal/sqlengine"
	"archis/internal/temporal"
	"archis/internal/translator"
	"archis/internal/wal"
	"archis/internal/xmltree"
	"archis/internal/xquery"
)

// Layout selects the physical layout of attribute-history tables.
type Layout uint8

const (
	// LayoutPlain stores attribute histories as append-only heap
	// tables (the paper's unclustered configuration, Figure 9's "no
	// clustering" side).
	LayoutPlain Layout = iota
	// LayoutClustered applies usefulness-based segment clustering
	// (Section 6).
	LayoutClustered
	// LayoutCompressed clusters and BlockZIP-compresses frozen
	// segments (Section 8).
	LayoutCompressed
)

// PlannerMode toggles cost-based query planning (DESIGN.md §12).
type PlannerMode uint8

const (
	// PlannerOn is the default: cost-based access-path selection,
	// hash-join build-side choice and greedy join ordering.
	PlannerOn PlannerMode = iota
	// PlannerOff forces the legacy fixed heuristics (always prefer an
	// eq-index probe, build hash joins on the inner side, fold joins
	// in FROM order) — kept for differential testing.
	PlannerOff
)

// ColumnarMode toggles columnar frozen-segment encoding and the
// vectorized batch executor (DESIGN.md §13).
type ColumnarMode uint8

const (
	// ColumnarOn is the default: frozen blocks are written in the
	// columnar format and single-table scans over compressed storage
	// run batch-at-a-time. Reads accept both block formats either way.
	ColumnarOn ColumnarMode = iota
	// ColumnarOff restores the legacy row-in-blob writes bit for bit
	// and the row-at-a-time executor — kept for differential testing.
	ColumnarOff
)

// Options configure a System.
type Options struct {
	// Capture selects trigger-based (ArchIS-DB2) or log-based
	// (ArchIS-ATLaS) change capture.
	Capture htable.CaptureMode
	// Layout selects the attribute-table layout.
	Layout Layout
	// Umin is the minimum tolerable usefulness for clustering;
	// defaults to 0.4 (the paper's experimental setting).
	Umin float64
	// MinSegmentRows gates archiving (segment.DefaultMinSegmentRows
	// if zero).
	MinSegmentRows int
	// BlockSize for BlockZIP (blockzip.DefaultBlockSize if zero).
	BlockSize int
	// WholeSegmentCompression is the ablation mode: compress whole
	// segments as single streams instead of blocks.
	WholeSegmentCompression bool
	// Workers caps intra-query morsel parallelism for single-table
	// scan/aggregate SELECTs (0 = GOMAXPROCS, 1 = serial). See
	// sqlengine.Engine.Workers.
	Workers int
	// Planner toggles cost-based access-path and join planning (the
	// PlannerOn zero value enables it; PlannerOff forces the legacy
	// heuristics). See sqlengine.Engine.Planner.
	Planner PlannerMode
	// Columnar toggles columnar frozen-block encoding plus vectorized
	// batch execution (the ColumnarOn zero value enables it;
	// ColumnarOff restores legacy row-in-blob writes and the
	// row-at-a-time executor). Only meaningful with LayoutCompressed;
	// stores read both block formats regardless, so archives written
	// under either setting reopen under the other.
	Columnar ColumnarMode
	// BlockCacheBytes is the byte budget of the decoded-block cache for
	// BlockZIP reads (0 = off). Only meaningful with LayoutCompressed;
	// DropCaches/cold runs still discard it, so cold numbers are
	// unaffected (DESIGN.md §8.3).
	BlockCacheBytes int
	// WALDir enables the durable write-ahead op log: captured ops,
	// clock ticks and DDL are logged there and snapshots written by
	// Checkpoint. New requires a fresh directory; Open on the
	// directory recovers (DESIGN.md §10).
	WALDir string
	// WALFS overrides the log's file layer — fault-injection tests;
	// nil uses the real file system. Snapshots always use the OS.
	WALFS wal.FS
	// WALSync is the commit durability policy (wal.SyncAlways zero
	// default; wal.SyncBatch adds a group-commit coalescing window;
	// wal.SyncNone defers durability to checkpoint/close).
	WALSync wal.SyncMode
	// WALBatchWindow is the SyncBatch coalescing window
	// (wal.DefaultBatchWindow if zero).
	WALBatchWindow time.Duration
	// WALSegmentBytes is the log segment roll threshold
	// (wal.DefaultSegmentBytes if zero).
	WALSegmentBytes int
	// SlowQueryThreshold, when positive, logs every query (Exec, Query,
	// QueryXML entry points) that takes at least this long as one
	// structured line through SlowQueryLog (DESIGN.md §11).
	SlowQueryThreshold time.Duration
	// SlowQueryLog receives slow-query records; nil discards them.
	SlowQueryLog func(record string)
}

// System is the assembled ArchIS instance.
type System struct {
	DB      *relstore.Database
	Engine  *sqlengine.Engine
	Archive *htable.Archive

	opts       Options
	catalog    *lockedCatalog
	translator *translator.Translator

	segStores  map[string]*segment.Store            // attr table → store
	compStores map[string]*blockzip.CompressedStore // attr table → store

	// pubMu guards pubCache and dirty: the published-view cache is
	// filled lazily on the query (read) path, so concurrent queries
	// touch it at the same time.
	pubMu    sync.RWMutex
	pubCache map[string]*xmltree.Node // table → published H-doc
	dirty    map[string]bool

	// Observability (metrics.go, DESIGN.md §11): the registry surfaces
	// the storage and WAL counters plus the per-path query-latency
	// histograms below. Always non-nil.
	metrics *obs.Registry
	qhSQL   *obs.Histogram // query.sql_ns: direct SQL through Exec
	qhTrans *obs.Histogram // query.sqlxml_ns: translated XQuery
	qhXML   *obs.Histogram // query.xml_ns: XQuery on published H-docs

	// Durability (durable.go). writeMu serializes writers — statement
	// execution, DDL, clock moves, checkpoints — while their WAL
	// fsyncs overlap for group commit.
	writeMu  sync.Mutex
	wal      *wal.Log
	walFS    wal.FS
	walLSN   uint64       // LSN covered by the latest checkpoint snapshot
	replayed atomic.Int64 // records replayed by the last recovery

	// Replication and point-in-time recovery (replica.go). Both flags
	// are set during construction, before the system is shared, so
	// plain reads are safe everywhere.
	replica  bool   // WAL-shipping follower: writes arrive only via ApplyReplicated
	readOnly string // non-empty: reason every mutating entry point is rejected
}

// New builds a System over a fresh in-memory database. With
// Options.WALDir set, the system is durable from birth: the directory
// must be fresh (Open recovers existing ones) and receives an initial
// checkpoint snapshot immediately.
func New(opts Options) (*System, error) {
	s, err := newWithDB(relstore.NewDatabase(), opts)
	if err != nil {
		return nil, err
	}
	if opts.WALDir != "" {
		if err := s.initWAL(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

func newWithDB(db *relstore.Database, opts Options) (*System, error) {
	if opts.Umin == 0 {
		opts.Umin = 0.4
	}
	en := sqlengine.New(db)
	en.Workers = opts.Workers
	en.Planner = opts.Planner == PlannerOn
	en.Columnar = opts.Columnar == ColumnarOn
	db.SetBlockCacheBytes(opts.BlockCacheBytes)
	a, err := htable.New(en, opts.Capture)
	if err != nil {
		return nil, err
	}
	s := &System{
		DB:         db,
		Engine:     en,
		Archive:    a,
		opts:       opts,
		catalog:    newLockedCatalog(),
		segStores:  map[string]*segment.Store{},
		compStores: map[string]*blockzip.CompressedStore{},
		pubCache:   map[string]*xmltree.Node{},
		dirty:      map[string]bool{},
	}
	s.translator = &translator.Translator{Catalog: s.catalog}
	s.metrics = obs.NewRegistry()
	s.qhSQL = s.metrics.Histogram("query.sql_ns")
	s.qhTrans = s.metrics.Histogram("query.sqlxml_ns")
	s.qhXML = s.metrics.Histogram("query.xml_ns")
	s.registerMetrics()
	a.SetStoreFactory(s.makeStore)
	// The System publishes explicitly from its write paths (mvcc.go),
	// so readers never take the storage layer's publish lock.
	db.SetAutoPublish(false)
	db.Publish(0)
	return s, nil
}

func (s *System) makeStore(db *relstore.Database, schema relstore.Schema) (htable.AttrStore, error) {
	switch s.opts.Layout {
	case LayoutPlain:
		return htable.NewPlainStore(db, schema)
	case LayoutClustered, LayoutCompressed:
		seg, err := segment.NewStore(db, schema, segment.Config{
			Umin:           s.opts.Umin,
			MinSegmentRows: s.opts.MinSegmentRows,
			Clock:          func() temporal.Date { return s.Engine.Now() },
		})
		if err != nil {
			return nil, err
		}
		s.segStores[strings.ToLower(schema.Name)] = seg
		if s.opts.Layout == LayoutClustered {
			// Logical-version semantics for SQL queries.
			s.Engine.RegisterVirtual(schema.Name, seg)
			return seg, nil
		}
		cs, err := blockzip.NewCompressedStore(db, seg, blockzip.Options{
			BlockSize:     s.opts.BlockSize,
			WholeSegments: s.opts.WholeSegmentCompression,
			Columnar:      s.opts.Columnar == ColumnarOn,
		})
		if err != nil {
			return nil, err
		}
		s.compStores[strings.ToLower(schema.Name)] = cs
		s.Engine.RegisterVirtual(schema.Name, cs)
		return cs, nil
	}
	return nil, fmt.Errorf("core: unknown layout %d", s.opts.Layout)
}

// Register archives a table: current table, H-tables, capture trigger,
// id indexes, and the catalog entry that makes its H-view queryable.
// On a durable system the registration is logged and made durable
// before returning. The log record is appended while writeMu is still
// held so it precedes any op record a concurrent ExecDurable writes to
// the new table — log order must match apply order or replay fails;
// only the fsync wait happens outside the lock.
func (s *System) Register(spec htable.TableSpec) error {
	if s.readOnly != "" {
		return s.readOnlyErr()
	}
	s.writeMu.Lock()
	err := s.registerInternal(spec)
	var lsn uint64
	if err == nil {
		lsn, err = s.appendDDLLocked(encodeRegisterRecord(spec))
	}
	if err == nil {
		// The new tables must be in the published version before any
		// reader can be told about them.
		s.publishLocked()
	}
	s.writeMu.Unlock()
	if err != nil {
		return err
	}
	return s.commitDDL(lsn)
}

// registerInternal is Register without logging — recovery replays
// registrations through it.
func (s *System) registerInternal(spec htable.TableSpec) error {
	if err := s.Archive.Register(spec); err != nil {
		return err
	}
	// Id indexes on the key table and every attribute table — the
	// joins of translated queries run on them.
	keyTable := spec.KeyTableName()
	if _, err := s.DB.CreateIndex("ix_"+keyTable+"_id", keyTable, "id"); err != nil {
		return err
	}
	for _, c := range spec.AttrColumns() {
		at := spec.AttrTableName(c.Name)
		if _, err := s.DB.CreateIndex("ix_"+at+"_id", at, "id"); err != nil {
			return err
		}
	}
	return s.finishRegister(spec)
}

// finishRegister builds the catalog entry and the view-invalidation
// trigger for a registered or attached table.
func (s *System) finishRegister(spec htable.TableSpec) error {
	keyTable := spec.KeyTableName()
	attrTables := map[string]string{}
	for _, c := range spec.AttrColumns() {
		attrTables[strings.ToLower(c.Name)] = spec.AttrTableName(c.Name)
	}
	keyLeaf, keyColumn := "id", "id"
	if len(spec.Key) == 1 {
		keyLeaf = strings.ToLower(spec.Key[0])
		if !spec.SingleIntKey() {
			keyColumn = keyLeaf
		}
	}
	view := &translator.ViewInfo{
		DocName:    spec.DocName(),
		RootName:   spec.RootName(),
		EntityName: spec.Name,
		KeyTable:   keyTable,
		KeyLeaf:    keyLeaf,
		KeyColumn:  keyColumn,
		AttrTables: attrTables,
		// Valid-time query shapes translate only against tables that
		// store the pair; legacy archives take the XML bypass instead.
		HasValid: func(attrTable string) bool {
			t, ok := s.DB.Table(attrTable)
			return ok && t.Schema().ColumnIndex("vstart") >= 0 && t.Schema().ColumnIndex("vend") >= 0
		},
	}
	if s.opts.Layout != LayoutPlain {
		view.Segmented = func(attrTable string) bool {
			_, ok := s.segStores[strings.ToLower(attrTable)]
			return ok
		}
		view.SegmentsFor = func(attrTable string, lo, hi temporal.Date) (int64, int64, bool) {
			st, ok := s.segStores[strings.ToLower(attrTable)]
			if !ok {
				return 0, 0, false
			}
			segs, err := st.SegmentsFor(lo, hi)
			if err != nil || len(segs) == 0 {
				return 0, 0, false
			}
			min, max := segs[0], segs[0]
			for _, sg := range segs[1:] {
				if sg < min {
					min = sg
				}
				if sg > max {
					max = sg
				}
			}
			return min, max, true
		}
	}
	s.catalog.set(spec.DocName(), view)
	s.markDirty(spec.Name)

	// Invalidate the published H-doc on every change.
	table := spec.Name
	s.Engine.AddTrigger(table, func(sqlengine.TriggerEvent) error {
		s.markDirty(table)
		return nil
	})
	return nil
}

func (s *System) markDirty(table string) {
	s.pubMu.Lock()
	s.dirty[strings.ToLower(table)] = true
	s.pubMu.Unlock()
}

// AliasDoc makes the H-view of a table reachable under an extra doc()
// name (the paper refers to the same view as employees.xml and
// emp.xml). On a durable system the alias is logged, appended under
// writeMu for the same ordering reason as Register.
func (s *System) AliasDoc(alias, table string) error {
	if s.readOnly != "" {
		return s.readOnlyErr()
	}
	s.writeMu.Lock()
	err := s.aliasInternal(alias, table)
	var lsn uint64
	if err == nil {
		lsn, err = s.appendDDLLocked(encodeAliasRecord(alias, table))
	}
	s.writeMu.Unlock()
	if err != nil {
		return err
	}
	return s.commitDDL(lsn)
}

func (s *System) aliasInternal(alias, table string) error {
	spec, ok := s.Archive.Spec(table)
	if !ok {
		return fmt.Errorf("core: table %s not registered", table)
	}
	v, ok := s.catalog.get(spec.DocName())
	if !ok {
		return fmt.Errorf("core: no view for %s", table)
	}
	s.catalog.set(alias, v)
	return nil
}

// Clock and SetClock expose the archive clock. On a durable system
// every effective clock move is logged via the archive's clock sink
// (not individually fsynced — a tick becomes durable with the next
// commit or checkpoint, and the log's prefix property keeps recovery
// consistent either way).
func (s *System) Clock() temporal.Date { return s.Archive.Clock() }

func (s *System) SetClock(d temporal.Date) {
	if s.readOnly != "" {
		return
	}
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	s.Archive.SetClock(d)
}

// Exec runs SQL against the engine (the current database and the
// H-tables share it). SELECT and EXPLAIN run lock-free on a pinned
// snapshot of the latest published version — they never block on and
// are never blocked by a writer. Everything else takes the write lock
// and publishes a new version on completion. Latency lands in the
// query.sql_ns histogram and the slow-query log when a threshold is
// configured. Bitemporal options (bitemporal.go): WithValidTime
// stamps a mutation's valid interval, AsOfValidTime/AsOfTransactionTime
// scope a read to a valid date and/or a retained LSN.
func (s *System) Exec(sql string, opts ...ExecOpt) (*sqlengine.Result, error) {
	return s.ExecCtx(context.Background(), sql, opts...)
}

// ExecCtx is Exec under a context: SELECT and EXPLAIN honor
// cancellation mid-scan (the engine probes ctx at morsel and row
// boundaries), mutations check the context once before running —
// there is no rollback below this layer, so a statement that started
// always finishes.
func (s *System) ExecCtx(ctx context.Context, sql string, opts ...ExecOpt) (*sqlengine.Result, error) {
	start := time.Now()
	var res *sqlengine.Result
	var err error
	switch firstKeyword(sql) {
	case "select", "explain":
		o, oerr := resolveExecOpts(opts, true)
		if oerr != nil {
			return nil, oerr
		}
		// The engine pins the current published version per statement
		// (or the retained one AsOfTransactionTime names).
		res, err = s.execRead(ctx, sql, o)
	default:
		o, oerr := resolveExecOpts(opts, false)
		if oerr != nil {
			return nil, oerr
		}
		if s.readOnly != "" {
			return nil, s.readOnlyErr()
		}
		s.writeMu.Lock()
		res, err = s.withPendingValid(o, func() (*sqlengine.Result, error) {
			return s.Engine.ExecCtx(ctx, sql)
		})
		// Publish even on error: a failed statement may have applied
		// partial effects (no rollback below this layer), and live
		// reads always saw them — snapshot reads must converge too.
		s.publishLocked()
		s.writeMu.Unlock()
	}
	rows := 0
	if res != nil {
		rows = len(res.Rows)
	}
	s.observeQuery(s.qhSQL, "sql", sql, time.Since(start), rows, err)
	return res, err
}

// Translate shows the SQL/XML a temporal query maps to.
func (s *System) Translate(query string) (string, error) {
	return s.translator.Translate(query)
}

// ExecutionPath reports which engine answered a query.
type ExecutionPath string

const (
	PathSQL ExecutionPath = "sql/xml" // translated, ran on H-tables
	PathXML ExecutionPath = "xml"     // evaluated on the H-view
)

// QueryResult is the unified result of a temporal query.
type QueryResult struct {
	Items xquery.Seq
	Path  ExecutionPath
	SQL   string // the translation, when Path == PathSQL
}

// Query answers an XQuery over the H-views: translated to SQL/XML when
// the shape is supported, evaluated directly on the published
// H-documents otherwise (the paper's bypass for restructuring and
// quantified queries).
func (s *System) Query(query string) (*QueryResult, error) {
	return s.queryTraced(context.Background(), query, nil)
}

// QueryCtx is Query under a context. The translated SQL/XML path
// honors cancellation mid-scan; the XML bypass path checks the
// context once before evaluation (the tree walk itself is not
// interruptible).
func (s *System) QueryCtx(ctx context.Context, query string) (*QueryResult, error) {
	return s.queryTraced(ctx, query, nil)
}

// QueryTraced is Query under a fresh tracer: the returned QueryTrace
// holds the full span tree — translation, per-operator SQL execution
// or XQuery evaluation — plus the query's storage-counter deltas as
// attributes on the root span. The deltas come from global counters,
// so concurrent queries bleed into each other's attribution; trace
// serially when exact per-query numbers matter.
func (s *System) QueryTraced(query string) (*QueryResult, *obs.QueryTrace, error) {
	tr := obs.NewTracer("query")
	root := tr.Root()
	prev := s.DB.Stats()
	res, err := s.queryTraced(context.Background(), query, root)
	d := s.DB.Stats().Sub(prev)
	root.SetInt("block_reads", d.BlockReads)
	root.SetInt("bytes_read", d.BytesRead)
	root.SetInt("cache_hits", d.CacheHits)
	root.SetInt("pages_skipped", d.PagesSkipped)
	root.SetInt("block_cache_hits", d.BlockCacheHits)
	root.SetInt("block_cache_misses", d.BlockCacheMisses)
	if res != nil {
		root.SetAttr("path", string(res.Path))
		root.AddRows(0, int64(len(res.Items)))
	}
	return res, tr.Finish(query), err
}

// queryTraced is the shared body of Query, QueryCtx and QueryTraced;
// sp may be nil (untraced).
func (s *System) queryTraced(ctx context.Context, query string, sp *obs.Span) (*QueryResult, error) {
	start := time.Now()
	// One snapshot pinned across translate + execute, so the executed
	// SQL reads exactly the version the query started on. Translation
	// itself consults the live segment directories (ViewInfo.SegmentsFor
	// under the store lock); segments are append-only and their
	// boundaries immutable once frozen, so the live-computed segno
	// window only widens relative to the pinned version's — the rewrite
	// stays sound, never excluding a visible row.
	sn := s.DB.Snapshot()
	defer sn.Release()
	sql, terr := s.translator.TranslateTraced(query, sp)
	if terr == nil {
		res, err := s.Engine.ExecTracedAtCtx(ctx, sql, sp, sn)
		if err != nil {
			return nil, fmt.Errorf("core: translated query failed: %w\nsql: %s", err, sql)
		}
		qr := &QueryResult{Items: rowsToSeq(res), Path: PathSQL, SQL: sql}
		s.observeQuery(s.qhTrans, "sql/xml", query, time.Since(start), len(qr.Items), nil)
		return qr, nil
	}
	if !errors.Is(terr, translator.ErrUnsupported) {
		return nil, terr
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: query cancelled: %w", context.Cause(ctx))
	}
	seq, err := s.queryXMLTraced(query, sp)
	s.observeQuery(s.qhXML, "xml", query, time.Since(start), len(seq), err)
	if err != nil {
		return nil, err
	}
	return &QueryResult{Items: seq, Path: PathXML}, nil
}

// ParallelResult is the outcome of one query in a RunParallel batch.
type ParallelResult struct {
	Query  string
	Result *QueryResult
	Err    error
}

// RunParallel executes a batch of read-only queries concurrently over
// a worker pool and returns the outcomes in input order. Each query is
// either an XQuery over the H-views (answered by Query, so it may run
// on either execution path) or a SQL SELECT (run directly on the
// engine). workers <= 0 uses GOMAXPROCS. DML and DDL are rejected:
// writers require exclusive access to the system (see the concurrency
// model in DESIGN.md), so they must not ride in a parallel batch.
func (s *System) RunParallel(queries []string, workers int) []ParallelResult {
	out := make([]ParallelResult, len(queries))
	if len(queries) == 0 {
		return out
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(queries) {
					return
				}
				out[i] = s.runReadOnly(queries[i])
			}
		}()
	}
	wg.Wait()
	return out
}

// runReadOnly answers one RunParallel batch entry.
func (s *System) runReadOnly(q string) ParallelResult {
	pr := ParallelResult{Query: q}
	switch kw := firstKeyword(q); kw {
	case "select", "explain":
		res, err := s.Engine.Exec(q)
		if err != nil {
			pr.Err = err
			return pr
		}
		pr.Result = &QueryResult{Items: rowsToSeq(res), Path: PathSQL, SQL: q}
	case "insert", "update", "delete", "create", "drop":
		pr.Err = fmt.Errorf("core: RunParallel is read-only; %s requires exclusive access", strings.ToUpper(kw))
	default:
		pr.Result, pr.Err = s.Query(q)
	}
	return pr
}

// firstKeyword returns the first SQL keyword of q in lower case,
// skipping leading whitespace, parentheses and SQL comments (`-- …`
// to end of line, `/* … */`), so the RunParallel read-only gate
// classifies statements like `(select …)` or `-- note\nselect …`
// correctly instead of falling through to the XQuery path.
func firstKeyword(q string) string {
	i := 0
	for i < len(q) {
		c := q[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '(':
			i++
		case strings.HasPrefix(q[i:], "--"):
			nl := strings.IndexByte(q[i:], '\n')
			if nl < 0 {
				return ""
			}
			i += nl + 1
		case strings.HasPrefix(q[i:], "/*"):
			end := strings.Index(q[i+2:], "*/")
			if end < 0 {
				return ""
			}
			i += 2 + end + 2
		default:
			j := i
			for j < len(q) && (q[j] == '_' ||
				('a' <= q[j] && q[j] <= 'z') || ('A' <= q[j] && q[j] <= 'Z')) {
				j++
			}
			return strings.ToLower(q[i:j])
		}
	}
	return ""
}

// QueryXML evaluates a query directly over the published H-documents.
func (s *System) QueryXML(query string) (xquery.Seq, error) {
	return s.queryXMLTraced(query, nil)
}

func (s *System) queryXMLTraced(query string, sp *obs.Span) (xquery.Seq, error) {
	ev := xquery.NewEvaluator(s.resolveDoc)
	ev.Now = s.Clock()
	ev.Trace = sp
	return ev.Eval(query)
}

func (s *System) resolveDoc(name string) (*xmltree.Node, error) {
	view, ok := s.catalog.get(name)
	if !ok {
		return nil, fmt.Errorf("core: unknown document %q", name)
	}
	table := view.EntityName
	key := strings.ToLower(table)
	s.pubMu.RLock()
	doc := s.pubCache[key]
	if s.dirty[key] {
		doc = nil
	}
	s.pubMu.RUnlock()
	if doc != nil {
		return doc, nil
	}
	// Publishing scans the live H-tables, which must not race a
	// concurrent writer, so a stale-cache miss briefly joins the writer
	// queue. Cached-document hits above stay lock-free — the XML bypass
	// path's common case under mixed load.
	s.writeMu.Lock()
	doc, err := s.Archive.PublishHDoc(table)
	s.writeMu.Unlock()
	if err != nil {
		return nil, err
	}
	s.pubMu.Lock()
	s.pubCache[key] = doc
	s.dirty[key] = false
	s.pubMu.Unlock()
	return doc, nil
}

// PublishHDoc returns the H-document of a table.
func (s *System) PublishHDoc(table string) (*xmltree.Node, error) {
	return s.Archive.PublishHDoc(table)
}

// FlushLog applies pending log-captured changes (log mode only) and
// publishes the result as a new version.
func (s *System) FlushLog() error {
	if s.readOnly != "" && !s.replica {
		return s.readOnlyErr()
	}
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	if err := s.Archive.FlushLog(); err != nil {
		return err
	}
	s.publishLocked()
	return nil
}

// CompressFrozen compresses all frozen segments (LayoutCompressed
// only), publishing one new version when any segment was compressed.
// Stores with nothing pending are probed without entering the write
// path, so a call on a fully-compressed system leaves the snapshot
// epoch untouched. Runs as an online background writer: concurrent
// readers keep serving their pinned versions throughout.
func (s *System) CompressFrozen() error {
	if s.opts.Layout != LayoutCompressed {
		return fmt.Errorf("core: compression requires LayoutCompressed")
	}
	if s.readOnly != "" && !s.replica {
		return s.readOnlyErr()
	}
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	did := false
	for _, cs := range s.compStores {
		n, err := cs.PendingFrozen()
		if err != nil {
			return err
		}
		if n == 0 {
			continue
		}
		if err := cs.CompressFrozen(); err != nil {
			return err
		}
		did = true
	}
	if did {
		s.publishLocked()
	}
	return nil
}

// SegmentStore exposes the clustering store of one attribute table.
func (s *System) SegmentStore(attrTable string) (*segment.Store, bool) {
	st, ok := s.segStores[strings.ToLower(attrTable)]
	return st, ok
}

// CompressedStore exposes the compression store of one attribute
// table.
func (s *System) CompressedStore(attrTable string) (*blockzip.CompressedStore, bool) {
	st, ok := s.compStores[strings.ToLower(attrTable)]
	return st, ok
}

// StorageBytes reports the physical footprint of all H-tables (key,
// attribute, directory, blob) excluding the current tables.
func (s *System) StorageBytes() int {
	total := 0
	for _, name := range s.DB.TableNames() {
		lower := strings.ToLower(name)
		if s.isCurrentTable(lower) || strings.HasPrefix(lower, "archis_") {
			continue
		}
		if t, ok := s.DB.Table(name); ok {
			total += t.ByteSize()
		}
	}
	return total
}

func (s *System) isCurrentTable(lower string) bool {
	for _, t := range s.Archive.Tables() {
		if strings.ToLower(t) == lower {
			return true
		}
	}
	return false
}

// rowsToSeq flattens a SQL result into an XQuery sequence.
func rowsToSeq(res *sqlengine.Result) xquery.Seq {
	var out xquery.Seq
	for _, row := range res.Rows {
		for _, v := range row {
			switch v.Kind {
			case relstore.TypeXML:
				if v.X != nil {
					out = append(out, xquery.NodeItem(v.X))
				}
			case relstore.TypeNull:
				// skip
			case relstore.TypeInt:
				out = append(out, xquery.NumberItem(float64(v.I)))
			case relstore.TypeFloat:
				out = append(out, xquery.NumberItem(v.F))
			case relstore.TypeDate:
				out = append(out, xquery.DateItem(v.Date()))
			case relstore.TypeBool:
				out = append(out, xquery.BoolItem(v.Truth))
			default:
				out = append(out, xquery.StringItem(v.Text()))
			}
		}
	}
	return out
}

package core

import (
	"encoding/binary"
	"fmt"
	"strings"

	"archis/internal/htable"
	"archis/internal/relstore"
	"archis/internal/sqlengine"
	"archis/internal/temporal"
)

// WAL record payloads. The wal package frames and checksums opaque
// bytes; this file defines what ArchIS puts inside a frame: the
// logical ops the archive captures plus the clock ticks and DDL
// (Register/AliasDoc) needed to replay a log tail onto a snapshot that
// predates them.

type recKind byte

const (
	recOp       recKind = 1 // one captured INSERT/UPDATE/DELETE
	recClock    recKind = 2 // SetClock
	recRegister recKind = 3 // Register(spec)
	recAlias    recKind = 4 // AliasDoc(alias, table)
)

// walRecord is one decoded WAL payload.
type walRecord struct {
	kind  recKind
	op    htable.Op     // recOp
	clock temporal.Date // recClock
	spec  htable.TableSpec
	alias string // recAlias
	table string // recAlias target
}

func appendUvarint(dst []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	return append(dst, tmp[:binary.PutUvarint(tmp[:], v)]...)
}

func appendVarint(dst []byte, v int64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	return append(dst, tmp[:binary.PutVarint(tmp[:], v)]...)
}

func appendString(dst []byte, s string) []byte {
	dst = appendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// appendOptRow encodes a possibly-absent row (DELETE has no New,
// INSERT has no Old) as a presence byte plus the relstore row codec.
func appendOptRow(dst []byte, r relstore.Row) []byte {
	if r == nil {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	return relstore.EncodeRow(dst, r, true)
}

func encodeOpRecord(op htable.Op) []byte {
	dst := []byte{byte(recOp), byte(op.Type)}
	dst = appendVarint(dst, int64(op.At))
	dst = appendString(dst, op.Table)
	dst = appendOptRow(dst, op.Old)
	dst = appendOptRow(dst, op.New)
	// Valid-time pair, appended only when set: default-valid ops encode
	// byte-identically to pre-bitemporal records, and the decoder treats
	// an exhausted buffer as the unset zero pair, so old logs replay
	// unchanged and new logs without valid-time writes stay replayable
	// by old binaries.
	if op.VStart != 0 || op.VEnd != 0 {
		dst = appendVarint(dst, int64(op.VStart))
		dst = appendVarint(dst, int64(op.VEnd))
	}
	return dst
}

func encodeClockRecord(d temporal.Date) []byte {
	return appendVarint([]byte{byte(recClock)}, int64(d))
}

func encodeRegisterRecord(spec htable.TableSpec) []byte {
	dst := []byte{byte(recRegister)}
	dst = appendString(dst, spec.Name)
	keySet := map[string]bool{}
	for _, k := range spec.Key {
		keySet[strings.ToLower(k)] = true
	}
	dst = appendUvarint(dst, uint64(len(spec.Columns)))
	for _, c := range spec.Columns {
		dst = appendString(dst, c.Name)
		dst = appendUvarint(dst, uint64(c.Type))
		if keySet[strings.ToLower(c.Name)] {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	}
	return dst
}

func encodeAliasRecord(alias, table string) []byte {
	dst := []byte{byte(recAlias)}
	dst = appendString(dst, alias)
	return appendString(dst, table)
}

type walDecoder struct {
	buf []byte
	err error
}

func (d *walDecoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("core: wal record: truncated %s", what)
	}
}

func (d *walDecoder) byte_(what string) byte {
	if d.err != nil {
		return 0
	}
	if len(d.buf) == 0 {
		d.fail(what)
		return 0
	}
	b := d.buf[0]
	d.buf = d.buf[1:]
	return b
}

func (d *walDecoder) uvarint(what string) uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.fail(what)
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *walDecoder) varint(what string) int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf)
	if n <= 0 {
		d.fail(what)
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *walDecoder) string_(what string) string {
	n := d.uvarint(what)
	if d.err != nil {
		return ""
	}
	if uint64(len(d.buf)) < n {
		d.fail(what)
		return ""
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s
}

func (d *walDecoder) optRow(what string) relstore.Row {
	if d.byte_(what) == 0 || d.err != nil {
		return nil
	}
	row, _, n, err := relstore.DecodeRow(d.buf)
	if err != nil {
		if d.err == nil {
			d.err = fmt.Errorf("core: wal record: %s: %w", what, err)
		}
		return nil
	}
	d.buf = d.buf[n:]
	return row
}

// decodeWALRecord decodes one frame payload. The payload already
// passed the wal layer's CRC, so a failure here means a version
// mismatch or a bug, not media corruption — callers treat it as fatal
// for replay.
func decodeWALRecord(payload []byte) (walRecord, error) {
	d := &walDecoder{buf: payload}
	rec := walRecord{kind: recKind(d.byte_("kind"))}
	switch rec.kind {
	case recOp:
		rec.op.Type = sqlengine.ChangeType(d.byte_("op type"))
		rec.op.At = temporal.Date(d.varint("op date"))
		rec.op.Table = d.string_("op table")
		rec.op.Old = d.optRow("op old row")
		rec.op.New = d.optRow("op new row")
		if d.err == nil && len(d.buf) > 0 {
			rec.op.VStart = temporal.Date(d.varint("op vstart"))
			rec.op.VEnd = temporal.Date(d.varint("op vend"))
		}
	case recClock:
		rec.clock = temporal.Date(d.varint("clock"))
	case recRegister:
		rec.spec.Name = d.string_("spec name")
		n := d.uvarint("spec column count")
		if d.err == nil && n > uint64(len(d.buf)) {
			// Each column needs at least one byte; reject absurd counts
			// before allocating.
			d.fail("spec column count")
		}
		for i := uint64(0); i < n && d.err == nil; i++ {
			name := d.string_("spec column name")
			typ := relstore.Type(d.uvarint("spec column type"))
			isKey := d.byte_("spec column key flag")
			rec.spec.Columns = append(rec.spec.Columns, relstore.Col(name, typ))
			if isKey == 1 {
				rec.spec.Key = append(rec.spec.Key, name)
			}
		}
	case recAlias:
		rec.alias = d.string_("alias")
		rec.table = d.string_("alias table")
	default:
		return rec, fmt.Errorf("core: wal record: unknown kind %d", rec.kind)
	}
	if d.err != nil {
		return rec, d.err
	}
	if len(d.buf) != 0 {
		return rec, fmt.Errorf("core: wal record: %d trailing bytes", len(d.buf))
	}
	return rec, nil
}

package core

import (
	"sort"
	"strings"
	"testing"

	"archis/internal/dataset"
	"archis/internal/temporal"
	"archis/internal/xquery"
)

func newLoadedSystem(t *testing.T, opts Options) *System {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Register(dataset.EmployeeSpec()); err != nil {
		t.Fatal(err)
	}
	if err := s.Register(dataset.DeptSpec()); err != nil {
		t.Fatal(err)
	}
	if err := s.AliasDoc("emp.xml", "employee"); err != nil {
		t.Fatal(err)
	}
	if err := dataset.LoadMicro(s.Archive); err != nil {
		t.Fatal(err)
	}
	// The micro history is loaded through the archive directly, below
	// the statement paths — publish so snapshot readers see it.
	s.Publish()
	return s
}

func TestQueryViaSQLPath(t *testing.T) {
	s := newLoadedSystem(t, Options{})
	res, err := s.Query(`
element title_history{
  for $t in doc("employees.xml")/employees/employee[name="Bob"]/title
  return $t }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Path != PathSQL {
		t.Errorf("path = %s", res.Path)
	}
	if len(res.Items) != 1 || !strings.Contains(res.Items.Serialize(), "TechLeader") {
		t.Errorf("items = %s", res.Items.Serialize())
	}
	if !strings.Contains(res.SQL, "XMLAgg") {
		t.Errorf("sql = %s", res.SQL)
	}
}

func TestQueryFallsBackToXMLPath(t *testing.T) {
	s := newLoadedSystem(t, Options{})
	// QUERY 6 (restructuring) is outside the translatable subset.
	res, err := s.Query(`
for $e in doc("emp.xml")/employees/employee[name="Bob"]
let $d := $e/deptno
let $t := $e/title
let $overlaps := restructure($d, $t)
return max($overlaps)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Path != PathXML {
		t.Fatalf("path = %s", res.Path)
	}
	if res.Items.Serialize() != "335" {
		t.Errorf("max overlap = %s", res.Items.Serialize())
	}
}

func TestBothPathsAgree(t *testing.T) {
	for _, opts := range []Options{
		{Layout: LayoutPlain},
		{Layout: LayoutClustered, MinSegmentRows: 4},
		{Layout: LayoutCompressed, MinSegmentRows: 4},
	} {
		s := newLoadedSystem(t, opts)
		if opts.Layout == LayoutCompressed {
			if err := s.CompressFrozen(); err != nil {
				t.Fatal(err)
			}
		}
		queries := []string{
			`for $s in doc("employees.xml")/employees/employee[name="Bob"]/salary return $s`,
			`for $m in doc("depts.xml")/depts/dept/mgrno[tstart(.)<=xs:date("1994-05-06") and tend(.)>=xs:date("1994-05-06")] return $m`,
			`for $e in doc("employees.xml")/employees/employee[toverlaps(., telement(xs:date("1994-05-06"), xs:date("1995-05-06")))] return $e/name`,
		}
		for _, q := range queries {
			sqlRes, err := s.Query(q)
			if err != nil {
				t.Fatalf("layout %d: Query(%s): %v", opts.Layout, q, err)
			}
			if sqlRes.Path != PathSQL {
				t.Fatalf("layout %d: expected SQL path for %s", opts.Layout, q)
			}
			xmlRes, err := s.QueryXML(q)
			if err != nil {
				t.Fatal(err)
			}
			a := sortedItems(sqlRes.Items)
			b := sortedItems(xmlRes)
			if a != b {
				t.Errorf("layout %d: paths disagree for %s\nsql: %s\nxml: %s\ntranslation: %s",
					opts.Layout, q, a, b, sqlRes.SQL)
			}
		}
	}
}

func sortedItems(seq xquery.Seq) string {
	items := make([]string, len(seq))
	for i, it := range seq {
		items[i] = it.String()
	}
	sort.Strings(items)
	return strings.Join(items, "\n")
}

func TestSegmentRestrictionEndToEnd(t *testing.T) {
	s := newLoadedSystem(t, Options{Layout: LayoutClustered, MinSegmentRows: 2, Umin: 0.4})
	// Force archiving activity by updating Alice repeatedly.
	day := temporal.MustParseDate("1997-02-01")
	for i := 0; i < 40; i++ {
		s.SetClock(day.AddDays(i * 10))
		if _, err := s.Exec(`update employee set salary = salary + 100 where id = 1002`); err != nil {
			t.Fatal(err)
		}
	}
	st, ok := s.SegmentStore("employee_salary")
	if !ok || st.Archives() == 0 {
		t.Fatalf("no archiving happened (store=%v)", ok)
	}
	sql, err := s.Translate(`
for $s in doc("employees.xml")/employees/employee/salary
    [tstart(.)<=xs:date("1997-06-01") and tend(.)>=xs:date("1997-06-01")]
return $s`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql, ".segno") {
		t.Errorf("no segment restriction in:\n%s", sql)
	}
	res, err := s.Exec(sql)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Errorf("snapshot rows = %d", len(res.Rows))
	}
}

func TestCompressedSystemQueryable(t *testing.T) {
	s := newLoadedSystem(t, Options{Layout: LayoutCompressed, MinSegmentRows: 2, Umin: 0.4})
	day := temporal.MustParseDate("1997-02-01")
	for i := 0; i < 40; i++ {
		s.SetClock(day.AddDays(i * 10))
		if _, err := s.Exec(`update employee set salary = salary + 100 where id = 1002`); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.CompressFrozen(); err != nil {
		t.Fatal(err)
	}
	cs, ok := s.CompressedStore("employee_salary")
	if !ok {
		t.Fatal("no compressed store")
	}
	if n, _ := cs.BlockCount(); n == 0 {
		t.Fatal("nothing compressed")
	}
	res, err := s.Query(`for $s in doc("employees.xml")/employees/employee[name="Alice"]/salary return $s`)
	if err != nil {
		t.Fatal(err)
	}
	// Alice: 2 micro versions + 40 raises = 42 logical versions.
	if len(res.Items) != 42 {
		t.Errorf("alice salary versions = %d", len(res.Items))
	}
}

func TestStorageBytesExcludesCurrent(t *testing.T) {
	s := newLoadedSystem(t, Options{})
	total := s.StorageBytes()
	if total == 0 {
		t.Fatal("no storage accounted")
	}
	cur, _ := s.DB.Table("employee")
	all := 0
	for _, n := range s.DB.TableNames() {
		tb, _ := s.DB.Table(n)
		all += tb.ByteSize()
	}
	if total != all-cur.ByteSize()-mustBytes(s, "dept") {
		t.Errorf("StorageBytes = %d, all = %d", total, all)
	}
}

func mustBytes(s *System, table string) int {
	t, _ := s.DB.Table(table)
	return t.ByteSize()
}

func TestTranslateCostIsSmall(t *testing.T) {
	s := newLoadedSystem(t, Options{})
	q := `for $s in doc("employees.xml")/employees/employee[name="Bob"]/salary return $s`
	// Not a benchmark, just a sanity guard: thousands of translations
	// must be trivially fast (the paper reports < 0.1 ms each).
	for i := 0; i < 1000; i++ {
		if _, err := s.Translate(q); err != nil {
			t.Fatal(err)
		}
	}
}

func TestUnknownDocErrors(t *testing.T) {
	s := newLoadedSystem(t, Options{})
	if _, err := s.Query(`for $x in doc("nosuch.xml")/a/b return $x`); err == nil {
		t.Error("unknown doc accepted")
	}
	if err := s.AliasDoc("x.xml", "nosuch"); err == nil {
		t.Error("alias for unknown table accepted")
	}
}

func TestPublishCacheInvalidation(t *testing.T) {
	s := newLoadedSystem(t, Options{})
	before, err := s.QueryXML(`count(doc("employees.xml")/employees/employee/salary)`)
	if err != nil {
		t.Fatal(err)
	}
	s.SetClock(temporal.MustParseDate("1997-03-01"))
	if _, err := s.Exec(`update employee set salary = 99999 where id = 1002`); err != nil {
		t.Fatal(err)
	}
	after, err := s.QueryXML(`count(doc("employees.xml")/employees/employee/salary)`)
	if err != nil {
		t.Fatal(err)
	}
	if before.Serialize() == after.Serialize() {
		t.Errorf("published view not invalidated: %s vs %s", before.Serialize(), after.Serialize())
	}
}

func TestFirstKeywordSkipsCommentsAndParens(t *testing.T) {
	cases := map[string]string{
		"select 1":                       "select",
		"  \t\nSELECT 1":                 "select",
		"(select 1)":                     "select",
		"((select 1))":                   "select",
		"-- note\nselect 1":              "select",
		"-- note\n-- more\n  (select 1)": "select",
		"/* block */ select 1":           "select",
		"/* multi\nline */ ( /* again */ update t)": "update",
		"-- only a comment":                         "",
		"/* unterminated":                           "",
		"":                                          "",
		`for $x in doc("d") return $x`:              "for",
		"123":                                       "",
	}
	for q, want := range cases {
		if got := firstKeyword(q); got != want {
			t.Errorf("firstKeyword(%q) = %q, want %q", q, got, want)
		}
	}
}

// RunParallel's read-only gate must classify commented/parenthesized
// SQL as SQL (not XQuery) and still reject writes hidden behind
// comments.
func TestRunParallelGateSeesThroughCommentsParallel(t *testing.T) {
	s := newLoadedSystem(t, Options{})
	res := s.RunParallel([]string{
		"(select name from employee_name where name = 'Bob')",
		"-- cold probe\nselect name from employee_name where name = 'Bob'",
		"/* gate test */ select name from employee_name where name = 'Bob'",
		"-- sneaky\ndelete from employee_name",
	}, 2)
	for i := 0; i < 3; i++ {
		if res[i].Err != nil {
			t.Errorf("query %d: %v", i, res[i].Err)
			continue
		}
		if got := res[i].Result.Items.Serialize(); !strings.Contains(got, "Bob") {
			t.Errorf("query %d: items = %s", i, got)
		}
	}
	if res[3].Err == nil || !strings.Contains(res[3].Err.Error(), "read-only") {
		t.Errorf("commented DELETE not rejected: %v", res[3].Err)
	}
}

package core

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"archis/internal/temporal"
	"archis/internal/wal"
)

// TestBitemporalDifferential checks the bitemporal read path against a
// serial in-memory ledger on every physical layout. Each randomized
// write records (value, valid interval, statement LSN); afterwards a
// matrix of (transaction-time LSN, valid date) probes — fanned out
// over goroutines so -race sees concurrent pinned readers — must
// return exactly the ledger prefix at that LSN filtered by valid-time
// containment.
func TestBitemporalDifferential(t *testing.T) {
	layouts := []struct {
		name string
		opts Options
	}{
		{"plain", Options{}},
		{"clustered", Options{Layout: LayoutClustered, MinSegmentRows: 4}},
		{"compressed", Options{Layout: LayoutCompressed, MinSegmentRows: 4}},
	}
	for _, lay := range layouts {
		lay := lay
		t.Run(lay.name, func(t *testing.T) {
			opts := lay.opts
			opts.WALDir = t.TempDir()
			opts.WALFS = wal.OSFS{}
			s, err := New(opts)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			if err := s.Register(empSpec); err != nil {
				t.Fatal(err)
			}

			type entry struct {
				val   int64
				valid temporal.Interval
				lsn   uint64
			}
			rng := rand.New(rand.NewSource(int64(len(lay.name)) * 7919))
			base := day("1995-01-01")
			clock := base
			var ledger []entry

			s.SetClock(clock)
			if _, err := s.ExecDurable(`insert into emp values (1, 'n1', 100)`); err != nil {
				t.Fatal(err)
			}
			ledger = append(ledger, entry{100, temporal.Current(clock), s.Stats().WALAppendedLSN})

			const writes = 30
			for i := 0; i < writes; i++ {
				clock = clock.AddDays(1 + rng.Intn(3))
				s.SetClock(clock)
				val := int64(101 + i)
				var opts []ExecOpt
				valid := temporal.Current(clock)
				if rng.Intn(2) == 0 {
					vs := base.AddDays(rng.Intn(1000))
					valid = temporal.Interval{Start: vs, End: vs.AddDays(rng.Intn(400))}
					opts = append(opts, WithValidTime(valid))
				}
				stmt := fmt.Sprintf(`update emp set salary = %d where id = 1`, val)
				if _, err := s.ExecDurable(stmt, opts...); err != nil {
					t.Fatal(err)
				}
				ledger = append(ledger, entry{val, valid, s.Stats().WALAppendedLSN})

				// Exercise segment migration mid-history so probes cross
				// live, frozen and compressed storage.
				if lay.name != "plain" && i%8 == 7 {
					if _, err := s.Compact(); err != nil {
						t.Fatal(err)
					}
					if lay.name == "compressed" {
						if err := s.CompressFrozen(); err != nil {
							t.Fatal(err)
						}
					}
				}
			}

			// Probe matrix: random (prefix, date) pairs plus the exact
			// boundary dates of random ledger entries.
			type probe struct {
				k int // ledger prefix length
				d temporal.Date
			}
			var probes []probe
			for i := 0; i < 16; i++ {
				probes = append(probes, probe{1 + rng.Intn(len(ledger)), base.AddDays(rng.Intn(1400))})
			}
			for i := 0; i < 8; i++ {
				e := ledger[rng.Intn(len(ledger))]
				k := 1 + rng.Intn(len(ledger))
				probes = append(probes,
					probe{k, e.valid.Start},
					probe{k, e.valid.Start.AddDays(-1)})
				if !e.valid.End.IsForever() {
					probes = append(probes, probe{k, e.valid.End}, probe{k, e.valid.End.AddDays(1)})
				}
			}

			expect := func(k int, d temporal.Date) string {
				var parts []string
				for _, e := range ledger[:k] {
					if e.valid.Contains(d) {
						parts = append(parts, fmt.Sprintf("%d", e.val))
					}
				}
				return strings.Join(parts, ",")
			}

			var wg sync.WaitGroup
			errs := make(chan string, len(probes))
			sem := make(chan struct{}, 4)
			for _, p := range probes {
				p := p
				wg.Add(1)
				sem <- struct{}{}
				go func() {
					defer wg.Done()
					defer func() { <-sem }()
					res, err := s.Exec("SELECT salary FROM emp_salary WHERE id = 1 ORDER BY tstart",
						AsOfTransactionTime(ledger[p.k-1].lsn), AsOfValidTime(p.d))
					if err != nil {
						errs <- fmt.Sprintf("probe (k=%d, d=%s): %v", p.k, p.d, err)
						return
					}
					var parts []string
					for _, r := range res.Rows {
						parts = append(parts, r[0].Text())
					}
					if got, want := strings.Join(parts, ","), expect(p.k, p.d); got != want {
						errs <- fmt.Sprintf("probe (k=%d, d=%s): got [%s], want [%s]", p.k, p.d, got, want)
					}
				}()
			}
			wg.Wait()
			close(errs)
			for e := range errs {
				t.Error(e)
			}

			if n := s.DB.Stats().PinnedReaders; n != 0 {
				t.Errorf("pinned_readers = %d after probe fan-out, want 0", n)
			}
		})
	}
}

package core

import (
	"fmt"
	"sync"

	"archis/internal/obs"
	"archis/internal/sqlengine"
	"archis/internal/translator"
)

// MVCC snapshot publication (DESIGN.md §14). The system disables the
// storage layer's publish-on-demand mode and publishes explicitly from
// every write path while writeMu is still held: statement execution
// (Exec, ExecDurable), DDL (Register), log flushes, checkpoints,
// archive compaction and frozen-segment compression. Each published
// version is stamped with the WAL LSN that covers it, so readers pin a
// version without taking any lock and ReadAsOf maps an LSN back to the
// exact state that was durable at that point.

// publishLocked publishes the database's unpublished changes stamped
// with the WAL position that covers them (0 on a non-durable system —
// versions still supersede each other by epoch). Caller holds writeMu.
func (s *System) publishLocked() {
	var lsn uint64
	if s.wal != nil {
		lsn = s.wal.AppendedLSN()
	}
	s.DB.Publish(lsn)
}

// Publish makes writes that bypassed the System's statement paths
// visible to snapshot readers. Loaders that write through the archive
// directly (dataset generators, bulk imports) call it once after the
// load; the System's own write paths publish on their own.
func (s *System) Publish() {
	s.writeMu.Lock()
	s.publishLocked()
	s.writeMu.Unlock()
}

// ReadAsOf runs one read-only SQL statement against the newest
// retained version whose publish LSN is at or below lsn — the
// point-in-time query primitive. It errors when lsn predates the
// retention horizon (the storage layer keeps a bounded ring of
// versions) and rejects statements that are not SELECT or EXPLAIN.
func (s *System) ReadAsOf(lsn uint64, sql string) (*sqlengine.Result, error) {
	switch firstKeyword(sql) {
	case "select", "explain":
	default:
		return nil, fmt.Errorf("core: ReadAsOf is read-only; got %q", firstKeyword(sql))
	}
	sn, err := s.DB.SnapshotAt(lsn)
	if err != nil {
		return nil, err
	}
	defer sn.Release()
	return s.Engine.ExecTracedAt(sql, nil, sn)
}

// ReadAsOfTraced is ReadAsOf under a caller-supplied span (EXPLAIN
// ANALYZE-style tooling); sp may be nil.
func (s *System) ReadAsOfTraced(lsn uint64, sql string, sp *obs.Span) (*sqlengine.Result, error) {
	switch firstKeyword(sql) {
	case "select", "explain":
	default:
		return nil, fmt.Errorf("core: ReadAsOf is read-only; got %q", firstKeyword(sql))
	}
	sn, err := s.DB.SnapshotAt(lsn)
	if err != nil {
		return nil, err
	}
	defer sn.Release()
	return s.Engine.ExecTracedAt(sql, sp, sn)
}

// Compact archives every clustered attribute table's live segment that
// has rows, publishing one new version when any work was done. Stores
// with an empty live segment are skipped without entering the write
// path at all, so a Compact on a quiescent system leaves the snapshot
// epoch untouched. Returns how many stores were archived. Runs as an
// online background writer: concurrent readers keep their pinned
// versions throughout.
func (s *System) Compact() (int, error) {
	if s.readOnly != "" && !s.replica {
		return 0, s.readOnlyErr()
	}
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	n := 0
	for _, st := range s.segStores {
		if st.ArchivableRows() == 0 {
			continue
		}
		if err := st.ArchiveNow(); err != nil {
			return n, err
		}
		n++
	}
	if n > 0 {
		s.publishLocked()
	}
	return n, nil
}

// lockedCatalog is the translator catalog behind a read-write lock:
// queries resolve doc() names concurrently with Register/AliasDoc
// installing new views, which under MVCC no longer excludes readers.
type lockedCatalog struct {
	mu sync.RWMutex
	m  translator.MapCatalog
}

func newLockedCatalog() *lockedCatalog {
	return &lockedCatalog{m: translator.MapCatalog{}}
}

// ViewByDoc implements translator.Catalog.
func (c *lockedCatalog) ViewByDoc(doc string) (*translator.ViewInfo, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.m.ViewByDoc(doc)
}

func (c *lockedCatalog) get(name string) (*translator.ViewInfo, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	v, ok := c.m[name]
	return v, ok
}

func (c *lockedCatalog) set(name string, v *translator.ViewInfo) {
	c.mu.Lock()
	c.m[name] = v
	c.mu.Unlock()
}

// items returns a point-in-time copy for iteration (writeMeta).
func (c *lockedCatalog) items() translator.MapCatalog {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(translator.MapCatalog, len(c.m))
	for k, v := range c.m {
		out[k] = v
	}
	return out
}

package bench

import (
	"regexp"
	"strings"
	"testing"

	"archis/internal/core"
	"archis/internal/obs"
	"archis/internal/sqlengine"
)

// buildExplainEnv pins everything the plans depend on: the seeded
// small workload, MinSegmentRows=160 (buildAll's setting) and two
// intra-query workers, so EXPLAIN output is byte-stable across
// machines.
func buildExplainEnv(t *testing.T, opts Options) *Env {
	t.Helper()
	opts.Workers = 2
	opts.MinSegmentRows = 160
	e, err := Build(smallCfg(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func explain(t *testing.T, e *Env, sql string) string {
	t.Helper()
	res, err := e.Sys.Exec("EXPLAIN " + sql)
	if err != nil {
		t.Fatalf("EXPLAIN %s: %v", sql, err)
	}
	var b strings.Builder
	for _, row := range res.Rows {
		b.WriteString(row[0].Text())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestExplainGolden locks the static plans of the Table 3 suite (plus
// the self-join formulation of Q6) on the clustered layout, and
// checks the compressed layout plans match in shape — compression is
// a storage-level change that may shift cardinality estimates but
// never the chosen access path or operators.
func TestExplainGolden(t *testing.T) {
	e := buildExplainEnv(t, Options{Layout: core.LayoutClustered})
	golden := map[QueryID]string{
		Q1: `select
  morsel-fanout workers=2
    scan S (virtual) bounds=4 filter=4 conjuncts est=1
  project cols=1
`,
		Q2: `select
  morsel-fanout workers=2
    scan S (virtual) bounds=3 filter=3 conjuncts est=3
  agg-merge
  project cols=1
`,
		Q3: `select
  morsel-fanout workers=2
    scan S (virtual) bounds=1 filter=1 conjuncts est=74
  project cols=3 order-by=1
`,
		Q4: `select
  morsel-fanout workers=2
    scan S (virtual) est=743
  agg-merge
  project cols=1
`,
		Q5: `select
  morsel-fanout workers=2
    scan S (virtual) bounds=3 filter=4 conjuncts est=7
  agg-merge
  project cols=1
`,
		Q6: `select
  morsel-fanout workers=2
    scan S (virtual) bounds=3 filter=3 conjuncts est=11
  agg-merge
  project cols=1
`,
	}
	for _, q := range AllQueries {
		if got := explain(t, e, e.SQL(q)); got != golden[q] {
			t.Errorf("Q%d plan drifted:\n--- got ---\n%s--- want ---\n%s", q, got, golden[q])
		}
	}
	// The planner drives the self-join from the smaller estimated side
	// (S1, segment-restricted) and builds the hash table on it —
	// build=outer asserts the build-side choice deterministically.
	joinGolden := `select
  scan S1 (virtual) bounds=1 filter=1 conjuncts est=131
  hash join S2 keys=1 build=outer est outer=131 inner=743 out=1315
  filter residual=2 conjuncts
  project cols=1
`
	if got := explain(t, e, e.JoinSQL()); got != joinGolden {
		t.Errorf("join plan drifted:\n--- got ---\n%s--- want ---\n%s", got, joinGolden)
	}

	// Compressed plans must match clustered plans in shape and access
	// path; only the cardinality estimates may differ (block-granular
	// statistics vs page-granular ones).
	c := buildExplainEnv(t, Options{Layout: core.LayoutCompressed, Compress: true})
	for _, q := range AllQueries {
		if cp, kp := maskEst(explain(t, c, c.SQL(q))), maskEst(golden[q]); cp != kp {
			t.Errorf("Q%d: compressed plan differs from clustered:\n%s\nvs\n%s", q, cp, kp)
		}
	}
}

// maskEst strips cardinality estimates so cross-layout plan
// comparisons assert shape and access path, not statistics.
var estRE = regexp.MustCompile(`est[ =][^\n]*`)

func maskEst(s string) string { return estRE.ReplaceAllString(s, "est […]") }

// maskTimings replaces span durations with [T] so golden EXPLAIN
// ANALYZE output asserts structure and cardinalities, never clocks.
var timingRE = regexp.MustCompile(`\[[0-9.]+(µs|ms|s)\]`)

func maskTimings(s string) string { return timingRE.ReplaceAllString(s, "[T]") }

// TestExplainAnalyzeJoinGolden runs EXPLAIN ANALYZE on the Table 3
// join query and asserts the executed plan tree node by node:
// operator order, per-node input/output cardinalities and attributes,
// with timings masked.
func TestExplainAnalyzeJoinGolden(t *testing.T) {
	e := buildExplainEnv(t, Options{Layout: core.LayoutClustered})
	res, err := e.Sys.Exec("EXPLAIN ANALYZE " + e.JoinSQL())
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, row := range res.Rows {
		b.WriteString(row[0].Text())
		b.WriteByte('\n')
	}
	got := maskTimings(b.String())
	want := `query  [T] rows=1 snapshot_lsn=0
  scan  [T] rows=143 table=S1 access=scan est_rows=131
  join:hash-build  [T] rows=0 rows_in=143 table=S2 side=outer est_outer=131 est_inner=743 est_out=1315 buckets=72
  join:hash-probe  [T] rows=908 rows_in=506 table=S2
  filter  [T] rows=261 rows_in=908
  aggregate  [T] rows=1 rows_in=261
  project  [T] rows=1 rows_in=1 grouped=true
`
	if got != want {
		t.Errorf("EXPLAIN ANALYZE drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestExplainAnalyzeSuite smoke-checks EXPLAIN ANALYZE over the whole
// suite on the clustered layout: every tree must carry the root
// cardinality and at least one timed operator node.
func TestExplainAnalyzeSuite(t *testing.T) {
	e := buildExplainEnv(t, Options{Layout: core.LayoutClustered})
	for _, q := range AllQueries {
		res, err := e.Sys.Exec("EXPLAIN ANALYZE " + e.SQL(q))
		if err != nil {
			t.Fatalf("Q%d: %v", q, err)
		}
		if len(res.Rows) < 2 {
			t.Fatalf("Q%d: analyze tree has %d lines, want root + operators", q, len(res.Rows))
		}
		root := res.Rows[0][0].Text()
		if !strings.HasPrefix(root, "query  [") || !strings.Contains(root, "rows=") {
			t.Errorf("Q%d: root line %q lacks timing or cardinality", q, root)
		}
		if masked := maskTimings(root); !strings.Contains(masked, "[T]") {
			t.Errorf("Q%d: timing mask failed on %q", q, root)
		}
	}
}

// TestTraceDifferential runs the suite traced and untraced on all
// three layouts and requires identical answers — instrumentation must
// observe execution, never alter it. CI runs this under -race, so
// concurrent span updates from morsel workers get checked too.
func TestTraceDifferential(t *testing.T) {
	for _, lay := range []struct {
		name string
		opts Options
	}{
		{"plain", Options{Layout: core.LayoutPlain}},
		{"clustered", Options{Layout: core.LayoutClustered}},
		{"compressed", Options{Layout: core.LayoutCompressed, Compress: true}},
	} {
		e := buildExplainEnv(t, lay.opts)
		for _, q := range AllQueries {
			plain, err := e.Run(q)
			if err != nil {
				t.Fatalf("%s Q%d untraced: %v", lay.name, q, err)
			}
			tr := obs.NewTracer("query")
			res, err := e.Sys.Engine.ExecTraced(e.SQL(q), tr.Root())
			if err != nil {
				t.Fatalf("%s Q%d traced: %v", lay.name, q, err)
			}
			traced := resultOf(res)
			if traced != plain {
				t.Errorf("%s Q%d: traced answer %+v differs from untraced %+v",
					lay.name, q, traced, plain)
			}
			if qt := tr.Finish(e.SQL(q)); qt.Find("scan") == nil && qt.Find("morsel-fanout") == nil {
				t.Errorf("%s Q%d: trace has neither scan nor morsel-fanout span:\n%s",
					lay.name, q, qt.Tree())
			}
		}
	}
}

// resultOf mirrors Env.Run's Result extraction for a raw engine
// result.
func resultOf(res *sqlengine.Result) Result {
	out := Result{Rows: len(res.Rows)}
	if len(res.Rows) == 1 && len(res.Rows[0]) == 1 {
		out.Value = res.Rows[0][0].Text()
	}
	return out
}

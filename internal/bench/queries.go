package bench

import (
	"fmt"

	"archis/internal/temporal"
	"archis/internal/xquery"
)

// QueryID identifies a Table 3 query.
type QueryID int

// The six queries of Table 3.
const (
	Q1 QueryID = iota + 1 // snapshot, single object
	Q2                    // snapshot, aggregate over all objects
	Q3                    // history, single object
	Q4                    // history, all objects (count of changes)
	Q5                    // temporal slicing with a value predicate
	Q6                    // temporal join (max raise over a window)
)

// Describe returns the paper's wording for a query.
func Describe(q QueryID) string {
	switch q {
	case Q1:
		return "Q1 snapshot (single object): salary of one employee on a date"
	case Q2:
		return "Q2 snapshot: average salary on a date"
	case Q3:
		return "Q3 history (single object): salary history of one employee"
	case Q4:
		return "Q4 history: total number of salary changes"
	case Q5:
		return "Q5 slicing: employees with salary > 60K in a window"
	case Q6:
		return "Q6 temporal join: max salary increase over a two-year period"
	}
	return "?"
}

// AllQueries lists Q1..Q6.
var AllQueries = []QueryID{Q1, Q2, Q3, Q4, Q5, Q6}

// Result is a query outcome, comparable across backends.
type Result struct {
	Rows  int
	Value string // scalar result where the query has one
}

// SQL renders the ArchIS-side SQL for a query — the hand-tuned
// statements the paper runs (Q1/Q3 also come out of the translator;
// Q2/Q4/Q5/Q6 use aggregates as Section 5.4's OLAP mapping does).
func (e *Env) SQL(q QueryID) string {
	day := e.SnapshotDay
	switch q {
	case Q1:
		return fmt.Sprintf(
			`select S.salary from employee_salary S where S.id = %d and S.tstart <= DATE '%s' and S.tend >= DATE '%s'%s`,
			e.SingleID, day, day, e.segRestrict("S", "employee_salary", day, day))
	case Q2:
		return fmt.Sprintf(
			`select avg(S.salary) from employee_salary S where S.tstart <= DATE '%s' and S.tend >= DATE '%s'%s`,
			day, day, e.segRestrict("S", "employee_salary", day, day))
	case Q3:
		return fmt.Sprintf(
			`select S.salary, S.tstart, S.tend from employee_salary S where S.id = %d order by S.tstart`,
			e.SingleID)
	case Q4:
		return `select count(*) from employee_salary S`
	case Q5:
		return fmt.Sprintf(
			`select count_distinct(S.id) from employee_salary S where S.salary > 60000 and toverlaps(S.tstart, S.tend, DATE '%s', DATE '%s')%s`,
			e.SliceLo, e.SliceHi, e.segRestrict("S", "employee_salary", e.SliceLo, e.SliceHi))
	case Q6:
		// The paper's optimization: the temporal join runs as a
		// user-defined aggregate in one scan (Section 8.3). The time
		// bound restricts the segment range (Section 6.3).
		return fmt.Sprintf(
			`select maxraise(S.id, S.salary, S.tstart, 730) from employee_salary S where S.tstart >= DATE '%s'%s`,
			e.JoinStart, e.segRestrict("S", "employee_salary", e.JoinStart, temporal.Forever))
	}
	return ""
}

// JoinSQL is the unoptimized self-join formulation of Q6, kept for the
// join-vs-UDA comparison.
func (e *Env) JoinSQL() string {
	return fmt.Sprintf(
		`select max(S2.salary - S1.salary) from employee_salary S1, employee_salary S2
		 where S1.id = S2.id and S1.tstart >= DATE '%s'
		   and S2.tstart >= S1.tstart and S2.tstart <= S1.tstart + 730`,
		e.JoinStart)
}

// Run executes a query on the ArchIS side.
func (e *Env) Run(q QueryID) (Result, error) {
	res, err := e.Sys.Exec(e.SQL(q))
	if err != nil {
		return Result{}, fmt.Errorf("bench: %s: %w", Describe(q), err)
	}
	out := Result{Rows: len(res.Rows)}
	if len(res.Rows) == 1 && len(res.Rows[0]) == 1 {
		out.Value = res.Rows[0][0].Text()
	}
	return out, nil
}

// XQuery renders the baseline-side XQuery for a query.
func (x *XMLEnv) XQuery(q QueryID) string {
	e := x.Env
	day := e.SnapshotDay
	switch q {
	case Q1:
		return fmt.Sprintf(
			`for $s in doc("employees.xml")/employees/employee[id=%d]/salary
			   [tstart(.) <= xs:date("%s") and tend(.) >= xs:date("%s")]
			 return string($s)`, e.SingleID, day, day)
	case Q2:
		return fmt.Sprintf(
			`avg(doc("employees.xml")/employees/employee/salary
			   [tstart(.) <= xs:date("%s") and tend(.) >= xs:date("%s")])`, day, day)
	case Q3:
		return fmt.Sprintf(
			`for $s in doc("employees.xml")/employees/employee[id=%d]/salary return $s`, e.SingleID)
	case Q4:
		return `count(doc("employees.xml")/employees/employee/salary)`
	case Q5:
		return fmt.Sprintf(
			`count(doc("employees.xml")/employees/employee[
			   some $s in salary satisfies (number($s) > 60000 and
			     toverlaps($s, telement(xs:date("%s"), xs:date("%s"))))])`,
			e.SliceLo, e.SliceHi)
	case Q6:
		return fmt.Sprintf(
			`max(for $e in doc("employees.xml")/employees/employee
			     for $s1 in $e/salary[tstart(.) >= xs:date("%s")]
			     for $s2 in $e/salary[tstart(.) >= tstart($s1) and tstart(.) <= tstart($s1) + 730]
			     return number($s2) - number($s1))`, e.JoinStart)
	}
	return ""
}

// Run executes a query on the XML-baseline side.
func (x *XMLEnv) Run(q QueryID) (Result, error) {
	seq, err := x.DB.Query(x.XQuery(q))
	if err != nil {
		return Result{}, fmt.Errorf("bench: xmldb %s: %w", Describe(q), err)
	}
	out := Result{Rows: len(seq)}
	if len(seq) == 1 {
		out.Value = seq[0].StringValue()
	}
	_ = xquery.Seq(nil)
	return out, nil
}

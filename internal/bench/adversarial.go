package bench

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"archis/internal/relstore"
	"archis/internal/sqlengine"
)

// Adversarial-selectivity planner benchmark (`make planner-smoke`,
// `archis-bench -adversarial`). The workload is built to punish the
// legacy always-index heuristic: an indexed eq predicate matching 75%
// of the table (a skewed two-value column), where a sequential scan
// is clearly cheaper than probing the B+tree row by row — with the
// zero-copy probe path, exactly 50% is near break-even on one core,
// so the skew puts the workload solidly in scan territory while the
// planner's uniform per-key estimate (half the table) already rules
// out the index. A selective eq predicate rides along to show the
// planner still takes the index when it should.

// PlannerRecord is one timed cell of the adversarial benchmark: a
// query run with the planner on or off, with the access path the
// engine chose.
type PlannerRecord struct {
	Case        string  `json:"case"`
	Query       string  `json:"query"`
	Selectivity float64 `json:"selectivity"`
	Planner     bool    `json:"planner"`
	Access      string  `json:"access"` // "scan" or "index"
	MeanNS      int64   `json:"mean_ns"`
	MinNS       int64   `json:"min_ns"`
	Rows        int     `json:"rows"` // rows the predicate matches
}

// BuildAdversarialEngine creates a standalone SQL engine holding one
// table `adv` of n rows: id is unique, flag is 1 on three rows out of
// four. Both columns are indexed, so every eq predicate tempts the
// legacy always-index heuristic.
func BuildAdversarialEngine(n int) (*sqlengine.Engine, error) {
	en := sqlengine.New(relstore.NewDatabase())
	if _, err := en.Exec(`create table adv (id INT, flag INT, v INT)`); err != nil {
		return nil, err
	}
	tbl, _ := en.DB.Table("adv")
	for i := 0; i < n; i++ {
		flag := int64(0)
		if i%4 != 0 {
			flag = 1
		}
		row := relstore.Row{
			relstore.Int(int64(i)),
			relstore.Int(flag),
			relstore.Int(int64(i * 3)),
		}
		if _, err := tbl.Insert(row); err != nil {
			return nil, err
		}
	}
	tbl.Flush()
	// Indexes after the load, so they are backfilled in one pass.
	for _, ddl := range []string{
		`create index ix_adv_id on adv (id)`,
		`create index ix_adv_flag on adv (flag)`,
	} {
		if _, err := en.Exec(ddl); err != nil {
			return nil, err
		}
	}
	return en, nil
}

// AccessPath EXPLAINs the query and reports which access path the
// current planner mode chose for its (single) table.
func AccessPath(en *sqlengine.Engine, query string) (string, error) {
	res, err := en.Exec("EXPLAIN " + query)
	if err != nil {
		return "", err
	}
	for _, row := range res.Rows {
		line := row[0].Text()
		if strings.Contains(line, "index scan") || strings.Contains(line, "index join") {
			return "index", nil
		}
		if strings.Contains(line, "access=colscan") {
			return "colscan", nil
		}
	}
	return "scan", nil
}

// PlannerAdversarial times the permissive (75%-match) and selective
// eq predicates with the cost-based planner on and off and reports
// the chosen access path per cell. The two planner modes of a case
// run interleaved on one engine — pair i times mode A, then mode B,
// back to back — so scheduler and GC noise lands on both modes alike,
// and the per-mode minimum over all pairs approximates each path's
// true cost even on a noisy shared machine. The caller asserts the
// decisions (scan on the permissive predicate, index when selective)
// and compares MinNS.
func PlannerAdversarial(n, runs int) ([]PlannerRecord, error) {
	cases := []struct {
		name        string
		query       string
		selectivity float64
	}{
		{"permissive-eq", `select count(*), sum(v) from adv where flag = 1`, 0.75},
		{"selective-eq", fmt.Sprintf(`select count(*), sum(v) from adv where id = %d`, n/2), 1.0 / float64(n)},
	}
	modes := []bool{true, false}
	var out []PlannerRecord
	for _, c := range cases {
		// A fresh engine and a clean heap per case, so earlier cases'
		// allocation history cannot skew this one's GC behavior.
		en, err := BuildAdversarialEngine(n)
		if err != nil {
			return nil, err
		}
		recs := make([]PlannerRecord, len(modes))
		for mi, planner := range modes {
			en.Planner = planner
			access, err := AccessPath(en, c.query)
			if err != nil {
				return nil, err
			}
			res, err := en.Exec(c.query) // warm-up, and the row count
			if err != nil {
				return nil, err
			}
			matched := 0
			if len(res.Rows) == 1 && len(res.Rows[0]) > 0 {
				if v, ok := res.Rows[0][0].AsInt(); ok {
					matched = int(v)
				}
			}
			recs[mi] = PlannerRecord{
				Case:        c.name,
				Query:       c.query,
				Selectivity: c.selectivity,
				Planner:     planner,
				Access:      access,
				Rows:        matched,
			}
		}
		runtime.GC()
		totals := make([]time.Duration, len(modes))
		mins := make([]time.Duration, len(modes))
		for i := 0; i < runs; i++ {
			for mi, planner := range modes {
				en.Planner = planner
				start := time.Now()
				if _, err := en.Exec(c.query); err != nil {
					return nil, err
				}
				d := time.Since(start)
				totals[mi] += d
				if i == 0 || d < mins[mi] {
					mins[mi] = d
				}
			}
		}
		for mi := range modes {
			recs[mi].MeanNS = (totals[mi] / time.Duration(runs)).Nanoseconds()
			recs[mi].MinNS = mins[mi].Nanoseconds()
			out = append(out, recs[mi])
		}
		en.Planner = true
	}
	return out, nil
}

package bench

import (
	"fmt"
	"runtime"
	"time"

	"archis/internal/core"
	"archis/internal/dataset"
)

// Columnar-vs-row-blob gate (`make columnar-smoke`, `archis-bench
// -columnargate`). Two identically-seeded compressed environments are
// built, one writing frozen blocks in the columnar encoding (and
// executing vectorized), one in the legacy row-in-blob encoding; every
// attribute history is forced frozen and compressed so cold queries
// actually read BlockZIP blocks. The scan-heavy suite queries then run
// cold in interleaved pairs — pair i times columnar, then row-blob,
// back to back — so scheduler and GC noise lands on both encodings
// alike and the per-encoding minimum approximates each path's true
// cost even on a noisy shared machine.

// ColumnarRecord is one timed cell of the gate: a query run cold on
// one encoding of the same dataset.
type ColumnarRecord struct {
	Query    string `json:"query"`
	Columnar bool   `json:"columnar"`
	Encoding string `json:"encoding"` // "columnar" or "rowblob"
	Access   string `json:"access"`   // planner access path ("colscan" when vectorized)
	MeanNS   int64  `json:"mean_ns"`
	MinNS    int64  `json:"min_ns"`
	Rows     int    `json:"rows"`
	Value    string `json:"value,omitempty"`
	// StorageBytes is the H-table footprint of this cell's environment
	// (identical across this encoding's cells).
	StorageBytes int `json:"storage_bytes"`
	// ColBatches counts the vectorized batches the timed runs consumed
	// (0 on the row-blob side — evidence the fast path actually ran).
	ColBatches int64 `json:"col_batches,omitempty"`
}

// encodingName renders the JSON encoding label of one side.
func encodingName(columnar bool) string {
	if columnar {
		return "columnar"
	}
	return "rowblob"
}

// BuildColumnarPair builds the two compressed environments of the
// gate — identical seed and configuration, differing only in the
// frozen-block encoding — with every attribute history frozen and
// compressed.
func BuildColumnarPair(cfg dataset.Config, opts Options) (on, off *Env, err error) {
	build := func(mode core.ColumnarMode) (*Env, error) {
		o := opts
		o.Layout = core.LayoutCompressed
		o.Compress = false // compress after the forced freeze below
		o.Columnar = mode
		e, err := Build(cfg, o)
		if err != nil {
			return nil, err
		}
		if err := e.FreezeAll(); err != nil {
			return nil, err
		}
		return e, nil
	}
	if on, err = build(core.ColumnarOn); err != nil {
		return nil, nil, err
	}
	if off, err = build(core.ColumnarOff); err != nil {
		return nil, nil, err
	}
	return on, off, nil
}

// FreezeAll forces every attribute history into frozen segments and
// compresses them, so cold reads on the compressed layout hit BlockZIP
// blocks rather than the live segment.
func (e *Env) FreezeAll() error {
	for _, table := range e.Sys.Archive.Tables() {
		ts, ok := e.Sys.Archive.Spec(table)
		if !ok {
			continue
		}
		for _, c := range ts.AttrColumns() {
			if st, stOK := e.Sys.SegmentStore(ts.AttrTableName(c.Name)); stOK {
				if err := st.ArchiveNow(); err != nil {
					return err
				}
			}
		}
	}
	return e.Sys.CompressFrozen()
}

// ColumnarCompare times the given queries cold on both encodings in
// interleaved pairs and verifies the answers match pair by pair. The
// caller asserts the latency and storage relations.
func ColumnarCompare(on, off *Env, queries []QueryID, pairs int) ([]ColumnarRecord, error) {
	type side struct {
		env *Env
		rec ColumnarRecord
	}
	var out []ColumnarRecord
	for _, q := range queries {
		sides := []*side{
			{env: on, rec: ColumnarRecord{Columnar: true}},
			{env: off, rec: ColumnarRecord{Columnar: false}},
		}
		for _, s := range sides {
			s.rec.Query = fmt.Sprintf("Q%d", q)
			s.rec.Encoding = encodingName(s.rec.Columnar)
			s.rec.StorageBytes = s.env.Sys.StorageBytes()
			access, err := AccessPath(s.env.Sys.Engine, s.env.SQL(q))
			if err != nil {
				return nil, err
			}
			s.rec.Access = access
			// Untimed warm-up absorbs lazy initialization; timed runs
			// below are all cold.
			s.env.Cold()
			res, err := s.env.Run(q)
			if err != nil {
				return nil, err
			}
			s.rec.Rows, s.rec.Value = res.Rows, res.Value
		}
		runtime.GC()
		totals := make([]time.Duration, len(sides))
		mins := make([]time.Duration, len(sides))
		for i := 0; i < pairs; i++ {
			for si, s := range sides {
				s.env.Cold()
				prev := s.env.Sys.DB.Stats()
				start := time.Now()
				res, err := s.env.Run(q)
				if err != nil {
					return nil, err
				}
				d := time.Since(start)
				s.rec.ColBatches += s.env.Sys.DB.Stats().Sub(prev).ColBatches
				totals[si] += d
				if i == 0 || d < mins[si] {
					mins[si] = d
				}
				if res.Rows != s.rec.Rows || res.Value != s.rec.Value {
					return nil, fmt.Errorf("columnar gate: Q%d answer drifted across runs on %s", q, s.rec.Encoding)
				}
			}
			if sides[0].rec.Value != sides[1].rec.Value || sides[0].rec.Rows != sides[1].rec.Rows {
				return nil, fmt.Errorf("columnar gate: Q%d answers differ between encodings (%q/%d vs %q/%d)",
					q, sides[0].rec.Value, sides[0].rec.Rows, sides[1].rec.Value, sides[1].rec.Rows)
			}
		}
		for si, s := range sides {
			s.rec.MeanNS = (totals[si] / time.Duration(pairs)).Nanoseconds()
			s.rec.MinNS = mins[si].Nanoseconds()
			out = append(out, s.rec)
		}
	}
	return out, nil
}

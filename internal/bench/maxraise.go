package bench

import (
	"fmt"
	"sort"

	"archis/internal/relstore"
	"archis/internal/sqlengine"
)

// RegisterMaxRaise installs the user-defined aggregate the paper uses
// to optimize Q6 ("we effectively optimize the join through a
// user-defined aggregate in one scan"): MAXRAISE(id, salary, tstart,
// window_days) returns the maximum salary increase between two
// versions of the same employee whose starts lie within the window.
func RegisterMaxRaise(en *sqlengine.Engine) {
	en.RegisterAggregate("MAXRAISE", func() sqlengine.AggState {
		return &maxRaiseState{byID: map[int64][]salaryAt{}}
	})
}

type salaryAt struct {
	salary int64
	start  int64
}

type maxRaiseState struct {
	byID   map[int64][]salaryAt
	window int64
}

func (s *maxRaiseState) Add(args []relstore.Value) error {
	if len(args) != 4 {
		return fmt.Errorf("MAXRAISE expects (id, salary, tstart, window_days)")
	}
	id, ok1 := args[0].AsInt()
	sal, ok2 := args[1].AsInt()
	start, ok3 := args[2].AsInt()
	win, ok4 := args[3].AsInt()
	if !ok1 || !ok2 || !ok3 || !ok4 {
		return fmt.Errorf("MAXRAISE: non-numeric argument")
	}
	s.window = win
	s.byID[id] = append(s.byID[id], salaryAt{salary: sal, start: start})
	return nil
}

// Merge combines a partial accumulated over a disjoint row subset, so
// MAXRAISE runs on the engine's morsel-parallel path. Result sorts
// each id's versions by start, so append order doesn't matter.
func (s *maxRaiseState) Merge(other sqlengine.AggState) error {
	o, ok := other.(*maxRaiseState)
	if !ok {
		return fmt.Errorf("MAXRAISE: cannot merge partial of type %T", other)
	}
	if o.window != 0 {
		s.window = o.window
	}
	for id, versions := range o.byID {
		s.byID[id] = append(s.byID[id], versions...)
	}
	return nil
}

func (s *maxRaiseState) Result() relstore.Value {
	best := int64(0)
	// A version paired with itself gives a zero raise, matching the
	// self-join formulation's floor of 0.
	any := len(s.byID) > 0
	for _, versions := range s.byID {
		sort.Slice(versions, func(i, j int) bool { return versions[i].start < versions[j].start })
		// Sliding minimum over the window: for each version, compare
		// against the smallest earlier salary still inside the window.
		for i, v := range versions {
			for j := i + 1; j < len(versions) && versions[j].start-v.start <= s.window; j++ {
				if d := versions[j].salary - v.salary; d > best {
					best = d
				}
			}
		}
	}
	if !any {
		return relstore.Null
	}
	return relstore.Int(best)
}

package bench

import (
	"fmt"
	"sort"

	"archis/internal/relstore"
	"archis/internal/temporal"
)

// BuildUngrouped materializes the temporally ungrouped representation
// of the employee history (the paper's Tables 1–2 layout that
// Section 3 argues against): one row per change with ALL attributes
// repeated. It is the baseline for the grouped-vs-ungrouped ablation —
// attribute-history queries on it must re-coalesce.
func BuildUngrouped(src *Env) (*relstore.Table, error) {
	db := src.Sys.DB
	tbl, err := db.CreateTable(relstore.NewSchema("employee_ungrouped",
		relstore.Col("id", relstore.TypeInt),
		relstore.Col("name", relstore.TypeString),
		relstore.Col("salary", relstore.TypeInt),
		relstore.Col("title", relstore.TypeString),
		relstore.Col("deptno", relstore.TypeString),
		relstore.Col("tstart", relstore.TypeDate),
		relstore.Col("tend", relstore.TypeDate)))
	if err != nil {
		return nil, err
	}

	// Collect per-id attribute versions from the attribute stores.
	type ver struct {
		value relstore.Value
		iv    temporal.Interval
	}
	attrs := []string{"name", "salary", "title", "deptno"}
	perAttr := make([]map[int64][]ver, len(attrs))
	ids := map[int64]bool{}
	for i, attr := range attrs {
		store, ok := src.Sys.Archive.AttrStore("employee", attr)
		if !ok {
			return nil, fmt.Errorf("bench: no store for %s", attr)
		}
		byID := map[int64][]ver{}
		err := store.ScanHistory(func(id int64, v relstore.Value, start, end temporal.Date, _ temporal.Interval) bool {
			byID[id] = append(byID[id], ver{v, temporal.Interval{Start: start, End: end}})
			ids[id] = true
			return true
		})
		if err != nil {
			return nil, err
		}
		perAttr[i] = byID
	}

	// For each id, cut the timeline at every attribute boundary and
	// emit one full-width row per piece — the value-equivalent tuples
	// an ungrouped transaction-time table stores.
	for id := range ids {
		boundsSet := map[temporal.Date]bool{}
		var ends []temporal.Date
		for i := range attrs {
			for _, v := range perAttr[i][id] {
				boundsSet[v.iv.Start] = true
				ends = append(ends, v.iv.End)
			}
		}
		var starts []temporal.Date
		for d := range boundsSet {
			starts = append(starts, d)
		}
		sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
		for k, s := range starts {
			var e temporal.Date
			if k+1 < len(starts) {
				e = starts[k+1].AddDays(-1)
			} else {
				// Last piece extends to the latest end among attributes.
				e = s
				for _, d := range ends {
					if d > e {
						e = d
					}
				}
			}
			if e < s {
				continue
			}
			row := relstore.Row{relstore.Int(id), relstore.Null, relstore.Null, relstore.Null, relstore.Null,
				relstore.DateV(s), relstore.DateV(e)}
			for i := range attrs {
				for _, v := range perAttr[i][id] {
					if v.iv.Contains(s) {
						row[1+i] = v.value
						break
					}
				}
			}
			if _, err := tbl.Insert(row); err != nil {
				return nil, err
			}
		}
	}
	tbl.Flush()
	if _, err := db.CreateIndex("ix_employee_ungrouped_id", "employee_ungrouped", "id"); err != nil {
		return nil, err
	}
	return tbl, nil
}

// UngroupedTitleHistory answers "the title history of one employee" on
// the ungrouped table: fetch the value-equivalent rows and coalesce —
// the extra work Section 3 attributes to ungrouped models.
func UngroupedTitleHistory(src *Env, id int64) ([]temporal.Timed, error) {
	res, err := src.Sys.Exec(fmt.Sprintf(
		`select title, tstart, tend from employee_ungrouped where id = %d`, id))
	if err != nil {
		return nil, err
	}
	timed := make([]temporal.Timed, 0, len(res.Rows))
	for _, r := range res.Rows {
		if r[0].IsNull() {
			continue
		}
		timed = append(timed, temporal.Timed{
			Value:    r[0].Text(),
			Interval: temporal.Interval{Start: r[1].Date(), End: r[2].Date()},
		})
	}
	return temporal.Coalesce(timed), nil
}

// GroupedTitleHistory is the same question on the grouped H-table: the
// history is already coalesced.
func GroupedTitleHistory(src *Env, id int64) (int, error) {
	res, err := src.Sys.Exec(fmt.Sprintf(
		`select title, tstart, tend from employee_title where id = %d`, id))
	if err != nil {
		return 0, err
	}
	return len(res.Rows), nil
}

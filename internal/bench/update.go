package bench

import (
	"fmt"
)

// liveIDs returns up to n ids of current employees.
func (e *Env) liveIDs(n int) ([]int64, error) {
	res, err := e.Sys.Exec(fmt.Sprintf(`select id from employee order by id limit %d`, n))
	if err != nil {
		return nil, err
	}
	out := make([]int64, 0, len(res.Rows))
	for _, r := range res.Rows {
		id, _ := r[0].AsInt()
		out = append(out, id)
	}
	return out, nil
}

// UpdateOne performs the Section 8.4 single-update experiment: raise
// one current employee's salary by 10%. The clock advances one day per
// call so every update creates a new version.
func (e *Env) UpdateOne() error {
	ids, err := e.liveIDs(1)
	if err != nil {
		return err
	}
	if len(ids) == 0 {
		return fmt.Errorf("bench: no live employees")
	}
	e.Sys.SetClock(e.Sys.Clock().AddDays(1))
	_, err = e.Sys.Exec(fmt.Sprintf(
		`update employee set salary = salary + salary / 10 where id = %d`, ids[0]))
	return err
}

// DailyBatch performs the Section 8.4 simulated-daily-update
// experiment: one day's worth of changes (k salary updates).
func (e *Env) DailyBatch(k int) error {
	ids, err := e.liveIDs(k)
	if err != nil {
		return err
	}
	e.Sys.SetClock(e.Sys.Clock().AddDays(1))
	for _, id := range ids {
		if _, err := e.Sys.Exec(fmt.Sprintf(
			`update employee set salary = salary + 100 where id = %d`, id)); err != nil {
			return err
		}
	}
	return nil
}

// XMLUpdateOne is the baseline side of the update experiment: a native
// XML store must rewrite (and recompress) the whole document to apply
// one change, which is exactly the cost the paper observes on Tamino.
func (x *XMLEnv) XMLUpdateOne() error {
	doc, err := x.DB.Query(`doc("employees.xml")`)
	if err != nil {
		return err
	}
	if len(doc) != 1 || !doc[0].IsNode() {
		return fmt.Errorf("bench: cannot load employees.xml")
	}
	root := doc[0].Node.FirstChild("employees")
	if root == nil {
		root = doc[0].Node
	}
	// Mutate one salary text and store the document back.
	for _, emp := range root.ChildElements("employee") {
		sals := emp.ChildElements("salary")
		if len(sals) == 0 {
			continue
		}
		last := sals[len(sals)-1]
		last.Children = nil
		last.AppendText("99999")
		break
	}
	return x.DB.Store("employees.xml", root)
}

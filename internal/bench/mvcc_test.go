package bench

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"archis/internal/core"
	"archis/internal/dataset"
	"archis/internal/sqlengine"
	"archis/internal/wal"
)

// The snapshot-consistency differential: a writer ingests updates (and
// periodically compacts) through the durable statement path while
// concurrent readers pin snapshots and re-ask a fixed query suite. The
// writer records the serial answer of every published LSN in a ledger;
// each reader's answer must equal the ledger entry at its pinned LSN —
// i.e. a reader sees exactly the state that was current when its
// snapshot was taken, never a torn or drifting one. Readers also
// round-trip ReadAsOf(lsn) against the same ledger. Run with -race.

// mvccSuite is a fixed set of full-scan queries whose answers are a
// deterministic function of one published version (ORDER BY where row
// order would otherwise float).
func mvccSuite(e *Env) []string {
	day := e.SnapshotDay
	return []string{
		`select count(*) from employee_salary S`,
		fmt.Sprintf(
			`select avg(S.salary) from employee_salary S where S.tstart <= DATE '%s' and S.tend >= DATE '%s'`,
			day, day),
		fmt.Sprintf(
			`select S.salary, S.tstart, S.tend from employee_salary S where S.id = %d order by S.tstart`,
			e.SingleID),
		fmt.Sprintf(
			`select count_distinct(S.id) from employee_salary S where S.salary > 60000 and toverlaps(S.tstart, S.tend, DATE '%s', DATE '%s')`,
			e.SliceLo, e.SliceHi),
	}
}

// answerFingerprint canonicalizes a result for equality comparison.
func answerFingerprint(res *sqlengine.Result) string {
	var b strings.Builder
	for _, row := range res.Rows {
		for i, v := range row {
			if i > 0 {
				b.WriteByte('|')
			}
			b.WriteString(v.Text())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// runSuiteWith evaluates every suite query through exec and returns the
// fingerprints.
func runSuiteWith(suite []string, exec func(string) (*sqlengine.Result, error)) ([]string, error) {
	out := make([]string, len(suite))
	for i, q := range suite {
		res, err := exec(q)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", q, err)
		}
		out[i] = answerFingerprint(res)
	}
	return out, nil
}

func TestSnapshotConsistencyDifferential(t *testing.T) {
	for _, tc := range []struct {
		name     string
		layout   core.Layout
		columnar core.ColumnarMode
		workers  int
	}{
		{"plain-serial", core.LayoutPlain, core.ColumnarOn, 1},
		{"plain-parallel", core.LayoutPlain, core.ColumnarOn, 4},
		{"clustered-serial", core.LayoutClustered, core.ColumnarOn, 1},
		{"clustered-parallel", core.LayoutClustered, core.ColumnarOn, 4},
		{"compressed-columnar-serial", core.LayoutCompressed, core.ColumnarOn, 1},
		{"compressed-columnar-parallel", core.LayoutCompressed, core.ColumnarOn, 4},
		{"compressed-rowblob-serial", core.LayoutCompressed, core.ColumnarOff, 1},
		{"compressed-rowblob-parallel", core.LayoutCompressed, core.ColumnarOff, 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e, err := Build(dataset.Config{
				Employees:   40,
				Years:       4,
				Departments: 4,
				Seed:        11,
			}, Options{
				Layout:         tc.layout,
				MinSegmentRows: 48,
				Compress:       tc.layout == core.LayoutCompressed,
				Columnar:       tc.columnar,
				Workers:        tc.workers,
				WALDir:         t.TempDir(),
				WALSync:        wal.SyncNone,
			})
			if err != nil {
				t.Fatal(err)
			}
			suite := mvccSuite(e)
			compressed := tc.layout == core.LayoutCompressed

			var ledger sync.Map // lsn -> []string suite fingerprints
			var (
				lsnMu sync.Mutex
				lsns  []uint64
			)
			recordLedger := func() error {
				lsn := e.Sys.WALStats().AppendedLSN
				ans, err := runSuiteWith(suite, func(q string) (*sqlengine.Result, error) { return e.Sys.Exec(q) })
				if err != nil {
					return err
				}
				ledger.Store(lsn, ans)
				lsnMu.Lock()
				lsns = append(lsns, lsn)
				lsnMu.Unlock()
				return nil
			}
			// The load went in below the statement paths; its publish LSN
			// is the current WAL position. Seed the ledger with it so
			// readers that pin the initial version can verify too.
			if err := recordLedger(); err != nil {
				t.Fatal(err)
			}
			ids, err := e.liveIDs(8)
			if err != nil || len(ids) == 0 {
				t.Fatalf("live ids: %v (%d)", err, len(ids))
			}

			const rounds = 25
			const readers = 2
			stop := make(chan struct{})
			errs := make(chan error, 64)
			var wg sync.WaitGroup
			var pinChecks, asofChecks atomic.Int64

			wg.Add(1)
			go func() { // writer: ingest + periodic online compaction
				defer wg.Done()
				defer close(stop)
				for r := 0; r < rounds; r++ {
					e.Sys.SetClock(e.Sys.Clock().AddDays(1))
					_, err := e.Sys.ExecDurable(fmt.Sprintf(
						`update employee set salary = salary + %d where id = %d`, r+1, ids[r%len(ids)]))
					if err != nil {
						errs <- fmt.Errorf("writer round %d: %w", r, err)
						return
					}
					// Serial reference: no other writer runs, so the answer
					// recorded here is the ground truth for this LSN.
					if err := recordLedger(); err != nil {
						errs <- fmt.Errorf("writer ledger round %d: %w", r, err)
						return
					}
					if r%8 == 7 {
						if _, err := e.Sys.Compact(); err != nil {
							errs <- fmt.Errorf("compact round %d: %w", r, err)
							return
						}
						if compressed {
							if err := e.Sys.CompressFrozen(); err != nil {
								errs <- fmt.Errorf("compress round %d: %w", r, err)
								return
							}
						}
					}
					time.Sleep(200 * time.Microsecond)
				}
			}()

			for g := 0; g < readers; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(g) + 101))
					for {
						select {
						case <-stop:
							return
						default:
						}
						// Pin one snapshot across the whole suite and verify
						// against the serial answer at its LSN. A Compact may
						// republish under the same LSN — physically different,
						// logically identical — which this compares too.
						sn := e.Sys.DB.Snapshot()
						lsn := sn.LSN()
						got, err := runSuiteWith(suite, func(q string) (*sqlengine.Result, error) {
							return e.Sys.Engine.ExecTracedAt(q, nil, sn)
						})
						sn.Release()
						if err != nil {
							errs <- fmt.Errorf("reader %d at lsn %d: %w", g, lsn, err)
							return
						}
						if want, ok := ledger.Load(lsn); ok {
							for i, w := range want.([]string) {
								if got[i] != w {
									errs <- fmt.Errorf("reader %d: lsn %d query %d diverged\ngot:  %q\nwant: %q",
										g, lsn, i, got[i], w)
								}
							}
							pinChecks.Add(1)
						}
						// ReadAsOf round-trip at a randomly chosen recorded LSN.
						lsnMu.Lock()
						past := lsns[rng.Intn(len(lsns))]
						lsnMu.Unlock()
						want, ok := ledger.Load(past)
						if !ok {
							continue
						}
						for i, q := range suite {
							res, err := e.Sys.ReadAsOf(past, q)
							if err != nil {
								if strings.Contains(err.Error(), "retention horizon") {
									break
								}
								errs <- fmt.Errorf("reader %d ReadAsOf(%d): %w", g, past, err)
								return
							}
							if fp := answerFingerprint(res); fp != want.([]string)[i] {
								errs <- fmt.Errorf("reader %d: ReadAsOf(%d) query %d diverged\ngot:  %q\nwant: %q",
									g, past, i, fp, want.([]string)[i])
							}
							asofChecks.Add(1)
						}
					}
				}(g)
			}

			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}
			if pinChecks.Load() == 0 {
				t.Error("no pinned-snapshot answer was ever checked against the ledger")
			}
			if asofChecks.Load() == 0 {
				t.Error("no ReadAsOf answer was ever checked against the ledger")
			}
		})
	}
}

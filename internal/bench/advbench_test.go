package bench

import "testing"

// Go-benchmark form of the adversarial permissive predicate, for
// profiling the two access paths head to head (`-bench Adversarial`).
// The planner-on run scans; planner-off forces the index probe the
// legacy heuristic always chose.

const advBenchRows = 120000

func BenchmarkAdversarialScan(b *testing.B) {
	en, err := BuildAdversarialEngine(advBenchRows)
	if err != nil {
		b.Fatal(err)
	}
	en.Planner = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		en.MustExec(`select count(*), sum(v) from adv where flag = 1`)
	}
}

func BenchmarkAdversarialProbe(b *testing.B) {
	en, err := BuildAdversarialEngine(advBenchRows)
	if err != nil {
		b.Fatal(err)
	}
	en.Planner = false
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		en.MustExec(`select count(*), sum(v) from adv where flag = 1`)
	}
}

package bench

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"archis/internal/core"
	"archis/internal/dataset"
	"archis/internal/temporal"
	"archis/internal/wal"
	"archis/internal/xmltree"
)

// The crash matrix: a scripted durable workload is run once to count
// every fsync it issues, then re-run once per fsync with the file
// layer configured to kill the process at exactly that boundary (with
// and without torn unsynced bytes surviving). Each survivor is
// recovered and must answer the Table 3 suite — and publish H-docs —
// exactly like some statement prefix at least as long as what was
// acknowledged: durability for acked statements, atomicity always.

// crashStep is one scripted action, applied to the durable system
// under test and to the in-memory reference twin.
type crashStep struct {
	name    string
	durable func(*core.System) error
	twin    func(*core.System) error
}

func crashScript() []crashStep {
	ddl := func(spec string) crashStep {
		emp := spec == "employee"
		return crashStep{
			name: "register " + spec,
			durable: func(s *core.System) error {
				if emp {
					return s.Register(dataset.EmployeeSpec())
				}
				return s.Register(dataset.DeptSpec())
			},
			twin: func(s *core.System) error {
				if emp {
					return s.Register(dataset.EmployeeSpec())
				}
				return s.Register(dataset.DeptSpec())
			},
		}
	}
	dml := func(day, sql string) crashStep {
		at := temporal.MustParseDate(day)
		return crashStep{
			name: day + " " + sql,
			durable: func(s *core.System) error {
				s.SetClock(at)
				_, err := s.ExecDurable(sql)
				return err
			},
			twin: func(s *core.System) error {
				s.SetClock(at)
				_, err := s.Exec(sql)
				return err
			},
		}
	}
	return []crashStep{
		ddl("employee"),
		ddl("dept"),
		dml("1992-01-01", `insert into dept values ('d02', 'RD', 3402)`),
		dml("1994-01-01", `insert into dept values ('d01', 'QA', 2501)`),
		dml("1995-01-01", `insert into employee values (1001, 'Bob', 60000, 'Engineer', 'd01')`),
		dml("1995-03-01", `insert into employee values (1002, 'Alice', 50000, 'Engineer', 'd01')`),
		dml("1995-06-01", `update employee set salary = 70000 where id = 1001`),
		{
			name:    "checkpoint",
			durable: func(s *core.System) error { return s.Checkpoint() },
			twin:    func(s *core.System) error { return nil },
		},
		dml("1995-10-01", `update employee set title = 'Sr Engineer', deptno = 'd02' where id = 1001`),
		dml("1996-01-01", `update employee set salary = 65000 where id = 1002`),
		dml("1996-07-01", `update dept set mgrno = 1009 where deptno = 'd02'`),
		dml("1997-01-01", `delete from employee where id = 1001`),
	}
}

// crashEnv wraps a system with fixed workload parameters so the Table
// 3 suite renders against the scripted micro-history.
func crashEnv(sys *core.System) *Env {
	RegisterMaxRaise(sys.Engine)
	return &Env{
		Sys:         sys,
		SingleID:    1001,
		SnapshotDay: temporal.MustParseDate("1996-01-15"),
		SliceLo:     temporal.MustParseDate("1995-06-01"),
		SliceHi:     temporal.MustParseDate("1996-06-01"),
		JoinStart:   temporal.MustParseDate("1995-01-01"),
	}
}

// crashFingerprint captures everything the matrix compares: the H-docs
// of both tables and the six suite answers. Defined (and distinct) at
// every script prefix, including before the tables exist.
func crashFingerprint(sys *core.System) (string, error) {
	if err := sys.FlushLog(); err != nil {
		return "", err
	}
	var b strings.Builder
	tables := 0
	for _, table := range []string{"employee", "dept"} {
		if _, ok := sys.Archive.Spec(table); !ok {
			fmt.Fprintf(&b, "%s:absent\n", table)
			continue
		}
		tables++
		doc, err := sys.PublishHDoc(table)
		if err != nil {
			return "", err
		}
		b.WriteString(xmltree.String(doc))
		b.WriteString("\n")
	}
	if tables < 2 {
		return b.String(), nil
	}
	e := crashEnv(sys)
	for _, q := range AllQueries {
		r, err := e.Run(q)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "Q%d:%+v\n", q, r)
	}
	return b.String(), nil
}

func crashOpts(dir string, fsys wal.FS) core.Options {
	return core.Options{
		Layout:         core.LayoutClustered,
		MinSegmentRows: 4,
		WALDir:         dir,
		WALFS:          fsys,
		// Tiny segments so the matrix crosses rotation boundaries too.
		WALSegmentBytes: 256,
	}
}

// TestCrashUnderConcurrentReaders kills the WAL at selected fsync
// boundaries while reader goroutines are mid-scan against the same
// system. Readers run on pinned snapshots, so even as the writer dies
// mid-statement each must only ever observe complete statement
// prefixes — checked by requiring every reader's history row count to
// be monotone. The survivor must recover to an acked-or-later prefix
// exactly as in the plain matrix, and ReadAsOf must serve the
// recovered tail from the replayed version ring.
func TestCrashUnderConcurrentReaders(t *testing.T) {
	script := crashScript()

	// Reference run for the fsync budget and per-prefix fingerprints.
	refFS := wal.NewFaultFS()
	refSys, err := core.New(crashOpts(t.TempDir(), refFS))
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range script {
		if err := st.durable(refSys); err != nil {
			t.Fatalf("reference run, %s: %v", st.name, err)
		}
	}
	totalSyncs := refFS.SyncCount()

	expected := make([]string, 0, len(script)+1)
	twin, err := core.New(core.Options{Layout: core.LayoutClustered, MinSegmentRows: 4})
	if err != nil {
		t.Fatal(err)
	}
	fp, err := crashFingerprint(twin)
	if err != nil {
		t.Fatal(err)
	}
	expected = append(expected, fp)
	for _, st := range script {
		if err := st.twin(twin); err != nil {
			t.Fatalf("twin, %s: %v", st.name, err)
		}
		if fp, err = crashFingerprint(twin); err != nil {
			t.Fatalf("twin fingerprint after %s: %v", st.name, err)
		}
		expected = append(expected, fp)
	}

	// A spread of kill points rather than the full matrix: the reader
	// interaction is identical at every boundary, the recovery logic is
	// covered exhaustively by TestCrashMatrix.
	kills := []int{totalSyncs / 4, totalSyncs / 2, 3 * totalSyncs / 4, totalSyncs}
	for _, k := range kills {
		if k < 1 {
			k = 1
		}
		t.Run(fmt.Sprintf("sync%02d", k), func(t *testing.T) {
			fault := wal.NewFaultFS()
			fault.StopAfterSyncs = k
			fault.TornTailBytes = 5
			dir := t.TempDir()

			acked := 0
			sys, err := core.New(crashOpts(dir, fault))
			if err != nil {
				t.Skipf("crash before the system came up: %v", err)
			}

			stop := make(chan struct{})
			var wg sync.WaitGroup
			readerErrs := make(chan error, 4)
			for g := 0; g < 2; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					last := int64(-1)
					for {
						select {
						case <-stop:
							return
						default:
						}
						// History rows only ever accumulate; a smaller count
						// than previously seen means a torn or rolled-back
						// write leaked into a snapshot.
						res, err := sys.Exec(`select count(*) from employee_salary S`)
						if err != nil || len(res.Rows) != 1 {
							continue // table not registered yet, or mid-crash
						}
						n, _ := res.Rows[0][0].AsInt()
						if n < last {
							readerErrs <- fmt.Errorf("reader %d: history count went backwards: %d -> %d", g, last, n)
							return
						}
						last = n
					}
				}(g)
			}
			for _, st := range script {
				if err := st.durable(sys); err != nil {
					break
				}
				acked++
			}
			close(stop)
			wg.Wait()
			close(readerErrs)
			for err := range readerErrs {
				t.Error(err)
			}
			if !fault.Crashed() && acked < len(script) {
				t.Fatalf("run stopped after %d/%d steps without a crash", acked, len(script))
			}

			rec, err := core.Recover(dir, fault.Survivor())
			if err != nil {
				if acked == 0 {
					t.Skipf("crash before the system came up: %v", err)
				}
				t.Fatalf("recover after %d acked steps: %v", acked, err)
			}
			defer rec.Close()
			got, err := crashFingerprint(rec)
			if err != nil {
				t.Fatalf("fingerprint of recovered system: %v", err)
			}
			match := -1
			for j := acked; j < len(expected); j++ {
				if got == expected[j] {
					match = j
					break
				}
			}
			if match < 0 {
				t.Fatalf("recovered state matches no acked-or-later script prefix (acked %d)", acked)
			}

			// ReadAsOf against the recovered system: the replay publishes
			// one version per WAL record, so the newest retained version at
			// the appended LSN must answer exactly like a live read, and a
			// pre-checkpoint LSN resolves to the recovered base state
			// rather than erroring.
			if _, ok := rec.Archive.Spec("employee"); ok {
				live, err := rec.Exec(`select count(*) from employee_salary S`)
				if err != nil {
					t.Fatal(err)
				}
				lsn := rec.WALStats().AppendedLSN
				asOf, err := rec.ReadAsOf(lsn, `select count(*) from employee_salary S`)
				if err != nil {
					t.Fatalf("ReadAsOf(%d): %v", lsn, err)
				}
				if a, b := live.Rows[0][0].Text(), asOf.Rows[0][0].Text(); a != b {
					t.Errorf("ReadAsOf(%d) = %s rows, live read = %s", lsn, b, a)
				}
				early, err := rec.ReadAsOf(0, `select count(*) from employee_salary S`)
				if err != nil {
					t.Fatalf("ReadAsOf(0): %v", err)
				}
				n, _ := early.Rows[0][0].AsInt()
				m, _ := live.Rows[0][0].AsInt()
				if n > m {
					t.Errorf("ReadAsOf(0) sees %d rows, newer than the live read's %d", n, m)
				}
			}
		})
	}
}

func TestCrashMatrix(t *testing.T) {
	script := crashScript()

	// Reference run: count every fsync the full script issues.
	refFS := wal.NewFaultFS()
	refSys, err := core.New(crashOpts(t.TempDir(), refFS))
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range script {
		if err := st.durable(refSys); err != nil {
			t.Fatalf("reference run, %s: %v", st.name, err)
		}
	}
	totalSyncs := refFS.SyncCount()
	if totalSyncs < len(script) {
		t.Fatalf("reference run issued %d fsyncs for %d steps; the commit path is not syncing", totalSyncs, len(script))
	}

	// Expected states: the fingerprint after every prefix of the script,
	// from an in-memory twin that never crashes.
	expected := make([]string, 0, len(script)+1)
	twin, err := core.New(core.Options{Layout: core.LayoutClustered, MinSegmentRows: 4})
	if err != nil {
		t.Fatal(err)
	}
	fp, err := crashFingerprint(twin)
	if err != nil {
		t.Fatal(err)
	}
	expected = append(expected, fp)
	for _, st := range script {
		if err := st.twin(twin); err != nil {
			t.Fatalf("twin, %s: %v", st.name, err)
		}
		if fp, err = crashFingerprint(twin); err != nil {
			t.Fatalf("twin fingerprint after %s: %v", st.name, err)
		}
		expected = append(expected, fp)
	}

	// The matrix: kill at every fsync boundary, with and without torn
	// unsynced bytes surviving past the cut.
	for k := 1; k <= totalSyncs; k++ {
		for _, torn := range []int{0, 7} {
			t.Run(fmt.Sprintf("sync%02d-torn%d", k, torn), func(t *testing.T) {
				fault := wal.NewFaultFS()
				fault.StopAfterSyncs = k
				fault.TornTailBytes = torn
				dir := t.TempDir()

				acked := 0
				sys, err := core.New(crashOpts(dir, fault))
				if err == nil {
					for _, st := range script {
						if err := st.durable(sys); err != nil {
							break
						}
						acked++
					}
				}
				if !fault.Crashed() && acked < len(script) {
					t.Fatalf("run stopped after %d/%d steps without a crash", acked, len(script))
				}

				rec, err := core.Recover(dir, fault.Survivor())
				if err != nil {
					// Only a crash before the birth checkpoint finished may
					// leave nothing to recover — and then nothing was acked.
					if acked == 0 {
						t.Skipf("crash before the system came up: %v", err)
					}
					t.Fatalf("recover after %d acked steps: %v", acked, err)
				}
				defer rec.Close()
				got, err := crashFingerprint(rec)
				if err != nil {
					t.Fatalf("fingerprint of recovered system: %v", err)
				}
				match := -1
				for j := acked; j < len(expected); j++ {
					if got == expected[j] {
						match = j
						break
					}
				}
				if match < 0 {
					// Either a shorter prefix (lost an acked statement) or no
					// prefix at all (partial statement survived).
					for j := 0; j < acked; j++ {
						if got == expected[j] {
							t.Fatalf("recovered state is prefix %d but %d statements were acknowledged", j, acked)
						}
					}
					t.Fatalf("recovered state matches no script prefix (acked %d)", acked)
				}
			})
		}
	}
}

// Package bench builds the experiment environments of the paper's
// evaluation (Section 7): ArchIS instances in each configuration
// (plain, segment-clustered, BlockZIP-compressed; trigger- or
// log-captured) and the native-XML-database baseline holding the same
// history as H-documents, all loaded from the synthetic temporal
// employee workload. The Table 3 query suite (Q1–Q6) is implemented
// for both backends, and every run can be made cold (caches dropped)
// to follow the paper's methodology.
package bench

import (
	"fmt"
	"time"

	"archis/internal/core"
	"archis/internal/dataset"
	"archis/internal/htable"
	"archis/internal/temporal"
	"archis/internal/wal"
	"archis/internal/xmldb"
)

// Env is one loaded ArchIS configuration plus derived query
// parameters.
type Env struct {
	Sys *core.System
	Cfg dataset.Config
	Gen dataset.Stats

	// Query parameters, derived from the workload so every
	// configuration (and the XML baseline) asks identical questions.
	SingleID    int64
	SnapshotDay temporal.Date
	SliceLo     temporal.Date
	SliceHi     temporal.Date
	JoinStart   temporal.Date
}

// Options for building an environment.
type Options struct {
	Layout  core.Layout
	Capture htable.CaptureMode
	Umin    float64
	// MinSegmentRows for clustering; a workload-appropriate default is
	// chosen when zero.
	MinSegmentRows int
	Compress       bool // run CompressFrozen after loading
	WholeSegments  bool // ablation: whole-segment compression
	// Workers is the intra-query scan parallelism (0 = GOMAXPROCS,
	// 1 = serial); see core.Options.Workers.
	Workers int
	// Planner toggles cost-based planning (zero value = on); see
	// core.Options.Planner.
	Planner core.PlannerMode
	// Columnar toggles columnar frozen blocks + vectorized execution
	// (zero value = on); see core.Options.Columnar.
	Columnar core.ColumnarMode
	// BlockCacheBytes is the decoded-block cache budget for compressed
	// layouts (0 = off); see core.Options.BlockCacheBytes.
	BlockCacheBytes int
	// WALDir enables the durable write-ahead op log for the built
	// system (core.Options.WALDir); the durability and crash-recovery
	// experiments use it.
	WALDir string
	// WALFS overrides the log's file layer (fault-injection tests).
	WALFS wal.FS
	// WALSync, WALBatchWindow and WALSegmentBytes are the log's commit
	// policy, group-commit window and segment roll threshold.
	WALSync         wal.SyncMode
	WALBatchWindow  time.Duration
	WALSegmentBytes int
}

// Build generates the workload into a fresh ArchIS instance.
func Build(cfg dataset.Config, opts Options) (*Env, error) {
	if opts.Umin == 0 {
		opts.Umin = 0.4
	}
	if opts.MinSegmentRows == 0 {
		// Roughly paper-shaped: segments a few times the live set.
		opts.MinSegmentRows = cfg.Employees * 2
	}
	sys, err := core.New(core.Options{
		Capture:                 opts.Capture,
		Layout:                  opts.Layout,
		Umin:                    opts.Umin,
		MinSegmentRows:          opts.MinSegmentRows,
		WholeSegmentCompression: opts.WholeSegments,
		Workers:                 opts.Workers,
		Planner:                 opts.Planner,
		Columnar:                opts.Columnar,
		BlockCacheBytes:         opts.BlockCacheBytes,
		WALDir:                  opts.WALDir,
		WALFS:                   opts.WALFS,
		WALSync:                 opts.WALSync,
		WALBatchWindow:          opts.WALBatchWindow,
		WALSegmentBytes:         opts.WALSegmentBytes,
	})
	if err != nil {
		return nil, err
	}
	RegisterMaxRaise(sys.Engine)
	if err := sys.Register(dataset.EmployeeSpec()); err != nil {
		return nil, err
	}
	if err := sys.Register(dataset.DeptSpec()); err != nil {
		return nil, err
	}
	st, err := dataset.Generate(sys.Archive, cfg)
	if err != nil {
		return nil, err
	}
	// The generator writes through the archive directly, below the
	// system's statement paths — publish once so snapshot readers see
	// the loaded history.
	sys.Publish()
	if sys.Archive.Mode() == htable.CaptureLog {
		if err := sys.FlushLog(); err != nil {
			return nil, err
		}
	}
	if opts.Compress {
		if err := sys.CompressFrozen(); err != nil {
			return nil, err
		}
	}
	env := &Env{Sys: sys, Cfg: cfg, Gen: st}
	env.deriveParams()
	return env, nil
}

func (e *Env) deriveParams() {
	start := e.Cfg.Start
	if start == 0 {
		start = temporal.MustParseDate("1985-01-01")
	}
	span := e.Cfg.Years * 365
	e.SingleID = 100001 + int64(e.Cfg.Employees/3)
	e.SnapshotDay = start.AddDays(span / 2)
	e.SliceLo = start.AddDays(span / 2)
	e.SliceHi = start.AddDays(span/2 + 365)
	e.JoinStart = start.AddDays(span * 2 / 3)
}

// Cold drops every cache so the next query pays physical reads — the
// analogue of the paper's unmount/restart protocol.
func (e *Env) Cold() {
	e.Sys.DB.DropCaches()
}

// segRestrict renders the segment condition for an attribute table
// over [lo, hi] (Section 6.3), or "" when not clustered.
func (e *Env) segRestrict(alias, attrTable string, lo, hi temporal.Date) string {
	st, ok := e.Sys.SegmentStore(attrTable)
	if !ok {
		return ""
	}
	segs, err := st.SegmentsFor(lo, hi)
	if err != nil || len(segs) == 0 {
		return ""
	}
	min, max := segs[0], segs[0]
	for _, s := range segs[1:] {
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	if min == max {
		return fmt.Sprintf(" and %s.segno = %d", alias, min)
	}
	return fmt.Sprintf(" and %s.segno >= %d and %s.segno <= %d", alias, min, alias, max)
}

// XMLEnv is the native XML DBMS baseline loaded with the same history.
type XMLEnv struct {
	DB  *xmldb.DB
	Env *Env // parameter source (shared workload)
}

// BuildXMLBaseline publishes the H-documents of an existing
// environment into a document store (compressed, as Tamino compresses
// documents by default).
func BuildXMLBaseline(src *Env, compress bool) (*XMLEnv, error) {
	db := xmldb.New(xmldb.Options{Compress: compress})
	db.Now = src.Sys.Clock()
	for _, table := range []string{"employee", "dept"} {
		doc, err := src.Sys.PublishHDoc(table)
		if err != nil {
			return nil, err
		}
		spec, _ := src.Sys.Archive.Spec(table)
		if err := db.Store(spec.DocName(), doc); err != nil {
			return nil, err
		}
	}
	return &XMLEnv{DB: db, Env: src}, nil
}

// Cold drops the baseline's parsed-document cache.
func (x *XMLEnv) Cold() { x.DB.DropCaches() }

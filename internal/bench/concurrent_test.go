package bench

import (
	"fmt"
	"sync"
	"testing"

	"archis/internal/core"
	"archis/internal/dataset"
)

func stressEnv(t *testing.T, compress bool) *Env {
	t.Helper()
	layout := core.LayoutClustered
	if compress {
		layout = core.LayoutCompressed
	}
	e, err := Build(dataset.Config{
		Employees:   30,
		Years:       4,
		Departments: 4,
		Seed:        7,
	}, Options{
		Layout:         layout,
		MinSegmentRows: 40,
		Compress:       compress,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// serialAnswers runs each query once on a single goroutine and returns
// the reference outcomes.
func serialAnswers(t *testing.T, e *Env, queries []string) []core.ParallelResult {
	t.Helper()
	_, ref, err := e.RunBatch(queries, 1)
	if err != nil {
		t.Fatal(err)
	}
	return ref
}

// TestConcurrentSuiteRace runs the Table 3 SQL suite plus translated
// and fallback XQueries from many goroutines against one shared
// archive — both execution paths concurrently — while another goroutine
// reads storage stats. Run with -race; it also checks every answer
// against the serial reference.
func TestConcurrentSuiteRace(t *testing.T) {
	for _, tc := range []struct {
		name     string
		compress bool
	}{
		{"clustered", false},
		{"compressed", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e := stressEnv(t, tc.compress)

			// SQL suite (PathSQL via Engine.Exec) plus one translated
			// XQuery and one untranslatable XQuery (restructure → PathXML
			// fallback), so both execution paths run concurrently.
			queries := e.SuiteQueries(1)
			queries = append(queries,
				fmt.Sprintf(`for $s in doc("employees.xml")/employees/employee[id=%d]/salary return $s`, e.SingleID),
				fmt.Sprintf(`for $e in doc("employees.xml")/employees/employee[id=%d] let $d := $e/deptno let $t := $e/title let $o := restructure($d, $t) return count($o)`, e.SingleID),
			)
			ref := serialAnswers(t, e, queries)
			for i, r := range ref {
				if r.Result == nil {
					t.Fatalf("reference query %d has no result: %q", i, queries[i])
				}
			}
			// The two XQueries must exercise different paths.
			if p := ref[len(ref)-2].Result.Path; p != core.PathSQL {
				t.Errorf("translated XQuery ran on %v, want PathSQL", p)
			}
			if p := ref[len(ref)-1].Result.Path; p != core.PathXML {
				t.Errorf("restructure XQuery ran on %v, want PathXML", p)
			}

			e.Cold() // start from a cold cache so readers contend on fills

			const goroutines = 6
			const rounds = 3
			var wg, statsWg sync.WaitGroup
			errs := make(chan error, goroutines*rounds)
			stop := make(chan struct{})
			statsWg.Add(1)
			go func() { // stats reader
				defer statsWg.Done()
				for {
					select {
					case <-stop:
						return
					default:
						_ = e.Sys.DB.Stats()
						_ = e.Sys.DB.CachedPages()
					}
				}
			}()
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for r := 0; r < rounds; r++ {
						// Rotate the batch so goroutines hit different
						// queries (and pages) at the same moment.
						k := (g + r) % len(queries)
						batch := append(append([]string(nil), queries[k:]...), queries[:k]...)
						want := append(append([]core.ParallelResult(nil), ref[k:]...), ref[:k]...)
						got := e.Sys.RunParallel(batch, 1)
						for i, pr := range got {
							if pr.Err != nil {
								errs <- fmt.Errorf("goroutine %d: %q: %v", g, batch[i], pr.Err)
							}
						}
						if !SameAnswers(got, want) {
							errs <- fmt.Errorf("goroutine %d round %d: answers differ from serial reference", g, r)
						}
					}
				}(g)
			}
			wg.Wait()
			close(stop)
			statsWg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}
		})
	}
}

// TestRunParallelMatchesSerial fans the full workload (suite rounds +
// multi-snapshot batch) across GOMAXPROCS workers and requires answers
// identical to serial execution.
func TestRunParallelMatchesSerial(t *testing.T) {
	e := stressEnv(t, false)
	queries := append(e.SuiteQueries(2), e.SnapshotQueries(6)...)
	ref := serialAnswers(t, e, queries)
	_, got, err := e.RunBatch(queries, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !SameAnswers(got, ref) {
		t.Fatal("parallel answers differ from serial answers")
	}
}

// TestRunParallelRejectsWrites checks writer exclusivity: DML and DDL
// are refused by the parallel API rather than racing with readers.
func TestRunParallelRejectsWrites(t *testing.T) {
	e := stressEnv(t, false)
	res := e.Sys.RunParallel([]string{
		`update employee set salary = 1 where id = 100001`,
		`select count(*) from employee`,
	}, 2)
	if res[0].Err == nil {
		t.Error("RunParallel accepted an UPDATE; writes need exclusive access")
	}
	if res[1].Err != nil {
		t.Errorf("read-only query failed: %v", res[1].Err)
	}
}

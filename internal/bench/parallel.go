package bench

import (
	"fmt"
	"time"

	"archis/internal/core"
	"archis/internal/temporal"
)

// This file drives the Table 3 suite and multi-snapshot workloads
// through the system's parallel query API. The workloads are
// embarrassingly parallel across queries and snapshot days, which is
// how a transaction-time archive is deployed in practice: many
// concurrent readers, writers applied in exclusive maintenance
// windows.

// SuiteQueries renders `rounds` repetitions of the Q1–Q6 SQL suite as
// one flat batch (6*rounds entries, suite order preserved per round).
func (e *Env) SuiteQueries(rounds int) []string {
	out := make([]string, 0, rounds*len(AllQueries))
	for r := 0; r < rounds; r++ {
		for _, q := range AllQueries {
			out = append(out, e.SQL(q))
		}
	}
	return out
}

// SnapshotSQL renders a Q2-shaped snapshot query (average salary) at
// an arbitrary day, segment-restricted when the layout clusters.
func (e *Env) SnapshotSQL(day temporal.Date) string {
	return fmt.Sprintf(
		`select avg(S.salary) from employee_salary S where S.tstart <= DATE '%s' and S.tend >= DATE '%s'%s`,
		day, day, e.segRestrict("S", "employee_salary", day, day))
}

// SnapshotQueries renders n snapshot queries at days spread evenly
// across the loaded history — the multi-snapshot workload.
func (e *Env) SnapshotQueries(n int) []string {
	start := e.Cfg.Start
	if start == 0 {
		start = temporal.MustParseDate("1985-01-01")
	}
	span := e.Cfg.Years * 365
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		day := start.AddDays(span * (i + 1) / (n + 1))
		out = append(out, e.SnapshotSQL(day))
	}
	return out
}

// RunBatch executes a query batch through System.RunParallel with the
// given worker count (1 = serial mode, 0 = GOMAXPROCS) and returns the
// wall-clock time plus per-query outcomes. The first query error, if
// any, is returned as err.
func (e *Env) RunBatch(queries []string, workers int) (time.Duration, []core.ParallelResult, error) {
	start := time.Now()
	results := e.Sys.RunParallel(queries, workers)
	elapsed := time.Since(start)
	for _, r := range results {
		if r.Err != nil {
			return elapsed, results, fmt.Errorf("bench: parallel batch: %w", r.Err)
		}
	}
	return elapsed, results, nil
}

// SameAnswers reports whether two outcome slices carry identical
// result sequences, position by position — the check that parallel
// execution returns exactly what serial execution returns.
func SameAnswers(a, b []core.ParallelResult) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Result == nil || b[i].Result == nil {
			return a[i].Result == b[i].Result
		}
		ia, ib := a[i].Result.Items, b[i].Result.Items
		if len(ia) != len(ib) {
			return false
		}
		for j := range ia {
			if ia[j].StringValue() != ib[j].StringValue() {
				return false
			}
		}
	}
	return true
}

package bench

import (
	"testing"

	"archis/internal/core"
)

// TestPlannerDifferentialLayouts runs the full Table 3 suite plus the
// self-join on every physical layout with the cost-based planner on
// and off and requires identical answers — the planner may only change
// how a query runs, never what it returns. CI runs this under -race.
func TestPlannerDifferentialLayouts(t *testing.T) {
	for _, lay := range []struct {
		name string
		opts Options
	}{
		{"plain", Options{Layout: core.LayoutPlain}},
		{"clustered", Options{Layout: core.LayoutClustered}},
		{"compressed", Options{Layout: core.LayoutCompressed, Compress: true}},
	} {
		on := buildExplainEnv(t, lay.opts)
		offOpts := lay.opts
		offOpts.Planner = core.PlannerOff
		off := buildExplainEnv(t, offOpts)
		for _, q := range AllQueries {
			got, err := on.Run(q)
			if err != nil {
				t.Fatalf("%s Q%d planner on: %v", lay.name, q, err)
			}
			want, err := off.Run(q)
			if err != nil {
				t.Fatalf("%s Q%d planner off: %v", lay.name, q, err)
			}
			if got != want {
				t.Errorf("%s Q%d: planner changed the answer: %+v vs %+v", lay.name, q, got, want)
			}
		}
		gj, err := on.Sys.Exec(on.JoinSQL())
		if err != nil {
			t.Fatalf("%s join planner on: %v", lay.name, err)
		}
		wj, err := off.Sys.Exec(off.JoinSQL())
		if err != nil {
			t.Fatalf("%s join planner off: %v", lay.name, err)
		}
		if resultOf(gj) != resultOf(wj) || len(gj.Rows) != len(wj.Rows) {
			t.Errorf("%s join: planner changed the answer: %+v vs %+v",
				lay.name, resultOf(gj), resultOf(wj))
		}
	}
}

// TestPlannerAdversarialAccess pins the access-path decisions of the
// adversarial benchmark without timing anything: on the permissive
// (75%-match) predicate the planner must scan where the legacy
// heuristic probes the index, at 1/n selectivity both must probe, and
// every cell must agree on the answer.
func TestPlannerAdversarialAccess(t *testing.T) {
	recs, err := PlannerAdversarial(20000, 1)
	if err != nil {
		t.Fatal(err)
	}
	byCell := map[string]PlannerRecord{}
	for _, r := range recs {
		key := r.Case
		if r.Planner {
			key += "/on"
		} else {
			key += "/off"
		}
		byCell[key] = r
	}
	if got := byCell["permissive-eq/on"].Access; got != "scan" {
		t.Errorf("planner chose %q for the permissive predicate, want scan", got)
	}
	if got := byCell["permissive-eq/off"].Access; got != "index" {
		t.Errorf("legacy heuristic chose %q for the permissive predicate, want index", got)
	}
	for _, cell := range []string{"selective-eq/on", "selective-eq/off"} {
		if got := byCell[cell].Access; got != "index" {
			t.Errorf("%s chose %q, want index", cell, got)
		}
	}
	if on, off := byCell["permissive-eq/on"].Rows, byCell["permissive-eq/off"].Rows; on != off || on != 15000 {
		t.Errorf("permissive-eq matched %d (on) vs %d (off) rows, want 15000", on, off)
	}
	if on, off := byCell["selective-eq/on"].Rows, byCell["selective-eq/off"].Rows; on != off || on != 1 {
		t.Errorf("selective-eq matched %d (on) vs %d (off) rows, want 1", on, off)
	}
}

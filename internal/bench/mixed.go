package bench

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Mixed workload: N reader goroutines cycle the Table 3 suite while a
// writer applies salary updates through the statement path and (optionally)
// a background compactor archives live segments and compresses frozen
// ones. Under MVCC snapshot reads no reader ever blocks on the writer;
// this harness measures what that costs — per-query latency percentiles
// under traffic versus a read-only baseline — and counts reader errors
// (which must be zero).

// MixedOptions configures one RunMixed phase.
type MixedOptions struct {
	Duration time.Duration // wall-clock length of the measured phase
	Readers  int           // reader goroutines (default 4)
	Ingest   bool          // run the concurrent writer
	Compact  bool          // run the background compactor (implies work for it: needs Ingest)
	Queries  []QueryID     // default AllQueries
	// Exclusive emulates the pre-MVCC exclusive-writer rule: every
	// statement — read or write — runs under one harness-level mutex, so
	// readers stall behind the writer exactly as they would without
	// snapshot isolation. The "before" side of the before/after pair.
	Exclusive bool
}

// MixedQueryStats is one query's latency distribution over a phase.
type MixedQueryStats struct {
	Query string `json:"query"`
	Ops   int    `json:"ops"`
	MinNS int64  `json:"min_ns"`
	P50NS int64  `json:"p50_ns"`
	P99NS int64  `json:"p99_ns"`
	MaxNS int64  `json:"max_ns"`
}

// MixedResult is the outcome of one RunMixed phase.
type MixedResult struct {
	Ingest          bool              `json:"ingest"`
	Compact         bool              `json:"compact"`
	Exclusive       bool              `json:"exclusive,omitempty"`
	Readers         int               `json:"readers"`
	DurationNS      int64             `json:"duration_ns"`
	ReaderOps       int               `json:"reader_ops"`
	ReaderErrors    int               `json:"reader_errors"`
	WriterOps       int               `json:"writer_ops"`
	WriterOpsPerSec float64           `json:"writer_ops_per_sec"`
	Compactions     int               `json:"compactions"`
	Compressions    int               `json:"compressions"`
	Queries         []MixedQueryStats `json:"queries"`
}

// Stats returns the distribution for one query ("" when absent).
func (r MixedResult) Stats(q QueryID) (MixedQueryStats, bool) {
	name := fmt.Sprintf("Q%d", q)
	for _, s := range r.Queries {
		if s.Query == name {
			return s, true
		}
	}
	return MixedQueryStats{}, false
}

// RunMixed runs one mixed-workload phase on the environment and returns
// aggregate statistics. The first reader error is returned (the phase
// still runs to completion so the caller sees the full error count).
func (e *Env) RunMixed(opts MixedOptions) (MixedResult, error) {
	if opts.Duration <= 0 {
		opts.Duration = time.Second
	}
	if opts.Readers <= 0 {
		opts.Readers = 4
	}
	queries := opts.Queries
	if len(queries) == 0 {
		queries = AllQueries
	}

	// Pre-render the SQL once: segment restrictions computed at phase
	// start stay sound under concurrent archiving (frozen segments keep
	// a copy of every version that was live at freeze time), and the
	// readers then measure pure execution.
	sqls := make([]string, len(queries))
	for i, q := range queries {
		sqls[i] = e.SQL(q)
	}
	ids, err := e.liveIDs(256)
	if err != nil {
		return MixedResult{}, err
	}
	if opts.Ingest && len(ids) == 0 {
		return MixedResult{}, fmt.Errorf("bench: mixed workload needs live employees")
	}

	// Exclusive mode routes every statement through one mutex; under
	// MVCC the gate closure is free.
	var gate sync.Mutex
	locked := func(f func() error) error {
		if opts.Exclusive {
			gate.Lock()
			defer gate.Unlock()
		}
		return f()
	}

	var (
		stop      = make(chan struct{})
		wg        sync.WaitGroup
		writerOps atomic.Int64
		compacts  atomic.Int64
		squeezes  atomic.Int64
		errCount  atomic.Int64
		firstErr  atomic.Value
	)
	recordErr := func(err error) {
		errCount.Add(1)
		firstErr.CompareAndSwap(nil, err)
	}

	// Latency samples, one slice per (reader, query) so goroutines never
	// share an append target.
	samples := make([][][]int64, opts.Readers)
	for r := range samples {
		samples[r] = make([][]int64, len(queries))
	}

	if opts.Ingest {
		wg.Add(1)
		go func() {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Advance the clock one day per pass over the id set so
				// every update creates a new version.
				if i%len(ids) == 0 {
					e.Sys.SetClock(e.Sys.Clock().AddDays(1))
				}
				id := ids[i%len(ids)]
				err := locked(func() error {
					_, err := e.Sys.Exec(fmt.Sprintf(
						`update employee set salary = salary + 1 where id = %d`, id))
					return err
				})
				if err != nil {
					recordErr(fmt.Errorf("writer: %w", err))
					return
				}
				writerOps.Add(1)
				i++
			}
		}()
	}
	if opts.Compact {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, compressed := e.Sys.CompressedStore("employee_salary")
			for {
				select {
				case <-stop:
					return
				case <-time.After(2 * time.Millisecond):
				}
				var n int
				err := locked(func() error {
					var err error
					n, err = e.Sys.Compact()
					return err
				})
				if err != nil {
					recordErr(fmt.Errorf("compactor: %w", err))
					return
				}
				if n > 0 {
					compacts.Add(int64(n))
				}
				if compressed {
					if err := locked(e.Sys.CompressFrozen); err != nil {
						recordErr(fmt.Errorf("compressor: %w", err))
						return
					}
					squeezes.Add(1)
				}
			}
		}()
	}

	for r := 0; r < opts.Readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := r; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				qi := i % len(queries)
				t0 := time.Now()
				err := locked(func() error {
					_, err := e.Sys.Exec(sqls[qi])
					return err
				})
				d := time.Since(t0)
				if err != nil {
					recordErr(fmt.Errorf("reader %d Q%d: %w", r, queries[qi], err))
					continue
				}
				samples[r][qi] = append(samples[r][qi], int64(d))
			}
		}(r)
	}

	t0 := time.Now()
	time.Sleep(opts.Duration)
	close(stop)
	wg.Wait()
	elapsed := time.Since(t0)

	res := MixedResult{
		Ingest:       opts.Ingest,
		Compact:      opts.Compact,
		Exclusive:    opts.Exclusive,
		Readers:      opts.Readers,
		DurationNS:   int64(elapsed),
		ReaderErrors: int(errCount.Load()),
		WriterOps:    int(writerOps.Load()),
		Compactions:  int(compacts.Load()),
		Compressions: int(squeezes.Load()),
	}
	if sec := elapsed.Seconds(); sec > 0 {
		res.WriterOpsPerSec = float64(res.WriterOps) / sec
	}
	for qi, q := range queries {
		var all []int64
		for r := range samples {
			all = append(all, samples[r][qi]...)
		}
		res.ReaderOps += len(all)
		res.Queries = append(res.Queries, distill(fmt.Sprintf("Q%d", q), all))
	}
	if err, _ := firstErr.Load().(error); err != nil {
		return res, err
	}
	return res, nil
}

// distill reduces a latency sample set to its percentiles.
func distill(name string, ns []int64) MixedQueryStats {
	st := MixedQueryStats{Query: name, Ops: len(ns)}
	if len(ns) == 0 {
		return st
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	st.MinNS = ns[0]
	st.MaxNS = ns[len(ns)-1]
	st.P50NS = ns[len(ns)/2]
	st.P99NS = ns[len(ns)*99/100]
	return st
}

package bench

import (
	"testing"

	"archis/internal/core"
	"archis/internal/dataset"
)

// TestBlockCacheDifferential runs the Table 3 suite on every layout
// with the decoded-block cache off (reference) and then on, serial and
// with concurrent readers, and requires identical answers everywhere.
// Run with -race: on the compressed layout the second concurrent pass
// reads shared cached decoded rows from many goroutines at once.
func TestBlockCacheDifferential(t *testing.T) {
	for _, tc := range []struct {
		name   string
		layout core.Layout
	}{
		{"plain", core.LayoutPlain},
		{"clustered", core.LayoutClustered},
		{"compressed", core.LayoutCompressed},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e, err := Build(dataset.Config{
				Employees:   30,
				Years:       4,
				Departments: 4,
				Seed:        11,
			}, Options{
				Layout:         tc.layout,
				MinSegmentRows: 40,
				Compress:       tc.layout == core.LayoutCompressed,
			})
			if err != nil {
				t.Fatal(err)
			}
			if tc.layout == core.LayoutCompressed {
				// Force every attribute history into frozen, compressed
				// segments so the suite actually reads BlockZIP blocks at
				// this small scale.
				for _, at := range []string{
					"employee_name", "employee_salary", "employee_title", "employee_deptno",
					"dept_deptname", "dept_mgrno",
				} {
					if st, ok := e.Sys.SegmentStore(at); ok {
						if err := st.ArchiveNow(); err != nil {
							t.Fatal(err)
						}
					}
				}
				if err := e.Sys.CompressFrozen(); err != nil {
					t.Fatal(err)
				}
			}
			queries := append(e.SuiteQueries(2), e.SnapshotQueries(4)...)

			// Reference: cache off (the default), serial, cold.
			e.Cold()
			_, ref, err := e.RunBatch(queries, 1)
			if err != nil {
				t.Fatal(err)
			}

			e.Sys.DB.SetBlockCacheBytes(32 << 20)
			e.Cold()
			e.Sys.DB.ResetStats()
			for _, pass := range []struct {
				name    string
				workers int
			}{{"serial-cold", 1}, {"concurrent-warm", 4}, {"concurrent-warm-2", 4}} {
				_, got, err := e.RunBatch(queries, pass.workers)
				if err != nil {
					t.Fatalf("%s: %v", pass.name, err)
				}
				if !SameAnswers(got, ref) {
					t.Fatalf("%s: answers with block cache on differ from cache-off reference", pass.name)
				}
			}
			st := e.Sys.DB.Stats()
			if tc.layout == core.LayoutCompressed {
				if st.BlockCacheHits == 0 {
					t.Error("compressed layout never hit the block cache across warm passes")
				}
			} else if st.BlockCacheHits != 0 || st.BlockCacheMisses != 0 {
				t.Errorf("layout without BlockZIP touched the block cache: %+v", st)
			}

			// Cold mode must stay honest: DropCaches empties the block
			// cache even while a budget is configured.
			e.Cold()
			if n := e.Sys.DB.CachedBlocks(); n != 0 {
				t.Errorf("Cold() left %d decoded blocks cached", n)
			}
			_, got, err := e.RunBatch(queries, 1)
			if err != nil {
				t.Fatal(err)
			}
			if !SameAnswers(got, ref) {
				t.Fatal("post-Cold answers differ from reference")
			}
		})
	}
}

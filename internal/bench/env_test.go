package bench

import (
	"testing"

	"archis/internal/core"
	"archis/internal/dataset"
	"archis/internal/htable"
)

func smallCfg() dataset.Config {
	cfg := dataset.DefaultConfig()
	cfg.Employees = 80
	cfg.Years = 6
	return cfg
}

func buildAll(t *testing.T) (plain, clustered, compressed *Env, xdb *XMLEnv) {
	t.Helper()
	var err error
	plain, err = Build(smallCfg(), Options{Layout: core.LayoutPlain})
	if err != nil {
		t.Fatal(err)
	}
	clustered, err = Build(smallCfg(), Options{Layout: core.LayoutClustered, MinSegmentRows: 160})
	if err != nil {
		t.Fatal(err)
	}
	compressed, err = Build(smallCfg(), Options{Layout: core.LayoutCompressed, MinSegmentRows: 160, Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	xdb, err = BuildXMLBaseline(plain, true)
	if err != nil {
		t.Fatal(err)
	}
	return
}

// The central evaluation invariant: every backend and layout answers
// the Table 3 suite identically.
func TestAllBackendsAgree(t *testing.T) {
	plain, clustered, compressed, xdb := buildAll(t)

	seg, ok := clustered.Sys.SegmentStore("employee_salary")
	if !ok || seg.Archives() == 0 {
		t.Fatalf("clustered env did not archive (archives=%v)", ok)
	}
	cs, ok := compressed.Sys.CompressedStore("employee_salary")
	if !ok {
		t.Fatal("no compressed store")
	}
	if n, _ := cs.BlockCount(); n == 0 {
		t.Fatal("compressed env has no blocks")
	}

	for _, q := range AllQueries {
		base, err := plain.Run(q)
		if err != nil {
			t.Fatal(err)
		}
		if base.Rows == 0 {
			t.Errorf("%s: empty result on plain layout", Describe(q))
		}
		for name, env := range map[string]*Env{"clustered": clustered, "compressed": compressed} {
			got, err := env.Run(q)
			if err != nil {
				t.Fatalf("%s on %s: %v", Describe(q), name, err)
			}
			if got != base {
				t.Errorf("%s: %s = %+v, plain = %+v\nsql: %s", Describe(q), name, got, base, env.SQL(q))
			}
		}
		xres, err := xdb.Run(q)
		if err != nil {
			t.Fatalf("%s on xmldb: %v", Describe(q), err)
		}
		switch q {
		case Q1, Q3, Q4:
			if xres.Rows != base.Rows {
				t.Errorf("%s: xmldb rows = %d, sql rows = %d", Describe(q), xres.Rows, base.Rows)
			}
		case Q2, Q5, Q6:
			if xres.Value != base.Value {
				t.Errorf("%s: xmldb value = %q, sql value = %q", Describe(q), xres.Value, base.Value)
			}
		}
	}
}

func TestColdRunsPayPhysicalReads(t *testing.T) {
	clustered, err := Build(smallCfg(), Options{Layout: core.LayoutClustered, MinSegmentRows: 160})
	if err != nil {
		t.Fatal(err)
	}
	clustered.Cold()
	clustered.Sys.DB.ResetStats()
	if _, err := clustered.Run(Q2); err != nil {
		t.Fatal(err)
	}
	cold := clustered.Sys.DB.Stats().BlockReads
	if cold == 0 {
		t.Fatal("cold Q2 read no blocks")
	}
	clustered.Sys.DB.ResetStats()
	if _, err := clustered.Run(Q2); err != nil {
		t.Fatal(err)
	}
	if warm := clustered.Sys.DB.Stats().BlockReads; warm >= cold {
		t.Errorf("warm run not cheaper: %d vs %d", warm, cold)
	}
}

func TestSegmentPruningBeatsFullScanOnSnapshot(t *testing.T) {
	// Needs enough history that the salary table spans many pages.
	cfg := dataset.DefaultConfig()
	cfg.Employees = 250
	cfg.Years = 10
	plain, err := Build(cfg, Options{Layout: core.LayoutPlain})
	if err != nil {
		t.Fatal(err)
	}
	clustered, err := Build(cfg, Options{Layout: core.LayoutClustered, MinSegmentRows: 500})
	if err != nil {
		t.Fatal(err)
	}
	readCount := func(e *Env, q QueryID) int64 {
		e.Cold()
		e.Sys.DB.ResetStats()
		if _, err := e.Run(q); err != nil {
			t.Fatal(err)
		}
		return e.Sys.DB.Stats().BlockReads
	}
	p := readCount(plain, Q2)
	c := readCount(clustered, Q2)
	if c >= p {
		t.Errorf("clustered snapshot reads %d blocks, plain %d", c, p)
	}
}

func TestUpdateHelpers(t *testing.T) {
	env, err := Build(smallCfg(), Options{Layout: core.LayoutClustered, MinSegmentRows: 160})
	if err != nil {
		t.Fatal(err)
	}
	before, _ := env.Run(Q4)
	if err := env.UpdateOne(); err != nil {
		t.Fatal(err)
	}
	if err := env.DailyBatch(10); err != nil {
		t.Fatal(err)
	}
	after, _ := env.Run(Q4)
	if after.Rows != before.Rows && after.Value == before.Value {
		t.Errorf("updates not visible: %+v -> %+v", before, after)
	}
	xdb, err := BuildXMLBaseline(env, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := xdb.XMLUpdateOne(); err != nil {
		t.Fatal(err)
	}
}

func TestLogCaptureEnvEquivalent(t *testing.T) {
	trig, err := Build(smallCfg(), Options{Layout: core.LayoutClustered, MinSegmentRows: 160, Capture: htable.CaptureTrigger})
	if err != nil {
		t.Fatal(err)
	}
	logged, err := Build(smallCfg(), Options{Layout: core.LayoutClustered, MinSegmentRows: 160, Capture: htable.CaptureLog})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range AllQueries {
		a, err := trig.Run(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := logged.Run(q)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Errorf("%s: trigger %+v vs log %+v", Describe(q), a, b)
		}
	}
}

package bench

import (
	"testing"

	"archis/internal/core"
	"archis/internal/dataset"
	"archis/internal/htable"
	"archis/internal/temporal"
	"archis/internal/xmltree"
)

// The differential durability test: a system recovered from its
// snapshot + WAL must be indistinguishable from one that never went
// down — byte-identical H-documents and identical Table 3 answers —
// on every layout and capture mode.

func walCfg() dataset.Config {
	cfg := dataset.DefaultConfig()
	cfg.Employees = 30
	cfg.Years = 3
	cfg.Seed = 17
	return cfg
}

// postLoadActions is extra write traffic applied after the generated
// history, exercising the durable commit path on both systems. Days
// sit past the generated span so the clock only moves forward.
type clockedSQL struct {
	day string
	sql string
}

func postLoadActions() []clockedSQL {
	return []clockedSQL{
		{"1999-01-10", `insert into employee values (900001, 'Walden', 52000, 'Engineer', 'd01')`},
		{"1999-02-15", `insert into employee values (900002, 'Reyes', 61000, 'Analyst', 'd02')`},
		{"1999-04-01", `update employee set salary = 58000 where id = 900001`},
		{"1999-06-20", `update employee set title = 'Sr Engineer', deptno = 'd02' where id = 900001`},
		{"1999-08-05", `update employee set salary = 66000 where id = 900002`},
		{"1999-11-30", `delete from employee where id = 900002`},
	}
}

func applyActions(t *testing.T, sys *core.System, acts []clockedSQL) {
	t.Helper()
	for _, a := range acts {
		sys.SetClock(temporal.MustParseDate(a.day))
		if _, err := sys.ExecDurable(a.sql); err != nil {
			t.Fatalf("%s: %q: %v", a.day, a.sql, err)
		}
	}
}

// hdocBytes serializes a table's published H-document.
func hdocBytes(t *testing.T, sys *core.System, table string) string {
	t.Helper()
	if err := sys.FlushLog(); err != nil {
		t.Fatal(err)
	}
	doc, err := sys.PublishHDoc(table)
	if err != nil {
		t.Fatal(err)
	}
	return xmltree.String(doc)
}

// recoveredEnv wraps a recovered system with the live env's workload
// parameters so both render the suite from the same question set.
func recoveredEnv(sys *core.System, like *Env) *Env {
	// Recovery rebuilds the system, not the bench harness: the suite's
	// user-defined aggregate must be re-registered like Build does.
	RegisterMaxRaise(sys.Engine)
	e := &Env{Sys: sys, Cfg: like.Cfg, Gen: like.Gen}
	e.deriveParams()
	return e
}

func TestRecoveredEqualsContinuous(t *testing.T) {
	for _, tc := range []struct {
		name    string
		layout  core.Layout
		capture htable.CaptureMode
	}{
		{"plain", core.LayoutPlain, htable.CaptureTrigger},
		{"clustered", core.LayoutClustered, htable.CaptureTrigger},
		{"compressed", core.LayoutCompressed, htable.CaptureTrigger},
		{"clustered-logcapture", core.LayoutClustered, htable.CaptureLog},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := walCfg()
			base := Options{
				Layout:         tc.layout,
				Capture:        tc.capture,
				MinSegmentRows: 40,
				Compress:       tc.layout == core.LayoutCompressed,
			}

			// The continuously-running reference.
			live, err := Build(cfg, base)
			if err != nil {
				t.Fatal(err)
			}

			// The durable twin: same workload, every post-load action
			// acknowledged through the WAL, then recovered from disk.
			durableOpts := base
			durableOpts.WALDir = t.TempDir()
			durableOpts.WALSegmentBytes = 4096 // force segment rotations
			durable, err := Build(cfg, durableOpts)
			if err != nil {
				t.Fatal(err)
			}

			acts := postLoadActions()
			applyActions(t, live.Sys, acts)
			applyActions(t, durable.Sys, acts[:len(acts)/2])
			// A checkpoint mid-traffic: recovery must replay only the
			// tail past the snapshot, to the same final state.
			if err := durable.Sys.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			applyActions(t, durable.Sys, acts[len(acts)/2:])
			if err := durable.Sys.SyncWAL(); err != nil {
				t.Fatal(err)
			}
			if err := durable.Sys.Close(); err != nil {
				t.Fatal(err)
			}

			recSys, err := core.Recover(durableOpts.WALDir, nil)
			if err != nil {
				t.Fatal(err)
			}
			defer recSys.Close()
			st := recSys.Stats()
			if st.WALReplayedRecords == 0 {
				t.Fatal("recovery replayed nothing; the mid-traffic checkpoint should leave a tail")
			}

			// Byte-identical H-documents.
			for _, table := range []string{"employee", "dept"} {
				lv := hdocBytes(t, live.Sys, table)
				rv := hdocBytes(t, recSys, table)
				if lv != rv {
					t.Fatalf("%s H-document differs after recovery (live %d bytes, recovered %d bytes)",
						table, len(lv), len(rv))
				}
			}

			// Identical Table 3 answers (each env renders its own SQL —
			// segment restrictions may differ textually, answers may not).
			rec := recoveredEnv(recSys, live)
			_, want, err := live.RunBatch(live.SuiteQueries(1), 1)
			if err != nil {
				t.Fatal(err)
			}
			_, got, err := rec.RunBatch(rec.SuiteQueries(1), 1)
			if err != nil {
				t.Fatal(err)
			}
			if !SameAnswers(got, want) {
				t.Fatal("recovered system answers the Table 3 suite differently from the continuous one")
			}

			// And the recovered system keeps accepting durable writes.
			recSys.SetClock(temporal.MustParseDate("2000-01-01"))
			if _, err := recSys.ExecDurable(
				`insert into employee values (900003, 'PostRecovery', 48000, 'Intern', 'd01')`); err != nil {
				t.Fatal(err)
			}
		})
	}
}

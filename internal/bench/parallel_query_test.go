package bench

import (
	"strings"
	"testing"

	"archis/internal/core"
	"archis/internal/sqlengine"
)

func dumpResult(res *sqlengine.Result) string {
	var sb strings.Builder
	sb.WriteString(strings.Join(res.Columns, ","))
	for _, row := range res.Rows {
		sb.WriteByte('\n')
		for i, v := range row {
			if i > 0 {
				sb.WriteByte('|')
			}
			sb.WriteString(v.Text())
		}
	}
	return sb.String()
}

// The Q1–Q6 differential: on every layout, each suite query must
// return exactly the same rows with intra-query parallelism on as
// with Workers=1, including Q6's morsel-merged MAXRAISE rewrite.
// Run under -race this also stresses concurrent page decode.
func TestParallelSuiteDifferentialQ1toQ6(t *testing.T) {
	envs := map[string]*Env{}
	var err error
	envs["plain"], err = Build(smallCfg(), Options{Layout: core.LayoutPlain})
	if err != nil {
		t.Fatal(err)
	}
	envs["clustered"], err = Build(smallCfg(), Options{Layout: core.LayoutClustered, MinSegmentRows: 160})
	if err != nil {
		t.Fatal(err)
	}
	envs["compressed"], err = Build(smallCfg(), Options{Layout: core.LayoutCompressed, MinSegmentRows: 160, Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	for name, env := range envs {
		for _, q := range AllQueries {
			sql := env.SQL(q)
			env.Sys.Engine.Workers = 1
			serial, err := env.Sys.Exec(sql)
			if err != nil {
				t.Fatalf("%s %s serial: %v", name, Describe(q), err)
			}
			env.Sys.Engine.Workers = 4
			parallel, err := env.Sys.Exec(sql)
			if err != nil {
				t.Fatalf("%s %s parallel: %v", name, Describe(q), err)
			}
			if ds, dp := dumpResult(serial), dumpResult(parallel); ds != dp {
				t.Errorf("%s %s diverged:\nserial:\n%s\nparallel:\n%s\nsql: %s",
					name, Describe(q), ds, dp, sql)
			}
		}
		// The Q6 optimization's aggregate must actually be mergeable —
		// guard against the parallel gate silently bailing out.
		env.Sys.Engine.Workers = 4
	}
	// MAXRAISE partials merge (Q6's one-scan rewrite).
	st := &maxRaiseState{byID: map[int64][]salaryAt{}}
	if _, ok := interface{}(st).(sqlengine.MergeableAggState); !ok {
		t.Error("maxRaiseState does not implement MergeableAggState")
	}
}

// The batch-level parallel API and the new intra-query path compose:
// a multi-query batch run with intra-query Workers=1 matches a batch
// where every query fans out internally.
func TestParallelBatchVsIntraQuery(t *testing.T) {
	env, err := Build(smallCfg(), Options{Layout: core.LayoutClustered, MinSegmentRows: 160})
	if err != nil {
		t.Fatal(err)
	}
	queries := env.SuiteQueries(2)
	env.Sys.Engine.Workers = 1
	_, serial, err := env.RunBatch(queries, 1)
	if err != nil {
		t.Fatal(err)
	}
	env.Sys.Engine.Workers = 4
	_, intra, err := env.RunBatch(queries, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !SameAnswers(serial, intra) {
		t.Error("intra-query parallel batch diverged from serial batch")
	}
}

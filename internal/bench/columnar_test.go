package bench

import (
	"math/rand"
	"testing"

	"archis/internal/core"
	"archis/internal/dataset"
)

// TestColumnarDifferentialLayouts is the columnar escape-hatch
// differential: randomized workloads on every layout, executed with
// the columnar path on and off, serial and morsel-parallel, must
// return identical answers everywhere. On plain and clustered layouts
// the columnar option must be inert; on compressed (with every
// history force-frozen into blocks) it exercises the vectorized
// scan + kernel path end to end. Run with -race: the parallel passes
// share batches across worker goroutines.
func TestColumnarDifferentialLayouts(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for _, tc := range []struct {
		name   string
		layout core.Layout
	}{
		{"plain", core.LayoutPlain},
		{"clustered", core.LayoutClustered},
		{"compressed", core.LayoutCompressed},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := dataset.Config{
				Employees:   20 + r.Intn(25),
				Years:       3 + r.Intn(3),
				Departments: 3 + r.Intn(3),
				Seed:        r.Int63(),
			}
			build := func(mode core.ColumnarMode) *Env {
				e, err := Build(cfg, Options{
					Layout:         tc.layout,
					MinSegmentRows: 30 + r.Intn(40),
					Columnar:       mode,
				})
				if err != nil {
					t.Fatal(err)
				}
				if tc.layout == core.LayoutCompressed {
					if err := e.FreezeAll(); err != nil {
						t.Fatal(err)
					}
				}
				return e
			}
			on, off := build(core.ColumnarOn), build(core.ColumnarOff)
			queries := make([]string, 0, len(AllQueries)+1)
			for _, q := range AllQueries {
				queries = append(queries, on.SQL(q))
			}
			queries = append(queries, on.JoinSQL())
			for _, workers := range []int{1, 4} {
				on.Sys.Engine.Workers = workers
				off.Sys.Engine.Workers = workers
				for _, sql := range queries {
					want, err := off.Sys.Exec(sql)
					if err != nil {
						t.Fatalf("columnar-off workers=%d: %s: %v", workers, sql, err)
					}
					got, err := on.Sys.Exec(sql)
					if err != nil {
						t.Fatalf("columnar-on workers=%d: %s: %v", workers, sql, err)
					}
					if len(got.Rows) != len(want.Rows) {
						t.Fatalf("workers=%d: %s: %d rows columnar vs %d row-path",
							workers, sql, len(got.Rows), len(want.Rows))
					}
					for i := range want.Rows {
						for c := range want.Rows[i] {
							if got.Rows[i][c].Text() != want.Rows[i][c].Text() {
								t.Fatalf("workers=%d: %s: row %d col %d: %q vs %q",
									workers, sql, i, c, got.Rows[i][c].Text(), want.Rows[i][c].Text())
							}
						}
					}
				}
			}
		})
	}
}

// TestColumnarGatePair smoke-tests the gate machinery end to end at a
// tiny scale: the pair builds with matching answers, the columnar side
// runs vectorized (colscan + batches consumed), the row-blob side does
// not, and storage does not regress.
func TestColumnarGatePair(t *testing.T) {
	on, off, err := BuildColumnarPair(dataset.Config{
		Employees: 40, Years: 4, Departments: 4, Seed: 5,
	}, Options{Workers: 1, MinSegmentRows: 60})
	if err != nil {
		t.Fatal(err)
	}
	recs, err := ColumnarCompare(on, off, []QueryID{Q2, Q4, Q6}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 6 {
		t.Fatalf("got %d records, want 6", len(recs))
	}
	for _, rec := range recs {
		if rec.Columnar {
			if rec.Access != "colscan" {
				t.Errorf("%s columnar access=%q, want colscan", rec.Query, rec.Access)
			}
			if rec.ColBatches == 0 {
				t.Errorf("%s columnar side consumed no batches", rec.Query)
			}
		} else {
			if rec.Access != "scan" {
				t.Errorf("%s rowblob access=%q, want scan", rec.Query, rec.Access)
			}
			if rec.ColBatches != 0 {
				t.Errorf("%s rowblob side consumed %d batches, want 0", rec.Query, rec.ColBatches)
			}
		}
	}
	if onB, offB := on.Sys.StorageBytes(), off.Sys.StorageBytes(); onB > offB {
		t.Errorf("columnar storage %d exceeds row-blob %d", onB, offB)
	}
}

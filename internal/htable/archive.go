package htable

import (
	"fmt"
	"strings"

	"archis/internal/relstore"
	"archis/internal/sqlengine"
	"archis/internal/temporal"
)

// CaptureMode selects how current-database changes reach the H-tables.
type CaptureMode uint8

const (
	// CaptureTrigger archives every change synchronously via row-level
	// triggers — the ArchIS-DB2 configuration.
	CaptureTrigger CaptureMode = iota
	// CaptureLog records changes in an update log that is applied in
	// batch by FlushLog — the ArchIS-ATLaS configuration.
	CaptureLog
)

// StoreFactory creates the physical store for one attribute-history
// table. The default builds plain heap tables; segment/blockzip
// provide clustered and compressed layouts.
type StoreFactory func(db *relstore.Database, schema relstore.Schema) (AttrStore, error)

type archivedTable struct {
	spec     TableSpec
	keyTable *relstore.Table
	attrs    map[string]AttrStore // keyed by lowercase attribute name
	attrCols []relstore.Column
	keyIdx   []int // positions of key columns in the current schema

	surrogates map[string]int64         // key-string → id, stable across reinsertion
	liveKeys   map[int64]relstore.RID   // id → live key-table row
	liveStarts map[int64]temporal.Date  // id → tstart of the live key row
	attrStarts map[string]temporal.Date // attr\x00id → tstart of live attr version
	nextID     int64
}

// Op is one captured current-database change: the logical unit the
// update log stores and the WAL makes durable. Table is the lowercase
// table name; At is the archive clock when the change was captured.
// VStart/VEnd carry the valid-time interval asserted by the writer;
// the zero pair means "unset" and resolves to the default
// [At, Forever] at apply time, which keeps ops from pre-bitemporal
// logs (and zero-valued literals) byte- and behavior-compatible.
type Op struct {
	Table  string
	Type   sqlengine.ChangeType
	Old    relstore.Row
	New    relstore.Row
	At     temporal.Date
	VStart temporal.Date
	VEnd   temporal.Date
}

// Valid resolves the op's valid-time interval, applying the default
// when unset.
func (op Op) Valid() temporal.Interval {
	if op.VStart == 0 && op.VEnd == 0 {
		return DefaultValid(op.At)
	}
	return temporal.Interval{Start: op.VStart, End: op.VEnd}
}

// Archive manages a current database plus its transaction-time history
// in H-tables.
type Archive struct {
	Engine *sqlengine.Engine
	DB     *relstore.Database

	mode      CaptureMode
	factory   StoreFactory
	tables    map[string]*archivedTable
	relations *relstore.Table
	log       []Op
	sink      func(Op) error
	clockSink func(temporal.Date)

	// pendingValid, when non-nil, stamps every captured op with an
	// explicit valid-time interval (core's WithValidTime write option;
	// set and cleared under the system write lock).
	pendingValid *temporal.Interval
}

// SetPendingValid installs (or, with nil, clears) the valid-time
// interval stamped onto subsequently captured ops.
func (a *Archive) SetPendingValid(iv *temporal.Interval) { a.pendingValid = iv }

// New creates an archive over en's database.
func New(en *sqlengine.Engine, mode CaptureMode) (*Archive, error) {
	a := &Archive{
		Engine:  en,
		DB:      en.DB,
		mode:    mode,
		factory: NewPlainStore,
		tables:  map[string]*archivedTable{},
	}
	if rel, ok := en.DB.Table(RelationsTable); ok {
		// Reopened persistent database: the relations table already
		// exists.
		a.relations = rel
		return a, nil
	}
	rel, err := en.DB.CreateTable(relstore.NewSchema(RelationsTable,
		relstore.Col("relationname", relstore.TypeString),
		relstore.Col("tstart", relstore.TypeDate),
		relstore.Col("tend", relstore.TypeDate)))
	if err != nil {
		return nil, err
	}
	a.relations = rel
	return a, nil
}

// SetStoreFactory replaces the attribute-store factory; it must be set
// before Register.
func (a *Archive) SetStoreFactory(f StoreFactory) { a.factory = f }

// Clock returns the archive's current timestamp (day granularity).
func (a *Archive) Clock() temporal.Date { return a.Engine.Now() }

// SetClock advances the archive clock. Changes applied afterwards are
// stamped with the new date. Every effective move is reported to the
// clock sink (the WAL); a same-value set is a no-op.
func (a *Archive) SetClock(d temporal.Date) {
	if a.Engine.Now() == d {
		return
	}
	a.Engine.SetNow(d)
	if a.clockSink != nil {
		a.clockSink(d)
	}
}

// SetClockSink registers fn to observe every effective clock move,
// through whichever entry point it happens.
func (a *Archive) SetClockSink(fn func(temporal.Date)) { a.clockSink = fn }

// Mode returns the capture mode.
func (a *Archive) Mode() CaptureMode { return a.mode }

// Spec returns the registered spec for a table.
func (a *Archive) Spec(table string) (TableSpec, bool) {
	at, ok := a.tables[strings.ToLower(table)]
	if !ok {
		return TableSpec{}, false
	}
	return at.spec, true
}

// Tables lists the archived table names.
func (a *Archive) Tables() []string {
	var out []string
	for _, at := range a.tables {
		out = append(out, at.spec.Name)
	}
	return out
}

// AttrStore exposes the store behind one attribute's history table.
func (a *Archive) AttrStore(table, attr string) (AttrStore, bool) {
	at, ok := a.tables[strings.ToLower(table)]
	if !ok {
		return nil, false
	}
	st, ok := at.attrs[strings.ToLower(attr)]
	return st, ok
}

// Register creates the current table, its H-tables and the capture
// trigger, and records the relation in the global relations table.
func (a *Archive) Register(spec TableSpec) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	key := strings.ToLower(spec.Name)
	if _, dup := a.tables[key]; dup {
		return fmt.Errorf("htable: table %s already registered", spec.Name)
	}
	if _, err := a.DB.CreateTable(relstore.NewSchema(spec.Name, spec.Columns...)); err != nil {
		return err
	}
	keyTable, err := a.DB.CreateTable(spec.KeyTableSchema())
	if err != nil {
		return err
	}
	at := &archivedTable{
		spec:       spec,
		keyTable:   keyTable,
		attrs:      map[string]AttrStore{},
		attrCols:   spec.AttrColumns(),
		surrogates: map[string]int64{},
		liveKeys:   map[int64]relstore.RID{},
		liveStarts: map[int64]temporal.Date{},
		attrStarts: map[string]temporal.Date{},
		nextID:     1,
	}
	for _, k := range spec.Key {
		at.keyIdx = append(at.keyIdx, spec.columnIndex(k))
	}
	for _, c := range at.attrCols {
		st, err := a.factory(a.DB, spec.AttrTableSchema(c))
		if err != nil {
			return err
		}
		at.attrs[strings.ToLower(c.Name)] = st
	}
	if _, err := a.relations.Insert(relstore.Row{
		relstore.String_(spec.Name), relstore.DateV(a.Clock()), relstore.DateV(forever)}); err != nil {
		return err
	}
	a.tables[key] = at

	a.Engine.AddTrigger(spec.Name, a.captureTrigger(at))
	return nil
}

// SetOpSink registers fn to observe every captured op before it is
// buffered or applied to the H-tables; an error from the sink aborts
// the originating statement. The durable WAL hangs off this hook.
func (a *Archive) SetOpSink(fn func(Op) error) { a.sink = fn }

// captureTrigger builds the row-level capture trigger shared by
// Register and Attach: hand the op to the sink (durability), then
// buffer it (log capture) or apply it synchronously (trigger capture).
func (a *Archive) captureTrigger(at *archivedTable) sqlengine.Trigger {
	key := strings.ToLower(at.spec.Name)
	return func(ev sqlengine.TriggerEvent) error {
		op := Op{Table: key, Type: ev.Type, Old: ev.Old, New: ev.New, At: a.Clock()}
		if a.pendingValid != nil {
			op.VStart, op.VEnd = a.pendingValid.Start, a.pendingValid.End
		}
		if a.sink != nil {
			if err := a.sink(op); err != nil {
				return err
			}
		}
		return a.ingest(at, op)
	}
}

// ingest routes one captured op according to the capture mode.
func (a *Archive) ingest(at *archivedTable, op Op) error {
	if a.mode == CaptureLog {
		a.log = append(a.log, op)
		return nil
	}
	return a.applyOp(at, op)
}

// Ingest feeds one op through the capture path as if its trigger had
// just fired — recovery replays WAL records with it. The op does NOT
// go to the sink: replay must not re-append to the log being replayed.
func (a *Archive) Ingest(op Op) error {
	at, ok := a.tables[strings.ToLower(op.Table)]
	if !ok {
		return fmt.Errorf("htable: ingest into unknown table %s", op.Table)
	}
	return a.ingest(at, op)
}

func (a *Archive) applyOp(at *archivedTable, op Op) error {
	ev := sqlengine.TriggerEvent{Type: op.Type, Table: at.spec.Name, Old: op.Old, New: op.New}
	return a.applyChange(at, ev, op.At, op.Valid())
}

// PendingLogRecords reports the size of the unapplied update log.
func (a *Archive) PendingLogRecords() int { return len(a.log) }

// PendingOps returns the unapplied update log (log-capture mode).
func (a *Archive) PendingOps() []Op { return a.log }

// FlushLog applies the pending update log to the H-tables (log-capture
// mode only; a no-op otherwise). Replay runs under each record's
// original timestamp so time-dependent machinery below the stores
// (e.g. segment-boundary recording) observes the logical time of the
// change, not the flush time.
func (a *Archive) FlushLog() error {
	// The replay-time clock juggling moves the engine clock directly:
	// these are not logical clock moves, so they bypass the clock sink.
	saved := a.Clock()
	defer func() { a.Engine.SetNow(saved) }()
	for _, op := range a.log {
		at := a.tables[op.Table]
		a.Engine.SetNow(op.At)
		if err := a.applyOp(at, op); err != nil {
			return err
		}
	}
	a.log = nil
	return nil
}

func (at *archivedTable) keyString(row relstore.Row) string {
	var sb strings.Builder
	for _, i := range at.keyIdx {
		sb.WriteString(row[i].Text())
		sb.WriteByte(0)
	}
	return sb.String()
}

func (at *archivedTable) surrogateFor(row relstore.Row) int64 {
	ks := at.keyString(row)
	if id, ok := at.surrogates[ks]; ok {
		return id
	}
	var id int64
	if at.spec.SingleIntKey() {
		id, _ = row[at.keyIdx[0]].AsInt()
	} else {
		id = at.nextID
		at.nextID++
	}
	at.surrogates[ks] = id
	return id
}

func (a *Archive) applyChange(at *archivedTable, ev sqlengine.TriggerEvent, now temporal.Date, valid temporal.Interval) error {
	switch ev.Type {
	case sqlengine.ChangeInsert:
		return a.applyInsert(at, ev.New, now, valid)
	case sqlengine.ChangeUpdate:
		return a.applyUpdate(at, ev.Old, ev.New, now, valid)
	case sqlengine.ChangeDelete:
		return a.applyDelete(at, ev.Old, now)
	}
	return fmt.Errorf("htable: unknown change type %v", ev.Type)
}

func (a *Archive) applyInsert(at *archivedTable, row relstore.Row, now temporal.Date, valid temporal.Interval) error {
	id := at.surrogateFor(row)
	if _, alive := at.liveKeys[id]; alive {
		return fmt.Errorf("htable: %s: duplicate live key %s", at.spec.Name, at.keyString(row))
	}
	keyRow := relstore.Row{relstore.Int(id)}
	if !at.spec.SingleIntKey() {
		for _, i := range at.keyIdx {
			keyRow = append(keyRow, row[i])
		}
	}
	keyRow = append(keyRow, relstore.DateV(now), relstore.DateV(forever))
	rid, err := at.keyTable.Insert(keyRow)
	if err != nil {
		return err
	}
	at.liveKeys[id] = rid
	at.liveStarts[id] = now
	for _, c := range at.attrCols {
		v := row[at.spec.columnIndex(c.Name)]
		if v.IsNull() {
			continue
		}
		if err := at.attrs[strings.ToLower(c.Name)].Append(id, v, now, valid); err != nil {
			return err
		}
		at.attrStarts[attrKey(c.Name, id)] = now
	}
	return nil
}

func attrKey(attr string, id int64) string {
	return fmt.Sprintf("%s\x00%d", strings.ToLower(attr), id)
}

func (a *Archive) applyUpdate(at *archivedTable, old, new_ relstore.Row, now temporal.Date, valid temporal.Interval) error {
	if at.keyString(old) != at.keyString(new_) {
		// Keys are invariant over history (paper Section 3 fn. 1); a
		// key change is modeled as delete + insert.
		if err := a.applyDelete(at, old, now); err != nil {
			return err
		}
		return a.applyInsert(at, new_, now, valid)
	}
	id := at.surrogateFor(old)
	for _, c := range at.attrCols {
		pos := at.spec.columnIndex(c.Name)
		ov, nv := old[pos], new_[pos]
		if relstore.Compare(ov, nv) == 0 && ov.IsNull() == nv.IsNull() {
			continue
		}
		st := at.attrs[strings.ToLower(c.Name)]
		ak := attrKey(c.Name, id)
		switch {
		case nv.IsNull():
			if err := a.closeAttr(at, st, id, ak, now); err != nil {
				return err
			}
		case ov.IsNull():
			if err := st.Append(id, nv, now, valid); err != nil {
				return err
			}
			at.attrStarts[ak] = now
		default:
			// The live version started today: collapse the two
			// same-day changes into one by rewriting in place.
			if start, ok := at.attrStarts[ak]; ok && start == now {
				if err := st.Rewrite(id, nv, valid); err != nil {
					return err
				}
				continue
			}
			if err := a.closeAttr(at, st, id, ak, now); err != nil {
				return err
			}
			if err := st.Append(id, nv, now, valid); err != nil {
				return err
			}
			at.attrStarts[ak] = now
		}
	}
	return nil
}

// closeAttr ends the live attribute version the day before now (the
// new value holds from now on); a version opened today collapses to a
// single-day interval.
func (a *Archive) closeAttr(at *archivedTable, st AttrStore, id int64, ak string, now temporal.Date) error {
	if err := st.Close(id, now.AddDays(-1)); err != nil {
		return err
	}
	delete(at.attrStarts, ak)
	return nil
}

func (a *Archive) applyDelete(at *archivedTable, old relstore.Row, now temporal.Date) error {
	id := at.surrogateFor(old)
	rid, alive := at.liveKeys[id]
	if !alive {
		return fmt.Errorf("htable: %s: delete of unknown key %s", at.spec.Name, at.keyString(old))
	}
	end := now.AddDays(-1)
	if start := at.liveStarts[id]; end < start {
		end = start
	}
	keyRow, _, err := at.keyTable.Get(rid)
	if err != nil {
		return err
	}
	updated := keyRow.Clone()
	updated[len(updated)-1] = relstore.DateV(end)
	if err := at.keyTable.Update(rid, updated); err != nil {
		return err
	}
	delete(at.liveKeys, id)
	delete(at.liveStarts, id)
	for _, c := range at.attrCols {
		st := at.attrs[strings.ToLower(c.Name)]
		if err := a.closeAttr(at, st, id, attrKey(c.Name, id), now); err != nil {
			return err
		}
	}
	return nil
}

package htable

import (
	"context"
	"strings"
	"testing"

	"archis/internal/relstore"
	"archis/internal/sqlengine"
	"archis/internal/temporal"
)

// buildLegacyArchive materializes a pre-bitemporal archive by hand —
// current table, key table and 4-column attribute-history tables with
// Bob's history through the 1995-06-01 raise — and attaches it. This
// is exactly the shape a database saved before the valid-time columns
// existed reopens with.
func buildLegacyArchive(t *testing.T) (*Archive, TableSpec) {
	t.Helper()
	db := relstore.NewDatabase()
	en := sqlengine.New(db)
	spec := employeeSpec()

	cur, err := db.CreateTable(relstore.NewSchema(spec.Name, spec.Columns...))
	if err != nil {
		t.Fatal(err)
	}
	keyT, err := db.CreateTable(spec.KeyTableSchema())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range spec.AttrColumns() {
		if _, err := db.CreateTable(relstore.NewSchema(spec.AttrTableName(c.Name),
			relstore.Col("id", relstore.TypeInt),
			c,
			relstore.Col("tstart", relstore.TypeDate),
			relstore.Col("tend", relstore.TypeDate))); err != nil {
			t.Fatal(err)
		}
	}

	d := temporal.MustParseDate
	if _, err := cur.Insert(relstore.Row{
		relstore.Int(1001), relstore.String_("Bob"), relstore.Int(70000),
		relstore.String_("Engineer"), relstore.String_("d01")}); err != nil {
		t.Fatal(err)
	}
	if _, err := keyT.Insert(relstore.Row{
		relstore.Int(1001), relstore.DateV(d("1995-01-01")), relstore.DateV(temporal.Forever)}); err != nil {
		t.Fatal(err)
	}
	hist := map[string][]relstore.Row{
		"employee_salary": {
			{relstore.Int(1001), relstore.Int(60000), relstore.DateV(d("1995-01-01")), relstore.DateV(d("1995-05-31"))},
			{relstore.Int(1001), relstore.Int(70000), relstore.DateV(d("1995-06-01")), relstore.DateV(temporal.Forever)},
		},
		"employee_name": {
			{relstore.Int(1001), relstore.String_("Bob"), relstore.DateV(d("1995-01-01")), relstore.DateV(temporal.Forever)},
		},
		"employee_title": {
			{relstore.Int(1001), relstore.String_("Engineer"), relstore.DateV(d("1995-01-01")), relstore.DateV(temporal.Forever)},
		},
		"employee_deptno": {
			{relstore.Int(1001), relstore.String_("d01"), relstore.DateV(d("1995-01-01")), relstore.DateV(temporal.Forever)},
		},
	}
	for name, rows := range hist {
		tab, ok := db.Table(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		for _, r := range rows {
			if _, err := tab.Insert(r); err != nil {
				t.Fatal(err)
			}
		}
	}

	a, err := New(en, CaptureTrigger)
	if err != nil {
		t.Fatal(err)
	}
	a.SetClock(d("1995-06-01"))
	err = a.Attach(spec, func(db *relstore.Database, schema relstore.Schema) (AttrStore, error) {
		tab, _ := db.Table(schema.Name)
		return OpenPlainStore(tab)
	})
	if err != nil {
		t.Fatalf("attach legacy archive: %v", err)
	}
	return a, spec
}

// TestLegacyArchiveCompat: an archive written before the valid-time
// columns existed must open and answer transaction-time queries
// unchanged, synthesize the default valid interval on bitemporal
// surfaces, accept default-valid writes in its 4-column layout, and
// reject explicit valid-time assertions rather than silently dropping
// them.
func TestLegacyArchiveCompat(t *testing.T) {
	a, _ := buildLegacyArchive(t)
	en := a.Engine

	// Transaction-time history identical to the pre-bitemporal shape:
	// four columns, no synthesized storage.
	got := historyRows(t, a, "employee_salary")
	want := []string{
		"1001|60000|1995-01-01|1995-05-31",
		"1001|70000|1995-06-01|9999-12-31",
	}
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("legacy salary history:\n%s\nwant:\n%s", strings.Join(got, "\n"), strings.Join(want, "\n"))
	}

	// Transaction-time snapshot reconstruction.
	rows, err := a.Snapshot("employee", temporal.MustParseDate("1995-03-01"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][2].I != 60000 {
		t.Errorf("Snapshot(1995-03-01) = %v, want Bob at 60000", rows)
	}

	// ScanHistory synthesizes the default valid interval.
	st, _ := a.AttrStore("employee", "salary")
	err = st.ScanHistory(func(_ int64, _ relstore.Value, start, _ temporal.Date, valid temporal.Interval) bool {
		if valid != DefaultValid(start) {
			t.Errorf("legacy row valid = %s, want default %s", valid, DefaultValid(start))
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}

	// The bitemporal snapshot agrees with the transaction-time one on
	// all-default data.
	vrows, err := a.SnapshotValid("employee", temporal.MustParseDate("1995-03-01"))
	if err != nil {
		t.Fatal(err)
	}
	if len(vrows) != 1 || vrows[0][2].I != 60000 {
		t.Errorf("SnapshotValid(1995-03-01) = %v, want Bob at 60000", vrows)
	}

	// A valid-time scoped SELECT gets the legacy conjunct tstart<=d:
	// versions asserted after d are not yet believed.
	ctx := sqlengine.WithValidAsOf(context.Background(), temporal.MustParseDate("1995-03-01"))
	res, err := en.ExecCtx(ctx, "select salary from employee_salary where id = 1001 order by tstart")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].I != 60000 {
		t.Errorf("valid-scoped legacy read = %v, want only the 60000 version", res.Rows)
	}

	// Default-valid writes keep flowing through capture in the legacy
	// 4-column layout.
	a.SetClock(temporal.MustParseDate("1995-10-01"))
	en.MustExec(`update employee set salary = 80000 where id = 1001`)
	got = historyRows(t, a, "employee_salary")
	want = []string{
		"1001|60000|1995-01-01|1995-05-31",
		"1001|70000|1995-06-01|1995-09-30",
		"1001|80000|1995-10-01|9999-12-31",
	}
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("post-write legacy history:\n%s\nwant:\n%s", strings.Join(got, "\n"), strings.Join(want, "\n"))
	}

	// An explicit valid interval cannot be represented: the write must
	// fail loudly, not archive with a silently dropped assertion.
	iv, err := temporal.NewInterval(temporal.MustParseDate("1995-01-01"), temporal.MustParseDate("1995-12-31"))
	if err != nil {
		t.Fatal(err)
	}
	a.SetPendingValid(&iv)
	_, err = en.Exec(`update employee set salary = 90000 where id = 1001`)
	a.SetPendingValid(nil)
	if err == nil || !strings.Contains(err.Error(), "legacy") {
		t.Errorf("explicit valid write on legacy table: err = %v, want legacy rejection", err)
	}
}

package htable

import (
	"fmt"
	"strings"

	"archis/internal/relstore"
	"archis/internal/temporal"
)

// Attach wires an archive to a table whose current table and H-tables
// already exist in the database (a reopened persistent system),
// rebuilding the in-memory key and live-version maps from the stored
// history. storeOpen opens the attribute store over the existing
// attribute table.
func (a *Archive) Attach(spec TableSpec, storeOpen func(db *relstore.Database, schema relstore.Schema) (AttrStore, error)) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	key := strings.ToLower(spec.Name)
	if _, dup := a.tables[key]; dup {
		return fmt.Errorf("htable: table %s already registered", spec.Name)
	}
	if _, ok := a.DB.Table(spec.Name); !ok {
		return fmt.Errorf("htable: attach: current table %s missing", spec.Name)
	}
	keyTable, ok := a.DB.Table(spec.KeyTableName())
	if !ok {
		return fmt.Errorf("htable: attach: key table %s missing", spec.KeyTableName())
	}
	at := &archivedTable{
		spec:       spec,
		keyTable:   keyTable,
		attrs:      map[string]AttrStore{},
		attrCols:   spec.AttrColumns(),
		surrogates: map[string]int64{},
		liveKeys:   map[int64]relstore.RID{},
		liveStarts: map[int64]temporal.Date{},
		attrStarts: map[string]temporal.Date{},
		nextID:     1,
	}
	for _, k := range spec.Key {
		at.keyIdx = append(at.keyIdx, spec.columnIndex(k))
	}
	for _, c := range at.attrCols {
		st, err := storeOpen(a.DB, spec.AttrTableSchema(c))
		if err != nil {
			return err
		}
		at.attrs[strings.ToLower(c.Name)] = st
	}

	// Rebuild key state from the key table.
	err := keyTable.Scan(nil, func(rid relstore.RID, row relstore.Row) bool {
		id, _ := row[0].AsInt()
		if id >= at.nextID {
			at.nextID = id + 1
		}
		// Surrogate mapping: for single-int keys the key value is the
		// id itself; composite/non-int keys store the key columns.
		var ks string
		if spec.SingleIntKey() {
			ks = row[0].Text() + "\x00"
		} else {
			var sb strings.Builder
			for i := range spec.Key {
				sb.WriteString(row[1+i].Text())
				sb.WriteByte(0)
			}
			ks = sb.String()
		}
		at.surrogates[ks] = id
		if row[len(row)-1].Date().IsForever() {
			at.liveKeys[id] = rid
			at.liveStarts[id] = row[len(row)-2].Date()
		}
		return true
	})
	if err != nil {
		return err
	}

	// Rebuild live attribute-version starts.
	for _, c := range at.attrCols {
		name := strings.ToLower(c.Name)
		err := at.attrs[name].ScanHistory(func(id int64, _ relstore.Value, start, end temporal.Date, _ temporal.Interval) bool {
			if end.IsForever() {
				at.attrStarts[attrKey(name, id)] = start
			}
			return true
		})
		if err != nil {
			return err
		}
	}

	a.tables[key] = at
	a.Engine.AddTrigger(spec.Name, a.captureTrigger(at))
	return nil
}

package htable

import (
	"fmt"
	"sort"
	"strings"

	"archis/internal/relstore"
	"archis/internal/temporal"
	"archis/internal/xmltree"
)

// RootName derives the H-document root element name for a table:
// employee → employees (the paper's Figure 3 convention).
func (s TableSpec) RootName() string {
	if strings.HasSuffix(s.Name, "s") {
		return s.Name + "es"
	}
	return s.Name + "s"
}

// DocName derives the virtual document name: employees.xml.
func (s TableSpec) DocName() string { return s.RootName() + ".xml" }

type version struct {
	value relstore.Value
	iv    temporal.Interval
	valid temporal.Interval
}

// PublishHDoc materializes the H-document (the temporally grouped XML
// view of Section 3) for one archived table from its H-tables.
func (a *Archive) PublishHDoc(table string) (*xmltree.Node, error) {
	at, ok := a.tables[strings.ToLower(table)]
	if !ok {
		return nil, fmt.Errorf("htable: table %s not registered", table)
	}
	spec := at.spec

	// Relation interval from the relations table.
	root := xmltree.NewElement(spec.RootName())
	err := a.relations.Scan(nil, func(_ relstore.RID, row relstore.Row) bool {
		if strings.EqualFold(row[0].Text(), spec.Name) {
			root.SetAttr("tstart", row[1].Date().String())
			root.SetAttr("tend", row[2].Date().String())
			return false
		}
		return true
	})
	if err != nil {
		return nil, err
	}

	// Key rows: one entity element per key-table row.
	type keyEntry struct {
		id     int64
		keyRow relstore.Row
		iv     temporal.Interval
	}
	var keys []keyEntry
	err = at.keyTable.Scan(nil, func(_ relstore.RID, row relstore.Row) bool {
		id, _ := row[0].AsInt()
		iv := temporal.Interval{Start: row[len(row)-2].Date(), End: row[len(row)-1].Date()}
		keys = append(keys, keyEntry{id: id, keyRow: row, iv: iv})
		return true
	})
	if err != nil {
		return nil, err
	}
	sort.SliceStable(keys, func(i, j int) bool {
		if keys[i].id != keys[j].id {
			return keys[i].id < keys[j].id
		}
		return keys[i].iv.Start < keys[j].iv.Start
	})

	// Attribute histories grouped by id.
	attrVersions := map[string]map[int64][]version{}
	for _, c := range at.attrCols {
		name := strings.ToLower(c.Name)
		byID := map[int64][]version{}
		err := at.attrs[name].ScanHistory(func(id int64, v relstore.Value, start, end temporal.Date, valid temporal.Interval) bool {
			byID[id] = append(byID[id], version{value: v, iv: temporal.Interval{Start: start, End: end}, valid: valid})
			return true
		})
		if err != nil {
			return nil, err
		}
		for _, vs := range byID {
			sort.Slice(vs, func(i, j int) bool { return vs[i].iv.Start < vs[j].iv.Start })
		}
		attrVersions[name] = byID
	}

	// addTimed emits one temporally attributed element. The valid-time
	// pair appears only when it differs from the default [tstart,
	// Forever], so H-documents of transaction-time-only archives are
	// byte-identical to the pre-bitemporal output.
	addTimed := func(parent *xmltree.Node, name, text string, iv temporal.Interval, valid ...temporal.Interval) {
		el := xmltree.NewElement(name).
			SetAttr("tstart", iv.Start.String()).
			SetAttr("tend", iv.End.String())
		if len(valid) == 1 && valid[0] != DefaultValid(iv.Start) {
			el.SetAttr("vstart", valid[0].Start.String())
			el.SetAttr("vend", valid[0].End.String())
		}
		el.AppendText(text)
		parent.Append(el)
	}

	for _, k := range keys {
		entity := xmltree.NewElement(spec.Name).
			SetAttr("tstart", k.iv.Start.String()).
			SetAttr("tend", k.iv.End.String())
		// Key children: id for surrogate-free keys, the key columns
		// otherwise.
		if spec.SingleIntKey() {
			addTimed(entity, strings.ToLower(spec.Key[0]), relstore.Int(k.id).Text(), k.iv)
		} else {
			for i, kc := range spec.Key {
				addTimed(entity, strings.ToLower(kc), k.keyRow[1+i].Text(), k.iv)
			}
		}
		for _, c := range at.attrCols {
			for _, v := range attrVersions[strings.ToLower(c.Name)][k.id] {
				// Attach versions overlapping this key incarnation
				// (relevant only after key reinsertion).
				if !v.iv.Overlaps(k.iv) {
					continue
				}
				addTimed(entity, strings.ToLower(c.Name), v.value.Text(), v.iv, v.valid)
			}
		}
		root.Append(entity)
	}
	return root, nil
}

// Snapshot reconstructs the rows of the table as of the given date
// from the H-tables (columns in spec order).
func (a *Archive) Snapshot(table string, at_ temporal.Date) ([]relstore.Row, error) {
	at, ok := a.tables[strings.ToLower(table)]
	if !ok {
		return nil, fmt.Errorf("htable: table %s not registered", table)
	}
	spec := at.spec

	type entity struct {
		keyRow relstore.Row
	}
	live := map[int64]*entity{}
	err := at.keyTable.Scan(nil, func(_ relstore.RID, row relstore.Row) bool {
		iv := temporal.Interval{Start: row[len(row)-2].Date(), End: row[len(row)-1].Date()}
		if iv.Contains(at_) {
			id, _ := row[0].AsInt()
			live[id] = &entity{keyRow: row}
		}
		return true
	})
	if err != nil {
		return nil, err
	}

	rows := map[int64]relstore.Row{}
	for id, e := range live {
		row := make(relstore.Row, len(spec.Columns))
		for i := range row {
			row[i] = relstore.Null
		}
		if spec.SingleIntKey() {
			row[at.keyIdx[0]] = relstore.Int(id)
		} else {
			for i, pos := range at.keyIdx {
				row[pos] = e.keyRow[1+i]
			}
		}
		rows[id] = row
	}
	for _, c := range at.attrCols {
		pos := spec.columnIndex(c.Name)
		err := at.attrs[strings.ToLower(c.Name)].ScanHistory(func(id int64, v relstore.Value, start, end temporal.Date, _ temporal.Interval) bool {
			if row, ok := rows[id]; ok && start <= at_ && at_ <= end {
				row[pos] = v
			}
			return true
		})
		if err != nil {
			return nil, err
		}
	}
	ids := make([]int64, 0, len(rows))
	for id := range rows {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]relstore.Row, len(ids))
	for i, id := range ids {
		out[i] = rows[id]
	}
	return out, nil
}

// SnapshotValid reconstructs the rows of the table as asserted for
// valid date validAt, using the archive's current belief (DESIGN.md
// §16): for each entity and attribute, every stored version whose
// valid interval covers validAt is an assertion made at its tstart,
// and the latest assertion wins (temporal.ApplyAssertions). An entity
// appears when at least one of its attributes has a covering
// assertion; uncovered attributes are NULL. Under all-default valid
// intervals this coincides with Snapshot(table, validAt) restricted
// to entities whose key interval covers validAt.
func (a *Archive) SnapshotValid(table string, validAt temporal.Date) ([]relstore.Row, error) {
	at, ok := a.tables[strings.ToLower(table)]
	if !ok {
		return nil, fmt.Errorf("htable: table %s not registered", table)
	}
	spec := at.spec

	keyRows := map[int64]relstore.Row{}
	err := at.keyTable.Scan(nil, func(_ relstore.RID, row relstore.Row) bool {
		id, _ := row[0].AsInt()
		if _, seen := keyRows[id]; !seen {
			keyRows[id] = row
		}
		return true
	})
	if err != nil {
		return nil, err
	}

	// attr values resolved per id: winner = value of the latest
	// covering assertion.
	type cell struct{ v relstore.Value }
	resolved := map[int64]map[int]cell{}
	for _, c := range at.attrCols {
		pos := spec.columnIndex(c.Name)
		type assertion struct {
			v    relstore.Value
			at   temporal.Date
			live bool
		}
		best := map[int64]assertion{}
		err := at.attrs[strings.ToLower(c.Name)].ScanHistory(func(id int64, v relstore.Value, start, end temporal.Date, valid temporal.Interval) bool {
			if !valid.Valid() || !valid.Contains(validAt) {
				return true
			}
			// Latest assertion wins; on an equal assertion day the live
			// version supersedes the one it closed.
			cand := assertion{v: v, at: start, live: end.IsForever()}
			if cur, ok := best[id]; !ok || cand.at > cur.at || (cand.at == cur.at && cand.live && !cur.live) {
				best[id] = cand
			}
			return true
		})
		if err != nil {
			return nil, err
		}
		for id, asr := range best {
			if resolved[id] == nil {
				resolved[id] = map[int]cell{}
			}
			resolved[id][pos] = cell{v: asr.v}
		}
	}

	ids := make([]int64, 0, len(resolved))
	for id := range resolved {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]relstore.Row, 0, len(ids))
	for _, id := range ids {
		row := make(relstore.Row, len(spec.Columns))
		for i := range row {
			row[i] = relstore.Null
		}
		if spec.SingleIntKey() {
			row[at.keyIdx[0]] = relstore.Int(id)
		} else if kr, ok := keyRows[id]; ok {
			for i, pos := range at.keyIdx {
				row[pos] = kr[1+i]
			}
		}
		for pos, c := range resolved[id] {
			row[pos] = c.v
		}
		out = append(out, row)
	}
	return out, nil
}

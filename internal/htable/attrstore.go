package htable

import (
	"fmt"

	"archis/internal/relstore"
	"archis/internal/temporal"
)

// AttrStore abstracts the physical layout of one attribute-history
// table. The plain implementation here appends to a heap table; the
// segment package provides a usefulness-clustered implementation and
// blockzip a compressed one.
//
// Every version carries two intervals: the transaction-time interval
// [tstart, tend] managed by the store (Append opens it, Close ends
// it) and the valid-time interval [vstart, vend] asserted by the
// writer and immutable thereafter (DESIGN.md §16). Stores opened over
// legacy tables without the valid columns accept only the default
// valid interval [start, Forever] and synthesize it on scans.
type AttrStore interface {
	// TableName returns the queryable table name for this attribute's
	// history.
	TableName() string
	// Append opens a new version [start, now] of the attribute for id,
	// asserted over the valid interval.
	Append(id int64, value relstore.Value, start temporal.Date, valid temporal.Interval) error
	// Close ends the live version for id at the given end date. A
	// missing live version is not an error (the attribute may have
	// been NULL). The valid interval is not touched: it records what
	// was asserted, and the transaction-time close records when the
	// assertion was superseded.
	Close(id int64, end temporal.Date) error
	// Rewrite replaces the value and valid interval of the live
	// version for id in place, used when an attribute changes twice at
	// the same timestamp.
	Rewrite(id int64, value relstore.Value, valid temporal.Interval) error
	// ScanHistory yields every logical version exactly once (clustered
	// layouts deduplicate their redundant copies). Order is
	// unspecified; fn returns false to stop.
	ScanHistory(fn func(id int64, value relstore.Value, start, end temporal.Date, valid temporal.Interval) bool) error
}

// DefaultValid is the valid interval of a version written without an
// explicit one: asserted from its transaction start onward.
func DefaultValid(start temporal.Date) temporal.Interval { return temporal.Current(start) }

// ErrLegacyValidTime marks an explicit valid interval rejected by a
// store whose on-disk table predates the valid-time columns.
func errLegacyValidTime(table string) error {
	return fmt.Errorf("htable: %s: legacy table has no valid-time columns; only the default valid interval is supported", table)
}

// plainStore is the unclustered layout: one heap table
// (id, value, tstart, tend, vstart, vend) plus an in-memory map of
// live rows. hasValid is false for legacy 4-column tables.
type plainStore struct {
	table    *relstore.Table
	live     map[int64]relstore.RID
	hasValid bool
}

// NewPlainStore creates the heap table for one attribute and returns
// its store. The table is created in db; an id index is NOT created
// automatically (benchmarks add indexes explicitly, as the paper does).
func NewPlainStore(db *relstore.Database, schema relstore.Schema) (AttrStore, error) {
	t, err := db.CreateTable(schema)
	if err != nil {
		return nil, err
	}
	return &plainStore{table: t, live: map[int64]relstore.RID{}, hasValid: schemaHasValid(schema)}, nil
}

// schemaHasValid reports whether the attribute schema carries the
// bitemporal pair.
func schemaHasValid(schema relstore.Schema) bool {
	return schema.ColumnIndex("vstart") >= 0 && schema.ColumnIndex("vend") >= 0
}

// OpenPlainStore wraps an existing table, rebuilding the live map.
// Legacy tables without the valid-time pair open read/write with
// default-valid semantics.
func OpenPlainStore(t *relstore.Table) (AttrStore, error) {
	ps := &plainStore{table: t, live: map[int64]relstore.RID{}, hasValid: schemaHasValid(t.Schema())}
	err := t.ScanBorrow(nil, func(rid relstore.RID, row relstore.Row) bool {
		if row[3].Date().IsForever() {
			id, _ := row[0].AsInt()
			ps.live[id] = rid
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	return ps, nil
}

func (ps *plainStore) TableName() string { return ps.table.Name() }

func (ps *plainStore) Append(id int64, value relstore.Value, start temporal.Date, valid temporal.Interval) error {
	if _, exists := ps.live[id]; exists {
		return fmt.Errorf("htable: %s: id %d already has a live version", ps.table.Name(), id)
	}
	row := relstore.Row{relstore.Int(id), value, relstore.DateV(start), relstore.DateV(forever)}
	if ps.hasValid {
		row = append(row, relstore.DateV(valid.Start), relstore.DateV(valid.End))
	} else if valid != DefaultValid(start) {
		return errLegacyValidTime(ps.table.Name())
	}
	rid, err := ps.table.Insert(row)
	if err != nil {
		return err
	}
	ps.live[id] = rid
	return nil
}

func (ps *plainStore) Close(id int64, end temporal.Date) error {
	rid, ok := ps.live[id]
	if !ok {
		return nil
	}
	row, liveRow, err := ps.table.Get(rid)
	if err != nil {
		return err
	}
	if !liveRow {
		return fmt.Errorf("htable: %s: live map points at dead row for id %d", ps.table.Name(), id)
	}
	updated := row.Clone()
	// Never produce an inverted interval: a version opened and closed
	// on the same day covers that single day.
	if end < updated[2].Date() {
		end = updated[2].Date()
	}
	updated[3] = relstore.DateV(end)
	if err := ps.table.Update(rid, updated); err != nil {
		return err
	}
	delete(ps.live, id)
	return nil
}

// rowValid extracts the valid interval of one stored row, synthesizing
// the default for legacy widths.
func rowValid(row relstore.Row, hasValid bool, start temporal.Date) temporal.Interval {
	if hasValid && len(row) >= 2 {
		n := len(row)
		return temporal.Interval{Start: row[n-2].Date(), End: row[n-1].Date()}
	}
	return DefaultValid(start)
}

// ScanHistory borrows rows from the underlying table: values handed
// to fn are immutable and safe to retain, per the relstore borrow
// contract.
func (ps *plainStore) ScanHistory(fn func(id int64, value relstore.Value, start, end temporal.Date, valid temporal.Interval) bool) error {
	return ps.table.ScanBorrow(nil, func(_ relstore.RID, row relstore.Row) bool {
		id, _ := row[0].AsInt()
		start := row[2].Date()
		return fn(id, row[1], start, row[3].Date(), rowValid(row, ps.hasValid, start))
	})
}

func (ps *plainStore) Rewrite(id int64, value relstore.Value, valid temporal.Interval) error {
	rid, ok := ps.live[id]
	if !ok {
		return fmt.Errorf("htable: %s: no live version to rewrite for id %d", ps.table.Name(), id)
	}
	row, _, err := ps.table.Get(rid)
	if err != nil {
		return err
	}
	updated := row.Clone()
	updated[1] = value
	if ps.hasValid {
		updated[4] = relstore.DateV(valid.Start)
		updated[5] = relstore.DateV(valid.End)
	} else if valid != DefaultValid(row[2].Date()) {
		return errLegacyValidTime(ps.table.Name())
	}
	return ps.table.Update(rid, updated)
}

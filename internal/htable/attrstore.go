package htable

import (
	"fmt"

	"archis/internal/relstore"
	"archis/internal/temporal"
)

// AttrStore abstracts the physical layout of one attribute-history
// table. The plain implementation here appends to a heap table; the
// segment package provides a usefulness-clustered implementation and
// blockzip a compressed one.
type AttrStore interface {
	// TableName returns the queryable table name for this attribute's
	// history.
	TableName() string
	// Append opens a new version [start, now] of the attribute for id.
	Append(id int64, value relstore.Value, start temporal.Date) error
	// Close ends the live version for id at the given end date. A
	// missing live version is not an error (the attribute may have
	// been NULL).
	Close(id int64, end temporal.Date) error
	// Rewrite replaces the value of the live version for id in place,
	// used when an attribute changes twice at the same timestamp.
	Rewrite(id int64, value relstore.Value) error
	// ScanHistory yields every logical version exactly once (clustered
	// layouts deduplicate their redundant copies). Order is
	// unspecified; fn returns false to stop.
	ScanHistory(fn func(id int64, value relstore.Value, start, end temporal.Date) bool) error
}

// plainStore is the unclustered layout: one heap table
// (id, value, tstart, tend) plus an in-memory map of live rows.
type plainStore struct {
	table *relstore.Table
	live  map[int64]relstore.RID
}

// NewPlainStore creates the heap table for one attribute and returns
// its store. The table is created in db; an id index is NOT created
// automatically (benchmarks add indexes explicitly, as the paper does).
func NewPlainStore(db *relstore.Database, schema relstore.Schema) (AttrStore, error) {
	t, err := db.CreateTable(schema)
	if err != nil {
		return nil, err
	}
	return &plainStore{table: t, live: map[int64]relstore.RID{}}, nil
}

// OpenPlainStore wraps an existing table, rebuilding the live map.
func OpenPlainStore(t *relstore.Table) (AttrStore, error) {
	ps := &plainStore{table: t, live: map[int64]relstore.RID{}}
	err := t.ScanBorrow(nil, func(rid relstore.RID, row relstore.Row) bool {
		if row[len(row)-1].Date().IsForever() {
			id, _ := row[0].AsInt()
			ps.live[id] = rid
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	return ps, nil
}

func (ps *plainStore) TableName() string { return ps.table.Name() }

func (ps *plainStore) Append(id int64, value relstore.Value, start temporal.Date) error {
	if _, exists := ps.live[id]; exists {
		return fmt.Errorf("htable: %s: id %d already has a live version", ps.table.Name(), id)
	}
	rid, err := ps.table.Insert(relstore.Row{
		relstore.Int(id), value, relstore.DateV(start), relstore.DateV(forever)})
	if err != nil {
		return err
	}
	ps.live[id] = rid
	return nil
}

func (ps *plainStore) Close(id int64, end temporal.Date) error {
	rid, ok := ps.live[id]
	if !ok {
		return nil
	}
	row, liveRow, err := ps.table.Get(rid)
	if err != nil {
		return err
	}
	if !liveRow {
		return fmt.Errorf("htable: %s: live map points at dead row for id %d", ps.table.Name(), id)
	}
	updated := row.Clone()
	// Never produce an inverted interval: a version opened and closed
	// on the same day covers that single day.
	if end < updated[2].Date() {
		end = updated[2].Date()
	}
	updated[3] = relstore.DateV(end)
	if err := ps.table.Update(rid, updated); err != nil {
		return err
	}
	delete(ps.live, id)
	return nil
}

// ScanHistory borrows rows from the underlying table: values handed
// to fn are immutable and safe to retain, per the relstore borrow
// contract.
func (ps *plainStore) ScanHistory(fn func(id int64, value relstore.Value, start, end temporal.Date) bool) error {
	return ps.table.ScanBorrow(nil, func(_ relstore.RID, row relstore.Row) bool {
		id, _ := row[0].AsInt()
		return fn(id, row[1], row[2].Date(), row[3].Date())
	})
}

func (ps *plainStore) Rewrite(id int64, value relstore.Value) error {
	rid, ok := ps.live[id]
	if !ok {
		return fmt.Errorf("htable: %s: no live version to rewrite for id %d", ps.table.Name(), id)
	}
	row, _, err := ps.table.Get(rid)
	if err != nil {
		return err
	}
	updated := row.Clone()
	updated[1] = value
	return ps.table.Update(rid, updated)
}

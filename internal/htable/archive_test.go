package htable

import (
	"strings"
	"testing"

	"archis/internal/relstore"
	"archis/internal/sqlengine"
	"archis/internal/temporal"
	"archis/internal/xmltree"
)

func employeeSpec() TableSpec {
	return TableSpec{
		Name: "employee",
		Columns: []relstore.Column{
			relstore.Col("id", relstore.TypeInt),
			relstore.Col("name", relstore.TypeString),
			relstore.Col("salary", relstore.TypeInt),
			relstore.Col("title", relstore.TypeString),
			relstore.Col("deptno", relstore.TypeString),
		},
		Key: []string{"id"},
	}
}

func newArchive(t *testing.T, mode CaptureMode) *Archive {
	t.Helper()
	en := sqlengine.New(relstore.NewDatabase())
	a, err := New(en, mode)
	if err != nil {
		t.Fatal(err)
	}
	a.SetClock(temporal.MustParseDate("1995-01-01"))
	if err := a.Register(employeeSpec()); err != nil {
		t.Fatal(err)
	}
	return a
}

// playBobHistory drives the current database through the history of
// Table 1 of the paper.
func playBobHistory(t *testing.T, a *Archive) {
	t.Helper()
	en := a.Engine
	a.SetClock(temporal.MustParseDate("1995-01-01"))
	en.MustExec(`insert into employee values (1001, 'Bob', 60000, 'Engineer', 'd01')`)
	a.SetClock(temporal.MustParseDate("1995-06-01"))
	en.MustExec(`update employee set salary = 70000 where id = 1001`)
	a.SetClock(temporal.MustParseDate("1995-10-01"))
	en.MustExec(`update employee set title = 'Sr Engineer', deptno = 'd02' where id = 1001`)
	a.SetClock(temporal.MustParseDate("1996-02-01"))
	en.MustExec(`update employee set title = 'TechLeader' where id = 1001`)
	a.SetClock(temporal.MustParseDate("1997-01-01"))
	en.MustExec(`delete from employee where id = 1001`)
}

func historyRows(t *testing.T, a *Archive, table string) []string {
	t.Helper()
	res, err := a.Engine.Exec(`select * from ` + table + ` order by id, tstart`)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, r := range res.Rows {
		parts := make([]string, len(r))
		for i, v := range r {
			parts[i] = v.Text()
		}
		out = append(out, strings.Join(parts, "|"))
	}
	return out
}

func TestTriggerCaptureBuildsTable1History(t *testing.T) {
	a := newArchive(t, CaptureTrigger)
	playBobHistory(t, a)

	// Salary history: exactly the paper's Table 1 shape.
	got := historyRows(t, a, "employee_salary")
	want := []string{
		"1001|60000|1995-01-01|1995-05-31|1995-01-01|9999-12-31",
		"1001|70000|1995-06-01|1996-12-31|1995-06-01|9999-12-31",
	}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("salary history = %v, want %v", got, want)
	}

	got = historyRows(t, a, "employee_title")
	want = []string{
		"1001|Engineer|1995-01-01|1995-09-30|1995-01-01|9999-12-31",
		"1001|Sr Engineer|1995-10-01|1996-01-31|1995-10-01|9999-12-31",
		"1001|TechLeader|1996-02-01|1996-12-31|1996-02-01|9999-12-31",
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("title[%d] = %v, want %v", i, got[i], want[i])
		}
	}

	got = historyRows(t, a, "employee_id")
	if len(got) != 1 || got[0] != "1001|1995-01-01|1996-12-31" {
		t.Errorf("key history = %v", got)
	}
}

func TestLogCaptureDeferred(t *testing.T) {
	a := newArchive(t, CaptureLog)
	playBobHistory(t, a)
	if a.PendingLogRecords() != 5 {
		t.Fatalf("pending = %d", a.PendingLogRecords())
	}
	if got := historyRows(t, a, "employee_salary"); len(got) != 0 {
		t.Fatalf("H-tables written before flush: %v", got)
	}
	if err := a.FlushLog(); err != nil {
		t.Fatal(err)
	}
	if a.PendingLogRecords() != 0 {
		t.Error("log not drained")
	}
	got := historyRows(t, a, "employee_salary")
	if len(got) != 2 || got[1] != "1001|70000|1995-06-01|1996-12-31|1995-06-01|9999-12-31" {
		t.Errorf("flushed history = %v", got)
	}
}

func TestSameDayChangesCollapse(t *testing.T) {
	a := newArchive(t, CaptureTrigger)
	en := a.Engine
	a.SetClock(temporal.MustParseDate("1995-01-01"))
	en.MustExec(`insert into employee values (7, 'X', 100, 'T', 'd')`)
	en.MustExec(`update employee set salary = 200 where id = 7`) // same day
	en.MustExec(`update employee set salary = 300 where id = 7`) // same day again
	got := historyRows(t, a, "employee_salary")
	if len(got) != 1 || got[0] != "7|300|1995-01-01|9999-12-31|1995-01-01|9999-12-31" {
		t.Errorf("same-day updates = %v", got)
	}
	// Insert and delete the same day: single-day life.
	en.MustExec(`insert into employee values (8, 'Y', 1, 'T', 'd')`)
	en.MustExec(`delete from employee where id = 8`)
	got = historyRows(t, a, "employee_id")
	found := false
	for _, g := range got {
		if g == "8|1995-01-01|1995-01-01" {
			found = true
		}
	}
	if !found {
		t.Errorf("same-day lifecycle = %v", got)
	}
}

func TestNullAttributeTransitions(t *testing.T) {
	a := newArchive(t, CaptureTrigger)
	en := a.Engine
	a.SetClock(temporal.MustParseDate("1995-01-01"))
	en.MustExec(`insert into employee (id, name, salary) values (9, 'N', 50)`)
	// title was NULL: no title history row.
	if got := historyRows(t, a, "employee_title"); len(got) != 0 {
		t.Fatalf("null attr archived: %v", got)
	}
	a.SetClock(temporal.MustParseDate("1995-02-01"))
	en.MustExec(`update employee set title = 'Boss' where id = 9`)
	a.SetClock(temporal.MustParseDate("1995-03-01"))
	en.MustExec(`update employee set title = NULL where id = 9`)
	got := historyRows(t, a, "employee_title")
	if len(got) != 1 || got[0] != "9|Boss|1995-02-01|1995-02-28|1995-02-01|9999-12-31" {
		t.Errorf("null transitions = %v", got)
	}
}

func TestKeyReinsertion(t *testing.T) {
	a := newArchive(t, CaptureTrigger)
	en := a.Engine
	a.SetClock(temporal.MustParseDate("1995-01-01"))
	en.MustExec(`insert into employee values (5, 'R', 10, 'T', 'd')`)
	a.SetClock(temporal.MustParseDate("1995-06-01"))
	en.MustExec(`delete from employee where id = 5`)
	a.SetClock(temporal.MustParseDate("1996-01-01"))
	en.MustExec(`insert into employee values (5, 'R', 20, 'T', 'd')`)
	got := historyRows(t, a, "employee_id")
	if len(got) != 2 {
		t.Fatalf("key incarnations = %v", got)
	}
	if got[0] != "5|1995-01-01|1995-05-31" || got[1] != "5|1996-01-01|9999-12-31" {
		t.Errorf("incarnations = %v", got)
	}
}

func TestCompositeKeySurrogates(t *testing.T) {
	en := sqlengine.New(relstore.NewDatabase())
	a, err := New(en, CaptureTrigger)
	if err != nil {
		t.Fatal(err)
	}
	a.SetClock(temporal.MustParseDate("2000-01-01"))
	spec := TableSpec{
		Name: "lineitem",
		Columns: []relstore.Column{
			relstore.Col("supplierno", relstore.TypeInt),
			relstore.Col("itemno", relstore.TypeInt),
			relstore.Col("qty", relstore.TypeInt),
		},
		Key: []string{"supplierno", "itemno"},
	}
	if err := a.Register(spec); err != nil {
		t.Fatal(err)
	}
	en.MustExec(`insert into lineitem values (1, 10, 5), (1, 11, 6), (2, 10, 7)`)
	a.SetClock(temporal.MustParseDate("2000-02-01"))
	en.MustExec(`update lineitem set qty = 8 where supplierno = 1 and itemno = 10`)

	res := en.MustExec(`select id, supplierno, itemno from lineitem_id order by id`)
	if len(res.Rows) != 3 {
		t.Fatalf("key rows = %d", len(res.Rows))
	}
	res = en.MustExec(`select id, qty, tstart, tend from lineitem_qty order by id, tstart`)
	if len(res.Rows) != 4 {
		t.Fatalf("qty history = %d rows", len(res.Rows))
	}
	// The updated lineitem's surrogate must have two versions.
	sid, _ := res.Rows[0][0].AsInt()
	if v, _ := res.Rows[0][1].AsInt(); v != 5 {
		t.Errorf("first version qty = %d", v)
	}
	if sid2, _ := res.Rows[1][0].AsInt(); sid2 != sid {
		t.Errorf("update created new surrogate: %d vs %d", sid, sid2)
	}
}

func TestRelationsTable(t *testing.T) {
	a := newArchive(t, CaptureTrigger)
	res := a.Engine.MustExec(`select relationname, tend from relations`)
	if len(res.Rows) != 1 || res.Rows[0][0].Text() != "employee" {
		t.Errorf("relations = %v", res.Rows)
	}
	if !res.Rows[0][1].Date().IsForever() {
		t.Error("relation should be current")
	}
}

func TestRegisterValidation(t *testing.T) {
	a := newArchive(t, CaptureTrigger)
	if err := a.Register(employeeSpec()); err == nil {
		t.Error("duplicate register accepted")
	}
	bad := TableSpec{Name: "x", Columns: []relstore.Column{relstore.Col("a", relstore.TypeInt)}, Key: []string{"a"}}
	if err := a.Register(bad); err == nil {
		t.Error("key-only table accepted")
	}
	bad2 := TableSpec{Name: "y", Columns: []relstore.Column{relstore.Col("a", relstore.TypeInt)}, Key: []string{"zz"}}
	if err := a.Register(bad2); err == nil {
		t.Error("missing key column accepted")
	}
}

func TestPublishHDocMatchesFigure3(t *testing.T) {
	a := newArchive(t, CaptureTrigger)
	playBobHistory(t, a)
	doc, err := a.PublishHDoc("employee")
	if err != nil {
		t.Fatal(err)
	}
	if doc.Name != "employees" {
		t.Fatalf("root = %s", doc.Name)
	}
	emps := doc.ChildElements("employee")
	if len(emps) != 1 {
		t.Fatalf("employees = %d", len(emps))
	}
	bob := emps[0]
	if v, _ := bob.Attr("tstart"); v != "1995-01-01" {
		t.Errorf("tstart = %s", v)
	}
	if v, _ := bob.Attr("tend"); v != "1996-12-31" {
		t.Errorf("tend = %s", v)
	}
	if n := len(bob.ChildElements("salary")); n != 2 {
		t.Errorf("salary versions = %d", n)
	}
	if n := len(bob.ChildElements("title")); n != 3 {
		t.Errorf("title versions = %d", n)
	}
	titles := bob.ChildElements("title")
	if titles[1].TextContent() != "Sr Engineer" {
		t.Errorf("title[1] = %s", titles[1].TextContent())
	}
	if v, _ := titles[1].Attr("tend"); v != "1996-01-31" {
		t.Errorf("title[1] tend = %s", v)
	}
	// The temporal covering constraint: every child interval inside
	// the parent's.
	for _, child := range bob.ChildElements("") {
		cs := child.AttrOr("tstart", "")
		ce := child.AttrOr("tend", "")
		if cs < "1995-01-01" || (ce > "1996-12-31" && ce != "9999-12-31") {
			t.Errorf("covering constraint violated: <%s %s %s>", child.Name, cs, ce)
		}
	}
	// The published view parses as well-formed XML.
	if _, err := xmltree.ParseString(xmltree.Pretty(doc)); err != nil {
		t.Errorf("published doc not well-formed: %v", err)
	}
}

func TestSnapshotReconstruction(t *testing.T) {
	a := newArchive(t, CaptureTrigger)
	playBobHistory(t, a)
	rows, err := a.Snapshot("employee", temporal.MustParseDate("1995-11-15"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("snapshot rows = %d", len(rows))
	}
	got := rows[0]
	if got[1].Text() != "Bob" || got[2].Text() != "70000" || got[3].Text() != "Sr Engineer" || got[4].Text() != "d02" {
		t.Errorf("snapshot = %v", got)
	}
	// After deletion the snapshot is empty.
	rows, err = a.Snapshot("employee", temporal.MustParseDate("1998-01-01"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Errorf("post-delete snapshot = %v", rows)
	}
}

// Property-ish test: the snapshot of the H-tables at the current clock
// always equals the current table contents, across a random-ish
// update sequence.
func TestSnapshotAgreesWithCurrentTable(t *testing.T) {
	a := newArchive(t, CaptureTrigger)
	en := a.Engine
	day := temporal.MustParseDate("1995-01-01")
	ops := []string{
		`insert into employee values (1, 'A', 10, 't1', 'd1')`,
		`insert into employee values (2, 'B', 20, 't1', 'd1')`,
		`update employee set salary = 15 where id = 1`,
		`insert into employee values (3, 'C', 30, 't2', 'd2')`,
		`update employee set deptno = 'd2' where id = 2`,
		`delete from employee where id = 1`,
		`update employee set salary = 35, title = 't3' where id = 3`,
		`insert into employee values (1, 'A', 11, 't1', 'd1')`,
		`update employee set name = 'B2' where id = 2`,
		`delete from employee where id = 3`,
	}
	for i, op := range ops {
		a.SetClock(day.AddDays(i * 7))
		en.MustExec(op)

		res, err := en.Exec(`select * from employee order by id`)
		if err != nil {
			t.Fatal(err)
		}
		var want []string
		for _, r := range res.Rows {
			parts := make([]string, len(r))
			for j, v := range r {
				parts[j] = v.Text()
			}
			want = append(want, strings.Join(parts, "|"))
		}
		snap, err := a.Snapshot("employee", a.Clock())
		if err != nil {
			t.Fatal(err)
		}
		var got []string
		for _, r := range snap {
			parts := make([]string, len(r))
			for j, v := range r {
				parts[j] = v.Text()
			}
			got = append(got, strings.Join(parts, "|"))
		}
		if strings.Join(got, ";") != strings.Join(want, ";") {
			t.Fatalf("after op %d %q:\nsnapshot = %v\ncurrent  = %v", i, op, got, want)
		}
	}
}

// Package htable implements the relational archival layer of ArchIS
// (paper Section 5): for every table of the current database it
// maintains a key table, one attribute-history table per attribute and
// a global `relations` table; changes in the current database are
// captured by triggers (the ArchIS-DB2 configuration) or an update log
// (the ArchIS-ATLaS configuration) and archived as inclusive
// [tstart, tend] intervals with "now" encoded as 9999-12-31.
//
// The package also publishes H-documents — the temporally grouped XML
// views of Section 3 — from the H-tables, and reconstructs snapshots.
package htable

import (
	"fmt"
	"strings"

	"archis/internal/relstore"
	"archis/internal/temporal"
)

// TableSpec declares a current-database table to archive.
type TableSpec struct {
	Name    string
	Columns []relstore.Column // includes key columns
	Key     []string          // key column names (invariant over history)
}

// Validate checks the spec for internal consistency.
func (s TableSpec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("htable: empty table name")
	}
	if len(s.Key) == 0 {
		return fmt.Errorf("htable: table %s has no key", s.Name)
	}
	for _, k := range s.Key {
		if s.columnIndex(k) < 0 {
			return fmt.Errorf("htable: table %s: key column %s not in columns", s.Name, k)
		}
	}
	if len(s.Columns) == len(s.Key) {
		return fmt.Errorf("htable: table %s has no non-key attributes", s.Name)
	}
	return nil
}

func (s TableSpec) columnIndex(name string) int {
	for i, c := range s.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

func (s TableSpec) isKey(name string) bool {
	for _, k := range s.Key {
		if strings.EqualFold(k, name) {
			return true
		}
	}
	return false
}

// AttrColumns lists the non-key attributes (those that get history
// tables).
func (s TableSpec) AttrColumns() []relstore.Column {
	var out []relstore.Column
	for _, c := range s.Columns {
		if !s.isKey(c.Name) {
			out = append(out, c)
		}
	}
	return out
}

// SingleIntKey reports whether the key is one INT column, in which
// case key values are used directly as history ids (no surrogate).
func (s TableSpec) SingleIntKey() bool {
	if len(s.Key) != 1 {
		return false
	}
	return s.Columns[s.columnIndex(s.Key[0])].Type == relstore.TypeInt
}

// KeyTableName is the name of the key table: employee → employee_id
// for a single key column named id; composite keys keep the _id suffix
// with the key columns stored alongside the surrogate.
func (s TableSpec) KeyTableName() string {
	if len(s.Key) == 1 {
		return s.Name + "_" + strings.ToLower(s.Key[0])
	}
	return s.Name + "_id"
}

// AttrTableName names the history table for one attribute.
func (s TableSpec) AttrTableName(attr string) string {
	return s.Name + "_" + strings.ToLower(attr)
}

// KeyTableSchema builds the key table schema (paper Section 5.1).
func (s TableSpec) KeyTableSchema() relstore.Schema {
	cols := []relstore.Column{relstore.Col("id", relstore.TypeInt)}
	if !s.SingleIntKey() {
		for _, k := range s.Key {
			cols = append(cols, s.Columns[s.columnIndex(k)])
		}
	}
	cols = append(cols,
		relstore.Col("tstart", relstore.TypeDate),
		relstore.Col("tend", relstore.TypeDate))
	return relstore.NewSchema(s.KeyTableName(), cols...)
}

// AttrTableSchema builds one attribute-history table schema. The
// valid-time pair comes last so every transaction-time column keeps
// its position from the pre-bitemporal layout; legacy tables without
// the pair still open (their valid interval defaults to
// [tstart, Forever], which makes a legacy archive indistinguishable
// from one whose writes never set an explicit valid time).
func (s TableSpec) AttrTableSchema(attr relstore.Column) relstore.Schema {
	return relstore.NewSchema(s.AttrTableName(attr.Name),
		relstore.Col("id", relstore.TypeInt),
		attr,
		relstore.Col("tstart", relstore.TypeDate),
		relstore.Col("tend", relstore.TypeDate),
		relstore.Col("vstart", relstore.TypeDate),
		relstore.Col("vend", relstore.TypeDate))
}

// RelationsTable is the global relation-history table name.
const RelationsTable = "relations"

// Forever mirrors temporal.Forever for brevity in this package.
var forever = temporal.Forever

package temporal

import (
	"math/rand"
	"testing"
)

// Property tests for the interval algebra: randomized histories with
// degenerate single-day intervals, adjacent intervals, Forever
// endpoints and reversed (empty) inputs, checked against day-level
// set semantics. Bitemporal coalescing composes these operations, so
// an off-by-one here corrupts every sequenced answer downstream.

const propBase = 10_000 // day numbers used by the generators

func propDate(r *rand.Rand) Date {
	if r.Intn(12) == 0 {
		return Forever
	}
	return Date(propBase + r.Intn(60))
}

// randInterval generates closed intervals biased toward edge cases:
// single-day, adjacent-prone small spans, current intervals, and
// (when allowInvalid) reversed pairs.
func propInterval(r *rand.Rand, allowInvalid bool) Interval {
	s := Date(propBase + r.Intn(60))
	var e Date
	switch r.Intn(6) {
	case 0:
		e = s // degenerate [d, d]
	case 1:
		e = Forever
	default:
		e = s + Date(r.Intn(10))
	}
	iv := Interval{Start: s, End: e}
	if allowInvalid && r.Intn(8) == 0 && e != s {
		iv = Interval{Start: e, End: s} // reversed
	}
	return iv
}

// covers reports whether day d is in any valid interval of the list.
func covers(in []Interval, d Date) bool {
	for _, iv := range in {
		if iv.Valid() && iv.Contains(d) {
			return true
		}
	}
	return false
}

// checkDays compares coverage of two interval lists over the probe
// range (plus Forever-adjacent days).
func probeDays() []Date {
	days := make([]Date, 0, 130)
	for d := Date(propBase - 2); d < propBase+75; d++ {
		days = append(days, d)
	}
	days = append(days, Forever-1, Forever)
	return days
}

func TestPropCoalesceIntervals(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	days := probeDays()
	for iter := 0; iter < 500; iter++ {
		in := make([]Interval, r.Intn(8))
		for i := range in {
			in[i] = propInterval(r, true)
		}
		out := CoalesceIntervals(in)

		// Same day coverage.
		for _, d := range days {
			if covers(in, d) != covers(out, d) {
				t.Fatalf("iter %d: coverage differs at %d: in=%v out=%v", iter, d, in, out)
			}
		}
		// Output is valid, sorted, disjoint and non-adjacent (maximal).
		for i, iv := range out {
			if !iv.Valid() {
				t.Fatalf("iter %d: invalid output interval %v", iter, iv)
			}
			if i > 0 {
				prev := out[i-1]
				if prev.Start > iv.Start {
					t.Fatalf("iter %d: output not sorted: %v", iter, out)
				}
				if prev.Coalescable(iv) {
					t.Fatalf("iter %d: output not maximal: %v then %v", iter, prev, iv)
				}
			}
		}
		// Idempotent.
		again := CoalesceIntervals(out)
		if len(again) != len(out) {
			t.Fatalf("iter %d: not idempotent: %v vs %v", iter, out, again)
		}
		for i := range out {
			if again[i] != out[i] {
				t.Fatalf("iter %d: not idempotent: %v vs %v", iter, out, again)
			}
		}
	}
}

func TestPropCoalesceTimed(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	days := probeDays()
	values := []string{"a", "b"}
	for iter := 0; iter < 500; iter++ {
		in := make([]Timed, r.Intn(8))
		for i := range in {
			in[i] = Timed{Value: values[r.Intn(len(values))], Interval: propInterval(r, true)}
		}
		out := Coalesce(in)
		for _, v := range values {
			sub := func(ts []Timed) []Interval {
				var ivs []Interval
				for _, x := range ts {
					if x.Value == v {
						ivs = append(ivs, x.Interval)
					}
				}
				return ivs
			}
			inIvs, outIvs := sub(in), sub(out)
			for _, d := range days {
				if covers(inIvs, d) != covers(outIvs, d) {
					t.Fatalf("iter %d: value %q coverage differs at %d", iter, v, d)
				}
			}
			for i := 1; i < len(outIvs); i++ {
				if outIvs[i-1].Coalescable(outIvs[i]) {
					t.Fatalf("iter %d: value %q output not maximal: %v", iter, v, outIvs)
				}
			}
		}
	}
}

func TestPropMeetsAdjacent(t *testing.T) {
	// Meets is exact adjacency; a current interval meets nothing.
	a := MustInterval(10, 20)
	if !a.Meets(MustInterval(21, 25)) {
		t.Fatal("expected [10,20] meets [21,25]")
	}
	if a.Meets(MustInterval(20, 25)) || a.Meets(MustInterval(22, 25)) {
		t.Fatal("meets must be exact adjacency")
	}
	cur := Current(10)
	if cur.Meets(MustInterval(20, 25)) {
		t.Fatal("a current interval meets nothing")
	}
	if !MustInterval(5, 9).Meets(cur) {
		t.Fatal("[5,9] meets [10,Forever]")
	}
	// Degenerate single-day adjacency coalesces.
	got := CoalesceIntervals([]Interval{Point(5), Point(6), Point(8)})
	want := []Interval{MustInterval(5, 6), Point(8)}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("degenerate coalesce: got %v want %v", got, want)
	}
}

func TestPropDaysAndClampEnd(t *testing.T) {
	now := Date(propBase + 10)
	if d := Point(5).Days(now); d != 1 {
		t.Fatalf("single-day span = %d, want 1", d)
	}
	// A current interval starting in the future covers zero days as of
	// now, and its clamp never inverts.
	future := Current(now + 5)
	if d := future.Days(now); d != 0 {
		t.Fatalf("future current interval spans %d days, want 0", d)
	}
	if c := future.ClampEnd(now); !c.Valid() {
		t.Fatalf("ClampEnd inverted the interval: %v", c)
	}
	if c := Current(now - 2).ClampEnd(now); c != MustInterval(now-2, now) {
		t.Fatalf("ClampEnd = %v", c)
	}
	// Reversed intervals cover zero days.
	if d := (Interval{Start: 9, End: 5}).Days(now); d != 0 {
		t.Fatalf("reversed interval spans %d days, want 0", d)
	}
}

func TestPropSubtract(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	days := probeDays()
	for iter := 0; iter < 500; iter++ {
		a := propInterval(r, true)
		b := propInterval(r, true)
		out := a.Subtract(b)
		for _, d := range days {
			want := a.Valid() && a.Contains(d) && !(b.Valid() && b.Contains(d))
			if covers(out, d) != want {
				t.Fatalf("iter %d: (%v - %v) wrong at %d: %v", iter, a, b, d, out)
			}
		}
		if len(out) > 2 {
			t.Fatalf("iter %d: subtract produced %d pieces", iter, len(out))
		}
	}
}

func TestPropRestructure(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	days := probeDays()
	for iter := 0; iter < 300; iter++ {
		a := make([]Interval, r.Intn(5))
		b := make([]Interval, r.Intn(5))
		for i := range a {
			a[i] = propInterval(r, true)
		}
		for i := range b {
			b[i] = propInterval(r, true)
		}
		out := Restructure(a, b)
		for _, iv := range out {
			if !iv.Valid() {
				t.Fatalf("iter %d: restructure emitted invalid %v", iter, iv)
			}
		}
		for _, d := range days {
			want := covers(a, d) && covers(b, d)
			if covers(out, d) != want {
				t.Fatalf("iter %d: restructure coverage wrong at %d", iter, d)
			}
		}
	}
}

func TestPropApplyAssertions(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	days := probeDays()
	values := []string{"a", "b", "c"}
	for iter := 0; iter < 500; iter++ {
		in := make([]Asserted, r.Intn(8))
		for i := range in {
			in[i] = Asserted{
				Value: values[r.Intn(len(values))],
				Valid: propInterval(r, true),
				At:    propDate(r),
			}
		}
		out := ApplyAssertions(in)

		// Reference: for each probe day, replay assertions in stable
		// At order; the last valid assertion covering the day wins.
		for _, d := range days {
			var want string
			var covered bool
			// Stable sort by At (mirror of the implementation's rule).
			idx := make([]int, len(in))
			for i := range idx {
				idx[i] = i
			}
			for i := 1; i < len(idx); i++ {
				for j := i; j > 0 && in[idx[j-1]].At > in[idx[j]].At; j-- {
					idx[j-1], idx[j] = idx[j], idx[j-1]
				}
			}
			for _, i := range idx {
				a := in[i]
				if a.Valid.Valid() && a.Valid.Contains(d) {
					want, covered = a.Value, true
				}
			}
			got, ok := ValidAt(out, d)
			if ok != covered || got != want {
				t.Fatalf("iter %d day %d: got (%q,%v) want (%q,%v)\nin=%v\nout=%v",
					iter, d, got, ok, want, covered, in, out)
			}
		}
		// Output is disjoint and sorted.
		for i := 1; i < len(out); i++ {
			if out[i-1].Interval.End >= out[i].Interval.Start {
				t.Fatalf("iter %d: overlapping output %v", iter, out)
			}
		}
	}
}

// Package temporal implements the temporal data model used throughout
// ArchIS: day-granularity dates, inclusive intervals, the "now"
// (until-changed) convention, interval algebra, coalescing and
// restructuring of timestamped histories, and sweep-based temporal
// aggregates.
//
// The conventions follow the paper (TimeCenter TR-81):
//
//   - time granularity is one day;
//   - intervals are inclusive at both ends;
//   - the symbol "now" is stored internally as the end-of-time value
//     9999-12-31 (Forever) and only externalized on demand via
//     ReplaceForever (the paper's rtend/externalnow functions).
package temporal

import (
	"fmt"
	"time"
)

// Date is a day-granularity timestamp, counted in days since the Unix
// epoch (1970-01-01). Negative values are dates before the epoch.
type Date int32

// Forever is the internal encoding of "now"/"until changed": the
// end-of-time date 9999-12-31 (paper Section 4.3).
var Forever = MustParseDate("9999-12-31")

const secondsPerDay = 86400

// NewDate builds a Date from a calendar year, month and day.
func NewDate(year int, month time.Month, day int) Date {
	t := time.Date(year, month, day, 0, 0, 0, 0, time.UTC)
	return Date(t.Unix() / secondsPerDay)
}

// FromTime truncates a time.Time to day granularity.
func FromTime(t time.Time) Date {
	tt := t.UTC()
	return NewDate(tt.Year(), tt.Month(), tt.Day())
}

// ParseDate parses a date in ISO "2006-01-02" form.
func ParseDate(s string) (Date, error) {
	t, err := time.ParseInLocation("2006-01-02", s, time.UTC)
	if err != nil {
		return 0, fmt.Errorf("temporal: parse date %q: %w", s, err)
	}
	return FromTime(t), nil
}

// MustParseDate is ParseDate for literals known to be valid; it panics
// on malformed input.
func MustParseDate(s string) Date {
	d, err := ParseDate(s)
	if err != nil {
		panic(err)
	}
	return d
}

// Time returns the midnight UTC time.Time for the date.
func (d Date) Time() time.Time {
	return time.Unix(int64(d)*secondsPerDay, 0).UTC()
}

// String renders the date in ISO form; Forever renders as "9999-12-31".
func (d Date) String() string {
	return d.Time().Format("2006-01-02")
}

// IsForever reports whether the date is the internal "now" encoding.
func (d Date) IsForever() bool { return d == Forever }

// AddDays returns the date n days later (earlier for negative n).
func (d Date) AddDays(n int) Date { return d + Date(n) }

// DaysBetween returns the signed number of days from d to other.
func (d Date) DaysBetween(other Date) int { return int(other - d) }

// Year returns the calendar year of the date.
func (d Date) Year() int { return d.Time().Year() }

// Min returns the earlier of two dates.
func Min(a, b Date) Date {
	if a < b {
		return a
	}
	return b
}

// Max returns the later of two dates.
func Max(a, b Date) Date {
	if a > b {
		return a
	}
	return b
}

package temporal

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

func TestTAvgTwoEmployees(t *testing.T) {
	in := []WeightedValue{
		{60000, iv("1995-01-01", "1995-05-31")},
		{70000, iv("1995-06-01", "1995-12-31")},
		{50000, iv("1995-03-01", "1995-12-31")},
	}
	got := TAvg(in)
	want := []Step{
		{60000, iv("1995-01-01", "1995-02-28")},
		{55000, iv("1995-03-01", "1995-05-31")},
		{60000, iv("1995-06-01", "1995-12-31")},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("TAvg = %v, want %v", got, want)
	}
}

func TestTSumAndTCount(t *testing.T) {
	in := []WeightedValue{
		{10, iv("2000-01-01", "2000-01-10")},
		{20, iv("2000-01-06", "2000-01-15")},
	}
	sum := TSum(in)
	wantSum := []Step{
		{10, iv("2000-01-01", "2000-01-05")},
		{30, iv("2000-01-06", "2000-01-10")},
		{20, iv("2000-01-11", "2000-01-15")},
	}
	if !reflect.DeepEqual(sum, wantSum) {
		t.Errorf("TSum = %v, want %v", sum, wantSum)
	}
	cnt := TCount(in)
	wantCnt := []Step{
		{1, iv("2000-01-01", "2000-01-05")},
		{2, iv("2000-01-06", "2000-01-10")},
		{1, iv("2000-01-11", "2000-01-15")},
	}
	if !reflect.DeepEqual(cnt, wantCnt) {
		t.Errorf("TCount = %v, want %v", cnt, wantCnt)
	}
}

func TestAggregatesWithCurrentIntervals(t *testing.T) {
	in := []WeightedValue{
		{100, Current(MustParseDate("2004-01-01"))},
		{50, iv("2004-02-01", "2004-03-01")},
	}
	got := TSum(in)
	want := []Step{
		{100, iv("2004-01-01", "2004-01-31")},
		{150, iv("2004-02-01", "2004-03-01")},
		{100, Interval{Start: MustParseDate("2004-03-02"), End: Forever}},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("TSum = %v, want %v", got, want)
	}
	if !got[len(got)-1].Interval.IsCurrent() {
		t.Error("last step should be current")
	}
}

func TestAggregateGap(t *testing.T) {
	in := []WeightedValue{
		{5, iv("2000-01-01", "2000-01-03")},
		{7, iv("2000-01-10", "2000-01-12")},
	}
	got := TCount(in)
	want := []Step{
		{1, iv("2000-01-01", "2000-01-03")},
		{1, iv("2000-01-10", "2000-01-12")},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("TCount with gap = %v, want %v", got, want)
	}
}

func TestAggregateEmpty(t *testing.T) {
	if TAvg(nil) != nil || TSum(nil) != nil || TCount(nil) != nil || TMax(nil) != nil || TMin(nil) != nil {
		t.Error("aggregates of empty input must be nil")
	}
}

func TestTMaxTMin(t *testing.T) {
	in := []WeightedValue{
		{10, iv("2000-01-01", "2000-01-10")},
		{20, iv("2000-01-06", "2000-01-15")},
	}
	mx := TMax(in)
	wantMx := []Step{
		{10, iv("2000-01-01", "2000-01-05")},
		{20, iv("2000-01-06", "2000-01-15")},
	}
	if !reflect.DeepEqual(mx, wantMx) {
		t.Errorf("TMax = %v, want %v", mx, wantMx)
	}
	mn := TMin(in)
	wantMn := []Step{
		{10, iv("2000-01-01", "2000-01-10")},
		{20, iv("2000-01-11", "2000-01-15")},
	}
	if !reflect.DeepEqual(mn, wantMn) {
		t.Errorf("TMin = %v, want %v", mn, wantMn)
	}
}

func TestRising(t *testing.T) {
	in := []WeightedValue{
		{40000, iv("1988-02-20", "1989-02-19")},
		{42010, iv("1989-02-20", "1990-02-04")},
		{42525, iv("1990-02-05", "1991-02-04")},
		{41000, iv("1991-02-05", "1992-02-19")},
		{43000, iv("1992-02-20", "1993-02-19")},
	}
	got := Rising(in)
	want := []Interval{
		iv("1988-02-20", "1991-02-04"),
		iv("1991-02-05", "1993-02-19"),
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Rising = %v, want %v", got, want)
	}
}

func TestMovingWindowAvg(t *testing.T) {
	now := MustParseDate("2000-02-01")
	in := []WeightedValue{
		{10, iv("2000-01-01", "2000-01-10")},
		{30, iv("2000-01-11", "2000-01-20")},
	}
	got := MovingWindowAvg(in, 10, now)
	if len(got) != 2 {
		t.Fatalf("MovingWindowAvg = %v", got)
	}
	if got[0].Value != 10 {
		t.Errorf("first window avg = %v", got[0].Value)
	}
	if got[1].Value != 30 {
		t.Errorf("second window avg = %v", got[1].Value)
	}
	wide := MovingWindowAvg(in, 20, now)
	if math.Abs(wide[1].Value-20) > 1e-9 {
		t.Errorf("20-day window avg = %v, want 20", wide[1].Value)
	}
}

// brute-force reference: evaluate the aggregate day by day.
func bruteAgg(in []WeightedValue, day Date, kind string) (float64, bool) {
	var sum float64
	n := 0
	best := math.Inf(-1)
	worst := math.Inf(1)
	for _, wv := range in {
		if wv.Interval.Contains(day) {
			sum += wv.Value
			n++
			if wv.Value > best {
				best = wv.Value
			}
			if wv.Value < worst {
				worst = wv.Value
			}
		}
	}
	if n == 0 {
		return 0, false
	}
	switch kind {
	case "sum":
		return sum, true
	case "count":
		return float64(n), true
	case "avg":
		return sum / float64(n), true
	case "max":
		return best, true
	case "min":
		return worst, true
	}
	panic(kind)
}

func stepValueAt(steps []Step, day Date) (float64, bool) {
	for _, s := range steps {
		if s.Interval.Contains(day) {
			return s.Value, true
		}
	}
	return 0, false
}

// Property: sweep aggregates agree with a day-by-day brute force, and
// steps are disjoint with distinct adjacent values.
func TestAggregatePropertyAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	kinds := map[string]func([]WeightedValue) []Step{
		"sum": TSum, "count": TCount, "avg": TAvg, "max": TMax, "min": TMin,
	}
	for trial := 0; trial < 150; trial++ {
		n := 1 + r.Intn(8)
		in := make([]WeightedValue, n)
		for i := range in {
			s := Date(r.Intn(40))
			in[i] = WeightedValue{float64(1 + r.Intn(50)), Interval{Start: s, End: s + Date(r.Intn(15))}}
		}
		for kind, fn := range kinds {
			steps := fn(in)
			for i := 1; i < len(steps); i++ {
				if steps[i-1].Interval.Overlaps(steps[i].Interval) {
					t.Fatalf("%s: overlapping steps %v", kind, steps)
				}
				if steps[i-1].Value == steps[i].Value && steps[i-1].Interval.Adjacent(steps[i].Interval) {
					t.Fatalf("%s: uncoalesced equal steps %v", kind, steps)
				}
			}
			for day := Date(0); day < 60; day++ {
				want, wantLive := bruteAgg(in, day, kind)
				got, gotLive := stepValueAt(steps, day)
				if wantLive != gotLive || (wantLive && math.Abs(want-got) > 1e-9) {
					t.Fatalf("%s day %d: got (%v,%v) want (%v,%v)\nin=%v\nsteps=%v",
						kind, day, got, gotLive, want, wantLive, in, steps)
				}
			}
		}
	}
}

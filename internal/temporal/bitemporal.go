package temporal

import "sort"

// Bitemporal primitives (DESIGN.md §16). A bitemporal history is a
// sequence of assertions: at transaction time At the writer asserted
// that Value holds over the valid-time interval Valid. Later
// assertions overwrite earlier ones wherever their valid intervals
// overlap — the nonsequenced "latest assertion wins" rule — so the
// current belief about the valid timeline is a fold over the
// assertions in transaction order.

// Asserted is one bitemporal assertion: Value holds over Valid,
// asserted at transaction time At.
type Asserted struct {
	Value string
	Valid Interval
	At    Date
}

// ApplyAssertions folds assertions in transaction order (stable for
// equal At: later slice entries win) into the resulting valid-time
// timeline. Each assertion overwrites any previously asserted value
// on its valid interval. Assertions with reversed (empty) valid
// intervals are ignored. The output is coalesced, disjoint, and
// sorted by Start.
func ApplyAssertions(in []Asserted) []Timed {
	sorted := make([]Asserted, 0, len(in))
	for _, a := range in {
		if a.Valid.Valid() {
			sorted = append(sorted, a)
		}
	}
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].At < sorted[j].At })

	var timeline []Timed
	for _, a := range sorted {
		next := timeline[:0:0]
		for _, t := range timeline {
			for _, rest := range t.Interval.Subtract(a.Valid) {
				next = append(next, Timed{Value: t.Value, Interval: rest})
			}
		}
		timeline = append(next, Timed{Value: a.Value, Interval: a.Valid})
	}
	out := Coalesce(timeline)
	sort.Slice(out, func(i, j int) bool { return out[i].Interval.Start < out[j].Interval.Start })
	return out
}

// ValidAt resolves the nonsequenced point query: the value the
// (already folded) timeline holds on day d, with ok false when d is
// uncovered.
func ValidAt(timeline []Timed, d Date) (string, bool) {
	for _, t := range timeline {
		if t.Interval.Contains(d) {
			return t.Value, true
		}
	}
	return "", false
}

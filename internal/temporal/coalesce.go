package temporal

import "sort"

// Timed pairs an opaque value with its validity interval. Histories of
// an attribute are []Timed; the value type is deliberately generic so
// both the relational and the XML layers can reuse the algorithms here.
type Timed struct {
	Value    string
	Interval Interval
}

// Coalesce merges value-equivalent entries whose intervals overlap or
// are adjacent (the paper's coalesce($l) restructuring function). The
// input need not be sorted; reversed (empty) intervals are dropped;
// the output is sorted by (Value, Start) and contains maximal
// intervals.
func Coalesce(in []Timed) []Timed {
	sorted := make([]Timed, 0, len(in))
	for _, t := range in {
		if t.Interval.Valid() {
			sorted = append(sorted, t)
		}
	}
	if len(sorted) <= 1 {
		return sorted
	}
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Value != sorted[j].Value {
			return sorted[i].Value < sorted[j].Value
		}
		if sorted[i].Interval.Start != sorted[j].Interval.Start {
			return sorted[i].Interval.Start < sorted[j].Interval.Start
		}
		return sorted[i].Interval.End < sorted[j].Interval.End
	})
	out := make([]Timed, 0, len(sorted))
	cur := sorted[0]
	for _, next := range sorted[1:] {
		if next.Value == cur.Value && cur.Interval.Coalescable(next.Interval) {
			cur.Interval = cur.Interval.Union(next.Interval)
			continue
		}
		out = append(out, cur)
		cur = next
	}
	return append(out, cur)
}

// CoalesceIntervals merges a bag of intervals regardless of value,
// returning the minimal set of maximal disjoint intervals that covers
// the same days. Reversed (empty) intervals are dropped.
func CoalesceIntervals(in []Interval) []Interval {
	sorted := make([]Interval, 0, len(in))
	for _, iv := range in {
		if iv.Valid() {
			sorted = append(sorted, iv)
		}
	}
	if len(sorted) == 0 {
		return nil
	}
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Start != sorted[j].Start {
			return sorted[i].Start < sorted[j].Start
		}
		return sorted[i].End < sorted[j].End
	})
	out := make([]Interval, 0, len(sorted))
	cur := sorted[0]
	for _, next := range sorted[1:] {
		if cur.Coalescable(next) {
			cur = cur.Union(next)
			continue
		}
		out = append(out, cur)
		cur = next
	}
	return append(out, cur)
}

// Restructure returns all pairwise overlaps between the two interval
// lists (the paper's restructure($a,$b) function, used e.g. by QUERY 6
// to find periods during which both a department and a title were
// unchanged).
func Restructure(a, b []Interval) []Interval {
	var out []Interval
	for _, x := range a {
		if !x.Valid() {
			continue
		}
		for _, y := range b {
			if !y.Valid() {
				continue
			}
			if iv, ok := x.Intersect(y); ok {
				out = append(out, iv)
			}
		}
	}
	return out
}

// MaxSpan returns the longest span, in days, among the intervals; zero
// for an empty list. Current intervals are clamped to now.
func MaxSpan(in []Interval, now Date) int {
	best := 0
	for _, iv := range in {
		if d := iv.Days(now); d > best {
			best = d
		}
	}
	return best
}

// CoversExactly reports whether the two histories cover exactly the
// same days with the same values — the "same employment history"
// relation of QUERY 8 (period containment both ways).
func CoversExactly(a, b []Timed) bool {
	ca, cb := Coalesce(a), Coalesce(b)
	if len(ca) != len(cb) {
		return false
	}
	for i := range ca {
		if ca[i] != cb[i] {
			return false
		}
	}
	return true
}

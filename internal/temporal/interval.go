package temporal

import "fmt"

// Interval is a closed (inclusive at both ends) time interval
// [Start, End]. An interval whose End is Forever is current ("now").
// The zero Interval is invalid; use NewInterval.
type Interval struct {
	Start Date
	End   Date
}

// NewInterval builds [start, end] and reports an error when end
// precedes start.
func NewInterval(start, end Date) (Interval, error) {
	if end < start {
		return Interval{}, fmt.Errorf("temporal: invalid interval [%s, %s]", start, end)
	}
	return Interval{Start: start, End: end}, nil
}

// MustInterval is NewInterval for literals known to be valid.
func MustInterval(start, end Date) Interval {
	iv, err := NewInterval(start, end)
	if err != nil {
		panic(err)
	}
	return iv
}

// Point returns the single-day interval [d, d].
func Point(d Date) Interval { return Interval{Start: d, End: d} }

// Current returns [start, Forever], the interval of a live tuple.
func Current(start Date) Interval { return Interval{Start: start, End: Forever} }

// Valid reports whether Start <= End.
func (iv Interval) Valid() bool { return iv.Start <= iv.End }

// IsCurrent reports whether the interval extends to "now".
func (iv Interval) IsCurrent() bool { return iv.End.IsForever() }

// String renders the interval as "[start, end]" with the internal
// Forever encoding shown verbatim.
func (iv Interval) String() string {
	return fmt.Sprintf("[%s, %s]", iv.Start, iv.End)
}

// Contains reports whether the interval covers the given day.
func (iv Interval) Contains(d Date) bool { return iv.Start <= d && d <= iv.End }

// ContainsInterval reports whether iv covers all of other
// (the paper's tcontains).
func (iv Interval) ContainsInterval(other Interval) bool {
	return iv.Start <= other.Start && other.End <= iv.End
}

// Overlaps reports whether the two closed intervals share at least one
// day (the paper's toverlaps).
func (iv Interval) Overlaps(other Interval) bool {
	return iv.Start <= other.End && other.Start <= iv.End
}

// Equals reports whether the two intervals are identical
// (the paper's tequals).
func (iv Interval) Equals(other Interval) bool { return iv == other }

// Precedes reports whether iv ends strictly before other starts
// (the paper's tprecedes).
func (iv Interval) Precedes(other Interval) bool { return iv.End < other.Start }

// Meets reports whether iv ends exactly one day before other starts,
// i.e. the intervals are adjacent without overlapping (the paper's
// tmeets, adapted to closed day-granularity intervals). A current
// interval meets nothing: no interval starts after the end of time.
func (iv Interval) Meets(other Interval) bool {
	return !iv.End.IsForever() && other.Start == iv.End+1
}

// Adjacent reports whether the intervals meet in either direction.
func (iv Interval) Adjacent(other Interval) bool {
	return iv.Meets(other) || other.Meets(iv)
}

// Intersect returns the overlapped interval and true when the
// intervals overlap (the paper's overlapinterval).
func (iv Interval) Intersect(other Interval) (Interval, bool) {
	if !iv.Overlaps(other) {
		return Interval{}, false
	}
	return Interval{Start: Max(iv.Start, other.Start), End: Min(iv.End, other.End)}, true
}

// Union returns the smallest interval covering both inputs; it is only
// meaningful when the inputs overlap or are adjacent.
func (iv Interval) Union(other Interval) Interval {
	return Interval{Start: Min(iv.Start, other.Start), End: Max(iv.End, other.End)}
}

// Coalescable reports whether two intervals can be merged into one:
// they overlap or are adjacent (value equivalence is the caller's
// concern).
func (iv Interval) Coalescable(other Interval) bool {
	return iv.Overlaps(other) || iv.Adjacent(other)
}

// Days returns the number of days in the interval (the paper's
// timespan); a single-day interval has span 1. For current intervals
// the span is computed against the supplied now date; a current
// interval that has not started yet as of now (and any reversed
// interval) covers zero days.
func (iv Interval) Days(now Date) int {
	end := iv.End
	if end.IsForever() {
		end = now
	}
	if end < iv.Start {
		return 0
	}
	return int(end-iv.Start) + 1
}

// ClampEnd returns the interval with a Forever end replaced by now
// (the paper's rtend applied to one interval). The clamp never
// inverts the interval: a current tuple whose start is still in the
// future collapses to its single start day.
func (iv Interval) ClampEnd(now Date) Interval {
	if iv.End.IsForever() {
		return Interval{Start: iv.Start, End: Max(now, iv.Start)}
	}
	return iv
}

// Subtract returns the parts of iv not covered by other: zero, one or
// two intervals, in ascending order. Reversed (empty) inputs subtract
// nothing; a reversed receiver yields nothing.
func (iv Interval) Subtract(other Interval) []Interval {
	if !iv.Valid() {
		return nil
	}
	if !other.Valid() || !iv.Overlaps(other) {
		return []Interval{iv}
	}
	var out []Interval
	if other.Start > iv.Start {
		out = append(out, Interval{Start: iv.Start, End: other.Start - 1})
	}
	if other.End < iv.End {
		out = append(out, Interval{Start: other.End + 1, End: iv.End})
	}
	return out
}

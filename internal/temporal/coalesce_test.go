package temporal

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestCoalesceMergesAdjacentEqualValues(t *testing.T) {
	in := []Timed{
		{"Engineer", iv("1995-01-01", "1995-05-31")},
		{"Engineer", iv("1995-06-01", "1995-09-30")},
		{"Sr Engineer", iv("1995-10-01", "1996-01-31")},
	}
	got := Coalesce(in)
	want := []Timed{
		{"Engineer", iv("1995-01-01", "1995-09-30")},
		{"Sr Engineer", iv("1995-10-01", "1996-01-31")},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Coalesce = %v, want %v", got, want)
	}
}

func TestCoalesceKeepsGaps(t *testing.T) {
	in := []Timed{
		{"d01", iv("1995-01-01", "1995-03-31")},
		{"d01", iv("1995-06-01", "1995-09-30")},
	}
	if got := Coalesce(in); len(got) != 2 {
		t.Errorf("gap wrongly coalesced: %v", got)
	}
}

func TestCoalesceDistinctValuesStaySeparate(t *testing.T) {
	in := []Timed{
		{"d01", iv("1995-01-01", "1995-03-31")},
		{"d02", iv("1995-04-01", "1995-09-30")},
	}
	if got := Coalesce(in); len(got) != 2 {
		t.Errorf("distinct values merged: %v", got)
	}
}

func TestCoalesceEmptyAndSingleton(t *testing.T) {
	if got := Coalesce(nil); len(got) != 0 {
		t.Errorf("Coalesce(nil) = %v", got)
	}
	one := []Timed{{"x", iv("2000-01-01", "2000-01-02")}}
	if got := Coalesce(one); !reflect.DeepEqual(got, one) {
		t.Errorf("Coalesce singleton = %v", got)
	}
}

func TestCoalesceOverlapsAndUnsortedInput(t *testing.T) {
	in := []Timed{
		{"x", iv("2000-03-01", "2000-06-30")},
		{"x", iv("2000-01-01", "2000-04-15")},
		{"x", iv("2000-07-01", "2000-08-01")},
	}
	got := Coalesce(in)
	want := []Timed{{"x", iv("2000-01-01", "2000-08-01")}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Coalesce = %v, want %v", got, want)
	}
}

func TestCoalesceIntervals(t *testing.T) {
	in := []Interval{
		iv("2000-01-01", "2000-01-10"),
		iv("2000-01-11", "2000-01-20"),
		iv("2000-02-01", "2000-02-05"),
	}
	got := CoalesceIntervals(in)
	want := []Interval{iv("2000-01-01", "2000-01-20"), iv("2000-02-01", "2000-02-05")}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("CoalesceIntervals = %v, want %v", got, want)
	}
	if CoalesceIntervals(nil) != nil {
		t.Error("CoalesceIntervals(nil) should be nil")
	}
}

func TestRestructure(t *testing.T) {
	dept := []Interval{iv("1995-01-01", "1995-09-30"), iv("1995-10-01", "1996-12-31")}
	title := []Interval{iv("1995-01-01", "1995-09-30"), iv("1995-10-01", "1996-01-31"), iv("1996-02-01", "1996-12-31")}
	got := Restructure(dept, title)
	want := []Interval{
		iv("1995-01-01", "1995-09-30"),
		iv("1995-10-01", "1996-01-31"),
		iv("1996-02-01", "1996-12-31"),
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Restructure = %v, want %v", got, want)
	}
	now := MustParseDate("1997-01-01")
	// QUERY 6 shape: longest unchanged (dept, title) stretch.
	if got := MaxSpan(got, now); got != iv("1996-02-01", "1996-12-31").Days(now) {
		t.Errorf("MaxSpan = %d", got)
	}
}

func TestCoversExactly(t *testing.T) {
	a := []Timed{
		{"d01", iv("1995-01-01", "1995-05-31")},
		{"d01", iv("1995-06-01", "1995-09-30")},
	}
	b := []Timed{{"d01", iv("1995-01-01", "1995-09-30")}}
	if !CoversExactly(a, b) {
		t.Error("coalesced-equal histories should match")
	}
	c := []Timed{{"d01", iv("1995-01-01", "1995-09-29")}}
	if CoversExactly(a, c) {
		t.Error("different end dates should not match")
	}
	d := []Timed{{"d02", iv("1995-01-01", "1995-09-30")}}
	if CoversExactly(a, d) {
		t.Error("different values should not match")
	}
}

// coveredDays expands a timed history into the set of (value, day) pairs.
func coveredDays(in []Timed) map[string]map[Date]bool {
	out := map[string]map[Date]bool{}
	for _, tv := range in {
		m := out[tv.Value]
		if m == nil {
			m = map[Date]bool{}
			out[tv.Value] = m
		}
		for d := tv.Interval.Start; d <= tv.Interval.End; d++ {
			m[d] = true
		}
	}
	return out
}

// Property: Coalesce preserves the covered (value, day) set, produces
// non-coalescable output, and is idempotent.
func TestCoalesceProperties(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	values := []string{"a", "b", "c"}
	for trial := 0; trial < 300; trial++ {
		n := r.Intn(12)
		in := make([]Timed, n)
		for i := range in {
			s := Date(r.Intn(60))
			in[i] = Timed{values[r.Intn(len(values))], Interval{Start: s, End: s + Date(r.Intn(20))}}
		}
		out := Coalesce(in)
		if !reflect.DeepEqual(coveredDays(in), coveredDays(out)) {
			t.Fatalf("coverage changed: in=%v out=%v", in, out)
		}
		for i := range out {
			for j := i + 1; j < len(out); j++ {
				if out[i].Value == out[j].Value && out[i].Interval.Coalescable(out[j].Interval) {
					t.Fatalf("output still coalescable: %v", out)
				}
			}
		}
		if again := Coalesce(out); !reflect.DeepEqual(again, out) {
			t.Fatalf("not idempotent: %v vs %v", out, again)
		}
	}
}

package temporal

import (
	"testing"
	"testing/quick"
	"time"
)

func TestParseDateRoundTrip(t *testing.T) {
	cases := []string{"1970-01-01", "1995-06-01", "2003-02-04", "9999-12-31", "1969-12-31", "1900-02-28"}
	for _, s := range cases {
		d, err := ParseDate(s)
		if err != nil {
			t.Fatalf("ParseDate(%q): %v", s, err)
		}
		if got := d.String(); got != s {
			t.Errorf("round trip %q -> %q", s, got)
		}
	}
}

func TestParseDateErrors(t *testing.T) {
	for _, s := range []string{"", "1995-13-01", "1995-02-30", "not-a-date", "1995/01/01"} {
		if _, err := ParseDate(s); err == nil {
			t.Errorf("ParseDate(%q): expected error", s)
		}
	}
}

func TestNewDateEpoch(t *testing.T) {
	if d := NewDate(1970, time.January, 1); d != 0 {
		t.Errorf("epoch = %d, want 0", d)
	}
	if d := NewDate(1970, time.January, 2); d != 1 {
		t.Errorf("epoch+1 = %d, want 1", d)
	}
	if d := NewDate(1969, time.December, 31); d != -1 {
		t.Errorf("epoch-1 = %d, want -1", d)
	}
}

func TestForever(t *testing.T) {
	if !Forever.IsForever() {
		t.Fatal("Forever.IsForever() = false")
	}
	if Forever.String() != "9999-12-31" {
		t.Fatalf("Forever = %s", Forever)
	}
	if MustParseDate("2004-01-01").IsForever() {
		t.Fatal("ordinary date reported as forever")
	}
}

func TestDateArithmetic(t *testing.T) {
	a := MustParseDate("1995-01-01")
	b := a.AddDays(31)
	if b.String() != "1995-02-01" {
		t.Errorf("AddDays(31) = %s", b)
	}
	if got := a.DaysBetween(b); got != 31 {
		t.Errorf("DaysBetween = %d", got)
	}
	if a.Year() != 1995 {
		t.Errorf("Year = %d", a.Year())
	}
	if Min(a, b) != a || Max(a, b) != b {
		t.Error("Min/Max broken")
	}
}

func TestFromTimeTruncates(t *testing.T) {
	tt := time.Date(2001, time.July, 4, 23, 59, 58, 0, time.UTC)
	if got := FromTime(tt).String(); got != "2001-07-04" {
		t.Errorf("FromTime = %s", got)
	}
}

// Property: String/ParseDate round-trips for arbitrary in-range dates.
func TestDateRoundTripProperty(t *testing.T) {
	f := func(n int32) bool {
		// Clamp to a sane calendar range (year ~1970 .. ~9900).
		v := n % 2900000
		if v < 0 {
			v = -v
		}
		d := Date(v)
		back, err := ParseDate(d.String())
		return err == nil && back == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: AddDays is the inverse of DaysBetween.
func TestAddDaysProperty(t *testing.T) {
	f := func(base int32, delta int16) bool {
		d := Date(base % 1000000)
		return d.DaysBetween(d.AddDays(int(delta))) == int(delta)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

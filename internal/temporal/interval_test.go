package temporal

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func iv(start, end string) Interval {
	return MustInterval(MustParseDate(start), MustParseDate(end))
}

func TestNewIntervalValidation(t *testing.T) {
	if _, err := NewInterval(10, 5); err == nil {
		t.Error("expected error for end < start")
	}
	got, err := NewInterval(5, 5)
	if err != nil || !got.Valid() {
		t.Errorf("point interval rejected: %v", err)
	}
}

func TestIntervalPredicates(t *testing.T) {
	a := iv("1995-01-01", "1995-05-31")
	b := iv("1995-06-01", "1995-09-30")
	c := iv("1995-03-01", "1995-07-01")

	if a.Overlaps(b) || b.Overlaps(a) {
		t.Error("adjacent intervals must not overlap (closed intervals)")
	}
	if !a.Meets(b) {
		t.Error("a should meet b")
	}
	if b.Meets(a) {
		t.Error("meets is directional")
	}
	if !a.Adjacent(b) || !b.Adjacent(a) {
		t.Error("adjacency should hold both ways")
	}
	if !a.Overlaps(c) || !c.Overlaps(b) {
		t.Error("overlapping intervals not detected")
	}
	if !a.Precedes(b) {
		t.Error("a precedes b")
	}
	if a.Precedes(c) {
		t.Error("a does not precede c")
	}
	if !c.ContainsInterval(iv("1995-04-01", "1995-05-01")) {
		t.Error("containment not detected")
	}
	if c.ContainsInterval(a) {
		t.Error("false containment")
	}
	if !a.Equals(iv("1995-01-01", "1995-05-31")) {
		t.Error("equals broken")
	}
}

func TestIntervalContainsDate(t *testing.T) {
	a := iv("1995-01-01", "1995-05-31")
	for _, tc := range []struct {
		d    string
		want bool
	}{
		{"1995-01-01", true},
		{"1995-05-31", true},
		{"1995-03-15", true},
		{"1994-12-31", false},
		{"1995-06-01", false},
	} {
		if got := a.Contains(MustParseDate(tc.d)); got != tc.want {
			t.Errorf("Contains(%s) = %v, want %v", tc.d, got, tc.want)
		}
	}
}

func TestIntersect(t *testing.T) {
	a := iv("1995-01-01", "1995-05-31")
	c := iv("1995-03-01", "1995-07-01")
	got, ok := a.Intersect(c)
	if !ok || got != iv("1995-03-01", "1995-05-31") {
		t.Errorf("Intersect = %v, %v", got, ok)
	}
	if _, ok := a.Intersect(iv("1996-01-01", "1996-02-01")); ok {
		t.Error("disjoint intervals must not intersect")
	}
}

func TestCurrentAndClamp(t *testing.T) {
	now := MustParseDate("2005-03-02")
	cur := Current(MustParseDate("2001-01-01"))
	if !cur.IsCurrent() {
		t.Fatal("Current not current")
	}
	clamped := cur.ClampEnd(now)
	if clamped.End != now || clamped.IsCurrent() {
		t.Errorf("ClampEnd = %v", clamped)
	}
	fixed := iv("2001-01-01", "2002-01-01")
	if fixed.ClampEnd(now) != fixed {
		t.Error("ClampEnd must not touch bounded intervals")
	}
}

func TestDays(t *testing.T) {
	now := MustParseDate("1995-01-10")
	if d := iv("1995-01-01", "1995-01-01").Days(now); d != 1 {
		t.Errorf("point interval days = %d", d)
	}
	if d := iv("1995-01-01", "1995-01-31").Days(now); d != 31 {
		t.Errorf("January days = %d", d)
	}
	if d := Current(MustParseDate("1995-01-01")).Days(now); d != 10 {
		t.Errorf("current interval days = %d", d)
	}
}

func randInterval(r *rand.Rand) Interval {
	s := Date(r.Intn(20000))
	return Interval{Start: s, End: s + Date(r.Intn(400))}
}

// Property: Intersect is symmetric and its result is contained in both.
func TestIntersectProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		a, b := randInterval(r), randInterval(r)
		x, okx := a.Intersect(b)
		y, oky := b.Intersect(a)
		if okx != oky || x != y {
			t.Fatalf("intersect asymmetric: %v %v", a, b)
		}
		if okx && (!a.ContainsInterval(x) || !b.ContainsInterval(x)) {
			t.Fatalf("intersection escapes inputs: %v ∩ %v = %v", a, b, x)
		}
		if okx != a.Overlaps(b) {
			t.Fatalf("overlap/intersect disagree: %v %v", a, b)
		}
	}
}

// Property: overlaps ⟺ share at least one day; meets ⟺ adjacent with gap 0.
func TestOverlapSemanticsProperty(t *testing.T) {
	f := func(s1, l1, s2, l2 uint16) bool {
		a := Interval{Start: Date(s1), End: Date(s1) + Date(l1%200)}
		b := Interval{Start: Date(s2), End: Date(s2) + Date(l2%200)}
		shared := Max(a.Start, b.Start) <= Min(a.End, b.End)
		return a.Overlaps(b) == shared
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

package blockzip

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"archis/internal/relstore"
)

// Columnar block format (format v2). Frozen segments are immutable and
// id-sorted, so instead of a zlib stream of per-row blobs, a block can
// store each attribute column contiguously: delta-encoded timestamps
// and ids, dictionary-encoded strings, packed ints. The columnar
// payload both deflates smaller (like values sit next to like values)
// and decodes into per-column vectors the batch kernels consume
// without materializing rows.
//
// On-disk layout of one columnar block:
//
//	byte 0   colMagic (0xC1)
//	byte 1   colVersion (1)
//	byte 2+  zlib(payload), zero-padded to the configured block size
//
// A legacy row-blob block is a bare zlib stream whose first byte is
// the CMF header, whose low nibble is always 8 (deflate), so the two
// formats are unambiguous and mixed stores — old archives with new
// columnar segments appended — decode per block.
//
// payload (before deflate):
//
//	uvarint nrows
//	uvarint ncols
//	ncols × ( uvarint seclen, seclen bytes of column section )
//
// Per-column section lengths let a reader skip straight to the columns
// a query needs; unneeded columns are never decoded.
//
// column section:
//
//	byte mode        0 = uniform kind (one kind byte follows)
//	                 1 = mixed (nrows kind bytes follow)
//	then, for each kind present in ascending Type order, the payload
//	for the rows of that kind in row order:
//	  Int, Date   signed varints: first value, then deltas
//	  Float       8-byte little-endian IEEE 754 each
//	  Bool        bitset, LSB first
//	  String      uvarint dict size, dict entries (uvarint len + bytes,
//	              first-occurrence order), then one uvarint index per row
//	  Null        nothing
//	  Bytes, XML  self-delimiting relstore.EncodeValue per row
const (
	colMagic   = 0xC1
	colVersion = 1
)

// maxDecodedCells bounds nrows*ncols so a corrupt header cannot make
// the decoder allocate an arbitrarily large arena.
const maxDecodedCells = 1 << 22

// colPayloadPool recycles the transient inflated-payload buffer across
// block decodes. Safe because nothing in a decoded batch aliases the
// payload: dictionary strings, opaque values and numeric vectors all
// copy out of it (the batch ownership contract).
var colPayloadPool = sync.Pool{New: func() any { return new([]byte) }}

// IsColumnarBlock reports whether stored block data is in the columnar
// format (as opposed to a legacy row-blob zlib stream).
func IsColumnarBlock(data []byte) bool {
	return len(data) >= 2 && data[0] == colMagic
}

// appendUvarint / appendVarint are tiny binary.PutUvarint wrappers that
// append instead of writing into a fixed buffer.
func appendUvarint(dst []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(dst, tmp[:n]...)
}

func appendVarint(dst []byte, v int64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutVarint(tmp[:], v)
	return append(dst, tmp[:n]...)
}

// encodeColumnar appends the uncompressed columnar payload for rows to
// dst. Every row must have the same column count.
func encodeColumnar(dst []byte, rows []relstore.Row) ([]byte, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("blockzip: columnar encode of zero rows")
	}
	ncols := len(rows[0])
	for _, r := range rows {
		if len(r) != ncols {
			return nil, fmt.Errorf("blockzip: columnar encode with ragged rows (%d vs %d cols)", len(r), ncols)
		}
	}
	dst = appendUvarint(dst, uint64(len(rows)))
	dst = appendUvarint(dst, uint64(ncols))
	var sec []byte
	for c := 0; c < ncols; c++ {
		var err error
		if sec, err = encodeColSection(sec[:0], rows, c); err != nil {
			return nil, err
		}
		dst = appendUvarint(dst, uint64(len(sec)))
		dst = append(dst, sec...)
	}
	return dst, nil
}

func encodeColSection(dst []byte, rows []relstore.Row, c int) ([]byte, error) {
	uniform := true
	k0 := rows[0][c].Kind
	for _, r := range rows {
		if r[c].Kind > relstore.TypeBool {
			return nil, fmt.Errorf("blockzip: columnar encode of unknown value kind %d", r[c].Kind)
		}
		if r[c].Kind != k0 {
			uniform = false
		}
	}
	if uniform {
		dst = append(dst, 0, byte(k0))
	} else {
		dst = append(dst, 1)
		for _, r := range rows {
			dst = append(dst, byte(r[c].Kind))
		}
	}
	for kind := relstore.TypeNull; kind <= relstore.TypeBool; kind++ {
		if uniform && kind != k0 {
			continue
		}
		if !uniform {
			// Absent kinds get no payload at all — the decoder skips
			// them by count, so even a zero-length header (the string
			// dictionary size) would misalign every later kind.
			present := false
			for _, r := range rows {
				if r[c].Kind == kind {
					present = true
					break
				}
			}
			if !present {
				continue
			}
		}
		switch kind {
		case relstore.TypeNull:
			// no payload
		case relstore.TypeInt, relstore.TypeDate:
			prev := int64(0)
			for _, r := range rows {
				if r[c].Kind != kind {
					continue
				}
				dst = appendVarint(dst, r[c].I-prev)
				prev = r[c].I
			}
		case relstore.TypeFloat:
			for _, r := range rows {
				if r[c].Kind != kind {
					continue
				}
				var tmp [8]byte
				binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(r[c].F))
				dst = append(dst, tmp[:]...)
			}
		case relstore.TypeBool:
			var cur byte
			bit := 0
			for _, r := range rows {
				if r[c].Kind != kind {
					continue
				}
				if r[c].Truth {
					cur |= 1 << bit
				}
				if bit++; bit == 8 {
					dst = append(dst, cur)
					cur, bit = 0, 0
				}
			}
			if bit > 0 {
				dst = append(dst, cur)
			}
		case relstore.TypeString:
			// Dictionary in first-occurrence order; repeated values
			// (titles, department names) collapse to one entry.
			idx := map[string]uint64{}
			var dict []string
			var refs []uint64
			for _, r := range rows {
				if r[c].Kind != kind {
					continue
				}
				i, ok := idx[r[c].S]
				if !ok {
					i = uint64(len(dict))
					idx[r[c].S] = i
					dict = append(dict, r[c].S)
				}
				refs = append(refs, i)
			}
			dst = appendUvarint(dst, uint64(len(dict)))
			for _, s := range dict {
				dst = appendUvarint(dst, uint64(len(s)))
				dst = append(dst, s...)
			}
			for _, i := range refs {
				dst = appendUvarint(dst, i)
			}
		default: // TypeBytes, TypeXML: opaque self-delimiting fallback
			for _, r := range rows {
				if r[c].Kind != kind {
					continue
				}
				dst = relstore.EncodeValue(dst, r[c])
			}
		}
	}
	return dst, nil
}

// CompressColumnar packs rows into columnar blocks of exactly
// blockSize bytes each, using the same adaptive fitting loop as
// Compress (Algorithm 2): estimate rows per block from a sample, then
// grow or shrink until the deflated payload fits. A single row whose
// block does not fit gets an oversized, unpadded block (the BLOB
// escape hatch).
func CompressColumnar(rows []relstore.Row, blockSize int) ([]Block, error) {
	if blockSize <= 64 {
		return nil, fmt.Errorf("blockzip: block size %d too small", blockSize)
	}
	if len(rows) == 0 {
		return nil, nil
	}
	maxPayload := blockSize - 2 // magic + version prefix

	sampleCount := len(rows)
	if sampleCount > 512 {
		sampleCount = 512
	}
	raw, err := encodeColumnar(nil, rows[:sampleCount])
	if err != nil {
		return nil, err
	}
	avgRow := float64(len(raw)) / float64(sampleCount)
	if avgRow < 1 {
		avgRow = 1
	}
	comp, err := deflate(raw)
	if err != nil {
		return nil, err
	}
	f0 := float64(len(raw)) / float64(len(comp))
	if f0 < 1 {
		f0 = 1
	}

	n := int(float64(maxPayload) * f0 / avgRow)
	if n < 1 {
		n = 1
	}

	var out []Block
	start := 0
	for start < len(rows) {
		count := n
		if start+count > len(rows) {
			count = len(rows) - start
		}
		tooBig := len(rows) + 1
		for {
			if raw, err = encodeColumnar(raw[:0], rows[start:start+count]); err != nil {
				return nil, err
			}
			if comp, err = deflate(raw); err != nil {
				return nil, err
			}
			if len(comp) <= maxPayload {
				gap := maxPayload - len(comp)
				extra := int(float64(gap) * f0 / avgRow)
				if extra >= 1 && start+count < len(rows) && count+1 < tooBig {
					grow := extra
					if start+count+grow > len(rows) {
						grow = len(rows) - start - count
					}
					if count+grow >= tooBig {
						grow = tooBig - 1 - count
					}
					if grow > 0 {
						count += grow
						continue
					}
				}
				padded := make([]byte, blockSize)
				padded[0] = colMagic
				padded[1] = colVersion
				copy(padded[2:], comp)
				out = append(out, Block{Data: padded, Records: count})
				break
			}
			if count < tooBig {
				tooBig = count
			}
			over := len(comp) - maxPayload
			shrink := int(float64(over) * f0 / avgRow)
			if shrink < 1 {
				shrink = 1
			}
			if count-shrink < 1 {
				if count == 1 {
					over := make([]byte, 2+len(comp))
					over[0] = colMagic
					over[1] = colVersion
					copy(over[2:], comp)
					out = append(out, Block{Data: over, Records: 1})
					break
				}
				shrink = count - 1
			}
			count -= shrink
		}
		start += count
		n = count
	}
	return out, nil
}

// DecodeColumnarBatch decodes the needed columns of a columnar block
// into b (nil needed decodes every column; a needed slice shorter than
// the block's column count treats missing entries as false). Skipped
// columns keep Present=false. The decoder never panics on corrupt
// input: every length and count is validated before use.
func DecodeColumnarBatch(data []byte, needed []bool, b *relstore.ColBatch) error {
	if !IsColumnarBlock(data) {
		return fmt.Errorf("blockzip: not a columnar block")
	}
	if data[1] != colVersion {
		return fmt.Errorf("blockzip: unknown columnar block version %d", data[1])
	}
	bufp := colPayloadPool.Get().(*[]byte)
	payload, err := inflateInto(*bufp, data[2:])
	if err == nil {
		*bufp = payload
	}
	defer colPayloadPool.Put(bufp)
	if err != nil {
		return fmt.Errorf("blockzip: columnar %w", err)
	}
	pos := 0
	nrowsU, n := binary.Uvarint(payload[pos:])
	if n <= 0 {
		return fmt.Errorf("blockzip: corrupt columnar row count")
	}
	pos += n
	ncolsU, n := binary.Uvarint(payload[pos:])
	if n <= 0 {
		return fmt.Errorf("blockzip: corrupt columnar column count")
	}
	pos += n
	if nrowsU == 0 || ncolsU == 0 || nrowsU > maxDecodedCells || ncolsU > maxDecodedCells ||
		nrowsU*ncolsU > maxDecodedCells {
		return fmt.Errorf("blockzip: implausible columnar shape %d x %d", nrowsU, ncolsU)
	}
	nrows, ncols := int(nrowsU), int(ncolsU)
	b.Reset(nrows, ncols)
	for c := 0; c < ncols; c++ {
		seclenU, n := binary.Uvarint(payload[pos:])
		if n <= 0 {
			return fmt.Errorf("blockzip: corrupt columnar section length (col %d)", c)
		}
		pos += n
		seclen := int(seclenU)
		if seclen < 0 || pos+seclen > len(payload) {
			return fmt.Errorf("blockzip: columnar section overruns payload (col %d)", c)
		}
		sec := payload[pos : pos+seclen]
		pos += seclen
		if needed != nil && (c >= len(needed) || !needed[c]) {
			continue
		}
		if err := decodeColSection(sec, nrows, &b.Cols[c]); err != nil {
			return fmt.Errorf("blockzip: col %d: %w", c, err)
		}
	}
	return nil
}

func decodeColSection(sec []byte, nrows int, v *relstore.ColVec) error {
	if len(sec) < 1 {
		return fmt.Errorf("corrupt section header")
	}
	mode := sec[0]
	pos := 1
	switch mode {
	case 0:
		if len(sec) < 2 {
			return fmt.Errorf("truncated uniform kind")
		}
		k := relstore.Type(sec[1])
		if k > relstore.TypeBool {
			return fmt.Errorf("unknown kind %d", k)
		}
		v.Kind = k
		v.Kinds = nil
		pos = 2
	case 1:
		if len(sec) < 1+nrows {
			return fmt.Errorf("truncated kind array")
		}
		if cap(v.Kinds) < nrows {
			v.Kinds = make([]relstore.Type, nrows)
		}
		v.Kinds = v.Kinds[:nrows]
		for i := 0; i < nrows; i++ {
			k := relstore.Type(sec[1+i])
			if k > relstore.TypeBool {
				return fmt.Errorf("unknown kind %d", k)
			}
			v.Kinds[i] = k
		}
		pos = 1 + nrows
	default:
		return fmt.Errorf("unknown section mode %d", mode)
	}

	// One pass over the kinds (or none, for the common uniform section)
	// sizes every payload family; the per-kind decode loops below then
	// skip absent kinds by count and, when the section is uniform, run
	// without a per-row kind test at all.
	var counts [int(relstore.TypeBool) + 1]int
	if v.Kinds == nil {
		counts[v.Kind] = nrows
	} else {
		for _, k := range v.Kinds {
			counts[k]++
		}
	}
	haveI := counts[relstore.TypeInt]+counts[relstore.TypeDate]+counts[relstore.TypeBool] > 0
	haveF := counts[relstore.TypeFloat] > 0
	haveS := counts[relstore.TypeString] > 0
	haveAux := counts[relstore.TypeBytes]+counts[relstore.TypeXML] > 0
	if haveI {
		if cap(v.I) < nrows {
			v.I = make([]int64, nrows)
		}
		v.I = v.I[:nrows]
	}
	if haveF {
		if cap(v.F) < nrows {
			v.F = make([]float64, nrows)
		}
		v.F = v.F[:nrows]
	}
	if haveS {
		if cap(v.S) < nrows {
			v.S = make([]string, nrows)
		}
		v.S = v.S[:nrows]
	}
	if haveAux {
		if cap(v.Aux) < nrows {
			v.Aux = make([]relstore.Value, nrows)
		}
		v.Aux = v.Aux[:nrows]
	}

	kinds := v.Kinds // nil for a uniform section: loops skip the kind test
	for kind := relstore.TypeNull; kind <= relstore.TypeBool; kind++ {
		count := counts[kind]
		if count == 0 {
			continue
		}
		switch kind {
		case relstore.TypeNull:
			// no payload
		case relstore.TypeInt, relstore.TypeDate:
			prev := int64(0)
			for i := 0; i < nrows; i++ {
				if kinds != nil && kinds[i] != kind {
					continue
				}
				d, n := binary.Varint(sec[pos:])
				if n <= 0 {
					return fmt.Errorf("truncated %v deltas", kind)
				}
				pos += n
				prev += d
				v.I[i] = prev
			}
		case relstore.TypeFloat:
			if pos+8*count > len(sec) {
				return fmt.Errorf("truncated float payload")
			}
			for i := 0; i < nrows; i++ {
				if kinds != nil && kinds[i] != kind {
					continue
				}
				v.F[i] = math.Float64frombits(binary.LittleEndian.Uint64(sec[pos:]))
				pos += 8
			}
		case relstore.TypeBool:
			nbytes := (count + 7) / 8
			if pos+nbytes > len(sec) {
				return fmt.Errorf("truncated bool bitset")
			}
			j := 0
			for i := 0; i < nrows; i++ {
				if kinds != nil && kinds[i] != kind {
					continue
				}
				v.I[i] = int64(sec[pos+j/8] >> (j % 8) & 1)
				j++
			}
			pos += nbytes
		case relstore.TypeString:
			ndictU, n := binary.Uvarint(sec[pos:])
			if n <= 0 || ndictU > uint64(count) {
				return fmt.Errorf("corrupt string dictionary size")
			}
			pos += n
			dict := make([]string, int(ndictU))
			for d := range dict {
				lU, n := binary.Uvarint(sec[pos:])
				if n <= 0 {
					return fmt.Errorf("corrupt dictionary entry length")
				}
				pos += n
				l := int(lU)
				if l < 0 || pos+l > len(sec) {
					return fmt.Errorf("dictionary entry overruns section")
				}
				dict[d] = string(sec[pos : pos+l])
				pos += l
			}
			for i := 0; i < nrows; i++ {
				if kinds != nil && kinds[i] != kind {
					continue
				}
				ref, n := binary.Uvarint(sec[pos:])
				if n <= 0 || ref >= uint64(len(dict)) {
					return fmt.Errorf("corrupt dictionary reference")
				}
				pos += n
				v.S[i] = dict[ref]
			}
		default: // TypeBytes, TypeXML
			for i := 0; i < nrows; i++ {
				if kinds != nil && kinds[i] != kind {
					continue
				}
				val, n, err := relstore.DecodeValue(sec[pos:])
				if err != nil {
					return fmt.Errorf("opaque value: %w", err)
				}
				pos += n
				v.Aux[i] = val
			}
		}
	}
	v.Present = true
	return nil
}

// DecodeColumnarRows decodes a columnar block into rows backed by a
// single Value arena — the same shape blockRows produces for legacy
// blocks, so the decoded-block cache and the borrowed-row scan path
// work identically for both formats. The second return value
// approximates the decoded payload size for cache budget accounting.
func DecodeColumnarRows(data []byte) ([]relstore.Row, int, error) {
	var b relstore.ColBatch
	if err := DecodeColumnarBatch(data, nil, &b); err != nil {
		return nil, 0, err
	}
	ncols := len(b.Cols)
	arena := make([]relstore.Value, b.N*ncols)
	rows := make([]relstore.Row, b.N)
	payload := 0
	for i := 0; i < b.N; i++ {
		r := arena[i*ncols : (i+1)*ncols : (i+1)*ncols]
		for c := 0; c < ncols; c++ {
			v := b.Cols[c].ValueAt(i)
			r[c] = v
			payload += len(v.S) + len(v.B)
		}
		rows[i] = relstore.Row(r)
	}
	return rows, payload, nil
}

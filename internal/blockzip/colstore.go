package blockzip

import (
	"sync/atomic"

	"archis/internal/relstore"
	"archis/internal/temporal"
)

// Batch-granular scanning: the columnar sibling of ScanMorsels. The
// engine's vectorized executor (sqlengine's BatchSource) asks for the
// columns it needs; each batch morsel streams column batches with this
// store's segno-range / staleness / id filter already applied through
// the selection vector. Concatenating the selected rows of every batch
// in morsel order reproduces exactly the serial Scan row sequence, the
// same determinism contract ScanMorsels gives the row executor.

// batchRows is the target batch size for row-backed batches (the live
// segment and legacy row-blob blocks). Columnar blocks emit one batch
// per block, whatever its row count.
const batchRows = 1024

// ScanBatches implements the engine's batch source: uncompressed
// morsels first (live segment plus not-yet-compressed frozen rows),
// adapted row-to-batch, then one batch morsel per compressed segment
// range, newest segment first. needed marks the columns the consumer
// reads (nil = all); the store adds the columns its own filter needs,
// and columnar blocks decode only that union.
func (cs *CompressedStore) ScanBatches(bounds []relstore.ZoneBound, needed []bool) ([]relstore.BatchFunc, error) {
	segLo, segHi := int64(1), cs.Seg.LiveSegment()
	var idEq *int64
	for _, zb := range bounds {
		switch {
		case zb.Col == 0 && zb.Op == "=":
			segLo, segHi = zb.Bound, zb.Bound
		case zb.Col == 0 && zb.Op == ">=" && zb.Bound > segLo:
			segLo = zb.Bound
		case zb.Col == 0 && zb.Op == "<=" && zb.Bound < segHi:
			segHi = zb.Bound
		case zb.Col == 1 && zb.Op == "=":
			v := zb.Bound
			idEq = &v
		}
	}
	ncols := len(cs.Schema().Columns)

	// The store filter reads segno (col 0) and tend (col 4), plus id
	// (col 1) under an id-equality bound; widen the decode set so those
	// vectors are always present.
	storeNeeded := needed
	if needed != nil {
		storeNeeded = make([]bool, ncols)
		copy(storeNeeded, needed)
		storeNeeded[0] = true
		storeNeeded[4] = true
		if idEq != nil {
			storeNeeded[1] = true
		}
	}

	// Same filter rule as Scan/ScanMorsels, expressed over vectors.
	// Like the row filter, it reads the raw I payloads (row[0].I etc.),
	// so decoded NULLs behave identically on both paths.
	forever := int64(temporal.Forever)
	sel := func(b *relstore.ColBatch, dst []int32) []int32 {
		segv, idv, tendv := &b.Cols[0], &b.Cols[1], &b.Cols[4]
		dst = dst[:0]
		for i := 0; i < b.N; i++ {
			sg := vecI(segv, i)
			if sg < segLo || sg > segHi {
				continue
			}
			if sg < segHi && vecI(tendv, i) == forever {
				continue
			}
			if idEq != nil && vecI(idv, i) != *idEq {
				continue
			}
			dst = append(dst, int32(i))
		}
		return dst
	}

	segMorsels, err := cs.Seg.ScanMorsels(bounds)
	if err != nil {
		return nil, err
	}
	out := make([]relstore.BatchFunc, 0, len(segMorsels)+8)
	for _, m := range segMorsels {
		m := m
		out = append(out, func(fn func(*relstore.ColBatch) bool) (bool, error) {
			return cs.rowMorselBatches(m, ncols, storeNeeded, segLo, segHi, idEq, fn)
		})
	}

	ranges, err := cs.ranges(segLo, segHi)
	if err != nil {
		return nil, err
	}
	for _, rg := range ranges {
		rg := rg
		out = append(out, func(fn func(*relstore.ColBatch) bool) (bool, error) {
			return cs.rangeBatches(rg, idEq, storeNeeded, ncols, sel, fn)
		})
	}
	return out, nil
}

// vecI reads the raw int payload of row i, mirroring the row filter's
// direct .I access: Int/Date/Bool carry it in the I vector, everything
// else (NULL included) reconstructs the Value and takes its I field.
func vecI(v *relstore.ColVec, i int) int64 {
	if !v.Present {
		return 0
	}
	switch v.KindAt(i) {
	case relstore.TypeInt, relstore.TypeDate, relstore.TypeBool:
		return v.I[i]
	default:
		return v.ValueAt(i).I
	}
}

// rowMorselBatches adapts one row morsel (the uncompressed side) into
// batches: rows passing the store filter accumulate and flush as
// row-backed batches of up to batchRows. Borrowed rows stay valid for
// the whole read (storage is immutable during a query) and the batch
// copies their Values out at flush.
func (cs *CompressedStore) rowMorselBatches(m relstore.MorselFunc, ncols int, storeNeeded []bool,
	segLo, segHi int64, idEq *int64, fn func(*relstore.ColBatch) bool) (bool, error) {
	var batch relstore.ColBatch
	buf := make([]relstore.Row, 0, batchRows)
	stopped := false
	flush := func() bool {
		if len(buf) == 0 {
			return true
		}
		batch.SetFromRows(buf, ncols, storeNeeded)
		cs.db.CountColBatch(int64(len(buf)))
		ok := fn(&batch)
		buf = buf[:0]
		return ok
	}
	_, err := m(true, func(row relstore.Row) bool {
		if row[0].I < segLo || row[0].I > segHi {
			return true
		}
		if row[0].I < segHi && row[4].Date().IsForever() {
			return true
		}
		if idEq != nil && row[1].I != *idEq {
			return true
		}
		buf = append(buf, row)
		if len(buf) >= batchRows {
			if !flush() {
				stopped = true
				return false
			}
		}
		return true
	})
	if err != nil {
		return stopped, err
	}
	if !stopped && !flush() {
		stopped = true
	}
	return stopped, nil
}

// rangeBatches streams one compressed segment range block by block:
// columnar blocks decode the needed columns straight into a reused
// batch (one batch per block); legacy row-blob blocks and block-cache
// hits go through the decoded-row form and a row-backed batch.
func (cs *CompressedStore) rangeBatches(rg srange, idEq *int64, storeNeeded []bool, ncols int,
	sel func(*relstore.ColBatch, []int32) []int32, fn func(*relstore.ColBatch) bool) (bool, error) {
	blobBounds := []relstore.ZoneBound{
		{Col: 0, Op: ">=", Bound: rg.startBlock},
		{Col: 0, Op: "<=", Bound: rg.endBlock},
	}
	if idEq != nil {
		target := sid(rg.segno, *idEq)
		blobBounds = append(blobBounds,
			relstore.ZoneBound{Col: 1, Op: "<=", Bound: target},
			relstore.ZoneBound{Col: 2, Op: ">=", Bound: target})
	}
	var batch relstore.ColBatch
	var selBuf []int32
	stopped := false
	var blockErr error
	err := cs.blob.ScanBorrow(blobBounds, func(_ relstore.RID, row relstore.Row) bool {
		blockNo := row[0].I
		if blockNo < rg.startBlock || blockNo > rg.endBlock {
			return true
		}
		if idEq != nil {
			target := sid(rg.segno, *idEq)
			if row[1].I > target || row[2].I < target {
				return true
			}
		}
		blob := row[3].B
		if rows, ok := cs.db.BlockCacheGet(cs.blob, blockNo); ok {
			batch.SetFromRows(rows, ncols, storeNeeded)
		} else if IsColumnarBlock(blob) && !cs.db.BlockCacheEnabled() {
			// Cache off (the cold default): decode only the needed
			// columns straight into the batch — the vectorized fast path.
			if derr := DecodeColumnarBatch(blob, storeNeeded, &batch); derr != nil {
				blockErr = derr
				return false
			}
			atomic.AddInt64(cs.decompCounter(), 1)
		} else {
			// Cache on, or a legacy row blob: decode through blockRows so
			// the decoded rows land in the cache and warm queries hit.
			rows, derr := cs.blockRows(blockNo, blob)
			if derr != nil {
				blockErr = derr
				return false
			}
			batch.SetFromRows(rows, ncols, storeNeeded)
		}
		selBuf = sel(&batch, selBuf)
		if len(selBuf) == 0 {
			return true
		}
		batch.Sel = selBuf
		cs.db.CountColBatch(int64(len(selBuf)))
		if !fn(&batch) {
			stopped = true
			return false
		}
		return true
	})
	if err == nil {
		err = blockErr
	}
	return stopped, err
}

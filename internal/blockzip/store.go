package blockzip

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"archis/internal/htable"
	"archis/internal/relstore"
	"archis/internal/segment"
	"archis/internal/sqlengine"
	"archis/internal/temporal"
)

// CompressedStore wraps a usefulness-clustered attribute store and
// moves its frozen segments into BlockZIP blocks stored as BLOBs
// (paper Section 8.2): blocks live in `<attr>_blob(blockno, startsid,
// endsid, blockblob)` and `<attr>_segrange(segno, startblock,
// endblock, segstart, segend)` maps segments to block ranges. The live
// segment stays uncompressed in the base table and keeps absorbing
// updates.
//
// CompressedStore implements both htable.AttrStore (updates delegate
// to the live segment) and sqlengine.VirtualTable (scans union
// decompressed blocks with live rows), so translated SQL/XML queries
// run unchanged over compressed storage.
type CompressedStore struct {
	Seg      *segment.Store
	db       *relstore.Database
	blob     *relstore.Table
	segrange *relstore.Table

	compressed map[int64]bool
	nextBlock  int64
	blockSize  int
	whole      bool // ablation: one stream per segment instead of blocks
	columnar   bool // write new blocks in the columnar (v2) encoding

	// mu guards colSegs and compRows: the compression writer mutates
	// them while concurrent readers consult them (EstimateScan on the
	// live store, BindSnapshot taking its copies). compressed and
	// nextBlock are writer-private and need no lock.
	mu sync.RWMutex

	// colSegs marks segments whose blocks are columnar-encoded, so
	// EstimateScan can report columnar stats per range without reading
	// any blob. Populated on compression and, for reopened stores, by
	// probing each range's first block (see OpenCompressedStore).
	colSegs map[int64]bool

	// compRows counts rows moved into blocks, giving the planner's
	// EstimateScan an observed rows-per-block average.
	compRows int64

	// parent is set on snapshot-bound read views (BindSnapshot): the
	// live store whose Decompressions counter absorbs this view's
	// decompression work.
	parent *CompressedStore

	// Decompressions counts block decompressions (the CPU side of the
	// paper's I/O-vs-CPU trade). Scans update it atomically; use
	// DecompressionCount to read it while scans may be in flight.
	Decompressions int64
}

// DecompressionCount reads the decompression counter; safe to call
// concurrently with scans.
func (cs *CompressedStore) DecompressionCount() int64 {
	return atomic.LoadInt64(cs.decompCounter())
}

// decompCounter resolves the decompression counter scans should bump:
// snapshot-bound views account against their live parent.
func (cs *CompressedStore) decompCounter() *int64 {
	if cs.parent != nil {
		return &cs.parent.Decompressions
	}
	return &cs.Decompressions
}

// BindSnapshot implements sqlengine.SnapshotBinder: the returned view
// reads the snapshot's frozen blob/segrange/base tables through a
// snapshot-bound segment store, with private copies of the fields the
// compression writer mutates. The decoded-block cache keys by table
// identity and block number — both stable across versions — so views
// share it with the live store.
func (cs *CompressedStore) BindSnapshot(sn *relstore.Snapshot) sqlengine.VirtualTable {
	seg, okS := cs.Seg.BindSnapshot(sn).(*segment.Store)
	blob, okB := sn.Table(cs.blob.Name())
	segrange, okR := sn.Table(cs.segrange.Name())
	if !okS || !okB || !okR {
		// Tables created after the pinned version; serve the live view.
		return cs
	}
	cs.mu.RLock()
	colSegs := make(map[int64]bool, len(cs.colSegs))
	for k, v := range cs.colSegs {
		colSegs[k] = v
	}
	compRows := cs.compRows
	cs.mu.RUnlock()
	return &CompressedStore{
		Seg:       seg,
		db:        cs.db,
		blob:      blob,
		segrange:  segrange,
		colSegs:   colSegs,
		compRows:  compRows,
		blockSize: cs.blockSize,
		whole:     cs.whole,
		columnar:  cs.columnar,
		parent:    cs,
	}
}

// BlobTableName and SegRangeTableName name the side tables.
func BlobTableName(attrTable string) string     { return attrTable + "_blob" }
func SegRangeTableName(attrTable string) string { return attrTable + "_segrange" }

// Options tune a compressed store.
type Options struct {
	BlockSize     int  // DefaultBlockSize if zero
	WholeSegments bool // compress each segment as one stream (ablation)
	// Columnar writes newly frozen segments in the columnar block
	// encoding (format v2). Off restores the legacy row-blob encoding
	// bit for bit. Reads always accept both formats, per block.
	Columnar bool
}

// NewCompressedStore creates the blob and segrange tables for seg.
func NewCompressedStore(db *relstore.Database, seg *segment.Store, opts Options) (*CompressedStore, error) {
	if opts.BlockSize == 0 {
		opts.BlockSize = DefaultBlockSize
	}
	name := seg.TableName()
	blob, err := db.CreateTable(relstore.NewSchema(BlobTableName(name),
		relstore.Col("blockno", relstore.TypeInt),
		relstore.Col("startsid", relstore.TypeInt),
		relstore.Col("endsid", relstore.TypeInt),
		relstore.Col("blockblob", relstore.TypeBytes)))
	if err != nil {
		return nil, err
	}
	segrange, err := db.CreateTable(relstore.NewSchema(SegRangeTableName(name),
		relstore.Col("segno", relstore.TypeInt),
		relstore.Col("startblock", relstore.TypeInt),
		relstore.Col("endblock", relstore.TypeInt),
		relstore.Col("segstart", relstore.TypeDate),
		relstore.Col("segend", relstore.TypeDate)))
	if err != nil {
		return nil, err
	}
	return &CompressedStore{
		Seg:        seg,
		db:         db,
		blob:       blob,
		segrange:   segrange,
		compressed: map[int64]bool{},
		colSegs:    map[int64]bool{},
		nextBlock:  1,
		blockSize:  opts.BlockSize,
		whole:      opts.WholeSegments,
		columnar:   opts.Columnar && !opts.WholeSegments,
	}, nil
}

// sid gives the (segno, id) clustering key used for block ranges.
func sid(segno, id int64) int64 { return segno<<32 | (id & 0xffffffff) }

// PendingFrozen counts frozen segments not yet compressed — the probe
// core.CompressFrozen uses to early-exit without entering the write
// path. Like CompressFrozen itself it must run from the writer (the
// compressed set is writer-private).
func (cs *CompressedStore) PendingFrozen() (int, error) {
	segs, err := cs.Seg.Segments()
	if err != nil {
		return 0, err
	}
	n := 0
	for _, sg := range segs {
		if !cs.compressed[sg.SegNo] {
			n++
		}
	}
	return n, nil
}

// CompressFrozen compresses every frozen segment that has not been
// compressed yet, removing its rows from the base table.
func (cs *CompressedStore) CompressFrozen() error {
	segs, err := cs.Seg.Segments()
	if err != nil {
		return err
	}
	for _, sg := range segs {
		if cs.compressed[sg.SegNo] {
			continue
		}
		if err := cs.compressSegment(sg); err != nil {
			return err
		}
	}
	return nil
}

func (cs *CompressedStore) compressSegment(sg segment.SegmentInterval) error {
	base := cs.Seg.Table()
	type rec struct {
		sid int64
		enc []byte
		rid relstore.RID
	}
	var recs []rec
	err := base.ScanBorrow(
		[]relstore.ZoneBound{{Col: 0, Op: "=", Bound: sg.SegNo}},
		func(rid relstore.RID, row relstore.Row) bool {
			if row[0].I != sg.SegNo {
				return true
			}
			recs = append(recs, rec{
				sid: sid(sg.SegNo, row[1].I),
				enc: relstore.EncodeRow(nil, row, true),
				rid: rid,
			})
			return true
		})
	if err != nil {
		return err
	}
	if len(recs) == 0 {
		cs.compressed[sg.SegNo] = true
		return nil
	}
	// Rows were frozen sorted by id; keep sid order stable anyway.
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].sid < recs[j].sid })

	encoded := make([][]byte, len(recs))
	for i, r := range recs {
		encoded[i] = r.enc
	}
	var blocks []Block
	switch {
	case cs.whole:
		b, err := CompressWhole(encoded)
		if err != nil {
			return err
		}
		blocks = []Block{b}
	case cs.columnar:
		// Re-encode per attribute: the sorted rows decompose into
		// delta-friendly columns. The encoded blobs were built from
		// borrowed rows, so decode them back rather than retaining
		// aliases into scan storage.
		rows := make([]relstore.Row, len(recs))
		for i, r := range recs {
			row, _, _, derr := relstore.DecodeRow(r.enc)
			if derr != nil {
				return derr
			}
			rows[i] = row
		}
		if blocks, err = CompressColumnar(rows, cs.blockSize); err != nil {
			return err
		}
		cs.mu.Lock()
		cs.colSegs[sg.SegNo] = true
		cs.mu.Unlock()
	default:
		if blocks, err = Compress(encoded, cs.blockSize); err != nil {
			return err
		}
	}

	startBlock := cs.nextBlock
	idx := 0
	for _, b := range blocks {
		first := recs[idx].sid
		last := recs[idx+b.Records-1].sid
		if _, err := cs.blob.Insert(relstore.Row{
			relstore.Int(cs.nextBlock), relstore.Int(first), relstore.Int(last),
			relstore.Bytes(b.Data)}); err != nil {
			return err
		}
		cs.nextBlock++
		idx += b.Records
	}
	if _, err := cs.segrange.Insert(relstore.Row{
		relstore.Int(sg.SegNo), relstore.Int(startBlock), relstore.Int(cs.nextBlock - 1),
		relstore.DateV(sg.Start), relstore.DateV(sg.End)}); err != nil {
		return err
	}
	// Drop the frozen rows from the base table.
	for _, r := range recs {
		if err := base.Delete(r.rid); err != nil {
			return err
		}
	}
	if err := base.Compact(); err != nil {
		return err
	}
	if err := cs.reattachLiveMap(); err != nil {
		return err
	}
	cs.compressed[sg.SegNo] = true
	cs.mu.Lock()
	cs.compRows += int64(len(recs))
	cs.mu.Unlock()
	return nil
}

// reattachLiveMap rebuilds the segment store's live map after Compact
// shuffled RIDs (delegated via a fresh archive-less scan).
func (cs *CompressedStore) reattachLiveMap() error {
	return cs.Seg.RebuildLiveMap()
}

// ---- htable.AttrStore delegation (updates hit the live segment) ----

func (cs *CompressedStore) TableName() string { return cs.Seg.TableName() }

func (cs *CompressedStore) Append(id int64, value relstore.Value, start temporal.Date, valid temporal.Interval) error {
	return cs.Seg.Append(id, value, start, valid)
}

func (cs *CompressedStore) Close(id int64, end temporal.Date) error {
	return cs.Seg.Close(id, end)
}

func (cs *CompressedStore) Rewrite(id int64, value relstore.Value, valid temporal.Interval) error {
	return cs.Seg.Rewrite(id, value, valid)
}

// ScanHistory unions compressed and uncompressed versions; Scan's
// newest-first dedup already yields each logical version once.
func (cs *CompressedStore) ScanHistory(fn func(id int64, value relstore.Value, start, end temporal.Date, valid temporal.Interval) bool) error {
	return cs.Scan(nil, func(row relstore.Row) bool {
		valid := htable.DefaultValid(row[3].Date())
		if len(row) >= 7 {
			valid = temporal.Interval{Start: row[5].Date(), End: row[6].Date()}
		}
		return fn(row[1].I, row[2], row[3].Date(), row[4].Date(), valid)
	})
}

// ---- sqlengine.VirtualTable ----

// Schema returns the segmented attribute schema.
func (cs *CompressedStore) Schema() relstore.Schema { return cs.Seg.Table().Schema() }

// defaultRowsPerBlock is the assumed block population when the store
// has no observed average (e.g. blocks restored from a snapshot).
const defaultRowsPerBlock = 32

// EstimateScan implements the sqlengine planner's ScanEstimator:
// uncompressed rows come from the clustered store's zone-map estimate
// and compressed rows from the block count of the segment ranges
// intersecting the pushed-down segno bounds, scaled by the observed
// rows-per-block average. No block is decompressed.
func (cs *CompressedStore) EstimateScan(bounds []relstore.ZoneBound) relstore.ScanEstimate {
	est := cs.Seg.EstimateScan(bounds)
	segLo, segHi := int64(1), cs.Seg.LiveSegment()
	for _, zb := range bounds {
		switch {
		case zb.Col == 0 && zb.Op == "=":
			segLo, segHi = zb.Bound, zb.Bound
		case zb.Col == 0 && zb.Op == ">=" && zb.Bound > segLo:
			segLo = zb.Bound
		case zb.Col == 0 && zb.Op == "<=" && zb.Bound < segHi:
			segHi = zb.Bound
		}
	}
	cs.mu.RLock()
	compRows := cs.compRows
	perBlock := int64(defaultRowsPerBlock)
	totalBlocks := int64(cs.blob.LiveRows())
	if totalBlocks > 0 && compRows > 0 {
		perBlock = (compRows + totalBlocks - 1) / totalBlocks
	}
	ranges, err := cs.ranges(segLo, segHi)
	if err != nil {
		cs.mu.RUnlock()
		return est
	}
	var blocks, colBlocks, totalInRanges int64
	for _, rg := range ranges {
		blocks += rg.endBlock - rg.startBlock + 1
		if cs.colSegs[rg.segno] {
			colBlocks += rg.endBlock - rg.startBlock + 1
		}
	}
	cs.mu.RUnlock()
	allRanges, err := cs.ranges(1, cs.Seg.LiveSegment())
	if err == nil {
		for _, rg := range allRanges {
			totalInRanges += rg.endBlock - rg.startBlock + 1
		}
	}
	est.Rows += int(blocks * perBlock)
	est.Pages += int(blocks)
	est.ColumnarBlocks += int(colBlocks)
	est.TotalRows += int(totalInRanges * perBlock)
	est.TotalPages += int(totalInRanges)
	return est
}

// Scan implements sqlengine.VirtualTable with the same logical-version
// semantics as segment.Store.Scan: uncompressed rows (the live segment
// and any not-yet-compressed frozen ones) are visited first, then
// compressed segments newest-first, suppressing redundant copies of a
// version so the newest copy's tend wins. Bounds on segno (col 0)
// restrict the segment range; an id equality bound (col 1) prunes
// blocks through the [startsid, endsid] ranges.
func (cs *CompressedStore) Scan(bounds []relstore.ZoneBound, fn func(relstore.Row) bool) error {
	segLo, segHi := int64(1), cs.Seg.LiveSegment()
	var idEq *int64
	for _, zb := range bounds {
		switch {
		case zb.Col == 0 && zb.Op == "=":
			segLo, segHi = zb.Bound, zb.Bound
		case zb.Col == 0 && zb.Op == ">=" && zb.Bound > segLo:
			segLo = zb.Bound
		case zb.Col == 0 && zb.Op == "<=" && zb.Bound < segHi:
			segHi = zb.Bound
		case zb.Col == 1 && zb.Op == "=":
			v := zb.Bound
			idEq = &v
		}
	}
	stopped := false
	// Same exact dedup rule as segment.Store.Scan: a forever-tend row
	// below the top of the scanned range is a stale carried copy.
	emit := func(row relstore.Row) bool {
		if row[0].I < segLo || row[0].I > segHi {
			return true
		}
		if row[0].I < segHi && row[4].Date().IsForever() {
			return true
		}
		if idEq != nil && row[1].I != *idEq {
			return true
		}
		if !fn(row) {
			stopped = true
			return false
		}
		return true
	}

	// Uncompressed rows first: the live segment holds the newest,
	// authoritative copies.
	err := cs.Seg.Scan(bounds, emit)
	if err != nil || stopped {
		return err
	}

	// Compressed segment ranges, newest first.
	type srange struct {
		segno, startBlock, endBlock int64
	}
	ranges, err := cs.ranges(segLo, segHi)
	if err != nil {
		return err
	}

	for _, rg := range ranges {
		// VirtualTable.Scan's contract hands out borrowed rows.
		rgStopped, err := cs.scanRange(rg, idEq, true, emit)
		if err != nil {
			return err
		}
		if rgStopped || stopped {
			return nil
		}
	}
	return nil
}

// ranges lists the compressed segment ranges intersecting
// [segLo, segHi], newest segment first.
func (cs *CompressedStore) ranges(segLo, segHi int64) ([]srange, error) {
	var ranges []srange
	err := cs.segrange.ScanBorrow(nil, func(_ relstore.RID, row relstore.Row) bool {
		if row[0].I < segLo || row[0].I > segHi {
			return true
		}
		ranges = append(ranges, srange{row[0].I, row[1].I, row[2].I})
		return true
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(ranges, func(i, j int) bool { return ranges[i].segno > ranges[j].segno })
	return ranges, nil
}

// srange is one compressed segment's block range.
type srange struct {
	segno, startBlock, endBlock int64
}

// valueBytes approximates the in-memory footprint of one relstore.Value
// header for block-cache budget accounting (the struct itself; string
// and byte payloads are added separately).
const valueBytes = 64

// blockRows returns the decoded rows of one block, consulting the
// database's decoded-block cache first (warm queries skip both inflate
// and row decode). Returned rows are shared and immutable: callers may
// hand them out borrowed but must never mutate them. Blocks are
// append-only — a block number is never rewritten — so entries need no
// invalidation beyond DropCaches.
func (cs *CompressedStore) blockRows(blockNo int64, blob []byte) ([]relstore.Row, error) {
	if rows, ok := cs.db.BlockCacheGet(cs.blob, blockNo); ok {
		return rows, nil
	}
	if IsColumnarBlock(blob) {
		rows, payload, err := DecodeColumnarRows(blob)
		if err != nil {
			return nil, err
		}
		atomic.AddInt64(cs.decompCounter(), 1)
		arenaCells := 0
		if len(rows) > 0 {
			arenaCells = len(rows) * len(rows[0])
		}
		cs.db.BlockCachePut(cs.blob, blockNo, rows, payload+valueBytes*arenaCells)
		return rows, nil
	}
	recs, err := Decompress(blob)
	if err != nil {
		return nil, err
	}
	atomic.AddInt64(cs.decompCounter(), 1)
	// One Value arena per block: rows are immutable subslices of it, so
	// decode pays one backing allocation per block rather than one per
	// row (mirrors page.decodeRows). The decoded Values own their
	// string/byte payloads (the codec copies), so the arena does not
	// pin the transient decompression buffer.
	arena := make([]relstore.Value, 0, 4*len(recs))
	bounds := make([]int32, len(recs)+1)
	payload := 0
	for i, enc := range recs {
		arena, _, _, err = relstore.DecodeRowInto(arena, enc)
		if err != nil {
			return nil, err
		}
		bounds[i+1] = int32(len(arena))
		payload += len(enc)
	}
	rows := make([]relstore.Row, len(recs))
	for i := range rows {
		rows[i] = relstore.Row(arena[bounds[i]:bounds[i+1]:bounds[i+1]])
	}
	cs.db.BlockCachePut(cs.blob, blockNo, rows, payload+valueBytes*len(arena))
	return rows, nil
}

// scanRange feeds one segment range's block rows to emit (decompressing
// on block-cache misses), reporting whether emit stopped the scan. With
// borrow=true emitted rows alias shared cache storage; with
// borrow=false each row is a defensive copy.
func (cs *CompressedStore) scanRange(rg srange, idEq *int64, borrow bool, emit func(relstore.Row) bool) (bool, error) {
	blobBounds := []relstore.ZoneBound{
		{Col: 0, Op: ">=", Bound: rg.startBlock},
		{Col: 0, Op: "<=", Bound: rg.endBlock},
	}
	if idEq != nil {
		target := sid(rg.segno, *idEq)
		blobBounds = append(blobBounds,
			relstore.ZoneBound{Col: 1, Op: "<=", Bound: target},
			relstore.ZoneBound{Col: 2, Op: ">=", Bound: target})
	}
	stopped := false
	var blockErr error
	err := cs.blob.ScanBorrow(blobBounds, func(_ relstore.RID, row relstore.Row) bool {
		blockNo := row[0].I
		if blockNo < rg.startBlock || blockNo > rg.endBlock {
			return true
		}
		if idEq != nil {
			target := sid(rg.segno, *idEq)
			if row[1].I > target || row[2].I < target {
				return true
			}
		}
		rows, derr := cs.blockRows(blockNo, row[3].B)
		if derr != nil {
			blockErr = derr
			return false
		}
		for _, r := range rows {
			if !borrow {
				r = r.Clone()
			}
			if !emit(r) {
				stopped = true
				return false
			}
		}
		return true
	})
	if err == nil {
		err = blockErr
	}
	return stopped, err
}

// ScanMorsels implements relstore.MorselSource: the uncompressed
// side's morsels (live segment plus any not-yet-compressed frozen
// rows) come first, wrapped with this store's range/stale/id filter,
// followed by one morsel per compressed segment range (newest first)
// that decompresses and decodes its blocks. Concatenated in order,
// the morsels emit exactly Scan's row sequence, so segment
// decompression parallelizes across workers.
func (cs *CompressedStore) ScanMorsels(bounds []relstore.ZoneBound) ([]relstore.MorselFunc, error) {
	segLo, segHi := int64(1), cs.Seg.LiveSegment()
	var idEq *int64
	for _, zb := range bounds {
		switch {
		case zb.Col == 0 && zb.Op == "=":
			segLo, segHi = zb.Bound, zb.Bound
		case zb.Col == 0 && zb.Op == ">=" && zb.Bound > segLo:
			segLo = zb.Bound
		case zb.Col == 0 && zb.Op == "<=" && zb.Bound < segHi:
			segHi = zb.Bound
		case zb.Col == 1 && zb.Op == "=":
			v := zb.Bound
			idEq = &v
		}
	}
	// Per-morsel stateless version of Scan's dedup/filter rule.
	filter := func(row relstore.Row, fn func(relstore.Row) bool) bool {
		if row[0].I < segLo || row[0].I > segHi {
			return true
		}
		if row[0].I < segHi && row[4].Date().IsForever() {
			return true
		}
		if idEq != nil && row[1].I != *idEq {
			return true
		}
		return fn(row)
	}

	segMorsels, err := cs.Seg.ScanMorsels(bounds)
	if err != nil {
		return nil, err
	}
	out := make([]relstore.MorselFunc, 0, len(segMorsels)+8)
	for _, m := range segMorsels {
		m := m
		out = append(out, func(borrow bool, fn func(relstore.Row) bool) (bool, error) {
			return m(borrow, func(row relstore.Row) bool { return filter(row, fn) })
		})
	}

	ranges, err := cs.ranges(segLo, segHi)
	if err != nil {
		return nil, err
	}
	for _, rg := range ranges {
		rg := rg
		out = append(out, func(borrow bool, fn func(relstore.Row) bool) (bool, error) {
			return cs.scanRange(rg, idEq, borrow, func(row relstore.Row) bool { return filter(row, fn) })
		})
	}
	return out, nil
}

// StorageBytes reports the physical footprint of the compressed
// representation: blob pages + segrange + remaining base rows.
func (cs *CompressedStore) StorageBytes() int {
	return cs.blob.ByteSize() + cs.segrange.ByteSize() + cs.Seg.Table().ByteSize()
}

// BlockCount returns the number of stored blocks.
func (cs *CompressedStore) BlockCount() (int, error) {
	n := cs.blob.LiveRows()
	if n < 0 {
		return 0, fmt.Errorf("blockzip: negative block count")
	}
	return n, nil
}

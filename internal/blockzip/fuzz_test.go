package blockzip

import (
	"bytes"
	"testing"
)

// FuzzCompressRoundTrip ensures arbitrary record streams survive
// compression: framing, adaptive block fitting and padding must never
// lose or corrupt a record.
func FuzzCompressRoundTrip(f *testing.F) {
	f.Add([]byte("hello world"), 10, 512)
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7}, 3, 4000)
	f.Add(bytes.Repeat([]byte("abc"), 500), 7, 1024)
	f.Fuzz(func(t *testing.T, data []byte, nRecords, blockSize int) {
		if nRecords <= 0 || nRecords > 200 || len(data) == 0 {
			return
		}
		if blockSize < 128 || blockSize > 1<<16 {
			return
		}
		// Slice data into nRecords overlapping records.
		records := make([][]byte, nRecords)
		for i := range records {
			lo := (i * 13) % len(data)
			hi := lo + 1 + (i*31)%64
			if hi > len(data) {
				hi = len(data)
			}
			records[i] = data[lo:hi]
		}
		blocks, err := Compress(records, blockSize)
		if err != nil {
			t.Fatalf("compress: %v", err)
		}
		var got [][]byte
		for _, b := range blocks {
			recs, err := Decompress(b.Data)
			if err != nil {
				t.Fatalf("decompress: %v", err)
			}
			got = append(got, recs...)
		}
		if len(got) != len(records) {
			t.Fatalf("%d records in, %d out", len(records), len(got))
		}
		for i := range records {
			if !bytes.Equal(records[i], got[i]) {
				t.Fatalf("record %d corrupted", i)
			}
		}
	})
}

// FuzzDecompress ensures corrupted blocks are rejected, not paniced on.
func FuzzDecompress(f *testing.F) {
	good, _ := CompressWhole([][]byte{[]byte("abc"), []byte("defg")})
	f.Add(good.Data)
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = Decompress(data) // must not panic
	})
}

package blockzip

import (
	"bytes"
	"testing"

	"archis/internal/relstore"
)

// FuzzCompressRoundTrip ensures arbitrary record streams survive
// compression: framing, adaptive block fitting and padding must never
// lose or corrupt a record.
func FuzzCompressRoundTrip(f *testing.F) {
	f.Add([]byte("hello world"), 10, 512)
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7}, 3, 4000)
	f.Add(bytes.Repeat([]byte("abc"), 500), 7, 1024)
	f.Fuzz(func(t *testing.T, data []byte, nRecords, blockSize int) {
		if nRecords <= 0 || nRecords > 200 || len(data) == 0 {
			return
		}
		if blockSize < 128 || blockSize > 1<<16 {
			return
		}
		// Slice data into nRecords overlapping records.
		records := make([][]byte, nRecords)
		for i := range records {
			lo := (i * 13) % len(data)
			hi := lo + 1 + (i*31)%64
			if hi > len(data) {
				hi = len(data)
			}
			records[i] = data[lo:hi]
		}
		blocks, err := Compress(records, blockSize)
		if err != nil {
			t.Fatalf("compress: %v", err)
		}
		var got [][]byte
		for _, b := range blocks {
			recs, err := Decompress(b.Data)
			if err != nil {
				t.Fatalf("decompress: %v", err)
			}
			got = append(got, recs...)
		}
		if len(got) != len(records) {
			t.Fatalf("%d records in, %d out", len(records), len(got))
		}
		for i := range records {
			if !bytes.Equal(records[i], got[i]) {
				t.Fatalf("record %d corrupted", i)
			}
		}
	})
}

// FuzzBlockCacheRoundTrip pushes arbitrary rows through Compress and
// then through blockRows twice — once cold (cache miss: inflate +
// decode) and once warm (cache hit: shared decoded rows) — and
// requires all three views to agree record-for-record. Re-encoding
// each returned row must reproduce the original record bytes, so a
// cache that returned stale, truncated or aliased rows would fail.
func FuzzBlockCacheRoundTrip(f *testing.F) {
	f.Add([]byte("hello world block cache"), 5, 1<<20)
	f.Add(bytes.Repeat([]byte{0, 255, 1, 254}, 300), 40, 4096)
	f.Add([]byte("x"), 1, 0) // cache disabled: both calls take the miss path
	f.Fuzz(func(t *testing.T, data []byte, nRows, cacheBytes int) {
		if nRows <= 0 || nRows > 100 || len(data) == 0 {
			return
		}
		if cacheBytes < 0 || cacheBytes > 1<<24 {
			return
		}
		records := make([][]byte, nRows)
		for i := range records {
			lo := (i * 17) % len(data)
			hi := lo + 1 + (i*29)%48
			if hi > len(data) {
				hi = len(data)
			}
			row := relstore.Row{
				relstore.Int(int64(i)),
				relstore.String_(string(data[lo:hi])),
				relstore.Bytes(data[lo:hi]),
			}
			records[i] = relstore.EncodeRow(nil, row, true)
		}
		blocks, err := Compress(records, 512)
		if err != nil {
			t.Fatalf("compress: %v", err)
		}

		db := relstore.NewDatabase()
		db.SetBlockCacheBytes(cacheBytes)
		blob, err := db.CreateTable(relstore.Schema{Name: "fuzz_blob", Columns: []relstore.Column{
			{Name: "blockno", Type: relstore.TypeInt},
		}})
		if err != nil {
			t.Fatal(err)
		}
		cs := &CompressedStore{db: db, blob: blob}

		check := func(pass string, rows []relstore.Row, want [][]byte, base int) {
			for i, r := range rows {
				if got := relstore.EncodeRow(nil, r, true); !bytes.Equal(got, want[i]) {
					t.Fatalf("%s: block record %d (global %d) corrupted", pass, i, base+i)
				}
			}
		}
		next := 0
		for bi, blk := range blocks {
			want := records[next : next+blk.Records]
			cold, err := cs.blockRows(int64(bi+1), blk.Data)
			if err != nil {
				t.Fatalf("cold blockRows: %v", err)
			}
			if len(cold) != blk.Records {
				t.Fatalf("cold: %d rows, block holds %d", len(cold), blk.Records)
			}
			check("cold(miss)", cold, want, next)
			warm, err := cs.blockRows(int64(bi+1), blk.Data)
			if err != nil {
				t.Fatalf("warm blockRows: %v", err)
			}
			if len(warm) != len(cold) {
				t.Fatalf("warm: %d rows, cold had %d", len(warm), len(cold))
			}
			check("warm(hit-or-miss)", warm, want, next)
			next += blk.Records
		}
	})
}

// FuzzDecompress ensures corrupted blocks are rejected, not paniced on.
func FuzzDecompress(f *testing.F) {
	good, _ := CompressWhole([][]byte{[]byte("abc"), []byte("defg")})
	f.Add(good.Data)
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = Decompress(data) // must not panic
	})
}

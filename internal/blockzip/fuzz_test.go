package blockzip

import (
	"bytes"
	"testing"

	"archis/internal/relstore"
	"archis/internal/temporal"
)

// FuzzCompressRoundTrip ensures arbitrary record streams survive
// compression: framing, adaptive block fitting and padding must never
// lose or corrupt a record.
func FuzzCompressRoundTrip(f *testing.F) {
	f.Add([]byte("hello world"), 10, 512)
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7}, 3, 4000)
	f.Add(bytes.Repeat([]byte("abc"), 500), 7, 1024)
	f.Fuzz(func(t *testing.T, data []byte, nRecords, blockSize int) {
		if nRecords <= 0 || nRecords > 200 || len(data) == 0 {
			return
		}
		if blockSize < 128 || blockSize > 1<<16 {
			return
		}
		// Slice data into nRecords overlapping records.
		records := make([][]byte, nRecords)
		for i := range records {
			lo := (i * 13) % len(data)
			hi := lo + 1 + (i*31)%64
			if hi > len(data) {
				hi = len(data)
			}
			records[i] = data[lo:hi]
		}
		blocks, err := Compress(records, blockSize)
		if err != nil {
			t.Fatalf("compress: %v", err)
		}
		var got [][]byte
		for _, b := range blocks {
			recs, err := Decompress(b.Data)
			if err != nil {
				t.Fatalf("decompress: %v", err)
			}
			got = append(got, recs...)
		}
		if len(got) != len(records) {
			t.Fatalf("%d records in, %d out", len(records), len(got))
		}
		for i := range records {
			if !bytes.Equal(records[i], got[i]) {
				t.Fatalf("record %d corrupted", i)
			}
		}
	})
}

// FuzzBlockCacheRoundTrip pushes arbitrary rows through Compress and
// then through blockRows twice — once cold (cache miss: inflate +
// decode) and once warm (cache hit: shared decoded rows) — and
// requires all three views to agree record-for-record. Re-encoding
// each returned row must reproduce the original record bytes, so a
// cache that returned stale, truncated or aliased rows would fail.
func FuzzBlockCacheRoundTrip(f *testing.F) {
	f.Add([]byte("hello world block cache"), 5, 1<<20)
	f.Add(bytes.Repeat([]byte{0, 255, 1, 254}, 300), 40, 4096)
	f.Add([]byte("x"), 1, 0) // cache disabled: both calls take the miss path
	f.Fuzz(func(t *testing.T, data []byte, nRows, cacheBytes int) {
		if nRows <= 0 || nRows > 100 || len(data) == 0 {
			return
		}
		if cacheBytes < 0 || cacheBytes > 1<<24 {
			return
		}
		records := make([][]byte, nRows)
		for i := range records {
			lo := (i * 17) % len(data)
			hi := lo + 1 + (i*29)%48
			if hi > len(data) {
				hi = len(data)
			}
			row := relstore.Row{
				relstore.Int(int64(i)),
				relstore.String_(string(data[lo:hi])),
				relstore.Bytes(data[lo:hi]),
			}
			records[i] = relstore.EncodeRow(nil, row, true)
		}
		blocks, err := Compress(records, 512)
		if err != nil {
			t.Fatalf("compress: %v", err)
		}

		db := relstore.NewDatabase()
		db.SetBlockCacheBytes(cacheBytes)
		blob, err := db.CreateTable(relstore.Schema{Name: "fuzz_blob", Columns: []relstore.Column{
			{Name: "blockno", Type: relstore.TypeInt},
		}})
		if err != nil {
			t.Fatal(err)
		}
		cs := &CompressedStore{db: db, blob: blob}

		check := func(pass string, rows []relstore.Row, want [][]byte, base int) {
			for i, r := range rows {
				if got := relstore.EncodeRow(nil, r, true); !bytes.Equal(got, want[i]) {
					t.Fatalf("%s: block record %d (global %d) corrupted", pass, i, base+i)
				}
			}
		}
		next := 0
		for bi, blk := range blocks {
			want := records[next : next+blk.Records]
			cold, err := cs.blockRows(int64(bi+1), blk.Data)
			if err != nil {
				t.Fatalf("cold blockRows: %v", err)
			}
			if len(cold) != blk.Records {
				t.Fatalf("cold: %d rows, block holds %d", len(cold), blk.Records)
			}
			check("cold(miss)", cold, want, next)
			warm, err := cs.blockRows(int64(bi+1), blk.Data)
			if err != nil {
				t.Fatalf("warm blockRows: %v", err)
			}
			if len(warm) != len(cold) {
				t.Fatalf("warm: %d rows, cold had %d", len(warm), len(cold))
			}
			check("warm(hit-or-miss)", warm, want, next)
			next += blk.Records
		}
	})
}

// FuzzDecompress ensures corrupted blocks are rejected, not paniced on.
func FuzzDecompress(f *testing.F) {
	good, _ := CompressWhole([][]byte{[]byte("abc"), []byte("defg")})
	f.Add(good.Data)
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = Decompress(data) // must not panic
	})
}

// FuzzColumnarRoundTrip drives arbitrary row shapes through the
// columnar codec: every kind the encoder accepts (ints, floats, bools,
// dates including Forever, dictionary strings — possibly all-empty —
// NULLs and opaque bytes), uniform and mixed columns, many block
// sizes. Encoded blocks must decode to identical rows, and a corrupted
// block must produce an error, never a panic.
func FuzzColumnarRoundTrip(f *testing.F) {
	f.Add([]byte("seed"), 10, 2, 512, false)
	f.Add([]byte{0xff, 0x00, 0x7f}, 50, 5, 256, true)
	f.Add([]byte("abcabcabc"), 3, 8, 4096, false)
	f.Fuzz(func(t *testing.T, data []byte, nrows, ncols, blockSize int, corrupt bool) {
		if nrows <= 0 || nrows > 300 || ncols <= 0 || ncols > 10 {
			return
		}
		if blockSize < 128 || blockSize > 1<<16 {
			return
		}
		if len(data) == 0 {
			data = []byte{0}
		}
		at := func(i int) byte { return data[i%len(data)] }
		rows := make([]relstore.Row, nrows)
		for i := range rows {
			row := make(relstore.Row, ncols)
			for c := range row {
				b := at(i*7 + c*3)
				switch b % 8 {
				case 0:
					row[c] = relstore.Int(int64(at(i+c)) * int64(b))
				case 1:
					row[c] = relstore.Float(float64(int8(b)) / 3)
				case 2:
					row[c] = relstore.Bool(b&1 == 0)
				case 3:
					// Dates, sometimes the Forever sentinel.
					if b&2 == 0 {
						row[c] = relstore.DateV(temporal.Forever)
					} else {
						row[c] = relstore.DateV(temporal.Date(int64(b) * 97))
					}
				case 4:
					// Strings; b&2==0 keeps them all empty, exercising a
					// dictionary whose only entry is "".
					if b&2 == 0 {
						row[c] = relstore.String_("")
					} else {
						lo := int(b) % len(data)
						row[c] = relstore.String_(string(data[lo : lo+(len(data)-lo)%7]))
					}
				case 5:
					row[c] = relstore.Null
				case 6:
					lo := int(b) % len(data)
					row[c] = relstore.Bytes(data[lo:])
				default:
					row[c] = relstore.Int(-int64(b) << (b % 40))
				}
			}
			rows[i] = row
		}
		blocks, err := CompressColumnar(rows, blockSize)
		if err != nil {
			t.Fatalf("compress: %v", err)
		}
		var got []relstore.Row
		for _, blk := range blocks {
			if !IsColumnarBlock(blk.Data) {
				t.Fatal("columnar block without columnar magic")
			}
			dec, _, err := DecodeColumnarRows(blk.Data)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			got = append(got, dec...)
		}
		if len(got) != len(rows) {
			t.Fatalf("%d rows in, %d out", len(rows), len(got))
		}
		for i := range rows {
			want := relstore.EncodeRow(nil, rows[i], true)
			have := relstore.EncodeRow(nil, got[i], true)
			if !bytes.Equal(want, have) {
				t.Fatalf("row %d corrupted by columnar round trip", i)
			}
		}
		if corrupt && len(blocks) > 0 {
			// Flip one byte inside the first block; the decoder must
			// reject or misdecode gracefully, never panic.
			bad := bytes.Clone(blocks[0].Data)
			pos := int(at(0)) % len(bad)
			bad[pos] ^= 0x55
			var cb relstore.ColBatch
			_ = DecodeColumnarBatch(bad, nil, &cb)
		}
	})
}

package blockzip

import (
	"testing"

	"archis/internal/relstore"
	"archis/internal/temporal"
)

// Cold per-block decode cost, columnar vs legacy row blobs, on the
// attr-table shape (segno, id, value, tstart, tend) the temporal
// queries scan. Each op decodes every block of a ~4096-row history;
// divide allocs/op by benchScanRows for allocs/row. The columnar path
// reuses one ColBatch and decodes only the needed columns; the legacy
// path mirrors blockRows' cold branch (inflate + one arena per block).
const benchScanRows = 4096

func benchScanData(b *testing.B) []relstore.Row {
	b.Helper()
	day := temporal.MustParseDate("1985-01-01")
	rows := make([]relstore.Row, benchScanRows)
	for i := range rows {
		end := relstore.DateV(day.AddDays(i%900 + 30))
		if i%3 == 0 {
			end = relstore.DateV(temporal.Forever)
		}
		rows[i] = relstore.Row{
			relstore.Int(int64(i/1024 + 1)),
			relstore.Int(int64(100000 + i%1024)),
			relstore.Int(int64(30000 + (i*7919)%40000)),
			relstore.DateV(day.AddDays(i % 900)),
			end,
		}
	}
	return rows
}

func BenchmarkColdScanColumnar(b *testing.B) {
	rows := benchScanData(b)
	blocks, err := CompressColumnar(rows, 4096)
	if err != nil {
		b.Fatal(err)
	}
	needed := []bool{true, true, true, true, true}
	var batch relstore.ColBatch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		for _, blk := range blocks {
			if err := DecodeColumnarBatch(blk.Data, needed, &batch); err != nil {
				b.Fatal(err)
			}
			n += batch.N
		}
		if n != benchScanRows {
			b.Fatalf("decoded %d rows, want %d", n, benchScanRows)
		}
	}
}

func BenchmarkColdScanRowBlob(b *testing.B) {
	rows := benchScanData(b)
	recs := make([][]byte, len(rows))
	for i, r := range rows {
		recs[i] = relstore.EncodeRow(nil, r, true)
	}
	blocks, err := Compress(recs, 4096)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		for _, blk := range blocks {
			encs, err := Decompress(blk.Data)
			if err != nil {
				b.Fatal(err)
			}
			arena := make([]relstore.Value, 0, 4*len(encs))
			for _, enc := range encs {
				if arena, _, _, err = relstore.DecodeRowInto(arena, enc); err != nil {
					b.Fatal(err)
				}
			}
			n += len(arena) / 5
		}
		if n != benchScanRows {
			b.Fatalf("decoded %d rows, want %d", n, benchScanRows)
		}
	}
}

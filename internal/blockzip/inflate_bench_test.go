package blockzip

import (
	"bytes"
	"compress/zlib"
	"fmt"
	"io"
	"testing"
)

func benchBlock(b *testing.B) []byte {
	b.Helper()
	records := make([][]byte, 200)
	for i := range records {
		records[i] = []byte(fmt.Sprintf("record-%04d payload payload payload", i))
	}
	blocks, err := Compress(records, DefaultBlockSize)
	if err != nil {
		b.Fatal(err)
	}
	return blocks[0].Data
}

// BenchmarkInflatePooled is the shipping path: one pooled inflater
// reused across blocks. Compare allocs/op with
// BenchmarkInflateNewReader — the pool removes the per-block inflate
// state (window, dictionaries, Huffman tables).
func BenchmarkInflatePooled(b *testing.B) {
	data := benchBlock(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := inflate(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInflateNewReader is the pre-pool baseline: a fresh
// zlib.NewReader and io.ReadAll per block.
func BenchmarkInflateNewReader(b *testing.B) {
	data := benchBlock(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		zr, err := zlib.NewReader(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.ReadAll(zr); err != nil {
			b.Fatal(err)
		}
		zr.Close()
	}
}

package blockzip

import (
	"bytes"
	"compress/zlib"
	"fmt"
	"io"
	"testing"
)

func benchBlock(b *testing.B) []byte {
	b.Helper()
	records := make([][]byte, 200)
	for i := range records {
		records[i] = []byte(fmt.Sprintf("record-%04d payload payload payload", i))
	}
	blocks, err := Compress(records, DefaultBlockSize)
	if err != nil {
		b.Fatal(err)
	}
	return blocks[0].Data
}

// BenchmarkInflatePooled is the shipping path: one pooled inflater
// reused across blocks. Compare allocs/op with
// BenchmarkInflateNewReader — the pool removes the per-block inflate
// state (window, dictionaries, Huffman tables).
func BenchmarkInflatePooled(b *testing.B) {
	data := benchBlock(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := inflate(data); err != nil {
			b.Fatal(err)
		}
	}
}

// benchRaw is an uncompressed payload sized like one block's worth of
// records, for the deflate benchmarks.
func benchRaw(b *testing.B) []byte {
	b.Helper()
	var buf bytes.Buffer
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&buf, "record-%04d payload payload payload", i)
	}
	return buf.Bytes()
}

// BenchmarkDeflatePooled is the shipping write path: one pooled
// deflater (writer state Reset between blocks). Compare allocs/op with
// BenchmarkDeflateNewWriter — the pool removes the per-block deflate
// state (sliding window, hash chains, Huffman scratch), which dwarfs
// the copied-out output slice.
func BenchmarkDeflatePooled(b *testing.B) {
	raw := benchRaw(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := deflate(raw); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeflateNewWriter is the pre-pool baseline: a fresh
// zlib.NewWriter per block.
func BenchmarkDeflateNewWriter(b *testing.B) {
	raw := benchRaw(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		zw := zlib.NewWriter(&buf)
		if _, err := zw.Write(raw); err != nil {
			b.Fatal(err)
		}
		if err := zw.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInflateNewReader is the pre-pool baseline: a fresh
// zlib.NewReader and io.ReadAll per block.
func BenchmarkInflateNewReader(b *testing.B) {
	data := benchBlock(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		zr, err := zlib.NewReader(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.ReadAll(zr); err != nil {
			b.Fatal(err)
		}
		zr.Close()
	}
}

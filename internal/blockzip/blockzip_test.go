package blockzip

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

func makeRecords(n int, r *rand.Rand) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		// Realistic shape: repetitive prefix (compressible) plus some
		// per-record variation.
		out[i] = []byte(fmt.Sprintf("employee_salary|%06d|%d|1995-01-01|1996-12-31|pad-%d",
			i, 40000+r.Intn(50000), r.Intn(10)))
	}
	return out
}

func TestCompressDecompressRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	records := makeRecords(5000, r)
	blocks, err := Compress(records, DefaultBlockSize)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) < 2 {
		t.Fatalf("expected multiple blocks, got %d", len(blocks))
	}
	var got [][]byte
	total := 0
	for _, b := range blocks {
		recs, err := Decompress(b.Data)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != b.Records {
			t.Errorf("block claims %d records, has %d", b.Records, len(recs))
		}
		got = append(got, recs...)
		total += b.Records
	}
	if total != len(records) {
		t.Fatalf("records = %d, want %d", total, len(records))
	}
	for i := range records {
		if !bytes.Equal(records[i], got[i]) {
			t.Fatalf("record %d corrupted", i)
		}
	}
}

func TestBlocksAreBlockSized(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	records := makeRecords(5000, r)
	blocks, err := Compress(records, DefaultBlockSize)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range blocks {
		if len(b.Data) != DefaultBlockSize {
			t.Errorf("block %d has size %d, want %d", i, len(b.Data), DefaultBlockSize)
		}
	}
}

func TestCompressionRatio(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	records := makeRecords(20000, r)
	rawBytes := 0
	for _, rec := range records {
		rawBytes += len(rec)
	}
	blocks, err := Compress(records, DefaultBlockSize)
	if err != nil {
		t.Fatal(err)
	}
	compBytes := 0
	for _, b := range blocks {
		compBytes += len(b.Data)
	}
	ratio := float64(compBytes) / float64(rawBytes)
	if ratio > 0.5 {
		t.Errorf("compression ratio %.2f too weak for repetitive data", ratio)
	}
}

func TestSingleOversizedRecord(t *testing.T) {
	big := bytes.Repeat([]byte{0xAB, 0x13, 0x77, 0x42}, 5000) // incompressible-ish
	r := rand.New(rand.NewSource(4))
	noise := make([]byte, 20000)
	r.Read(noise)
	blocks, err := Compress([][]byte{noise}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 1 {
		t.Fatalf("blocks = %d", len(blocks))
	}
	recs, err := Decompress(blocks[0].Data)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(recs[0], noise) {
		t.Error("oversized record corrupted")
	}
	_ = big
}

func TestEmptyAndTiny(t *testing.T) {
	blocks, err := Compress(nil, DefaultBlockSize)
	if err != nil || blocks != nil {
		t.Errorf("empty input: %v %v", blocks, err)
	}
	blocks, err = Compress([][]byte{[]byte("x")}, DefaultBlockSize)
	if err != nil || len(blocks) != 1 {
		t.Fatalf("tiny input: %v %v", blocks, err)
	}
	recs, err := Decompress(blocks[0].Data)
	if err != nil || len(recs) != 1 || string(recs[0]) != "x" {
		t.Errorf("tiny round trip: %v %v", recs, err)
	}
	if _, err := Compress([][]byte{[]byte("x")}, 10); err == nil {
		t.Error("absurd block size accepted")
	}
}

func TestDecompressErrors(t *testing.T) {
	if _, err := Decompress([]byte("not zlib")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestCompressWhole(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	records := makeRecords(1000, r)
	b, err := CompressWhole(records)
	if err != nil {
		t.Fatal(err)
	}
	if b.Records != 1000 {
		t.Errorf("records = %d", b.Records)
	}
	recs, err := Decompress(b.Data)
	if err != nil || len(recs) != 1000 {
		t.Fatalf("whole round trip: %d %v", len(recs), err)
	}
}

// Property: round trip holds for random record sizes and block sizes.
func TestCompressProperty(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for trial := 0; trial < 20; trial++ {
		n := 1 + r.Intn(3000)
		records := make([][]byte, n)
		for i := range records {
			rec := make([]byte, 1+r.Intn(120))
			for j := range rec {
				rec[j] = byte('a' + r.Intn(4)) // compressible alphabet
			}
			records[i] = rec
		}
		blockSize := 512 + r.Intn(8000)
		blocks, err := Compress(records, blockSize)
		if err != nil {
			t.Fatal(err)
		}
		var got [][]byte
		for _, b := range blocks {
			recs, err := Decompress(b.Data)
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, recs...)
		}
		if len(got) != n {
			t.Fatalf("trial %d: %d of %d records", trial, len(got), n)
		}
		for i := range records {
			if !bytes.Equal(records[i], got[i]) {
				t.Fatalf("trial %d: record %d corrupted", trial, i)
			}
		}
	}
}

package blockzip

import (
	"fmt"

	"archis/internal/relstore"
	"archis/internal/segment"
)

// OpenCompressedStore attaches a CompressedStore to the existing blob
// and segrange tables of a reopened persistent system, reconstructing
// the block counter and the set of already-compressed segments.
func OpenCompressedStore(db *relstore.Database, seg *segment.Store, opts Options) (*CompressedStore, error) {
	if opts.BlockSize == 0 {
		opts.BlockSize = DefaultBlockSize
	}
	name := seg.TableName()
	blob, ok := db.Table(BlobTableName(name))
	if !ok {
		return nil, fmt.Errorf("blockzip: open: blob table for %s missing", name)
	}
	segrange, ok := db.Table(SegRangeTableName(name))
	if !ok {
		return nil, fmt.Errorf("blockzip: open: segrange table for %s missing", name)
	}
	cs := &CompressedStore{
		db:         db,
		Seg:        seg,
		blob:       blob,
		segrange:   segrange,
		compressed: map[int64]bool{},
		colSegs:    map[int64]bool{},
		nextBlock:  1,
		blockSize:  opts.BlockSize,
		whole:      opts.WholeSegments,
		columnar:   opts.Columnar && !opts.WholeSegments,
	}
	var firstBlocks []int64
	err := segrange.Scan(nil, func(_ relstore.RID, row relstore.Row) bool {
		cs.compressed[row[0].I] = true
		firstBlocks = append(firstBlocks, row[1].I)
		if row[2].I >= cs.nextBlock {
			cs.nextBlock = row[2].I + 1
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	// Rebuild the columnar-segment map by probing each range's first
	// block: a segment's blocks share one encoding, and the magic byte
	// distinguishes the formats without any decompression. This is what
	// lets old row-blob archives open unchanged under a columnar-writing
	// store (and vice versa).
	for _, bn := range firstBlocks {
		err := cs.blob.ScanBorrow(
			[]relstore.ZoneBound{{Col: 0, Op: "=", Bound: bn}},
			func(_ relstore.RID, row relstore.Row) bool {
				if row[0].I != bn {
					return true
				}
				if IsColumnarBlock(row[3].B) {
					segno := row[1].I >> 32 // startsid encodes (segno, id)
					cs.colSegs[segno] = true
				}
				return false
			})
		if err != nil {
			return nil, err
		}
	}
	return cs, nil
}

package blockzip

import (
	"testing"

	"archis/internal/htable"
	"archis/internal/relstore"
	"archis/internal/segment"
	"archis/internal/temporal"
)

func newSegStore(t *testing.T) (*segment.Store, *relstore.Database, *temporal.Date) {
	t.Helper()
	db := relstore.NewDatabase()
	day := temporal.MustParseDate("1990-01-01")
	clock := &day
	s, err := segment.NewStore(db, relstore.NewSchema("employee_salary",
		relstore.Col("id", relstore.TypeInt),
		relstore.Col("salary", relstore.TypeInt),
		relstore.Col("tstart", relstore.TypeDate),
		relstore.Col("tend", relstore.TypeDate)),
		segment.Config{Umin: 0.4, MinSegmentRows: 100, Clock: func() temporal.Date { return *clock }})
	if err != nil {
		t.Fatal(err)
	}
	return s, db, clock
}

func driveUpdates(t *testing.T, s *segment.Store, clock *temporal.Date, n, rounds int) {
	t.Helper()
	for i := int64(0); i < int64(n); i++ {
		if err := s.Append(i, relstore.Int(1000), *clock, htable.DefaultValid(*clock)); err != nil {
			t.Fatal(err)
		}
	}
	for r := 0; r < rounds; r++ {
		*clock = clock.AddDays(30)
		for i := int64(0); i < int64(n); i++ {
			if err := s.Close(i, clock.AddDays(-1)); err != nil {
				t.Fatal(err)
			}
			if err := s.Append(i, relstore.Int(int64(1000+r)), *clock, htable.DefaultValid(*clock)); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func newCompressed(t *testing.T, opts Options) (*CompressedStore, *relstore.Database, *temporal.Date) {
	t.Helper()
	s, db, clock := newSegStore(t)
	driveUpdates(t, s, clock, 120, 8)
	if s.Archives() < 2 {
		t.Fatalf("need >=2 frozen segments, got %d", s.Archives())
	}
	cs, err := NewCompressedStore(db, s, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.CompressFrozen(); err != nil {
		t.Fatal(err)
	}
	return cs, db, clock
}

func TestCompressFrozenMovesRows(t *testing.T) {
	cs, _, _ := newCompressed(t, Options{})
	// Base table retains only the live segment.
	liveSeg := cs.Seg.LiveSegment()
	err := cs.Seg.Table().Scan(nil, func(_ relstore.RID, row relstore.Row) bool {
		if row[0].I != liveSeg {
			t.Fatalf("frozen row left in base: %v", row)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	n, err := cs.BlockCount()
	if err != nil || n == 0 {
		t.Fatalf("blocks = %d, %v", n, err)
	}
}

func TestScanUnionsBlocksAndLive(t *testing.T) {
	cs, _, _ := newCompressed(t, Options{})
	// Full scan must see every physical row: 120 ids × 9 versions
	// logical + redundant copies carried between segments.
	bySeg := map[int64]int{}
	err := cs.Scan(nil, func(row relstore.Row) bool {
		bySeg[row[0].I]++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(bySeg) < 3 {
		t.Fatalf("segments seen = %v", bySeg)
	}
	// Logical history intact.
	versions := map[int64]int{}
	err = cs.ScanHistory(func(id int64, _ relstore.Value, _, _ temporal.Date, _ temporal.Interval) bool {
		versions[id]++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(versions) != 120 {
		t.Fatalf("ids = %d", len(versions))
	}
	for id, n := range versions {
		if n != 9 {
			t.Fatalf("id %d versions = %d, want 9", id, n)
		}
	}
}

func TestSegmentPrunedScanDecompressesFewerBlocks(t *testing.T) {
	cs, _, _ := newCompressed(t, Options{})
	segs, err := cs.Seg.Segments()
	if err != nil || len(segs) < 2 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	cs.Decompressions = 0
	err = cs.Scan([]relstore.ZoneBound{{Col: 0, Op: "=", Bound: segs[0].SegNo}},
		func(relstore.Row) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	pruned := cs.Decompressions
	cs.Decompressions = 0
	err = cs.Scan(nil, func(relstore.Row) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	full := cs.Decompressions
	if pruned >= full {
		t.Errorf("pruned scan decompressed %d blocks, full %d", pruned, full)
	}
}

func TestIDPruningWithinSegment(t *testing.T) {
	// Small blocks so one frozen segment spans several blocks and the
	// sid range check has something to prune.
	cs, _, _ := newCompressed(t, Options{BlockSize: 512})
	segs, _ := cs.Seg.Segments()
	sg := segs[0].SegNo
	cs.Decompressions = 0
	found := 0
	err := cs.Scan([]relstore.ZoneBound{
		{Col: 0, Op: "=", Bound: sg},
		{Col: 1, Op: "=", Bound: 7},
	}, func(row relstore.Row) bool {
		if row[0].I == sg && row[1].I == 7 {
			found++
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if found == 0 {
		t.Error("id 7 not found in frozen segment")
	}
	idPruned := cs.Decompressions
	cs.Decompressions = 0
	err = cs.Scan([]relstore.ZoneBound{{Col: 0, Op: "=", Bound: sg}},
		func(relstore.Row) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if idPruned >= cs.Decompressions {
		t.Errorf("id-pruned scan decompressed %d, segment scan %d", idPruned, cs.Decompressions)
	}
}

func TestUpdatesStillWorkAfterCompression(t *testing.T) {
	cs, _, clock := newCompressed(t, Options{})
	*clock = clock.AddDays(10)
	if err := cs.Close(5, clock.AddDays(-1)); err != nil {
		t.Fatal(err)
	}
	if err := cs.Append(5, relstore.Int(9999), *clock, htable.DefaultValid(*clock)); err != nil {
		t.Fatal(err)
	}
	// The new version is visible through ScanHistory.
	var last relstore.Value
	err := cs.ScanHistory(func(id int64, v relstore.Value, start, _ temporal.Date, _ temporal.Interval) bool {
		if id == 5 && start == *clock {
			last = v
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if last.I != 9999 {
		t.Errorf("new version not visible: %v", last)
	}
}

func TestCompressionShrinksStorage(t *testing.T) {
	// Build two identical workloads, large enough that page
	// quantization does not mask the difference; compress one.
	s1, _, c1 := newSegStore(t)
	driveUpdates(t, s1, c1, 600, 12)
	uncompressed := s1.Table().ByteSize()

	s2, db2, c2 := newSegStore(t)
	driveUpdates(t, s2, c2, 600, 12)
	cs, err := NewCompressedStore(db2, s2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.CompressFrozen(); err != nil {
		t.Fatal(err)
	}
	compressed := cs.StorageBytes()
	if compressed >= uncompressed {
		t.Errorf("compressed %d >= uncompressed %d", compressed, uncompressed)
	}
	ratio := float64(compressed) / float64(uncompressed)
	if ratio > 0.7 {
		t.Errorf("compression ratio %.2f weaker than expected", ratio)
	}
}

func TestWholeSegmentAblationDecompressesMore(t *testing.T) {
	whole, _, _ := newCompressed(t, Options{WholeSegments: true})
	blocky, _, _ := newCompressed(t, Options{})
	segs, _ := whole.Seg.Segments()
	sg := segs[0].SegNo

	// Point query: id = 3 in one segment.
	bounds := []relstore.ZoneBound{{Col: 0, Op: "=", Bound: sg}, {Col: 1, Op: "=", Bound: 3}}
	whole.Decompressions = 0
	var wholeBytes int
	_ = whole.blob.Scan(nil, func(_ relstore.RID, row relstore.Row) bool {
		wholeBytes += len(row[3].B)
		return true
	})
	if err := whole.Scan(bounds, func(relstore.Row) bool { return true }); err != nil {
		t.Fatal(err)
	}
	blocky.Decompressions = 0
	if err := blocky.Scan(bounds, func(relstore.Row) bool { return true }); err != nil {
		t.Fatal(err)
	}
	// Whole-segment mode decompresses one huge block; block mode a few
	// small ones. Compare decompressed byte volume instead of counts.
	if whole.Decompressions != 1 {
		t.Errorf("whole-segment point query decompressed %d streams", whole.Decompressions)
	}
	if blocky.Decompressions == 0 || blocky.Decompressions > 4 {
		t.Errorf("block-mode point query decompressed %d blocks", blocky.Decompressions)
	}
}

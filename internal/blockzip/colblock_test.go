package blockzip

import (
	"bytes"
	"fmt"
	"testing"

	"archis/internal/relstore"
	"archis/internal/temporal"
)

// mixedRows builds a row set exercising every columnar section shape:
// delta-friendly ints and dates (including Forever), a dictionary
// column with heavy repeats, floats, bools, an opaque bytes column and
// a mixed-kind column with NULLs.
func mixedRows(n int) []relstore.Row {
	day := temporal.MustParseDate("1990-01-01")
	rows := make([]relstore.Row, n)
	for i := 0; i < n; i++ {
		end := relstore.DateV(day.AddDays(i + 30))
		if i%7 == 0 {
			end = relstore.DateV(temporal.Forever)
		}
		var mixed relstore.Value
		switch i % 3 {
		case 0:
			mixed = relstore.Int(int64(i * 11))
		case 1:
			mixed = relstore.Null
		default:
			mixed = relstore.String_(fmt.Sprintf("m%d", i%5))
		}
		rows[i] = relstore.Row{
			relstore.Int(int64(100000 + i)),
			relstore.String_(fmt.Sprintf("title-%d", i%4)),
			relstore.Float(float64(i) * 1.5),
			relstore.Bool(i%2 == 0),
			relstore.DateV(day.AddDays(i)),
			end,
			relstore.Bytes([]byte{byte(i), 0x00, byte(i >> 8)}),
			mixed,
		}
	}
	return rows
}

func rowKey(r relstore.Row) string { return string(relstore.EncodeRow(nil, r, true)) }

func TestColumnarRoundTrip(t *testing.T) {
	rows := mixedRows(300)
	blocks, err := CompressColumnar(rows, 512)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) < 2 {
		t.Fatalf("expected multiple blocks at this block size, got %d", len(blocks))
	}
	var got []relstore.Row
	total := 0
	for _, blk := range blocks {
		if !IsColumnarBlock(blk.Data) {
			t.Fatal("columnar block not recognized by IsColumnarBlock")
		}
		dec, _, err := DecodeColumnarRows(blk.Data)
		if err != nil {
			t.Fatal(err)
		}
		if len(dec) != blk.Records {
			t.Fatalf("block decodes %d rows, header says %d", len(dec), blk.Records)
		}
		total += blk.Records
		got = append(got, dec...)
	}
	if total != len(rows) {
		t.Fatalf("blocks carry %d rows, want %d", total, len(rows))
	}
	for i := range rows {
		if rowKey(got[i]) != rowKey(rows[i]) {
			t.Fatalf("row %d differs after round trip:\n got %v\nwant %v", i, got[i], rows[i])
		}
	}
}

func TestColumnarBlocksAreBlockSized(t *testing.T) {
	blocks, err := CompressColumnar(mixedRows(300), 512)
	if err != nil {
		t.Fatal(err)
	}
	for i, blk := range blocks {
		if len(blk.Data) != 512 {
			t.Errorf("block %d is %d bytes, want exactly 512", i, len(blk.Data))
		}
	}
}

func TestColumnarProjection(t *testing.T) {
	rows := mixedRows(64)
	blocks, err := CompressColumnar(rows, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 1 {
		t.Fatalf("want one block, got %d", len(blocks))
	}
	needed := []bool{true, false, false, false, true} // shorter than ncols: rest skipped
	var b relstore.ColBatch
	if err := DecodeColumnarBatch(blocks[0].Data, needed, &b); err != nil {
		t.Fatal(err)
	}
	if b.N != len(rows) || len(b.Cols) != len(rows[0]) {
		t.Fatalf("batch shape %dx%d, want %dx%d", b.N, len(b.Cols), len(rows), len(rows[0]))
	}
	for c := range b.Cols {
		want := c < len(needed) && needed[c]
		if b.Cols[c].Present != want {
			t.Fatalf("col %d Present=%v, want %v", c, b.Cols[c].Present, want)
		}
	}
	for i := range rows {
		if got := b.Cols[0].ValueAt(i); rowKey(relstore.Row{got}) != rowKey(relstore.Row{rows[i][0]}) {
			t.Fatalf("col 0 row %d = %v, want %v", i, got, rows[i][0])
		}
		if got := b.Cols[4].ValueAt(i); got.I != rows[i][4].I {
			t.Fatalf("col 4 row %d = %v, want %v", i, got, rows[i][4])
		}
	}
}

// TestColumnarLegacyInterop pins the format-detection contract: legacy
// row blobs are never mistaken for columnar blocks (the zlib CMF byte
// can't be 0xC1), and the columnar decoder rejects them with an error
// rather than misreading.
func TestColumnarLegacyInterop(t *testing.T) {
	records := [][]byte{[]byte("alpha"), []byte("beta"), []byte("gamma")}
	legacy, err := Compress(records, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if IsColumnarBlock(legacy[0].Data) {
		t.Fatal("legacy row blob misdetected as columnar")
	}
	var b relstore.ColBatch
	if err := DecodeColumnarBatch(legacy[0].Data, nil, &b); err == nil {
		t.Fatal("decoding a legacy blob as columnar should fail")
	}

	blocks, err := CompressColumnar(mixedRows(8), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	bad := bytes.Clone(blocks[0].Data)
	bad[1] = colVersion + 1
	if err := DecodeColumnarBatch(bad, nil, &b); err == nil {
		t.Fatal("unknown columnar version should fail")
	}
	if _, _, err := DecodeColumnarRows([]byte{colMagic, colVersion, 0xff, 0xee}); err == nil {
		t.Fatal("garbage after the header should fail")
	}
}

// TestColumnarEstimateScan pins the planner-visible stats: a columnar
// store attributes its compressed blocks to ColumnarBlocks, zone
// bounds prune the count, and the legacy encoding reports zero.
func TestColumnarEstimateScan(t *testing.T) {
	cs, _, _ := newCompressed(t, Options{BlockSize: 512, Columnar: true})
	est := cs.EstimateScan(nil)
	if est.ColumnarBlocks == 0 {
		t.Fatal("columnar store reports no columnar blocks")
	}
	if est.ColumnarBlocks > est.Pages {
		t.Fatalf("ColumnarBlocks %d exceeds Pages %d", est.ColumnarBlocks, est.Pages)
	}
	pruned := cs.EstimateScan([]relstore.ZoneBound{{Col: 0, Op: "=", Bound: 1}})
	if pruned.ColumnarBlocks >= est.ColumnarBlocks {
		t.Fatalf("segno bound did not prune columnar blocks: %d vs %d", pruned.ColumnarBlocks, est.ColumnarBlocks)
	}
	if pruned.ColumnarBlocks == 0 {
		t.Fatal("segment 1 should still hold columnar blocks")
	}

	legacy, _, _ := newCompressed(t, Options{BlockSize: 512, Columnar: false})
	if got := legacy.EstimateScan(nil).ColumnarBlocks; got != 0 {
		t.Fatalf("row-blob store reports %d columnar blocks, want 0", got)
	}
}

// TestColumnarReopenDetectsEncoding reopens a store and checks the
// per-segment encoding is re-derived from the block bytes themselves:
// a columnar archive keeps its ColumnarBlocks estimate (and decodes)
// even when reopened with the option off, and a legacy archive opened
// with the option on stays readable as row blobs.
func TestColumnarReopenDetectsEncoding(t *testing.T) {
	for _, tc := range []struct {
		name       string
		written    bool // encoding the archive was written with
		reopenWith bool // option at reopen
	}{
		{"columnar-reopened-off", true, false},
		{"rowblob-reopened-on", false, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cs, db, _ := newCompressed(t, Options{BlockSize: 512, Columnar: tc.written})
			var want []string
			if err := cs.Scan(nil, func(r relstore.Row) bool {
				want = append(want, rowKey(r))
				return true
			}); err != nil {
				t.Fatal(err)
			}
			re, err := OpenCompressedStore(db, cs.Seg, Options{BlockSize: 512, Columnar: tc.reopenWith})
			if err != nil {
				t.Fatal(err)
			}
			if got := re.EstimateScan(nil).ColumnarBlocks > 0; got != tc.written {
				t.Fatalf("reopened store columnar-blocks>0 = %v, want %v (written encoding)", got, tc.written)
			}
			var got []string
			if err := re.Scan(nil, func(r relstore.Row) bool {
				got = append(got, rowKey(r))
				return true
			}); err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("reopened scan returns %d rows, want %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("row %d differs after reopen", i)
				}
			}
		})
	}
}

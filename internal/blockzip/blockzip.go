// Package blockzip implements the paper's BlockZIP scheme (Section 8):
// block-based zlib compression for archived relational data. Instead
// of compressing a segment as one stream, records are packed into
// independently decompressable blocks of a fixed physical size, so a
// snapshot or slicing query reads and decompresses only the blocks it
// touches.
package blockzip

import (
	"bytes"
	"compress/zlib"
	"encoding/binary"
	"fmt"
	"io"
	"sync"
)

// DefaultBlockSize is the paper's experimental block size (4000 bytes).
const DefaultBlockSize = 4000

// Block is one compressed unit: Data is at most the configured block
// size (padded up to exactly that size, as Algorithm 2 does), and
// Records counts the records inside.
type Block struct {
	Data    []byte
	Records int
}

// frame prepends each record with its uvarint length so the block can
// be split again after decompression.
func frame(dst []byte, rec []byte) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(rec)))
	dst = append(dst, tmp[:n]...)
	return append(dst, rec...)
}

// deflater couples one reusable zlib writer with its output buffer, so
// a pooled compression allocates neither. The writer's deflate state
// (sliding window, hash chains, Huffman scratch) is by far the largest
// allocation on the write path — the mirror image of inflaterPool on
// the read path.
type deflater struct {
	buf bytes.Buffer
	zw  *zlib.Writer
}

// deflaterPool recycles deflaters across blocks: Compress and
// CompressFrozen call deflate once per fitting iteration, so a fresh
// zlib.NewWriter per call dominated write-path allocations.
var deflaterPool = sync.Pool{New: func() any { return new(deflater) }}

// deflate compresses raw into a fresh buffer using a pooled deflater.
// The returned slice is owned by the caller (copied out of the pooled
// buffer, which is tiny next to the writer state being reused).
func deflate(raw []byte) ([]byte, error) {
	d := deflaterPool.Get().(*deflater)
	defer deflaterPool.Put(d)
	d.buf.Reset()
	if d.zw == nil {
		d.zw = zlib.NewWriter(&d.buf)
	} else {
		d.zw.Reset(&d.buf)
	}
	if _, err := d.zw.Write(raw); err != nil {
		return nil, err
	}
	if err := d.zw.Close(); err != nil {
		return nil, err
	}
	return append([]byte(nil), d.buf.Bytes()...), nil
}

// Compress packs records into blocks of at most blockSize compressed
// bytes each, following Algorithm 2: sample the input to estimate the
// compression factor and average record size, then adaptively grow or
// shrink the per-block record count until the compressed output fits.
func Compress(records [][]byte, blockSize int) ([]Block, error) {
	if blockSize <= 64 {
		return nil, fmt.Errorf("blockzip: block size %d too small", blockSize)
	}
	if len(records) == 0 {
		return nil, nil
	}

	// Algorithm 2 step 3: sample to estimate f0 and R.
	sampleBytes := 0
	sampleCount := 0
	for _, r := range records {
		sampleBytes += len(r) + 1
		sampleCount++
		if sampleBytes >= 4*blockSize {
			break
		}
	}
	avgRec := float64(sampleBytes) / float64(sampleCount)
	var raw []byte
	for _, r := range records[:sampleCount] {
		raw = frame(raw, r)
	}
	comp, err := deflate(raw)
	if err != nil {
		return nil, err
	}
	f0 := float64(len(raw)) / float64(len(comp)) // compression factor
	if f0 < 1 {
		f0 = 1
	}

	// Step 4: initial estimate of records per block.
	n := int(float64(blockSize) * f0 / avgRec)
	if n < 1 {
		n = 1
	}

	var out []Block
	start := 0
	for start < len(records) {
		count := n
		if start+count > len(records) {
			count = len(records) - start
		}
		// Adaptive fitting loop (steps 7-23). tooBig tracks the
		// smallest count known to overflow so the estimate-driven
		// grow/shrink steps cannot oscillate forever.
		tooBig := len(records) + 1
		for {
			raw = raw[:0]
			for _, r := range records[start : start+count] {
				raw = frame(raw, r)
			}
			comp, err = deflate(raw)
			if err != nil {
				return nil, err
			}
			if len(comp) <= blockSize {
				gap := blockSize - len(comp)
				extra := int(float64(gap) * f0 / avgRec)
				if extra >= 1 && start+count < len(records) && count+1 < tooBig {
					grow := extra
					if start+count+grow > len(records) {
						grow = len(records) - start - count
					}
					if count+grow >= tooBig {
						grow = tooBig - 1 - count
					}
					if grow > 0 {
						count += grow
						continue
					}
				}
				// Pad to the exact block size (step 13).
				padded := make([]byte, blockSize)
				copy(padded, comp)
				out = append(out, Block{Data: padded, Records: count})
				break
			}
			// Too big: shed records (steps 20-21).
			if count < tooBig {
				tooBig = count
			}
			over := len(comp) - blockSize
			shrink := int(float64(over) * f0 / avgRec)
			if shrink < 1 {
				shrink = 1
			}
			if count-shrink < 1 {
				if count == 1 {
					// A single record that does not fit gets an
					// oversized block — the BLOB escape hatch.
					out = append(out, Block{Data: comp, Records: 1})
					count = 1
					break
				}
				shrink = count - 1
			}
			count -= shrink
		}
		start += count
		n = count // carry the converged estimate forward
	}
	return out, nil
}

// resettableReader is the concrete shape of compress/zlib's reader:
// an io.ReadCloser that can be re-pointed at a new stream without
// reallocating its (large) internal inflate state.
type resettableReader interface {
	io.ReadCloser
	zlib.Resetter
}

// inflater couples one reusable zlib reader with the bytes.Reader it
// draws from, so a pooled decompression allocates neither.
type inflater struct {
	br bytes.Reader
	zr resettableReader
}

// inflaterPool recycles inflaters across blocks: without it every
// decompressed block pays a fresh zlib.NewReader (inflate dictionary,
// window and Huffman state — tens of KiB of allocation per block).
var inflaterPool = sync.Pool{New: func() any { return new(inflater) }}

// inflate decompresses one zlib stream into a fresh buffer using a
// pooled inflater. The returned buffer is owned by the caller.
func inflate(data []byte) ([]byte, error) {
	return inflateInto(nil, data)
}

// inflateInto is inflate with a caller-supplied destination buffer:
// the stream is decompressed into dst's capacity (growing as needed)
// so a caller decoding many blocks can reuse one buffer. dst's length
// is ignored; the decompressed bytes are returned from offset 0.
func inflateInto(dst []byte, data []byte) ([]byte, error) {
	inf := inflaterPool.Get().(*inflater)
	defer func() {
		inf.br.Reset(nil) // drop the reference to data before pooling
		inflaterPool.Put(inf)
	}()
	inf.br.Reset(data)
	if inf.zr == nil {
		zr, err := zlib.NewReader(&inf.br)
		if err != nil {
			return nil, err
		}
		inf.zr = zr.(resettableReader)
	} else if err := inf.zr.Reset(&inf.br, nil); err != nil {
		return nil, err
	}
	// Read into a growing buffer by hand: io.ReadAll's internal
	// append pattern is fine, but starting from the compressed size
	// avoids most of the doubling steps.
	raw := dst[:0]
	if cap(raw) < 4*len(data) {
		raw = make([]byte, 0, 4*len(data))
	}
	for {
		if len(raw) == cap(raw) {
			raw = append(raw, 0)[:len(raw)]
		}
		n, err := inf.zr.Read(raw[len(raw):cap(raw)])
		raw = raw[:len(raw)+n]
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
	}
	if err := inf.zr.Close(); err != nil {
		return nil, err
	}
	return raw, nil
}

// Decompress splits a block back into its records. Padding beyond the
// zlib stream is ignored. The records alias the returned stream's
// backing buffer, which is freshly allocated per call (the inflater
// itself is pooled; see inflaterPool).
func Decompress(data []byte) ([][]byte, error) {
	raw, err := inflate(data)
	if err != nil {
		return nil, fmt.Errorf("blockzip: %w", err)
	}
	var out [][]byte
	pos := 0
	for pos < len(raw) {
		l, n := binary.Uvarint(raw[pos:])
		if n <= 0 || pos+n+int(l) > len(raw) {
			return nil, fmt.Errorf("blockzip: corrupt record framing at %d", pos)
		}
		pos += n
		out = append(out, raw[pos:pos+int(l)])
		pos += int(l)
	}
	return out, nil
}

// CompressWhole compresses records as a single stream (the
// gzip-a-whole-file baseline that Tamino uses); returned as one
// unpadded block.
func CompressWhole(records [][]byte) (Block, error) {
	var raw []byte
	for _, r := range records {
		raw = frame(raw, r)
	}
	comp, err := deflate(raw)
	if err != nil {
		return Block{}, err
	}
	return Block{Data: comp, Records: len(records)}, nil
}

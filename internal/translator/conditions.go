package translator

import (
	"fmt"
	"strings"

	"archis/internal/temporal"
	"archis/internal/xquery"
)

func sqlString(s string) string {
	return "'" + strings.ReplaceAll(s, "'", "''") + "'"
}

func sqlDate(d temporal.Date) string { return fmt.Sprintf("DATE '%s'", d) }

// constDate recognizes date-valued constant expressions.
func constDate(e xquery.Expr) (temporal.Date, bool) {
	switch x := e.(type) {
	case *xquery.LiteralString:
		d, err := temporal.ParseDate(strings.TrimSpace(x.Value))
		return d, err == nil
	case *xquery.FuncCall:
		if (x.Name == "xs:date" || x.Name == "date") && len(x.Args) == 1 {
			return constDate(x.Args[0])
		}
	}
	return 0, false
}

// resolveToVar maps an expression to the tuple variable it denotes,
// materializing implicit attribute variables for relative paths (the
// [name="Bob"] pattern).
func (g *gen) resolveToVar(e xquery.Expr, ctx *varInfo) (*varInfo, error) {
	switch x := e.(type) {
	case *xquery.VarRef:
		v, ok := g.vars[x.Name]
		if !ok {
			return nil, fmt.Errorf("translator: unbound variable $%s", x.Name)
		}
		return v, nil
	case *xquery.ContextItem:
		if ctx == nil {
			return nil, unsupported("context item outside a predicate")
		}
		return ctx, nil
	case *xquery.Path:
		var base *varInfo
		var steps []xquery.Step
		switch root := x.Root.(type) {
		case *xquery.VarRef:
			v, ok := g.vars[root.Name]
			if !ok {
				return nil, fmt.Errorf("translator: unbound variable $%s", root.Name)
			}
			base = v
			steps = x.Steps
		case *xquery.ContextItem:
			base = ctx
			steps = x.Steps
		case nil:
			base = ctx
			steps = x.Steps
		default:
			return nil, unsupported("path root %T in condition", x.Root)
		}
		if base == nil {
			return nil, unsupported("relative path with no context")
		}
		// Self steps with no name are transparent.
		for len(steps) > 0 && steps[0].Axis == xquery.AxisSelf && len(steps[0].Preds) == 0 {
			steps = steps[1:]
		}
		if len(steps) == 0 {
			return base, nil
		}
		if len(steps) != 1 || steps[0].Axis != xquery.AxisChild || len(steps[0].Preds) > 0 {
			return nil, unsupported("complex path in condition")
		}
		if base.kind != kindEntity {
			return nil, unsupported("attribute path from non-entity variable")
		}
		return g.attrVar(base.ent, steps[0].Name)
	}
	return nil, unsupported("cannot resolve %T to a table variable", e)
}

// scalarOf returns the value column of a tuple variable.
func (g *gen) scalarOf(v *varInfo) (string, error) {
	switch v.kind {
	case kindAttr:
		return v.alias + "." + v.attr, nil
	case kindEntity:
		return "", unsupported("entity variable $%s used as a scalar", v.name)
	}
	return "", unsupported("variable kind")
}

// intervalOf returns the (tstart, tend) column pair of an
// interval-bearing expression, plus the variable it restricts (nil for
// constants).
func (g *gen) intervalOf(e xquery.Expr, ctx *varInfo) (ts, te string, v *varInfo, err error) {
	if fc, ok := e.(*xquery.FuncCall); ok {
		switch fc.Name {
		case "telement":
			if len(fc.Args) != 2 {
				return "", "", nil, unsupported("telement arity")
			}
			d1, ok1 := constDate(fc.Args[0])
			d2, ok2 := constDate(fc.Args[1])
			if ok1 && ok2 {
				return sqlDate(d1), sqlDate(d2), nil, nil
			}
			s1, err := g.translateScalar(fc.Args[0], ctx)
			if err != nil {
				return "", "", nil, err
			}
			s2, err := g.translateScalar(fc.Args[1], ctx)
			if err != nil {
				return "", "", nil, err
			}
			return s1, s2, nil, nil
		case "tinterval":
			if len(fc.Args) != 1 {
				return "", "", nil, unsupported("tinterval arity")
			}
			return g.intervalOf(fc.Args[0], ctx)
		case "vinterval":
			if len(fc.Args) != 1 {
				return "", "", nil, unsupported("vinterval arity")
			}
			return g.validIntervalOf(fc.Args[0], ctx)
		}
	}
	rv, err := g.resolveToVar(e, ctx)
	if err != nil {
		return "", "", nil, err
	}
	if rv.kind == kindEntity {
		alias := g.keyVar(rv.ent)
		return alias + ".tstart", alias + ".tend", nil, nil
	}
	return rv.alias + ".tstart", rv.alias + ".tend", rv, nil
}

// validIntervalOf returns the (vstart, vend) column pair of an
// attribute variable, the valid-time twin of intervalOf. Entity
// variables (key tables) and legacy attribute tables without the pair
// are unsupported — the caller falls back to the XML bypass, where
// Item.ValidInterval synthesizes the default. No segment restriction
// is recorded: clustering is transaction-time ordered and valid
// intervals need not correlate with it.
func (g *gen) validIntervalOf(e xquery.Expr, ctx *varInfo) (vs, ve string, v *varInfo, err error) {
	rv, err := g.resolveToVar(e, ctx)
	if err != nil {
		return "", "", nil, err
	}
	if rv.kind != kindAttr {
		return "", "", nil, unsupported("valid time of a non-attribute variable")
	}
	view := rv.ent.view
	if view.HasValid == nil || !view.HasValid(rv.table) {
		return "", "", nil, unsupported("valid time on legacy table %s", rv.table)
	}
	return rv.alias + ".vstart", rv.alias + ".vend", rv, nil
}

// restrict records a detected time restriction on a variable for the
// Section 6.3 segment optimization.
func restrict(v *varInfo, lo, hi temporal.Date) {
	if v == nil {
		return
	}
	if v.tendGE == nil || lo < *v.tendGE {
		v.tendGE = &lo
	}
	if v.tstartLE == nil || hi > *v.tstartLE {
		v.tstartLE = &hi
	}
}

var intervalPredicates = map[string]string{
	"toverlaps": "TOVERLAPS", "tcontains": "TCONTAINS", "tequals": "TEQUALS",
	"tmeets": "TMEETS", "tprecedes": "TPRECEDES",
}

// translateCond translates a boolean expression. An empty string means
// the condition is implied by the join structure (e.g. not(empty($x))
// over a bound variable).
func (g *gen) translateCond(e xquery.Expr, ctx *varInfo) (string, error) {
	switch x := e.(type) {
	case *xquery.Binary:
		switch x.Op {
		case "and", "or":
			l, err := g.translateCond(x.L, ctx)
			if err != nil {
				return "", err
			}
			r, err := g.translateCond(x.R, ctx)
			if err != nil {
				return "", err
			}
			op := strings.ToUpper(x.Op)
			switch {
			case l == "" && r == "":
				return "", nil
			case l == "":
				return r, nil
			case r == "":
				return l, nil
			}
			return "(" + l + " " + op + " " + r + ")", nil
		case "=", "!=", "<", "<=", ">", ">=":
			return g.translateCmp(x.L, x.Op, x.R, ctx)
		}
		return "", unsupported("operator %s in condition", x.Op)
	case *xquery.FuncCall:
		return g.translateCondFunc(x, ctx)
	case *xquery.Quantified:
		return "", unsupported("quantified expression (some/every)")
	}
	return "", unsupported("condition %T", e)
}

func (g *gen) translateCondFunc(x *xquery.FuncCall, ctx *varInfo) (string, error) {
	if udf, ok := intervalPredicates[x.Name]; ok {
		if len(x.Args) != 2 {
			return "", unsupported("%s arity", x.Name)
		}
		ts1, te1, v1, err := g.intervalOf(x.Args[0], ctx)
		if err != nil {
			return "", err
		}
		ts2, te2, v2, err := g.intervalOf(x.Args[1], ctx)
		if err != nil {
			return "", err
		}
		// Constant second interval restricts the first variable (and
		// vice versa) for overlap-style predicates.
		if x.Name == "toverlaps" || x.Name == "tcontains" || x.Name == "tequals" {
			if d1, ok1 := constDateSQL(ts2); ok1 {
				if d2, ok2 := constDateSQL(te2); ok2 {
					restrict(v1, d1, d2)
				}
			}
			if d1, ok1 := constDateSQL(ts1); ok1 {
				if d2, ok2 := constDateSQL(te1); ok2 {
					restrict(v2, d1, d2)
				}
			}
		}
		return fmt.Sprintf("%s(%s, %s, %s, %s)", udf, ts1, te1, ts2, te2), nil
	}
	switch x.Name {
	case "not":
		if len(x.Args) != 1 {
			return "", unsupported("not arity")
		}
		// not(empty(X)): existence — implied when X is a join-bound
		// variable; TOVERLAPS when X is overlapinterval(a, b).
		if inner, ok := x.Args[0].(*xquery.FuncCall); ok && inner.Name == "empty" && len(inner.Args) == 1 {
			if oi, ok := inner.Args[0].(*xquery.FuncCall); ok && oi.Name == "overlapinterval" && len(oi.Args) == 2 {
				ts1, te1, _, err := g.intervalOf(oi.Args[0], ctx)
				if err != nil {
					return "", err
				}
				ts2, te2, _, err := g.intervalOf(oi.Args[1], ctx)
				if err != nil {
					return "", err
				}
				return fmt.Sprintf("TOVERLAPS(%s, %s, %s, %s)", ts1, te1, ts2, te2), nil
			}
			if _, err := g.resolveToVar(inner.Args[0], ctx); err == nil {
				// Inner-join semantics make the emptiness test implicit.
				return "", nil
			}
			return "", unsupported("empty() argument")
		}
		inner, err := g.translateCond(x.Args[0], ctx)
		if err != nil {
			return "", err
		}
		if inner == "" {
			return "", unsupported("negation of join-implied condition")
		}
		return "NOT (" + inner + ")", nil
	case "empty":
		return "", unsupported("empty() without not() needs anti-join")
	case "exists":
		if len(x.Args) == 1 {
			if _, err := g.resolveToVar(x.Args[0], ctx); err == nil {
				return "", nil
			}
		}
		return "", unsupported("exists() argument")
	}
	return "", unsupported("function %s() in condition", x.Name)
}

// constDateSQL recognizes a DATE 'yyyy-mm-dd' literal produced by the
// generator itself.
func constDateSQL(s string) (temporal.Date, bool) {
	if !strings.HasPrefix(s, "DATE '") || !strings.HasSuffix(s, "'") {
		return 0, false
	}
	d, err := temporal.ParseDate(s[len("DATE '") : len(s)-1])
	return d, err == nil
}

var cmpFlip = map[string]string{"=": "=", "!=": "!=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}

// translateCmp handles comparisons, including the tstart/tend special
// cases that keep conditions index- and zone-map-friendly, and records
// time restrictions for segment pruning.
func (g *gen) translateCmp(l xquery.Expr, op string, r xquery.Expr, ctx *varInfo) (string, error) {
	// Normalize: tstart()/tend() (and the valid-time twins) on the left.
	if isTimeFunc(r) && !isTimeFunc(l) {
		return g.translateCmp(r, cmpFlip[op], l, ctx)
	}
	if fc, ok := l.(*xquery.FuncCall); ok && (fc.Name == "vstart" || fc.Name == "vend") && len(fc.Args) == 1 {
		vs, ve, _, err := g.validIntervalOf(fc.Args[0], ctx)
		if err != nil {
			return "", err
		}
		rhs, err := g.translateScalar(r, ctx)
		if err != nil {
			return "", err
		}
		if fc.Name == "vstart" {
			return fmt.Sprintf("%s %s %s", vs, op, rhs), nil
		}
		// vend externalizes like tend: equality against current-date()
		// means "valid into the open future", the prunable sentinel
		// form; range comparisons run on the raw column.
		if op == "=" && isCurrentDate(r) {
			return fmt.Sprintf("%s = DATE '%s'", ve, temporal.Forever), nil
		}
		if op == "<=" || op == "<" || op == ">=" || op == ">" {
			return fmt.Sprintf("%s %s %s", ve, op, rhs), nil
		}
		return fmt.Sprintf("RTEND(%s) %s %s", ve, op, rhs), nil
	}
	if fc, ok := l.(*xquery.FuncCall); ok && (fc.Name == "tstart" || fc.Name == "tend") && len(fc.Args) == 1 {
		ts, te, v, err := g.intervalOf(fc.Args[0], ctx)
		if err != nil {
			return "", err
		}
		if fc.Name == "tstart" {
			rhs, err := g.translateScalar(r, ctx)
			if err != nil {
				return "", err
			}
			if d, ok := constDate(r); ok && (op == "<=" || op == "<") && v != nil {
				if v.tstartLE == nil || d > *v.tstartLE {
					v.tstartLE = &d
				}
			}
			return fmt.Sprintf("%s %s %s", ts, op, rhs), nil
		}
		// tend(x) semantics: the internal end-of-time reads as
		// current-date(). Equality against current-date() means "is
		// current", which translates to the prunable form
		// tend = 9999-12-31; range comparisons are safe on the raw
		// column because 9999-12-31 exceeds every query date.
		if op == "=" && isCurrentDate(r) {
			return fmt.Sprintf("%s = DATE '%s'", te, temporal.Forever), nil
		}
		rhs, err := g.translateScalar(r, ctx)
		if err != nil {
			return "", err
		}
		if op == "<=" || op == "<" || op == ">=" || op == ">" {
			if d, ok := constDate(r); ok && (op == ">=" || op == ">") && v != nil {
				if v.tendGE == nil || d < *v.tendGE {
					v.tendGE = &d
				}
			}
			return fmt.Sprintf("%s %s %s", te, op, rhs), nil
		}
		return fmt.Sprintf("RTEND(%s) %s %s", te, op, rhs), nil
	}

	ls, err := g.translateScalar(l, ctx)
	if err != nil {
		return "", err
	}
	rs, err := g.translateScalar(r, ctx)
	if err != nil {
		return "", err
	}
	if op == "=" {
		g.noteIDConst(l, r, rs, ctx)
		g.noteIDConst(r, l, ls, ctx)
	}
	return fmt.Sprintf("%s %s %s", ls, op, rs), nil
}

// noteIDConst records `id = constant` entity predicates for
// propagation to member tables.
func (g *gen) noteIDConst(side, constSide xquery.Expr, constSQL string, ctx *varInfo) {
	if !isConstExpr(constSide) {
		return
	}
	// Syntactic pre-check before resolving: resolveToVar materializes
	// tuple variables, and re-resolving a non-key leaf here would
	// duplicate its FROM entry. The id leaf is safe — the key-table
	// alias is cached per entity.
	if !strings.EqualFold(leafName(side, ctx), "id") {
		return
	}
	v, err := g.resolveToVar(side, ctx)
	if err != nil || v.kind != kindAttr || !strings.EqualFold(v.attr, "id") {
		return
	}
	// Only surrogate-free integer keys share id values with the
	// attribute tables.
	if v.ent.view.KeyColumn != "" && v.ent.view.KeyColumn != "id" {
		return
	}
	v.ent.idConst = constSQL
}

// leafName extracts the final leaf name an expression denotes, without
// materializing anything.
func leafName(e xquery.Expr, ctx *varInfo) string {
	switch x := e.(type) {
	case *xquery.Path:
		if len(x.Steps) > 0 {
			return x.Steps[len(x.Steps)-1].Name
		}
	case *xquery.ContextItem:
		if ctx != nil {
			return ctx.attr
		}
	}
	return ""
}

func isConstExpr(e xquery.Expr) bool {
	switch e.(type) {
	case *xquery.LiteralNumber, *xquery.LiteralString:
		return true
	}
	_, ok := constDate(e)
	return ok
}

func isTimeFunc(e xquery.Expr) bool {
	fc, ok := e.(*xquery.FuncCall)
	if !ok || len(fc.Args) != 1 {
		return false
	}
	switch fc.Name {
	case "tstart", "tend", "vstart", "vend":
		return true
	}
	return false
}

func isCurrentDate(e xquery.Expr) bool {
	fc, ok := e.(*xquery.FuncCall)
	return ok && fc.Name == "current-date"
}

// translateScalar translates a value expression.
func (g *gen) translateScalar(e xquery.Expr, ctx *varInfo) (string, error) {
	switch x := e.(type) {
	case *xquery.LiteralString:
		return sqlString(x.Value), nil
	case *xquery.LiteralNumber:
		if x.Value == float64(int64(x.Value)) {
			return fmt.Sprintf("%d", int64(x.Value)), nil
		}
		return fmt.Sprintf("%g", x.Value), nil
	case *xquery.FuncCall:
		switch x.Name {
		case "xs:date", "date":
			if d, ok := constDate(x); ok {
				return sqlDate(d), nil
			}
			return "", unsupported("dynamic xs:date()")
		case "current-date":
			return "CURRENT_DATE()", nil
		case "tstart":
			ts, _, _, err := g.intervalOf(x.Args[0], ctx)
			return ts, err
		case "tend":
			_, te, _, err := g.intervalOf(x.Args[0], ctx)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("RTEND(%s)", te), nil
		case "vstart":
			vs, _, _, err := g.validIntervalOf(x.Args[0], ctx)
			return vs, err
		case "vend":
			_, ve, _, err := g.validIntervalOf(x.Args[0], ctx)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("RTEND(%s)", ve), nil
		case "timespan":
			ts, te, _, err := g.intervalOf(x.Args[0], ctx)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("TSPAN(%s, %s)", ts, te), nil
		case "string", "number", "data":
			if len(x.Args) != 1 {
				return "", unsupported("%s arity", x.Name)
			}
			return g.translateScalar(x.Args[0], ctx)
		}
		return "", unsupported("function %s() as a scalar", x.Name)
	case *xquery.Binary:
		switch x.Op {
		case "+", "-", "*", "div":
			l, err := g.translateScalar(x.L, ctx)
			if err != nil {
				return "", err
			}
			r, err := g.translateScalar(x.R, ctx)
			if err != nil {
				return "", err
			}
			op := x.Op
			if op == "div" {
				op = "/"
			}
			return "(" + l + " " + op + " " + r + ")", nil
		}
		return "", unsupported("operator %s as a scalar", x.Op)
	case *xquery.VarRef, *xquery.ContextItem, *xquery.Path:
		v, err := g.resolveToVar(e, ctx)
		if err != nil {
			return "", err
		}
		return g.scalarOf(v)
	}
	return "", unsupported("scalar %T", e)
}

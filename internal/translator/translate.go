package translator

import (
	"errors"
	"fmt"
	"strings"

	"archis/internal/obs"
	"archis/internal/temporal"
	"archis/internal/xquery"
)

// ErrUnsupported reports a query outside the translatable subset; the
// caller should evaluate it on the XML view directly.
var ErrUnsupported = errors.New("translator: query shape not supported; use the XML-view execution path")

func unsupported(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrUnsupported, fmt.Sprintf(format, args...))
}

// Translator turns XQuery-on-H-views into SQL/XML-on-H-tables.
type Translator struct {
	Catalog Catalog
	// TableMode emits plain relational columns instead of SQL/XML
	// constructors (the paper's `table` output bypass).
	TableMode bool
}

// Translate parses and translates one query.
func (tr *Translator) Translate(query string) (string, error) {
	return tr.TranslateTraced(query, nil)
}

// TranslateTraced is Translate with a "translate" span recorded under
// sp, capturing the emitted SQL as an attribute. Nil sp disables.
func (tr *Translator) TranslateTraced(query string, sp *obs.Span) (string, error) {
	ts := sp.Child("translate")
	defer ts.End()
	e, err := xquery.Parse(query)
	if err != nil {
		return "", err
	}
	sql, err := tr.TranslateExpr(e)
	if err == nil {
		ts.SetAttr("sql", sql)
	}
	return sql, err
}

// TranslateExpr translates a parsed query.
func (tr *Translator) TranslateExpr(e xquery.Expr) (string, error) {
	g := &gen{tr: tr, vars: map[string]*varInfo{}}
	return g.translateTop(e)
}

// ---- generator state ----

type entityInfo struct {
	view        *ViewInfo
	anchorAlias string // first tuple alias joined on id
	keyAlias    string // key-table alias, if materialized
	// idConst, when non-empty, is a constant the entity's id equals;
	// it is propagated to every member table so single-object queries
	// can use indexes and block pruning (the Q1/Q3 shape).
	idConst string
}

const (
	kindEntity = iota
	kindAttr
)

type varInfo struct {
	name  string // XQuery variable name ("" for implicit)
	kind  int
	ent   *entityInfo
	attr  string // leaf name for attribute variables
	alias string // SQL tuple alias (attr vars and key tuples)
	table string
	preds []pendingPred
	isLet bool

	// time restriction detected for segment optimization (Section 6.3)
	tstartLE *temporal.Date
	tendGE   *temporal.Date
}

type pendingPred struct {
	expr xquery.Expr
	ctx  *varInfo
}

type fromItem struct {
	table, alias string
}

type gen struct {
	tr      *Translator
	vars    map[string]*varInfo
	attrs   []*varInfo // all materialized tuple vars, FROM order
	from    []fromItem
	joins   []string
	conds   []string
	orderBy []string
	aliasN  int
}

func (g *gen) nextAlias() string {
	g.aliasN++
	return fmt.Sprintf("T%d", g.aliasN)
}

// newTupleVar materializes a tuple variable over table, joining it to
// the entity's anchor on id.
func (g *gen) newTupleVar(ent *entityInfo, table string) string {
	alias := g.nextAlias()
	g.from = append(g.from, fromItem{table: table, alias: alias})
	if ent.anchorAlias == "" {
		ent.anchorAlias = alias
	} else {
		g.joins = append(g.joins, fmt.Sprintf("%s.id = %s.id", alias, ent.anchorAlias))
	}
	return alias
}

// attrVar returns (creating if needed) a tuple variable over the
// entity's attribute-history table for leaf.
func (g *gen) attrVar(ent *entityInfo, leaf string) (*varInfo, error) {
	leaf = strings.ToLower(leaf)
	if strings.EqualFold(leaf, ent.view.KeyLeaf) {
		return g.keyVarInfo(ent), nil
	}
	table, ok := ent.view.AttrTables[leaf]
	if !ok {
		return nil, fmt.Errorf("translator: view %s has no attribute %s", ent.view.DocName, leaf)
	}
	v := &varInfo{kind: kindAttr, ent: ent, attr: leaf, table: table}
	v.alias = g.newTupleVar(ent, table)
	g.attrs = append(g.attrs, v)
	return v, nil
}

// keyVar materializes (once) the key-table tuple for an entity.
func (g *gen) keyVar(ent *entityInfo) string {
	if ent.keyAlias == "" {
		ent.keyAlias = g.newTupleVar(ent, ent.view.KeyTable)
	}
	return ent.keyAlias
}

func (g *gen) keyVarInfo(ent *entityInfo) *varInfo {
	alias := g.keyVar(ent)
	col := ent.view.KeyColumn
	if col == "" {
		col = "id"
	}
	return &varInfo{kind: kindAttr, ent: ent, attr: col, table: ent.view.KeyTable, alias: alias}
}

// entityAnchor returns an alias whose id column identifies the entity,
// preferring existing members over materializing the key table.
func (g *gen) entityAnchor(ent *entityInfo) string {
	if ent.anchorAlias != "" {
		return ent.anchorAlias
	}
	return g.keyVar(ent)
}

// ---- top level ----

func (g *gen) translateTop(e xquery.Expr) (string, error) {
	switch x := e.(type) {
	case *xquery.FLWOR:
		return g.translateFLWOR(x, "")
	case *xquery.ComputedElement:
		if fl, ok := x.Content.(*xquery.FLWOR); ok {
			return g.translateFLWOR(fl, x.Tag)
		}
		return "", unsupported("top-level computed element without FLWOR content")
	case *xquery.DirectElement:
		if len(x.Children) == 1 && x.Children[0].Expr != nil {
			if fl, ok := x.Children[0].Expr.(*xquery.FLWOR); ok && len(x.Attrs) == 0 {
				return g.translateFLWOR(fl, x.Tag)
			}
		}
		return "", unsupported("top-level direct element")
	case *xquery.Path:
		// Bare path query: sugar for `for $x in path return $x`.
		fl := &xquery.FLWOR{
			Clauses: []xquery.FLWORClause{{Var: "#x", In: x}},
			Return:  &xquery.VarRef{Name: "#x"},
		}
		return g.translateFLWOR(fl, "")
	}
	return "", unsupported("top-level %T", e)
}

// translateFLWOR drives Algorithm 1. wrapper, when non-empty, is the
// element name aggregating all iterations (→ XMLAgg + GROUP BY).
func (g *gen) translateFLWOR(fl *xquery.FLWOR, wrapper string) (string, error) {
	var pending []pendingPred

	// Step 1: identify variable ranges.
	for _, cl := range fl.Clauses {
		v, preds, err := g.bindClause(cl)
		if err != nil {
			return "", err
		}
		g.vars[cl.Var] = v
		pending = append(pending, preds...)
	}
	if fl.Where != nil {
		pending = append(pending, pendingPred{expr: fl.Where, ctx: nil})
	}

	// Step 3: where conditions (path predicates + where clause).
	for _, p := range pending {
		sql, err := g.translateCond(p.expr, p.ctx)
		if err != nil {
			return "", err
		}
		if sql != "" {
			g.conds = append(g.conds, sql)
		}
	}

	// Order by.
	for _, spec := range fl.OrderBy {
		sql, err := g.translateScalar(spec.Key, nil)
		if err != nil {
			return "", err
		}
		if spec.Descending {
			sql += " DESC"
		}
		g.orderBy = append(g.orderBy, sql)
	}

	// Step 5: output generation.
	sel, groupEnt, aggregated, err := g.translateReturn(fl.Return)
	if err != nil {
		return "", err
	}

	var sb strings.Builder
	sb.WriteString("SELECT ")
	groupBy := ""
	switch {
	case wrapper != "" && !g.tr.TableMode:
		anchor := ""
		if groupEnt != nil {
			anchor = g.entityAnchor(groupEnt)
		}
		if anchor != "" && !aggregated {
			groupBy = anchor + ".id"
		}
		if aggregated {
			sb.WriteString(fmt.Sprintf("XMLElement(Name %q, %s)", wrapper, sel))
		} else {
			sb.WriteString(fmt.Sprintf("XMLElement(Name %q, XMLAgg(%s))", wrapper, sel))
		}
	default:
		sb.WriteString(sel)
	}

	if len(g.from) == 0 {
		return "", unsupported("no table variables identified")
	}

	// Step 6 (Section 6.3): segment restrictions and id propagation.
	g.applyIDPropagation()
	g.applySegmentRestrictions()

	sb.WriteString(" FROM ")
	for i, f := range g.from {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(f.table + " AS " + f.alias)
	}
	conds := append(append([]string{}, g.joins...), g.conds...)
	if len(conds) > 0 {
		sb.WriteString(" WHERE " + strings.Join(conds, " AND "))
	}
	if groupBy != "" {
		sb.WriteString(" GROUP BY " + groupBy)
	}
	if len(g.orderBy) > 0 {
		sb.WriteString(" ORDER BY " + strings.Join(g.orderBy, ", "))
	}
	return sb.String(), nil
}

// bindClause resolves one for/let binding to a variable range.
func (g *gen) bindClause(cl xquery.FLWORClause) (*varInfo, []pendingPred, error) {
	path, ok := cl.In.(*xquery.Path)
	if !ok {
		return nil, nil, unsupported("binding of $%s to %T", cl.Var, cl.In)
	}
	var preds []pendingPred

	// doc("…")-rooted path.
	if fc, ok := path.Root.(*xquery.FuncCall); ok && (fc.Name == "doc" || fc.Name == "document") {
		if len(fc.Args) != 1 {
			return nil, nil, unsupported("doc() arity")
		}
		lit, ok := fc.Args[0].(*xquery.LiteralString)
		if !ok {
			return nil, nil, unsupported("dynamic doc() name")
		}
		view, ok := g.tr.Catalog.ViewByDoc(lit.Value)
		if !ok {
			return nil, nil, fmt.Errorf("translator: unknown document %q", lit.Value)
		}
		steps := path.Steps
		if len(steps) < 2 || steps[0].Name != view.RootName || steps[1].Name != view.EntityName {
			return nil, nil, unsupported("path %s/%s does not match view %s/%s",
				stepName(steps, 0), stepName(steps, 1), view.RootName, view.EntityName)
		}
		if len(steps[0].Preds) > 0 {
			return nil, nil, unsupported("predicate on document root")
		}
		ent := &entityInfo{view: view}
		entVar := &varInfo{name: cl.Var, kind: kindEntity, ent: ent, isLet: cl.IsLet}
		for _, p := range steps[1].Preds {
			preds = append(preds, pendingPred{expr: p, ctx: entVar})
		}
		if len(steps) == 2 {
			return entVar, preds, nil
		}
		if len(steps) == 3 {
			av, err := g.attrVar(ent, steps[2].Name)
			if err != nil {
				return nil, nil, err
			}
			av.name = cl.Var
			av.isLet = cl.IsLet
			for _, p := range steps[2].Preds {
				preds = append(preds, pendingPred{expr: p, ctx: av})
			}
			return av, preds, nil
		}
		return nil, nil, unsupported("path deeper than root/entity/attribute")
	}

	// $var-rooted path.
	if vr, ok := path.Root.(*xquery.VarRef); ok {
		base, ok := g.vars[vr.Name]
		if !ok {
			return nil, nil, fmt.Errorf("translator: unbound variable $%s", vr.Name)
		}
		if base.kind != kindEntity {
			return nil, nil, unsupported("path from non-entity variable $%s", vr.Name)
		}
		if len(path.Steps) != 1 {
			return nil, nil, unsupported("multi-step path from $%s", vr.Name)
		}
		st := path.Steps[0]
		av, err := g.attrVar(base.ent, st.Name)
		if err != nil {
			return nil, nil, err
		}
		av.name = cl.Var
		av.isLet = cl.IsLet
		for _, p := range st.Preds {
			preds = append(preds, pendingPred{expr: p, ctx: av})
		}
		return av, preds, nil
	}
	return nil, nil, unsupported("binding root %T", path.Root)
}

func stepName(steps []xquery.Step, i int) string {
	if i < len(steps) {
		return steps[i].Name
	}
	return "?"
}

// applyIDPropagation copies entity-level id equalities onto every
// member attribute table (ids are shared, so the predicate is
// equivalent and lets each scan prune independently).
func (g *gen) applyIDPropagation() {
	for _, v := range g.attrs {
		if v.ent.idConst == "" {
			continue
		}
		g.conds = append(g.conds, fmt.Sprintf("%s.id = %s", v.alias, v.ent.idConst))
	}
}

// applySegmentRestrictions injects segno conditions for variables with
// detected time restrictions over clustered tables.
func (g *gen) applySegmentRestrictions() {
	for _, v := range g.attrs {
		view := v.ent.view
		if view.SegmentsFor == nil || v.tstartLE == nil || v.tendGE == nil {
			continue
		}
		lo, hi := *v.tendGE, *v.tstartLE
		if hi < lo {
			continue
		}
		minSeg, maxSeg, ok := view.SegmentsFor(v.table, lo, hi)
		if !ok {
			continue
		}
		if minSeg == maxSeg {
			g.conds = append(g.conds, fmt.Sprintf("%s.segno = %d", v.alias, minSeg))
		} else {
			g.conds = append(g.conds,
				fmt.Sprintf("%s.segno >= %d", v.alias, minSeg),
				fmt.Sprintf("%s.segno <= %d", v.alias, maxSeg))
		}
	}
}

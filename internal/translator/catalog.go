// Package translator implements Algorithm 1 of the paper: XQuery
// written against H-views (the temporally grouped XML views of
// relational history) is translated into SQL/XML text over the
// underlying H-tables, with tag binding and structure construction
// pushed into the relational engine via XMLELEMENT/XMLATTRIBUTES/
// XMLAGG, temporal functions mapped to engine UDFs, and — when the
// referenced attribute tables are clustered — segment restrictions
// injected per Section 6.3.
//
// The translator covers the paper's query classes that it translates
// itself (projection, snapshot, slicing, joins expressible without
// nesting, temporal aggregates, since-style let-filters). Shapes
// outside the subset (nested FLWOR constructors, quantified
// expressions, restructuring) return ErrUnsupported, and callers fall
// back to direct XQuery evaluation over the published H-documents —
// the same pragmatic split the paper describes for its own system.
package translator

import (
	"archis/internal/temporal"
)

// ViewInfo describes one H-view and its backing H-tables.
type ViewInfo struct {
	DocName    string // employees.xml
	RootName   string // employees
	EntityName string // employee
	KeyTable   string // employee_id
	KeyLeaf    string // the key's leaf name in the H-view (id, deptno, …)
	// KeyColumn is the key-table column holding the visible key value
	// ("id" for surrogate-free integer keys; the natural key column
	// otherwise). Defaults to "id" when empty.
	KeyColumn string
	// AttrTables maps lowercase leaf names (salary, title, …) to their
	// history-table names (employee_salary, …).
	AttrTables map[string]string
	// Segmented reports whether an attribute table is clustered (its
	// schema then carries a segno column).
	Segmented func(attrTable string) bool
	// SegmentsFor returns the contiguous segment-number range whose
	// intervals intersect [lo, hi]; ok is false when the table is not
	// clustered or the range cannot be restricted.
	SegmentsFor func(attrTable string, lo, hi temporal.Date) (minSeg, maxSeg int64, ok bool)
	// HasValid reports whether an attribute table stores the valid-time
	// pair (vstart/vend). Nil or false sends valid-time query shapes to
	// ErrUnsupported, so legacy archives answer them through the XML
	// bypass, which synthesizes the default valid interval instead.
	HasValid func(attrTable string) bool
}

// Catalog resolves doc() names to views.
type Catalog interface {
	ViewByDoc(doc string) (*ViewInfo, bool)
}

// MapCatalog is a trivial Catalog backed by a map keyed by doc name.
type MapCatalog map[string]*ViewInfo

// ViewByDoc implements Catalog.
func (m MapCatalog) ViewByDoc(doc string) (*ViewInfo, bool) {
	v, ok := m[doc]
	return v, ok
}

package translator

import (
	"errors"
	"sort"
	"strings"
	"testing"

	"archis/internal/dataset"
	"archis/internal/htable"
	"archis/internal/relstore"
	"archis/internal/sqlengine"
	"archis/internal/temporal"
	"archis/internal/xmltree"
	"archis/internal/xquery"
)

// fixture builds an archive with the paper's micro-history, a catalog
// for its two H-views, and an XQuery evaluator over the published
// H-documents (the cross-validation reference).
type fixture struct {
	archive *htable.Archive
	en      *sqlengine.Engine
	tr      *Translator
	ev      *xquery.Evaluator
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	en := sqlengine.New(relstore.NewDatabase())
	a, err := htable.New(en, htable.CaptureTrigger)
	if err != nil {
		t.Fatal(err)
	}
	if err := dataset.RegisterPaperTables(a); err != nil {
		t.Fatal(err)
	}
	if err := dataset.LoadMicro(a); err != nil {
		t.Fatal(err)
	}
	cat := MapCatalog{
		"employees.xml": {
			DocName: "employees.xml", RootName: "employees", EntityName: "employee",
			KeyTable: "employee_id", KeyLeaf: "id", KeyColumn: "id",
			AttrTables: map[string]string{
				"name": "employee_name", "salary": "employee_salary",
				"title": "employee_title", "deptno": "employee_deptno",
			},
		},
		"depts.xml": {
			DocName: "depts.xml", RootName: "depts", EntityName: "dept",
			KeyTable: "dept_deptno", KeyLeaf: "deptno", KeyColumn: "deptno",
			AttrTables: map[string]string{
				"deptname": "dept_deptname", "mgrno": "dept_mgrno",
			},
		},
	}
	// Alias emp.xml to the employees view, as the paper's Q5/Q6 do.
	cat["emp.xml"] = cat["employees.xml"]

	empDoc, err := a.PublishHDoc("employee")
	if err != nil {
		t.Fatal(err)
	}
	deptDoc, err := a.PublishHDoc("dept")
	if err != nil {
		t.Fatal(err)
	}
	ev := xquery.NewEvaluator(func(name string) (*xmltree.Node, error) {
		switch name {
		case "employees.xml", "emp.xml":
			return empDoc, nil
		case "depts.xml":
			return deptDoc, nil
		}
		t.Fatalf("unexpected doc %q", name)
		return nil, nil
	})
	ev.Now = a.Clock()
	return &fixture{archive: a, en: en, tr: &Translator{Catalog: cat}, ev: ev}
}

// runSQL executes translated SQL and returns each row's values
// serialized.
func (f *fixture) runSQL(t *testing.T, sql string) []string {
	t.Helper()
	res, err := f.en.Exec(sql)
	if err != nil {
		t.Fatalf("Exec(%s): %v", sql, err)
	}
	var out []string
	for _, row := range res.Rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = v.Text()
		}
		out = append(out, strings.Join(parts, "|"))
	}
	return out
}

// crossValidate runs the query on both paths and compares the
// (sorted) serialized results.
func (f *fixture) crossValidate(t *testing.T, query string) {
	t.Helper()
	sql, err := f.tr.Translate(query)
	if err != nil {
		t.Fatalf("Translate(%s): %v", query, err)
	}
	sqlOut := f.runSQL(t, sql)

	seq, err := f.ev.Eval(query)
	if err != nil {
		t.Fatalf("Eval(%s): %v", query, err)
	}
	var xqOut []string
	for _, it := range seq {
		xqOut = append(xqOut, it.String())
	}
	sort.Strings(sqlOut)
	sort.Strings(xqOut)
	if strings.Join(sqlOut, "\n") != strings.Join(xqOut, "\n") {
		t.Errorf("paths disagree for %s\nSQL (%d):\n%s\nXML view (%d):\n%s\ntranslation: %s",
			query, len(sqlOut), strings.Join(sqlOut, "\n"), len(xqOut), strings.Join(xqOut, "\n"), sql)
	}
}

func TestQuery1TranslationShape(t *testing.T) {
	f := newFixture(t)
	sql, err := f.tr.Translate(`
element title_history{
  for $t in doc("employees.xml")/employees/employee[name="Bob"]/title
  return $t }`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"XMLElement(Name \"title_history\"", "XMLAgg(",
		"employee_title AS T1", "employee_name AS T2",
		"T2.id = T1.id", "T2.name = 'Bob'", "GROUP BY T1.id",
	} {
		if !strings.Contains(sql, want) {
			t.Errorf("translation missing %q:\n%s", want, sql)
		}
	}
	got := f.runSQL(t, sql)
	if len(got) != 1 {
		t.Fatalf("rows = %d", len(got))
	}
	if !strings.Contains(got[0], ">Engineer</title>") || !strings.Contains(got[0], ">TechLeader</title>") {
		t.Errorf("result = %s", got[0])
	}
}

func TestQuery2SnapshotTranslation(t *testing.T) {
	f := newFixture(t)
	q := `
for $m in doc("depts.xml")/depts/dept/mgrno
    [tstart(.)<=xs:date("1994-05-06") and tend(.) >= xs:date("1994-05-06")]
return $m`
	sql, err := f.tr.Translate(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"dept_mgrno AS T1", "T1.tstart <= DATE '1994-05-06'", "T1.tend >= DATE '1994-05-06'"} {
		if !strings.Contains(sql, want) {
			t.Errorf("translation missing %q:\n%s", want, sql)
		}
	}
	got := f.runSQL(t, sql)
	if len(got) != 3 {
		t.Errorf("managers on 1994-05-06 = %v", got)
	}
	f.crossValidate(t, q)
}

func TestQuery3SlicingTranslation(t *testing.T) {
	f := newFixture(t)
	q := `
for $e in doc("employees.xml")/employees/employee[ toverlaps(.,
    telement( xs:date("1994-05-06"), xs:date("1995-05-06") ) ) ]
return $e/name`
	sql, err := f.tr.Translate(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"employee_id AS T1", "TOVERLAPS(T1.tstart, T1.tend, DATE '1994-05-06', DATE '1995-05-06')", "employee_name AS T2"} {
		if !strings.Contains(sql, want) {
			t.Errorf("translation missing %q:\n%s", want, sql)
		}
	}
	got := f.runSQL(t, sql)
	if len(got) != 3 { // Bob, Carol and Alice all existed in that window
		t.Errorf("slicing = %v", got)
	}
	f.crossValidate(t, q)
}

func TestQuery5TemporalAggregateTranslation(t *testing.T) {
	f := newFixture(t)
	q := `
let $s := document("emp.xml")/employees/employee/salary
return tavg($s)`
	sql, err := f.tr.Translate(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql, "TAVG(T1.salary, T1.tstart, T1.tend)") {
		t.Errorf("translation: %s", sql)
	}
	got := f.runSQL(t, sql)
	if len(got) != 1 || !strings.Contains(got[0], "step") {
		t.Fatalf("tavg = %v", got)
	}
	// Between 1995-03-01 and 1995-05-31 salaries are 60000/50000/55000.
	if !strings.Contains(got[0], `value="55000" tstart="1995-03-01"`) {
		t.Errorf("missing expected step: %s", got[0])
	}
}

func TestQuery7SinceTranslation(t *testing.T) {
	f := newFixture(t)
	// The overlap variant of the paper's since query (Alice matches).
	q := `
for $e in doc("employees.xml")/employees/employee
let $m := $e/title[.="Sr Engineer" and tend(.)=current-date()]
let $d := $e/deptno[.="d01" and toverlaps($m, .)]
where not(empty($d)) and not(empty($m))
return <employee>{$e/id, $e/name}</employee>`
	sql, err := f.tr.Translate(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql, "T1.tend = DATE '9999-12-31'") {
		t.Errorf("tend(.)=current-date() not rewritten to the prunable form:\n%s", sql)
	}
	got := f.runSQL(t, sql)
	if len(got) != 1 || !strings.Contains(got[0], "Alice") {
		t.Errorf("since = %v\nsql: %s", got, sql)
	}
	f.crossValidate(t, q)
}

func TestContextDotEqualsValue(t *testing.T) {
	f := newFixture(t)
	q := `
for $d in doc("employees.xml")/employees/employee/deptno[.="d02"]
return $d`
	f.crossValidate(t, q)
}

func TestUnsupportedShapes(t *testing.T) {
	f := newFixture(t)
	cases := []string{
		// Q4: nested FLWOR inside a constructor.
		`element manages{
		  for $d in doc("depts.xml")/depts/dept
		  for $m in $d/mgrno
		  return element manage {$d/deptno, $m,
		    element employees {
		      for $e in doc("employees.xml")/employees/employee
		      where $e/deptno = $d/deptno
		      return $e/name }}}`,
		// Q6: restructuring.
		`for $e in doc("emp.xml")/employees/employee[name="Bob"]
		 let $d := $e/deptno
		 let $t := $e/title
		 let $overlaps := restructure($d, $t)
		 return max($overlaps)`,
		// Q8: quantified expressions.
		`for $e1 in doc("employees.xml")/employees/employee[name = "Bob"]
		 for $e2 in doc("employees.xml")/employees/employee[name != "Bob"]
		 where every $d1 in $e1/deptno satisfies some $d2 in $e2/deptno satisfies
		   (string($d1)=string($d2) and tequals($d2,$d1))
		 return <employee>{$e2/name}</employee>`,
		// Arbitrary unsupported scalar.
		`for $e in doc("employees.xml")/employees/employee return count(distinct-values($e/deptno))`,
	}
	for _, q := range cases {
		if _, err := f.tr.Translate(q); !errors.Is(err, ErrUnsupported) {
			t.Errorf("Translate(%q): err = %v, want ErrUnsupported", q, err)
		}
	}
}

func TestTranslateErrors(t *testing.T) {
	f := newFixture(t)
	if _, err := f.tr.Translate(`for $x in doc("nosuch.xml")/a/b return $x`); err == nil {
		t.Error("unknown doc accepted")
	}
	if _, err := f.tr.Translate(`for $x in doc("employees.xml")/wrong/employee return $x`); !errors.Is(err, ErrUnsupported) {
		t.Errorf("wrong root: %v", err)
	}
	if _, err := f.tr.Translate(`for $x in doc("employees.xml")/employees/employee/nosuchattr return $x`); err == nil {
		t.Error("unknown attribute accepted")
	}
	if _, err := f.tr.Translate(`for $x in`); err == nil {
		t.Error("parse error swallowed")
	}
}

func TestSegmentRestrictionInjection(t *testing.T) {
	f := newFixture(t)
	var askedLo, askedHi temporal.Date
	cat := f.tr.Catalog.(MapCatalog)
	v := *cat["employees.xml"]
	v.SegmentsFor = func(table string, lo, hi temporal.Date) (int64, int64, bool) {
		askedLo, askedHi = lo, hi
		if table != "employee_salary" {
			return 0, 0, false
		}
		return 3, 3, true
	}
	cat["employees.xml"] = &v

	sql, err := f.tr.Translate(`
for $s in doc("employees.xml")/employees/employee/salary
    [tstart(.)<=xs:date("1995-07-01") and tend(.)>=xs:date("1995-07-01")]
return $s`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql, "T1.segno = 3") {
		t.Errorf("missing segment restriction:\n%s", sql)
	}
	if askedLo.String() != "1995-07-01" || askedHi.String() != "1995-07-01" {
		t.Errorf("segment range asked = [%s, %s]", askedLo, askedHi)
	}

	// Slicing via toverlaps also restricts.
	sql, err = f.tr.Translate(`
for $s in doc("employees.xml")/employees/employee/salary
    [toverlaps(., telement(xs:date("1995-01-01"), xs:date("1995-12-31")))]
return $s`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql, "T1.segno = 3") {
		t.Errorf("missing slicing segment restriction:\n%s", sql)
	}
	if askedLo.String() != "1995-01-01" || askedHi.String() != "1995-12-31" {
		t.Errorf("slicing range asked = [%s, %s]", askedLo, askedHi)
	}
}

func TestTableMode(t *testing.T) {
	f := newFixture(t)
	f.tr.TableMode = true
	sql, err := f.tr.Translate(`
for $s in doc("employees.xml")/employees/employee[name="Bob"]/salary
return $s`)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sql, "XMLElement") {
		t.Errorf("table mode emitted XML: %s", sql)
	}
	got := f.runSQL(t, sql)
	if len(got) != 2 || !strings.HasPrefix(got[0], "60000|1995-01-01|") {
		t.Errorf("table mode rows = %v", got)
	}
}

func TestCrossValidationSuite(t *testing.T) {
	f := newFixture(t)
	queries := []string{
		`for $s in doc("employees.xml")/employees/employee[name="Bob"]/salary return $s`,
		`for $t in doc("employees.xml")/employees/employee[name="Alice"]/title return $t`,
		// Snapshot dates must not exceed "now" (the clock is
		// 1997-01-01): beyond it the two paths legitimately diverge,
		// since tend() reads current tuples as ending at current-date.
		`for $m in doc("depts.xml")/depts/dept/mgrno[tstart(.)<=xs:date("1997-01-01") and tend(.)>=xs:date("1997-01-01")] return $m`,
		`for $e in doc("employees.xml")/employees/employee[toverlaps(., telement(xs:date("1996-06-01"), xs:date("1997-06-01")))] return $e/name`,
		`for $d in doc("employees.xml")/employees/employee/deptno[.="d01"] return $d`,
		`for $s in doc("employees.xml")/employees/employee/salary[. > 56000] return $s`,
	}
	for _, q := range queries {
		f.crossValidate(t, q)
	}
}

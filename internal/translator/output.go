package translator

import (
	"fmt"
	"strings"

	"archis/internal/xquery"
)

// temporal aggregate functions mapped to engine aggregates (the
// paper's OLAP-function mapping, Section 5.4).
var temporalAggs = map[string]string{
	"tavg": "TAVG", "tsum": "TSUM", "tcount": "TCOUNT",
	"tmax": "TMAXAGG", "tmin": "TMINAGG",
}

// translateReturn produces the SELECT expression for the return
// clause. groupEnt is the entity whose id drives GROUP BY when the
// whole FLWOR is wrapped in an aggregating element; aggregated is true
// when the expression itself is an SQL aggregate.
func (g *gen) translateReturn(e xquery.Expr) (sel string, groupEnt *entityInfo, aggregated bool, err error) {
	switch x := e.(type) {
	case *xquery.VarRef, *xquery.ContextItem, *xquery.Path:
		v, err := g.resolveToVar(e, nil)
		if err != nil {
			return "", nil, false, err
		}
		if v.kind == kindEntity {
			return "", nil, false, unsupported("returning a whole entity element")
		}
		sel, err := g.xmlForAttr(v)
		return sel, v.ent, false, err

	case *xquery.FuncCall:
		if agg, ok := temporalAggs[x.Name]; ok {
			if len(x.Args) != 1 {
				return "", nil, false, unsupported("%s arity", x.Name)
			}
			v, err := g.resolveToVar(x.Args[0], nil)
			if err != nil {
				return "", nil, false, err
			}
			if v.kind != kindAttr {
				return "", nil, false, unsupported("%s over non-attribute", x.Name)
			}
			return fmt.Sprintf("%s(%s.%s, %s.tstart, %s.tend)",
				agg, v.alias, v.attr, v.alias, v.alias), v.ent, true, nil
		}
		if x.Name == "count" && len(x.Args) == 1 {
			if _, err := g.resolveToVar(x.Args[0], nil); err == nil {
				return "COUNT(*)", nil, true, nil
			}
		}
		if x.Name == "overlapinterval" && len(x.Args) == 2 {
			ts1, te1, _, err := g.intervalOf(x.Args[0], nil)
			if err != nil {
				return "", nil, false, err
			}
			ts2, te2, _, err := g.intervalOf(x.Args[1], nil)
			if err != nil {
				return "", nil, false, err
			}
			return fmt.Sprintf("OVERLAPINTERVAL(%s, %s, %s, %s)", ts1, te1, ts2, te2), nil, false, nil
		}
		s, err := g.translateScalar(x, nil)
		return s, nil, false, err

	case *xquery.DirectElement:
		return g.translateConstructor(x.Tag, directAttrs(x), directChildren(x))

	case *xquery.ComputedElement:
		var children []xquery.Expr
		if x.Content != nil {
			if seq, ok := x.Content.(*xquery.SeqExpr); ok {
				children = seq.Items
			} else {
				children = []xquery.Expr{x.Content}
			}
		}
		return g.translateConstructor(x.Tag, nil, children)

	case *xquery.SeqExpr:
		return "", nil, false, unsupported("sequence-valued return; wrap it in an element")
	}
	return "", nil, false, unsupported("return expression %T", e)
}

func directAttrs(x *xquery.DirectElement) []xquery.DirectAttr { return x.Attrs }

func directChildren(x *xquery.DirectElement) []xquery.Expr {
	var out []xquery.Expr
	for _, c := range x.Children {
		switch {
		case c.Elem != nil:
			out = append(out, c.Elem)
		case c.Expr != nil:
			if seq, ok := c.Expr.(*xquery.SeqExpr); ok {
				out = append(out, seq.Items...)
			} else {
				out = append(out, c.Expr)
			}
		default:
			out = append(out, &xquery.LiteralString{Value: c.Text})
		}
	}
	return out
}

// translateConstructor builds XMLElement(Name tag, attrs…, children…).
func (g *gen) translateConstructor(tag string, attrs []xquery.DirectAttr, children []xquery.Expr) (string, *entityInfo, bool, error) {
	var parts []string
	var attrParts []string
	for _, a := range attrs {
		if len(a.Parts) != 1 {
			return "", nil, false, unsupported("multi-part constructor attribute")
		}
		p := a.Parts[0]
		var val string
		switch {
		case p.Expr != nil:
			s, err := g.translateScalar(p.Expr, nil)
			if err != nil {
				return "", nil, false, err
			}
			val = s
		default:
			val = sqlString(p.Text)
		}
		attrParts = append(attrParts, fmt.Sprintf("%s AS %q", val, a.Name))
	}
	if len(attrParts) > 0 {
		parts = append(parts, "XMLAttributes("+strings.Join(attrParts, ", ")+")")
	}
	var groupEnt *entityInfo
	for _, c := range children {
		sel, ent, agg, err := g.translateReturn(c)
		if err != nil {
			return "", nil, false, err
		}
		if agg {
			return "", nil, false, unsupported("aggregate inside element constructor")
		}
		if groupEnt == nil {
			groupEnt = ent
		}
		parts = append(parts, sel)
	}
	return fmt.Sprintf("XMLElement(Name %q%s)", tag, prefixComma(parts)), groupEnt, false, nil
}

func prefixComma(parts []string) string {
	if len(parts) == 0 {
		return ""
	}
	return ", " + strings.Join(parts, ", ")
}

// xmlForAttr renders one attribute tuple variable as its H-view
// element (or as plain columns in table mode).
func (g *gen) xmlForAttr(v *varInfo) (string, error) {
	col := v.alias + "." + v.attr
	if g.tr.TableMode {
		return fmt.Sprintf("%s, %s.tstart, %s.tend", col, v.alias, v.alias), nil
	}
	return fmt.Sprintf(
		"XMLElement(Name %q, XMLAttributes(%s.tstart AS \"tstart\", %s.tend AS \"tend\"), %s)",
		v.attr, v.alias, v.alias, col), nil
}

package xmltree

import (
	"io"
	"strings"
)

// WriteOptions control serialization.
type WriteOptions struct {
	// Indent, when non-empty, pretty-prints with that unit (e.g. "  ").
	Indent string
}

// Write serializes the subtree rooted at n to w.
func Write(w io.Writer, n *Node, opts WriteOptions) error {
	sw := &stickyWriter{w: w}
	writeNode(sw, n, opts.Indent, 0)
	if opts.Indent != "" && n.IsElement() {
		sw.WriteString("\n")
	}
	return sw.err
}

// String serializes the subtree compactly.
func String(n *Node) string {
	var sb strings.Builder
	_ = Write(&sb, n, WriteOptions{})
	return sb.String()
}

// Pretty serializes the subtree with two-space indentation.
func Pretty(n *Node) string {
	var sb strings.Builder
	_ = Write(&sb, n, WriteOptions{Indent: "  "})
	return sb.String()
}

type stickyWriter struct {
	w   io.Writer
	err error
}

func (s *stickyWriter) WriteString(str string) {
	if s.err != nil {
		return
	}
	_, s.err = io.WriteString(s.w, str)
}

func writeNode(w *stickyWriter, n *Node, indent string, depth int) {
	if n.IsText() {
		w.WriteString(escapeText(n.Text))
		return
	}
	pad := ""
	if indent != "" {
		pad = strings.Repeat(indent, depth)
		if depth > 0 {
			w.WriteString("\n")
		}
		w.WriteString(pad)
	}
	w.WriteString("<")
	w.WriteString(n.Name)
	for _, a := range n.Attrs {
		w.WriteString(" ")
		w.WriteString(a.Name)
		w.WriteString(`="`)
		w.WriteString(escapeAttr(a.Value))
		w.WriteString(`"`)
	}
	if len(n.Children) == 0 {
		w.WriteString("/>")
		return
	}
	w.WriteString(">")
	// Mixed or text-only content must be rendered compactly: inserting
	// indentation whitespace would change the text value.
	hasText := false
	for _, c := range n.Children {
		if c.IsText() {
			hasText = true
			break
		}
	}
	for _, c := range n.Children {
		if hasText {
			writeNode(w, c, "", 0)
		} else {
			writeNode(w, c, indent, depth+1)
		}
	}
	if indent != "" && !hasText {
		w.WriteString("\n")
		w.WriteString(pad)
	}
	w.WriteString("</")
	w.WriteString(n.Name)
	w.WriteString(">")
}

var textEscaper = strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
var attrEscaper = strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")

func escapeText(s string) string { return textEscaper.Replace(s) }
func escapeAttr(s string) string { return attrEscaper.Replace(s) }

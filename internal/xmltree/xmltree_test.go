package xmltree

import (
	"math/rand"
	"strings"
	"testing"
)

func TestBuildAndAccess(t *testing.T) {
	emp := NewElement("employee").SetAttr("tstart", "1995-01-01").SetAttr("tend", "9999-12-31")
	name := NewElement("name")
	name.AppendText("Bob")
	emp.Append(name)

	if !emp.IsElement() || emp.IsText() {
		t.Error("element kind confusion")
	}
	if v, ok := emp.Attr("tstart"); !ok || v != "1995-01-01" {
		t.Errorf("Attr = %q, %v", v, ok)
	}
	if _, ok := emp.Attr("missing"); ok {
		t.Error("missing attribute reported present")
	}
	if emp.AttrOr("missing", "x") != "x" {
		t.Error("AttrOr default broken")
	}
	if got := emp.FirstChild("name").TextContent(); got != "Bob" {
		t.Errorf("TextContent = %q", got)
	}
	if name.Parent != emp {
		t.Error("parent pointer not set")
	}
}

func TestSetAttrReplaces(t *testing.T) {
	n := NewElement("e").SetAttr("a", "1").SetAttr("a", "2")
	if len(n.Attrs) != 1 || n.Attrs[0].Value != "2" {
		t.Errorf("SetAttr did not replace: %v", n.Attrs)
	}
}

func TestParseSimple(t *testing.T) {
	doc := `<employees>
  <employee tstart="1995-01-01" tend="9999-12-31">
    <id tstart="1995-01-01" tend="9999-12-31">1001</id>
    <name tstart="1995-01-01" tend="9999-12-31">Bob</name>
  </employee>
</employees>`
	root, err := ParseString(doc)
	if err != nil {
		t.Fatal(err)
	}
	if root.Name != "employees" {
		t.Fatalf("root = %s", root.Name)
	}
	emps := root.ChildElements("employee")
	if len(emps) != 1 {
		t.Fatalf("employees = %d", len(emps))
	}
	if got := emps[0].FirstChild("name").TextContent(); got != "Bob" {
		t.Errorf("name = %q", got)
	}
	if got, _ := emps[0].FirstChild("id").Attr("tend"); got != "9999-12-31" {
		t.Errorf("tend = %q", got)
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{"", "<a><b></a>", "<a/><b/>", "<a>"} {
		if _, err := ParseString(s); err == nil {
			t.Errorf("ParseString(%q): expected error", s)
		}
	}
}

func TestEscaping(t *testing.T) {
	n := NewElement("m").SetAttr("q", `a"b<c`)
	n.AppendText("x < y & z > w")
	s := String(n)
	back, err := ParseString(s)
	if err != nil {
		t.Fatalf("reparse %q: %v", s, err)
	}
	if !Equal(n, back) {
		t.Errorf("escape round trip failed: %q", s)
	}
}

func TestDescendants(t *testing.T) {
	root := MustParseString(`<a><b><c/><c/></b><c/><d><c/></d></a>`)
	if got := len(root.Descendants("c", nil)); got != 4 {
		t.Errorf("descendants c = %d", got)
	}
	if got := len(root.Descendants("", nil)); got != 7 {
		t.Errorf("all descendants = %d", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	orig := MustParseString(`<a x="1"><b>t</b></a>`)
	cl := orig.Clone()
	if !Equal(orig, cl) {
		t.Fatal("clone differs")
	}
	cl.SetAttr("x", "2")
	cl.FirstChild("b").Children[0].Text = "changed"
	if v, _ := orig.Attr("x"); v != "1" {
		t.Error("clone shares attrs")
	}
	if orig.FirstChild("b").TextContent() != "t" {
		t.Error("clone shares children")
	}
	if cl.Parent != nil {
		t.Error("clone parent should be nil")
	}
}

func TestEqualIgnoresAttrOrder(t *testing.T) {
	a := MustParseString(`<e x="1" y="2"/>`)
	b := MustParseString(`<e y="2" x="1"/>`)
	if !Equal(a, b) {
		t.Error("attribute order should not matter")
	}
	c := MustParseString(`<e x="1" y="3"/>`)
	if Equal(a, c) {
		t.Error("different attr values should differ")
	}
}

func TestPath(t *testing.T) {
	root := MustParseString(`<a><b><c/></b></a>`)
	c := root.FirstChild("b").FirstChild("c")
	if got := c.Path(); got != "/a/b/c" {
		t.Errorf("Path = %q", got)
	}
}

func TestPrettyStable(t *testing.T) {
	root := MustParseString(`<a><b>text</b><c k="v"/></a>`)
	p := Pretty(root)
	if !strings.Contains(p, "\n") {
		t.Errorf("Pretty not indented: %q", p)
	}
	back, err := ParseString(p)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(root, back) {
		t.Errorf("pretty round trip failed:\n%s", p)
	}
}

func randomTree(r *rand.Rand, depth int) *Node {
	names := []string{"a", "b", "c", "dept", "salary"}
	n := NewElement(names[r.Intn(len(names))])
	if r.Intn(2) == 0 {
		n.SetAttr("tstart", "1995-01-01")
	}
	if r.Intn(3) == 0 {
		n.SetAttr("k", `weird "value" <&>`)
	}
	kids := r.Intn(3)
	if depth <= 0 {
		kids = 0
	}
	for i := 0; i < kids; i++ {
		if r.Intn(4) == 0 {
			n.AppendText("txt&<>" + names[r.Intn(len(names))])
		} else {
			n.Append(randomTree(r, depth-1))
		}
	}
	if len(n.Children) == 0 && r.Intn(2) == 0 {
		n.AppendText("leaf")
	}
	return n
}

// Property: serialize → parse is the identity on random trees.
func TestSerializeParseRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 300; i++ {
		// Normalize first: adjacent text nodes are indistinguishable
		// from one merged node after a serialize/parse round trip.
		tree := randomTree(r, 4).Normalize()
		back, err := ParseString(String(tree))
		if err != nil {
			t.Fatalf("reparse: %v\n%s", err, String(tree))
		}
		if !Equal(tree, back) {
			t.Fatalf("round trip mismatch:\n%s\n%s", String(tree), String(back))
		}
		pback, err := ParseString(Pretty(tree))
		if err != nil {
			t.Fatalf("pretty reparse: %v", err)
		}
		// Pretty-printing may merge adjacent text nodes' handling of
		// whitespace; compare text-normalized structure.
		if !Equal(tree, pback) && strings.ReplaceAll(String(tree), " ", "") != strings.ReplaceAll(String(pback), " ", "") {
			t.Fatalf("pretty round trip mismatch:\n%s\n%s", String(tree), String(pback))
		}
	}
}

package xmltree

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// Parse reads an XML document from r and returns its root element.
// Whitespace-only text between elements is dropped; other text is
// preserved verbatim. Comments and processing instructions are ignored.
func Parse(r io.Reader) (*Node, error) {
	dec := xml.NewDecoder(r)
	var root *Node
	var stack []*Node
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmltree: parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			el := NewElement(flatName(t.Name))
			for _, a := range t.Attr {
				name := flatName(a.Name)
				if name == "xmlns" || strings.HasPrefix(name, "xmlns:") {
					continue
				}
				el.SetAttr(name, a.Value)
			}
			if len(stack) == 0 {
				if root != nil {
					return nil, fmt.Errorf("xmltree: parse: multiple root elements")
				}
				root = el
			} else {
				stack[len(stack)-1].Append(el)
			}
			stack = append(stack, el)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmltree: parse: unbalanced end element %s", t.Name.Local)
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			if len(stack) == 0 {
				continue
			}
			text := string(t)
			if strings.TrimSpace(text) == "" {
				continue
			}
			stack[len(stack)-1].AppendText(text)
		}
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("xmltree: parse: unclosed element %s", stack[len(stack)-1].Name)
	}
	if root == nil {
		return nil, fmt.Errorf("xmltree: parse: empty document")
	}
	return root, nil
}

// ParseString parses an XML document held in a string.
func ParseString(s string) (*Node, error) { return Parse(strings.NewReader(s)) }

// MustParseString is ParseString for literals known to be valid.
func MustParseString(s string) *Node {
	n, err := ParseString(s)
	if err != nil {
		panic(err)
	}
	return n
}

func flatName(n xml.Name) string {
	// encoding/xml resolves prefixes to namespace URIs in Name.Space.
	// H-documents don't use namespaces; if one slips in, keep the local
	// name so path matching stays predictable.
	return n.Local
}

// Package xmltree provides the lightweight XML document model used by
// ArchIS for H-documents (temporally grouped XML views of relational
// history), for query results, and for the native-XML-database
// baseline.
//
// The model is deliberately small: documents, elements with ordered
// attributes and children, and text nodes. Namespaces are not needed by
// H-documents and are treated as plain prefixed names.
package xmltree

import (
	"fmt"
	"sort"
	"strings"
)

// Attr is a single name="value" attribute.
type Attr struct {
	Name  string
	Value string
}

// Node is an XML tree node: either an element (Name != "") or a text
// node (Name == "", Text holds the content). The Parent pointer is
// maintained by the mutation helpers.
type Node struct {
	Name     string
	Attrs    []Attr
	Children []*Node
	Text     string
	Parent   *Node
}

// NewElement returns a childless element node.
func NewElement(name string) *Node { return &Node{Name: name} }

// NewText returns a text node.
func NewText(text string) *Node { return &Node{Text: text} }

// IsElement reports whether the node is an element.
func (n *Node) IsElement() bool { return n.Name != "" }

// IsText reports whether the node is a text node.
func (n *Node) IsText() bool { return n.Name == "" }

// SetAttr sets or replaces an attribute.
func (n *Node) SetAttr(name, value string) *Node {
	for i := range n.Attrs {
		if n.Attrs[i].Name == name {
			n.Attrs[i].Value = value
			return n
		}
	}
	n.Attrs = append(n.Attrs, Attr{Name: name, Value: value})
	return n
}

// Attr returns the value of the named attribute and whether it exists.
func (n *Node) Attr(name string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// AttrOr returns the named attribute or a default.
func (n *Node) AttrOr(name, def string) string {
	if v, ok := n.Attr(name); ok {
		return v
	}
	return def
}

// Append adds children, fixing their Parent pointers, and returns n.
func (n *Node) Append(children ...*Node) *Node {
	for _, c := range children {
		c.Parent = n
		n.Children = append(n.Children, c)
	}
	return n
}

// AppendText adds a text child.
func (n *Node) AppendText(text string) *Node { return n.Append(NewText(text)) }

// TextContent returns the concatenated text of the node and its
// descendants, the XPath string value of an element.
func (n *Node) TextContent() string {
	if n.IsText() {
		return n.Text
	}
	var sb strings.Builder
	var walk func(*Node)
	walk = func(m *Node) {
		if m.IsText() {
			sb.WriteString(m.Text)
			return
		}
		for _, c := range m.Children {
			walk(c)
		}
	}
	walk(n)
	return sb.String()
}

// ChildElements returns the element children, optionally filtered by
// name ("" matches all).
func (n *Node) ChildElements(name string) []*Node {
	var out []*Node
	for _, c := range n.Children {
		if c.IsElement() && (name == "" || c.Name == name) {
			out = append(out, c)
		}
	}
	return out
}

// FirstChild returns the first element child with the given name, or nil.
func (n *Node) FirstChild(name string) *Node {
	for _, c := range n.Children {
		if c.IsElement() && c.Name == name {
			return c
		}
	}
	return nil
}

// Descendants appends to out every element in document order whose
// name matches ("" matches all), including n itself.
func (n *Node) Descendants(name string, out []*Node) []*Node {
	if n.IsElement() && (name == "" || n.Name == name) {
		out = append(out, n)
	}
	for _, c := range n.Children {
		if c.IsElement() {
			out = c.Descendants(name, out)
		}
	}
	return out
}

// Clone deep-copies the subtree. The clone's Parent is nil.
func (n *Node) Clone() *Node {
	c := &Node{Name: n.Name, Text: n.Text}
	if len(n.Attrs) > 0 {
		c.Attrs = make([]Attr, len(n.Attrs))
		copy(c.Attrs, n.Attrs)
	}
	for _, child := range n.Children {
		c.Append(child.Clone())
	}
	return c
}

// Equal reports deep structural equality, ignoring Parent pointers and
// attribute order.
func Equal(a, b *Node) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Name != b.Name || a.Text != b.Text || len(a.Attrs) != len(b.Attrs) || len(a.Children) != len(b.Children) {
		return false
	}
	sortedAttrs := func(n *Node) []Attr {
		s := make([]Attr, len(n.Attrs))
		copy(s, n.Attrs)
		sort.Slice(s, func(i, j int) bool { return s[i].Name < s[j].Name })
		return s
	}
	sa, sb := sortedAttrs(a), sortedAttrs(b)
	for i := range sa {
		if sa[i] != sb[i] {
			return false
		}
	}
	for i := range a.Children {
		if !Equal(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

// Normalize merges adjacent text-node children throughout the subtree
// and drops empty text nodes, matching what a serialize/parse round
// trip produces. It returns n.
func (n *Node) Normalize() *Node {
	out := n.Children[:0]
	for _, c := range n.Children {
		if c.IsText() {
			if c.Text == "" {
				continue
			}
			if len(out) > 0 && out[len(out)-1].IsText() {
				out[len(out)-1].Text += c.Text
				continue
			}
			out = append(out, c)
			continue
		}
		out = append(out, c.Normalize())
	}
	n.Children = out
	return n
}

// Path returns a /-separated element path from the root to n,
// for diagnostics.
func (n *Node) Path() string {
	var parts []string
	for m := n; m != nil; m = m.Parent {
		if m.IsElement() {
			parts = append(parts, m.Name)
		}
	}
	for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
		parts[i], parts[j] = parts[j], parts[i]
	}
	return "/" + strings.Join(parts, "/")
}

// GoString aids test failure messages.
func (n *Node) GoString() string {
	if n == nil {
		return "<nil>"
	}
	return fmt.Sprintf("xmltree.Node(%s)", n.Path())
}

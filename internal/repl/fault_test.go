package repl

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"archis/internal/core"
	"archis/internal/dataset"
	"archis/internal/temporal"
	"archis/internal/wal"
)

// Replication fault injection: a follower killed at a frame boundary
// with a torn local tail must recover exactly its durable prefix and
// resume the stream without re-applying or skipping a record; a
// primary checkpoint must never delete a segment a registered
// follower has not pulled.

func newFaultPrimary(t *testing.T, stmts int, opts core.Options) (*core.System, *Primary, *httptest.Server) {
	t.Helper()
	opts.WALDir = t.TempDir()
	sys, err := core.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	if err := sys.Register(dataset.EmployeeSpec()); err != nil {
		t.Fatal(err)
	}
	runPrimaryStatements(t, sys, 0, stmts)
	p, err := NewPrimary(sys)
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	p.Attach(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return sys, p, srv
}

// runPrimaryStatements executes statements [from, to) of a fixed
// deterministic workload and leaves the tail durable.
func runPrimaryStatements(t *testing.T, sys *core.System, from, to int) {
	t.Helper()
	clock := temporal.MustParseDate("1995-01-01")
	for i := from; i < to; i++ {
		sys.SetClock(clock.AddDays(i))
		var stmt string
		if i%3 == 0 {
			stmt = fmt.Sprintf("insert into employee values (%d, 'e%d', %d, 'Engineer', 'd01')", 1000+i, i, 40000+i)
		} else {
			stmt = fmt.Sprintf("update employee set salary = salary + %d where id = %d", i, 1000+(i/3)*3)
		}
		if _, err := sys.ExecDurable(stmt); err != nil {
			t.Fatalf("stmt %d (%s): %v", i, stmt, err)
		}
	}
	if err := sys.SyncWAL(); err != nil {
		t.Fatal(err)
	}
}

func empState(t *testing.T, s *core.System) string {
	t.Helper()
	cur, err := s.Exec("select id, name, salary, title, deptno from employee order by id")
	if err != nil {
		t.Fatalf("current state: %v", err)
	}
	hist, err := s.Exec("select count(*) from employee_salary")
	if err != nil {
		t.Fatalf("history state: %v", err)
	}
	return fmt.Sprintf("%v|%v", cur.Rows, hist.Rows)
}

func TestFollowerTornTailResume(t *testing.T) {
	prim, _, srv := newFaultPrimary(t, 30, core.Options{})

	// The follower's local log lives on a fault FS that will lose
	// everything unsynced except a partial (torn) frame.
	ffs := wal.NewFaultFS()
	ffs.TornTailBytes = 13
	fdir := t.TempDir()
	f, err := Bootstrap(srv.URL, fdir, FollowerOptions{
		Recover:      core.RecoverOptions{FS: ffs},
		MaxPullBytes: 256, // several records per pull, several pulls to drain
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Apply a couple of bounded pulls, make that prefix locally
	// durable, then pull once more without syncing: the crash below
	// tears the unsynced tail mid-frame.
	for i := 0; i < 2; i++ {
		if n, err := f.PullOnce(ctx); err != nil || n == 0 {
			t.Fatalf("pull %d: applied %d, err %v", i, n, err)
		}
	}
	if err := f.Sys.SyncWAL(); err != nil {
		t.Fatal(err)
	}
	durablePrefix := f.Sys.AppliedLSN()
	if n, err := f.PullOnce(ctx); err != nil || n == 0 {
		t.Fatalf("post-sync pull: applied %d, err %v", n, err)
	}
	if f.Sys.AppliedLSN() <= durablePrefix {
		t.Fatalf("crash setup did not advance past the durable prefix (%d)", durablePrefix)
	}

	// Power cut: PullOnce returned, so the applier died at an exact
	// record boundary; the local log keeps its synced image plus a
	// torn 13-byte fragment of the next frame.
	surv := ffs.Survivor()
	if err := f.Sys.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart on the same directory: the local snapshot is reused, the
	// surviving log prefix is replayed, the torn fragment is cut.
	re, err := Bootstrap(srv.URL, fdir, FollowerOptions{Recover: core.RecoverOptions{FS: surv}})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Sys.Close()
	if got := re.Sys.AppliedLSN(); got != durablePrefix {
		t.Fatalf("restart recovered to lsn %d, want the durable prefix %d", got, durablePrefix)
	}

	// Resume: ApplyReplicated's sequence check inside PullOnce proves
	// nothing is re-applied or skipped while catching back up.
	for re.Sys.AppliedLSN() < prim.Stats().WALAppendedLSN {
		if _, err := re.PullOnce(ctx); err != nil {
			t.Fatalf("resume pull at lsn %d: %v", re.Sys.AppliedLSN(), err)
		}
	}
	if got, want := empState(t, re.Sys), empState(t, prim); got != want {
		t.Errorf("restarted follower diverged:\n follower: %s\n primary:  %s", got, want)
	}
}

// rawPull issues a pull request outside the Follower machinery.
func rawPull(t *testing.T, base, id string, from, ack uint64) (int, []byte) {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/repl/pull?id=%s&from=%d&ack=%d", base, id, from, ack))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// countFrames decodes a pull body and returns the record count,
// asserting the LSNs are dense starting at from.
func countFrames(t *testing.T, body []byte, from uint64) int {
	t.Helper()
	n := 0
	next := from
	for len(body) > 0 {
		lsn, _, adv, ok := wal.DecodeFrame(body)
		if !ok {
			t.Fatalf("torn frame after %d records", n)
		}
		if lsn != next {
			t.Fatalf("frame %d has lsn %d, want %d", n, lsn, next)
		}
		body = body[adv:]
		next++
		n++
	}
	return n
}

func TestCheckpointRetainsUnpulledSegments(t *testing.T) {
	// Tiny segments so the workload spans many files — a premature
	// truncate would actually delete record-bearing segments.
	prim, p, srv := newFaultPrimary(t, 12, core.Options{WALSegmentBytes: 256})

	// A follower registers but pulls nothing yet.
	resp, err := http.Post(srv.URL+"/repl/register", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var reg registerReply
	if err := json.NewDecoder(resp.Body).Decode(&reg); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if n, min := p.Followers(); n != 1 || min != reg.SnapshotLSN {
		t.Fatalf("after register: %d followers, floor %d, want 1 at %d", n, min, reg.SnapshotLSN)
	}

	// The primary keeps writing and checkpoints. Without the retention
	// floor this truncates every shipped-and-unshipped record.
	runPrimaryStatements(t, prim, 12, 24)
	tail := prim.Stats().WALAppendedLSN
	if err := prim.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// Every record past the follower's floor must still be pullable.
	code, body := rawPull(t, srv.URL, reg.ID, reg.SnapshotLSN+1, reg.SnapshotLSN)
	if code != http.StatusOK {
		t.Fatalf("pull after checkpoint: status %d (%s)", code, body)
	}
	if got, want := countFrames(t, body, reg.SnapshotLSN+1), int(tail-reg.SnapshotLSN); got != want {
		t.Fatalf("pull returned %d records, want %d", got, want)
	}

	// The follower acks everything; the next checkpoint may truncate.
	if code, _ := rawPull(t, srv.URL, reg.ID, tail+1, tail); code != http.StatusOK {
		t.Fatalf("ack pull: status %d", code)
	}
	runPrimaryStatements(t, prim, 24, 26)
	if err := prim.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if code, body := rawPull(t, srv.URL, reg.ID, reg.SnapshotLSN+1, tail); code != http.StatusGone {
		t.Fatalf("pull from truncated position: status %d (%s), want 410", code, body)
	}

	// Unknown followers get no guarantee — they must re-register.
	if code, _ := rawPull(t, srv.URL, "f999", 1, 0); code != http.StatusNotFound {
		t.Fatalf("unknown follower pull: status %d, want 404", code)
	}
}

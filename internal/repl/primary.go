// Package repl ships the write-ahead log from a primary System to
// read-only followers over HTTP (DESIGN.md §15). The wire format for
// records is the WAL's own CRC frame encoding — a pull response body
// is byte-compatible with a segment-file tail — so both ends reuse
// one codec and every shipped record is integrity-checked twice: once
// by the transport framing, once when the follower's local log
// re-appends it.
//
// Protocol (all under /repl/ on the primary):
//
//	POST /repl/register        → {"id": F, "snapshot_lsn": S}
//	GET  /repl/snapshot        → snapshot file bytes (X-Archis-Snapshot-LSN)
//	GET  /repl/pull?id=F&from=N&ack=A&max=B
//	                           → concatenated frames, LSNs N.. (X-Archis-Durable-LSN)
//
// Registration pins the log's retention floor at the current
// checkpoint LSN *before* the follower fetches the snapshot, closing
// the race where a checkpoint between snapshot download and first
// pull truncates the records the follower needs next. Each pull's ack
// advances that follower's floor; the log never drops a record past
// the minimum acked LSN across registered followers.
package repl

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"

	"archis/internal/core"
	"archis/internal/wal"
)

// DefaultMaxPullBytes bounds one pull response body.
const DefaultMaxPullBytes = 1 << 20

// Primary tracks registered followers and serves snapshot and log
// pulls for one durable System.
type Primary struct {
	sys *core.System

	mu        sync.Mutex
	followers map[string]uint64 // follower id → highest acked LSN
	nextID    int
}

// NewPrimary wires a shipper onto a durable system and installs the
// follower-aware retention floor on its log.
func NewPrimary(sys *core.System) (*Primary, error) {
	if !sys.Durable() {
		return nil, fmt.Errorf("repl: primary requires a durable system (WALDir)")
	}
	p := &Primary{sys: sys, followers: map[string]uint64{}}
	sys.SetWALRetention(p.minAcked)
	return p, nil
}

// minAcked is the retention floor: the lowest acked LSN across
// registered followers. With none registered, truncation is
// unconstrained.
func (p *Primary) minAcked() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	min := ^uint64(0)
	for _, acked := range p.followers {
		if acked < min {
			min = acked
		}
	}
	return min
}

// Followers returns the registered follower count and the minimum
// acked LSN (^0 when none).
func (p *Primary) Followers() (int, uint64) {
	p.mu.Lock()
	n := len(p.followers)
	p.mu.Unlock()
	return n, p.minAcked()
}

// Attach registers the replication endpoints on mux.
func (p *Primary) Attach(mux *http.ServeMux) {
	mux.HandleFunc("/repl/register", p.handleRegister)
	mux.HandleFunc("/repl/snapshot", p.handleSnapshot)
	mux.HandleFunc("/repl/pull", p.handlePull)
}

// registerReply is the register response body.
type registerReply struct {
	ID          string `json:"id"`
	SnapshotLSN uint64 `json:"snapshot_lsn"`
}

func (p *Primary) handleRegister(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	// Pin retention at the checkpoint the follower will bootstrap
	// from, before it downloads anything: a checkpoint racing the
	// snapshot fetch can only move the snapshot forward, never drop
	// the records past the pinned floor.
	snapLSN := p.sys.CheckpointLSN()
	p.mu.Lock()
	p.nextID++
	id := fmt.Sprintf("f%d", p.nextID)
	p.followers[id] = snapLSN
	p.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(registerReply{ID: id, SnapshotLSN: snapLSN})
}

func (p *Primary) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	path := filepath.Join(p.sys.WALDirPath(), core.SnapshotFile)
	// The snapshot is replaced atomically by rename, so a plain read
	// always sees one complete checkpoint. The header is advisory —
	// the follower trusts the LSN recorded inside the file.
	data, err := os.ReadFile(path)
	if err != nil {
		http.Error(w, fmt.Sprintf("snapshot: %v", err), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Archis-Snapshot-LSN", strconv.FormatUint(p.sys.CheckpointLSN(), 10))
	w.Write(data)
}

func (p *Primary) handlePull(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	id := q.Get("id")
	from, err := strconv.ParseUint(q.Get("from"), 10, 64)
	if err != nil || from == 0 {
		http.Error(w, "bad from", http.StatusBadRequest)
		return
	}
	maxBytes := DefaultMaxPullBytes
	if v, err := strconv.Atoi(q.Get("max")); err == nil && v > 0 {
		maxBytes = v
	}
	p.mu.Lock()
	acked, known := p.followers[id]
	if known {
		if v, err := strconv.ParseUint(q.Get("ack"), 10, 64); err == nil && v > acked {
			p.followers[id] = v
		}
	}
	p.mu.Unlock()
	if !known {
		// Unknown followers get no retention guarantee; make them
		// re-register rather than read a log that may truncate under
		// them.
		http.Error(w, "unknown follower id; re-register", http.StatusNotFound)
		return
	}

	// Ship only durable records: an unsynced tail could still be lost
	// in a primary crash, and a follower must never be ahead of what
	// the primary guarantees to keep.
	durable := p.sys.WAL().DurableLSN()
	var body []byte
	next := from
	errStop := fmt.Errorf("pull window full")
	rerr := p.sys.WAL().Range(from, func(lsn uint64, payload []byte) error {
		if lsn > durable || len(body) >= maxBytes {
			return errStop
		}
		if lsn != next {
			return fmt.Errorf("log starts at %d, not %d", lsn, from)
		}
		next = lsn + 1
		body = wal.EncodeFrame(body, lsn, payload)
		return nil
	})
	if rerr != nil && rerr != errStop {
		// The requested position predates retention (possible only for
		// followers that stopped acking and were manually dropped) or
		// the log is damaged; either way this follower must rebootstrap.
		http.Error(w, fmt.Sprintf("pull from %d: %v", from, rerr), http.StatusGone)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Archis-Durable-LSN", strconv.FormatUint(durable, 10))
	w.Write(body)
}

package repl

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"archis/internal/bench"
	"archis/internal/core"
	"archis/internal/dataset"
)

// The replica differential: a follower bootstrapped over HTTP and fed
// the live WAL stream must answer every benchmark query identically
// to the primary — at the current state and at any shipped
// point-in-time LSN — on all three storage layouts.

func diffConfig() dataset.Config {
	return dataset.Config{
		Employees:         48,
		Years:             2,
		Departments:       4,
		Seed:              7,
		MonthlyUpdateFrac: 0.25,
		TurnoverFrac:      0.05,
	}
}

// startPrimary checkpoints (so the snapshot covers the generated
// history) and serves the replication endpoints.
func startPrimary(t *testing.T, sys *core.System) (*Primary, *httptest.Server) {
	t.Helper()
	if err := sys.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	p, err := NewPrimary(sys)
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	p.Attach(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return p, srv
}

func waitCaughtUp(t *testing.T, f *Follower, target uint64) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for f.Sys.AppliedLSN() < target {
		if err := f.Err(); err != nil {
			t.Fatalf("follower stopped: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower stuck at lsn %d, want %d", f.Sys.AppliedLSN(), target)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestFollowerDifferential(t *testing.T) {
	cases := []struct {
		name string
		opts bench.Options
	}{
		{"plain", bench.Options{Layout: core.LayoutPlain}},
		{"clustered", bench.Options{Layout: core.LayoutClustered}},
		{"compressed", bench.Options{Layout: core.LayoutCompressed, Compress: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := tc.opts
			opts.WALDir = t.TempDir()
			env, err := bench.Build(diffConfig(), opts)
			if err != nil {
				t.Fatal(err)
			}
			defer env.Sys.Close()
			_, srv := startPrimary(t, env.Sys)

			f, err := Bootstrap(srv.URL, t.TempDir(), FollowerOptions{PollInterval: time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			defer f.Sys.Close()
			// Q6's UDA lives in the bench env, not the snapshot.
			bench.RegisterMaxRaise(f.Sys.Engine)

			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			runDone := make(chan error, 1)
			go func() { runDone <- f.Run(ctx) }()

			// Live mixed-style ingest while the follower is pulling.
			clock := env.Sys.Clock()
			if _, err := env.Sys.ExecDurable(
				"insert into employee values (999001, 'live', 50000, 'Engineer', 'd01')"); err != nil {
				t.Fatal(err)
			}
			var samples []uint64
			for i := 0; i < 12; i++ {
				env.Sys.SetClock(clock.AddDays(i + 1))
				if _, err := env.Sys.ExecDurable(
					"update employee set salary = salary + 7 where id = 999001"); err != nil {
					t.Fatal(err)
				}
				samples = append(samples, env.Sys.Stats().WALAppendedLSN)
			}
			if err := env.Sys.SyncWAL(); err != nil {
				t.Fatal(err)
			}
			waitCaughtUp(t, f, env.Sys.Stats().WALAppendedLSN)
			if lsns, _ := f.Lag(); lsns != 0 {
				t.Errorf("lag = %d lsns after catch-up, want 0", lsns)
			}

			// The full Table 3 suite plus probes every live update moves.
			var queries []string
			for _, q := range bench.AllQueries {
				queries = append(queries, env.SQL(q))
			}
			queries = append(queries,
				"select count(*), sum(S.salary) from employee_salary S",
				"select id, name, salary, title, deptno from employee order by id")
			for _, sql := range queries {
				for _, lsn := range samples {
					pres, perr := env.Sys.ReadAsOf(lsn, sql)
					fres, ferr := f.Sys.ReadAsOf(lsn, sql)
					if perr != nil || ferr != nil {
						t.Fatalf("ReadAsOf(%d, %q): primary err %v, follower err %v", lsn, sql, perr, ferr)
					}
					pg, fg := fmt.Sprintf("%v", pres.Rows), fmt.Sprintf("%v", fres.Rows)
					if pg != fg {
						t.Errorf("ReadAsOf(%d, %q) diverged:\n primary:  %s\n follower: %s", lsn, sql, pg, fg)
					}
				}
			}

			// DML belongs on the primary.
			if _, err := f.Sys.Exec("insert into employee values (1, 'x', 1, 't', 'd01')"); !errors.Is(err, core.ErrReadOnly) {
				t.Errorf("follower accepted DML: %v", err)
			}

			cancel()
			if err := <-runDone; err != nil {
				t.Fatalf("follower run loop: %v", err)
			}
		})
	}
}

package repl

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strconv"
	"sync/atomic"
	"time"

	"archis/internal/core"
	"archis/internal/wal"
)

// DefaultPollInterval is how long a caught-up follower waits before
// asking the primary for more log.
const DefaultPollInterval = 25 * time.Millisecond

// FollowerOptions tune Bootstrap and the apply loop.
type FollowerOptions struct {
	// Recover configures the local replica system (sync policy, fault
	// FS, segment size). Replica is forced on.
	Recover core.RecoverOptions
	// PollInterval between pulls when caught up (DefaultPollInterval
	// if zero).
	PollInterval time.Duration
	// MaxPullBytes per pull request (DefaultMaxPullBytes if zero).
	MaxPullBytes int
	// Client overrides the HTTP client (nil uses a 10s-timeout one).
	Client *http.Client
}

// Follower is a read-only replica: a local System bootstrapped from a
// primary snapshot, advanced by continuously pulling and applying WAL
// records. Reads (including ReadAsOf) are served from the local
// system; DML is rejected by the system itself.
type Follower struct {
	Sys *core.System

	primary string
	id      string
	client  *http.Client
	poll    time.Duration
	maxPull int

	primaryDurable atomic.Uint64 // from the last pull's header
	behindSince    atomic.Int64  // unix nanos when lag became non-zero; 0 = caught up
	applyErr       atomic.Value  // error that stopped the loop, if any
}

// Bootstrap registers with the primary, downloads its snapshot when
// dir does not already hold one (a restarted follower reuses its
// local copy and replays its local log tail first), and opens the
// local replica system. The registration happens before the snapshot
// fetch — see the package comment for why that order is load-bearing.
func Bootstrap(primaryURL, dir string, opts FollowerOptions) (*Follower, error) {
	client := opts.Client
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	f := &Follower{
		primary: primaryURL,
		client:  client,
		poll:    opts.PollInterval,
		maxPull: opts.MaxPullBytes,
	}
	if f.poll <= 0 {
		f.poll = DefaultPollInterval
	}
	if f.maxPull <= 0 {
		f.maxPull = DefaultMaxPullBytes
	}

	resp, err := client.Post(primaryURL+"/repl/register", "application/json", nil)
	if err != nil {
		return nil, fmt.Errorf("repl: register: %w", err)
	}
	var reg registerReply
	err = json.NewDecoder(resp.Body).Decode(&reg)
	resp.Body.Close()
	if err != nil {
		return nil, fmt.Errorf("repl: register: %w", err)
	}
	f.id = reg.ID

	snapPath := filepath.Join(dir, core.SnapshotFile)
	if _, err := os.Stat(snapPath); err != nil {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("repl: bootstrap: %w", err)
		}
		if err := f.fetchSnapshot(snapPath); err != nil {
			return nil, err
		}
	}

	ropts := opts.Recover
	ropts.Replica = true
	sys, err := core.RecoverWithOptions(dir, ropts)
	if err != nil {
		return nil, fmt.Errorf("repl: bootstrap %s: %w", dir, err)
	}
	f.Sys = sys
	r := sys.Metrics()
	r.GaugeFunc("repl.lag_lsns", func() int64 {
		d, a := f.primaryDurable.Load(), sys.AppliedLSN()
		if a >= d {
			return 0
		}
		return int64(d - a)
	})
	r.GaugeFunc("repl.lag_ns", func() int64 { return f.lagNanos() })
	return f, nil
}

// fetchSnapshot downloads the primary snapshot to path, atomically.
func (f *Follower) fetchSnapshot(path string) error {
	resp, err := f.client.Get(f.primary + "/repl/snapshot")
	if err != nil {
		return fmt.Errorf("repl: snapshot: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("repl: snapshot: %s", resp.Status)
	}
	tmp := path + ".tmp"
	g, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := io.Copy(g, resp.Body); err != nil {
		g.Close()
		return fmt.Errorf("repl: snapshot: %w", err)
	}
	if err := g.Sync(); err != nil {
		g.Close()
		return err
	}
	if err := g.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Run pulls and applies log records until ctx is cancelled. Transport
// errors are retried after the poll interval (the primary may be
// restarting); apply errors are fatal — they mean the local state
// can no longer be trusted to match the stream.
func (f *Follower) Run(ctx context.Context) error {
	for {
		n, err := f.PullOnce(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			if _, fatal := err.(*applyError); fatal {
				f.applyErr.Store(err)
				return err
			}
			// Transient transport failure: back off one interval.
			n = 0
		}
		if n == 0 {
			select {
			case <-ctx.Done():
				return nil
			case <-time.After(f.poll):
			}
		}
	}
}

// applyError marks a fatal divergence between stream and local state.
type applyError struct{ err error }

func (e *applyError) Error() string { return e.err.Error() }
func (e *applyError) Unwrap() error { return e.err }

// PullOnce performs one pull round-trip and applies every shipped
// record, returning how many were applied. Exposed for tests and for
// crash-harness style drivers that stop the applier at exact record
// boundaries.
func (f *Follower) PullOnce(ctx context.Context) (int, error) {
	applied := f.Sys.AppliedLSN()
	u := fmt.Sprintf("%s/repl/pull?%s", f.primary, url.Values{
		"id":   {f.id},
		"from": {strconv.FormatUint(applied+1, 10)},
		"ack":  {strconv.FormatUint(applied, 10)},
		"max":  {strconv.Itoa(f.maxPull)},
	}.Encode())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return 0, err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return 0, fmt.Errorf("repl: pull: %w", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return 0, fmt.Errorf("repl: pull: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("repl: pull: %s: %s", resp.Status, body)
	}
	if d, err := strconv.ParseUint(resp.Header.Get("X-Archis-Durable-LSN"), 10, 64); err == nil {
		f.primaryDurable.Store(d)
	}

	n := 0
	for len(body) > 0 {
		lsn, payload, adv, ok := wal.DecodeFrame(body)
		if !ok {
			return n, &applyError{fmt.Errorf("repl: pull: torn frame after %d records", n)}
		}
		if err := f.Sys.ApplyReplicated(lsn, payload); err != nil {
			return n, &applyError{err}
		}
		body = body[adv:]
		n++
	}
	f.noteProgress()
	return n, nil
}

// noteProgress updates the lag clock after a pull: caught up resets
// it, falling behind starts it.
func (f *Follower) noteProgress() {
	if f.Sys.AppliedLSN() >= f.primaryDurable.Load() {
		f.behindSince.Store(0)
	} else if f.behindSince.Load() == 0 {
		f.behindSince.Store(time.Now().UnixNano())
	}
}

func (f *Follower) lagNanos() int64 {
	b := f.behindSince.Load()
	if b == 0 {
		return 0
	}
	return time.Since(time.Unix(0, b)).Nanoseconds()
}

// Lag reports the follower's replication lag: LSN delta behind the
// primary's durable position and how long it has been behind.
func (f *Follower) Lag() (lsns uint64, behind time.Duration) {
	d, a := f.primaryDurable.Load(), f.Sys.AppliedLSN()
	if d > a {
		lsns = d - a
	}
	return lsns, time.Duration(f.lagNanos())
}

// Err returns the fatal apply error that stopped Run, if any.
func (f *Follower) Err() error {
	if v := f.applyErr.Load(); v != nil {
		return v.(error)
	}
	return nil
}

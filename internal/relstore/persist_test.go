package relstore

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"

	"archis/internal/temporal"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	db, tbl := newTestTable(t)
	var rids []RID
	for i := 0; i < 2000; i++ {
		// Clustered ids so per-page zone maps can prune.
		rids = append(rids, mustInsert(t, tbl, salaryRow(int64(i/20), int64(40000+i), "1990-01-01", "9999-12-31")))
	}
	// Exercise tombstones and in-place updates too.
	for i := 0; i < 50; i++ {
		if err := tbl.Delete(rids[i*3]); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.Update(rids[1], salaryRow(1, 999999, "1991-01-01", "1992-01-01")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateIndex("ix_id", "employee_salary", "id"); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := db.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	db2, err := ReadDatabase(&buf)
	if err != nil {
		t.Fatal(err)
	}
	tbl2, ok := db2.Table("employee_salary")
	if !ok {
		t.Fatal("table missing after load")
	}
	if tbl2.LiveRows() != tbl.LiveRows() {
		t.Errorf("LiveRows %d vs %d", tbl2.LiveRows(), tbl.LiveRows())
	}
	if tbl2.Schema().String() != tbl.Schema().String() {
		t.Errorf("schema %s vs %s", tbl2.Schema(), tbl.Schema())
	}
	// Content identical (scan order preserved).
	var a, b []string
	collect := func(tt *Table, out *[]string) {
		_ = tt.Scan(nil, func(_ RID, row Row) bool {
			*out = append(*out, row.String())
			return true
		})
	}
	collect(tbl, &a)
	collect(tbl2, &b)
	if len(a) != len(b) {
		t.Fatalf("row counts %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs: %s vs %s", i, a[i], b[i])
		}
	}
	// Index rebuilt and functional.
	ix := tbl2.IndexOn(0)
	if ix == nil {
		t.Fatal("index missing after load")
	}
	found := ix.Lookup([]Value{Int(7)})
	want := 0
	_ = tbl.Scan(nil, func(_ RID, row Row) bool {
		if row[0].I == 7 {
			want++
		}
		return true
	})
	if len(found) != want {
		t.Errorf("index lookup = %d rids, want %d", len(found), want)
	}
	// Zone maps survive: a pruned scan skips pages.
	db2.DropCaches()
	db2.ResetStats()
	_ = tbl2.Scan([]ZoneBound{{Col: 0, Op: "=", Bound: 7}}, func(RID, Row) bool { return true })
	if db2.Stats().PagesSkipped == 0 {
		t.Error("zone maps lost in round trip")
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "test.db")
	db, tbl := newTestTable(t)
	mustInsert(t, tbl, salaryRow(1, 100, "2000-01-01", "9999-12-31"))
	if err := db.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	db2, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	t2, _ := db2.Table("employee_salary")
	if t2.LiveRows() != 1 {
		t.Errorf("rows = %d", t2.LiveRows())
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.db")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := ReadDatabase(bytes.NewReader([]byte("not a database"))); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadDatabase(bytes.NewReader([]byte(dbMagic))); err == nil {
		t.Error("truncated header accepted")
	}
	// Valid magic + absurd table count.
	buf := append([]byte(dbMagic), 0xff, 0xff, 0xff, 0xff)
	if _, err := ReadDatabase(bytes.NewReader(buf)); err == nil {
		t.Error("absurd table count accepted")
	}
}

// Property: random databases round-trip.
func TestSaveLoadProperty(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 10; trial++ {
		db := NewDatabase()
		nTables := 1 + r.Intn(3)
		for ti := 0; ti < nTables; ti++ {
			name := string(rune('a' + ti))
			tbl, err := db.CreateTable(NewSchema(name,
				Col("k", TypeInt), Col("s", TypeString), Col("f", TypeFloat),
				Col("d", TypeDate), Col("b", TypeBytes)))
			if err != nil {
				t.Fatal(err)
			}
			n := r.Intn(800)
			for i := 0; i < n; i++ {
				blob := make([]byte, r.Intn(50))
				r.Read(blob)
				row := Row{
					Int(r.Int63n(1000)),
					String_(randString(r)),
					Float(r.NormFloat64()),
					DateV(temporal.Date(r.Intn(30000))),
					Bytes(blob),
				}
				if r.Intn(10) == 0 {
					row[1] = Null
				}
				if _, err := tbl.Insert(row); err != nil {
					t.Fatal(err)
				}
			}
			if r.Intn(2) == 0 {
				tbl.Flush()
			}
		}
		var buf bytes.Buffer
		if err := db.Serialize(&buf); err != nil {
			t.Fatal(err)
		}
		db2, err := ReadDatabase(&buf)
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range db.TableNames() {
			t1, _ := db.Table(name)
			t2, ok := db2.Table(name)
			if !ok {
				t.Fatalf("table %s lost", name)
			}
			var a, b []string
			_ = t1.Scan(nil, func(_ RID, row Row) bool { a = append(a, row.String()); return true })
			_ = t2.Scan(nil, func(_ RID, row Row) bool { b = append(b, row.String()); return true })
			if len(a) != len(b) {
				t.Fatalf("trial %d table %s: %d vs %d rows", trial, name, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("trial %d table %s row %d: %q vs %q", trial, name, i, a[i], b[i])
				}
			}
		}
	}
}

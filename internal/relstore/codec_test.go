package relstore

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"archis/internal/temporal"
	"archis/internal/xmltree"
)

func TestValueCodecRoundTrip(t *testing.T) {
	vals := []Value{
		Null,
		Int(0), Int(42), Int(-7), Int(math.MaxInt64), Int(math.MinInt64),
		Float(0), Float(3.25), Float(-1e300), Float(math.Inf(1)),
		String_(""), String_("Bob"), String_("naïve ünïcode 中文"),
		DateV(temporal.MustParseDate("1995-06-01")), DateV(temporal.Forever),
		Bytes(nil), Bytes([]byte{0, 1, 2, 255}),
		Bool(true), Bool(false),
		XML(xmltree.MustParseString(`<e a="1">t</e>`)),
	}
	for _, v := range vals {
		buf := EncodeValue(nil, v)
		got, n, err := DecodeValue(buf)
		if err != nil {
			t.Fatalf("decode %v: %v", v, err)
		}
		if n != len(buf) {
			t.Errorf("decode %v consumed %d of %d", v, n, len(buf))
		}
		if v.Kind == TypeXML {
			if !xmltree.Equal(v.X, got.X) {
				t.Errorf("xml round trip: %s vs %s", v.Text(), got.Text())
			}
			continue
		}
		if v.Kind == TypeBytes {
			if string(v.B) != string(got.B) {
				t.Errorf("bytes round trip: %v vs %v", v.B, got.B)
			}
			continue
		}
		if !reflect.DeepEqual(v, got) {
			t.Errorf("round trip %#v -> %#v", v, got)
		}
	}
}

func TestRowCodecRoundTrip(t *testing.T) {
	row := Row{Int(1001), String_("Bob"), Float(60000), DateV(temporal.MustParseDate("1995-01-01")), Null}
	for _, live := range []bool{true, false} {
		buf := EncodeRow(nil, row, live)
		got, gotLive, n, err := DecodeRow(buf)
		if err != nil {
			t.Fatal(err)
		}
		if n != len(buf) || gotLive != live {
			t.Errorf("n=%d live=%v", n, gotLive)
		}
		if !reflect.DeepEqual(row, got) {
			t.Errorf("row round trip: %v vs %v", row, got)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := DecodeValue(nil); err == nil {
		t.Error("empty buffer should fail")
	}
	if _, _, err := DecodeValue([]byte{200}); err == nil {
		t.Error("unknown kind should fail")
	}
	if _, _, err := DecodeValue([]byte{byte(TypeString), 10, 'a'}); err == nil {
		t.Error("truncated string should fail")
	}
	if _, _, _, err := DecodeRow(nil); err == nil {
		t.Error("empty row buffer should fail")
	}
}

func randValue(r *rand.Rand) Value {
	switch r.Intn(6) {
	case 0:
		return Null
	case 1:
		return Int(r.Int63() - r.Int63())
	case 2:
		return Float(r.NormFloat64() * 1e6)
	case 3:
		return String_(randString(r))
	case 4:
		return DateV(temporal.Date(r.Intn(100000)))
	default:
		return Bool(r.Intn(2) == 0)
	}
}

func randString(r *rand.Rand) string {
	n := r.Intn(20)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + r.Intn(26))
	}
	return string(b)
}

// Property: encode/decode round-trips random rows.
func TestRowCodecProperty(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		row := make(Row, r.Intn(8))
		for j := range row {
			row[j] = randValue(r)
		}
		buf := EncodeRow(nil, row, true)
		got, live, n, err := DecodeRow(buf)
		if err != nil || !live || n != len(buf) {
			t.Fatalf("decode: %v live=%v n=%d/%d", err, live, n, len(buf))
		}
		if len(got) != len(row) {
			t.Fatalf("length %d vs %d", len(got), len(row))
		}
		for j := range row {
			if Compare(row[j], got[j]) != 0 {
				t.Fatalf("col %d: %v vs %v", j, row[j], got[j])
			}
		}
	}
}

func TestCompareOrdering(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Null, Int(0), -1},
		{Null, Null, 0},
		{Int(1), Int(2), -1},
		{Int(2), Float(1.5), 1},
		{Float(1.5), Int(2), -1},
		{String_("a"), String_("b"), -1},
		{String_("b"), String_("b"), 0},
		{Int(42), String_("42"), 0},
		{String_("42"), Int(43), -1},
		{DateV(5), DateV(6), -1},
		{DateV(5), Int(5), 0},
		{Bool(false), Bool(true), -1},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestValueCoercions(t *testing.T) {
	if v, ok := String_(" 42 ").AsInt(); !ok || v != 42 {
		t.Errorf("AsInt = %d, %v", v, ok)
	}
	if _, ok := String_("x").AsInt(); ok {
		t.Error("non-numeric string coerced")
	}
	if f, ok := Int(3).AsFloat(); !ok || f != 3 {
		t.Errorf("AsFloat = %v", f)
	}
	if !Bool(true).AsBool() || Null.AsBool() {
		t.Error("AsBool broken")
	}
	if Int(0).AsBool() || !Int(5).AsBool() {
		t.Error("int truthiness broken")
	}
}

package relstore

// Morsel-driven scans (Leis et al., "Morsel-Driven Parallelism"): a
// scan is broken into page-sized work units that a worker pool pulls
// from a shared counter. Each morsel is self-contained — it decodes
// (or cache-hits) exactly one sealed page, or the builder tail — so
// workers parallelize both the physical decode and the per-row
// filter/aggregate work above it.
//
// Concurrency contract: morsels snapshot the table's page list when
// created and assume the database's readers-concurrent /
// writers-exclusive model (DESIGN.md §8). Any number of morsels from
// the same ScanMorsels call may execute concurrently with each other
// and with other readers; no writer may run until all of them finish.
//
// Determinism contract: the morsel slice is ordered. Concatenating
// the rows emitted by morsel 0, 1, 2, … yields exactly the row
// sequence a serial Scan over the same bounds would produce, so
// callers that merge per-morsel results in index order get
// scheduling-independent answers.

// MorselFunc executes one unit of scan work, emitting live rows to fn
// until exhausted or fn returns false. With borrow=true rows alias
// shared immutable storage (see ScanBorrow for the lifetime rules);
// with borrow=false each row is a defensive copy. It reports whether
// fn stopped the morsel early.
type MorselFunc func(borrow bool, fn func(row Row) bool) (stopped bool, err error)

// MorselSource is implemented by storage that can split a bounded
// scan into independently executable morsels. bounds carry the same
// zone-map pruning semantics as Scan: they prune work units, they do
// not filter rows.
type MorselSource interface {
	ScanMorsels(bounds []ZoneBound) ([]MorselFunc, error)
}

// ScanMorsels splits a scan into one morsel per surviving sealed page
// (zone-map pruning applied up front) plus one morsel for the builder
// tail. The page list and builder slices are snapshotted at call
// time.
func (t *Table) ScanMorsels(bounds []ZoneBound) ([]MorselFunc, error) {
	pages := t.pages
	out := make([]MorselFunc, 0, len(pages)+1)
	for pn, p := range pages {
		skip := false
		for _, zb := range bounds {
			if p.zoneExcludes(zb.Col, zb.Op, zb.Bound) {
				skip = true
				break
			}
		}
		if skip {
			t.db.stats.pagesSkipped.Add(1)
			continue
		}
		pn := pn
		out = append(out, func(borrow bool, fn func(Row) bool) (bool, error) {
			t.db.stats.morsels.Add(1)
			rows, live, err := t.readPage(pn)
			if err != nil {
				return false, err
			}
			emitted := int64(0)
			for slot, row := range rows {
				if !live[slot] {
					continue
				}
				r := row
				if !borrow {
					r = copyRow(row)
				}
				emitted++
				if !fn(r) {
					t.db.countScanRows(borrow, emitted)
					return true, nil
				}
			}
			t.db.countScanRows(borrow, emitted)
			return false, nil
		})
	}
	if len(t.bRows) > 0 {
		bRows, bLive := t.bRows, t.bLive
		out = append(out, func(borrow bool, fn func(Row) bool) (bool, error) {
			t.db.stats.morsels.Add(1)
			emitted := int64(0)
			for slot, row := range bRows {
				if !bLive[slot] {
					continue
				}
				r := row
				if !borrow {
					r = copyRow(row)
				}
				emitted++
				if !fn(r) {
					t.db.countScanRows(borrow, emitted)
					return true, nil
				}
			}
			t.db.countScanRows(borrow, emitted)
			return false, nil
		})
	}
	return out, nil
}

// countScanRows batches the borrowed/copied row counters: one atomic
// add per page instead of one per row, so hot scans don't serialize
// on the stats cache line.
func (db *Database) countScanRows(borrow bool, n int64) {
	if n == 0 {
		return
	}
	if borrow {
		db.stats.rowsBorrowed.Add(n)
	} else {
		db.stats.rowsCopied.Add(n)
	}
}

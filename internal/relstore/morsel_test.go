package relstore

import (
	"sync"
	"sync/atomic"
	"testing"
)

// collectScan runs a serial scan and returns the emitted rows in order.
func collectScan(t *testing.T, tbl *Table, bounds []ZoneBound) []Row {
	t.Helper()
	var out []Row
	err := tbl.Scan(bounds, func(_ RID, row Row) bool {
		out = append(out, row)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// collectMorsels executes every morsel serially in index order and
// concatenates the emitted rows.
func collectMorsels(t *testing.T, morsels []MorselFunc, borrow bool) []Row {
	t.Helper()
	var out []Row
	for _, m := range morsels {
		_, err := m(borrow, func(row Row) bool {
			out = append(out, row)
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return out
}

func rowsEqual(t *testing.T, got, want []Row) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("row count %d, want %d", len(got), len(want))
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("row %d width %d, want %d", i, len(got[i]), len(want[i]))
		}
		for c := range want[i] {
			if Compare(got[i][c], want[i][c]) != 0 {
				t.Fatalf("row %d col %d: %v, want %v", i, c, got[i][c], want[i][c])
			}
		}
	}
}

func TestScanBorrowMatchesScan(t *testing.T) {
	_, tbl, _ := sealedIntTable(t, 700) // sealed pages + no tail
	mustInsert(t, tbl, Row{Int(700), Int(7000)})
	mustInsert(t, tbl, Row{Int(701), Int(7010)}) // builder tail
	copied := collectScan(t, tbl, nil)
	var borrowed []Row
	err := tbl.ScanBorrow(nil, func(_ RID, row Row) bool {
		borrowed = append(borrowed, row)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	rowsEqual(t, borrowed, copied)
}

// Concatenating morsel outputs in index order must reproduce the
// serial scan exactly, with and without zone bounds, and the stats
// counters must account for every row and morsel.
func TestMorselsParallelConcatMatchesSerial(t *testing.T) {
	db, tbl, _ := sealedIntTable(t, 1500)
	mustInsert(t, tbl, Row{Int(1500), Int(15000)}) // builder tail
	if tbl.PageCount() < 2 {
		t.Fatalf("want multiple sealed pages, got %d", tbl.PageCount())
	}
	for _, bounds := range [][]ZoneBound{
		nil,
		{{Col: 0, Op: ">=", Bound: 1000}},
		{{Col: 0, Op: "<=", Bound: 200}},
		{{Col: 0, Op: ">=", Bound: 9999999}}, // prunes everything sealed
	} {
		serial := collectScan(t, tbl, bounds)
		db.ResetStats()
		morsels, err := tbl.ScanMorsels(bounds)
		if err != nil {
			t.Fatal(err)
		}
		got := collectMorsels(t, morsels, true)
		rowsEqual(t, got, serial)
		st := db.Stats()
		if st.Morsels != int64(len(morsels)) {
			t.Errorf("bounds %v: Morsels = %d, want %d", bounds, st.Morsels, len(morsels))
		}
		if st.RowsBorrowed != int64(len(got)) {
			t.Errorf("bounds %v: RowsBorrowed = %d, want %d", bounds, st.RowsBorrowed, len(got))
		}
	}
}

// Copy-mode morsels must count rows as copied, not borrowed, and the
// rows must not alias page storage.
func TestMorselsCopyModeCounts(t *testing.T) {
	db, tbl, _ := sealedIntTable(t, 300)
	db.ResetStats()
	morsels, err := tbl.ScanMorsels(nil)
	if err != nil {
		t.Fatal(err)
	}
	got := collectMorsels(t, morsels, false)
	st := db.Stats()
	if st.RowsCopied != int64(len(got)) || st.RowsBorrowed != 0 {
		t.Errorf("copied=%d borrowed=%d, want %d/0", st.RowsCopied, st.RowsBorrowed, len(got))
	}
}

// Executing the morsels of one scan concurrently must produce the
// same multiset of rows as the serial scan, regardless of schedule.
func TestMorselsParallelConcurrentExecution(t *testing.T) {
	_, tbl, _ := sealedIntTable(t, 2000)
	serial := collectScan(t, tbl, nil)
	var wantSum int64
	for _, r := range serial {
		wantSum += r[1].I
	}
	for trial := 0; trial < 4; trial++ {
		morsels, err := tbl.ScanMorsels(nil)
		if err != nil {
			t.Fatal(err)
		}
		var next, gotRows, gotSum atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := next.Add(1) - 1
					if i >= int64(len(morsels)) {
						return
					}
					var localRows, localSum int64
					_, err := morsels[i](true, func(row Row) bool {
						localRows++
						localSum += row[1].I
						return true
					})
					if err != nil {
						t.Error(err)
						return
					}
					gotRows.Add(localRows)
					gotSum.Add(localSum)
				}
			}()
		}
		wg.Wait()
		if gotRows.Load() != int64(len(serial)) || gotSum.Load() != wantSum {
			t.Fatalf("concurrent morsels saw %d rows sum %d, want %d rows sum %d",
				gotRows.Load(), gotSum.Load(), len(serial), wantSum)
		}
	}
}

// Mirror of TestScanSnapshotUnderMidScanDelete for the morsel path: a
// Delete issued from inside a morsel's callback must not change what
// that morsel sees — the page was decoded (copy-on-write protected)
// before emission started.
func TestMorselsParallelSnapshotUnderMidScanDelete(t *testing.T) {
	_, tbl, rids := sealedIntTable(t, 8)
	morsels, err := tbl.ScanMorsels(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(morsels) != 1 {
		t.Fatalf("want 1 morsel for 1 page, got %d", len(morsels))
	}
	var seen []int64
	_, err = morsels[0](true, func(row Row) bool {
		if row[0].I == 0 {
			if err := tbl.Delete(rids[5]); err != nil {
				t.Fatal(err)
			}
		}
		seen = append(seen, row[0].I)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 8 {
		t.Fatalf("morsel saw %d rows, want the 8-row snapshot: %v", len(seen), seen)
	}
	// Fresh morsels observe the delete.
	fresh, _ := tbl.ScanMorsels(nil)
	count := 0
	for _, m := range fresh {
		if _, err := m(true, func(Row) bool { count++; return true }); err != nil {
			t.Fatal(err)
		}
	}
	if count != 7 {
		t.Errorf("post-delete morsels saw %d rows, want 7", count)
	}
}

// Early stop from the row callback is reported per morsel.
func TestMorselEarlyStop(t *testing.T) {
	_, tbl, _ := sealedIntTable(t, 600)
	morsels, err := tbl.ScanMorsels(nil)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	stopped, err := morsels[0](true, func(Row) bool { count++; return count < 3 })
	if err != nil {
		t.Fatal(err)
	}
	if !stopped || count != 3 {
		t.Errorf("stopped=%v count=%d, want true/3", stopped, count)
	}
}

func benchScanTable(b *testing.B) *Table {
	b.Helper()
	db := NewDatabase()
	tbl, err := db.CreateTable(NewSchema("b",
		Col("id", TypeInt), Col("v", TypeInt), Col("s", TypeString)))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 20000; i++ {
		if _, err := tbl.Insert(Row{Int(int64(i)), Int(int64(i * 7)), String_("payload-string")}); err != nil {
			b.Fatal(err)
		}
	}
	tbl.Flush()
	// Warm the page cache so the benchmark measures row handling, not
	// physical decode.
	_ = tbl.ScanBorrow(nil, func(RID, Row) bool { return true })
	return tbl
}

func BenchmarkScanCopy(b *testing.B) {
	tbl := benchScanTable(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sum int64
		_ = tbl.Scan(nil, func(_ RID, row Row) bool { sum += row[1].I; return true })
	}
}

func BenchmarkScanBorrow(b *testing.B) {
	tbl := benchScanTable(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sum int64
		_ = tbl.ScanBorrow(nil, func(_ RID, row Row) bool { sum += row[1].I; return true })
	}
}

package relstore

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

// sealedIntTable builds a table with one sealed page holding rows
// (i, 10*i) for i in [0, n).
func sealedIntTable(t *testing.T, n int) (*Database, *Table, []RID) {
	t.Helper()
	db := NewDatabase()
	tbl, err := db.CreateTable(NewSchema("t", Col("id", TypeInt), Col("v", TypeInt)))
	if err != nil {
		t.Fatal(err)
	}
	rids := make([]RID, n)
	for i := 0; i < n; i++ {
		rid, err := tbl.Insert(Row{Int(int64(i)), Int(int64(10 * i))})
		if err != nil {
			t.Fatal(err)
		}
		rids[i] = rid
	}
	tbl.Flush()
	return db, tbl, rids
}

// A Delete issued from inside a Scan callback must not change what the
// scan sees on the page being iterated: rewritePage is copy-on-write,
// so the scan keeps its decoded snapshot.
func TestScanSnapshotUnderMidScanDelete(t *testing.T) {
	_, tbl, rids := sealedIntTable(t, 8)
	var seen []int64
	err := tbl.Scan(nil, func(rid RID, row Row) bool {
		if rid == rids[0] {
			// Tombstone a row later in the same page, mid-scan.
			if err := tbl.Delete(rids[5]); err != nil {
				t.Fatal(err)
			}
		}
		seen = append(seen, row[0].I)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 8 {
		t.Fatalf("scan saw %d rows, want the 8-row snapshot: %v", len(seen), seen)
	}
	// A fresh scan observes the delete.
	count := 0
	_ = tbl.Scan(nil, func(RID, Row) bool { count++; return true })
	if count != 7 {
		t.Errorf("post-delete scan saw %d rows, want 7", count)
	}
	if _, live, _ := tbl.Get(rids[5]); live {
		t.Error("deleted row still live")
	}
}

// An Update issued mid-scan must not change the value the scan yields
// for the not-yet-visited slot.
func TestScanSnapshotUnderMidScanUpdate(t *testing.T) {
	_, tbl, rids := sealedIntTable(t, 8)
	values := map[int64]int64{}
	err := tbl.Scan(nil, func(rid RID, row Row) bool {
		if rid == rids[0] {
			if err := tbl.Update(rids[6], Row{Int(6), Int(-1)}); err != nil {
				t.Fatal(err)
			}
		}
		values[row[0].I] = row[1].I
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if values[6] != 60 {
		t.Errorf("scan saw updated value %d for row 6, want snapshot value 60", values[6])
	}
	row, _, err := tbl.Get(rids[6])
	if err != nil || row[1].I != -1 {
		t.Errorf("post-scan Get = %v, %v; want updated value -1", row, err)
	}
}

// An Update that grows a builder row past PageSize must seal the
// builder: ByteSize may not undercount and the oversized open page may
// not persist until the next insert.
func TestBuilderSealsOnOversizedUpdate(t *testing.T) {
	db := NewDatabase()
	tbl, err := db.CreateTable(NewSchema("t", Col("id", TypeInt), Col("data", TypeString)))
	if err != nil {
		t.Fatal(err)
	}
	var rids []RID
	for i := 0; i < 3; i++ {
		rid, err := tbl.Insert(Row{Int(int64(i)), String_("small")})
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	big := strings.Repeat("x", 2*PageSize)
	if err := tbl.Update(rids[0], Row{Int(0), String_(big)}); err != nil {
		t.Fatal(err)
	}
	if len(tbl.bRows) != 0 {
		t.Errorf("builder still holds %d rows after oversized update; want sealed", len(tbl.bRows))
	}
	if tbl.ByteSize() < 2*PageSize {
		t.Errorf("ByteSize = %d undercounts the %d-byte row", tbl.ByteSize(), 2*PageSize)
	}
	// The old builder RIDs must remain valid after the seal.
	for i, rid := range rids {
		row, live, err := tbl.Get(rid)
		if err != nil || !live {
			t.Fatalf("row %d unreadable after seal: %v", i, err)
		}
		if row[0].I != int64(i) {
			t.Errorf("row %d id = %d after seal", i, row[0].I)
		}
	}
	if row, _, _ := tbl.Get(rids[0]); len(row[1].S) != len(big) {
		t.Errorf("updated row lost data: %d bytes", len(row[1].S))
	}
}

// Rows handed out by Get and Scan must never alias cache-internal
// storage: overwriting cells of a returned row cannot change what
// later reads observe.
func TestNoAliasingWithCacheQuick(t *testing.T) {
	prop := func(vals []int64) bool {
		if len(vals) == 0 {
			vals = []int64{7}
		}
		if len(vals) > 64 {
			vals = vals[:64]
		}
		db := NewDatabase()
		tbl, err := db.CreateTable(NewSchema("q", Col("v", TypeInt)))
		if err != nil {
			return false
		}
		rids := make([]RID, len(vals))
		for i, v := range vals {
			if rids[i], err = tbl.Insert(Row{Int(v)}); err != nil {
				return false
			}
		}
		tbl.Flush()
		// Scribble over every row a scan yields.
		_ = tbl.Scan(nil, func(_ RID, row Row) bool {
			row[0] = Int(-999999)
			return true
		})
		// Scribble over rows from Get as well.
		for _, rid := range rids {
			row, _, err := tbl.Get(rid)
			if err != nil {
				return false
			}
			row[0] = Int(-888888)
		}
		// Every value must still read back unharmed (warm cache path).
		for i, rid := range rids {
			row, live, err := tbl.Get(rid)
			if err != nil || !live || row[0].I != vals[i] {
				return false
			}
		}
		ok := true
		i := 0
		_ = tbl.Scan(nil, func(_ RID, row Row) bool {
			if row[0].I != vals[i] {
				ok = false
			}
			i++
			return true
		})
		return ok && i == len(vals)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// The clock cache keeps its configured capacity under scan churn.
func TestClockCacheBounded(t *testing.T) {
	db := NewDatabase()
	db.SetCacheCapacity(16)
	tbl, err := db.CreateTable(NewSchema("t", Col("v", TypeInt)))
	if err != nil {
		t.Fatal(err)
	}
	const pages = 64
	for i := 0; i < pages; i++ {
		if _, err := tbl.Insert(Row{Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
		tbl.Flush()
	}
	for round := 0; round < 3; round++ {
		_ = tbl.Scan(nil, func(RID, Row) bool { return true })
	}
	if n := db.CachedPages(); n > 16 {
		t.Errorf("cache holds %d pages, capacity 16", n)
	}
	if db.Stats().BlockReads == 0 {
		t.Error("no physical reads recorded")
	}
}

// Concurrent readers — scans, point gets, index lookups, stats
// snapshots — over one shared database must be race-free (run with
// -race) and observe consistent data while the cache evicts under
// pressure.
func TestConcurrentReaders(t *testing.T) {
	db := NewDatabase()
	db.SetCacheCapacity(8) // force eviction churn
	tbl, err := db.CreateTable(NewSchema("t", Col("id", TypeInt), Col("v", TypeInt)))
	if err != nil {
		t.Fatal(err)
	}
	const pages = 48
	rids := make([]RID, 0, pages*4)
	for i := 0; i < pages*4; i++ {
		rid, err := tbl.Insert(Row{Int(int64(i)), Int(int64(i * 3))})
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
		if (i+1)%4 == 0 {
			tbl.Flush()
		}
	}
	tbl.Flush()
	ix, err := db.CreateIndex("ix_t_id", "t", "id")
	if err != nil {
		t.Fatal(err)
	}

	const readers = 8
	errs := make(chan error, readers)
	var wg sync.WaitGroup
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for iter := 0; iter < 30; iter++ {
				switch iter % 3 {
				case 0:
					lo := rng.Int63n(int64(len(rids)))
					err := tbl.Scan([]ZoneBound{{Col: 0, Op: ">=", Bound: lo}}, func(_ RID, row Row) bool {
						if row[1].I != row[0].I*3 {
							errs <- fmt.Errorf("scan saw corrupt row %v", row)
							return false
						}
						return true
					})
					if err != nil {
						errs <- err
					}
				case 1:
					i := rng.Intn(len(rids))
					row, live, err := tbl.Get(rids[i])
					if err != nil || !live || row[0].I != int64(i) {
						errs <- fmt.Errorf("get(%d) = %v, %v, %v", i, row, live, err)
					}
				case 2:
					i := rng.Intn(len(rids))
					if got := ix.Lookup([]Value{Int(int64(i))}); len(got) != 1 {
						errs <- fmt.Errorf("index lookup %d returned %d rids", i, len(got))
					}
					_ = db.Stats()
					_ = db.CachedPages()
				}
			}
		}(int64(g + 1))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if st := db.Stats(); st.BlockReads == 0 || st.CacheHits == 0 {
		t.Errorf("stats recorded no activity: %+v", st)
	}
}

// BenchmarkCacheMissAtCapacity measures the steady-state cost of a
// cache miss when the cache is full, i.e. decode + put + evict. The
// old eviction sorted the entire cache on every put at capacity
// (O(n log n) with n = capacity); the clock hand makes it O(1)
// amortized. Round-robin access over 2x capacity guarantees every read
// misses.
func BenchmarkCacheMissAtCapacity(b *testing.B) {
	db := NewDatabase()
	db.SetCacheCapacity(1024)
	tbl, err := db.CreateTable(NewSchema("t", Col("v", TypeInt)))
	if err != nil {
		b.Fatal(err)
	}
	const pages = 2048
	for i := 0; i < pages; i++ {
		if _, err := tbl.Insert(Row{Int(int64(i))}); err != nil {
			b.Fatal(err)
		}
		tbl.Flush()
	}
	// Fill the cache to capacity.
	_ = tbl.Scan(nil, func(RID, Row) bool { return true })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := tbl.readPage(i % pages); err != nil {
			b.Fatal(err)
		}
	}
}

package relstore

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"archis/internal/temporal"
)

// Zone-map pruning property: a bounded scan may return extra rows
// (bounds prune pages, they do not filter), but it must NEVER drop a
// live row that satisfies the predicate. The generator stresses the
// documented edge cases: NULLs in zoned columns, temporal.Forever
// dates, negative ints, and pages whose rows are all dead.

// zoneProbeInts are the interesting values rows and predicate bounds
// are drawn from (clustered so equalities actually hit).
var zoneProbeInts = []int64{
	-1 << 40, -1000, -7, -1, 0, 1, 7, 42, 1000, 1 << 40,
}

type zoneRow struct {
	id   int64
	v    Value // zoned INT column: int, or NULL
	d    Value // zoned DATE column: date (possibly Forever), or NULL
	dead bool
}

func genZoneRows(rng *rand.Rand) []zoneRow {
	n := 1 + rng.Intn(120)
	rows := make([]zoneRow, n)
	for i := range rows {
		r := zoneRow{id: int64(i)}
		switch rng.Intn(4) {
		case 0:
			r.v = Null
		default:
			r.v = Int(zoneProbeInts[rng.Intn(len(zoneProbeInts))])
		}
		switch rng.Intn(5) {
		case 0:
			r.d = Null
		case 1:
			r.d = DateV(temporal.Forever)
		default:
			r.d = DateV(temporal.MustParseDate("1990-01-01").AddDays(rng.Intn(5000)))
		}
		r.dead = rng.Intn(6) == 0
		rows[i] = r
	}
	// Force at least one all-dead stretch longer than a flush interval
	// so some sealed page has live == 0.
	if n >= 20 {
		for i := 5; i < 15; i++ {
			rows[i].dead = true
		}
	}
	return rows
}

func satisfies(v Value, op string, bound int64) bool {
	if v.Kind != TypeInt && v.Kind != TypeDate {
		return false // NULL never matches a comparison
	}
	switch op {
	case "=":
		return v.I == bound
	case "<":
		return v.I < bound
	case "<=":
		return v.I <= bound
	case ">":
		return v.I > bound
	case ">=":
		return v.I >= bound
	}
	return false
}

func TestZoneMapNeverExcludesMatchingRow(t *testing.T) {
	ops := []string{"=", "<", "<=", ">", ">="}
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := NewDatabase()
		tbl, err := db.CreateTable(Schema{Name: "z", Columns: []Column{
			{Name: "id", Type: TypeInt},
			{Name: "v", Type: TypeInt},
			{Name: "d", Type: TypeDate},
		}})
		if err != nil {
			t.Fatal(err)
		}
		spec := genZoneRows(rng)
		var rids []RID
		for i, r := range spec {
			rid, err := tbl.Insert(Row{Int(r.id), r.v, r.d})
			if err != nil {
				t.Fatal(err)
			}
			rids = append(rids, rid)
			// Seal small pages so pruning has many chances to misfire.
			if i%7 == 6 {
				tbl.Flush()
			}
		}
		tbl.Flush()
		for i, r := range spec {
			if r.dead {
				if err := tbl.Delete(rids[i]); err != nil {
					t.Fatal(err)
				}
			}
		}

		for trial := 0; trial < 30; trial++ {
			col := 1 + rng.Intn(2) // v or d
			op := ops[rng.Intn(len(ops))]
			var bound int64
			if col == 1 {
				bound = zoneProbeInts[rng.Intn(len(zoneProbeInts))]
			} else {
				switch rng.Intn(4) {
				case 0:
					bound = int64(temporal.Forever)
				default:
					bound = int64(temporal.MustParseDate("1990-01-01").AddDays(rng.Intn(5000)))
				}
			}
			got := map[int64]bool{}
			err := tbl.Scan([]ZoneBound{{Col: col, Op: op, Bound: bound}}, func(_ RID, row Row) bool {
				got[row[0].I] = true
				return true
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range spec {
				if r.dead {
					continue
				}
				cell := r.v
				if col == 2 {
					cell = r.d
				}
				if satisfies(cell, op, bound) && !got[r.id] {
					t.Errorf("seed %d: bounded scan {col:%d %s %d} dropped live matching row id=%d (%v)",
						seed, col, op, bound, r.id, cell)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestZoneMapAllDeadPage pins the all-dead-page case directly: a page
// whose zone entry is invalid because every row is deleted must be
// prunable without ever hiding rows on other pages.
func TestZoneMapAllDeadPage(t *testing.T) {
	db := NewDatabase()
	tbl, err := db.CreateTable(Schema{Name: "z", Columns: []Column{
		{Name: "id", Type: TypeInt},
		{Name: "v", Type: TypeInt},
	}})
	if err != nil {
		t.Fatal(err)
	}
	var rids []RID
	for i := int64(0); i < 30; i++ {
		rid, err := tbl.Insert(Row{Int(i), Int(i * 10)})
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
		if i%10 == 9 {
			tbl.Flush()
		}
	}
	// Kill the middle page (ids 10..19) entirely.
	for i := 10; i < 20; i++ {
		if err := tbl.Delete(rids[i]); err != nil {
			t.Fatal(err)
		}
	}
	for _, tc := range []struct {
		op    string
		bound int64
		want  []int64
	}{
		{"=", 50, []int64{5}},
		{"=", 150, nil}, // only dead rows matched
		{">=", 200, []int64{20, 21, 22, 23, 24, 25, 26, 27, 28, 29}},
		{"<", 100, []int64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}},
	} {
		got := map[int64]bool{}
		err := tbl.Scan([]ZoneBound{{Col: 1, Op: tc.op, Bound: tc.bound}}, func(_ RID, row Row) bool {
			got[row[0].I] = true
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range tc.want {
			if !got[id] {
				t.Errorf("v %s %d: live matching id=%d missing (%s)", tc.op, tc.bound, id, fmt.Sprint(got))
			}
		}
	}
}

package relstore

import (
	"fmt"
)

// Table is an append-oriented heap table made of sealed pages plus one
// open builder page. Sealed pages are stored encoded; reading one
// costs a physical "block read" unless it is in the database page
// cache. Zone maps on INT/DATE columns let scans skip pages.
type Table struct {
	db     *Database
	id     uint64 // unique within the database, never reused
	schema Schema

	pages []*page

	// builder is the open page: rows not yet encoded.
	bRows []Row
	bLive []bool
	bSize int

	zoneCols []int
	liveRows int

	indexes []*Index

	// MVCC state (version.go). frozen marks an immutable snapshot copy
	// — writes to it are a layering bug. dirty marks live tables with
	// unpublished changes. pagesGen/builderGen record the cowGen at
	// which the pages / builder slice backing arrays were last
	// privatized: published snapshots alias those arrays up to their
	// captured length, so in-place element writes must copy first
	// (appends beyond the captured length are safe as-is).
	frozen     bool
	dirty      bool
	pagesGen   uint64
	builderGen uint64
}

// markDirty flags unpublished changes; the next Publish freezes the
// table. Writers are serialized, so plain fields suffice.
func (t *Table) markDirty() {
	t.dirty = true
	t.db.anyDirty.Store(true)
}

// ownPages privatizes the pages slice for in-place element writes in
// the current copy-on-write generation.
func (t *Table) ownPages() {
	if gen := t.db.cowGen.Load(); t.pagesGen != gen {
		t.pages = append([]*page(nil), t.pages...)
		t.pagesGen = gen
	}
}

// ownBuilder privatizes the builder slices for in-place element writes
// in the current copy-on-write generation.
func (t *Table) ownBuilder() {
	if gen := t.db.cowGen.Load(); t.builderGen != gen {
		t.bRows = append([]Row(nil), t.bRows...)
		t.bLive = append([]bool(nil), t.bLive...)
		t.builderGen = gen
	}
}

// errFrozen guards the write paths against snapshot copies.
func (t *Table) errFrozen() error {
	if t.frozen {
		return fmt.Errorf("relstore: %s: write to frozen snapshot table", t.Name())
	}
	return nil
}

// Schema returns the table schema.
func (t *Table) Schema() Schema { return t.schema }

// Name returns the table name.
func (t *Table) Name() string { return t.schema.Name }

// LiveRows returns the number of live (non-deleted) rows.
func (t *Table) LiveRows() int { return t.liveRows }

// TotalRows returns the number of slots including dead rows.
func (t *Table) TotalRows() int {
	n := len(t.bRows)
	for _, p := range t.pages {
		n += p.rowCount()
	}
	return n
}

// PageCount returns the number of pages (including the open one, if any).
func (t *Table) PageCount() int {
	n := len(t.pages)
	if len(t.bRows) > 0 {
		n++
	}
	return n
}

// ByteSize returns the physical footprint in bytes.
func (t *Table) ByteSize() int {
	n := 0
	for _, p := range t.pages {
		n += p.byteSize()
	}
	if len(t.bRows) > 0 {
		n += PageSize
	}
	return n
}

// Insert appends a row and returns its RID.
func (t *Table) Insert(r Row) (RID, error) {
	if err := t.errFrozen(); err != nil {
		return RID{}, err
	}
	if err := t.schema.Validate(r); err != nil {
		return RID{}, err
	}
	t.markDirty()
	sz := len(EncodeRow(nil, r, true))
	if t.bSize > 0 && t.bSize+sz > PageSize {
		t.sealBuilder()
	}
	rid := RID{Page: int32(len(t.pages)), Slot: int32(len(t.bRows))}
	t.bRows = append(t.bRows, r.Clone())
	t.bLive = append(t.bLive, true)
	t.bSize += sz
	t.liveRows++
	if sz > PageSize {
		// Jumbo row: seal immediately into its own oversized page.
		t.sealBuilder()
	}
	for _, idx := range t.indexes {
		idx.insertRow(r, rid)
	}
	return rid, nil
}

func (t *Table) sealBuilder() {
	if len(t.bRows) == 0 {
		return
	}
	p := t.db.stampPage(buildPage(t.bRows, t.bLive, t.zoneCols, len(t.schema.Columns)))
	t.pages = append(t.pages, p)
	// The builder arrays may be aliased by a published snapshot; they
	// are dropped, never reused, so the snapshot's view stays intact.
	t.bRows, t.bLive, t.bSize = nil, nil, 0
}

// Flush seals the open builder page, if any.
func (t *Table) Flush() { t.sealBuilder() }

// Get returns the row at rid and whether it is live. The returned row
// is the caller's to keep: it never aliases cache-internal or
// builder-internal storage.
func (t *Table) Get(rid RID) (Row, bool, error) {
	if int(rid.Page) == len(t.pages) {
		if int(rid.Slot) >= len(t.bRows) {
			return nil, false, fmt.Errorf("relstore: %s: bad rid %v", t.Name(), rid)
		}
		return copyRow(t.bRows[rid.Slot]), t.bLive[rid.Slot], nil
	}
	if int(rid.Page) > len(t.pages) {
		return nil, false, fmt.Errorf("relstore: %s: bad rid %v", t.Name(), rid)
	}
	rows, live, err := t.readPage(int(rid.Page))
	if err != nil {
		return nil, false, err
	}
	if int(rid.Slot) >= len(rows) {
		return nil, false, fmt.Errorf("relstore: %s: bad rid %v", t.Name(), rid)
	}
	return copyRow(rows[rid.Slot]), live[rid.Slot], nil
}

// GetBorrow is Get on the zero-copy path: the returned row may alias
// shared page-cache or builder storage, so it follows the ScanBorrow
// contract — never mutate the row or its cells, retain it at most for
// the duration of the enclosing statement. Index probes use it so a
// point read allocates nothing beyond the page decode.
func (t *Table) GetBorrow(rid RID) (Row, bool, error) {
	if int(rid.Page) == len(t.pages) {
		if int(rid.Slot) >= len(t.bRows) {
			return nil, false, fmt.Errorf("relstore: %s: bad rid %v", t.Name(), rid)
		}
		return t.bRows[rid.Slot], t.bLive[rid.Slot], nil
	}
	if int(rid.Page) > len(t.pages) {
		return nil, false, fmt.Errorf("relstore: %s: bad rid %v", t.Name(), rid)
	}
	rows, live, err := t.readPage(int(rid.Page))
	if err != nil {
		return nil, false, err
	}
	if int(rid.Slot) >= len(rows) {
		return nil, false, fmt.Errorf("relstore: %s: bad rid %v", t.Name(), rid)
	}
	return rows[rid.Slot], live[rid.Slot], nil
}

// copyRow shallow-copies a row so callers can overwrite cells without
// reaching into shared page-cache storage. Values are immutable by
// convention, so copying the cell slice is enough.
func copyRow(r Row) Row {
	if r == nil {
		return nil
	}
	return append(Row(nil), r...)
}

// Update replaces the row at rid.
func (t *Table) Update(rid RID, r Row) error {
	if err := t.errFrozen(); err != nil {
		return err
	}
	if err := t.schema.Validate(r); err != nil {
		return err
	}
	old, wasLive, err := t.Get(rid)
	if err != nil {
		return err
	}
	if !wasLive {
		return fmt.Errorf("relstore: %s: update of dead row %v", t.Name(), rid)
	}
	t.markDirty()
	if int(rid.Page) == len(t.pages) {
		t.ownBuilder()
		t.bRows[rid.Slot] = r.Clone()
		// Builder size drifts from reality on update; recompute lazily
		// by re-measuring the whole builder only when it could overflow.
		t.bSize = 0
		for i, br := range t.bRows {
			t.bSize += len(EncodeRow(nil, br, t.bLive[i]))
		}
		if t.bSize > PageSize {
			// The grown row pushed the builder past a page; seal so
			// ByteSize stays honest and the oversized open page does not
			// linger until the next insert. Sealing keeps RIDs valid:
			// builder rows at page len(t.pages) become that same page
			// number once sealed.
			t.sealBuilder()
		}
	} else {
		if err := t.rewritePage(int(rid.Page), func(rows []Row, live []bool) {
			rows[rid.Slot] = r.Clone()
		}); err != nil {
			return err
		}
	}
	for _, idx := range t.indexes {
		idx.deleteRow(old, rid)
		idx.insertRow(r, rid)
	}
	return nil
}

// Delete tombstones the row at rid.
func (t *Table) Delete(rid RID) error {
	if err := t.errFrozen(); err != nil {
		return err
	}
	old, wasLive, err := t.Get(rid)
	if err != nil {
		return err
	}
	if !wasLive {
		return nil
	}
	t.markDirty()
	if int(rid.Page) == len(t.pages) {
		t.ownBuilder()
		t.bLive[rid.Slot] = false
	} else {
		if err := t.rewritePage(int(rid.Page), func(rows []Row, live []bool) {
			live[rid.Slot] = false
		}); err != nil {
			return err
		}
	}
	t.liveRows--
	for _, idx := range t.indexes {
		idx.deleteRow(old, rid)
	}
	return nil
}

// rewritePage re-encodes a sealed page through a mutation callback.
// It is copy-on-write: the row/live slices held by the page cache and
// by any in-progress Scan or Get over the page are never mutated — the
// mutation runs on fresh copies, which then replace the page and the
// cache entry. An Update/Delete issued from inside a Scan callback
// therefore leaves the scan's view of the current page intact.
func (t *Table) rewritePage(pageNo int, mutate func(rows []Row, live []bool)) error {
	rows, live, err := t.readPage(pageNo)
	if err != nil {
		return err
	}
	newRows := append([]Row(nil), rows...)
	newLive := append([]bool(nil), live...)
	mutate(newRows, newLive)
	np := t.db.stampPage(buildPage(newRows, newLive, t.zoneCols, len(t.schema.Columns)))
	t.ownPages()
	t.pages[pageNo] = np
	// The replaced page keeps its own cache entry (snapshot readers may
	// still be scanning it); the new page gets a fresh one.
	t.db.cachePut(np, newRows, newLive)
	return nil
}

// readPage returns the decoded rows of a sealed page via the database
// page cache, counting a physical block read on a miss. The returned
// slices are shared with the cache and treated as immutable; public
// entry points (Get, Scan) copy rows before handing them out.
func (t *Table) readPage(pageNo int) ([]Row, []bool, error) {
	p := t.pages[pageNo]
	if rows, live, ok := t.db.cacheGet(p); ok {
		return rows, live, nil
	}
	rows, live, err := p.decodeRows()
	if err != nil {
		return nil, nil, err
	}
	t.db.stats.blockReads.Add(1)
	t.db.stats.bytesRead.Add(int64(p.byteSize()))
	t.db.cachePut(p, rows, live)
	return rows, live, nil
}

// ZoneBound is one pushed-down page-pruning predicate: column Col
// compared by Op ("=", "<", "<=", ">", ">=") against Bound.
type ZoneBound struct {
	Col   int
	Op    string
	Bound int64
}

// Scan iterates live rows in physical order, calling fn until it
// returns false. bounds (may be nil) prune pages via zone maps; they
// do NOT filter rows — the caller still applies its own predicate.
// Rows passed to fn are copies the callback may keep or overwrite;
// they never alias cache-internal storage.
func (t *Table) Scan(bounds []ZoneBound, fn func(rid RID, row Row) bool) error {
	return t.scanRows(bounds, false, fn)
}

// ScanBorrow is Scan without the per-row defensive copy: rows passed
// to fn alias shared page-cache or builder storage. The contract
// (DESIGN.md §8): the callback must never mutate a borrowed row or
// its cells, and may retain it at most for the duration of the
// enclosing statement — page rewrites are copy-on-write, so borrowed
// slices stay valid, but a later writer may publish a newer version
// the borrower won't see. Internal executors use this path; public
// consumers should prefer Scan.
func (t *Table) ScanBorrow(bounds []ZoneBound, fn func(rid RID, row Row) bool) error {
	return t.scanRows(bounds, true, fn)
}

func (t *Table) scanRows(bounds []ZoneBound, borrow bool, fn func(rid RID, row Row) bool) error {
	for pn, p := range t.pages {
		skip := false
		for _, zb := range bounds {
			if p.zoneExcludes(zb.Col, zb.Op, zb.Bound) {
				skip = true
				break
			}
		}
		if skip {
			t.db.stats.pagesSkipped.Add(1)
			continue
		}
		rows, live, err := t.readPage(pn)
		if err != nil {
			return err
		}
		emitted := int64(0)
		for slot, row := range rows {
			if !live[slot] {
				continue
			}
			r := row
			if !borrow {
				r = copyRow(row)
			}
			emitted++
			if !fn(RID{Page: int32(pn), Slot: int32(slot)}, r) {
				t.db.countScanRows(borrow, emitted)
				return nil
			}
		}
		t.db.countScanRows(borrow, emitted)
	}
	emitted := int64(0)
	for slot, row := range t.bRows {
		if !t.bLive[slot] {
			continue
		}
		r := row
		if !borrow {
			r = copyRow(row)
		}
		emitted++
		if !fn(RID{Page: int32(len(t.pages)), Slot: int32(slot)}, r) {
			t.db.countScanRows(borrow, emitted)
			return nil
		}
	}
	t.db.countScanRows(borrow, emitted)
	return nil
}

// Compact rewrites the table keeping only live rows (in scan order),
// reclaiming tombstoned space and rebuilding indexes. All previously
// issued RIDs are invalidated.
func (t *Table) Compact() error {
	var rows []Row
	err := t.ScanBorrow(nil, func(_ RID, row Row) bool {
		rows = append(rows, row.Clone())
		return true
	})
	if err != nil {
		return err
	}
	t.Truncate()
	for _, r := range rows {
		if _, err := t.Insert(r); err != nil {
			return err
		}
	}
	return nil
}

// Truncate drops all rows and reindexes to empty. Pages referenced by
// published snapshots stay decodable — truncation only drops the live
// table's references and evicts their cache entries early.
func (t *Table) Truncate() {
	if t.frozen {
		panic("relstore: truncate of frozen snapshot table")
	}
	t.markDirty()
	for _, p := range t.pages {
		t.db.cacheInvalidate(p)
	}
	t.pages = nil
	t.bRows, t.bLive, t.bSize = nil, nil, 0
	t.liveRows = 0
	for _, idx := range t.indexes {
		idx.tree = newBTree()
	}
}

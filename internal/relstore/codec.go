package relstore

import (
	"encoding/binary"
	"fmt"
	"math"

	"archis/internal/xmltree"
)

// The row codec is a compact tagged binary encoding:
//
//	row    := liveFlag(1B) ncols(varint) value*
//	value  := kind(1B) payload
//	payload: Int/Date → zigzag varint; Float → 8B LE; Bool → 1B;
//	         String/Bytes/XML → varint length + bytes; Null → empty.
//
// XML values are serialized as their textual form; they only occur in
// transient results, not in stored base tables, but the codec supports
// them so intermediate spooling works.

func appendUvarint(dst []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(dst, tmp[:n]...)
}

func appendVarint(dst []byte, v int64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutVarint(tmp[:], v)
	return append(dst, tmp[:n]...)
}

// EncodeValue appends the binary form of v to dst.
func EncodeValue(dst []byte, v Value) []byte {
	dst = append(dst, byte(v.Kind))
	switch v.Kind {
	case TypeNull:
	case TypeInt, TypeDate:
		dst = appendVarint(dst, v.I)
	case TypeFloat:
		var tmp [8]byte
		binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(v.F))
		dst = append(dst, tmp[:]...)
	case TypeBool:
		if v.Truth {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	case TypeString:
		dst = appendUvarint(dst, uint64(len(v.S)))
		dst = append(dst, v.S...)
	case TypeBytes:
		dst = appendUvarint(dst, uint64(len(v.B)))
		dst = append(dst, v.B...)
	case TypeXML:
		s := ""
		if v.X != nil {
			s = xmltree.String(v.X)
		}
		dst = appendUvarint(dst, uint64(len(s)))
		dst = append(dst, s...)
	}
	return dst
}

// DecodeValue reads one value from buf, returning it and the bytes
// consumed.
func DecodeValue(buf []byte) (Value, int, error) {
	if len(buf) == 0 {
		return Null, 0, fmt.Errorf("relstore: decode value: empty buffer")
	}
	kind := Type(buf[0])
	pos := 1
	switch kind {
	case TypeNull:
		return Null, pos, nil
	case TypeInt, TypeDate:
		i, n := binary.Varint(buf[pos:])
		if n <= 0 {
			return Null, 0, fmt.Errorf("relstore: decode value: bad varint")
		}
		return Value{Kind: kind, I: i}, pos + n, nil
	case TypeFloat:
		if len(buf) < pos+8 {
			return Null, 0, fmt.Errorf("relstore: decode value: short float")
		}
		f := math.Float64frombits(binary.LittleEndian.Uint64(buf[pos:]))
		return Float(f), pos + 8, nil
	case TypeBool:
		if len(buf) < pos+1 {
			return Null, 0, fmt.Errorf("relstore: decode value: short bool")
		}
		return Bool(buf[pos] != 0), pos + 1, nil
	case TypeString, TypeBytes, TypeXML:
		l, n := binary.Uvarint(buf[pos:])
		if n <= 0 || len(buf) < pos+n+int(l) {
			return Null, 0, fmt.Errorf("relstore: decode value: bad length")
		}
		pos += n
		data := buf[pos : pos+int(l)]
		pos += int(l)
		switch kind {
		case TypeString:
			return String_(string(data)), pos, nil
		case TypeBytes:
			b := make([]byte, len(data))
			copy(b, data)
			return Bytes(b), pos, nil
		default:
			if len(data) == 0 {
				return Value{Kind: TypeXML}, pos, nil
			}
			node, err := xmltree.ParseString(string(data))
			if err != nil {
				return Null, 0, fmt.Errorf("relstore: decode value: %w", err)
			}
			return XML(node), pos, nil
		}
	}
	return Null, 0, fmt.Errorf("relstore: decode value: unknown kind %d", kind)
}

// EncodeRow appends the binary form of a row (with its live flag).
func EncodeRow(dst []byte, r Row, live bool) []byte {
	if live {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = appendUvarint(dst, uint64(len(r)))
	for _, v := range r {
		dst = EncodeValue(dst, v)
	}
	return dst
}

// DecodeRow reads one row from buf, returning the row, its live flag
// and the bytes consumed.
func DecodeRow(buf []byte) (Row, bool, int, error) {
	vals, live, pos, err := DecodeRowInto(nil, buf)
	if err != nil {
		return nil, false, 0, err
	}
	return Row(vals), live, pos, nil
}

// DecodeRowInto is DecodeRow appending into a caller-provided arena,
// so bulk decoders (a whole page or block of rows) amortize one
// backing-array allocation across every row instead of paying one per
// row. It returns the extended arena; the decoded row occupies the
// appended tail.
func DecodeRowInto(arena []Value, buf []byte) ([]Value, bool, int, error) {
	if len(buf) == 0 {
		return nil, false, 0, fmt.Errorf("relstore: decode row: empty buffer")
	}
	live := buf[0] != 0
	pos := 1
	ncols, n := binary.Uvarint(buf[pos:])
	if n <= 0 {
		return nil, false, 0, fmt.Errorf("relstore: decode row: bad column count")
	}
	pos += n
	for i := 0; i < int(ncols); i++ {
		v, n, err := DecodeValue(buf[pos:])
		if err != nil {
			return nil, false, 0, fmt.Errorf("relstore: decode row col %d: %w", i, err)
		}
		arena = append(arena, v)
		pos += n
	}
	return arena, live, pos, nil
}

// EncodedRowSize returns the encoded size of a row without allocating.
func EncodedRowSize(r Row, scratch []byte) int {
	return len(EncodeRow(scratch[:0], r, true))
}

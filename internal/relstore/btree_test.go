package relstore

import (
	"math/rand"
	"sort"
	"testing"
)

func TestBTreeInsertLookup(t *testing.T) {
	tr := newBTree()
	for i := 0; i < 1000; i++ {
		tr.insert([]Value{Int(int64(i % 100)), Int(int64(i))}, RID{Page: int32(i), Slot: 0}, 0)
	}
	if tr.nkeys != 1000 {
		t.Fatalf("nkeys = %d", tr.nkeys)
	}
	// Prefix lookup: key (42) should match the 10 composite keys (42, *).
	count := 0
	tr.scanRange([]Value{Int(42)}, []Value{Int(42)}, func(k []Value, rids []RID) bool {
		count += len(rids)
		return true
	})
	if count != 10 {
		t.Errorf("prefix scan matched %d", count)
	}
}

func TestBTreeDuplicatePostings(t *testing.T) {
	tr := newBTree()
	key := []Value{String_("Bob")}
	tr.insert(key, RID{1, 1}, 0)
	tr.insert(key, RID{2, 2}, 0)
	if tr.nkeys != 1 {
		t.Fatalf("nkeys = %d", tr.nkeys)
	}
	var got []RID
	tr.scanRange(key, key, func(_ []Value, rids []RID) bool {
		got = append(got, rids...)
		return true
	})
	if len(got) != 2 {
		t.Fatalf("postings = %v", got)
	}
	tr.delete(key, RID{1, 1}, 0)
	got = nil
	tr.scanRange(key, key, func(_ []Value, rids []RID) bool {
		got = append(got, rids...)
		return true
	})
	if len(got) != 1 || got[0] != (RID{2, 2}) {
		t.Fatalf("postings after delete = %v", got)
	}
	tr.delete(key, RID{2, 2}, 0)
	if tr.nkeys != 0 {
		t.Errorf("nkeys after full delete = %d", tr.nkeys)
	}
}

func TestBTreeRangeScanOrdered(t *testing.T) {
	tr := newBTree()
	perm := rand.New(rand.NewSource(1)).Perm(5000)
	for _, v := range perm {
		tr.insert([]Value{Int(int64(v))}, RID{Page: int32(v)}, 0)
	}
	var got []int64
	tr.scanRange([]Value{Int(1000)}, []Value{Int(2000)}, func(k []Value, _ []RID) bool {
		got = append(got, k[0].I)
		return true
	})
	if len(got) != 1001 {
		t.Fatalf("range size = %d", len(got))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Error("range scan out of order")
	}
	if got[0] != 1000 || got[len(got)-1] != 2000 {
		t.Errorf("range bounds: %d..%d", got[0], got[len(got)-1])
	}
}

func TestBTreeOpenRange(t *testing.T) {
	tr := newBTree()
	for i := 0; i < 300; i++ {
		tr.insert([]Value{Int(int64(i))}, RID{}, 0)
	}
	count := 0
	tr.scanRange(nil, nil, func([]Value, []RID) bool { count++; return true })
	if count != 300 {
		t.Errorf("full scan = %d", count)
	}
	count = 0
	tr.scanRange([]Value{Int(250)}, nil, func([]Value, []RID) bool { count++; return true })
	if count != 50 {
		t.Errorf("open-high scan = %d", count)
	}
	count = 0
	tr.scanRange(nil, []Value{Int(49)}, func([]Value, []RID) bool { count++; return true })
	if count != 50 {
		t.Errorf("open-low scan = %d", count)
	}
}

func TestBTreeEarlyStop(t *testing.T) {
	tr := newBTree()
	for i := 0; i < 300; i++ {
		tr.insert([]Value{Int(int64(i))}, RID{}, 0)
	}
	count := 0
	tr.scanRange(nil, nil, func([]Value, []RID) bool { count++; return count < 7 })
	if count != 7 {
		t.Errorf("early stop = %d", count)
	}
}

// Property: btree agrees with a sorted-map model under random
// insert/delete, for composite string+int keys.
func TestBTreeModelProperty(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	tr := newBTree()
	model := map[string][]RID{} // rendered key -> postings
	keys := map[string][]Value{}
	render := func(k []Value) string { return k[0].Text() + "|" + k[1].Text() }
	for op := 0; op < 20000; op++ {
		k := []Value{String_(randString(r)), Int(r.Int63n(50))}
		ks := render(k)
		rid := RID{Page: int32(r.Intn(100)), Slot: int32(r.Intn(100))}
		if r.Intn(3) > 0 {
			tr.insert(k, rid, 0)
			model[ks] = append(model[ks], rid)
			keys[ks] = k
		} else if len(model[ks]) > 0 {
			victim := model[ks][0]
			tr.delete(k, victim, 0)
			model[ks] = model[ks][1:]
			if len(model[ks]) == 0 {
				delete(model, ks)
				delete(keys, ks)
			}
		}
	}
	if tr.nkeys != len(model) {
		t.Fatalf("nkeys %d vs model %d", tr.nkeys, len(model))
	}
	seen := 0
	var prev []Value
	tr.scanRange(nil, nil, func(k []Value, rids []RID) bool {
		if prev != nil && CompareKeys(prev, k) >= 0 {
			t.Fatalf("keys out of order: %v then %v", prev, k)
		}
		prev = append([]Value(nil), k...)
		ks := render(k)
		if len(model[ks]) != len(rids) {
			t.Fatalf("postings size for %s: %d vs %d", ks, len(rids), len(model[ks]))
		}
		seen++
		return true
	})
	if seen != len(model) {
		t.Fatalf("scan saw %d of %d keys", seen, len(model))
	}
}

func TestIndexMaintenance(t *testing.T) {
	db, tbl := newTestTable(t)
	ix, err := db.CreateIndex("ix_emp_id", "employee_salary", "id")
	if err != nil {
		t.Fatal(err)
	}
	var rids []RID
	for i := 0; i < 200; i++ {
		rids = append(rids, mustInsert(t, tbl, salaryRow(int64(i%20), int64(i), "1995-01-01", "9999-12-31")))
	}
	got := ix.Lookup([]Value{Int(7)})
	if len(got) != 10 {
		t.Fatalf("Lookup(7) = %d rids", len(got))
	}
	// Verify the rids actually point at id=7 rows.
	for _, rid := range got {
		row, live, err := tbl.Get(rid)
		if err != nil || !live || row[0].I != 7 {
			t.Fatalf("bad index posting %v -> %v", rid, row)
		}
	}
	// Update moves a row to a different key.
	if err := tbl.Update(rids[7], salaryRow(999, 1, "1995-01-01", "9999-12-31")); err != nil {
		t.Fatal(err)
	}
	if len(ix.Lookup([]Value{Int(7)})) != 9 {
		t.Error("update did not remove old index entry")
	}
	if len(ix.Lookup([]Value{Int(999)})) != 1 {
		t.Error("update did not add new index entry")
	}
	if err := tbl.Delete(rids[27]); err != nil { // another id=7 row
		t.Fatal(err)
	}
	if len(ix.Lookup([]Value{Int(7)})) != 8 {
		t.Error("delete did not remove index entry")
	}
}

func TestCreateIndexBackfillsAndValidates(t *testing.T) {
	db, tbl := newTestTable(t)
	for i := 0; i < 50; i++ {
		mustInsert(t, tbl, salaryRow(int64(i), int64(i), "1995-01-01", "9999-12-31"))
	}
	ix, err := db.CreateIndex("ix2", "employee_salary", "id", "tstart")
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 50 {
		t.Errorf("backfill len = %d", ix.Len())
	}
	if _, err := db.CreateIndex("bad", "employee_salary", "nope"); err == nil {
		t.Error("bad column accepted")
	}
	if _, err := db.CreateIndex("bad", "nosuch", "id"); err == nil {
		t.Error("bad table accepted")
	}
	if got := tbl.IndexOn(0); got != ix {
		t.Error("IndexOn prefix match failed")
	}
	if got := tbl.IndexOn(1); got != nil {
		t.Error("IndexOn matched wrong column")
	}
}

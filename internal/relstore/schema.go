package relstore

import (
	"fmt"
	"strings"
)

// Column describes one attribute of a table.
type Column struct {
	Name string
	Type Type
}

// Schema describes a table: its name and ordered columns.
type Schema struct {
	Name    string
	Columns []Column
}

// NewSchema builds a schema from "name TYPE" column specs.
func NewSchema(name string, cols ...Column) Schema {
	return Schema{Name: name, Columns: cols}
}

// Col is a convenience constructor for Column.
func Col(name string, t Type) Column { return Column{Name: name, Type: t} }

// ColumnIndex returns the position of the named column, or -1.
// Matching is case-insensitive, as in SQL.
func (s Schema) ColumnIndex(name string) int {
	for i, c := range s.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// MustColumnIndex is ColumnIndex that panics on unknown columns; used
// for internally generated plans where absence is a bug.
func (s Schema) MustColumnIndex(name string) int {
	i := s.ColumnIndex(name)
	if i < 0 {
		panic(fmt.Sprintf("relstore: table %s has no column %s", s.Name, name))
	}
	return i
}

// Validate checks a row against the schema, allowing NULLs anywhere.
func (s Schema) Validate(r Row) error {
	if len(r) != len(s.Columns) {
		return fmt.Errorf("relstore: table %s: row has %d values, schema has %d columns", s.Name, len(r), len(s.Columns))
	}
	for i, v := range r {
		if v.IsNull() {
			continue
		}
		want := s.Columns[i].Type
		if v.Kind != want {
			return fmt.Errorf("relstore: table %s column %s: value kind %s, want %s",
				s.Name, s.Columns[i].Name, v.Kind, want)
		}
	}
	return nil
}

// String renders the schema as a CREATE TABLE-ish signature.
func (s Schema) String() string {
	parts := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		parts[i] = c.Name + " " + c.Type.String()
	}
	return s.Name + "(" + strings.Join(parts, ", ") + ")"
}

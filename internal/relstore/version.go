package relstore

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// MVCC snapshot publication (DESIGN.md §14). A writer mutates the live
// tables copy-on-write and calls Publish(lsn) to make the result
// visible: every dirty table is frozen into a lightweight immutable
// copy (slice headers, index-root pointers — no row data is copied)
// and the whole set swaps in atomically as the new current version,
// stamped with the WAL LSN that made it durable. Readers pin a version
// with Snapshot()/SnapshotAt() and scan it without ever observing a
// torn write or blocking on the writer.
//
// Reclamation is epoch-based and cooperative with the garbage
// collector: the database retains the most recent retainedVersions
// versions (the ReadAsOf horizon); older ones are dropped from the
// ring — counted in Stats.ReclaimedVersions — and free as soon as the
// last pinned reader releases its handle.

// retainedVersions bounds the SnapshotAt horizon: how many published
// versions stay reachable for point-in-time reads.
const retainedVersions = 64

// dbSnapshot is one immutable published version of the database.
type dbSnapshot struct {
	epoch  uint64
	lsn    uint64
	tables map[string]*Table // lowercase name -> frozen copy
	names  []string          // creation order at publish time
}

// Snapshot is a pinned reader handle on one published version. It is
// safe for concurrent use; Release unpins it (idempotent). Frozen
// tables obtained from it support the whole reader surface — Scan,
// ScanBorrow, Get, index lookups, morsels, estimates — but reject
// writes.
type Snapshot struct {
	db       *Database
	s        *dbSnapshot
	released atomic.Bool
}

// Table looks up a frozen table by name (case-insensitive).
func (s *Snapshot) Table(name string) (*Table, bool) {
	t, ok := s.s.tables[strings.ToLower(name)]
	return t, ok
}

// MustTable is Table that errors helpfully.
func (s *Snapshot) MustTable(name string) (*Table, error) {
	t, ok := s.Table(name)
	if !ok {
		return nil, fmt.Errorf("relstore: no such table %s in snapshot", name)
	}
	return t, nil
}

// TableNames lists the snapshot's tables in creation order.
func (s *Snapshot) TableNames() []string {
	return append([]string(nil), s.s.names...)
}

// LSN is the WAL LSN the version was stamped with at publish.
func (s *Snapshot) LSN() uint64 { return s.s.lsn }

// Epoch is the version's publish sequence number.
func (s *Snapshot) Epoch() uint64 { return s.s.epoch }

// Release unpins the handle. Idempotent; a released handle's tables
// remain readable until garbage collected, but holding one past
// Release forfeits the pinned-reader accounting.
func (s *Snapshot) Release() {
	if s == nil {
		return
	}
	if s.released.CompareAndSwap(false, true) {
		s.db.pinned.Add(-1)
	}
}

func (db *Database) pin(v *dbSnapshot) *Snapshot {
	db.pinned.Add(1)
	return &Snapshot{db: db, s: v}
}

// SetAutoPublish controls publish-on-demand: when on (the default, for
// callers predating MVCC), Snapshot() publishes a dirty database
// before pinning, relying on the legacy writers-exclusive contract.
// Systems that publish explicitly after each write (core.System) turn
// it off so readers never take the publish lock.
func (db *Database) SetAutoPublish(on bool) { db.autoPub.Store(on) }

// Publish freezes all unpublished changes into a new immutable version
// stamped with lsn and makes it the current version. No-op when
// nothing changed since the last publish. Must not run concurrently
// with a writer (callers publish from the writer itself).
func (db *Database) Publish(lsn uint64) {
	db.publishMu.Lock()
	db.publishLocked(lsn)
	db.publishMu.Unlock()
}

func (db *Database) publishLocked(lsn uint64) *dbSnapshot {
	prev := db.current.Load()
	if prev != nil && !db.anyDirty.Load() {
		return prev
	}
	db.anyDirty.Store(false)
	db.mu.RLock()
	names := append([]string(nil), db.names...)
	tables := make(map[string]*Table, len(db.tables))
	for key, t := range db.tables {
		if !t.dirty && prev != nil {
			if pt, ok := prev.tables[key]; ok && pt.id == t.id {
				tables[key] = pt
				continue
			}
		}
		t.dirty = false
		tables[key] = t.freeze()
	}
	db.mu.RUnlock()
	v := &dbSnapshot{epoch: db.epoch.Add(1), lsn: lsn, tables: tables, names: names}
	// Bump the COW generation before the version becomes visible: the
	// writer's next in-place mutation must privatize shared arrays.
	db.cowGen.Add(1)
	db.current.Store(v)
	db.retained = append(db.retained, v)
	if n := len(db.retained) - retainedVersions; n > 0 {
		db.retained = append([]*dbSnapshot(nil), db.retained[n:]...)
		db.reclaimed.Add(int64(n))
	}
	return v
}

// Snapshot pins the current published version. In auto-publish mode a
// dirty database is published first (safe under the legacy
// writers-exclusive contract those callers follow).
func (db *Database) Snapshot() *Snapshot {
	if (db.autoPub.Load() && db.anyDirty.Load()) || db.current.Load() == nil {
		db.publishMu.Lock()
		db.publishLocked(db.lastLSNLocked())
		db.publishMu.Unlock()
	}
	return db.pin(db.current.Load())
}

// lastLSNLocked carries the previous version's LSN forward for
// publishes that have no WAL position of their own (auto-publish,
// non-durable systems). Caller holds publishMu.
func (db *Database) lastLSNLocked() uint64 {
	if v := db.current.Load(); v != nil {
		return v.lsn
	}
	return 0
}

// SnapshotAt pins the newest retained version with lsn <= the target —
// the point-in-time read primitive behind ReadAsOf. It errors when the
// target predates the retention horizon.
func (db *Database) SnapshotAt(lsn uint64) (*Snapshot, error) {
	db.publishMu.Lock()
	var found *dbSnapshot
	for i := len(db.retained) - 1; i >= 0; i-- {
		if db.retained[i].lsn <= lsn {
			found = db.retained[i]
			break
		}
	}
	db.publishMu.Unlock()
	if found == nil {
		return nil, fmt.Errorf("relstore: no retained version at or before lsn %d (retention horizon passed)", lsn)
	}
	return db.pin(found), nil
}

// freeze builds the immutable snapshot copy of a table: slice headers
// capped at their current length (so live-side appends can never land
// inside the captured window), private Index structs sharing the
// current B+tree roots, and the same page objects. O(indexes), not
// O(rows).
func (t *Table) freeze() *Table {
	ft := &Table{
		db:       t.db,
		id:       t.id,
		schema:   t.schema,
		pages:    t.pages[:len(t.pages):len(t.pages)],
		bRows:    t.bRows[:len(t.bRows):len(t.bRows)],
		bLive:    t.bLive[:len(t.bLive):len(t.bLive)],
		bSize:    t.bSize,
		zoneCols: t.zoneCols,
		liveRows: t.liveRows,
		frozen:   true,
	}
	if len(t.indexes) > 0 {
		ft.indexes = make([]*Index, len(t.indexes))
		for i, ix := range t.indexes {
			ft.indexes[i] = &Index{
				Name:   ix.Name,
				Table:  ft,
				Cols:   ix.Cols,
				Unique: ix.Unique,
				tree:   &btree{root: ix.tree.root, height: ix.tree.height, nkeys: ix.tree.nkeys},
			}
		}
	}
	return ft
}

// Frozen reports whether the table is an immutable snapshot copy.
func (t *Table) Frozen() bool { return t.frozen }

package relstore

import (
	"fmt"
	"sync"
	"testing"
)

func blockCacheTable(t *testing.T, db *Database) *Table {
	t.Helper()
	tbl, err := db.CreateTable(Schema{Name: "blobs", Columns: []Column{
		{Name: "blockno", Type: TypeInt},
	}})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func blockCacheRows(n int64) []Row {
	return []Row{{Int(n)}, {Int(n + 1)}}
}

func TestBlockCacheDisabledByDefault(t *testing.T) {
	db := NewDatabase()
	tbl := blockCacheTable(t, db)
	db.BlockCachePut(tbl, 1, blockCacheRows(1), 100)
	if _, ok := db.BlockCacheGet(tbl, 1); ok {
		t.Fatal("disabled cache returned a hit")
	}
	st := db.Stats()
	if st.BlockCacheHits != 0 || st.BlockCacheMisses != 0 {
		t.Fatalf("disabled cache counted hits/misses: %+v", st)
	}
}

func TestBlockCacheHitMissAndStats(t *testing.T) {
	db := NewDatabase()
	tbl := blockCacheTable(t, db)
	db.SetBlockCacheBytes(1 << 20)

	if _, ok := db.BlockCacheGet(tbl, 1); ok {
		t.Fatal("hit before any put")
	}
	want := blockCacheRows(1)
	db.BlockCachePut(tbl, 1, want, 64)
	got, ok := db.BlockCacheGet(tbl, 1)
	if !ok {
		t.Fatal("miss after put")
	}
	if len(got) != len(want) || got[0][0].I != want[0][0].I {
		t.Fatalf("cached rows differ: got %v want %v", got, want)
	}
	st := db.Stats()
	if st.BlockCacheHits != 1 || st.BlockCacheMisses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", st.BlockCacheHits, st.BlockCacheMisses)
	}
	if st.BlockCacheBytes != 64 {
		t.Fatalf("bytes gauge %d, want 64", st.BlockCacheBytes)
	}
	if db.CachedBlocks() != 1 {
		t.Fatalf("CachedBlocks %d, want 1", db.CachedBlocks())
	}
}

func TestBlockCacheByteBudgetEviction(t *testing.T) {
	const budget = 10_000
	bc := newBlockCache(budget)
	for i := int64(0); i < 100; i++ {
		bc.put(blockKey{1, i}, blockCacheRows(i), 1000)
	}
	if used := bc.bytesUsed(); used > budget {
		t.Fatalf("cache holds %d bytes, budget %d", used, budget)
	}
	if n := bc.entryCount(); n == 0 {
		t.Fatal("eviction emptied the cache entirely")
	}
	// Every surviving entry must still return its own rows.
	hits := 0
	for i := int64(0); i < 100; i++ {
		if rows, ok := bc.get(blockKey{1, i}); ok {
			hits++
			if rows[0][0].I != i {
				t.Fatalf("block %d returned rows of block %d", i, rows[0][0].I)
			}
		}
	}
	if hits != bc.entryCount() {
		t.Fatalf("%d hits but %d entries", hits, bc.entryCount())
	}
}

func TestBlockCacheSecondChance(t *testing.T) {
	bc := newBlockCache(4000) // single shard at this size
	bc.put(blockKey{1, 1}, blockCacheRows(1), 1500)
	bc.put(blockKey{1, 2}, blockCacheRows(2), 1500)
	// Touch block 1 so it carries the reference bit.
	if _, ok := bc.get(blockKey{1, 1}); !ok {
		t.Fatal("block 1 missing before eviction")
	}
	// Inserting a third block forces an eviction; the clock should
	// spare referenced block 1 and take block 2.
	bc.put(blockKey{1, 3}, blockCacheRows(3), 1500)
	if _, ok := bc.get(blockKey{1, 1}); !ok {
		t.Fatal("referenced block 1 was evicted before unreferenced block 2")
	}
	if _, ok := bc.get(blockKey{1, 2}); ok {
		t.Fatal("unreferenced block 2 survived over referenced block 1")
	}
}

func TestBlockCacheOversizedEntrySkipped(t *testing.T) {
	bc := newBlockCache(1000)
	bc.put(blockKey{1, 1}, blockCacheRows(1), 5000)
	if _, ok := bc.get(blockKey{1, 1}); ok {
		t.Fatal("entry larger than the shard budget was cached")
	}
	if bc.bytesUsed() != 0 {
		t.Fatalf("oversized entry counted %d bytes", bc.bytesUsed())
	}
}

func TestBlockCacheDropCaches(t *testing.T) {
	db := NewDatabase()
	tbl := blockCacheTable(t, db)
	db.SetBlockCacheBytes(1 << 20)
	db.BlockCachePut(tbl, 1, blockCacheRows(1), 64)
	db.DropCaches()
	if db.CachedBlocks() != 0 {
		t.Fatalf("DropCaches left %d blocks cached", db.CachedBlocks())
	}
	if _, ok := db.BlockCacheGet(tbl, 1); ok {
		t.Fatal("hit after DropCaches")
	}
	// The configured budget survives the drop: the cache refills.
	db.BlockCachePut(tbl, 1, blockCacheRows(1), 64)
	if _, ok := db.BlockCacheGet(tbl, 1); !ok {
		t.Fatal("cache did not refill after DropCaches")
	}
}

// TestBlockCacheConcurrent hammers gets, puts and drops from many
// goroutines; run with -race. Correctness check: a hit for key i must
// return rows for block i.
func TestBlockCacheConcurrent(t *testing.T) {
	db := NewDatabase()
	tbl := blockCacheTable(t, db)
	db.SetBlockCacheBytes(64 << 10)

	const goroutines = 8
	const rounds = 500
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				n := int64((g*rounds + r) % 37)
				if rows, ok := db.BlockCacheGet(tbl, n); ok {
					if rows[0][0].I != n {
						errc <- fmt.Errorf("block %d returned rows of block %d", n, rows[0][0].I)
						return
					}
				} else {
					db.BlockCachePut(tbl, n, blockCacheRows(n), 512)
				}
				if g == 0 && r%100 == 99 {
					db.DropCaches()
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

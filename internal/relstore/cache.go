package relstore

import "sync"

// The page cache is safe for concurrent readers: it is split into
// power-of-two shards, each owning a private map plus a CLOCK ring, so
// parallel scans over different pages rarely contend on the same lock.
// Eviction is clock-hand second-chance — O(1) amortized per insertion —
// replacing the old full-cache sort that made every put at capacity
// O(n log n).
//
// Entries are immutable once published: writers never mutate the
// row/live slices held by the cache (see Table.rewritePage), so a get
// can hand the shared slices to concurrent readers without copying.

// maxCacheShards bounds the shard count; small caches use fewer shards
// so the configured capacity stays meaningful per shard.
const maxCacheShards = 32

// minShardPages is the target minimum per-shard capacity when choosing
// the shard count.
const minShardPages = 32

type cacheKey struct {
	pageID uint64 // page.id; ids are never reused
}

type cacheEntry struct {
	rows []Row
	live []bool
	ref  bool // CLOCK reference bit, set on every hit
}

type cacheShard struct {
	mu      sync.Mutex
	entries map[cacheKey]*cacheEntry
	// ring is the CLOCK ring of keys in insertion order. Invalidated
	// keys leave stale slots behind; the hand removes them when it
	// passes.
	ring []cacheKey
	hand int
}

type pageCache struct {
	shards   []cacheShard
	shardCap int
	mask     uint64 // len(shards) - 1; shard count is a power of two
	total    int    // configured capacity in pages; 0 disables caching
}

// newPageCache sizes the shard array so each shard holds at least
// minShardPages (exact capacity for tiny caches, up to maxCacheShards
// shards for large ones).
func newPageCache(totalPages int) *pageCache {
	pc := &pageCache{total: totalPages}
	if totalPages <= 0 {
		return pc
	}
	n := 1
	for n < maxCacheShards && totalPages/(n*2) >= minShardPages {
		n *= 2
	}
	pc.shards = make([]cacheShard, n)
	pc.mask = uint64(n - 1)
	pc.shardCap = (totalPages + n - 1) / n
	for i := range pc.shards {
		pc.shards[i].entries = map[cacheKey]*cacheEntry{}
	}
	return pc
}

func (pc *pageCache) shard(k cacheKey) *cacheShard {
	h := k.pageID * 0x9E3779B97F4A7C15
	h ^= h >> 29
	return &pc.shards[h&pc.mask]
}

func (pc *pageCache) get(k cacheKey) ([]Row, []bool, bool) {
	if pc.total == 0 {
		return nil, nil, false
	}
	sh := pc.shard(k)
	sh.mu.Lock()
	e, ok := sh.entries[k]
	if !ok {
		sh.mu.Unlock()
		return nil, nil, false
	}
	e.ref = true
	rows, live := e.rows, e.live
	sh.mu.Unlock()
	return rows, live, true
}

// put inserts or replaces an entry. The caller transfers ownership of
// rows/live to the cache: they must never be mutated afterwards.
func (pc *pageCache) put(k cacheKey, rows []Row, live []bool) {
	if pc.total == 0 {
		return
	}
	sh := pc.shard(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e, ok := sh.entries[k]; ok {
		e.rows, e.live, e.ref = rows, live, true
		return
	}
	for len(sh.entries) >= pc.shardCap {
		if !sh.evictOne() {
			break
		}
	}
	sh.entries[k] = &cacheEntry{rows: rows, live: live}
	sh.ring = append(sh.ring, k)
}

// evictOne runs the clock hand until one entry is evicted: referenced
// entries get a second chance (ref cleared), stale ring slots from
// invalidations are discarded, unreferenced entries are removed.
func (sh *cacheShard) evictOne() bool {
	for len(sh.ring) > 0 {
		if sh.hand >= len(sh.ring) {
			sh.hand = 0
		}
		k := sh.ring[sh.hand]
		e, ok := sh.entries[k]
		if !ok {
			sh.ring = append(sh.ring[:sh.hand], sh.ring[sh.hand+1:]...)
			continue
		}
		if e.ref {
			e.ref = false
			sh.hand++
			continue
		}
		delete(sh.entries, k)
		sh.ring = append(sh.ring[:sh.hand], sh.ring[sh.hand+1:]...)
		return true
	}
	return false
}

func (pc *pageCache) invalidate(k cacheKey) {
	if pc.total == 0 {
		return
	}
	sh := pc.shard(k)
	sh.mu.Lock()
	delete(sh.entries, k)
	sh.mu.Unlock()
}

// len reports the number of cached pages across all shards.
func (pc *pageCache) len() int {
	n := 0
	for i := range pc.shards {
		sh := &pc.shards[i]
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

package relstore

import (
	"encoding/binary"
	"fmt"
)

// PageSize is the physical block size of the storage layer. Rows
// larger than a page get a private oversized ("jumbo") page, the
// classic BLOB escape hatch.
const PageSize = 4096

// RID addresses a row physically: page number and slot within it.
type RID struct {
	Page int32
	Slot int32
}

func (r RID) String() string { return fmt.Sprintf("(%d,%d)", r.Page, r.Slot) }

// zoneEntry is the per-page min/max of one column, maintained for
// orderable scalar columns. It enables scan pruning ("zone maps"),
// which is how segment clustering pays off physically: a predicate
// segno = 7 skips every page whose zone excludes 7.
type zoneEntry struct {
	min, max int64
	valid    bool
}

// page is one storage block: the encoded row bytes plus slot directory
// and zone maps. Pages are immutable on disk; mutation re-encodes.
//
// id is the page's identity for the page cache: database-global, never
// reused. Snapshot versions of a table can keep referencing a page
// after the live table replaces it at the same position (rewritePage,
// Compact), so cache entries must be keyed by page identity, not by
// (table, position).
type page struct {
	id      uint64
	buf     []byte      // encoded rows, concatenated
	offsets []int32     // slot -> offset into buf (entry per row, incl. dead)
	live    int         // count of live rows
	zones   []zoneEntry // per int/date column
}

func (p *page) rowCount() int { return len(p.offsets) }

// decode returns the rows (nil entries for dead slots).
func (p *page) decodeRows() ([]Row, []bool, error) {
	n := len(p.offsets)
	rows := make([]Row, n)
	liveFlags := make([]bool, n)
	// All rows decode into one shared Value arena — one allocation per
	// page instead of one per row. The arena (like the cache entry it
	// becomes part of) is immutable after decode, so rows may alias it
	// freely. Row headers are fixed up after the loop in case an
	// underestimated arena reallocates while growing.
	arena := make([]Value, 0, n*p.rowWidthHint())
	bounds := make([]int32, n+1)
	for i, off := range p.offsets {
		var live bool
		var err error
		arena, live, _, err = DecodeRowInto(arena, p.buf[off:])
		if err != nil {
			return nil, nil, fmt.Errorf("relstore: page decode slot %d: %w", i, err)
		}
		bounds[i+1] = int32(len(arena))
		liveFlags[i] = live
	}
	for i := range rows {
		rows[i] = Row(arena[bounds[i]:bounds[i+1]:bounds[i+1]])
	}
	return rows, liveFlags, nil
}

// rowWidthHint estimates columns per row for arena pre-sizing from the
// first encoded row (0 when the page is empty).
func (p *page) rowWidthHint() int {
	if len(p.offsets) == 0 {
		return 0
	}
	buf := p.buf[p.offsets[0]:]
	if len(buf) < 2 {
		return 0
	}
	ncols, n := binary.Uvarint(buf[1:])
	if n <= 0 {
		return 0
	}
	return int(ncols)
}

// buildPage encodes rows into a fresh page and computes zone maps.
// zoneCols lists the column positions to track (int/date columns).
func buildPage(rows []Row, liveFlags []bool, zoneCols []int, ncols int) *page {
	p := &page{zones: make([]zoneEntry, ncols)}
	for i, r := range rows {
		p.offsets = append(p.offsets, int32(len(p.buf)))
		p.buf = EncodeRow(p.buf, r, liveFlags[i])
		if liveFlags[i] {
			p.live++
			for _, c := range zoneCols {
				if c >= len(r) {
					continue
				}
				v := r[c]
				if v.Kind != TypeInt && v.Kind != TypeDate {
					continue
				}
				z := &p.zones[c]
				if !z.valid {
					z.min, z.max, z.valid = v.I, v.I, true
				} else {
					if v.I < z.min {
						z.min = v.I
					}
					if v.I > z.max {
						z.max = v.I
					}
				}
			}
		}
	}
	return p
}

// zoneExcludes reports whether the page certainly contains no live row
// whose column col satisfies (op, bound). op is one of "=", "<", "<=",
// ">", ">=". Unknown zones never exclude.
func (p *page) zoneExcludes(col int, op string, bound int64) bool {
	if col < 0 || col >= len(p.zones) {
		return false
	}
	z := p.zones[col]
	if !z.valid {
		// No live rows contributed a value for the column; exclude only
		// if the page has no live rows at all.
		return p.live == 0
	}
	switch op {
	case "=":
		return bound < z.min || bound > z.max
	case "<":
		return z.min >= bound
	case "<=":
		return z.min > bound
	case ">":
		return z.max <= bound
	case ">=":
		return z.max < bound
	}
	return false
}

// byteSize returns the physical footprint of the page: a full block
// for ordinary pages, the exact buffer size for jumbo pages.
func (p *page) byteSize() int {
	if len(p.buf) > PageSize {
		return len(p.buf)
	}
	return PageSize
}

package relstore

import (
	"fmt"
	"math/rand"
	"testing"

	"archis/internal/temporal"
)

func newTestTable(t *testing.T) (*Database, *Table) {
	t.Helper()
	db := NewDatabase()
	tbl, err := db.CreateTable(NewSchema("employee_salary",
		Col("id", TypeInt), Col("salary", TypeInt),
		Col("tstart", TypeDate), Col("tend", TypeDate)))
	if err != nil {
		t.Fatal(err)
	}
	return db, tbl
}

func salaryRow(id, salary int64, start, end string) Row {
	return Row{Int(id), Int(salary), DateV(temporal.MustParseDate(start)), DateV(temporal.MustParseDate(end))}
}

func TestInsertScanGet(t *testing.T) {
	_, tbl := newTestTable(t)
	var rids []RID
	for i := 0; i < 100; i++ {
		rid, err := tbl.Insert(salaryRow(int64(1000+i), int64(40000+i*10), "1995-01-01", "9999-12-31"))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	if tbl.LiveRows() != 100 {
		t.Fatalf("LiveRows = %d", tbl.LiveRows())
	}
	row, live, err := tbl.Get(rids[42])
	if err != nil || !live {
		t.Fatalf("Get: %v live=%v", err, live)
	}
	if v, _ := row[0].AsInt(); v != 1042 {
		t.Errorf("row id = %d", v)
	}
	count := 0
	if err := tbl.Scan(nil, func(rid RID, row Row) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != 100 {
		t.Errorf("scan count = %d", count)
	}
}

func TestScanEarlyStop(t *testing.T) {
	_, tbl := newTestTable(t)
	for i := 0; i < 50; i++ {
		mustInsert(t, tbl, salaryRow(int64(i), 1, "1995-01-01", "1995-12-31"))
	}
	count := 0
	_ = tbl.Scan(nil, func(RID, Row) bool { count++; return count < 10 })
	if count != 10 {
		t.Errorf("early stop: %d", count)
	}
}

func mustInsert(t *testing.T, tbl *Table, r Row) RID {
	t.Helper()
	rid, err := tbl.Insert(r)
	if err != nil {
		t.Fatal(err)
	}
	return rid
}

func TestUpdateDelete(t *testing.T) {
	_, tbl := newTestTable(t)
	rid := mustInsert(t, tbl, salaryRow(1, 100, "1995-01-01", "9999-12-31"))
	if err := tbl.Update(rid, salaryRow(1, 100, "1995-01-01", "1996-01-01")); err != nil {
		t.Fatal(err)
	}
	row, live, _ := tbl.Get(rid)
	if !live || row[3].Date().String() != "1996-01-01" {
		t.Errorf("update not visible: %v live=%v", row, live)
	}
	if err := tbl.Delete(rid); err != nil {
		t.Fatal(err)
	}
	if tbl.LiveRows() != 0 {
		t.Errorf("LiveRows after delete = %d", tbl.LiveRows())
	}
	if _, live, _ := tbl.Get(rid); live {
		t.Error("deleted row still live")
	}
	if err := tbl.Update(rid, salaryRow(1, 1, "1995-01-01", "1995-01-02")); err == nil {
		t.Error("update of dead row should fail")
	}
	count := 0
	_ = tbl.Scan(nil, func(RID, Row) bool { count++; return true })
	if count != 0 {
		t.Errorf("scan sees %d dead rows", count)
	}
}

func TestUpdateDeleteOnSealedPages(t *testing.T) {
	_, tbl := newTestTable(t)
	var rids []RID
	for i := 0; i < 500; i++ { // several pages
		rids = append(rids, mustInsert(t, tbl, salaryRow(int64(i), int64(i), "1995-01-01", "9999-12-31")))
	}
	tbl.Flush()
	if tbl.PageCount() < 2 {
		t.Fatalf("expected multiple pages, got %d", tbl.PageCount())
	}
	if err := tbl.Update(rids[3], salaryRow(3, 999, "1995-01-01", "9999-12-31")); err != nil {
		t.Fatal(err)
	}
	row, live, _ := tbl.Get(rids[3])
	if !live || row[1].I != 999 {
		t.Errorf("sealed-page update lost: %v", row)
	}
	if err := tbl.Delete(rids[4]); err != nil {
		t.Fatal(err)
	}
	if tbl.LiveRows() != 499 {
		t.Errorf("LiveRows = %d", tbl.LiveRows())
	}
}

func TestSchemaValidation(t *testing.T) {
	_, tbl := newTestTable(t)
	if _, err := tbl.Insert(Row{Int(1)}); err == nil {
		t.Error("short row accepted")
	}
	if _, err := tbl.Insert(Row{String_("x"), Int(1), DateV(0), DateV(0)}); err == nil {
		t.Error("type mismatch accepted")
	}
	if _, err := tbl.Insert(Row{Null, Null, Null, Null}); err != nil {
		t.Errorf("all-null row rejected: %v", err)
	}
}

func TestZoneMapPruning(t *testing.T) {
	db, tbl := newTestTable(t)
	// Insert rows clustered by segment-like ranges of id.
	for seg := 0; seg < 5; seg++ {
		for i := 0; i < 300; i++ {
			mustInsert(t, tbl, salaryRow(int64(seg*1000+i), int64(i), "1995-01-01", "9999-12-31"))
		}
	}
	tbl.Flush()
	db.ResetStats()
	db.DropCaches()
	count := 0
	idCol := 0
	err := tbl.Scan([]ZoneBound{{Col: idCol, Op: ">=", Bound: 4000}}, func(rid RID, row Row) bool {
		if row[0].I >= 4000 {
			count++
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 300 {
		t.Errorf("matched %d rows", count)
	}
	st := db.Stats()
	if st.PagesSkipped == 0 {
		t.Error("zone maps skipped nothing")
	}
	if st.BlockReads >= int64(tbl.PageCount()) {
		t.Errorf("pruned scan read all %d pages (%d reads)", tbl.PageCount(), st.BlockReads)
	}
}

func TestPageCacheAccounting(t *testing.T) {
	db, tbl := newTestTable(t)
	for i := 0; i < 1000; i++ {
		mustInsert(t, tbl, salaryRow(int64(i), int64(i), "1995-01-01", "9999-12-31"))
	}
	tbl.Flush()
	db.DropCaches()
	db.ResetStats()
	_ = tbl.Scan(nil, func(RID, Row) bool { return true })
	cold := db.Stats().BlockReads
	if cold == 0 {
		t.Fatal("no block reads on cold scan")
	}
	_ = tbl.Scan(nil, func(RID, Row) bool { return true })
	if db.Stats().BlockReads != cold {
		t.Errorf("warm scan caused physical reads: %d -> %d", cold, db.Stats().BlockReads)
	}
	if db.Stats().CacheHits == 0 {
		t.Error("warm scan recorded no cache hits")
	}
	db.DropCaches()
	_ = tbl.Scan(nil, func(RID, Row) bool { return true })
	if db.Stats().BlockReads != 2*cold {
		t.Errorf("dropped caches not cold: %d vs %d", db.Stats().BlockReads, 2*cold)
	}
}

func TestCacheEviction(t *testing.T) {
	db := NewDatabase()
	db.SetCacheCapacity(4)
	tbl, _ := db.CreateTable(NewSchema("t", Col("a", TypeInt)))
	for i := 0; i < 5000; i++ {
		mustInsert(t, tbl, Row{Int(int64(i))})
	}
	tbl.Flush()
	_ = tbl.Scan(nil, func(RID, Row) bool { return true })
	if n := db.CachedPages(); n > 4 {
		t.Errorf("cache grew to %d entries", n)
	}
}

func TestJumboRows(t *testing.T) {
	db := NewDatabase()
	tbl, _ := db.CreateTable(NewSchema("blobs", Col("id", TypeInt), Col("data", TypeBytes)))
	big := make([]byte, 3*PageSize)
	for i := range big {
		big[i] = byte(i)
	}
	rid := mustInsert(t, tbl, Row{Int(1), Bytes(big)})
	mustInsert(t, tbl, Row{Int(2), Bytes([]byte("small"))})
	tbl.Flush()
	row, live, err := tbl.Get(rid)
	if err != nil || !live {
		t.Fatalf("jumbo get: %v", err)
	}
	if len(row[1].B) != len(big) || row[1].B[777] != big[777] {
		t.Error("jumbo blob corrupted")
	}
	if tbl.ByteSize() <= 3*PageSize {
		t.Errorf("ByteSize %d ignores jumbo page", tbl.ByteSize())
	}
}

func TestTruncate(t *testing.T) {
	db, tbl := newTestTable(t)
	for i := 0; i < 100; i++ {
		mustInsert(t, tbl, salaryRow(int64(i), 1, "1995-01-01", "9999-12-31"))
	}
	ix, err := db.CreateIndex("ix_id", "employee_salary", "id")
	if err != nil {
		t.Fatal(err)
	}
	tbl.Truncate()
	if tbl.LiveRows() != 0 || tbl.TotalRows() != 0 || ix.Len() != 0 {
		t.Error("truncate left state behind")
	}
}

func TestDatabaseCatalog(t *testing.T) {
	db := NewDatabase()
	if _, err := db.CreateTable(NewSchema("a", Col("x", TypeInt))); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable(NewSchema("A", Col("x", TypeInt))); err == nil {
		t.Error("case-insensitive duplicate accepted")
	}
	if _, ok := db.Table("A"); !ok {
		t.Error("case-insensitive lookup failed")
	}
	if _, err := db.MustTable("zzz"); err == nil {
		t.Error("missing table not reported")
	}
	if err := db.DropTable("a"); err != nil {
		t.Fatal(err)
	}
	if len(db.TableNames()) != 0 {
		t.Errorf("names after drop: %v", db.TableNames())
	}
}

// Property: a randomized sequence of inserts/updates/deletes agrees
// with a map-based model.
func TestTableModelProperty(t *testing.T) {
	db := NewDatabase()
	tbl, _ := db.CreateTable(NewSchema("m", Col("k", TypeInt), Col("v", TypeString)))
	r := rand.New(rand.NewSource(11))
	model := map[RID]Row{}
	var liveRIDs []RID
	for op := 0; op < 3000; op++ {
		switch {
		case len(liveRIDs) == 0 || r.Intn(10) < 6:
			row := Row{Int(r.Int63n(1000)), String_(fmt.Sprintf("v%d", op))}
			rid := mustInsert(t, tbl, row)
			model[rid] = row
			liveRIDs = append(liveRIDs, rid)
		case r.Intn(2) == 0:
			i := r.Intn(len(liveRIDs))
			rid := liveRIDs[i]
			row := Row{Int(r.Int63n(1000)), String_(fmt.Sprintf("u%d", op))}
			if err := tbl.Update(rid, row); err != nil {
				t.Fatal(err)
			}
			model[rid] = row
		default:
			i := r.Intn(len(liveRIDs))
			rid := liveRIDs[i]
			if err := tbl.Delete(rid); err != nil {
				t.Fatal(err)
			}
			delete(model, rid)
			liveRIDs = append(liveRIDs[:i], liveRIDs[i+1:]...)
		}
		if r.Intn(50) == 0 {
			tbl.Flush()
		}
	}
	if tbl.LiveRows() != len(model) {
		t.Fatalf("LiveRows %d vs model %d", tbl.LiveRows(), len(model))
	}
	seen := map[RID]bool{}
	err := tbl.Scan(nil, func(rid RID, row Row) bool {
		want, ok := model[rid]
		if !ok {
			t.Fatalf("scan returned unexpected rid %v", rid)
		}
		for c := range want {
			if Compare(want[c], row[c]) != 0 {
				t.Fatalf("rid %v col %d: %v vs %v", rid, c, row[c], want[c])
			}
		}
		seen[rid] = true
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(model) {
		t.Fatalf("scan saw %d of %d rows", len(seen), len(model))
	}
}

package relstore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
)

// On-disk format (little endian):
//
//	magic "ARCHISDB1" | u32 numTables
//	per table:
//	  schema: str name | u32 ncols | (str colname, u8 type)*
//	  u32 numSealedPages
//	  per page: u32 buflen | buf | u32 nslots | u32 offsets[nslots]
//	            | u32 live | per column zone: u8 valid | i64 min | i64 max
//	  builder:  u32 nrows | per row: u8 live | u32 enclen | enc
//	  indexes:  u32 n | per index: str name | u8 unique | u32 ncols | u32 cols[]
//
// Index trees are rebuilt on load (cheaper than a portable B+tree
// format and immune to structural drift).

const dbMagic = "ARCHISDB1"

type countingWriter struct {
	w   *bufio.Writer
	err error
}

func (cw *countingWriter) bytes(b []byte) {
	if cw.err != nil {
		return
	}
	_, cw.err = cw.w.Write(b)
}

func (cw *countingWriter) u8(v uint8) { cw.bytes([]byte{v}) }
func (cw *countingWriter) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	cw.bytes(b[:])
}
func (cw *countingWriter) i64(v int64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	cw.bytes(b[:])
}
func (cw *countingWriter) str(s string) {
	cw.u32(uint32(len(s)))
	cw.bytes([]byte(s))
}

type reader struct {
	r   *bufio.Reader
	err error
}

func (rd *reader) bytes(n int) []byte {
	if rd.err != nil {
		return nil
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(rd.r, b); err != nil {
		rd.err = err
		return nil
	}
	return b
}

func (rd *reader) u8() uint8 {
	b := rd.bytes(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (rd *reader) u32() uint32 {
	b := rd.bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (rd *reader) i64() int64 {
	b := rd.bytes(8)
	if b == nil {
		return 0
	}
	return int64(binary.LittleEndian.Uint64(b))
}

func (rd *reader) str() string {
	n := rd.u32()
	if rd.err != nil || n > 1<<28 {
		if rd.err == nil {
			rd.err = fmt.Errorf("relstore: corrupt string length %d", n)
		}
		return ""
	}
	return string(rd.bytes(int(n)))
}

// Serialize writes the whole database to w.
func (db *Database) Serialize(w io.Writer) error {
	cw := &countingWriter{w: bufio.NewWriter(w)}
	cw.bytes([]byte(dbMagic))
	names := db.TableNames()
	cw.u32(uint32(len(names)))
	for _, name := range names {
		t, _ := db.Table(name)
		writeTable(cw, t)
	}
	if cw.err != nil {
		return fmt.Errorf("relstore: save: %w", cw.err)
	}
	return cw.w.Flush()
}

func writeTable(cw *countingWriter, t *Table) {
	cw.str(t.schema.Name)
	cw.u32(uint32(len(t.schema.Columns)))
	for _, c := range t.schema.Columns {
		cw.str(c.Name)
		cw.u8(uint8(c.Type))
	}
	cw.u32(uint32(len(t.pages)))
	for _, p := range t.pages {
		cw.u32(uint32(len(p.buf)))
		cw.bytes(p.buf)
		cw.u32(uint32(len(p.offsets)))
		for _, off := range p.offsets {
			cw.u32(uint32(off))
		}
		cw.u32(uint32(p.live))
		for _, z := range p.zones {
			if z.valid {
				cw.u8(1)
			} else {
				cw.u8(0)
			}
			cw.i64(z.min)
			cw.i64(z.max)
		}
	}
	cw.u32(uint32(len(t.bRows)))
	for i, r := range t.bRows {
		if t.bLive[i] {
			cw.u8(1)
		} else {
			cw.u8(0)
		}
		enc := EncodeRow(nil, r, t.bLive[i])
		cw.u32(uint32(len(enc)))
		cw.bytes(enc)
	}
	cw.u32(uint32(len(t.indexes)))
	for _, ix := range t.indexes {
		cw.str(ix.Name)
		if ix.Unique {
			cw.u8(1)
		} else {
			cw.u8(0)
		}
		cw.u32(uint32(len(ix.Cols)))
		for _, c := range ix.Cols {
			cw.u32(uint32(c))
		}
	}
}

// ReadDatabase deserializes a database written by Serialize, rebuilding
// index trees and row counters.
func ReadDatabase(r io.Reader) (*Database, error) {
	rd := &reader{r: bufio.NewReader(r)}
	if string(rd.bytes(len(dbMagic))) != dbMagic {
		return nil, fmt.Errorf("relstore: not an ArchIS database file")
	}
	db := NewDatabase()
	numTables := rd.u32()
	for i := uint32(0); i < numTables && rd.err == nil; i++ {
		if err := readTable(rd, db); err != nil {
			return nil, err
		}
	}
	if rd.err != nil {
		return nil, fmt.Errorf("relstore: load: %w", rd.err)
	}
	return db, nil
}

func readTable(rd *reader, db *Database) error {
	name := rd.str()
	ncols := rd.u32()
	if rd.err != nil || ncols > 4096 {
		return fmt.Errorf("relstore: corrupt table header for %q", name)
	}
	cols := make([]Column, ncols)
	for i := range cols {
		cols[i] = Column{Name: rd.str(), Type: Type(rd.u8())}
	}
	t, err := db.CreateTable(NewSchema(name, cols...))
	if err != nil {
		return err
	}
	numPages := rd.u32()
	for p := uint32(0); p < numPages && rd.err == nil; p++ {
		buflen := rd.u32()
		if buflen > 1<<30 {
			return fmt.Errorf("relstore: corrupt page in %q", name)
		}
		pg := &page{buf: rd.bytes(int(buflen))}
		nslots := rd.u32()
		if nslots > 1<<24 {
			return fmt.Errorf("relstore: corrupt slot count in %q", name)
		}
		pg.offsets = make([]int32, nslots)
		for s := range pg.offsets {
			pg.offsets[s] = int32(rd.u32())
		}
		pg.live = int(rd.u32())
		pg.zones = make([]zoneEntry, ncols)
		for z := range pg.zones {
			pg.zones[z].valid = rd.u8() == 1
			pg.zones[z].min = rd.i64()
			pg.zones[z].max = rd.i64()
		}
		t.pages = append(t.pages, db.stampPage(pg))
		t.liveRows += pg.live
	}
	nrows := rd.u32()
	if nrows > 1<<24 {
		return fmt.Errorf("relstore: corrupt builder in %q", name)
	}
	for i := uint32(0); i < nrows && rd.err == nil; i++ {
		live := rd.u8() == 1
		enclen := rd.u32()
		enc := rd.bytes(int(enclen))
		if rd.err != nil {
			break
		}
		row, encLive, _, err := DecodeRow(enc)
		if err != nil {
			return fmt.Errorf("relstore: %q builder row: %w", name, err)
		}
		if encLive != live {
			return fmt.Errorf("relstore: %q builder row live flag mismatch", name)
		}
		t.bRows = append(t.bRows, row)
		t.bLive = append(t.bLive, live)
		t.bSize += len(enc)
		if live {
			t.liveRows++
		}
	}
	nIdx := rd.u32()
	if nIdx > 1024 {
		return fmt.Errorf("relstore: corrupt index count in %q", name)
	}
	for i := uint32(0); i < nIdx && rd.err == nil; i++ {
		ixName := rd.str()
		unique := rd.u8() == 1
		nic := rd.u32()
		if nic > ncols {
			return fmt.Errorf("relstore: corrupt index %q", ixName)
		}
		colNames := make([]string, nic)
		for c := range colNames {
			pos := rd.u32()
			if pos >= ncols {
				return fmt.Errorf("relstore: index %q column out of range", ixName)
			}
			colNames[c] = cols[pos].Name
		}
		if rd.err != nil {
			break
		}
		ix, err := db.CreateIndex(ixName, name, colNames...)
		if err != nil {
			return err
		}
		ix.Unique = unique
	}
	return rd.err
}

// SaveFile writes the database to path atomically AND durably: the
// temp file is fsynced before the rename (so the rename can never
// expose an empty or torn file after a crash) and the parent directory
// is fsynced after it (so the rename itself survives).
func (db *Database) SaveFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := db.Serialize(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory's metadata; some platforms (notably
// windows) refuse to sync directories, which is ignored.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && runtime.GOOS != "windows" {
		return err
	}
	return nil
}

// LoadFile reads a database written by SaveFile.
func LoadFile(path string) (*Database, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadDatabase(f)
}

package relstore

// Columnar batches: the unit of work of the vectorized execution path.
// A ColBatch holds up to a block's worth of rows decomposed into
// per-column vectors, plus a selection vector naming the rows that are
// still alive after filtering. Producers (the columnar block store)
// fill only the columns a consumer declared it needs; kernels then
// narrow Sel without ever materializing dropped rows.
//
// The ownership contract mirrors borrowed rows: a batch handed to a
// consumer callback is valid only for the duration of the callback,
// and everything inside it is read-only. Values reconstructed from a
// batch own their string/byte payloads (the codec copies on decode),
// so they may be retained past the callback like any decoded Value.

// ColBatch is one batch of rows in columnar form.
type ColBatch struct {
	N    int      // rows in the batch
	Cols []ColVec // one per schema column; Present=false means not decoded
	Sel  []int32  // ascending indices of selected rows; nil = all N
}

// ColVec is one column of a batch. Payloads are positionally aligned:
// slot i is meaningful only when KindAt(i) names that payload family.
//
//	Int, Date, Bool -> I  (Bool stores 0/1)
//	Float           -> F
//	String          -> S
//	anything else   -> Aux (a full Value)
type ColVec struct {
	Present bool
	Kind    Type   // uniform kind when Kinds is nil
	Kinds   []Type // per-row kinds; nil means every row is Kind
	I       []int64
	F       []float64
	S       []string
	Aux     []Value
}

// KindAt returns the kind of row i's value in this column.
func (v *ColVec) KindAt(i int) Type {
	if v.Kinds != nil {
		return v.Kinds[i]
	}
	return v.Kind
}

// ValueAt reconstructs row i's Value from the column payloads.
func (v *ColVec) ValueAt(i int) Value {
	switch v.KindAt(i) {
	case TypeNull:
		return Null
	case TypeInt:
		return Int(v.I[i])
	case TypeDate:
		return Value{Kind: TypeDate, I: v.I[i]}
	case TypeBool:
		return Bool(v.I[i] != 0)
	case TypeFloat:
		return Float(v.F[i])
	case TypeString:
		return String_(v.S[i])
	default:
		return v.Aux[i]
	}
}

// Selected returns the effective selection: Sel if set, else scratch
// grown to the identity selection [0, N).
func (b *ColBatch) Selected(scratch []int32) []int32 {
	if b.Sel != nil {
		return b.Sel
	}
	if cap(scratch) < b.N {
		scratch = make([]int32, b.N)
	}
	scratch = scratch[:b.N]
	for i := range scratch {
		scratch[i] = int32(i)
	}
	return scratch
}

// FillRow writes row i's values for the needed columns into dst
// (len(dst) == len(b.Cols)); columns not needed or not decoded stay
// untouched. Pass needed == nil to fill every decoded column. The
// inline switch mirrors ValueAt but constructs each Value straight
// into dst — one struct write per cell instead of a return-value copy
// plus an assignment (this is the vectorized drain's hottest loop).
func (b *ColBatch) FillRow(dst Row, i int, needed []bool) {
	for c := range b.Cols {
		if needed != nil && !needed[c] {
			continue
		}
		v := &b.Cols[c]
		if !v.Present {
			continue
		}
		switch v.KindAt(i) {
		case TypeNull:
			dst[c] = Null
		case TypeInt:
			dst[c] = Value{Kind: TypeInt, I: v.I[i]}
		case TypeDate:
			dst[c] = Value{Kind: TypeDate, I: v.I[i]}
		case TypeBool:
			dst[c] = Value{Kind: TypeBool, Truth: v.I[i] != 0}
		case TypeFloat:
			dst[c] = Value{Kind: TypeFloat, F: v.F[i]}
		case TypeString:
			dst[c] = Value{Kind: TypeString, S: v.S[i]}
		default:
			dst[c] = v.Aux[i]
		}
	}
}

// Reset clears the batch for reuse, keeping payload capacity.
func (b *ColBatch) Reset(n, ncols int) {
	b.N = n
	b.Sel = nil
	if cap(b.Cols) < ncols {
		b.Cols = make([]ColVec, ncols)
	}
	b.Cols = b.Cols[:ncols]
	for c := range b.Cols {
		b.Cols[c].Present = false
		b.Cols[c].Kind = TypeNull
		b.Cols[c].Kinds = nil
	}
}

// SetFromRows fills the batch from materialized rows (the adapter used
// for uncompressed morsels and legacy row-encoded blocks): every
// needed column becomes a mixed-kind vector backed by Aux values.
// Values are copied by value, so the batch stays valid as long as the
// rows' payloads do.
func (b *ColBatch) SetFromRows(rows []Row, ncols int, needed []bool) {
	b.Reset(len(rows), ncols)
	for c := 0; c < ncols; c++ {
		if needed != nil && !needed[c] {
			continue
		}
		v := &b.Cols[c]
		v.Present = true
		if cap(v.Kinds) < len(rows) {
			v.Kinds = make([]Type, len(rows))
		}
		v.Kinds = v.Kinds[:len(rows)]
		if cap(v.Aux) < len(rows) {
			v.Aux = make([]Value, len(rows))
		}
		v.Aux = v.Aux[:len(rows)]
		needI, needF, needS := false, false, false
		for i, r := range rows {
			k := TypeNull
			if c < len(r) {
				k = r[c].Kind
			}
			v.Kinds[i] = k
			switch k {
			case TypeInt, TypeDate:
				needI = true
			case TypeBool:
				needI = true
			case TypeFloat:
				needF = true
			case TypeString:
				needS = true
			}
		}
		if needI {
			v.I = growI64(v.I, len(rows))
		}
		if needF {
			v.F = growF64(v.F, len(rows))
		}
		if needS {
			v.S = growStr(v.S, len(rows))
		}
		for i, r := range rows {
			if c >= len(r) {
				continue
			}
			val := r[c]
			switch val.Kind {
			case TypeInt, TypeDate:
				v.I[i] = val.I
			case TypeBool:
				if val.Truth {
					v.I[i] = 1
				} else {
					v.I[i] = 0
				}
			case TypeFloat:
				v.F[i] = val.F
			case TypeString:
				v.S[i] = val.S
			default:
				v.Aux[i] = val
			}
		}
	}
}

func growI64(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	return s[:n]
}

func growF64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growStr(s []string, n int) []string {
	if cap(s) < n {
		return make([]string, n)
	}
	return s[:n]
}

// BatchFunc is one batch-granular unit of scan work, the columnar
// sibling of MorselFunc: it streams its share of the scan as column
// batches with the store's own row filter already applied through the
// selection vector. fn returning false stops the morsel (stopped=true).
// Concatenating the selected rows of every batch of every BatchFunc,
// in order, yields exactly the row sequence of the store's serial
// Scan — the same determinism contract as ScanMorsels.
type BatchFunc func(fn func(*ColBatch) bool) (stopped bool, err error)

package relstore

import "sync"

// The decoded-block cache holds the arena-decoded rows of BlockZIP
// blocks (see internal/blockzip), keyed by (store table, block number),
// so warm queries over compressed storage skip both the zlib inflate
// and the per-record row decode. It reuses the page cache's
// sharded-CLOCK design, but the budget is bytes rather than entries:
// decoded blocks vary widely in size (a jumbo BLOB block can dwarf a
// 4000-byte one), so counting entries would make the configured
// capacity meaningless.
//
// Entries are immutable once published: block blobs are append-only
// (a block number is never rewritten), so a get can hand the shared
// row slices to concurrent readers without copying, under the same
// borrow contract as page-cache rows (DESIGN.md §8.2/§8.3).

// minShardBlockBytes is the target minimum per-shard byte budget when
// choosing the shard count.
const minShardBlockBytes = 256 << 10

type blockKey struct {
	store   uint64 // owning blob Table.id; ids are never reused
	blockNo int64
}

type blockEntry struct {
	rows  []Row
	bytes int
	ref   bool // CLOCK reference bit, set on every hit
}

type blockShard struct {
	mu      sync.Mutex
	entries map[blockKey]*blockEntry
	bytes   int // sum of entry sizes in this shard
	// ring is the CLOCK ring of keys in insertion order.
	ring []blockKey
	hand int
}

type blockCache struct {
	shards      []blockShard
	shardBudget int
	mask        uint64 // len(shards) - 1; shard count is a power of two
	total       int    // configured budget in bytes; 0 disables caching
}

// newBlockCache sizes the shard array so each shard owns at least
// minShardBlockBytes of budget (exact budget for tiny caches, up to
// maxCacheShards shards for large ones).
func newBlockCache(totalBytes int) *blockCache {
	bc := &blockCache{total: totalBytes}
	if totalBytes <= 0 {
		return bc
	}
	n := 1
	for n < maxCacheShards && totalBytes/(n*2) >= minShardBlockBytes {
		n *= 2
	}
	bc.shards = make([]blockShard, n)
	bc.mask = uint64(n - 1)
	bc.shardBudget = (totalBytes + n - 1) / n
	for i := range bc.shards {
		bc.shards[i].entries = map[blockKey]*blockEntry{}
	}
	return bc
}

func (bc *blockCache) shard(k blockKey) *blockShard {
	h := k.store*0x9E3779B97F4A7C15 + uint64(k.blockNo)*0xBF58476D1CE4E5B9
	h ^= h >> 29
	return &bc.shards[h&bc.mask]
}

func (bc *blockCache) get(k blockKey) ([]Row, bool) {
	if bc.total == 0 {
		return nil, false
	}
	sh := bc.shard(k)
	sh.mu.Lock()
	e, ok := sh.entries[k]
	if !ok {
		sh.mu.Unlock()
		return nil, false
	}
	e.ref = true
	rows := e.rows
	sh.mu.Unlock()
	return rows, true
}

// put inserts an entry. The caller transfers ownership of rows to the
// cache: they must never be mutated afterwards. Entries larger than a
// whole shard's budget are not cached at all (they would evict
// everything and then be evicted themselves on the next insert).
func (bc *blockCache) put(k blockKey, rows []Row, nbytes int) {
	if bc.total == 0 || nbytes > bc.shardBudget {
		return
	}
	if nbytes < 1 {
		nbytes = 1
	}
	sh := bc.shard(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e, ok := sh.entries[k]; ok {
		// Blocks are immutable, so a re-put carries identical rows; just
		// refresh the reference bit and the (recomputed) size.
		sh.bytes += nbytes - e.bytes
		e.rows, e.bytes, e.ref = rows, nbytes, true
		return
	}
	for sh.bytes+nbytes > bc.shardBudget {
		if !sh.evictOne() {
			break
		}
	}
	sh.entries[k] = &blockEntry{rows: rows, bytes: nbytes}
	sh.ring = append(sh.ring, k)
	sh.bytes += nbytes
}

// evictOne runs the clock hand until one entry is evicted: referenced
// entries get a second chance (ref cleared), unreferenced entries are
// removed.
func (sh *blockShard) evictOne() bool {
	for len(sh.ring) > 0 {
		if sh.hand >= len(sh.ring) {
			sh.hand = 0
		}
		k := sh.ring[sh.hand]
		e, ok := sh.entries[k]
		if !ok {
			sh.ring = append(sh.ring[:sh.hand], sh.ring[sh.hand+1:]...)
			continue
		}
		if e.ref {
			e.ref = false
			sh.hand++
			continue
		}
		delete(sh.entries, k)
		sh.ring = append(sh.ring[:sh.hand], sh.ring[sh.hand+1:]...)
		sh.bytes -= e.bytes
		return true
	}
	return false
}

// bytesUsed reports the cached bytes across all shards.
func (bc *blockCache) bytesUsed() int {
	n := 0
	for i := range bc.shards {
		sh := &bc.shards[i]
		sh.mu.Lock()
		n += sh.bytes
		sh.mu.Unlock()
	}
	return n
}

// entryCount reports the number of cached blocks across all shards.
func (bc *blockCache) entryCount() int {
	n := 0
	for i := range bc.shards {
		sh := &bc.shards[i]
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

// ---- Database wiring ----

// SetBlockCacheBytes sets the decoded-block cache budget in bytes;
// 0 (the default) disables the cache entirely so every compressed
// read pays inflate + decode, which keeps cold-methodology numbers
// honest unless a deployment opts in.
func (db *Database) SetBlockCacheBytes(n int) {
	db.blockCacheCap.Store(int64(n))
	db.blockCache.Store(newBlockCache(n))
}

// BlockCacheBytes reports the bytes currently held by the decoded-block
// cache.
func (db *Database) BlockCacheBytes() int { return db.blockCache.Load().bytesUsed() }

// CachedBlocks reports how many decoded blocks are currently cached.
func (db *Database) CachedBlocks() int { return db.blockCache.Load().entryCount() }

// BlockCacheEnabled reports whether a decoded-block cache budget is
// configured. Columnar scans consult it to decide between decoding
// straight into column batches (cache off — nothing to warm) and
// decoding through the cached row form so warm queries keep hitting.
func (db *Database) BlockCacheEnabled() bool { return db.blockCache.Load().total != 0 }

// BlockCacheGet looks up the decoded rows of block blockNo of the
// given store table. The returned rows are shared and immutable
// (borrow contract). Hit/miss counters are updated.
func (db *Database) BlockCacheGet(store *Table, blockNo int64) ([]Row, bool) {
	bc := db.blockCache.Load()
	if bc.total == 0 {
		return nil, false
	}
	rows, ok := bc.get(blockKey{store.id, blockNo})
	if ok {
		db.stats.blockCacheHits.Add(1)
	} else {
		db.stats.blockCacheMisses.Add(1)
	}
	return rows, ok
}

// BlockCachePut publishes the decoded rows of a block. Ownership of
// rows transfers to the cache: the caller (and every later reader)
// must treat them as immutable. nbytes is the entry's approximate
// memory footprint used for budget accounting.
func (db *Database) BlockCachePut(store *Table, blockNo int64, rows []Row, nbytes int) {
	db.blockCache.Load().put(blockKey{store.id, blockNo}, rows, nbytes)
}

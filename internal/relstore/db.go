package relstore

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
)

// Stats counts physical activity; the deterministic analogue of the
// paper's cold-cache timing methodology.
type Stats struct {
	BlockReads   int64 // sealed pages decoded (cache misses)
	BytesRead    int64 // physical bytes of those blocks
	CacheHits    int64
	PagesSkipped int64 // pages pruned by zone maps
	Morsels      int64 // morsel work units dispatched
	RowsBorrowed int64 // rows handed out zero-copy (ScanBorrow / borrow morsels)
	RowsCopied   int64 // rows defensively copied (Scan / copy morsels)

	// Decoded-block cache (BlockZIP warm path; see blockcache.go).
	BlockCacheHits   int64
	BlockCacheMisses int64
	BlockCacheBytes  int64 // bytes currently cached (gauge, not a counter)

	// Join executor row accounting: probe-side rows processed zero-copy
	// vs combined output rows materialized.
	JoinRowsBorrowed int64
	JoinRowsCopied   int64

	// Vectorized scan accounting: column batches emitted by columnar
	// stores and the selected rows they carried.
	ColBatches   int64
	ColBatchRows int64

	// MVCC snapshot publication (version.go): published versions so
	// far, reader handles currently pinned (a gauge), and superseded
	// versions trimmed from the retained ring.
	Epoch             int64
	PinnedReaders     int64
	ReclaimedVersions int64
}

// Sub returns the counter deltas s−prev. BlockCacheBytes is a gauge,
// not a counter, so the current value is kept rather than differenced.
// This is how per-query and per-benchmark-iteration storage activity
// is attributed without touching the scan hot path.
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		BlockReads:       s.BlockReads - prev.BlockReads,
		BytesRead:        s.BytesRead - prev.BytesRead,
		CacheHits:        s.CacheHits - prev.CacheHits,
		PagesSkipped:     s.PagesSkipped - prev.PagesSkipped,
		Morsels:          s.Morsels - prev.Morsels,
		RowsBorrowed:     s.RowsBorrowed - prev.RowsBorrowed,
		RowsCopied:       s.RowsCopied - prev.RowsCopied,
		BlockCacheHits:   s.BlockCacheHits - prev.BlockCacheHits,
		BlockCacheMisses: s.BlockCacheMisses - prev.BlockCacheMisses,
		BlockCacheBytes:  s.BlockCacheBytes,
		JoinRowsBorrowed: s.JoinRowsBorrowed - prev.JoinRowsBorrowed,
		JoinRowsCopied:   s.JoinRowsCopied - prev.JoinRowsCopied,
		ColBatches:       s.ColBatches - prev.ColBatches,
		ColBatchRows:     s.ColBatchRows - prev.ColBatchRows,
		Epoch:            s.Epoch - prev.Epoch,
		PinnedReaders:    s.PinnedReaders, // gauge
		ReclaimedVersions: s.ReclaimedVersions - prev.ReclaimedVersions,
	}
}

// Database is a catalog of tables and indexes plus a shared page
// cache.
//
// Concurrency model (MVCC, version.go): writers are serialized among
// themselves (one writer at a time), but readers never block on them.
// A reader pins an immutable published version via Snapshot() /
// SnapshotAt() and scans its frozen tables; the writer mutates the
// live tables copy-on-write and makes the result visible atomically
// with Publish(lsn). Reads against live tables (DML target lookup,
// legacy callers) still require the old writers-exclusive discipline.
// The page cache and the stats counters are internally synchronized.
type Database struct {
	mu          sync.RWMutex // guards tables, names, nextTableID
	tables      map[string]*Table
	names       []string // insertion order, for deterministic listings
	nextTableID uint64

	// Snapshot publication state. publishMu serializes Publish and the
	// retained ring; current is the latest published version (nil until
	// first publish); cowGen is the copy-on-write generation bumped at
	// each publish — a writer privatizes a shared slice or B+tree node
	// on first mutation per generation. anyDirty is the publish fast
	// path: set by every write, cleared when a version is published.
	publishMu  sync.Mutex
	current    atomic.Pointer[dbSnapshot]
	retained   []*dbSnapshot // guarded by publishMu; recent versions for SnapshotAt
	cowGen     atomic.Uint64
	anyDirty   atomic.Bool
	autoPub    atomic.Bool
	epoch      atomic.Uint64
	pinned     atomic.Int64
	reclaimed  atomic.Int64
	nextPageID atomic.Uint64 // page identities for the page cache

	cache    atomic.Pointer[pageCache]
	cacheCap atomic.Int64 // configured capacity, for DropCaches rebuilds

	blockCache    atomic.Pointer[blockCache]
	blockCacheCap atomic.Int64 // configured byte budget, for DropCaches rebuilds

	stats struct {
		blockReads       atomic.Int64
		bytesRead        atomic.Int64
		cacheHits        atomic.Int64
		pagesSkipped     atomic.Int64
		morsels          atomic.Int64
		rowsBorrowed     atomic.Int64
		rowsCopied       atomic.Int64
		blockCacheHits   atomic.Int64
		blockCacheMisses atomic.Int64
		joinRowsBorrowed atomic.Int64
		joinRowsCopied   atomic.Int64
		colBatches       atomic.Int64
		colBatchRows     atomic.Int64
	}
}

// DefaultCachePages is the default page-cache capacity (~16 MiB of
// 4 KiB blocks).
const DefaultCachePages = 4096

// NewDatabase returns an empty database with the default cache size.
func NewDatabase() *Database {
	db := &Database{tables: map[string]*Table{}}
	db.cacheCap.Store(DefaultCachePages)
	db.cache.Store(newPageCache(DefaultCachePages))
	db.blockCache.Store(newBlockCache(0)) // off by default; see SetBlockCacheBytes
	db.autoPub.Store(true)                // legacy callers publish on demand at read time
	return db
}

// SetCacheCapacity sets the page-cache capacity in pages; 0 disables
// caching entirely (every read is physical).
func (db *Database) SetCacheCapacity(pages int) {
	db.cacheCap.Store(int64(pages))
	db.cache.Store(newPageCache(pages))
}

// Stats returns a snapshot of the physical counters.
func (db *Database) Stats() Stats {
	return Stats{
		BlockReads:       db.stats.blockReads.Load(),
		BytesRead:        db.stats.bytesRead.Load(),
		CacheHits:        db.stats.cacheHits.Load(),
		PagesSkipped:     db.stats.pagesSkipped.Load(),
		Morsels:          db.stats.morsels.Load(),
		RowsBorrowed:     db.stats.rowsBorrowed.Load(),
		RowsCopied:       db.stats.rowsCopied.Load(),
		BlockCacheHits:   db.stats.blockCacheHits.Load(),
		BlockCacheMisses: db.stats.blockCacheMisses.Load(),
		BlockCacheBytes:  int64(db.BlockCacheBytes()),
		JoinRowsBorrowed: db.stats.joinRowsBorrowed.Load(),
		JoinRowsCopied:   db.stats.joinRowsCopied.Load(),
		ColBatches:       db.stats.colBatches.Load(),
		ColBatchRows:     db.stats.colBatchRows.Load(),
		Epoch:            int64(db.epoch.Load()),
		PinnedReaders:    db.pinned.Load(),
		ReclaimedVersions: db.reclaimed.Load(),
	}
}

// ResetStats zeroes the counters.
func (db *Database) ResetStats() {
	db.stats.blockReads.Store(0)
	db.stats.bytesRead.Store(0)
	db.stats.cacheHits.Store(0)
	db.stats.pagesSkipped.Store(0)
	db.stats.morsels.Store(0)
	db.stats.rowsBorrowed.Store(0)
	db.stats.rowsCopied.Store(0)
	db.stats.blockCacheHits.Store(0)
	db.stats.blockCacheMisses.Store(0)
	db.stats.joinRowsBorrowed.Store(0)
	db.stats.joinRowsCopied.Store(0)
	db.stats.colBatches.Store(0)
	db.stats.colBatchRows.Store(0)
}

// AddJoinRows feeds the join executor's row accounting: borrowed
// counts probe-side rows processed zero-copy, copied counts combined
// output rows materialized.
func (db *Database) AddJoinRows(borrowed, copied int64) {
	if borrowed != 0 {
		db.stats.joinRowsBorrowed.Add(borrowed)
	}
	if copied != 0 {
		db.stats.joinRowsCopied.Add(copied)
	}
}

// CountColBatch feeds the vectorized-scan accounting: one column
// batch emitted with n selected rows.
func (db *Database) CountColBatch(n int64) {
	db.stats.colBatches.Add(1)
	db.stats.colBatchRows.Add(n)
}

// DropCaches empties the page cache and the decoded-block cache — the
// equivalent of the paper's unmount/remount between queries. Dropping
// both keeps cold-mode benchmark numbers honest even when a block
// cache is configured.
func (db *Database) DropCaches() {
	db.cache.Store(newPageCache(int(db.cacheCap.Load())))
	db.blockCache.Store(newBlockCache(int(db.blockCacheCap.Load())))
}

// CachedPages reports how many pages are currently cached.
func (db *Database) CachedPages() int { return db.cache.Load().len() }

// CreateTable registers a new table. Zone maps are maintained for all
// INT and DATE columns.
func (db *Database) CreateTable(s Schema) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	key := strings.ToLower(s.Name)
	if _, exists := db.tables[key]; exists {
		return nil, fmt.Errorf("relstore: table %s already exists", s.Name)
	}
	db.nextTableID++
	t := &Table{db: db, id: db.nextTableID, schema: s}
	for i, c := range s.Columns {
		if c.Type == TypeInt || c.Type == TypeDate {
			t.zoneCols = append(t.zoneCols, i)
		}
	}
	db.tables[key] = t
	db.names = append(db.names, s.Name)
	t.dirty = true
	db.anyDirty.Store(true)
	return t, nil
}

// Table looks a table up by name (case-insensitive).
func (db *Database) Table(name string) (*Table, bool) {
	db.mu.RLock()
	t, ok := db.tables[strings.ToLower(name)]
	db.mu.RUnlock()
	return t, ok
}

// MustTable is Table that errors helpfully.
func (db *Database) MustTable(name string) (*Table, error) {
	t, ok := db.Table(name)
	if !ok {
		return nil, fmt.Errorf("relstore: no such table %s", name)
	}
	return t, nil
}

// DropTable removes a table and its indexes.
func (db *Database) DropTable(name string) error {
	db.mu.Lock()
	key := strings.ToLower(name)
	t, ok := db.tables[key]
	if !ok {
		db.mu.Unlock()
		return fmt.Errorf("relstore: no such table %s", name)
	}
	delete(db.tables, key)
	for i, n := range db.names {
		if strings.EqualFold(n, name) {
			db.names = append(db.names[:i], db.names[i+1:]...)
			break
		}
	}
	db.mu.Unlock()
	t.Truncate()
	return nil
}

// TableNames lists tables in creation order.
func (db *Database) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, len(db.names))
	copy(out, db.names)
	return out
}

// CreateIndex builds a secondary index over the named columns and
// backfills it from existing rows.
func (db *Database) CreateIndex(name, table string, columns ...string) (*Index, error) {
	t, err := db.MustTable(table)
	if err != nil {
		return nil, err
	}
	cols := make([]int, len(columns))
	for i, c := range columns {
		pos := t.schema.ColumnIndex(c)
		if pos < 0 {
			return nil, fmt.Errorf("relstore: index %s: no column %s in %s", name, c, table)
		}
		cols[i] = pos
	}
	ix := &Index{Name: name, Table: t, Cols: cols, tree: newBTree()}
	err = t.ScanBorrow(nil, func(rid RID, row Row) bool {
		ix.insertRow(row, rid)
		return true
	})
	if err != nil {
		return nil, err
	}
	t.indexes = append(t.indexes, ix)
	t.markDirty()
	return ix, nil
}

// IndexOn returns an index of the table whose leading key columns
// match the given column positions, or nil.
func (t *Table) IndexOn(cols ...int) *Index {
	for _, ix := range t.indexes {
		if len(ix.Cols) < len(cols) {
			continue
		}
		match := true
		for i, c := range cols {
			if ix.Cols[i] != c {
				match = false
				break
			}
		}
		if match {
			return ix
		}
	}
	return nil
}

// Indexes lists the table's indexes.
func (t *Table) Indexes() []*Index { return t.indexes }

// TotalBytes returns the physical footprint of all tables.
func (db *Database) TotalBytes() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	n := 0
	for _, t := range db.tables {
		n += t.ByteSize()
	}
	return n
}

func (db *Database) cacheGet(p *page) ([]Row, []bool, bool) {
	rows, live, ok := db.cache.Load().get(cacheKey{p.id})
	if ok {
		db.stats.cacheHits.Add(1)
	}
	return rows, live, ok
}

func (db *Database) cachePut(p *page, rows []Row, live []bool) {
	db.cache.Load().put(cacheKey{p.id}, rows, live)
}

func (db *Database) cacheInvalidate(p *page) {
	db.cache.Load().invalidate(cacheKey{p.id})
}

// stampPage assigns a fresh database-global identity to a newly built
// page (the page-cache key; see page.id).
func (db *Database) stampPage(p *page) *page {
	p.id = db.nextPageID.Add(1)
	return p
}

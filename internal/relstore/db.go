package relstore

import (
	"fmt"
	"sort"
	"strings"
)

// Stats counts physical activity; the deterministic analogue of the
// paper's cold-cache timing methodology.
type Stats struct {
	BlockReads   int64 // sealed pages decoded (cache misses)
	BytesRead    int64 // physical bytes of those blocks
	CacheHits    int64
	PagesSkipped int64 // pages pruned by zone maps
}

// Database is a catalog of tables and indexes plus a shared page
// cache.
type Database struct {
	tables map[string]*Table
	names  []string // insertion order, for deterministic listings

	cache     map[cacheKey]cacheEntry
	cacheCap  int
	cacheTick int64

	stats Stats
}

type cacheKey struct {
	table  *Table
	pageNo int
}

type cacheEntry struct {
	rows []Row
	live []bool
	used int64
}

// DefaultCachePages is the default page-cache capacity (~16 MiB of
// 4 KiB blocks).
const DefaultCachePages = 4096

// NewDatabase returns an empty database with the default cache size.
func NewDatabase() *Database {
	return &Database{
		tables:   map[string]*Table{},
		cache:    map[cacheKey]cacheEntry{},
		cacheCap: DefaultCachePages,
	}
}

// SetCacheCapacity sets the page-cache capacity in pages; 0 disables
// caching entirely (every read is physical).
func (db *Database) SetCacheCapacity(pages int) {
	db.cacheCap = pages
	db.DropCaches()
}

// Stats returns a snapshot of the physical counters.
func (db *Database) Stats() Stats { return db.stats }

// ResetStats zeroes the counters.
func (db *Database) ResetStats() { db.stats = Stats{} }

// DropCaches empties the page cache — the equivalent of the paper's
// unmount/remount between queries.
func (db *Database) DropCaches() { db.cache = map[cacheKey]cacheEntry{} }

// CreateTable registers a new table. Zone maps are maintained for all
// INT and DATE columns.
func (db *Database) CreateTable(s Schema) (*Table, error) {
	key := strings.ToLower(s.Name)
	if _, exists := db.tables[key]; exists {
		return nil, fmt.Errorf("relstore: table %s already exists", s.Name)
	}
	t := &Table{db: db, schema: s}
	for i, c := range s.Columns {
		if c.Type == TypeInt || c.Type == TypeDate {
			t.zoneCols = append(t.zoneCols, i)
		}
	}
	db.tables[key] = t
	db.names = append(db.names, s.Name)
	return t, nil
}

// Table looks a table up by name (case-insensitive).
func (db *Database) Table(name string) (*Table, bool) {
	t, ok := db.tables[strings.ToLower(name)]
	return t, ok
}

// MustTable is Table that errors helpfully.
func (db *Database) MustTable(name string) (*Table, error) {
	t, ok := db.Table(name)
	if !ok {
		return nil, fmt.Errorf("relstore: no such table %s", name)
	}
	return t, nil
}

// DropTable removes a table and its indexes.
func (db *Database) DropTable(name string) error {
	key := strings.ToLower(name)
	t, ok := db.tables[key]
	if !ok {
		return fmt.Errorf("relstore: no such table %s", name)
	}
	t.Truncate()
	delete(db.tables, key)
	for i, n := range db.names {
		if strings.EqualFold(n, name) {
			db.names = append(db.names[:i], db.names[i+1:]...)
			break
		}
	}
	return nil
}

// TableNames lists tables in creation order.
func (db *Database) TableNames() []string {
	out := make([]string, len(db.names))
	copy(out, db.names)
	return out
}

// CreateIndex builds a secondary index over the named columns and
// backfills it from existing rows.
func (db *Database) CreateIndex(name, table string, columns ...string) (*Index, error) {
	t, err := db.MustTable(table)
	if err != nil {
		return nil, err
	}
	cols := make([]int, len(columns))
	for i, c := range columns {
		pos := t.schema.ColumnIndex(c)
		if pos < 0 {
			return nil, fmt.Errorf("relstore: index %s: no column %s in %s", name, c, table)
		}
		cols[i] = pos
	}
	ix := &Index{Name: name, Table: t, Cols: cols, tree: newBTree()}
	err = t.Scan(nil, func(rid RID, row Row) bool {
		ix.insertRow(row, rid)
		return true
	})
	if err != nil {
		return nil, err
	}
	t.indexes = append(t.indexes, ix)
	return ix, nil
}

// IndexOn returns an index of the table whose leading key columns
// match the given column positions, or nil.
func (t *Table) IndexOn(cols ...int) *Index {
	for _, ix := range t.indexes {
		if len(ix.Cols) < len(cols) {
			continue
		}
		match := true
		for i, c := range cols {
			if ix.Cols[i] != c {
				match = false
				break
			}
		}
		if match {
			return ix
		}
	}
	return nil
}

// Indexes lists the table's indexes.
func (t *Table) Indexes() []*Index { return t.indexes }

// TotalBytes returns the physical footprint of all tables.
func (db *Database) TotalBytes() int {
	n := 0
	for _, t := range db.tables {
		n += t.ByteSize()
	}
	return n
}

func (db *Database) cacheGet(t *Table, pageNo int) ([]Row, []bool, bool) {
	if db.cacheCap == 0 {
		return nil, nil, false
	}
	e, ok := db.cache[cacheKey{t, pageNo}]
	if !ok {
		return nil, nil, false
	}
	db.cacheTick++
	e.used = db.cacheTick
	db.cache[cacheKey{t, pageNo}] = e
	db.stats.CacheHits++
	return e.rows, e.live, true
}

func (db *Database) cachePut(t *Table, pageNo int, rows []Row, live []bool) {
	if db.cacheCap == 0 {
		return
	}
	if len(db.cache) >= db.cacheCap {
		db.evictOldest(len(db.cache) - db.cacheCap + 1)
	}
	db.cacheTick++
	db.cache[cacheKey{t, pageNo}] = cacheEntry{rows: rows, live: live, used: db.cacheTick}
}

func (db *Database) cacheInvalidate(t *Table, pageNo int) {
	delete(db.cache, cacheKey{t, pageNo})
}

// evictOldest removes the n least recently used entries. Linear in the
// cache size, but eviction is rare relative to lookups.
func (db *Database) evictOldest(n int) {
	type aged struct {
		key  cacheKey
		used int64
	}
	entries := make([]aged, 0, len(db.cache))
	for k, e := range db.cache {
		entries = append(entries, aged{k, e.used})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].used < entries[j].used })
	if n > len(entries) {
		n = len(entries)
	}
	for _, e := range entries[:n] {
		delete(db.cache, e.key)
	}
}

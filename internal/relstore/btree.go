package relstore

import "sort"

// The secondary-index structure is an in-memory B+tree over composite
// Value keys with RID postings lists at the leaves. Deletion is lazy
// (keys with empty postings are removed from the leaf but the tree is
// not rebalanced), which is fine for ArchIS' append-mostly workload.
//
// Trees are copy-on-write so published snapshots (version.go) can keep
// scanning a frozen root while the live writer mutates: every node is
// stamped with the cowGen it was created in, and a mutation clones any
// node from an older generation along its path before touching it.
// Postings lists only ever grow in place (appends past a frozen length
// are invisible to snapshot readers); removal copies the list first.
// There is no leaf sibling chain — range scans descend recursively —
// because a chained leaf would let a writer splice nodes a frozen
// reader is walking.

const btreeOrder = 64 // max keys per node

// CompareKeys orders composite keys lexicographically; a shorter key
// that is a prefix of a longer one sorts first, which makes prefix
// range scans natural.
func CompareKeys(a, b []Value) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := Compare(a[i], b[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	default:
		return 0
	}
}

type btreeNode struct {
	gen      uint64 // cowGen the node was created in; older nodes are immutable
	leaf     bool
	keys     [][]Value
	children []*btreeNode // internal nodes
	postings [][]RID      // leaf nodes, parallel to keys
}

type btree struct {
	root   *btreeNode
	height int
	nkeys  int
}

func newBTree() *btree {
	return &btree{root: &btreeNode{leaf: true}, height: 1}
}

// mutableNode returns n if it already belongs to the current
// generation, otherwise a clone that does. Outer slices are copied;
// inner key/postings arrays stay shared (keys are immutable, postings
// follow the grow-in-place / copy-on-remove rule above).
func mutableNode(n *btreeNode, gen uint64) *btreeNode {
	if n.gen == gen {
		return n
	}
	m := &btreeNode{gen: gen, leaf: n.leaf, keys: append([][]Value(nil), n.keys...)}
	if n.leaf {
		m.postings = append([][]RID(nil), n.postings...)
	} else {
		m.children = append([]*btreeNode(nil), n.children...)
	}
	return m
}

// search returns the index of the first key >= k in node keys.
func (n *btreeNode) search(k []Value) int {
	return sort.Search(len(n.keys), func(i int) bool { return CompareKeys(n.keys[i], k) >= 0 })
}

func (t *btree) insert(key []Value, rid RID, gen uint64) {
	root := mutableNode(t.root, gen)
	t.root = root
	newChild, splitKey := t.insertInto(root, key, rid, gen)
	if newChild != nil {
		t.root = &btreeNode{
			gen:      gen,
			keys:     [][]Value{splitKey},
			children: []*btreeNode{root, newChild},
		}
		t.height++
	}
}

// insertInto inserts into the subtree rooted at n, which the caller has
// already made mutable for gen; on split it returns the new right
// sibling and its separator key.
func (t *btree) insertInto(n *btreeNode, key []Value, rid RID, gen uint64) (*btreeNode, []Value) {
	if n.leaf {
		i := n.search(key)
		if i < len(n.keys) && CompareKeys(n.keys[i], key) == 0 {
			// Appending never disturbs a frozen reader: it writes past
			// every previously captured length (or reallocates).
			n.postings[i] = append(n.postings[i], rid)
			return nil, nil
		}
		n.keys = append(n.keys, nil)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = key
		n.postings = append(n.postings, nil)
		copy(n.postings[i+1:], n.postings[i:])
		n.postings[i] = []RID{rid}
		t.nkeys++
		if len(n.keys) <= btreeOrder {
			return nil, nil
		}
		mid := len(n.keys) / 2
		right := &btreeNode{
			gen:      gen,
			leaf:     true,
			keys:     append([][]Value(nil), n.keys[mid:]...),
			postings: append([][]RID(nil), n.postings[mid:]...),
		}
		n.keys = n.keys[:mid]
		n.postings = n.postings[:mid]
		return right, right.keys[0]
	}

	// Internal: child i holds keys < keys[i]; descend into the child
	// whose range contains key, cloning it into this generation first.
	i := n.search(key)
	if i < len(n.keys) && CompareKeys(n.keys[i], key) == 0 {
		i++
	}
	child := mutableNode(n.children[i], gen)
	n.children[i] = child
	newChild, splitKey := t.insertInto(child, key, rid, gen)
	if newChild == nil {
		return nil, nil
	}
	n.keys = append(n.keys, nil)
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = splitKey
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = newChild
	if len(n.keys) <= btreeOrder {
		return nil, nil
	}
	mid := len(n.keys) / 2
	upKey := n.keys[mid]
	right := &btreeNode{
		gen:      gen,
		keys:     append([][]Value(nil), n.keys[mid+1:]...),
		children: append([]*btreeNode(nil), n.children[mid+1:]...),
	}
	n.keys = n.keys[:mid]
	n.children = n.children[:mid+1]
	return right, upKey
}

// delete removes rid from key's postings; empty postings drop the key.
func (t *btree) delete(key []Value, rid RID, gen uint64) {
	n := mutableNode(t.root, gen)
	t.root = n
	for !n.leaf {
		i := n.search(key)
		if i < len(n.keys) && CompareKeys(n.keys[i], key) == 0 {
			i++
		}
		c := mutableNode(n.children[i], gen)
		n.children[i] = c
		n = c
	}
	i := n.search(key)
	if i >= len(n.keys) || CompareKeys(n.keys[i], key) != 0 {
		return
	}
	// Removal shifts elements, so it must run on a private copy: the
	// postings array may be shared with a frozen version of this leaf.
	ps := n.postings[i]
	nps := make([]RID, 0, len(ps))
	removed := false
	for _, p := range ps {
		if !removed && p == rid {
			removed = true
			continue
		}
		nps = append(nps, p)
	}
	if len(nps) == 0 {
		n.keys = append(n.keys[:i], n.keys[i+1:]...)
		n.postings = append(n.postings[:i], n.postings[i+1:]...)
		t.nkeys--
	} else {
		n.postings[i] = nps
	}
}

// scanRange visits postings for keys in [lo, hi] (either bound may be
// nil for open). With prefix semantics: a partial lo/hi key matches on
// its prefix length. fn returns false to stop.
func (t *btree) scanRange(lo, hi []Value, fn func(key []Value, rids []RID) bool) {
	t.walkRange(t.root, lo, hi, fn)
}

// walkRange is the recursive in-order range visit; it reports false to
// abort the whole scan (everything after the abort point is > hi).
func (t *btree) walkRange(n *btreeNode, lo, hi []Value, fn func(key []Value, rids []RID) bool) bool {
	if n.leaf {
		for i, k := range n.keys {
			if lo != nil && comparePrefix(k, lo) < 0 {
				continue
			}
			if hi != nil && comparePrefix(k, hi) > 0 {
				return false
			}
			if !fn(k, n.postings[i]) {
				return false
			}
		}
		return true
	}
	// Child i holds keys < keys[i]: children whose separator is < lo
	// hold only keys < lo and are skipped; once a separator exceeds hi,
	// every later subtree is out of range.
	start := 0
	if lo != nil {
		start = n.search(lo)
	}
	for i := start; i < len(n.children); i++ {
		if hi != nil && i > 0 && comparePrefix(n.keys[i-1], hi) > 0 {
			return false
		}
		if !t.walkRange(n.children[i], lo, hi, fn) {
			return false
		}
	}
	return true
}

// comparePrefix compares k against bound on bound's length only, so a
// bound (42) matches composite keys (42, *).
func comparePrefix(k, bound []Value) int {
	n := len(bound)
	if len(k) < n {
		n = len(k)
	}
	for i := 0; i < n; i++ {
		if c := Compare(k[i], bound[i]); c != 0 {
			return c
		}
	}
	if len(k) < len(bound) {
		return -1
	}
	return 0
}

// Index is a named secondary index over a subset of a table's columns.
type Index struct {
	Name   string
	Table  *Table
	Cols   []int // column positions forming the key
	Unique bool
	tree   *btree
}

func (ix *Index) keyOf(r Row) []Value {
	k := make([]Value, len(ix.Cols))
	for i, c := range ix.Cols {
		k[i] = r[c]
	}
	return k
}

func (ix *Index) insertRow(r Row, rid RID) {
	ix.tree.insert(ix.keyOf(r), rid, ix.Table.db.cowGen.Load())
}

func (ix *Index) deleteRow(r Row, rid RID) {
	ix.tree.delete(ix.keyOf(r), rid, ix.Table.db.cowGen.Load())
}

// Lookup returns the RIDs of rows whose key columns equal key (key may
// be a prefix of the index columns).
func (ix *Index) Lookup(key []Value) []RID {
	var out []RID
	ix.tree.scanRange(key, key, func(_ []Value, rids []RID) bool {
		out = append(out, rids...)
		return true
	})
	return out
}

// ScanRange visits index entries in [lo, hi] order (open bounds when
// nil), calling fn with each key and postings list.
func (ix *Index) ScanRange(lo, hi []Value, fn func(key []Value, rids []RID) bool) {
	ix.tree.scanRange(lo, hi, fn)
}

// Len returns the number of distinct keys.
func (ix *Index) Len() int { return ix.tree.nkeys }

package relstore

import "sort"

// The secondary-index structure is an in-memory B+tree over composite
// Value keys with RID postings lists at the leaves. Deletion is lazy
// (keys with empty postings are removed from the leaf but the tree is
// not rebalanced), which is fine for ArchIS' append-mostly workload.

const btreeOrder = 64 // max keys per node

// CompareKeys orders composite keys lexicographically; a shorter key
// that is a prefix of a longer one sorts first, which makes prefix
// range scans natural.
func CompareKeys(a, b []Value) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := Compare(a[i], b[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	default:
		return 0
	}
}

type btreeNode struct {
	leaf     bool
	keys     [][]Value
	children []*btreeNode // internal nodes
	postings [][]RID      // leaf nodes, parallel to keys
	next     *btreeNode   // leaf chain
}

type btree struct {
	root   *btreeNode
	height int
	nkeys  int
}

func newBTree() *btree {
	return &btree{root: &btreeNode{leaf: true}, height: 1}
}

// search returns the index of the first key >= k in node keys.
func (n *btreeNode) search(k []Value) int {
	return sort.Search(len(n.keys), func(i int) bool { return CompareKeys(n.keys[i], k) >= 0 })
}

func (t *btree) insert(key []Value, rid RID) {
	newChild, splitKey := t.insertInto(t.root, key, rid)
	if newChild != nil {
		root := &btreeNode{
			keys:     [][]Value{splitKey},
			children: []*btreeNode{t.root, newChild},
		}
		t.root = root
		t.height++
	}
}

// insertInto inserts into the subtree; on split it returns the new
// right sibling and its separator key.
func (t *btree) insertInto(n *btreeNode, key []Value, rid RID) (*btreeNode, []Value) {
	if n.leaf {
		i := n.search(key)
		if i < len(n.keys) && CompareKeys(n.keys[i], key) == 0 {
			n.postings[i] = append(n.postings[i], rid)
			return nil, nil
		}
		n.keys = append(n.keys, nil)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = key
		n.postings = append(n.postings, nil)
		copy(n.postings[i+1:], n.postings[i:])
		n.postings[i] = []RID{rid}
		t.nkeys++
		if len(n.keys) <= btreeOrder {
			return nil, nil
		}
		mid := len(n.keys) / 2
		right := &btreeNode{
			leaf:     true,
			keys:     append([][]Value(nil), n.keys[mid:]...),
			postings: append([][]RID(nil), n.postings[mid:]...),
			next:     n.next,
		}
		n.keys = n.keys[:mid]
		n.postings = n.postings[:mid]
		n.next = right
		return right, right.keys[0]
	}

	// Internal: child i holds keys < keys[i]; descend into the child
	// whose range contains key.
	i := n.search(key)
	if i < len(n.keys) && CompareKeys(n.keys[i], key) == 0 {
		i++
	}
	newChild, splitKey := t.insertInto(n.children[i], key, rid)
	if newChild == nil {
		return nil, nil
	}
	n.keys = append(n.keys, nil)
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = splitKey
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = newChild
	if len(n.keys) <= btreeOrder {
		return nil, nil
	}
	mid := len(n.keys) / 2
	upKey := n.keys[mid]
	right := &btreeNode{
		keys:     append([][]Value(nil), n.keys[mid+1:]...),
		children: append([]*btreeNode(nil), n.children[mid+1:]...),
	}
	n.keys = n.keys[:mid]
	n.children = n.children[:mid+1]
	return right, upKey
}

// leafFor descends to the leaf that would contain key.
func (t *btree) leafFor(key []Value) *btreeNode {
	n := t.root
	for !n.leaf {
		i := n.search(key)
		if i < len(n.keys) && CompareKeys(n.keys[i], key) == 0 {
			i++
		}
		n = n.children[i]
	}
	return n
}

// delete removes rid from key's postings; empty postings drop the key.
func (t *btree) delete(key []Value, rid RID) {
	n := t.leafFor(key)
	i := n.search(key)
	if i >= len(n.keys) || CompareKeys(n.keys[i], key) != 0 {
		return
	}
	ps := n.postings[i]
	for j, p := range ps {
		if p == rid {
			ps = append(ps[:j], ps[j+1:]...)
			break
		}
	}
	if len(ps) == 0 {
		n.keys = append(n.keys[:i], n.keys[i+1:]...)
		n.postings = append(n.postings[:i], n.postings[i+1:]...)
		t.nkeys--
	} else {
		n.postings[i] = ps
	}
}

// scanRange visits postings for keys in [lo, hi] (either bound may be
// nil for open). With prefix semantics: a partial lo/hi key matches on
// its prefix length. fn returns false to stop.
func (t *btree) scanRange(lo, hi []Value, fn func(key []Value, rids []RID) bool) {
	var n *btreeNode
	if lo == nil {
		n = t.root
		for !n.leaf {
			n = n.children[0]
		}
	} else {
		n = t.leafFor(lo)
	}
	for n != nil {
		for i, k := range n.keys {
			if lo != nil && comparePrefix(k, lo) < 0 {
				continue
			}
			if hi != nil && comparePrefix(k, hi) > 0 {
				return
			}
			if !fn(k, n.postings[i]) {
				return
			}
		}
		n = n.next
	}
}

// comparePrefix compares k against bound on bound's length only, so a
// bound (42) matches composite keys (42, *).
func comparePrefix(k, bound []Value) int {
	n := len(bound)
	if len(k) < n {
		n = len(k)
	}
	for i := 0; i < n; i++ {
		if c := Compare(k[i], bound[i]); c != 0 {
			return c
		}
	}
	if len(k) < len(bound) {
		return -1
	}
	return 0
}

// Index is a named secondary index over a subset of a table's columns.
type Index struct {
	Name   string
	Table  *Table
	Cols   []int // column positions forming the key
	Unique bool
	tree   *btree
}

func (ix *Index) keyOf(r Row) []Value {
	k := make([]Value, len(ix.Cols))
	for i, c := range ix.Cols {
		k[i] = r[c]
	}
	return k
}

func (ix *Index) insertRow(r Row, rid RID) { ix.tree.insert(ix.keyOf(r), rid) }
func (ix *Index) deleteRow(r Row, rid RID) { ix.tree.delete(ix.keyOf(r), rid) }

// Lookup returns the RIDs of rows whose key columns equal key (key may
// be a prefix of the index columns).
func (ix *Index) Lookup(key []Value) []RID {
	var out []RID
	ix.tree.scanRange(key, key, func(_ []Value, rids []RID) bool {
		out = append(out, rids...)
		return true
	})
	return out
}

// ScanRange visits index entries in [lo, hi] order (open bounds when
// nil), calling fn with each key and postings list.
func (ix *Index) ScanRange(lo, hi []Value, fn func(key []Value, rids []RID) bool) {
	ix.tree.scanRange(lo, hi, fn)
}

// Len returns the number of distinct keys.
func (ix *Index) Len() int { return ix.tree.nkeys }

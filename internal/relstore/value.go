// Package relstore is the storage layer of the embedded relational
// engine that ArchIS runs on (the stand-in for DB2/ATLaS in the paper).
//
// It provides typed values, schemas, a binary row codec, slotted
// 4 KiB pages with per-page zone maps, heap tables with a page cache
// and physical block-read accounting, B+tree secondary indexes, and a
// catalog with optional on-disk persistence.
package relstore

import (
	"fmt"
	"strconv"
	"strings"

	"archis/internal/temporal"
	"archis/internal/xmltree"
)

// Type enumerates the column/value types the engine supports.
type Type uint8

const (
	TypeNull   Type = iota
	TypeInt         // int64
	TypeFloat       // float64
	TypeString      // UTF-8 string
	TypeDate        // temporal.Date (day granularity)
	TypeBytes       // BLOB
	TypeXML         // XML fragment (SQL/XML publishing results)
	TypeBool        // boolean (predicate results)
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case TypeNull:
		return "NULL"
	case TypeInt:
		return "INT"
	case TypeFloat:
		return "FLOAT"
	case TypeString:
		return "VARCHAR"
	case TypeDate:
		return "DATE"
	case TypeBytes:
		return "BLOB"
	case TypeXML:
		return "XML"
	case TypeBool:
		return "BOOLEAN"
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// ParseType parses a SQL type name.
func ParseType(s string) (Type, error) {
	switch strings.ToUpper(s) {
	case "INT", "INTEGER", "BIGINT":
		return TypeInt, nil
	case "FLOAT", "DOUBLE", "REAL", "DECIMAL":
		return TypeFloat, nil
	case "VARCHAR", "CHAR", "TEXT", "STRING":
		return TypeString, nil
	case "DATE":
		return TypeDate, nil
	case "BLOB", "BYTES":
		return TypeBytes, nil
	case "XML":
		return TypeXML, nil
	case "BOOLEAN", "BOOL":
		return TypeBool, nil
	}
	return TypeNull, fmt.Errorf("relstore: unknown type %q", s)
}

// Value is a dynamically typed SQL value. The zero Value is NULL.
type Value struct {
	Kind  Type
	I     int64
	F     float64
	S     string
	B     []byte
	X     *xmltree.Node
	Truth bool
}

// Null is the SQL NULL value.
var Null = Value{Kind: TypeNull}

// Int wraps an int64.
func Int(v int64) Value { return Value{Kind: TypeInt, I: v} }

// Float wraps a float64.
func Float(v float64) Value { return Value{Kind: TypeFloat, F: v} }

// String_ wraps a string (named to avoid clashing with the method).
func String_(v string) Value { return Value{Kind: TypeString, S: v} }

// DateV wraps a temporal date.
func DateV(d temporal.Date) Value { return Value{Kind: TypeDate, I: int64(d)} }

// Bytes wraps a BLOB.
func Bytes(b []byte) Value { return Value{Kind: TypeBytes, B: b} }

// XML wraps an XML fragment.
func XML(n *xmltree.Node) Value { return Value{Kind: TypeXML, X: n} }

// Bool wraps a boolean.
func Bool(b bool) Value { return Value{Kind: TypeBool, Truth: b} }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.Kind == TypeNull }

// Date returns the value as a temporal date; valid only for TypeDate.
func (v Value) Date() temporal.Date { return temporal.Date(v.I) }

// AsInt coerces numeric values to int64.
func (v Value) AsInt() (int64, bool) {
	switch v.Kind {
	case TypeInt, TypeDate:
		return v.I, true
	case TypeFloat:
		return int64(v.F), true
	case TypeString:
		n, err := strconv.ParseInt(strings.TrimSpace(v.S), 10, 64)
		return n, err == nil
	}
	return 0, false
}

// AsFloat coerces numeric values to float64.
func (v Value) AsFloat() (float64, bool) {
	switch v.Kind {
	case TypeInt, TypeDate:
		return float64(v.I), true
	case TypeFloat:
		return v.F, true
	case TypeString:
		f, err := strconv.ParseFloat(strings.TrimSpace(v.S), 64)
		return f, err == nil
	}
	return 0, false
}

// AsBool interprets the value as a truth value (SQL three-valued logic
// collapses NULL to false here; callers needing UNKNOWN check IsNull).
func (v Value) AsBool() bool {
	switch v.Kind {
	case TypeBool:
		return v.Truth
	case TypeInt:
		return v.I != 0
	case TypeFloat:
		return v.F != 0
	case TypeString:
		return v.S != ""
	}
	return false
}

// Text renders the value for display and for XML text content.
func (v Value) Text() string {
	switch v.Kind {
	case TypeNull:
		return ""
	case TypeInt:
		return strconv.FormatInt(v.I, 10)
	case TypeFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case TypeString:
		return v.S
	case TypeDate:
		return v.Date().String()
	case TypeBytes:
		return fmt.Sprintf("<blob %dB>", len(v.B))
	case TypeXML:
		if v.X == nil {
			return ""
		}
		return xmltree.String(v.X)
	case TypeBool:
		return strconv.FormatBool(v.Truth)
	}
	return ""
}

// Compare orders two values. NULL sorts first; values of different
// numeric kinds compare numerically; otherwise mismatched kinds compare
// by kind tag (stable, if arbitrary). Returns -1, 0 or 1.
func Compare(a, b Value) int {
	if a.IsNull() || b.IsNull() {
		switch {
		case a.IsNull() && b.IsNull():
			return 0
		case a.IsNull():
			return -1
		default:
			return 1
		}
	}
	numeric := func(v Value) bool { return v.Kind == TypeInt || v.Kind == TypeFloat || v.Kind == TypeDate }
	if numeric(a) && numeric(b) {
		af, _ := a.AsFloat()
		bf, _ := b.AsFloat()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
	if a.Kind != b.Kind {
		// Try numeric-vs-string coercion: SQL comparisons like
		// name = '1001' against INT columns.
		if numeric(a) && b.Kind == TypeString {
			if bf, ok := b.AsFloat(); ok {
				af, _ := a.AsFloat()
				switch {
				case af < bf:
					return -1
				case af > bf:
					return 1
				default:
					return 0
				}
			}
		}
		if a.Kind == TypeString && numeric(b) {
			return -Compare(b, a)
		}
		if a.Kind < b.Kind {
			return -1
		}
		return 1
	}
	switch a.Kind {
	case TypeString:
		return strings.Compare(a.S, b.S)
	case TypeBool:
		switch {
		case a.Truth == b.Truth:
			return 0
		case !a.Truth:
			return -1
		default:
			return 1
		}
	case TypeBytes:
		return strings.Compare(string(a.B), string(b.B))
	case TypeXML:
		return strings.Compare(a.Text(), b.Text())
	}
	return 0
}

// Equal reports value equality under Compare semantics.
func Equal(a, b Value) bool { return !a.IsNull() && !b.IsNull() && Compare(a, b) == 0 }

// Row is a tuple of values positionally matching a schema.
type Row []Value

// Clone deep-copies a row (Bytes values share backing arrays; rows are
// treated as immutable once stored).
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// String renders the row for diagnostics.
func (r Row) String() string {
	parts := make([]string, len(r))
	for i, v := range r {
		parts[i] = v.Text()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

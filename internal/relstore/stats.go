package relstore

// Planner-facing scan statistics (DESIGN.md §12). EstimateScan walks
// only page headers — zone maps and live-row counters — so an
// estimate costs O(pages) with no page decode or cache traffic, cheap
// enough to run once per table reference at plan time.

// ScanEstimate summarizes the cost-relevant size of a bounded scan.
type ScanEstimate struct {
	// Rows is the number of live rows a scan with the given zone
	// bounds will touch (rows on non-pruned pages plus builder rows;
	// an upper bound on the rows surviving the predicate).
	Rows int
	// Pages is the number of sealed pages the scan will read after
	// zone pruning (the builder, when populated, counts as one).
	Pages int
	// TotalRows and TotalPages describe the whole table, bounds
	// ignored.
	TotalRows  int
	TotalPages int
	// ColumnarBlocks counts the compressed blocks inside the bounds
	// that are stored in the columnar (format v2) encoding and can be
	// decoded straight into column batches. Plain tables and row-blob
	// blocks report 0; stores that cannot attribute encodings report
	// the blocks they know to be columnar.
	ColumnarBlocks int
}

// EstimateScan predicts the footprint of Scan/ScanBorrow under the
// given zone bounds using per-page zone maps and live counters only.
// Follows the reader rules: safe concurrently with other readers,
// not with a writer.
func (t *Table) EstimateScan(bounds []ZoneBound) ScanEstimate {
	est := ScanEstimate{TotalRows: t.liveRows, TotalPages: t.PageCount()}
	for _, p := range t.pages {
		skip := false
		for _, zb := range bounds {
			if p.zoneExcludes(zb.Col, zb.Op, zb.Bound) {
				skip = true
				break
			}
		}
		if skip {
			continue
		}
		est.Pages++
		est.Rows += p.live
	}
	// Builder rows have no zone maps yet and are always visited.
	builderLive := 0
	for _, lv := range t.bLive {
		if lv {
			builderLive++
		}
	}
	if len(t.bRows) > 0 {
		est.Pages++
		est.Rows += builderLive
	}
	return est
}

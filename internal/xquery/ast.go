package xquery

// Expr is any XQuery expression node.
type Expr interface{ xq() }

// FuncDecl is one prolog `declare function name($p, …) { body }`.
type FuncDecl struct {
	Name   string // normalized lowercase, prefix kept (local:raise)
	Params []string
	Body   Expr
}

// Query is a parsed query: an optional prolog of user-defined
// functions plus the body expression. The paper leans on this
// extensibility — its temporal library is definable in XQuery itself.
type Query struct {
	Funcs []*FuncDecl
	Body  Expr
}

// SeqExpr is a parenthesized sequence (e1, e2, ...); empty for ().
type SeqExpr struct{ Items []Expr }

// LiteralString is a quoted string.
type LiteralString struct{ Value string }

// LiteralNumber is a numeric literal.
type LiteralNumber struct{ Value float64 }

// VarRef references $name.
type VarRef struct{ Name string }

// ContextItem is ".".
type ContextItem struct{}

// FLWOR is the for/let/where/order by/return expression.
type FLWOR struct {
	Clauses []FLWORClause
	Where   Expr
	OrderBy []OrderSpec
	Return  Expr
}

// FLWORClause is one for- or let-binding.
type FLWORClause struct {
	IsLet bool
	Var   string
	In    Expr
}

// OrderSpec is one "order by" key.
type OrderSpec struct {
	Key        Expr
	Descending bool
}

// Quantified is `some/every $v in e satisfies p`.
type Quantified struct {
	Every     bool
	Var       string
	In        Expr
	Satisfies Expr
}

// IfExpr is if (cond) then a else b.
type IfExpr struct {
	Cond, Then, Else Expr
}

// Binary applies an operator: or, and, =, !=, <, <=, >, >=, +, -, *,
// div, mod, to (range).
type Binary struct {
	Op   string
	L, R Expr
}

// Unary is -x or +x.
type Unary struct {
	Op string
	X  Expr
}

// Path is a path expression: Root then steps.
type Path struct {
	// Root is the initial expression ("" means the path starts with a
	// step relative to the context item).
	Root  Expr
	Steps []Step
}

// StepAxis selects how a step navigates.
type StepAxis uint8

const (
	AxisChild      StepAxis = iota // name or *
	AxisAttribute                  // @name
	AxisDescendant                 // // name
	AxisSelf                       // .
	AxisParent                     // ..
	AxisText                       // text()
)

// Step is one path step with optional predicates.
type Step struct {
	Axis  StepAxis
	Name  string // element/attribute name; "*" matches all
	Preds []Expr
}

// FuncCall invokes a built-in or temporal function.
type FuncCall struct {
	Name string // normalized lowercase, namespace prefixes kept ("xs:date")
	Args []Expr
}

// DirectElement is a literal XML constructor, e.g.
// <employee tstart="{...}">{$e/id}</employee>.
type DirectElement struct {
	Tag      string
	Attrs    []DirectAttr
	Children []ConstructorContent
}

// DirectAttr is one attribute in a direct constructor; its value is a
// list of literal strings and embedded expressions.
type DirectAttr struct {
	Name  string
	Parts []ConstructorContent
}

// ConstructorContent is literal text or an embedded expression.
type ConstructorContent struct {
	Text string
	Expr Expr // non-nil for {expr}
	Elem *DirectElement
}

// ComputedElement is `element name { content }`.
type ComputedElement struct {
	Tag     string
	Content Expr // may be nil for empty element
}

func (*SeqExpr) xq()         {}
func (*LiteralString) xq()   {}
func (*LiteralNumber) xq()   {}
func (*VarRef) xq()          {}
func (*ContextItem) xq()     {}
func (*FLWOR) xq()           {}
func (*Quantified) xq()      {}
func (*IfExpr) xq()          {}
func (*Binary) xq()          {}
func (*Unary) xq()           {}
func (*Path) xq()            {}
func (*FuncCall) xq()        {}
func (*DirectElement) xq()   {}
func (*ComputedElement) xq() {}

// Package xquery implements the XQuery subset that ArchIS accepts:
// FLWOR expressions (for/let/where/order by/return), quantified
// expressions (some/every … satisfies), path expressions with
// predicates, direct and computed element constructors, general
// comparisons, arithmetic, conditionals, and a function library
// containing both standard functions and the temporal user-defined
// functions of the paper's Section 4.2 (tstart, tend, toverlaps,
// overlapinterval, coalesce, restructure, tavg, rtend, externalnow, …).
//
// Queries evaluate either directly over XML trees (the native-XML-DB
// baseline) or are handed to internal/translator for the SQL/XML
// route; both produce the same results.
package xquery

import (
	"fmt"
	"strconv"
	"strings"

	"archis/internal/temporal"
	"archis/internal/xmltree"
)

// AtomKind tags atomic items.
type AtomKind uint8

const (
	AtomString AtomKind = iota
	AtomNumber
	AtomBool
	AtomDate
)

// Item is one XQuery item: a node or an atomic value.
type Item struct {
	Node *xmltree.Node // non-nil for node items
	Kind AtomKind
	S    string
	F    float64
	B    bool
	D    temporal.Date
}

// Seq is an XQuery sequence (flat, ordered).
type Seq []Item

// NodeItem wraps a node.
func NodeItem(n *xmltree.Node) Item { return Item{Node: n} }

// StringItem wraps a string.
func StringItem(s string) Item { return Item{Kind: AtomString, S: s} }

// NumberItem wraps a number.
func NumberItem(f float64) Item { return Item{Kind: AtomNumber, F: f} }

// BoolItem wraps a boolean.
func BoolItem(b bool) Item { return Item{Kind: AtomBool, B: b} }

// DateItem wraps a date.
func DateItem(d temporal.Date) Item { return Item{Kind: AtomDate, D: d} }

// IsNode reports whether the item is a node.
func (it Item) IsNode() bool { return it.Node != nil }

// StringValue atomizes the item to a string.
func (it Item) StringValue() string {
	if it.IsNode() {
		return it.Node.TextContent()
	}
	switch it.Kind {
	case AtomString:
		return it.S
	case AtomNumber:
		// Integral values render without exponent notation (XQuery's
		// integer serialization); large/fractional values fall back to
		// the shortest representation.
		if it.F == float64(int64(it.F)) && it.F > -1e15 && it.F < 1e15 {
			return strconv.FormatInt(int64(it.F), 10)
		}
		return strconv.FormatFloat(it.F, 'g', -1, 64)
	case AtomBool:
		return strconv.FormatBool(it.B)
	case AtomDate:
		return it.D.String()
	}
	return ""
}

// NumberValue atomizes the item to a float; ok is false when the item
// is not numeric.
func (it Item) NumberValue() (float64, bool) {
	if it.IsNode() {
		f, err := strconv.ParseFloat(strings.TrimSpace(it.Node.TextContent()), 64)
		return f, err == nil
	}
	switch it.Kind {
	case AtomNumber:
		return it.F, true
	case AtomString:
		f, err := strconv.ParseFloat(strings.TrimSpace(it.S), 64)
		return f, err == nil
	case AtomDate:
		return float64(it.D), true
	case AtomBool:
		if it.B {
			return 1, true
		}
		return 0, true
	}
	return 0, false
}

// DateValue atomizes the item to a date.
func (it Item) DateValue() (temporal.Date, bool) {
	if it.Kind == AtomDate && !it.IsNode() {
		return it.D, true
	}
	d, err := temporal.ParseDate(strings.TrimSpace(it.StringValue()))
	return d, err == nil
}

// String renders the item for diagnostics and for text insertion in
// constructors.
func (it Item) String() string {
	if it.IsNode() {
		return xmltree.String(it.Node)
	}
	return it.StringValue()
}

// EffectiveBool implements XPath effective boolean value: empty → false,
// first item node → true, single atomic by kind.
func (s Seq) EffectiveBool() bool {
	if len(s) == 0 {
		return false
	}
	if s[0].IsNode() {
		return true
	}
	if len(s) > 1 {
		return true
	}
	it := s[0]
	switch it.Kind {
	case AtomBool:
		return it.B
	case AtomNumber:
		return it.F != 0
	case AtomString:
		return it.S != ""
	case AtomDate:
		return true
	}
	return false
}

// Serialize renders a sequence as the concatenation of its items'
// XML forms, separating adjacent atomics by spaces (the XQuery
// serialization rule).
func (s Seq) Serialize() string {
	var sb strings.Builder
	prevAtom := false
	for _, it := range s {
		if it.IsNode() {
			sb.WriteString(xmltree.String(it.Node))
			prevAtom = false
			continue
		}
		if prevAtom {
			sb.WriteString(" ")
		}
		sb.WriteString(it.StringValue())
		prevAtom = true
	}
	return sb.String()
}

// Interval extracts the [tstart, tend] interval from a node item's
// attributes — the convention every element of an H-document follows.
func (it Item) Interval() (temporal.Interval, error) {
	if !it.IsNode() {
		return temporal.Interval{}, fmt.Errorf("xquery: interval of non-node item %q", it.String())
	}
	ts, ok1 := it.Node.Attr("tstart")
	te, ok2 := it.Node.Attr("tend")
	if !ok1 || !ok2 {
		return temporal.Interval{}, fmt.Errorf("xquery: node <%s> has no tstart/tend", it.Node.Name)
	}
	s, err := temporal.ParseDate(ts)
	if err != nil {
		return temporal.Interval{}, err
	}
	e, err := temporal.ParseDate(te)
	if err != nil {
		return temporal.Interval{}, err
	}
	return temporal.NewInterval(s, e)
}

// ValidInterval extracts the [vstart, vend] valid interval from a node
// item's attributes. H-documents omit the pair on default-valid
// versions (publish.go), so absent attributes fall back to the default
// [tstart, Forever] — every pre-bitemporal document is readable as an
// all-default-valid one.
func (it Item) ValidInterval() (temporal.Interval, error) {
	if !it.IsNode() {
		return temporal.Interval{}, fmt.Errorf("xquery: valid interval of non-node item %q", it.String())
	}
	vs, ok1 := it.Node.Attr("vstart")
	ve, ok2 := it.Node.Attr("vend")
	if !ok1 || !ok2 {
		iv, err := it.Interval()
		if err != nil {
			return temporal.Interval{}, err
		}
		return temporal.Current(iv.Start), nil
	}
	s, err := temporal.ParseDate(vs)
	if err != nil {
		return temporal.Interval{}, err
	}
	e, err := temporal.ParseDate(ve)
	if err != nil {
		return temporal.Interval{}, err
	}
	return temporal.NewInterval(s, e)
}

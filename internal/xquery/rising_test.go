package xquery

import (
	"strings"
	"testing"
)

func TestRisingFunction(t *testing.T) {
	ev := newTestEvaluator(t)
	// Bob's salaries rise across both versions: one maximal interval.
	got := evalOK(t, ev, `rising(doc("employees.xml")/employees/employee[name="Bob"]/salary)`)
	if len(got) != 1 {
		t.Fatalf("rising = %s", got.Serialize())
	}
	if got[0].Node.AttrOr("tstart", "") != "1995-01-01" {
		t.Errorf("rising interval = %s", got.Serialize())
	}
	// A constructed falling history splits.
	got = evalOK(t, ev, `
		rising((<v tstart="2000-01-01" tend="2000-01-31">10</v>,
		        <v tstart="2000-02-01" tend="2000-02-28">20</v>,
		        <v tstart="2000-03-01" tend="2000-03-31">5</v>,
		        <v tstart="2000-04-01" tend="2000-04-30">7</v>))`)
	if len(got) != 2 {
		t.Fatalf("rising split = %s", got.Serialize())
	}
}

func TestMovingAvgFunction(t *testing.T) {
	ev := newTestEvaluator(t)
	got := evalOK(t, ev, `
		movingavg((<v tstart="2000-01-01" tend="2000-01-10">10</v>,
		           <v tstart="2000-01-11" tend="2000-01-20">30</v>), 20)`)
	if len(got) != 2 {
		t.Fatalf("movingavg = %s", got.Serialize())
	}
	if !strings.Contains(got[1].String(), `value="20"`) {
		t.Errorf("20-day window avg = %s", got[1].String())
	}
	if _, err := ev.Eval(`movingavg((), 0)`); err == nil {
		t.Error("zero window accepted")
	}
}

package xquery

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse parses an XQuery expression (no prolog).
func Parse(src string) (Expr, error) {
	q, err := ParseQuery(src)
	if err != nil {
		return nil, err
	}
	if len(q.Funcs) > 0 {
		return nil, fmt.Errorf("xquery: query has a function prolog; use ParseQuery")
	}
	return q.Body, nil
}

// ParseQuery parses an optional prolog of `declare function`
// definitions followed by the body expression.
func ParseQuery(src string) (*Query, error) {
	p := &xparser{src: src}
	p.skipWS()
	q := &Query{}
	for p.peekName() == "declare" {
		fd, err := p.parseFuncDecl()
		if err != nil {
			return nil, err
		}
		q.Funcs = append(q.Funcs, fd)
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	p.skipWS()
	if p.pos < len(p.src) {
		return nil, p.errorf("trailing input %q", p.rest(20))
	}
	q.Body = e
	return q, nil
}

// parseFuncDecl parses `declare function name($a, $b) { body };`.
func (p *xparser) parseFuncDecl() (*FuncDecl, error) {
	if err := p.expectKeyword("declare"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("function"); err != nil {
		return nil, err
	}
	name, err := p.readName()
	if err != nil {
		return nil, err
	}
	fd := &FuncDecl{Name: strings.ToLower(name)}
	if err := p.expectLit("("); err != nil {
		return nil, err
	}
	if !p.acceptLit(")") {
		for {
			v, err := p.parseVarName()
			if err != nil {
				return nil, err
			}
			fd.Params = append(fd.Params, v)
			if !p.acceptLit(",") {
				break
			}
		}
		if err := p.expectLit(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectLit("{"); err != nil {
		return nil, err
	}
	body, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectLit("}"); err != nil {
		return nil, err
	}
	p.acceptLit(";")
	fd.Body = body
	return fd, nil
}

// xparser is a character-level recursive-descent parser; the direct
// XML constructor syntax makes token-stream parsing awkward, so the
// scanner is inlined.
type xparser struct {
	src string
	pos int
}

func (p *xparser) errorf(format string, args ...any) error {
	return fmt.Errorf("xquery: at offset %d: %s", p.pos, fmt.Sprintf(format, args...))
}

func (p *xparser) rest(n int) string {
	r := p.src[p.pos:]
	if len(r) > n {
		r = r[:n]
	}
	return r
}

func (p *xparser) skipWS() {
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if unicode.IsSpace(rune(c)) {
			p.pos++
			continue
		}
		// XQuery comments: (: ... :), nestable.
		if c == '(' && p.pos+1 < len(p.src) && p.src[p.pos+1] == ':' {
			depth := 0
			for p.pos < len(p.src) {
				if strings.HasPrefix(p.src[p.pos:], "(:") {
					depth++
					p.pos += 2
					continue
				}
				if strings.HasPrefix(p.src[p.pos:], ":)") {
					depth--
					p.pos += 2
					if depth == 0 {
						break
					}
					continue
				}
				p.pos++
			}
			continue
		}
		return
	}
}

func (p *xparser) eof() bool { return p.pos >= len(p.src) }

// peekLit reports whether the source continues with lit.
func (p *xparser) peekLit(lit string) bool {
	return strings.HasPrefix(p.src[p.pos:], lit)
}

// acceptLit consumes lit if present (no word-boundary check).
func (p *xparser) acceptLit(lit string) bool {
	if p.peekLit(lit) {
		p.pos += len(lit)
		p.skipWS()
		return true
	}
	return false
}

func (p *xparser) expectLit(lit string) error {
	if !p.acceptLit(lit) {
		return p.errorf("expected %q, got %q", lit, p.rest(15))
	}
	return nil
}

func isNameStart(c byte) bool { return c == '_' || unicode.IsLetter(rune(c)) }

func isNamePart(c byte) bool {
	return c == '_' || c == '-' || c == '.' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

// peekName returns the QName at the cursor without consuming.
func (p *xparser) peekName() string {
	i := p.pos
	if i >= len(p.src) || !isNameStart(p.src[i]) {
		return ""
	}
	j := i
	for j < len(p.src) && isNamePart(p.src[j]) {
		j++
	}
	// Optional single ':' prefix separator (xs:date).
	if j < len(p.src) && p.src[j] == ':' && j+1 < len(p.src) && isNameStart(p.src[j+1]) {
		j++
		for j < len(p.src) && isNamePart(p.src[j]) {
			j++
		}
	}
	return p.src[i:j]
}

func (p *xparser) readName() (string, error) {
	n := p.peekName()
	if n == "" {
		return "", p.errorf("expected name, got %q", p.rest(15))
	}
	p.pos += len(n)
	p.skipWS()
	return n, nil
}

// acceptKeyword consumes kw when it appears as a whole word.
func (p *xparser) acceptKeyword(kw string) bool {
	if p.peekName() == kw {
		p.pos += len(kw)
		p.skipWS()
		return true
	}
	return false
}

func (p *xparser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errorf("expected %q, got %q", kw, p.rest(15))
	}
	return nil
}

// parseExpr parses a comma-separated sequence expression.
func (p *xparser) parseExpr() (Expr, error) {
	first, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	if !p.peekLit(",") {
		return first, nil
	}
	seq := &SeqExpr{Items: []Expr{first}}
	for p.acceptLit(",") {
		e, err := p.parseExprSingle()
		if err != nil {
			return nil, err
		}
		seq.Items = append(seq.Items, e)
	}
	return seq, nil
}

func (p *xparser) parseExprSingle() (Expr, error) {
	switch p.peekName() {
	case "for", "let":
		return p.parseFLWOR()
	case "some", "every":
		return p.parseQuantified()
	case "if":
		save := p.pos
		p.pos += len("if")
		p.skipWS()
		if p.peekLit("(") {
			return p.parseIf()
		}
		p.pos = save
	}
	return p.parseOr()
}

func (p *xparser) parseFLWOR() (Expr, error) {
	out := &FLWOR{}
	for {
		switch {
		case p.acceptKeyword("for"):
			for {
				v, err := p.parseVarName()
				if err != nil {
					return nil, err
				}
				if err := p.expectKeyword("in"); err != nil {
					return nil, err
				}
				e, err := p.parseExprSingle()
				if err != nil {
					return nil, err
				}
				out.Clauses = append(out.Clauses, FLWORClause{Var: v, In: e})
				if !p.acceptLit(",") {
					break
				}
			}
			continue
		case p.acceptKeyword("let"):
			for {
				v, err := p.parseVarName()
				if err != nil {
					return nil, err
				}
				if err := p.expectLit(":="); err != nil {
					return nil, err
				}
				e, err := p.parseExprSingle()
				if err != nil {
					return nil, err
				}
				out.Clauses = append(out.Clauses, FLWORClause{IsLet: true, Var: v, In: e})
				if !p.acceptLit(",") {
					break
				}
			}
			continue
		}
		break
	}
	if len(out.Clauses) == 0 {
		return nil, p.errorf("FLWOR without for/let")
	}
	if p.acceptKeyword("where") {
		e, err := p.parseExprSingle()
		if err != nil {
			return nil, err
		}
		out.Where = e
	}
	if p.acceptKeyword("order") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExprSingle()
			if err != nil {
				return nil, err
			}
			spec := OrderSpec{Key: e}
			if p.acceptKeyword("descending") {
				spec.Descending = true
			} else {
				p.acceptKeyword("ascending")
			}
			out.OrderBy = append(out.OrderBy, spec)
			if !p.acceptLit(",") {
				break
			}
		}
	}
	if err := p.expectKeyword("return"); err != nil {
		return nil, err
	}
	e, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	out.Return = e
	return out, nil
}

func (p *xparser) parseVarName() (string, error) {
	if !p.peekLit("$") {
		return "", p.errorf("expected variable, got %q", p.rest(15))
	}
	p.pos++
	return p.readName()
}

func (p *xparser) parseQuantified() (Expr, error) {
	every := false
	switch {
	case p.acceptKeyword("some"):
	case p.acceptKeyword("every"):
		every = true
	default:
		return nil, p.errorf("expected some/every")
	}
	v, err := p.parseVarName()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("in"); err != nil {
		return nil, err
	}
	in, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("satisfies"); err != nil {
		return nil, err
	}
	sat, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	return &Quantified{Every: every, Var: v, In: in, Satisfies: sat}, nil
}

func (p *xparser) parseIf() (Expr, error) {
	if err := p.expectLit("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectLit(")"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("then"); err != nil {
		return nil, err
	}
	then, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("else"); err != nil {
		return nil, err
	}
	els, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	return &IfExpr{Cond: cond, Then: then, Else: els}, nil
}

func (p *xparser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("or") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "or", L: l, R: r}
	}
	return l, nil
}

func (p *xparser) parseAnd() (Expr, error) {
	l, err := p.parseComparison()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("and") {
		r, err := p.parseComparison()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "and", L: l, R: r}
	}
	return l, nil
}

var comparisonOps = []string{"<=", ">=", "!=", "=", "<", ">"}

func (p *xparser) parseComparison() (Expr, error) {
	// Liberal extension: the paper writes `... and every $x in ...
	// satisfies ...`, which strict XQuery grammar rejects (quantified
	// expressions are ExprSingle-level). Accept them as comparison
	// operands.
	switch p.peekName() {
	case "some", "every":
		return p.parseQuantified()
	case "if":
		save := p.pos
		p.pos += len("if")
		p.skipWS()
		if p.peekLit("(") {
			return p.parseIf()
		}
		p.pos = save
	}
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for _, op := range comparisonOps {
		if p.peekLit(op) {
			p.pos += len(op)
			p.skipWS()
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &Binary{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *xparser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		if p.peekLit("+") {
			p.pos++
			p.skipWS()
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: "+", L: l, R: r}
			continue
		}
		// '-' must not swallow '-' inside names; at this point we are
		// between tokens, so a bare '-' is the operator.
		if p.peekLit("-") {
			p.pos++
			p.skipWS()
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: "-", L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *xparser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.peekLit("*") && !p.peekLit("**"):
			p.pos++
			p.skipWS()
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: "*", L: l, R: r}
		case p.acceptKeyword("div"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: "div", L: l, R: r}
		case p.acceptKeyword("mod"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: "mod", L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *xparser) parseUnary() (Expr, error) {
	if p.peekLit("-") {
		p.pos++
		p.skipWS()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "-", X: x}, nil
	}
	return p.parsePath()
}

// parsePath parses [/]step(/step)* where the first step may be any
// primary expression.
func (p *xparser) parsePath() (Expr, error) {
	path := &Path{}
	switch {
	case p.peekLit("//"):
		p.pos += 2
		p.skipWS()
		st, err := p.parseStep(AxisDescendant)
		if err != nil {
			return nil, err
		}
		path.Root = &FuncCall{Name: "root"} // absolute paths are rare; root() of context
		path.Steps = append(path.Steps, st)
	case p.peekLit("/"):
		p.pos++
		p.skipWS()
		path.Root = &FuncCall{Name: "root"}
		st, err := p.parseStep(AxisChild)
		if err != nil {
			return nil, err
		}
		path.Steps = append(path.Steps, st)
	default:
		prim, preds, err := p.parsePrimaryWithPredicates()
		if err != nil {
			return nil, err
		}
		if len(preds) == 0 && !p.peekLit("/") {
			return prim, nil
		}
		path.Root = prim
		if len(preds) > 0 {
			path.Steps = append(path.Steps, Step{Axis: AxisSelf, Name: "*", Preds: preds})
		}
	}
	for {
		switch {
		case p.peekLit("//"):
			p.pos += 2
			p.skipWS()
			st, err := p.parseStep(AxisDescendant)
			if err != nil {
				return nil, err
			}
			path.Steps = append(path.Steps, st)
		case p.peekLit("/"):
			p.pos++
			p.skipWS()
			st, err := p.parseStep(AxisChild)
			if err != nil {
				return nil, err
			}
			path.Steps = append(path.Steps, st)
		default:
			return path, nil
		}
	}
}

// parseStep parses one path step: @name, name, *, ., .., text().
func (p *xparser) parseStep(axis StepAxis) (Step, error) {
	st := Step{Axis: axis}
	switch {
	case p.acceptLit("@"):
		if axis == AxisDescendant {
			st.Axis = AxisDescendant // //@a unsupported; treated as descendant attrs? keep simple
		} else {
			st.Axis = AxisAttribute
		}
		name, err := p.readName()
		if err != nil {
			return st, err
		}
		st.Axis = AxisAttribute
		st.Name = name
	case p.peekLit(".."):
		p.pos += 2
		p.skipWS()
		st.Axis = AxisParent
		st.Name = "*"
	case p.peekLit("."):
		p.pos++
		p.skipWS()
		st.Axis = AxisSelf
		st.Name = "*"
	case p.peekLit("*"):
		p.pos++
		p.skipWS()
		st.Name = "*"
	default:
		name := p.peekName()
		if name == "" {
			return st, p.errorf("expected step, got %q", p.rest(15))
		}
		p.pos += len(name)
		p.skipWS()
		if name == "text" && p.acceptLit("(") {
			if err := p.expectLit(")"); err != nil {
				return st, err
			}
			st.Axis = AxisText
			st.Name = "*"
		} else {
			st.Name = name
		}
	}
	preds, err := p.parsePredicates()
	if err != nil {
		return st, err
	}
	st.Preds = preds
	return st, nil
}

func (p *xparser) parsePredicates() ([]Expr, error) {
	var preds []Expr
	for p.peekLit("[") {
		p.pos++
		p.skipWS()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectLit("]"); err != nil {
			return nil, err
		}
		preds = append(preds, e)
	}
	return preds, nil
}

// parsePrimaryWithPredicates parses a primary expression plus any
// trailing [pred] filters.
func (p *xparser) parsePrimaryWithPredicates() (Expr, []Expr, error) {
	prim, err := p.parsePrimary()
	if err != nil {
		return nil, nil, err
	}
	preds, err := p.parsePredicates()
	if err != nil {
		return nil, nil, err
	}
	return prim, preds, nil
}

func (p *xparser) parsePrimary() (Expr, error) {
	if p.eof() {
		return nil, p.errorf("unexpected end of query")
	}
	c := p.src[p.pos]
	switch {
	case c == '$':
		name, err := p.parseVarName()
		if err != nil {
			return nil, err
		}
		return &VarRef{Name: name}, nil
	case c == '"' || c == '\'':
		s, err := p.readQuoted(c)
		if err != nil {
			return nil, err
		}
		p.skipWS()
		return &LiteralString{Value: s}, nil
	case unicode.IsDigit(rune(c)):
		start := p.pos
		for p.pos < len(p.src) && (unicode.IsDigit(rune(p.src[p.pos])) || p.src[p.pos] == '.') {
			p.pos++
		}
		text := p.src[start:p.pos]
		p.skipWS()
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return nil, p.errorf("bad number %q", text)
		}
		return &LiteralNumber{Value: f}, nil
	case c == '(':
		p.pos++
		p.skipWS()
		if p.acceptLit(")") {
			return &SeqExpr{}, nil
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectLit(")"); err != nil {
			return nil, err
		}
		return e, nil
	case c == '<':
		return p.parseDirectElement()
	case c == '.':
		// "." context item (".." handled by step parsing inside paths).
		if p.peekLit("..") {
			return nil, p.errorf("'..' outside path")
		}
		p.pos++
		p.skipWS()
		return &ContextItem{}, nil
	case c == '*':
		// Leading wildcard step relative to context.
		p.pos++
		p.skipWS()
		return &Path{Steps: []Step{{Axis: AxisChild, Name: "*"}}}, nil
	case c == '@':
		st, err := p.parseStep(AxisChild)
		if err != nil {
			return nil, err
		}
		return &Path{Steps: []Step{st}}, nil
	case isNameStart(c):
		return p.parseNamedPrimary()
	}
	return nil, p.errorf("unexpected character %q", c)
}

// parseNamedPrimary handles computed constructors, function calls and
// bare name-test steps.
func (p *xparser) parseNamedPrimary() (Expr, error) {
	name := p.peekName()

	// Computed element constructor: element name { expr }.
	if name == "element" {
		save := p.pos
		p.pos += len(name)
		p.skipWS()
		tag := p.peekName()
		if tag != "" {
			p.pos += len(tag)
			p.skipWS()
			if p.peekLit("{") {
				p.pos++
				p.skipWS()
				if p.acceptLit("}") {
					return &ComputedElement{Tag: tag}, nil
				}
				content, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				if err := p.expectLit("}"); err != nil {
					return nil, err
				}
				return &ComputedElement{Tag: tag, Content: content}, nil
			}
		}
		p.pos = save
	}

	p.pos += len(name)
	p.skipWS()
	if p.peekLit("(") {
		p.pos++
		p.skipWS()
		call := &FuncCall{Name: strings.ToLower(name)}
		if !p.acceptLit(")") {
			for {
				a, err := p.parseExprSingle()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
				if !p.acceptLit(",") {
					break
				}
			}
			if err := p.expectLit(")"); err != nil {
				return nil, err
			}
		}
		return call, nil
	}

	// Bare name: a child step relative to the context item.
	preds, err := p.parsePredicates()
	if err != nil {
		return nil, err
	}
	return &Path{Steps: []Step{{Axis: AxisChild, Name: name, Preds: preds}}}, nil
}

func (p *xparser) readQuoted(quote byte) (string, error) {
	p.pos++ // opening quote
	var sb strings.Builder
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == quote {
			if p.pos+1 < len(p.src) && p.src[p.pos+1] == quote {
				sb.WriteByte(quote)
				p.pos += 2
				continue
			}
			p.pos++
			return sb.String(), nil
		}
		sb.WriteByte(c)
		p.pos++
	}
	return "", p.errorf("unterminated string")
}

// parseDirectElement parses <tag attr="...">content</tag> with {expr}
// escapes in both attributes and content.
func (p *xparser) parseDirectElement() (Expr, error) {
	if err := p.expectLit("<"); err != nil {
		return nil, err
	}
	el, err := p.parseDirectElementAfterLT()
	if err != nil {
		return nil, err
	}
	p.skipWS()
	return el, nil
}

func (p *xparser) parseDirectElementAfterLT() (*DirectElement, error) {
	tag := p.peekName()
	if tag == "" {
		return nil, p.errorf("expected element name after '<'")
	}
	p.pos += len(tag)
	el := &DirectElement{Tag: tag}
	// Attributes.
	for {
		p.skipWSRaw()
		if p.eof() {
			return nil, p.errorf("unterminated element <%s>", tag)
		}
		if p.peekLit("/>") {
			p.pos += 2
			return el, nil
		}
		if p.peekLit(">") {
			p.pos++
			break
		}
		aname := p.peekName()
		if aname == "" {
			return nil, p.errorf("expected attribute in <%s>", tag)
		}
		p.pos += len(aname)
		p.skipWSRaw()
		if err := p.expectRaw("="); err != nil {
			return nil, err
		}
		p.skipWSRaw()
		if p.eof() || (p.src[p.pos] != '"' && p.src[p.pos] != '\'') {
			return nil, p.errorf("expected quoted attribute value")
		}
		quote := p.src[p.pos]
		p.pos++
		parts, err := p.parseAttrValue(quote)
		if err != nil {
			return nil, err
		}
		el.Attrs = append(el.Attrs, DirectAttr{Name: aname, Parts: parts})
	}
	// Content until </tag>.
	for {
		if p.eof() {
			return nil, p.errorf("unterminated element <%s>", tag)
		}
		if p.peekLit("</") {
			p.pos += 2
			p.skipWSRaw()
			close := p.peekName()
			if close != tag {
				return nil, p.errorf("mismatched close tag </%s> for <%s>", close, tag)
			}
			p.pos += len(close)
			p.skipWSRaw()
			if err := p.expectRaw(">"); err != nil {
				return nil, err
			}
			return el, nil
		}
		if p.peekLit("<") {
			p.pos++
			child, err := p.parseDirectElementAfterLT()
			if err != nil {
				return nil, err
			}
			el.Children = append(el.Children, ConstructorContent{Elem: child})
			continue
		}
		if p.peekLit("{") {
			p.pos++
			p.skipWS()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectLit("}"); err != nil {
				return nil, err
			}
			el.Children = append(el.Children, ConstructorContent{Expr: e})
			continue
		}
		// Literal text run.
		start := p.pos
		for p.pos < len(p.src) && p.src[p.pos] != '<' && p.src[p.pos] != '{' {
			p.pos++
		}
		text := p.src[start:p.pos]
		if strings.TrimSpace(text) != "" {
			el.Children = append(el.Children, ConstructorContent{Text: text})
		}
	}
}

// skipWSRaw skips whitespace without treating '(' as a comment opener
// (inside constructors).
func (p *xparser) skipWSRaw() {
	for p.pos < len(p.src) && unicode.IsSpace(rune(p.src[p.pos])) {
		p.pos++
	}
}

func (p *xparser) expectRaw(lit string) error {
	if !p.peekLit(lit) {
		return p.errorf("expected %q, got %q", lit, p.rest(10))
	}
	p.pos += len(lit)
	return nil
}

func (p *xparser) parseAttrValue(quote byte) ([]ConstructorContent, error) {
	var parts []ConstructorContent
	var text strings.Builder
	flush := func() {
		if text.Len() > 0 {
			parts = append(parts, ConstructorContent{Text: text.String()})
			text.Reset()
		}
	}
	for {
		if p.eof() {
			return nil, p.errorf("unterminated attribute value")
		}
		c := p.src[p.pos]
		if c == quote {
			p.pos++
			flush()
			return parts, nil
		}
		if c == '{' {
			p.pos++
			p.skipWS()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectLit("}"); err != nil {
				return nil, err
			}
			flush()
			parts = append(parts, ConstructorContent{Expr: e})
			continue
		}
		text.WriteByte(c)
		p.pos++
	}
}

package xquery

import (
	"strings"
	"testing"
)

func TestLiteralAndArithmetic(t *testing.T) {
	ev := newTestEvaluator(t)
	cases := []struct {
		q    string
		want string
	}{
		{`1 + 2 * 3`, "7"},
		{`(1 + 2) * 3`, "9"},
		{`10 div 4`, "2.5"},
		{`10 mod 3`, "1"},
		{`-5 + 2`, "-3"},
		{`"a"`, "a"},
		{`concat("a", "b", "c")`, "abc"},
		{`xs:date("1995-01-01") + 31`, "1995-02-01"},
		{`string-length("hello")`, "5"},
	}
	for _, c := range cases {
		got := evalOK(t, ev, c.q).Serialize()
		if got != c.want {
			t.Errorf("Eval(%q) = %q, want %q", c.q, got, c.want)
		}
	}
}

func TestPathNavigation(t *testing.T) {
	ev := newTestEvaluator(t)
	if got := len(evalOK(t, ev, `doc("employees.xml")/employees/employee`)); got != 3 {
		t.Errorf("employees = %d", got)
	}
	if got := len(evalOK(t, ev, `doc("employees.xml")/employees/employee/salary`)); got != 5 {
		t.Errorf("salaries = %d", got)
	}
	if got := len(evalOK(t, ev, `doc("employees.xml")//salary`)); got != 5 {
		t.Errorf("descendant salaries = %d", got)
	}
	got := evalOK(t, ev, `doc("employees.xml")/employees/employee[name="Bob"]/name`).Serialize()
	if !strings.Contains(got, ">Bob<") {
		t.Errorf("bob name = %q", got)
	}
	if got := len(evalOK(t, ev, `doc("employees.xml")/employees/*`)); got != 3 {
		t.Errorf("wildcard = %d", got)
	}
}

func TestAttributeAxisAndPredicates(t *testing.T) {
	ev := newTestEvaluator(t)
	got := evalOK(t, ev, `doc("employees.xml")/employees/employee[name="Bob"]/salary[1]/@tstart`).Serialize()
	if got != "1995-01-01" {
		t.Errorf("@tstart = %q", got)
	}
	got = evalOK(t, ev, `doc("employees.xml")/employees/employee[name="Bob"]/salary[2]`).Serialize()
	if !strings.Contains(got, "70000") {
		t.Errorf("salary[2] = %q", got)
	}
	// Numeric comparison in predicate.
	n := len(evalOK(t, ev, `doc("employees.xml")/employees/employee/salary[. > 56000]`))
	if n != 3 {
		t.Errorf("salaries > 56000 = %d", n)
	}
}

func TestFLWORBasics(t *testing.T) {
	ev := newTestEvaluator(t)
	got := evalOK(t, ev, `
		for $e in doc("employees.xml")/employees/employee
		where $e/name = "Alice"
		return $e/id`).Serialize()
	if !strings.Contains(got, "1002") {
		t.Errorf("flwor = %q", got)
	}
	got = evalOK(t, ev, `
		for $e in doc("employees.xml")/employees/employee
		let $n := $e/name
		order by $n descending
		return string($n)`).Serialize()
	if got != "Carol Bob Alice" {
		t.Errorf("order by = %q", got)
	}
}

func TestIfAndQuantified(t *testing.T) {
	ev := newTestEvaluator(t)
	got := evalOK(t, ev, `if (1 < 2) then "yes" else "no"`).Serialize()
	if got != "yes" {
		t.Errorf("if = %q", got)
	}
	got = evalOK(t, ev, `
		some $s in doc("employees.xml")//salary satisfies number($s) > 69000`).Serialize()
	if got != "true" {
		t.Errorf("some = %q", got)
	}
	got = evalOK(t, ev, `
		every $s in doc("employees.xml")//salary satisfies number($s) > 49000`).Serialize()
	if got != "true" {
		t.Errorf("every = %q", got)
	}
	got = evalOK(t, ev, `
		every $s in doc("employees.xml")//salary satisfies number($s) > 51000`).Serialize()
	if got != "false" {
		t.Errorf("every2 = %q", got)
	}
}

func TestConstructors(t *testing.T) {
	ev := newTestEvaluator(t)
	got := evalOK(t, ev, `<wrap a="x{1+1}y"><inner>{2+3}</inner></wrap>`).Serialize()
	want := `<wrap a="x2y"><inner>5</inner></wrap>`
	if got != want {
		t.Errorf("direct constructor = %q", got)
	}
	got = evalOK(t, ev, `element box { "text" }`).Serialize()
	if got != `<box>text</box>` {
		t.Errorf("computed constructor = %q", got)
	}
	got = evalOK(t, ev, `
		<names>{ for $e in doc("employees.xml")/employees/employee return $e/name }</names>`).Serialize()
	if !strings.Contains(got, ">Bob<") || !strings.Contains(got, ">Alice<") {
		t.Errorf("names = %q", got)
	}
}

func TestTemporalFunctions(t *testing.T) {
	ev := newTestEvaluator(t)
	cases := []struct {
		q    string
		want string
	}{
		{`tstart(doc("employees.xml")/employees/employee[name="Bob"])`, "1995-01-01"},
		{`tend(doc("employees.xml")/employees/employee[name="Bob"])`, "1996-12-31"},
		// Alice is current: tend reports current-date (1997-01-01).
		{`tend(doc("employees.xml")/employees/employee[name="Alice"])`, "1997-01-01"},
		{`timespan(doc("employees.xml")/employees/employee[name="Bob"]/salary[1])`, "151"},
		{`toverlaps(doc("employees.xml")/employees/employee[name="Bob"],
		            telement(xs:date("1994-05-06"), xs:date("1995-05-06")))`, "true"},
		{`tprecedes(telement(xs:date("1994-01-01"), xs:date("1994-02-01")),
		            telement(xs:date("1995-01-01"), xs:date("1995-02-01")))`, "true"},
		{`tmeets(telement(xs:date("1994-01-01"), xs:date("1994-02-01")),
		         telement(xs:date("1994-02-02"), xs:date("1994-03-01")))`, "true"},
		{`tcontains(doc("employees.xml")/employees/employee[name="Bob"],
		            doc("employees.xml")/employees/employee[name="Bob"]/title[2])`, "true"},
		{`tequals(doc("employees.xml")/employees/employee[name="Carol"],
		          doc("employees.xml")/employees/employee[name="Carol"]/salary[1])`, "true"},
	}
	for _, c := range cases {
		got := evalOK(t, ev, c.q).Serialize()
		if got != c.want {
			t.Errorf("Eval(%q) = %q, want %q", c.q, got, c.want)
		}
	}
}

func TestOverlapIntervalAndRestructure(t *testing.T) {
	ev := newTestEvaluator(t)
	got := evalOK(t, ev, `
		overlapinterval(doc("employees.xml")/employees/employee[name="Bob"]/salary[1],
		                doc("employees.xml")/employees/employee[name="Bob"]/title[1])`).Serialize()
	if got != `<interval tstart="1995-01-01" tend="1995-05-31"/>` {
		t.Errorf("overlapinterval = %q", got)
	}
	if s := evalOK(t, ev, `
		overlapinterval(telement(xs:date("1994-01-01"), xs:date("1994-02-01")),
		                telement(xs:date("1995-01-01"), xs:date("1995-02-01")))`); len(s) != 0 {
		t.Errorf("disjoint overlapinterval = %v", s)
	}
	rs := evalOK(t, ev, `
		restructure(doc("employees.xml")/employees/employee[name="Bob"]/deptno,
		            doc("employees.xml")/employees/employee[name="Bob"]/title)`)
	if len(rs) != 3 {
		t.Errorf("restructure = %d intervals: %s", len(rs), rs.Serialize())
	}
}

func TestCoalesceFunction(t *testing.T) {
	ev := newTestEvaluator(t)
	// Bob's salary history has two adjacent but different values — no
	// merging. Titles named the same merge across employees? No:
	// coalesce matches on name+text.
	got := evalOK(t, ev, `
		coalesce(doc("employees.xml")/employees/employee[name="Bob"]/salary)`)
	if len(got) != 2 {
		t.Errorf("coalesce salaries = %d", len(got))
	}
	// Construct a case that needs merging: same value, adjacent.
	got = evalOK(t, ev, `
		coalesce((<v tstart="1995-01-01" tend="1995-01-31">5</v>,
		          <v tstart="1995-02-01" tend="1995-03-31">5</v>,
		          <v tstart="1995-06-01" tend="1995-06-30">5</v>))`)
	if len(got) != 2 {
		t.Fatalf("coalesce = %s", got.Serialize())
	}
	if v, _ := got[0].Node.Attr("tend"); v != "1995-03-31" {
		t.Errorf("merged tend = %s", v)
	}
}

func TestRtendAndExternalNow(t *testing.T) {
	ev := newTestEvaluator(t)
	got := evalOK(t, ev, `rtend(doc("employees.xml")/employees/employee[name="Alice"]/deptno[1])`).Serialize()
	if !strings.Contains(got, `tend="1997-01-01"`) {
		t.Errorf("rtend = %q", got)
	}
	got = evalOK(t, ev, `externalnow(doc("employees.xml")/employees/employee[name="Alice"]/deptno[1])`).Serialize()
	if !strings.Contains(got, `tend="now"`) {
		t.Errorf("externalnow = %q", got)
	}
}

// Regression: rtend/externalnow must substitute the forever sentinel
// only in tend attributes. A decoy attribute (or a corrupt tstart)
// holding "9999-12-31" used to be rewritten as well.
func TestRtendLeavesNonTendAttributesAlone(t *testing.T) {
	ev := newTestEvaluator(t)
	q := `rtend(<v note="9999-12-31" tstart="9999-12-31" tend="9999-12-31">x</v>)`
	got := evalOK(t, ev, q).Serialize()
	if !strings.Contains(got, `note="9999-12-31"`) {
		t.Errorf("rtend rewrote the decoy note attribute: %q", got)
	}
	if !strings.Contains(got, `tstart="9999-12-31"`) {
		t.Errorf("rtend rewrote the corrupt tstart attribute: %q", got)
	}
	if strings.Contains(got, `tend="9999-12-31"`) {
		t.Errorf("rtend left the open tend in place: %q", got)
	}
	got = evalOK(t, ev, `externalnow(<v note="9999-12-31" tend="9999-12-31">x</v>)`).Serialize()
	if !strings.Contains(got, `note="9999-12-31"`) || !strings.Contains(got, `tend="now"`) {
		t.Errorf("externalnow decoy handling: %q", got)
	}
}

func TestParseErrorsXQ(t *testing.T) {
	bad := []string{
		``,
		`for $x return 1`,
		`for $x in (1,2)`,
		`if (1) then 2`,
		`<a><b></a>`,
		`$`,
		`1 +`,
		`doc("x"`,
		`some $v in (1,2) satisfie true()`,
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q): expected error", q)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	ev := newTestEvaluator(t)
	bad := []string{
		`$unbound`,
		`doc("nosuch.xml")`,
		`unknownfn(1)`,
		`1 div 0`,
		`tstart(doc("employees.xml"))`, // #document has no tstart
	}
	for _, q := range bad {
		if _, err := ev.Eval(q); err == nil {
			t.Errorf("Eval(%q): expected error", q)
		}
	}
}

func TestDistinctValuesAndCount(t *testing.T) {
	ev := newTestEvaluator(t)
	got := evalOK(t, ev, `count(distinct-values(doc("employees.xml")//deptno))`).Serialize()
	if got != "2" {
		t.Errorf("distinct deptnos = %q", got)
	}
	got = evalOK(t, ev, `count(doc("employees.xml")//title)`).Serialize()
	if got != "6" {
		t.Errorf("title count = %q", got)
	}
	got = evalOK(t, ev, `avg(doc("employees.xml")/employees/employee/salary[@tstart="1995-01-01"])`).Serialize()
	if got != "57500" {
		t.Errorf("avg = %q", got)
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	ev := newTestEvaluator(t)
	got := evalOK(t, ev, `(: leading comment :) 1 + (: nested (: inner :) :) 2`).Serialize()
	if got != "3" {
		t.Errorf("comments = %q", got)
	}
}

func TestPositionAndLast(t *testing.T) {
	ev := newTestEvaluator(t)
	got := evalOK(t, ev, `doc("employees.xml")/employees/employee[name="Bob"]/title[position() = 2]`).Serialize()
	if !strings.Contains(got, "Sr Engineer") {
		t.Errorf("position() = %q", got)
	}
	got = evalOK(t, ev, `string(doc("employees.xml")/employees/employee[name="Bob"]/title[last()])`).Serialize()
	if got != "TechLeader" {
		t.Errorf("last() = %q", got)
	}
	got = evalOK(t, ev, `count(doc("employees.xml")/employees/employee[position() < last()])`).Serialize()
	if got != "2" {
		t.Errorf("position<last = %q", got)
	}
	if _, err := ev.Eval(`position()`); err == nil {
		t.Error("position() outside predicate accepted")
	}
}

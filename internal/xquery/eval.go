package xquery

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"archis/internal/obs"
	"archis/internal/temporal"
	"archis/internal/xmltree"
)

// Evaluator evaluates parsed XQuery expressions over XML trees.
type Evaluator struct {
	// Docs resolves doc("name") references.
	Docs func(name string) (*xmltree.Node, error)
	// Now is the query-time instant used for current-date() and for
	// instantiating the internal "now" encoding (Section 4.3).
	Now temporal.Date

	// Trace, when set, receives xquery:parse / xquery:eval /
	// xquery:userfunc child spans. Nil disables tracing (one pointer
	// check per hook). Evaluators are single-query, not concurrent.
	Trace *obs.Span

	funcs     map[string]builtinFunc
	userDepth int
	evalSpan  *obs.Span
	ufCalls   int64
	ufTraced  int
}

// NewEvaluator returns an evaluator with the standard and temporal
// function libraries installed.
func NewEvaluator(docs func(name string) (*xmltree.Node, error)) *Evaluator {
	ev := &Evaluator{Docs: docs, Now: temporal.FromTime(time.Now())}
	ev.funcs = builtinFuncs()
	return ev
}

// env is one lexical scope: variable bindings, the context item, and
// the query's user-defined functions (shared, not copied per scope).
type env struct {
	vars      map[string]Seq
	ctx       Item
	hasCtx    bool
	ctxPos    int // 1-based position() inside a predicate; 0 outside
	ctxSize   int // last() inside a predicate; 0 outside
	userFuncs map[string]*FuncDecl
}

func (e *env) child() *env {
	vars := make(map[string]Seq, len(e.vars)+2)
	for k, v := range e.vars {
		vars[k] = v
	}
	return &env{vars: vars, ctx: e.ctx, hasCtx: e.hasCtx,
		ctxPos: e.ctxPos, ctxSize: e.ctxSize, userFuncs: e.userFuncs}
}

// Eval parses and evaluates a query, including any `declare function`
// prolog.
func (ev *Evaluator) Eval(src string) (Seq, error) {
	ps := ev.Trace.Child("xquery:parse")
	q, err := ParseQuery(src)
	ps.End()
	if err != nil {
		return nil, err
	}
	return ev.EvalQuery(q)
}

// EvalQuery evaluates a parsed query with its prolog functions bound.
func (ev *Evaluator) EvalQuery(q *Query) (Seq, error) {
	es := ev.Trace.Child("xquery:eval")
	ev.evalSpan = es
	ev.ufCalls, ev.ufTraced = 0, 0
	en := &env{vars: map[string]Seq{}, userFuncs: map[string]*FuncDecl{}}
	for _, fd := range q.Funcs {
		if _, dup := en.userFuncs[fd.Name]; dup {
			return nil, fmt.Errorf("xquery: function %s() declared twice", fd.Name)
		}
		en.userFuncs[fd.Name] = fd
	}
	out, err := ev.eval(q.Body, en)
	if ev.ufCalls > 0 {
		es.SetInt("userfunc_calls", ev.ufCalls)
	}
	es.AddRows(0, int64(len(out)))
	es.End()
	ev.evalSpan = nil
	return out, err
}

// EvalExpr evaluates a parsed expression with no initial bindings.
func (ev *Evaluator) EvalExpr(e Expr) (Seq, error) {
	return ev.eval(e, &env{vars: map[string]Seq{}})
}

func (ev *Evaluator) eval(e Expr, en *env) (Seq, error) {
	switch x := e.(type) {
	case *LiteralString:
		return Seq{StringItem(x.Value)}, nil
	case *LiteralNumber:
		return Seq{NumberItem(x.Value)}, nil
	case *VarRef:
		v, ok := en.vars[x.Name]
		if !ok {
			return nil, fmt.Errorf("xquery: unbound variable $%s", x.Name)
		}
		return v, nil
	case *ContextItem:
		if !en.hasCtx {
			return nil, fmt.Errorf("xquery: no context item for '.'")
		}
		return Seq{en.ctx}, nil
	case *SeqExpr:
		var out Seq
		for _, it := range x.Items {
			s, err := ev.eval(it, en)
			if err != nil {
				return nil, err
			}
			out = append(out, s...)
		}
		return out, nil
	case *FLWOR:
		return ev.evalFLWOR(x, en)
	case *Quantified:
		return ev.evalQuantified(x, en)
	case *IfExpr:
		cond, err := ev.eval(x.Cond, en)
		if err != nil {
			return nil, err
		}
		if cond.EffectiveBool() {
			return ev.eval(x.Then, en)
		}
		return ev.eval(x.Else, en)
	case *Binary:
		return ev.evalBinary(x, en)
	case *Unary:
		s, err := ev.eval(x.X, en)
		if err != nil {
			return nil, err
		}
		if len(s) == 0 {
			return nil, nil
		}
		f, ok := s[0].NumberValue()
		if !ok {
			return nil, fmt.Errorf("xquery: unary minus of non-number")
		}
		return Seq{NumberItem(-f)}, nil
	case *Path:
		return ev.evalPath(x, en)
	case *FuncCall:
		return ev.evalFuncCall(x, en)
	case *DirectElement:
		n, err := ev.buildDirect(x, en)
		if err != nil {
			return nil, err
		}
		return Seq{NodeItem(n)}, nil
	case *ComputedElement:
		el := xmltree.NewElement(x.Tag)
		if x.Content != nil {
			s, err := ev.eval(x.Content, en)
			if err != nil {
				return nil, err
			}
			appendSeq(el, s)
		}
		return Seq{NodeItem(el)}, nil
	}
	return nil, fmt.Errorf("xquery: cannot evaluate %T", e)
}

func (ev *Evaluator) evalFLWOR(x *FLWOR, en *env) (Seq, error) {
	type tuple struct {
		env  *env
		keys Seq
	}
	var tuples []tuple

	var bind func(i int, cur *env) error
	bind = func(i int, cur *env) error {
		if i == len(x.Clauses) {
			if x.Where != nil {
				c, err := ev.eval(x.Where, cur)
				if err != nil {
					return err
				}
				if !c.EffectiveBool() {
					return nil
				}
			}
			keys := make(Seq, len(x.OrderBy))
			for k, spec := range x.OrderBy {
				s, err := ev.eval(spec.Key, cur)
				if err != nil {
					return err
				}
				if len(s) > 0 {
					keys[k] = s[0]
				} else {
					keys[k] = StringItem("")
				}
			}
			tuples = append(tuples, tuple{env: cur, keys: keys})
			return nil
		}
		cl := x.Clauses[i]
		if cl.IsLet {
			s, err := ev.eval(cl.In, cur)
			if err != nil {
				return err
			}
			next := cur.child()
			next.vars[cl.Var] = s
			return bind(i+1, next)
		}
		s, err := ev.eval(cl.In, cur)
		if err != nil {
			return err
		}
		for _, it := range s {
			next := cur.child()
			next.vars[cl.Var] = Seq{it}
			if err := bind(i+1, next); err != nil {
				return err
			}
		}
		return nil
	}
	if err := bind(0, en); err != nil {
		return nil, err
	}

	if len(x.OrderBy) > 0 {
		sort.SliceStable(tuples, func(i, j int) bool {
			for k, spec := range x.OrderBy {
				c := compareItemsTotal(tuples[i].keys[k], tuples[j].keys[k])
				if c != 0 {
					if spec.Descending {
						return c > 0
					}
					return c < 0
				}
			}
			return false
		})
	}

	var out Seq
	for _, t := range tuples {
		s, err := ev.eval(x.Return, t.env)
		if err != nil {
			return nil, err
		}
		out = append(out, s...)
	}
	return out, nil
}

func (ev *Evaluator) evalQuantified(x *Quantified, en *env) (Seq, error) {
	in, err := ev.eval(x.In, en)
	if err != nil {
		return nil, err
	}
	for _, it := range in {
		next := en.child()
		next.vars[x.Var] = Seq{it}
		sat, err := ev.eval(x.Satisfies, next)
		if err != nil {
			return nil, err
		}
		if x.Every && !sat.EffectiveBool() {
			return Seq{BoolItem(false)}, nil
		}
		if !x.Every && sat.EffectiveBool() {
			return Seq{BoolItem(true)}, nil
		}
	}
	return Seq{BoolItem(x.Every)}, nil
}

func (ev *Evaluator) evalBinary(x *Binary, en *env) (Seq, error) {
	switch x.Op {
	case "and":
		l, err := ev.eval(x.L, en)
		if err != nil {
			return nil, err
		}
		if !l.EffectiveBool() {
			return Seq{BoolItem(false)}, nil
		}
		r, err := ev.eval(x.R, en)
		if err != nil {
			return nil, err
		}
		return Seq{BoolItem(r.EffectiveBool())}, nil
	case "or":
		l, err := ev.eval(x.L, en)
		if err != nil {
			return nil, err
		}
		if l.EffectiveBool() {
			return Seq{BoolItem(true)}, nil
		}
		r, err := ev.eval(x.R, en)
		if err != nil {
			return nil, err
		}
		return Seq{BoolItem(r.EffectiveBool())}, nil
	}
	l, err := ev.eval(x.L, en)
	if err != nil {
		return nil, err
	}
	r, err := ev.eval(x.R, en)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case "=", "!=", "<", "<=", ">", ">=":
		// General comparison: true if any pair satisfies.
		for _, a := range l {
			for _, b := range r {
				if compareGeneral(a, b, x.Op) {
					return Seq{BoolItem(true)}, nil
				}
			}
		}
		return Seq{BoolItem(false)}, nil
	case "+", "-", "*", "div", "mod":
		if len(l) == 0 || len(r) == 0 {
			return nil, nil
		}
		return arithItems(l[0], r[0], x.Op)
	}
	return nil, fmt.Errorf("xquery: unknown operator %s", x.Op)
}

func arithItems(a, b Item, op string) (Seq, error) {
	// Date ± number and date - date.
	if da, ok := a.dateAtom(); ok {
		if db, ok2 := b.dateAtom(); ok2 && op == "-" {
			return Seq{NumberItem(float64(db.DaysBetween(da)) * -1)}, nil
		}
		if f, ok2 := b.NumberValue(); ok2 {
			switch op {
			case "+":
				return Seq{DateItem(da.AddDays(int(f)))}, nil
			case "-":
				return Seq{DateItem(da.AddDays(-int(f)))}, nil
			}
		}
	}
	af, aok := a.NumberValue()
	bf, bok := b.NumberValue()
	if !aok || !bok {
		return nil, fmt.Errorf("xquery: non-numeric operand for %s (%q, %q)", op, a.String(), b.String())
	}
	switch op {
	case "+":
		return Seq{NumberItem(af + bf)}, nil
	case "-":
		return Seq{NumberItem(af - bf)}, nil
	case "*":
		return Seq{NumberItem(af * bf)}, nil
	case "div":
		if bf == 0 {
			return nil, fmt.Errorf("xquery: division by zero")
		}
		return Seq{NumberItem(af / bf)}, nil
	case "mod":
		if bf == 0 {
			return nil, fmt.Errorf("xquery: modulo by zero")
		}
		return Seq{NumberItem(math.Mod(af, bf))}, nil
	}
	return nil, fmt.Errorf("xquery: unknown arithmetic %s", op)
}

// dateAtom returns the date when the item is a date atom (not a node).
func (it Item) dateAtom() (temporal.Date, bool) {
	if !it.IsNode() && it.Kind == AtomDate {
		return it.D, true
	}
	return 0, false
}

// compareGeneral applies XPath-style dynamic comparison rules.
func compareGeneral(a, b Item, op string) bool {
	c, ok := compareItems(a, b)
	if !ok {
		return false
	}
	switch op {
	case "=":
		return c == 0
	case "!=":
		return c != 0
	case "<":
		return c < 0
	case "<=":
		return c <= 0
	case ">":
		return c > 0
	case ">=":
		return c >= 0
	}
	return false
}

// compareItems picks a comparison domain: dates when either side is a
// date atom, numbers when either side is a number atom, booleans for
// bool atoms, otherwise strings. Untyped node content adapts to the
// other side.
func compareItems(a, b Item) (int, bool) {
	aDate, aIsDate := a.dateAtom()
	bDate, bIsDate := b.dateAtom()
	if aIsDate || bIsDate {
		if !aIsDate {
			var ok bool
			if aDate, ok = a.DateValue(); !ok {
				return 0, false
			}
		}
		if !bIsDate {
			var ok bool
			if bDate, ok = b.DateValue(); !ok {
				return 0, false
			}
		}
		switch {
		case aDate < bDate:
			return -1, true
		case aDate > bDate:
			return 1, true
		default:
			return 0, true
		}
	}
	aNum := !a.IsNode() && a.Kind == AtomNumber
	bNum := !b.IsNode() && b.Kind == AtomNumber
	if aNum || bNum {
		af, aok := a.NumberValue()
		bf, bok := b.NumberValue()
		if !aok || !bok {
			return 0, false
		}
		switch {
		case af < bf:
			return -1, true
		case af > bf:
			return 1, true
		default:
			return 0, true
		}
	}
	aBool := !a.IsNode() && a.Kind == AtomBool
	bBool := !b.IsNode() && b.Kind == AtomBool
	if aBool || bBool {
		av := a.StringValue() == "true"
		bv := b.StringValue() == "true"
		if a.Kind == AtomBool {
			av = a.B
		}
		if b.Kind == AtomBool {
			bv = b.B
		}
		switch {
		case av == bv:
			return 0, true
		case !av:
			return -1, true
		default:
			return 1, true
		}
	}
	return strings.Compare(a.StringValue(), b.StringValue()), true
}

// compareItemsTotal is a total order for "order by" (falls back to
// string comparison when domains mismatch).
func compareItemsTotal(a, b Item) int {
	if c, ok := compareItems(a, b); ok {
		return c
	}
	return strings.Compare(a.StringValue(), b.StringValue())
}

func (ev *Evaluator) evalPath(x *Path, en *env) (Seq, error) {
	var cur Seq
	if x.Root != nil {
		s, err := ev.eval(x.Root, en)
		if err != nil {
			return nil, err
		}
		cur = s
	} else {
		if !en.hasCtx {
			return nil, fmt.Errorf("xquery: relative path with no context item")
		}
		cur = Seq{en.ctx}
	}
	for _, st := range x.Steps {
		next, err := ev.evalStep(st, cur, en)
		if err != nil {
			return nil, err
		}
		cur = next
	}
	return cur, nil
}

func (ev *Evaluator) evalStep(st Step, input Seq, en *env) (Seq, error) {
	var out Seq
	seen := map[*xmltree.Node]bool{}
	addNode := func(n *xmltree.Node) {
		if !seen[n] {
			seen[n] = true
			out = append(out, NodeItem(n))
		}
	}
	for _, it := range input {
		switch st.Axis {
		case AxisSelf:
			out = append(out, it)
		case AxisAttribute:
			if it.IsNode() {
				if v, ok := it.Node.Attr(st.Name); ok {
					out = append(out, StringItem(v))
				}
			}
		case AxisChild:
			if it.IsNode() {
				for _, c := range it.Node.Children {
					if c.IsElement() && (st.Name == "*" || c.Name == st.Name) {
						addNode(c)
					}
				}
			}
		case AxisDescendant:
			if it.IsNode() {
				for _, c := range it.Node.Children {
					if c.IsElement() {
						for _, d := range c.Descendants(st.Name, nil) {
							addNode(d)
						}
					}
				}
			}
		case AxisParent:
			if it.IsNode() && it.Node.Parent != nil {
				addNode(it.Node.Parent)
			}
		case AxisText:
			if it.IsNode() {
				for _, c := range it.Node.Children {
					if c.IsText() {
						out = append(out, StringItem(c.Text))
					}
				}
			}
		}
	}
	// Predicates filter positionally.
	for _, pred := range st.Preds {
		filtered := make(Seq, 0, len(out))
		for pos, it := range out {
			next := en.child()
			next.ctx = it
			next.hasCtx = true
			next.ctxPos = pos + 1
			next.ctxSize = len(out)
			s, err := ev.eval(pred, next)
			if err != nil {
				return nil, err
			}
			if len(s) == 1 && !s[0].IsNode() && s[0].Kind == AtomNumber {
				if int(s[0].F) == pos+1 {
					filtered = append(filtered, it)
				}
				continue
			}
			if s.EffectiveBool() {
				filtered = append(filtered, it)
			}
		}
		out = filtered
	}
	return out, nil
}

func (ev *Evaluator) buildDirect(x *DirectElement, en *env) (*xmltree.Node, error) {
	el := xmltree.NewElement(x.Tag)
	for _, a := range x.Attrs {
		var sb strings.Builder
		for _, part := range a.Parts {
			if part.Expr == nil {
				sb.WriteString(part.Text)
				continue
			}
			s, err := ev.eval(part.Expr, en)
			if err != nil {
				return nil, err
			}
			for i, it := range s {
				if i > 0 {
					sb.WriteString(" ")
				}
				sb.WriteString(it.StringValue())
			}
		}
		el.SetAttr(a.Name, sb.String())
	}
	for _, c := range x.Children {
		switch {
		case c.Elem != nil:
			child, err := ev.buildDirect(c.Elem, en)
			if err != nil {
				return nil, err
			}
			el.Append(child)
		case c.Expr != nil:
			s, err := ev.eval(c.Expr, en)
			if err != nil {
				return nil, err
			}
			appendSeq(el, s)
		default:
			el.AppendText(c.Text)
		}
	}
	return el, nil
}

// appendSeq inserts a sequence into constructed element content: nodes
// are copied, adjacent atomics joined with single spaces.
func appendSeq(el *xmltree.Node, s Seq) {
	prevAtom := false
	for _, it := range s {
		if it.IsNode() {
			el.Append(it.Node.Clone())
			prevAtom = false
			continue
		}
		text := it.StringValue()
		if prevAtom {
			text = " " + text
		}
		el.AppendText(text)
		prevAtom = true
	}
}

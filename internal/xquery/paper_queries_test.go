package xquery

import (
	"strings"
	"testing"
)

// This file runs the paper's QUERY 1–8 (Sections 4 and 4.1) verbatim
// (modulo whitespace) against the Figure 3/4 H-documents.

func TestPaperQuery1TemporalProjection(t *testing.T) {
	ev := newTestEvaluator(t)
	got := evalOK(t, ev, `
element title_history{
  for $t in doc("employees.xml")/employees/
      employee[name="Bob"]/title
  return $t }`)
	if len(got) != 1 {
		t.Fatalf("items = %d", len(got))
	}
	root := got[0].Node
	titles := root.ChildElements("title")
	if len(titles) != 3 {
		t.Fatalf("titles = %d: %s", len(titles), got.Serialize())
	}
	// Already coalesced: grouped representation needs no post-merge.
	if titles[0].TextContent() != "Engineer" || titles[1].TextContent() != "Sr Engineer" {
		t.Errorf("titles = %s", got.Serialize())
	}
}

func TestPaperQuery2TemporalSnapshot(t *testing.T) {
	ev := newTestEvaluator(t)
	got := evalOK(t, ev, `
for $m in doc("depts.xml")/depts/dept/mgrno
    [tstart(.)<=xs:date("1994-05-06") and tend(.) >= xs:date("1994-05-06")]
return $m`)
	// Managers on 1994-05-06: 2501 (d01), 3402 (d02), 4748 (d03).
	if len(got) != 3 {
		t.Fatalf("managers = %d: %s", len(got), got.Serialize())
	}
	text := got.Serialize()
	for _, m := range []string{"2501", "3402", "4748"} {
		if !strings.Contains(text, m) {
			t.Errorf("missing manager %s in %s", m, text)
		}
	}
}

func TestPaperQuery3TemporalSlicing(t *testing.T) {
	ev := newTestEvaluator(t)
	got := evalOK(t, ev, `
for $e in doc("employees.xml")/employees
    /employee[ toverlaps(.,
        telement( xs:date("1994-05-06"), xs:date("1995-05-06") ) ) ]
return $e/name`)
	// All three employees existed at some point in that window.
	if len(got) != 3 {
		t.Fatalf("slicing = %d: %s", len(got), got.Serialize())
	}
}

func TestPaperQuery4TemporalJoin(t *testing.T) {
	ev := newTestEvaluator(t)
	got := evalOK(t, ev, `
element manages{
  for $d in doc("depts.xml")/depts/dept
  for $m in $d/mgrno
  return
    element manage {$d/deptno, $m,
      element employees {
        for $e in doc("employees.xml")/
            employees/employee
        where $e/deptno = $d/deptno and
              not(empty(overlapinterval($e, $m) ) )
        return($e/name, overlapinterval($e,$m)) }}}`)
	if len(got) != 1 {
		t.Fatalf("items = %d", len(got))
	}
	manages := got[0].Node
	ms := manages.ChildElements("manage")
	if len(ms) != 4 { // d01:2501, d02:3402, d02:1009, d03:4748
		t.Fatalf("manage elements = %d: %s", len(ms), got.Serialize())
	}
	// d01's manager 2501 manages Bob (via d01 until 1995-09-30), Alice
	// and Carol.
	var d01 *struct{ names []string }
	for _, m := range ms {
		if m.FirstChild("deptno").TextContent() == "d01" {
			emps := m.FirstChild("employees")
			var names []string
			for _, n := range emps.ChildElements("name") {
				names = append(names, n.TextContent())
			}
			d01 = &struct{ names []string }{names}
		}
	}
	if d01 == nil || len(d01.names) != 3 {
		t.Errorf("d01 employees wrong: %+v", d01)
	}
	// The d03 manager manages nobody.
	for _, m := range ms {
		if m.FirstChild("deptno").TextContent() == "d03" {
			if kids := m.FirstChild("employees").ChildElements(""); len(kids) != 0 {
				t.Errorf("d03 should be empty: %s", got.Serialize())
			}
		}
	}
}

func TestPaperQuery5TemporalAggregate(t *testing.T) {
	ev := newTestEvaluator(t)
	got := evalOK(t, ev, `
let $s := document("emp.xml")/employees/
    employee/salary
return tavg($s)`)
	if len(got) < 3 {
		t.Fatalf("tavg steps = %d: %s", len(got), got.Serialize())
	}
	// From 1995-03-01 to 1995-05-31 salaries are 60000, 50000, 55000 →
	// average 55000.
	found := false
	for _, it := range got {
		if it.Node.AttrOr("tstart", "") == "1995-03-01" && it.Node.AttrOr("value", "") == "55000" {
			found = true
		}
	}
	if !found {
		t.Errorf("expected 55000 step at 1995-03-01: %s", got.Serialize())
	}
}

func TestPaperQuery6Restructuring(t *testing.T) {
	ev := newTestEvaluator(t)
	got := evalOK(t, ev, `
for $e in doc("emp.xml")/employees/
    employee[name="Bob"]
let $d := $e/deptno
let $t := $e/title
let $overlaps := restructure($d, $t)
return max($overlaps)`)
	if len(got) != 1 {
		t.Fatalf("items = %d", len(got))
	}
	// Bob's unchanged (dept,title) stretches: 1995-01-01..09-30 (273d),
	// 1995-10-01..1996-01-31 (123d), 1996-02-01..12-31 (335d). Max=335.
	if got.Serialize() != "335" {
		t.Errorf("max overlap = %q", got.Serialize())
	}
}

func TestPaperQuery7Since(t *testing.T) {
	ev := newTestEvaluator(t)
	// Adapted from the paper's A-Since-B query: employees who have
	// been Sr Engineer in dept d01 since they joined the dept.
	got := evalOK(t, ev, `
for $e in doc("employees.xml")/employees/employee
let $m := $e/title[.="Sr Engineer" and tend(.)=current-date()]
let $d := $e/deptno[.="d01" and tcontains($m, .)]
where not(empty($d)) and not(empty($m))
return <employee>{$e/id, $e/name}</employee>`)
	// Alice is a current Sr Engineer in d01, but her title interval
	// (1996-07-01..now) does not contain her full d01 membership
	// (1995-03-01..now), so tcontains fails → empty result.
	if len(got) != 0 {
		t.Fatalf("since = %s", got.Serialize())
	}
	// Relax to the overlap version to check the plumbing end to end.
	got = evalOK(t, ev, `
for $e in doc("employees.xml")/employees/employee
let $m := $e/title[.="Sr Engineer" and tend(.)=current-date()]
let $d := $e/deptno[.="d01" and toverlaps($m, .)]
where not(empty($d)) and not(empty($m))
return <employee>{$e/id, $e/name}</employee>`)
	if len(got) != 1 || !strings.Contains(got.Serialize(), "Alice") {
		t.Errorf("since-overlaps = %s", got.Serialize())
	}
}

func TestPaperQuery8PeriodContainment(t *testing.T) {
	ev := newTestEvaluator(t)
	// Employees with the same employment history as Bob: worked in the
	// same departments for exactly the same periods. Carol matches.
	got := evalOK(t, ev, `
for $e1 in doc("employees.xml")/employees
    /employee[name = "Bob"]
for $e2 in doc("employees.xml")/employees
    /employee[name != "Bob"]
where every $d1 in $e1/deptno satisfies
        some $d2 in $e2/deptno satisfies
          (string($d1)=string($d2) and tequals($d2,$d1))
  and every $d2 in $e2/deptno satisfies
        some $d1 in $e1/deptno satisfies
          (string($d2)=string( $d1) and tequals($d1,$d2))
return <employee>{$e2/name}</employee>`)
	if len(got) != 1 {
		t.Fatalf("period containment = %d: %s", len(got), got.Serialize())
	}
	if !strings.Contains(got.Serialize(), "Carol") {
		t.Errorf("expected Carol: %s", got.Serialize())
	}
}
